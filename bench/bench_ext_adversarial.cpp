// Robustness extension: adversarial ranging and the attack detector.
//
// Sweeps the three attack kinds of src/fault/attack.hpp across strengths
// against the 4-responder office deployment, with the AttackDetector on,
// and measures both sides of the arms race:
//   - attack success: how far the targeted measurement shrinks (raw and
//     conditioned on rounds the detector missed — the damage that matters),
//   - detection rate per cell, and the aggregate over the strong cells
//     (gated in CI: strong attacks must be caught >= 90 % of the time),
//   - benign false positives: the fault-sweep 30 % loss plan with the
//     detector on must produce zero verdicts (gated at exactly 0).
//
// Extra flags on top of the standard bench set:
//   --attack K    run a single attack family (cfo | bias | ghost | replay |
//                 benign) instead of the full sweep
//   --strength S  with --attack: run a single strength (ppm for cfo, ns for
//                 bias/ghost; ignored for replay/benign)
//   --loss P      layer the fault-sweep loss plan at level P on every
//                 selected cell (attack + benign loss composed) — used by
//                 the CI determinism step, which flight-records an attacked
//                 lossy session at two thread counts and cmp's the exports
//
// JSON keys are cell-prefixed (cfo_s12_* = -12 ppm overshoot, ghost_s40_* =
// 40 ns early ghost, ...) plus the gated aggregates detection_rate and
// benign_false_positive_rate.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fault/attack.hpp"

namespace {

using namespace uwb;

enum class Target {
  kSyncDistance,  ///< d_twr to the sync responder (clock-skew attacks)
  kEstimate,      ///< the attacker's interpreted estimate (ghost attacks)
  kNone,          ///< identification attacks: detection is the whole story
};

struct Cell {
  std::string key;
  std::string family;
  double strength = 0.0;  // ppm (cfo) or ns (bias/ghost); 0 for replay/benign
  fault::AttackPlan plan;
  fault::FaultPlan fault;
  int attacker = -1;
  Target target = Target::kNone;
  /// Counts toward the gated aggregate detection_rate.
  bool strong = false;
};

fault::AttackPlan one_spec(fault::AttackSpec spec) {
  fault::AttackPlan plan;
  plan.enabled = true;
  plan.specs.push_back(spec);
  return plan;
}

// bench_ext_fault_sweep's loss mix at level `loss` (0.3 = the 30 % plan).
void apply_loss(fault::FaultPlan& fault, double loss) {
  fault.enabled = true;
  fault.preamble_miss_prob = loss;
  fault.preamble_snr_exponent = 1.0;
  fault.crc_error_prob = loss / 4.0;
  fault.late_tx_abort_prob = loss / 4.0;
  fault.dropout_prob = loss / 8.0;
}

std::vector<Cell> make_cells() {
  std::vector<Cell> cells;
  char key[32];

  // Clock-skew carrier overshoot on the sync responder (id 0). Negative
  // spoof shrinks Eq. 2 by ~4.35 cm/ppm at the 290 us reply time. The
  // plausibility bound is 8 ppm: strengths past it must be caught.
  for (const double ppm : {2.0, 4.0, 8.0, 12.0, 20.0}) {
    std::snprintf(key, sizeof(key), "cfo_s%02d", static_cast<int>(ppm));
    fault::AttackSpec spec;
    spec.attacker_id = 0;
    spec.kind = fault::AttackKind::kClockSkew;
    spec.cfo_spoof_ppm = -ppm;
    cells.push_back({key, "cfo", ppm, one_spec(spec), {}, 0,
                     Target::kSyncDistance, ppm >= 12.0});
  }

  // Forged reply timestamp on the sync responder: c * bias / 2 ~= 15 cm/ns.
  // Honest replies are off only by the < 8.013 ns delayed-TX quantisation,
  // so biases past the 15 ns tolerance must be caught.
  for (const double ns : {5.0, 10.0, 20.0, 40.0, 80.0}) {
    std::snprintf(key, sizeof(key), "bias_s%02d", static_cast<int>(ns));
    fault::AttackSpec spec;
    spec.attacker_id = 0;
    spec.kind = fault::AttackKind::kClockSkew;
    spec.reply_bias_s = ns * 1e-9;
    cells.push_back({key, "bias", ns, one_spec(spec), {}, 0,
                     Target::kSyncDistance, ns >= 40.0});
  }

  // Ghost CIR taps ahead of responder 2's first path: c * advance / 2
  // distance cut, physically capped at the attacker's ~25 ns one-way delay
  // (a tap cannot precede the frame's transmission). Small advances hide
  // inside the legitimate response's own spread; past the 20 ns tail
  // window the ghost stands alone and the tail-energy check sees it.
  for (const double ns : {10.0, 20.0, 40.0, 60.0}) {
    std::snprintf(key, sizeof(key), "ghost_s%02d", static_cast<int>(ns));
    fault::AttackSpec spec;
    spec.attacker_id = 2;
    spec.kind = fault::AttackKind::kGhostPeak;
    spec.ghost_advance_s = ns * 1e-9;
    spec.ghost_rel_amplitude = 2.0;
    cells.push_back({key, "ghost", ns, one_spec(spec), {}, 2,
                     Target::kEstimate, ns >= 40.0});
  }

  // Pulse-shape replay by responder 3 (slot 3, shape 0, close enough that
  // its response clears the unknown-ID amplitude floor): both the in-bank
  // forge (0xC8) and the out-of-bank forge (0xE0, which still correlates
  // best with the 0xC8 template) decode as shape 1 -> undeployed ID 7, so
  // the unknown-ID check fires.
  {
    fault::AttackSpec spec;
    spec.attacker_id = 3;
    spec.kind = fault::AttackKind::kShapeReplay;
    spec.forged_shape_register = 0xC8;
    cells.push_back({"replay_inband", "replay", 0.0, one_spec(spec), {}, 3,
                     Target::kNone, true});
    spec.forged_shape_register = 0xE0;
    cells.push_back({"replay_outband", "replay", 0.0, one_spec(spec), {}, 3,
                     Target::kNone, true});
  }

  // Benign reference: bench_ext_fault_sweep's 30 % loss plan, no adversary.
  // Any verdict here is a false positive; the gate requires exactly zero.
  {
    Cell benign;
    benign.key = "benign_l30";
    benign.family = "benign";
    apply_loss(benign.fault, 0.3);
    cells.push_back(benign);
  }
  return cells;
}

ranging::ScenarioConfig cell_config(std::uint64_t seed, const Cell& cell) {
  constexpr int kResponders = 4;
  ranging::ScenarioConfig cfg = bench::office_scenario(seed);
  cfg.ranging.num_slots = 4;
  cfg.ranging.slot_spacing_s = 150e-9;
  cfg.ranging.shape_registers = {0x93, 0xC8};
  cfg.detect_max_responses = 2 * kResponders;
  cfg.slot_aware_selection = true;
  // Fixed spots (shared with tests/test_adversarial.cpp) rather than the
  // fault-sweep ring: the ghost attacker (responder 2) must sit far from
  // the initiator — its one-way delay caps how far a ghost can lead the
  // legitimate path, and a close-in attacker's boosted frame would also
  // bury the sync payload below the SIR decode floor.
  const geom::Vec2 spots[kResponders] = {
      {5.0, 4.0}, {8.0, 5.5}, {9.5, 2.5}, {6.0, 6.5}};
  for (int i = 0; i < kResponders; ++i)
    cfg.responders.push_back({i, spots[i]});
  cfg.attack = cell.plan;
  cfg.fault = cell.fault;
  cfg.attack_detector.enabled = true;
  cfg.resilience.max_retries = 2;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 120);

  std::string only_family;
  double only_strength = -1.0;
  double extra_loss = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--attack") == 0 && i + 1 < argc) {
      only_family = argv[++i];
    } else if (std::strcmp(argv[i], "--strength") == 0 && i + 1 < argc) {
      only_strength = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--loss") == 0 && i + 1 < argc) {
      extra_loss = std::atof(argv[++i]);
    }
  }

  std::vector<Cell> cells;
  for (Cell& cell : make_cells()) {
    if (!only_family.empty() && cell.family != only_family) continue;
    if (only_strength >= 0.0 && cell.strength != only_strength) continue;
    if (extra_loss > 0.0) apply_loss(cell.fault, extra_loss);
    cells.push_back(std::move(cell));
  }

  bench::JsonReport report("ext_adversarial", opts.trials);
  bench::heading("Extension — adversarial ranging vs. the attack detector");
  std::printf("(%d trials per cell, detector on, max_retries = 2)\n",
              opts.trials);
  std::printf("\n%-15s %-8s %-10s %-12s %-14s %s\n", "cell", "decoded",
              "detect %", "suspects", "reduction p50",
              "undetected reduction p50");

  double strong_rounds = 0.0;
  double strong_detected = 0.0;
  double benign_rounds = 0.0;
  double benign_false_positives = 0.0;

  for (const Cell& cell : cells) {
    const std::string& key = cell.key;
    std::uint64_t cell_seed = 9300;
    for (const char c : key) cell_seed = cell_seed * 31 + static_cast<unsigned char>(c);

    const auto result = bench::run_rounds(
        opts, cell_seed, opts.trials,
        [&](std::uint64_t seed) { return cell_config(seed, cell); },
        [&](const ranging::ConcurrentRangingScenario& scenario,
            const ranging::RoundOutcome& out, runner::TrialRecorder& rec) {
          rec.count(key + "_rounds");
          if (!out.payload_decoded) return;
          rec.count(key + "_decoded");
          const bool detected = !out.verdicts.empty();
          if (detected) rec.count(key + "_detected");
          rec.count(key + "_suspect_reports",
                    static_cast<std::int64_t>(
                        scenario.stats().suspect_reports));

          // The targeted measurement's shortfall vs geometry truth: the
          // attacker's take if the round were trusted, and (the number that
          // matters operationally) its take when the detector stayed quiet.
          double reduction = 0.0;
          bool have_reduction = false;
          if (cell.target == Target::kSyncDistance &&
              out.sync_responder_id == cell.attacker) {
            reduction = scenario.true_distance(cell.attacker).value() -
                        out.d_twr_m;
            have_reduction = true;
          } else if (cell.target == Target::kEstimate) {
            for (const auto& est : out.estimates) {
              if (est.responder_id != cell.attacker) continue;
              reduction = scenario.true_distance(cell.attacker).value() -
                          est.distance_m;
              have_reduction = true;
              break;
            }
          }
          if (have_reduction) {
            rec.sample(key + "_reduction_m", reduction);
            if (!detected)
              rec.sample(key + "_undetected_reduction_m", reduction);
          }
        });

    const double decoded =
        static_cast<double>(result.counter(key + "_decoded"));
    const double detected =
        static_cast<double>(result.counter(key + "_detected"));
    const double suspects =
        static_cast<double>(result.counter(key + "_suspect_reports"));
    const double detect_rate = decoded > 0.0 ? detected / decoded : 0.0;
    const auto red = result.summary(key + "_reduction_m");
    const auto undet = result.summary(key + "_undetected_reduction_m");

    std::printf("%-15s %-8.0f %7.1f %%  %-12.0f %-14.3f %.3f\n", key.c_str(),
                decoded, 100.0 * detect_rate, suspects, red.p50, undet.p50);

    report.metric(key + "_decoded_rounds", decoded);
    report.metric(key + "_detected_rounds", detected);
    report.metric(key + "_detection_rate", detect_rate);
    report.metric(key + "_suspect_reports", suspects);
    report.summarize(result, key + "_reduction_m");
    report.summarize(result, key + "_undetected_reduction_m");

    if (cell.strong) {
      strong_rounds += decoded;
      strong_detected += detected;
    }
    if (cell.family == "benign") {
      benign_rounds += decoded;
      benign_false_positives += detected;
    }
  }

  const double detection_rate =
      strong_rounds > 0.0 ? strong_detected / strong_rounds : 0.0;
  const double benign_fp_rate =
      benign_rounds > 0.0 ? benign_false_positives / benign_rounds : 0.0;
  report.metric("detection_rate", detection_rate);
  report.metric("benign_false_positive_rate", benign_fp_rate);

  std::printf(
      "\nstrong-attack detection rate: %.1f %% (gate: >= 90 %%)\n"
      "benign false-positive rate:   %.3f (gate: exactly 0)\n"
      "\ncheck: weak attacks evade detection but buy centimetres; strong\n"
      "attacks buy metres only in the rounds the detector misses — and the\n"
      "undetected-reduction column shows those shrink to nothing past the\n"
      "thresholds.\n",
      100.0 * detection_rate, benign_fp_rate);
  return report.write_if_requested(opts) ? 0 : 1;
}
