// Extension A7: network-wide all-pairs ranging, *measured* on the simulated
// radios (not just the analytic message counts of Sect. III). Every node
// initiates one concurrent round; the sweep yields the full distance matrix
// with N broadcasts instead of N(N-1) scheduled exchanges. Each Monte-Carlo
// trial runs one full sweep on a freshly seeded network.
#include <cmath>
#include <cstdio>
#include <numbers>
#include <string>

#include "bench_util.hpp"
#include "dsp/stats.hpp"
#include "ranging/capacity.hpp"
#include "ranging/network.hpp"

namespace {

uwb::ranging::NetworkConfig network_config(int n, std::uint64_t seed) {
  using namespace uwb;
  ranging::NetworkConfig cfg;
  cfg.room = geom::Room::rectangular(20.0, 14.0, 10.0);
  cfg.ranging.num_slots = 4;
  cfg.ranging.slot_spacing_s = 150e-9;
  cfg.ranging.shape_registers = {0x93, 0xC8, 0xE6};
  cfg.seed = seed;
  // Ring of nodes.
  for (int i = 0; i < n; ++i) {
    const double ang = 2.0 * std::numbers::pi * i / n + 0.4;
    cfg.node_positions.push_back(
        {10.0 + 6.5 * std::cos(ang), 7.0 + 4.5 * std::sin(ang)});
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 10);
  bench::JsonReport report("ext_network", opts.trials);
  bench::heading("Extension — all-pairs network ranging (measured in-sim)");
  std::printf("(%d sweeps per network size)\n", opts.trials);

  std::printf("\n%-6s %-12s %-14s %-14s %-16s %-16s %s\n", "N", "pairs",
              "filled", "mean |err| [m]", "energy [mJ]", "TWR energy [mJ]",
              "sweep time [ms]");

  for (const int n : {3, 5, 8, 12}) {
    const auto result = bench::monte_carlo(
        opts, 1400 + static_cast<std::uint64_t>(n))
        .run(opts.trials, [n](const runner::TrialContext& ctx,
                              runner::TrialRecorder& rec) {
          const ranging::NetworkConfig cfg = network_config(n, ctx.seed);
          ranging::NetworkRangingSession session(cfg);
          const auto sweep = session.run_full_sweep();
          rec.sample("energy_mj", sweep.total_energy_j * 1e3);
          rec.sample("time_ms", sweep.duration_s * 1e3);
          for (int i = 0; i < n; ++i)
            for (int j = 0; j < n; ++j) {
              if (i == j) continue;
              rec.count("pairs");
              const auto& d = sweep.matrix[static_cast<std::size_t>(i)]
                                          [static_cast<std::size_t>(j)];
              if (!d.has_value()) continue;
              rec.count("filled");
              rec.sample("abs_err", std::abs(*d - session.true_distance(i, j).value()));
            }
        });

    const auto pairs = result.counter("pairs");
    const auto filled = result.counter("filled");
    const auto& errs = result.samples("abs_err");
    const double filled_pct =
        pairs ? 100.0 * static_cast<double>(filled) /
                    static_cast<double>(pairs)
              : 0.0;
    const double mean_err = errs.empty() ? 0.0 : dsp::mean(errs);
    const double energy_mj = dsp::mean(result.samples("energy_mj"));
    const double time_ms = dsp::mean(result.samples("time_ms"));
    // Analytic SS-TWR energy for the same task (every node ranges to all
    // others with scheduled exchanges).
    const ranging::NetworkConfig cfg = network_config(n, 0);
    const auto twr = ranging::twr_round_cost(n - 1, cfg.phy, 290e-6,
                                             dw::EnergyModelParams{});
    std::printf("%-6d %-12lld %5.1f %%       %-14.3f %-16.3f %-16.3f %.2f\n",
                n, static_cast<long long>(pairs), filled_pct, mean_err,
                energy_mj, twr.network_j * n * 1e3, time_ms);
    const std::string key = std::to_string(n);
    report.metric("filled_pct_n" + key, filled_pct);
    report.metric("mean_abs_err_m_n" + key, mean_err);
    report.metric("energy_mj_n" + key, energy_mj);
  }

  std::printf(
      "\ncheck: the sweep fills the distance matrix with N broadcasts; the\n"
      "measured radio energy stays far below the scheduled-TWR requirement\n"
      "and the gap widens with N (the paper's Sect. III argument, observed\n"
      "end-to-end rather than counted).\n");
  return report.write_if_requested(opts) ? 0 : 1;
}
