// Extension A7: network-wide all-pairs ranging, *measured* on the simulated
// radios (not just the analytic message counts of Sect. III). Every node
// initiates one concurrent round; the sweep yields the full distance matrix
// with N broadcasts instead of N(N-1) scheduled exchanges.
#include <cmath>
#include <cstdio>
#include <numbers>

#include "bench_util.hpp"
#include "dsp/stats.hpp"
#include "ranging/capacity.hpp"
#include "ranging/network.hpp"

int main(int argc, char** argv) {
  using namespace uwb;
  const int trials = bench::trials_arg(argc, argv, 10);
  bench::heading("Extension — all-pairs network ranging (measured in-sim)");
  std::printf("(%d sweeps per network size)\n", trials);

  std::printf("\n%-6s %-12s %-14s %-14s %-16s %-16s %s\n", "N", "pairs",
              "filled", "mean |err| [m]", "energy [mJ]", "TWR energy [mJ]",
              "sweep time [ms]");

  for (const int n : {3, 5, 8, 12}) {
    ranging::NetworkConfig cfg;
    cfg.room = geom::Room::rectangular(20.0, 14.0, 10.0);
    cfg.ranging.num_slots = 4;
    cfg.ranging.slot_spacing_s = 150e-9;
    cfg.ranging.shape_registers = {0x93, 0xC8, 0xE6};
    cfg.seed = 1400 + static_cast<std::uint64_t>(n);
    // Ring of nodes.
    for (int i = 0; i < n; ++i) {
      const double ang = 2.0 * std::numbers::pi * i / n + 0.4;
      cfg.node_positions.push_back(
          {10.0 + 6.5 * std::cos(ang), 7.0 + 4.5 * std::sin(ang)});
    }
    ranging::NetworkRangingSession session(cfg);

    int filled = 0, total_pairs = 0;
    RVec errs;
    double energy_j = 0.0, time_s = 0.0;
    for (int t = 0; t < trials; ++t) {
      const auto sweep = session.run_full_sweep();
      energy_j = sweep.total_energy_j;  // cumulative across sweeps
      time_s += sweep.duration_s;
      for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j) {
          if (i == j) continue;
          ++total_pairs;
          const auto& d = sweep.matrix[static_cast<std::size_t>(i)]
                                      [static_cast<std::size_t>(j)];
          if (!d.has_value()) continue;
          ++filled;
          errs.push_back(std::abs(*d - session.true_distance(i, j)));
        }
    }
    // Analytic SS-TWR energy for the same task (every node ranges to all
    // others with scheduled exchanges).
    const auto twr = ranging::twr_round_cost(n - 1, cfg.phy, 290e-6,
                                             dw::EnergyModelParams{});
    std::printf("%-6d %-12d %5.1f %%       %-14.3f %-16.3f %-16.3f %.2f\n", n,
                total_pairs, 100.0 * filled / total_pairs,
                errs.empty() ? 0.0 : dsp::mean(errs),
                energy_j * 1e3 / trials, twr.network_j * n * 1e3,
                time_s * 1e3 / trials);
  }

  std::printf(
      "\ncheck: the sweep fills the distance matrix with N broadcasts; the\n"
      "measured radio energy stays far below the scheduled-TWR requirement\n"
      "and the gap widens with N (the paper's Sect. III argument, observed\n"
      "end-to-end rather than counted).\n");
  return 0;
}
