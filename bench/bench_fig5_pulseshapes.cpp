// Reproduces paper Fig. 5: the transmitted pulse shape s_i(t) for different
// TC_PGDELAY register values (0x93 default, 0xC8, 0xE6, 0xF0), scaled to
// unit energy as in the paper, plus the properties the Sect. V classifier
// relies on (monotone widths, sub-unity cross-correlations).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "dsp/signal.hpp"
#include "dw1000/pulse.hpp"

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 1);
  bench::JsonReport report("fig5_pulseshapes", opts.trials);
  bench::heading("Fig. 5 — pulse shapes per TC_PGDELAY register");

  const std::vector<std::pair<const char*, std::uint8_t>> shapes = {
      {"s1 (0x93, default)", 0x93},
      {"s2 (0xC8)", 0xC8},
      {"s3 (0xE6)", 0xE6},
      {"s4 (0xF0)", 0xF0},
  };

  bench::subheading("shape properties");
  std::printf("%-22s %-14s %-16s %s\n", "shape", "width factor",
              "bandwidth [MHz]", "duration T_p [ns]");
  for (const auto& [name, reg] : shapes) {
    std::printf("%-22s %-14.3f %-16.1f %.2f\n", name,
                dw::pulse_width_factor(reg), dw::pulse_bandwidth_hz(reg) / 1e6,
                dw::pulse_duration_s(reg) * 1e9);
  }

  for (const auto& [name, reg] : shapes) {
    bench::subheading(std::string(name) + " (unit energy, 0.1 ns grid)");
    const double ts = 0.1e-9;
    const CVec tmpl = dsp::normalize_energy(dw::sample_pulse_template(reg, ts));
    const auto centre = static_cast<double>(dw::template_centre_index(reg, ts));
    std::vector<double> xs, ys;
    for (std::size_t i = 0; i < tmpl.size(); i += 2) {
      xs.push_back((static_cast<double>(i) - centre) * 0.1);
      // Plot |s| so negative ring lobes remain visible in the bar plot.
      ys.push_back(std::abs(tmpl[i]));
    }
    bench::ascii_profile(xs, ys, "ns", 36);
  }

  bench::subheading("pairwise max cross-correlation (unit-energy templates)");
  const double ts = 0.125e-9;
  std::vector<CVec> unit;
  for (const auto& [name, reg] : shapes)
    unit.push_back(dsp::normalize_energy(dw::sample_pulse_template(reg, ts)));
  std::printf("%8s", "");
  for (const auto& [name, reg] : shapes) std::printf("  0x%02X ", reg);
  std::printf("\n");
  double worst_offdiag = 0.0;
  for (std::size_t i = 0; i < unit.size(); ++i) {
    std::printf("  0x%02X  ", shapes[i].second);
    for (std::size_t j = 0; j < unit.size(); ++j) {
      double best = 0.0;
      const auto na = static_cast<std::ptrdiff_t>(unit[i].size());
      const auto nb = static_cast<std::ptrdiff_t>(unit[j].size());
      for (std::ptrdiff_t lag = -nb + 1; lag < na; ++lag) {
        Complex acc{};
        for (std::ptrdiff_t m = std::max<std::ptrdiff_t>(0, lag);
             m < std::min(na, lag + nb); ++m)
          acc += unit[i][static_cast<std::size_t>(m)] *
                 std::conj(unit[j][static_cast<std::size_t>(m - lag)]);
        best = std::max(best, std::abs(acc));
      }
      if (i != j) worst_offdiag = std::max(worst_offdiag, best);
      std::printf("%6.3f ", best);
    }
    std::printf("\n");
  }

  report.param("shapes", static_cast<double>(shapes.size()));
  report.metric("max_cross_correlation", worst_offdiag);
  report.metric("default_bandwidth_mhz", dw::pulse_bandwidth_hz(0x93) / 1e6);

  std::printf(
      "\npaper check: the default 0x93 is the narrowest (900 MHz); larger\n"
      "register values widen the pulse (lower bandwidth) and alter the ring\n"
      "structure, making the %d available shapes distinguishable by matched\n"
      "filtering.\n",
      uwb::k::num_pulse_shapes);
  return report.write_if_requested(opts) ? 0 : 1;
}
