// Extension A3 (paper future work): impact of non-line-of-sight on
// concurrent ranging. A reference responder at 3 m stays clear; the test
// responder at 8 m sits behind an obstacle whose attenuation is swept.
// Metrics: how often the test responder is still detected, and the distance
// bias that appears when the receiver locks onto a reflection instead of
// the buried direct path.
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "dsp/stats.hpp"
#include "dw1000/diagnostics.hpp"

namespace {

uwb::ranging::ScenarioConfig nlos_config(std::uint64_t seed, double atten) {
  using namespace uwb;
  ranging::ScenarioConfig cfg = bench::office_scenario(seed);
  cfg.room = geom::Room::rectangular(14.0, 8.0, 12.0);
  if (atten > 0.0)
    cfg.room.add_obstacle({{{7.0, 3.0}, {7.0, 5.0}}, atten, "wall"});
  cfg.initiator_position = {2.0, 4.0};
  cfg.responders = {{0, {5.0, 4.0}}, {1, {10.0, 4.0}}};
  // Extract a few extra peaks so the weak NLOS response is surfaced even
  // when multipath of the near responder out-ranks it.
  cfg.detect_max_responses = 4;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 200);
  bench::JsonReport report("ext_nlos", opts.trials);
  bench::heading("Extension — NLOS impact on concurrent ranging");
  std::printf("(%d rounds per attenuation level)\n", opts.trials);

  const double d2_true = 8.0;
  std::printf("\n%-18s %-12s %-14s %-14s %-14s %s\n", "obstacle [dB]",
              "detected", "mean err [m]", "p95 |err| [m]", "decode rate",
              "fp/total [dB]");
  for (const double atten : {0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
    const std::uint64_t level_seed = 903 + static_cast<std::uint64_t>(atten);

    // Link diagnostics of the obstructed link alone (what the responder's
    // own receiver would report): the NLOS indicator from Sect. "future
    // work" instrumentation.
    const auto link_result = bench::run_rounds(
        opts, level_seed + 1, 30,
        [&](std::uint64_t seed) {
          ranging::ScenarioConfig link_cfg = nlos_config(seed, atten);
          link_cfg.responders = {{1, {10.0, 4.0}}};
          return link_cfg;
        },
        [](const ranging::ConcurrentRangingScenario&,
           const ranging::RoundOutcome& out, runner::TrialRecorder& rec) {
          if (out.completed)
            rec.sample("fp_ratio", dw::analyze_cir(out.cir.taps).fp_to_total_db);
        });
    const auto& fp_ratios = link_result.samples("fp_ratio");

    const auto result = bench::run_rounds(
        opts, level_seed, opts.trials,
        [&](std::uint64_t seed) { return nlos_config(seed, atten); },
        [d2_true](const ranging::ConcurrentRangingScenario&,
                  const ranging::RoundOutcome& out,
                  runner::TrialRecorder& rec) {
          if (!out.payload_decoded) return;
          rec.count("rounds");
          // The detection nearest to the true distance, if within 2 m.
          double best_err = 2.0;
          bool found = false;
          for (std::size_t i = 1; i < out.estimates.size(); ++i) {
            const double err = out.estimates[i].distance_m - d2_true;
            if (std::abs(err) < std::abs(best_err)) {
              best_err = err;
              found = true;
            }
          }
          if (found) rec.sample("err", best_err);
        });

    const auto rounds = result.counter("rounds");
    if (rounds == 0) {
      std::printf("%-18.0f (no completed rounds)\n", atten);
      continue;
    }
    const auto& errs = result.samples("err");
    RVec abs_errs;
    for (double e : errs) abs_errs.push_back(std::abs(e));
    const double detected_pct = 100.0 * static_cast<double>(errs.size()) /
                                static_cast<double>(rounds);
    const double mean_err = errs.empty() ? 0.0 : dsp::mean(errs);
    std::printf("%-18.0f %5.1f %%     %-14.3f %-14.3f %5.1f %%      %.1f\n",
                atten, detected_pct, mean_err,
                abs_errs.empty() ? 0.0 : dsp::percentile(abs_errs, 95.0),
                100.0 * static_cast<double>(rounds) / opts.trials,
                fp_ratios.empty() ? 0.0 : dsp::mean(fp_ratios));
    const std::string key = std::to_string(static_cast<int>(atten));
    report.metric("detected_pct_db" + key, detected_pct);
    report.metric("mean_err_m_db" + key, mean_err);
  }

  std::printf(
      "\ncheck: moderate attenuation keeps the responder detectable with a\n"
      "growing positive bias (reflection lock-in); deep NLOS eventually\n"
      "drops the response below the detector's reach — the effect the paper\n"
      "defers to future work.\n");
  return report.write_if_requested(opts) ? 0 : 1;
}
