// Extension A3 (paper future work): impact of non-line-of-sight on
// concurrent ranging. A reference responder at 3 m stays clear; the test
// responder at 8 m sits behind an obstacle whose attenuation is swept.
// Metrics: how often the test responder is still detected, and the distance
// bias that appears when the receiver locks onto a reflection instead of
// the buried direct path.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "dsp/stats.hpp"
#include "dw1000/diagnostics.hpp"

int main(int argc, char** argv) {
  using namespace uwb;
  const int trials = bench::trials_arg(argc, argv, 200);
  bench::heading("Extension — NLOS impact on concurrent ranging");
  std::printf("(%d rounds per attenuation level)\n", trials);

  std::printf("\n%-18s %-12s %-14s %-14s %-14s %s\n", "obstacle [dB]",
              "detected", "mean err [m]", "p95 |err| [m]", "decode rate",
              "fp/total [dB]");
  for (const double atten : {0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
    ranging::ScenarioConfig cfg = bench::office_scenario(
        903 + static_cast<std::uint64_t>(atten));
    cfg.room = geom::Room::rectangular(14.0, 8.0, 12.0);
    if (atten > 0.0)
      cfg.room.add_obstacle({{{7.0, 3.0}, {7.0, 5.0}}, atten, "wall"});
    cfg.initiator_position = {2.0, 4.0};
    cfg.responders = {{0, {5.0, 4.0}}, {1, {10.0, 4.0}}};
    // Extract a few extra peaks so the weak NLOS response is surfaced even
    // when multipath of the near responder out-ranks it.
    cfg.detect_max_responses = 4;
    ranging::ConcurrentRangingScenario scenario(cfg);
    const double d2_true = 8.0;

    // Link diagnostics of the obstructed link alone (what the responder's
    // own receiver would report): the NLOS indicator from Sect. "future
    // work" instrumentation.
    RVec fp_ratios;
    {
      ranging::ScenarioConfig link_cfg = cfg;
      link_cfg.responders = {{1, {10.0, 4.0}}};
      link_cfg.seed = cfg.seed + 1;
      ranging::ConcurrentRangingScenario link(link_cfg);
      for (int t = 0; t < 30; ++t) {
        const auto out = link.run_round();
        if (out.completed)
          fp_ratios.push_back(dw::analyze_cir(out.cir.taps).fp_to_total_db);
      }
    }

    int rounds = 0, detected = 0;
    RVec errs;
    for (int t = 0; t < trials; ++t) {
      const auto out = scenario.run_round();
      if (!out.payload_decoded) continue;
      ++rounds;
      // The detection nearest to the true distance, if within 2 m.
      double best_err = 2.0;
      bool found = false;
      for (std::size_t i = 1; i < out.estimates.size(); ++i) {
        const double err = out.estimates[i].distance_m - d2_true;
        if (std::abs(err) < std::abs(best_err)) {
          best_err = err;
          found = true;
        }
      }
      if (found) {
        ++detected;
        errs.push_back(best_err);
      }
    }
    if (rounds == 0) {
      std::printf("%-18.0f (no completed rounds)\n", atten);
      continue;
    }
    RVec abs_errs;
    for (double e : errs) abs_errs.push_back(std::abs(e));
    std::printf("%-18.0f %5.1f %%     %-14.3f %-14.3f %5.1f %%      %.1f\n",
                atten, 100.0 * detected / rounds,
                errs.empty() ? 0.0 : dsp::mean(errs),
                abs_errs.empty() ? 0.0 : dsp::percentile(abs_errs, 95.0),
                100.0 * rounds / trials,
                fp_ratios.empty() ? 0.0 : dsp::mean(fp_ratios));
  }

  std::printf(
      "\ncheck: moderate attenuation keeps the responder detectable with a\n"
      "growing positive bias (reflection lock-in); deep NLOS eventually\n"
      "drops the response below the detector's reach — the effect the paper\n"
      "defers to future work.\n");
  return 0;
}
