// Ablation A6: slot-aware response selection (extension). With the combined
// RPM x pulse-shaping scheme at high load, a strong multipath component of
// a near responder occasionally out-ranks a far responder's direct path in
// the global N-1 selection (the residual failure mode of Sect. IV's
// detector). Extracting extra peaks and collapsing them per decoded ID
// recovers most of those losses at zero protocol cost.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace uwb;

ranging::ScenarioConfig fig8_scenario(std::uint64_t seed) {
  ranging::ScenarioConfig cfg;
  cfg.room = geom::Room::rectangular(16.0, 10.0, 8.0);  // livelier multipath
  cfg.initiator_position = {1.0, 5.0};
  cfg.seed = seed;
  cfg.ranging.num_slots = 4;
  cfg.ranging.slot_spacing_s = 150e-9;
  cfg.ranging.shape_registers = {0x93, 0xC8, 0xE6};
  cfg.responders = {
      {0, {4.0, 5.0}},  {1, {6.5, 3.0}},  {2, {9.0, 7.0}},
      {3, {11.0, 4.0}}, {4, {5.5, 7.5}},  {5, {8.0, 2.5}},
      {6, {12.5, 6.5}}, {7, {14.0, 5.0}}, {8, {7.0, 5.5}},
  };
  return cfg;
}

runner::TrialResult evaluate(const bench::BenchOptions& opts,
                             bool slot_aware) {
  return bench::run_rounds(
      opts, 1300, opts.trials,
      [slot_aware](std::uint64_t seed) {
        ranging::ScenarioConfig cfg = fig8_scenario(seed);
        if (slot_aware) {
          cfg.detect_max_responses = 16;  // extract generously, then collapse
          cfg.slot_aware_selection = true;
        }
        return cfg;
      },
      [](const ranging::ConcurrentRangingScenario& scenario,
         const ranging::RoundOutcome& out, runner::TrialRecorder& rec) {
        if (!out.payload_decoded) return;
        rec.count("rounds");
        std::vector<bool> seen(9, false);
        for (const auto& est : out.estimates) {
          if (est.responder_id < 0 || est.responder_id > 8) continue;
          if (seen[static_cast<std::size_t>(est.responder_id)]) continue;
          seen[static_cast<std::size_t>(est.responder_id)] = true;
          const double truth = scenario.true_distance(est.responder_id).value();
          if (std::abs(est.distance_m - truth) < 1.0)
            rec.count("decoded_ids");
          else
            rec.count("wrong_ids");
        }
      });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 150);
  bench::JsonReport report("ablation_slotaware", opts.trials);
  bench::heading("Ablation — slot-aware selection at full Fig. 8 load");
  std::printf("(9 responders, 4 slots x 3 shapes, %d rounds per variant)\n",
              opts.trials);

  std::printf("\n%-34s %-18s %s\n", "variant", "IDs ranged", "wrong distance");
  for (const bool slot_aware : {false, true}) {
    const auto s = evaluate(opts, slot_aware);
    const auto rounds = s.counter("rounds");
    const double per_round =
        rounds ? static_cast<double>(s.counter("decoded_ids")) /
                     static_cast<double>(rounds)
               : 0.0;
    const double wrong = rounds
                             ? static_cast<double>(s.counter("wrong_ids")) /
                                   static_cast<double>(rounds)
                             : 0.0;
    std::printf("%-34s %5.2f / 9 per round  %.2f per round\n",
                slot_aware ? "slot-aware (extract 16, collapse)"
                           : "paper baseline (global top N-1)",
                per_round, wrong);
    const char* key = slot_aware ? "slotaware" : "baseline";
    report.metric(std::string(key) + "_ids_per_round", per_round);
    report.metric(std::string(key) + "_wrong_per_round", wrong);
  }

  std::printf(
      "\ncheck: collapsing per decoded identity recovers responders whose\n"
      "direct path ranked below another responder's multipath, without any\n"
      "change on the air.\n");
  return report.write_if_requested(opts) ? 0 : 1;
}
