// Extension A4 (paper future work): anchor-based localisation built on
// concurrent ranging. Four ceiling anchors locate a tag with ONE ranging
// round per fix; accuracy is reported over a grid of tag positions, with
// and without the delayed-TX truncation. The grid x repetitions are
// flattened into one Monte-Carlo run; each trial builds a fresh localiser.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dsp/stats.hpp"
#include "loc/anchor_system.hpp"

namespace {

using namespace uwb;

loc::AnchorSystemConfig make_config(bool truncation, std::uint64_t seed) {
  loc::AnchorSystemConfig cfg;
  cfg.scenario.room = geom::Room::rectangular(12.0, 8.0, 10.0);
  cfg.scenario.seed = seed;
  cfg.scenario.delayed_tx_truncation = truncation;
  cfg.scenario.ranging.num_slots = 4;
  cfg.scenario.ranging.slot_spacing_s = 120e-9;
  cfg.scenario.responders = {{0, {0.5, 0.5}},
                             {1, {11.5, 0.5}},
                             {2, {11.5, 7.5}},
                             {3, {0.5, 7.5}}};
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 20);
  bench::JsonReport report("ext_localization", opts.trials);
  bench::heading("Extension — anchor-based localisation (1 round per fix)");
  std::printf("(4 anchors, 3x3 tag grid, %d fixes per point)\n", opts.trials);

  // The 3x3 tag grid; every grid point gets opts.trials fixes.
  std::vector<geom::Vec2> grid;
  for (double x = 3.0; x <= 9.0; x += 3.0)
    for (double y = 2.0; y <= 6.0; y += 2.0) grid.push_back({x, y});
  const int attempts = static_cast<int>(grid.size()) * opts.trials;

  for (const bool truncation : {true, false}) {
    bench::subheading(truncation ? "DW1000 hardware (TX truncation on)"
                                 : "ideal TX timing (ablation)");
    const auto result = bench::monte_carlo(opts, 904).run(
        attempts, [&](const runner::TrialContext& ctx,
                      runner::TrialRecorder& rec) {
          const auto& tag =
              grid[static_cast<std::size_t>(ctx.trial_index) % grid.size()];
          loc::AnchorLocalizer localizer(make_config(truncation, ctx.seed));
          const auto fix = localizer.locate(tag);
          if (!fix.ok) return;
          rec.count("fixes");
          rec.sample("error_m", fix.error_m);
        });
    const auto& errors = result.samples("error_m");
    if (errors.empty()) {
      std::printf("no fixes\n");
      continue;
    }
    const double fix_rate = 100.0 * static_cast<double>(errors.size()) /
                            static_cast<double>(attempts);
    std::printf("fix rate         : %.1f %% (%zu / %d)\n", fix_rate,
                errors.size(), attempts);
    std::printf("mean error       : %.3f m\n", dsp::mean(errors));
    std::printf("median error     : %.3f m\n", dsp::median(errors));
    std::printf("p95 error        : %.3f m\n", dsp::percentile(errors, 95.0));
    std::printf("(%.1f ms on %d threads)\n", result.wall_ms(),
                result.threads_used());
    const std::string key = truncation ? "trunc_on" : "trunc_off";
    report.metric(key + "_fix_rate_pct", fix_rate);
    report.metric(key + "_mean_err_m", dsp::mean(errors));
    report.metric(key + "_p95_err_m", dsp::percentile(errors, 95.0));
  }

  std::printf(
      "\ncheck: a position fix from a single TX+RX pair per round — the\n"
      "cooperative/anchor-based system the paper names as future work. The\n"
      "truncation-free ablation shows the achievable headroom (~decimetre).\n");
  return report.write_if_requested(opts) ? 0 : 1;
}
