// Extension A4 (paper future work): anchor-based localisation built on
// concurrent ranging. Four ceiling anchors locate a tag with ONE ranging
// round per fix; accuracy is reported over a grid of tag positions, with
// and without the delayed-TX truncation.
#include <cstdio>

#include "bench_util.hpp"
#include "dsp/stats.hpp"
#include "loc/anchor_system.hpp"

namespace {

using namespace uwb;

loc::AnchorSystemConfig make_config(bool truncation, std::uint64_t seed) {
  loc::AnchorSystemConfig cfg;
  cfg.scenario.room = geom::Room::rectangular(12.0, 8.0, 10.0);
  cfg.scenario.seed = seed;
  cfg.scenario.delayed_tx_truncation = truncation;
  cfg.scenario.ranging.num_slots = 4;
  cfg.scenario.ranging.slot_spacing_s = 120e-9;
  cfg.scenario.responders = {{0, {0.5, 0.5}},
                             {1, {11.5, 0.5}},
                             {2, {11.5, 7.5}},
                             {3, {0.5, 7.5}}};
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const int trials = bench::trials_arg(argc, argv, 20);
  bench::heading("Extension — anchor-based localisation (1 round per fix)");
  std::printf("(4 anchors, 3x3 tag grid, %d fixes per point)\n", trials);

  for (const bool truncation : {true, false}) {
    bench::subheading(truncation ? "DW1000 hardware (TX truncation on)"
                                 : "ideal TX timing (ablation)");
    loc::AnchorLocalizer localizer(make_config(truncation, 904));
    RVec errors;
    int attempts = 0, fixes = 0;
    for (double x = 3.0; x <= 9.0; x += 3.0) {
      for (double y = 2.0; y <= 6.0; y += 2.0) {
        for (int t = 0; t < trials; ++t) {
          ++attempts;
          const auto fix = localizer.locate({x, y});
          if (!fix.ok) continue;
          ++fixes;
          errors.push_back(fix.error_m);
        }
      }
    }
    if (errors.empty()) {
      std::printf("no fixes\n");
      continue;
    }
    std::printf("fix rate         : %.1f %% (%d / %d)\n",
                100.0 * fixes / attempts, fixes, attempts);
    std::printf("mean error       : %.3f m\n", dsp::mean(errors));
    std::printf("median error     : %.3f m\n", dsp::median(errors));
    std::printf("p95 error        : %.3f m\n", dsp::percentile(errors, 95.0));
  }

  std::printf(
      "\ncheck: a position fix from a single TX+RX pair per round — the\n"
      "cooperative/anchor-based system the paper names as future work. The\n"
      "truncation-free ablation shows the achievable headroom (~decimetre).\n");
  return 0;
}
