// Reproduces paper Fig. 8: combining response position modulation with pulse
// shaping. Nine responders share one concurrent round using N_RPM = 4 slots
// and N_PS = 3 pulse shapes (capacity N_max = 12).
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "dsp/stats.hpp"
#include "ranging/capacity.hpp"

int main(int argc, char** argv) {
  using namespace uwb;
  const int trials = bench::trials_arg(argc, argv, 100);
  bench::heading("Fig. 8 — RPM x pulse shaping, 9 users in one round");

  ranging::ScenarioConfig cfg = bench::hallway_scenario(808);
  cfg.room = geom::Room::rectangular(16.0, 10.0, 10.0);
  cfg.initiator_position = {1.0, 5.0};
  cfg.ranging.num_slots = 4;
  cfg.ranging.slot_spacing_s = 150e-9;
  cfg.ranging.shape_registers = {0x93, 0xC8, 0xE6};
  cfg.responders = {
      {0, {4.0, 5.0}},  {1, {6.5, 3.0}},  {2, {9.0, 7.0}},
      {3, {11.0, 4.0}}, {4, {5.5, 7.5}},  {5, {8.0, 2.5}},
      {6, {12.5, 6.5}}, {7, {14.0, 5.0}}, {8, {7.0, 5.5}},
  };

  bench::subheading("slot x shape assignment (IDs 0-8 of capacity 12)");
  std::printf("%-6s %-6s %-10s %-12s %s\n", "ID", "slot", "shape",
              "delta_i [ns]", "true dist [m]");
  for (const auto& spec : cfg.responders) {
    const auto a = ranging::assign_responder(spec.id, cfg.ranging);
    std::printf("%-6d %-6d s%-9d %-12.0f %.2f\n", spec.id, a.slot,
                a.shape_index + 1, a.extra_delay_s * 1e9,
                geom::distance(cfg.initiator_position, spec.position));
  }

  ranging::ConcurrentRangingScenario scenario(cfg);

  std::map<int, RVec> errors_by_id;
  int decoded_rounds = 0, id_correct = 0, id_total = 0;
  for (int t = 0; t < trials; ++t) {
    const auto out = scenario.run_round();
    if (!out.payload_decoded) continue;
    ++decoded_rounds;
    for (const auto& est : out.estimates) {
      if (est.responder_id < 0) continue;
      ++id_total;
      bool known = false;
      double truth = 0.0;
      for (const auto& spec : cfg.responders)
        if (spec.id == est.responder_id) {
          truth = scenario.true_distance(spec.id);
          known = true;
        }
      if (!known) continue;
      if (std::abs(est.distance_m - truth) < 1.5) {
        ++id_correct;
        errors_by_id[est.responder_id].push_back(est.distance_m - truth);
      }
    }
  }

  bench::subheading("per-responder results over " + std::to_string(trials) +
                    " rounds");
  std::printf("%-6s %-14s %-14s %-12s %s\n", "ID", "true dist [m]",
              "mean est [m]", "bias [m]", "rounds decoded");
  for (const auto& spec : cfg.responders) {
    const auto it = errors_by_id.find(spec.id);
    const double truth = scenario.true_distance(spec.id);
    if (it == errors_by_id.end() || it->second.empty()) {
      std::printf("%-6d %-14.2f (never decoded)\n", spec.id, truth);
      continue;
    }
    const double bias = dsp::mean(it->second);
    std::printf("%-6d %-14.2f %-14.2f %-12.3f %zu\n", spec.id, truth,
                truth + bias, bias, it->second.size());
  }

  std::printf("\nrounds with decoded payload : %d / %d\n", decoded_rounds, trials);
  if (id_total > 0)
    std::printf("identity decode accuracy    : %.1f %% (%d / %d detections)\n",
                100.0 * id_correct / id_total, id_correct, id_total);
  const dw::PhyConfig phy;
  std::printf("capacity N_max = N_RPM * N_PS = %d (9 of 12 used, as in Fig. 8)\n",
              ranging::max_concurrent_responders(4, 3));
  std::printf(
      "\npaper check: one TX + one RX at the initiator yields identified\n"
      "distance estimates to all nine responders simultaneously.\n");
  return 0;
}
