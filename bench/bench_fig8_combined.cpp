// Reproduces paper Fig. 8: combining response position modulation with pulse
// shaping. Nine responders share one concurrent round using N_RPM = 4 slots
// and N_PS = 3 pulse shapes (capacity N_max = 12).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "dsp/stats.hpp"
#include "ranging/capacity.hpp"

namespace {

uwb::ranging::ScenarioConfig fig8_config(std::uint64_t seed) {
  using namespace uwb;
  ranging::ScenarioConfig cfg = bench::hallway_scenario(seed);
  cfg.room = geom::Room::rectangular(16.0, 10.0, 10.0);
  cfg.initiator_position = {1.0, 5.0};
  cfg.ranging.num_slots = 4;
  cfg.ranging.slot_spacing_s = 150e-9;
  cfg.ranging.shape_registers = {0x93, 0xC8, 0xE6};
  cfg.responders = {
      {0, {4.0, 5.0}},  {1, {6.5, 3.0}},  {2, {9.0, 7.0}},
      {3, {11.0, 4.0}}, {4, {5.5, 7.5}},  {5, {8.0, 2.5}},
      {6, {12.5, 6.5}}, {7, {14.0, 5.0}}, {8, {7.0, 5.5}},
  };
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 100);
  bench::JsonReport report("fig8_combined", opts.trials);
  bench::heading("Fig. 8 — RPM x pulse shaping, 9 users in one round");

  const ranging::ScenarioConfig cfg = fig8_config(808);

  bench::subheading("slot x shape assignment (IDs 0-8 of capacity 12)");
  std::printf("%-6s %-6s %-10s %-12s %s\n", "ID", "slot", "shape",
              "delta_i [ns]", "true dist [m]");
  for (const auto& spec : cfg.responders) {
    const auto a = ranging::assign_responder(spec.id, cfg.ranging);
    std::printf("%-6d %-6d s%-9d %-12.0f %.2f\n", spec.id, a.slot,
                a.shape_index + 1, a.extra_delay_s * 1e9,
                geom::distance(cfg.initiator_position, spec.position));
  }

  const auto result = bench::run_rounds(
      opts, 808, opts.trials, fig8_config,
      [&](const ranging::ConcurrentRangingScenario& scenario,
          const ranging::RoundOutcome& out, runner::TrialRecorder& rec) {
        if (!out.payload_decoded) return;
        rec.count("decoded_rounds");
        for (const auto& est : out.estimates) {
          if (est.responder_id < 0) continue;
          rec.count("id_total");
          bool known = false;
          for (const auto& spec : cfg.responders)
            if (spec.id == est.responder_id) known = true;
          if (!known) continue;
          const double truth = scenario.true_distance(est.responder_id).value();
          if (std::abs(est.distance_m - truth) < 1.5) {
            rec.count("id_correct");
            rec.sample("err_id" + std::to_string(est.responder_id),
                       est.distance_m - truth);
          }
        }
      });

  bench::subheading("per-responder results over " +
                    std::to_string(opts.trials) + " rounds");
  std::printf("%-6s %-14s %-14s %-12s %s\n", "ID", "true dist [m]",
              "mean est [m]", "bias [m]", "rounds decoded");
  // One throwaway scenario just for the geometric truths (deterministic).
  const ranging::ConcurrentRangingScenario truth_scenario(cfg);
  for (const auto& spec : cfg.responders) {
    const auto& errs =
        result.samples("err_id" + std::to_string(spec.id));
    const double truth = truth_scenario.true_distance(spec.id).value();
    if (errs.empty()) {
      std::printf("%-6d %-14.2f (never decoded)\n", spec.id, truth);
      continue;
    }
    const double bias = dsp::mean(errs);
    std::printf("%-6d %-14.2f %-14.2f %-12.3f %zu\n", spec.id, truth,
                truth + bias, bias, errs.size());
    report.metric("bias_id" + std::to_string(spec.id) + "_m", bias);
  }

  const auto decoded_rounds = result.counter("decoded_rounds");
  const auto id_correct = result.counter("id_correct");
  const auto id_total = result.counter("id_total");
  std::printf("\nrounds with decoded payload : %lld / %d\n",
              static_cast<long long>(decoded_rounds), opts.trials);
  if (id_total > 0)
    std::printf("identity decode accuracy    : %.1f %% (%lld / %lld detections)\n",
                100.0 * static_cast<double>(id_correct) /
                    static_cast<double>(id_total),
                static_cast<long long>(id_correct),
                static_cast<long long>(id_total));
  std::printf("capacity N_max = N_RPM * N_PS = %d (9 of 12 used, as in Fig. 8)\n",
              ranging::max_concurrent_responders(4, 3));
  std::printf("(%.1f ms on %d threads)\n", result.wall_ms(),
              result.threads_used());
  std::printf(
      "\npaper check: one TX + one RX at the initiator yields identified\n"
      "distance estimates to all nine responders simultaneously.\n");

  report.param("responders", 9.0);
  report.param("num_slots", 4.0);
  report.param("num_shapes", 3.0);
  report.metric("decoded_rounds", static_cast<double>(decoded_rounds));
  report.metric("id_accuracy_pct",
                id_total > 0 ? 100.0 * static_cast<double>(id_correct) /
                                   static_cast<double>(id_total)
                             : 0.0);
  report.runner_metrics(result);
  return report.write_if_requested(opts) ? 0 : 1;
}
