// Reproduces paper Fig. 4: the response-detection walkthrough with three
// responders at 3, 6, and 10 m in a hallway — (a) acquired CIR with fitted
// templates, (b) matched filter output, (c) output after subtracting the
// strongest response, (d) the three detected responses.
//
// On top of the paper's single-round walkthrough, a Monte-Carlo sweep
// (--trials, default 200) measures detection rate and per-responder error
// statistics across independent rounds on the parallel runner; metrics are
// bit-identical for any --threads value.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/constants.hpp"
#include "dsp/signal.hpp"

namespace {

using namespace uwb;

constexpr double kTruths[] = {3.0, 6.0, 10.0};

// Error of the estimate nearest `truth` if within 1.5 m.
bool matched_error(const ranging::RoundOutcome& out, double truth,
                   double* err) {
  double best = 1.5;
  bool found = false;
  for (const auto& est : out.estimates) {
    const double e = est.distance_m - truth;
    if (std::abs(e) < std::abs(best)) {
      best = e;
      found = true;
    }
  }
  if (found) *err = best;
  return found;
}

int walkthrough() {
  bench::heading("Fig. 4 — response detection with 3 responders (3/6/10 m)");

  ranging::ScenarioConfig cfg = bench::hallway_scenario(404);
  cfg.responders = {{0, bench::hallway_at(3.0)},
                    {1, bench::hallway_at(6.0)},
                    {2, bench::hallway_at(10.0)}};
  ranging::ConcurrentRangingScenario scenario(cfg);
  const auto out = scenario.run_round();
  if (!out.payload_decoded) {
    std::printf("round failed (payload not decoded)\n");
    return 1;
  }

  // (a) the acquired CIR, aligned with d_TWR as in the paper: tap index ->
  // distance relative to the decoded responder.
  bench::subheading("(a) normalised CIR (x-axis: distance, aligned to d_TWR)");
  const double anchor = out.cir.first_path_index;
  std::vector<double> xs, ys;
  double peak = 0.0;
  for (const auto& tap : out.cir.taps) peak = std::max(peak, std::abs(tap));
  for (int i = 40; i < 160; ++i) {
    const double tau_rel = (i - anchor) * k::cir_ts_s;
    xs.push_back(out.d_twr_m + k::c_air * tau_rel / 2.0);
    ys.push_back(std::abs(out.cir.taps[static_cast<std::size_t>(i)]) / peak);
  }
  bench::ascii_profile(xs, ys, "m", 48);

  // (b)/(c): matched filter outputs per iteration.
  const auto trace = scenario.detector().detect_with_trace(
      out.cir.taps, out.cir.ts_s, 3);
  const int up = scenario.detector().config().upsample_factor;
  for (std::size_t it = 0; it < std::min<std::size_t>(2, trace.mf_outputs.size());
       ++it) {
    bench::subheading(it == 0 ? "(b) matched filter output"
                              : "(c) after subtracting strongest response");
    const auto& y = trace.mf_outputs[it];
    std::vector<double> mx, my;
    double ypeak = 0.0;
    for (const auto& v : y) ypeak = std::max(ypeak, std::abs(v));
    for (std::size_t i = 40 * static_cast<std::size_t>(up);
         i < 160 * static_cast<std::size_t>(up);
         i += static_cast<std::size_t>(up) / 2) {
      const double tau_rel = (static_cast<double>(i) / up - anchor) * k::cir_ts_s;
      mx.push_back(out.d_twr_m + k::c_air * tau_rel / 2.0);
      my.push_back(std::abs(y[i]) / ypeak);
    }
    bench::ascii_profile(mx, my, "m", 48);
  }

  // (d) the detected responses as distances.
  bench::subheading("(d) detected responses (paper: 3, 6, 10 m)");
  std::printf("%-10s %-14s %-14s %-12s %s\n", "response", "est. dist [m]",
              "true dist [m]", "error [m]", "amplitude");
  for (std::size_t i = 0; i < out.estimates.size(); ++i) {
    const auto& est = out.estimates[i];
    const double truth = i < 3 ? kTruths[i] : -1.0;
    std::printf("%-10zu %-14.3f %-14.1f %-12.3f %.4f\n", i + 1, est.distance_m,
                truth, est.distance_m - truth, est.amplitude);
  }
  std::printf("d_TWR (Eq. 2, decoded responder): %.3f m\n", out.d_twr_m);
  std::printf(
      "\npaper check: three peaks extracted in ascending order; responder 1\n"
      "comes from SS-TWR, responders 2-3 from Eq. 4 on the CIR peak delays\n"
      "(non-decoded responses carry the +-8 ns delayed-TX truncation).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 200);
  bench::JsonReport report("fig4_detection", opts.trials);
  report.param("scenario", "hallway 3/6/10 m");
  report.param("threads", static_cast<double>(bench::monte_carlo(opts, 0).threads()));

  const int rc = walkthrough();
  if (rc != 0) return rc;

  bench::subheading("Monte-Carlo sweep (" + std::to_string(opts.trials) +
                    " independent rounds)");
  const auto result = bench::run_rounds(
      opts, 404, opts.trials,
      [](std::uint64_t seed) {
        ranging::ScenarioConfig cfg = bench::hallway_scenario(seed);
        cfg.responders = {{0, bench::hallway_at(3.0)},
                          {1, bench::hallway_at(6.0)},
                          {2, bench::hallway_at(10.0)}};
        return cfg;
      },
      [](const ranging::ConcurrentRangingScenario&,
         const ranging::RoundOutcome& out, runner::TrialRecorder& rec) {
        if (!out.payload_decoded) return;
        rec.count("decoded_rounds");
        rec.sample("err_twr_m", out.d_twr_m - kTruths[0]);
        int found = 0;
        const char* names[] = {"err_d1_m", "err_d2_m", "err_d3_m"};
        for (int r = 0; r < 3; ++r) {
          double err = 0.0;
          if (matched_error(out, kTruths[r], &err)) {
            ++found;
            rec.sample(names[r], err);
          }
        }
        if (found == 3) rec.count("all_detected");
      });

  const auto decoded = result.counter("decoded_rounds");
  const auto all = result.counter("all_detected");
  std::printf("decoded rounds      : %lld / %d\n",
              static_cast<long long>(decoded), opts.trials);
  std::printf("all 3 detected      : %.1f %%\n",
              decoded > 0 ? 100.0 * static_cast<double>(all) /
                                static_cast<double>(decoded)
                          : 0.0);
  std::printf("%-12s %-12s %-12s %-12s %s\n", "estimate", "mean [m]",
              "sigma [m]", "p90 [m]", "samples");
  for (const char* m : {"err_twr_m", "err_d1_m", "err_d2_m", "err_d3_m"}) {
    const auto s = result.summary(m);
    std::printf("%-12s %-12.4f %-12.4f %-12.4f %zu\n", m, s.mean, s.stddev,
                s.p90, s.count);
  }
  std::printf("sweep wall time     : %.1f ms on %d threads\n",
              result.wall_ms(), result.threads_used());

  report.metric("decoded_rounds", static_cast<double>(decoded));
  report.metric("all_detected_pct",
                decoded > 0 ? 100.0 * static_cast<double>(all) /
                                  static_cast<double>(decoded)
                            : 0.0);
  for (const char* m : {"err_twr_m", "err_d1_m", "err_d2_m", "err_d3_m"})
    report.summarize(result, m);
  report.runner_metrics(result);
  return report.write_if_requested(opts) ? 0 : 1;
}
