// Reproduces paper Fig. 6: CIR and matched-filter bank output when two
// responders reply with different pulse shapes — responder 1 at 4 m with
// s1 (0x93) and responder 2 at 10 m with s3 (0xE6).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/constants.hpp"
#include "dw1000/pulse.hpp"

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 1);
  bench::JsonReport report("fig6_pulse_id", opts.trials);
  bench::heading("Fig. 6 — two responders with different pulse shapes");

  ranging::ScenarioConfig cfg = bench::hallway_scenario(606);
  cfg.ranging.shape_registers = {0x93, 0xC8, 0xE6};
  // IDs pick the shapes: with one slot, shape = ID (0 -> s1, 2 -> s3).
  cfg.responders = {{0, bench::hallway_at(4.0)}, {2, bench::hallway_at(10.0)}};
  ranging::ConcurrentRangingScenario scenario(cfg);
  const auto out = scenario.run_round();
  if (!out.payload_decoded) {
    std::printf("round failed\n");
    return 1;
  }

  bench::subheading("(a) CIR, responder 1 (4 m, s1) + responder 2 (10 m, s3)");
  const double anchor = out.cir.first_path_index;
  std::vector<double> xs, ys;
  double peak = 0.0;
  for (const auto& tap : out.cir.taps) peak = std::max(peak, std::abs(tap));
  for (int i = 50; i < 140; ++i) {
    xs.push_back(out.d_twr_m +
                 k::c_air * (i - anchor) * k::cir_ts_s / 2.0);
    ys.push_back(std::abs(out.cir.taps[static_cast<std::size_t>(i)]) / peak);
  }
  bench::ascii_profile(xs, ys, "m", 44);

  bench::subheading("(b) matched filter bank outputs y_i at the two responses");
  // Evaluate each template's filter output at the detected peak locations.
  const auto& det = scenario.detector();
  std::printf("%-26s %-12s %s\n", "", "response 1", "response 2");
  for (int shape = 0; shape < 3; ++shape) {
    const std::uint8_t reg =
        cfg.ranging.shape_registers[static_cast<std::size_t>(shape)];
    const CVec y = det.matched_filter_output(out.cir.taps, out.cir.ts_s, shape);
    const int up = det.config().upsample_factor;
    // The filter output indexes template *starts*; shift by this template's
    // centre so the search window sits on the response peak.
    const auto tmpl_centre = static_cast<std::ptrdiff_t>(
        dw::template_centre_index(reg, k::cir_ts_s / up));
    std::printf("template s%-2d (0x%02X)      ", shape + 1, reg);
    for (const auto& est : out.estimates) {
      const auto peak_pos = static_cast<std::ptrdiff_t>(
          ((out.detections.front().tau_s + est.tau_rel_s) / k::cir_ts_s) * up);
      const std::ptrdiff_t centre = peak_pos - tmpl_centre;
      double best = 0.0;
      for (std::ptrdiff_t d = -4 * up; d <= 4 * up; ++d) {
        const std::ptrdiff_t idx = centre + d;
        if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(y.size()))
          best = std::max(best, std::abs(y[static_cast<std::size_t>(idx)]));
      }
      std::printf("%-12.4f ", best);
    }
    std::printf("\n");
  }

  bench::subheading("classified responses");
  std::printf("%-10s %-14s %-12s %-14s %s\n", "response", "est. dist [m]",
              "shape", "decoded ID", "true");
  const char* expect[] = {"s1 -> id 0", "s3 -> id 2"};
  const int expect_id[] = {0, 2};
  int ids_correct = 0;
  for (std::size_t i = 0; i < out.estimates.size(); ++i) {
    const auto& est = out.estimates[i];
    if (i < 2 && est.responder_id == expect_id[i]) ++ids_correct;
    std::printf("%-10zu %-14.3f s%-11d %-14d %s\n", i + 1, est.distance_m,
                est.shape_index + 1, est.responder_id,
                i < 2 ? expect[i] : "?");
  }
  report.param("seed", 606.0);
  report.metric("ids_correct", static_cast<double>(ids_correct));
  report.metric("responses", static_cast<double>(out.estimates.size()));
  std::printf(
      "\npaper check: each response peaks highest under its own template, so\n"
      "the initiator decodes the responder identity from the CIR alone.\n");
  return report.write_if_requested(opts) ? 0 : 1;
}
