// Reproduces the paper's Sect. V in-text experiment: SS-TWR precision with
// different pulse shapes. Two nodes 3 m apart in an office; 5000 ranging
// operations per shape in the paper (default here: 1000).
//
// Paper result: sigma_1 = 0.0228 m (s1), sigma_2 = 0.0221 m (s2),
// sigma_3 = 0.0283 m (s3) — i.e. pulse shaping has negligible impact on
// ranging precision.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "dsp/stats.hpp"

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 1000);
  bench::JsonReport report("sect5_twr_precision", opts.trials);
  bench::heading("Sect. V — SS-TWR precision per pulse shape (3 m, office)");
  std::printf("(%d rounds per shape; paper used 5000)\n", opts.trials);

  struct Row {
    const char* name;
    const char* key;
    std::uint8_t reg;
    double paper_sigma;
  };
  const Row rows[] = {{"s1 (0x93)", "s1", 0x93, 0.0228},
                      {"s2 (0xC8)", "s2", 0xC8, 0.0221},
                      {"s3 (0xE6)", "s3", 0xE6, 0.0283}};

  std::printf("\n%-12s %-14s %-14s %-14s %s\n", "shape", "mean err [m]",
              "sigma [m]", "paper sigma", "rounds");
  double total_wall_ms = 0.0;
  for (const Row& row : rows) {
    const auto result = bench::run_rounds(
        opts, 500 + static_cast<std::uint64_t>(row.reg), opts.trials,
        [&](std::uint64_t seed) {
          ranging::ScenarioConfig cfg = bench::office_scenario(seed);
          // Both link directions use the configured shape, as in the paper.
          cfg.phy.tc_pgdelay = row.reg;
          cfg.ranging.shape_registers = {row.reg};
          cfg.responders = {{0, {5.0, 4.0}}};  // 3 m from initiator at (2,4)
          return cfg;
        },
        [](const ranging::ConcurrentRangingScenario&,
           const ranging::RoundOutcome& out, runner::TrialRecorder& rec) {
          if (!out.payload_decoded) return;
          rec.sample("err", out.d_twr_m - 3.0);
        });
    total_wall_ms += result.wall_ms();
    const auto& errors = result.samples("err");
    if (errors.empty()) {
      std::printf("%-12s no completed rounds\n", row.name);
      continue;
    }
    const double mean = dsp::mean(errors);
    const double sigma = dsp::stddev(errors);
    std::printf("%-12s %-14.4f %-14.4f %-14.4f %zu\n", row.name, mean, sigma,
                row.paper_sigma, errors.size());
    report.metric(std::string(row.key) + "_mean_err_m", mean);
    report.metric(std::string(row.key) + "_sigma_m", sigma);
  }

  std::printf("(%.1f ms total Monte-Carlo time)\n", total_wall_ms);
  std::printf(
      "\npaper check: all three shapes range with sigma in the ~2-3 cm band;\n"
      "the wider pulses degrade precision only marginally, so TC_PGDELAY can\n"
      "safely encode responder identities.\n");
  report.metric("mc_wall_ms", total_wall_ms);
  return report.write_if_requested(opts) ? 0 : 1;
}
