// Reproduces the paper's Sect. V in-text experiment: SS-TWR precision with
// different pulse shapes. Two nodes 3 m apart in an office; 5000 ranging
// operations per shape in the paper (default here: 1000).
//
// Paper result: sigma_1 = 0.0228 m (s1), sigma_2 = 0.0221 m (s2),
// sigma_3 = 0.0283 m (s3) — i.e. pulse shaping has negligible impact on
// ranging precision.
#include <cstdio>

#include "bench_util.hpp"
#include "dsp/stats.hpp"

int main(int argc, char** argv) {
  using namespace uwb;
  const int trials = bench::trials_arg(argc, argv, 1000);
  bench::heading("Sect. V — SS-TWR precision per pulse shape (3 m, office)");
  std::printf("(%d rounds per shape; paper used 5000)\n", trials);

  struct Row {
    const char* name;
    std::uint8_t reg;
    double paper_sigma;
  };
  const Row rows[] = {{"s1 (0x93)", 0x93, 0.0228},
                      {"s2 (0xC8)", 0xC8, 0.0221},
                      {"s3 (0xE6)", 0xE6, 0.0283}};

  std::printf("\n%-12s %-14s %-14s %-14s %s\n", "shape", "mean err [m]",
              "sigma [m]", "paper sigma", "rounds");
  for (const Row& row : rows) {
    ranging::ScenarioConfig cfg = bench::office_scenario(
        500 + static_cast<std::uint64_t>(row.reg));
    // Both link directions use the configured shape, as in the paper.
    cfg.phy.tc_pgdelay = row.reg;
    cfg.ranging.shape_registers = {row.reg};
    cfg.responders = {{0, {5.0, 4.0}}};  // 3 m from the initiator at (2,4)
    ranging::ConcurrentRangingScenario scenario(cfg);

    RVec errors;
    for (int t = 0; t < trials; ++t) {
      const auto out = scenario.run_round();
      if (!out.payload_decoded) continue;
      errors.push_back(out.d_twr_m - 3.0);
    }
    if (errors.empty()) {
      std::printf("%-12s no completed rounds\n", row.name);
      continue;
    }
    std::printf("%-12s %-14.4f %-14.4f %-14.4f %zu\n", row.name,
                dsp::mean(errors), dsp::stddev(errors), row.paper_sigma,
                errors.size());
  }

  std::printf(
      "\npaper check: all three shapes range with sigma in the ~2-3 cm band;\n"
      "the wider pulses degrade precision only marginally, so TC_PGDELAY can\n"
      "safely encode responder identities.\n");
  return 0;
}
