// Reproduces paper Fig. 7 / Sect. VI: detection of overlapping responses.
// Two responders at the same distance d1 = d2 = 4 m; 2000 rounds in the
// paper (default here: 500). Only trials whose responses actually overlap
// are evaluated (the +-8 ns TX truncation spreads them otherwise), exactly
// as the paper does. Both algorithms run on identical CIRs.
//
// Paper result: search-and-subtract 92.6% vs threshold-based 48%.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/constants.hpp"
#include "ranging/threshold_detector.hpp"

namespace {

using namespace uwb;

// True peak positions of both responses in CIR-window time.
std::vector<double> true_taus(const ranging::RoundOutcome& out) {
  std::vector<double> taus;
  const double t0 = out.truths.front().resp_arrival.seconds();
  for (const auto& t : out.truths)
    taus.push_back(out.cir.first_path_index * k::cir_ts_s +
                   (t.resp_arrival.seconds() - t0));
  return taus;
}

// Both true responses matched by distinct detections within tolerance.
bool both_detected(const std::vector<ranging::DetectedResponse>& dets,
                   const std::vector<double>& truths, double tol_s) {
  if (dets.size() < truths.size()) return false;
  std::vector<bool> used(dets.size(), false);
  for (const double truth : truths) {
    double best = tol_s;
    int best_i = -1;
    for (std::size_t i = 0; i < dets.size(); ++i) {
      if (used[i]) continue;
      const double err = std::abs(dets[i].tau_s - truth);
      if (err < best) {
        best = err;
        best_i = static_cast<int>(i);
      }
    }
    if (best_i < 0) return false;
    used[static_cast<std::size_t>(best_i)] = true;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 500);
  bench::JsonReport report("fig7_overlap", opts.trials);
  bench::heading("Fig. 7 / Sect. VI — overlapping responses (d1 = d2 = 4 m)");
  std::printf("(%d rounds; paper used 2000)\n", opts.trials);

  // "Actually overlapping" (paper Sect. VI): the two pulse extents overlap.
  // The +-8 ns TX truncation jitter spreads the rest further apart; those
  // trials are excluded exactly as in the paper.
  const double overlap_window_s = 6.0e-9;
  const double tol_s = 2.0e-9;  // a detection counts if this close to truth
  report.param("overlap_window_ns", overlap_window_s * 1e9);
  report.param("tolerance_ns", tol_s * 1e9);

  const ranging::DetectorConfig det_cfg = bench::hallway_scenario(0).ranging.detector;
  const auto result = bench::run_rounds(
      opts, 707, opts.trials,
      [](std::uint64_t seed) {
        ranging::ScenarioConfig cfg = bench::hallway_scenario(seed);
        cfg.responders = {{0, bench::hallway_at(4.0)},
                          {1, {2.0 + 4.0, 1.001}}};
        return cfg;
      },
      [&](const ranging::ConcurrentRangingScenario&,
          const ranging::RoundOutcome& out, runner::TrialRecorder& rec) {
        if (!out.completed || out.truths.size() != 2) return;
        rec.count("completed");
        const double offset = std::abs((out.truths[1].resp_arrival -
                                        out.truths[0].resp_arrival)
                                           .seconds());
        if (offset > overlap_window_s) return;  // paper keeps overlapping only
        rec.count("overlapping");
        const auto truths = true_taus(out);
        if (both_detected(out.detections, truths, tol_s)) rec.count("ss_ok");
        const ranging::ThresholdDetector threshold{det_cfg};
        if (both_detected(threshold.detect(out.cir.taps, out.cir.ts_s, 2),
                          truths, tol_s))
          rec.count("th_ok");
      });

  const auto completed = result.counter("completed");
  const auto overlapping = result.counter("overlapping");
  const auto ss_ok = result.counter("ss_ok");
  const auto th_ok = result.counter("th_ok");

  std::printf("\ncompleted rounds            : %lld\n",
              static_cast<long long>(completed));
  std::printf("actually overlapping rounds : %lld (|offset| < %.1f ns)\n",
              static_cast<long long>(overlapping), overlap_window_s * 1e9);
  if (overlapping == 0) {
    std::printf("no overlapping trials — increase --trials\n");
    return 1;
  }
  const double ss_pct = 100.0 * static_cast<double>(ss_ok) /
                        static_cast<double>(overlapping);
  const double th_pct = 100.0 * static_cast<double>(th_ok) /
                        static_cast<double>(overlapping);
  std::printf("\n%-28s %-12s %s\n", "algorithm", "success", "paper");
  std::printf("%-28s %6.1f %%     92.6 %%\n", "search and subtract (ours)",
              ss_pct);
  std::printf("%-28s %6.1f %%     48.0 %%\n", "threshold-based (Falsi et al.)",
              th_pct);
  std::printf("(%.1f ms on %d threads)\n", result.wall_ms(),
              result.threads_used());
  std::printf(
      "\npaper check: search-and-subtract resolves both overlapping\n"
      "responses in the large majority of trials, the threshold baseline in\n"
      "roughly half or fewer — the crossing window swallows the second pulse.\n");

  report.metric("completed", static_cast<double>(completed));
  report.metric("overlapping", static_cast<double>(overlapping));
  report.metric("search_subtract_pct", ss_pct);
  report.metric("threshold_pct", th_pct);
  report.runner_metrics(result);
  return report.write_if_requested(opts) ? 0 : 1;
}
