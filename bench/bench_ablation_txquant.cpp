// Ablation A1: the impact of the DW1000 delayed-TX truncation (paper
// Sect. III, "Limited TX timestamp resolution") on concurrent-ranging
// accuracy. The paper declares the +-8 ns quantisation out of scope as a
// hardware limitation; this ablation quantifies exactly how much accuracy a
// truncation-free next-generation transceiver would recover.
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "dsp/stats.hpp"

namespace {

using namespace uwb;

// Error of the estimate nearest `truth`, if within 1.5 m; detection
// substitutions (a diffuse spike of a closer responder out-ranking a far
// one — paper challenge V) are counted separately so the truncation effect
// is measured in isolation.
bool matched_error(const ranging::RoundOutcome& out, double truth, double* err) {
  double best = 1.5;
  bool found = false;
  for (const auto& est : out.estimates) {
    const double e = est.distance_m - truth;
    if (std::abs(e) < std::abs(best)) {
      best = e;
      found = true;
    }
  }
  if (found) *err = best;
  return found;
}

runner::TrialResult run(const bench::BenchOptions& opts, bool truncation) {
  return bench::run_rounds(
      opts, 901, opts.trials,
      [truncation](std::uint64_t seed) {
        ranging::ScenarioConfig cfg = bench::hallway_scenario(seed);
        cfg.responders = {{0, bench::hallway_at(3.0)},
                          {1, bench::hallway_at(6.0)},
                          {2, bench::hallway_at(10.0)}};
        cfg.delayed_tx_truncation = truncation;
        return cfg;
      },
      [](const ranging::ConcurrentRangingScenario&,
         const ranging::RoundOutcome& out, runner::TrialRecorder& rec) {
        if (!out.payload_decoded) return;
        rec.count("rounds");
        rec.sample("err_twr", out.d_twr_m - 3.0);
        double e2 = 0.0, e3 = 0.0;
        const bool ok2 = matched_error(out, 6.0, &e2);
        const bool ok3 = matched_error(out, 10.0, &e3);
        if (ok2) rec.sample("err_d2", e2);
        if (ok3) rec.sample("err_d3", e3);
        if (!ok2 || !ok3) rec.count("missed");
      });
}

void print_row(const char* label, const RVec& errs) {
  if (errs.empty()) {
    std::printf("%-24s (no data)\n", label);
    return;
  }
  std::printf("%-24s %10.4f %12.4f %12.4f\n", label, dsp::mean(errs),
              dsp::stddev(errs), dsp::rms(errs));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 400);
  bench::JsonReport report("ablation_txquant", opts.trials);
  bench::heading("Ablation — delayed-TX truncation on/off (3/6/10 m)");
  std::printf("(%d rounds per configuration)\n", opts.trials);

  for (const bool truncation : {true, false}) {
    bench::subheading(truncation
                          ? "truncation ON (DW1000 hardware, ~8 ns grid)"
                          : "truncation OFF (ideal next-gen transceiver)");
    const auto r = run(opts, truncation);
    std::printf("%-24s %10s %12s %12s\n", "estimate", "mean [m]",
                "sigma [m]", "rms [m]");
    print_row("d1 = 3 m (SS-TWR)", r.samples("err_twr"));
    print_row("d2 = 6 m (CIR)", r.samples("err_d2"));
    print_row("d3 = 10 m (CIR)", r.samples("err_d3"));
    std::printf("multipath substitutions: %lld / %lld rounds\n",
                static_cast<long long>(r.counter("missed")),
                static_cast<long long>(r.counter("rounds")));
    const std::string key = truncation ? "trunc_on" : "trunc_off";
    for (const char* m : {"err_twr", "err_d2", "err_d3"}) {
      const auto& errs = r.samples(m);
      if (!errs.empty())
        report.metric(key + "_" + m + "_rms_m", dsp::rms(errs));
    }
    report.metric(key + "_missed", static_cast<double>(r.counter("missed")));
  }

  std::printf(
      "\ncheck: SS-TWR is unaffected (the truncated TX time is embedded in\n"
      "the payload), while CIR-derived distances carry ~0.5 m RMS from\n"
      "the +-8 ns grid — and collapse to centimetres once it is removed.\n"
      "This substantiates the paper's remark that the limitation is purely\n"
      "hardware-dependent.\n");
  return report.write_if_requested(opts) ? 0 : 1;
}
