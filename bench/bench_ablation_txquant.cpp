// Ablation A1: the impact of the DW1000 delayed-TX truncation (paper
// Sect. III, "Limited TX timestamp resolution") on concurrent-ranging
// accuracy. The paper declares the +-8 ns quantisation out of scope as a
// hardware limitation; this ablation quantifies exactly how much accuracy a
// truncation-free next-generation transceiver would recover.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "dsp/stats.hpp"

namespace {

using namespace uwb;

struct Result {
  RVec err_twr, err_d2, err_d3;
  int rounds = 0;
  int missed = 0;  // rounds where a responder was displaced by multipath
};

// Error of the estimate nearest `truth`, if within 1.5 m; detection
// substitutions (a diffuse spike of a closer responder out-ranking a far
// one — paper challenge V) are counted separately so the truncation effect
// is measured in isolation.
bool matched_error(const ranging::RoundOutcome& out, double truth, double* err) {
  double best = 1.5;
  bool found = false;
  for (const auto& est : out.estimates) {
    const double e = est.distance_m - truth;
    if (std::abs(e) < std::abs(best)) {
      best = e;
      found = true;
    }
  }
  if (found) *err = best;
  return found;
}

Result run(bool truncation, int trials, std::uint64_t seed) {
  ranging::ScenarioConfig cfg = bench::hallway_scenario(seed);
  cfg.responders = {{0, bench::hallway_at(3.0)},
                    {1, bench::hallway_at(6.0)},
                    {2, bench::hallway_at(10.0)}};
  cfg.delayed_tx_truncation = truncation;
  ranging::ConcurrentRangingScenario scenario(cfg);
  Result r;
  for (int t = 0; t < trials; ++t) {
    const auto out = scenario.run_round();
    if (!out.payload_decoded) continue;
    ++r.rounds;
    r.err_twr.push_back(out.d_twr_m - 3.0);
    double e2 = 0.0, e3 = 0.0;
    const bool ok2 = matched_error(out, 6.0, &e2);
    const bool ok3 = matched_error(out, 10.0, &e3);
    if (ok2) r.err_d2.push_back(e2);
    if (ok3) r.err_d3.push_back(e3);
    if (!ok2 || !ok3) ++r.missed;
  }
  return r;
}

void report(const char* label, const RVec& errs) {
  if (errs.empty()) {
    std::printf("%-24s (no data)\n", label);
    return;
  }
  std::printf("%-24s %10.4f %12.4f %12.4f\n", label, dsp::mean(errs),
              dsp::stddev(errs), dsp::rms(errs));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const int trials = bench::trials_arg(argc, argv, 400);
  bench::heading("Ablation — delayed-TX truncation on/off (3/6/10 m)");
  std::printf("(%d rounds per configuration)\n", trials);

  for (const bool truncation : {true, false}) {
    bench::subheading(truncation
                          ? "truncation ON (DW1000 hardware, ~8 ns grid)"
                          : "truncation OFF (ideal next-gen transceiver)");
    const Result r = run(truncation, trials, 901);
    std::printf("%-24s %10s %12s %12s\n", "estimate", "mean [m]",
                "sigma [m]", "rms [m]");
    report("d1 = 3 m (SS-TWR)", r.err_twr);
    report("d2 = 6 m (CIR)", r.err_d2);
    report("d3 = 10 m (CIR)", r.err_d3);
    std::printf("multipath substitutions: %d / %d rounds\n", r.missed,
                r.rounds);
  }

  std::printf(
      "\ncheck: SS-TWR is unaffected (the truncated TX time is embedded in\n"
      "the payload), while CIR-derived distances carry ~0.5 m RMS from\n"
      "the +-8 ns grid — and collapse to centimetres once it is removed.\n"
      "This substantiates the paper's remark that the limitation is purely\n"
      "hardware-dependent.\n");
  return 0;
}
