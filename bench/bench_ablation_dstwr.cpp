// Ablation A5: ranging scheme vs crystal drift. The paper's SS-TWR (Eq. 2)
// needs the receiver's carrier-frequency-offset estimate to survive drift
// over the 290 us reply time; double-sided TWR cancels drift structurally
// at the cost of a third message. This bench sweeps the crystal quality and
// compares all three variants on the same simulated radios at 5 m.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "dsp/stats.hpp"
#include "ranging/dstwr.hpp"

namespace {

using namespace uwb;

struct Stats {
  double rms = 0.0, sigma = 0.0;
  int n = 0;
};

Stats stats_of(const RVec& errs) {
  if (errs.empty()) return {};
  return {dsp::rms(errs), dsp::stddev(errs), static_cast<int>(errs.size())};
}

// Each session draws one crystal pair; average over many sessions so the
// drift statistics (not a single draw) shape the result.
constexpr int kSessions = 20;

RVec run_ss_twr(double drift_ppm, bool cfo_correction, int trials,
                std::uint64_t seed) {
  RVec errs;
  for (int s = 0; s < kSessions; ++s) {
    ranging::ScenarioConfig cfg;
    cfg.room = geom::Room::rectangular(30.0, 10.0, 12.0);
    cfg.initiator_position = {2.0, 5.0};
    cfg.responders = {{0, {7.0, 5.0}}};
    cfg.clock_drift_sigma_ppm = drift_ppm;
    cfg.cfo_correction = cfo_correction;
    cfg.seed = seed + static_cast<std::uint64_t>(s) * 101;
    ranging::ConcurrentRangingScenario scenario(cfg);
    for (int t = 0; t < trials / kSessions + 1; ++t) {
      const auto out = scenario.run_round();
      if (out.payload_decoded) errs.push_back(out.d_twr_m - 5.0);
    }
  }
  return errs;
}

RVec run_ds_twr(double drift_ppm, int trials, std::uint64_t seed) {
  RVec errs;
  for (int s = 0; s < kSessions; ++s) {
    ranging::DsTwrSessionConfig cfg;
    cfg.room = geom::Room::rectangular(30.0, 10.0, 12.0);
    cfg.initiator_position = {2.0, 5.0};
    cfg.responder_position = {7.0, 5.0};
    cfg.clock_drift_sigma_ppm = drift_ppm;
    cfg.seed = seed + static_cast<std::uint64_t>(s) * 101;
    ranging::DsTwrSession session(cfg);
    for (int t = 0; t < trials / kSessions + 1; ++t) {
      const auto r = session.run_round();
      if (r.ok) errs.push_back(r.distance_m - 5.0);
    }
  }
  return errs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const int trials = bench::trials_arg(argc, argv, 250);
  bench::heading("Ablation — SS-TWR vs CFO-corrected SS-TWR vs DS-TWR (5 m)");
  std::printf("(%d rounds per scheme per drift level)\n", trials);

  std::printf("\n%-14s %-20s %-20s %-20s\n", "drift sigma", "SS-TWR raw",
              "SS-TWR + CFO", "DS-TWR");
  std::printf("%-14s %-20s %-20s %-20s\n", "[ppm]", "rms [m]", "rms [m]",
              "rms [m]");

  // Each drift pair draws independently per node; the SS-TWR raw error
  // scales as c * (relative drift) * T_reply / 2.
  for (const double drift_ppm : {0.5, 2.0, 5.0, 10.0, 20.0}) {
    const auto seed = 1200 + static_cast<std::uint64_t>(drift_ppm * 10.0);
    const Stats raw = stats_of(run_ss_twr(drift_ppm, false, trials, seed));
    const Stats cfo = stats_of(run_ss_twr(drift_ppm, true, trials, seed + 1));
    const Stats dst = stats_of(run_ds_twr(drift_ppm, trials, seed + 2));
    std::printf("%-14.1f %-20.3f %-20.3f %-20.3f\n", drift_ppm, raw.rms,
                cfo.rms, dst.rms);
  }

  std::printf(
      "\ncheck: raw SS-TWR degrades linearly with drift (~4.3 cm per ppm of\n"
      "relative drift at T_reply = 290 us); the CFO correction and DS-TWR\n"
      "both hold centimetre precision. Concurrent ranging inherits the\n"
      "correction because the initiator estimates the CFO from the\n"
      "aggregated response it decodes.\n");
  return 0;
}
