// Ablation A5: ranging scheme vs crystal drift. The paper's SS-TWR (Eq. 2)
// needs the receiver's carrier-frequency-offset estimate to survive drift
// over the 290 us reply time; double-sided TWR cancels drift structurally
// at the cost of a third message. This bench sweeps the crystal quality and
// compares all three variants on the same simulated radios at 5 m.
//
// Each Monte-Carlo trial builds a fresh session (independent crystal draw)
// and runs one round, so the drift statistics — not a single draw — shape
// the result.
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "dsp/stats.hpp"
#include "ranging/dstwr.hpp"

namespace {

using namespace uwb;

RVec run_ss_twr(const bench::BenchOptions& opts, double drift_ppm,
                bool cfo_correction, std::uint64_t seed) {
  const auto result = bench::run_rounds(
      opts, seed, opts.trials,
      [&](std::uint64_t trial_seed) {
        ranging::ScenarioConfig cfg;
        cfg.room = geom::Room::rectangular(30.0, 10.0, 12.0);
        cfg.initiator_position = {2.0, 5.0};
        cfg.responders = {{0, {7.0, 5.0}}};
        cfg.clock_drift_sigma_ppm = drift_ppm;
        cfg.cfo_correction = cfo_correction;
        cfg.seed = trial_seed;
        return cfg;
      },
      [](const ranging::ConcurrentRangingScenario&,
         const ranging::RoundOutcome& out, runner::TrialRecorder& rec) {
        if (out.payload_decoded) rec.sample("err", out.d_twr_m - 5.0);
      });
  return result.samples("err");
}

RVec run_ds_twr(const bench::BenchOptions& opts, double drift_ppm,
                std::uint64_t seed) {
  const auto result = bench::monte_carlo(opts, seed).run(
      opts.trials, [&](const runner::TrialContext& ctx,
                       runner::TrialRecorder& rec) {
        ranging::DsTwrSessionConfig cfg;
        cfg.room = geom::Room::rectangular(30.0, 10.0, 12.0);
        cfg.initiator_position = {2.0, 5.0};
        cfg.responder_position = {7.0, 5.0};
        cfg.clock_drift_sigma_ppm = drift_ppm;
        cfg.seed = ctx.seed;
        ranging::DsTwrSession session(cfg);
        const auto r = session.run_round();
        if (r.ok) rec.sample("err", r.distance_m - 5.0);
      });
  return result.samples("err");
}

double rms_of(const RVec& errs) { return errs.empty() ? 0.0 : dsp::rms(errs); }

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 250);
  bench::JsonReport report("ablation_dstwr", opts.trials);
  bench::heading("Ablation — SS-TWR vs CFO-corrected SS-TWR vs DS-TWR (5 m)");
  std::printf("(%d rounds per scheme per drift level)\n", opts.trials);

  std::printf("\n%-14s %-20s %-20s %-20s\n", "drift sigma", "SS-TWR raw",
              "SS-TWR + CFO", "DS-TWR");
  std::printf("%-14s %-20s %-20s %-20s\n", "[ppm]", "rms [m]", "rms [m]",
              "rms [m]");

  // Each drift pair draws independently per node; the SS-TWR raw error
  // scales as c * (relative drift) * T_reply / 2.
  for (const double drift_ppm : {0.5, 2.0, 5.0, 10.0, 20.0}) {
    const auto seed = 1200 + static_cast<std::uint64_t>(drift_ppm * 10.0);
    const double raw = rms_of(run_ss_twr(opts, drift_ppm, false, seed));
    const double cfo = rms_of(run_ss_twr(opts, drift_ppm, true, seed + 1));
    const double dst = rms_of(run_ds_twr(opts, drift_ppm, seed + 2));
    std::printf("%-14.1f %-20.3f %-20.3f %-20.3f\n", drift_ppm, raw, cfo, dst);
    const std::string key = std::to_string(static_cast<int>(drift_ppm * 10.0));
    report.metric("raw_rms_m_ppm" + key, raw);
    report.metric("cfo_rms_m_ppm" + key, cfo);
    report.metric("dstwr_rms_m_ppm" + key, dst);
  }

  std::printf(
      "\ncheck: raw SS-TWR degrades linearly with drift (~4.3 cm per ppm of\n"
      "relative drift at T_reply = 290 us); the CFO correction and DS-TWR\n"
      "both hold centimetre precision. Concurrent ranging inherits the\n"
      "correction because the initiator estimates the CFO from the\n"
      "aggregated response it decodes.\n");
  return report.write_if_requested(opts) ? 0 : 1;
}
