// Reproduces paper Fig. 2: an estimated CIR from the DW1000 model in an
// indoor environment, showing the LOS component (tau_0) and significant
// multipath reflections (tau_1 ... tau_5).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "channel/channel_model.hpp"
#include "common/constants.hpp"
#include "dsp/peaks.hpp"
#include "dw1000/cir.hpp"
#include "dw1000/timestamping.hpp"

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 1);
  bench::JsonReport report("fig2_cir", opts.trials);
  bench::heading("Fig. 2 — estimated CIR with LOS and multipath components");

  // A furnished office: rectangular room with a couple of scatterers; second
  // order reflections enabled so the tail is realistic.
  geom::Room room = geom::Room::rectangular(9.0, 6.5, 4.0);
  room.add_obstacle({{{5.5, 1.0}, {5.5, 2.2}}, 8.0, "cabinet"});
  channel::ChannelModelParams params;
  params.max_reflection_order = 2;
  channel::ChannelModel model(room, params);

  Rng rng(2024);
  const auto ch = model.realize({1.5, 3.0}, {7.5, 4.0}, rng);

  // Place the realisation into the DW1000 accumulator as one frame arrival.
  std::vector<dw::CirArrival> arrivals;
  const double anchor_s = 64.0 * k::cir_ts_s;
  for (const auto& tap : ch.taps) {
    dw::CirArrival a;
    a.time_into_window_s = anchor_s + (tap.delay_s - ch.los_delay_s);
    a.amplitude = tap.amplitude;
    arrivals.push_back(a);
  }
  dw::CirParams cir_params;
  const auto cir = dw::synthesize_cir(arrivals, cir_params, rng);

  bench::subheading("CIR magnitude (first 220 taps, T_s = 1.0016 ns)");
  std::vector<double> xs, ys;
  for (int i = 40; i < 220; ++i) {
    xs.push_back(i * k::cir_ts_ns);
    ys.push_back(std::abs(cir.taps[static_cast<std::size_t>(i)]));
  }
  bench::ascii_profile(xs, ys, "ns", 60);

  const double fp = dw::detect_first_path(cir.taps);
  std::printf("\nfirst path index: %.2f taps (LOS anchored at 64)\n", fp);

  bench::subheading("significant components tau_0 .. tau_k");
  const auto peaks = dsp::local_maxima(
      cir.taps, 6.0 * dsp::noise_sigma_estimate(cir.taps), 3);
  std::printf("%-6s %-12s %-14s %s\n", "k", "tap index", "delay [ns]",
              "magnitude");
  int k = 0;
  for (const auto& p : peaks) {
    if (k > 8) break;
    std::printf("tau_%-2d %-12zu %-14.2f %.4f\n", k, p.index,
                (static_cast<double>(p.index) - 64.0) * k::cir_ts_ns,
                p.magnitude);
    ++k;
  }
  report.param("seed", 2024.0);
  report.metric("first_path_index", fp);
  report.metric("significant_components", static_cast<double>(k));
  std::printf(
      "\npaper check: a dominant LOS peak followed by several resolvable\n"
      "specular MPCs and a diffuse tail, as in the measured Fig. 2.\n");
  return report.write_if_requested(opts) ? 0 : 1;
}
