// Micro-benchmarks (google-benchmark): run-time feasibility of the Sect. IV
// detection pipeline — the paper requires the initiator to process the CIR
// *at run time*, so the detector must be fast enough for embedded use.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <complex>
#include <numbers>

#include "common/constants.hpp"
#include "common/random.hpp"
#include "dsp/fft.hpp"
#include "dsp/matched_filter.hpp"
#include "dsp/resample.hpp"
#include "dw1000/cir.hpp"
#include "dw1000/pulse.hpp"
#include "ranging/search_subtract.hpp"
#include "ranging/threshold_detector.hpp"
#include "runner/thread_pool.hpp"
#include "simd/simd.hpp"
#include "bench_util.hpp"

namespace {

using namespace uwb;

CVec random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  CVec x(n);
  for (auto& v : x) v = rng.complex_normal(1.0);
  return x;
}

dw::CirEstimate test_cir(int responses, std::uint64_t seed) {
  std::vector<dw::CirArrival> arrivals;
  for (int i = 0; i < responses; ++i) {
    dw::CirArrival a;
    a.time_into_window_s = (80.0 + 40.0 * i) * k::cir_ts_s;
    a.amplitude = {0.4 - 0.05 * i, 0.0};
    arrivals.push_back(a);
  }
  dw::CirParams params;
  Rng rng(seed);
  return dw::synthesize_cir(arrivals, params, rng);
}

void BM_FftPow2_1024(benchmark::State& state) {
  CVec x = random_signal(1024, 1);
  for (auto _ : state) {
    CVec y = x;
    dsp::fft_pow2_inplace(y, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FftPow2_1024);

void BM_FftBluestein_1016(benchmark::State& state) {
  const CVec x = random_signal(k::cir_len_prf64, 2);
  for (auto _ : state) {
    CVec y = dsp::fft(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FftBluestein_1016);

void BM_UpsampleCirBy8(benchmark::State& state) {
  const CVec x = random_signal(k::cir_len_prf64, 3);
  for (auto _ : state) {
    CVec y = dsp::upsample_fft(x, 8);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_UpsampleCirBy8);

void BM_MatchedFilterUpsampledCir(benchmark::State& state) {
  const CVec r = random_signal(8192, 4);
  dsp::MatchedFilter mf(dw::sample_pulse_template(0x93, k::cir_ts_s / 8.0));
  for (auto _ : state) {
    CVec y = mf.apply(r);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MatchedFilterUpsampledCir);

// --- unplanned references (the pre-plan implementations) ----------------
//
// Local copies of the algorithms before the FftPlan/shared-spectrum work:
// twiddles recomputed with std::polar inside the butterfly loop, Bluestein
// rebuilding its chirp and kernel per call, matched filtering running its
// own forward transform per template. Kept here as the denominator of the
// speedup the plan cache buys (DESIGN.md Sect. 8).

void reference_fft_pow2(CVec& x, bool inverse) {
  const std::size_t n = x.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex w = std::polar(1.0, ang * static_cast<double>(j));
        const Complex u = x[i + j];
        const Complex v = x[i + j + len / 2] * w;
        x[i + j] = u + v;
        x[i + j + len / 2] = u - v;
      }
    }
  }
}

CVec reference_bluestein(const CVec& x) {
  const std::size_t n = x.size();
  const std::size_t m = dsp::next_pow2(2 * n - 1);
  CVec a(m, Complex{}), b(m, Complex{});
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = std::numbers::pi * static_cast<double>(k) *
                       static_cast<double>(k) / static_cast<double>(n);
    const Complex w = std::polar(1.0, ang);
    a[k] = x[k] * std::conj(w);
    b[k] = w;
    if (k != 0) b[m - k] = w;
  }
  reference_fft_pow2(a, false);
  reference_fft_pow2(b, false);
  for (std::size_t i = 0; i < m; ++i) a[i] *= b[i];
  reference_fft_pow2(a, true);
  CVec y(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = std::numbers::pi * static_cast<double>(k) *
                       static_cast<double>(k) / static_cast<double>(n);
    y[k] = a[k] * std::conj(std::polar(1.0, ang)) / static_cast<double>(m);
  }
  return y;
}

void BM_Reference_FftPow2_1024(benchmark::State& state) {
  CVec x = random_signal(1024, 1);
  for (auto _ : state) {
    CVec y = x;
    reference_fft_pow2(y, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Reference_FftPow2_1024);

void BM_Reference_FftBluestein_1016(benchmark::State& state) {
  const CVec x = random_signal(k::cir_len_prf64, 2);
  for (auto _ : state) {
    CVec y = reference_bluestein(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Reference_FftBluestein_1016);

void BM_Reference_MatchedFilterUpsampledCir(benchmark::State& state) {
  // FFT correlation with per-call forward transforms of both operands and
  // no plan reuse — what MatchedFilter::apply did before apply_spectrum.
  const CVec r = random_signal(8192, 4);
  dsp::MatchedFilter mf(dw::sample_pulse_template(0x93, k::cir_ts_s / 8.0));
  const CVec& s = mf.unit_template();
  const std::size_t n = r.size();
  const std::size_t padded = dsp::next_pow2(n + s.size() - 1);
  for (auto _ : state) {
    CVec rx(padded, Complex{});
    std::copy(r.begin(), r.end(), rx.begin());
    CVec sx(padded, Complex{});
    for (std::size_t m = 0; m < s.size(); ++m)
      sx[(padded - m) % padded] = std::conj(s[m]);
    reference_fft_pow2(rx, false);
    reference_fft_pow2(sx, false);
    for (std::size_t i = 0; i < padded; ++i) rx[i] *= sx[i];
    reference_fft_pow2(rx, true);
    CVec y(n);
    for (std::size_t i = 0; i < n; ++i)
      y[i] = rx[i] / static_cast<double>(padded);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Reference_MatchedFilterUpsampledCir);

void BM_SearchSubtract_SingleTemplate(benchmark::State& state) {
  const auto cir = test_cir(static_cast<int>(state.range(0)), 5);
  ranging::SearchSubtractDetector det{ranging::DetectorConfig{}};
  for (auto _ : state) {
    auto found = det.detect(cir.taps, cir.ts_s, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(found.data());
  }
}
BENCHMARK(BM_SearchSubtract_SingleTemplate)->Arg(1)->Arg(3)->Arg(8);

void BM_SearchSubtract_ThreeTemplateBank(benchmark::State& state) {
  const auto cir = test_cir(3, 6);
  ranging::DetectorConfig cfg;
  cfg.shape_registers = {0x93, 0xC8, 0xE6};
  ranging::SearchSubtractDetector det{cfg};
  for (auto _ : state) {
    auto found = det.detect(cir.taps, cir.ts_s, 3);
    benchmark::DoNotOptimize(found.data());
  }
}
BENCHMARK(BM_SearchSubtract_ThreeTemplateBank);

void BM_SearchSubtract_ExactRecompute(benchmark::State& state) {
  // The exact reference path (DetectorConfig::exact_recompute): every
  // matched filter re-run from scratch per iteration. The gap to
  // BM_SearchSubtract_ThreeTemplateBank is what the shared-spectrum +
  // incremental fast path buys at equal output.
  const auto cir = test_cir(3, 6);
  ranging::DetectorConfig cfg;
  cfg.shape_registers = {0x93, 0xC8, 0xE6};
  cfg.exact_recompute = true;
  ranging::SearchSubtractDetector det{cfg};
  for (auto _ : state) {
    auto found = det.detect(cir.taps, cir.ts_s, 3);
    benchmark::DoNotOptimize(found.data());
  }
}
BENCHMARK(BM_SearchSubtract_ExactRecompute);

// --- SIMD dispatch-level benches (DESIGN.md §12) ------------------------
//
// Each runs one detect-path kernel at every dispatch level (benchmark arg
// 0 = scalar, 1 = sse2, 2 = avx2); levels this machine cannot run are
// skipped. The scalar leg is the denominator of the vectorization speedup
// CI tracks; the level is restored after each bench so the rest of the
// suite runs at the startup dispatch.

struct BenchLevelGuard {
  simd::Level saved = simd::active_level();
  ~BenchLevelGuard() { simd::set_active_level(saved); }
};

bool set_bench_level(benchmark::State& state) {
  const auto level = static_cast<simd::Level>(state.range(0));
  if (!simd::set_active_level(level)) {
    state.SkipWithError("dispatch level unsupported on this machine");
    return false;
  }
  state.SetLabel(simd::level_name(level));
  return true;
}

void BM_Simd_CmulConj_8192(benchmark::State& state) {
  BenchLevelGuard guard;
  if (!set_bench_level(state)) return;
  const CVec a = random_signal(8192, 21);
  const CVec b = random_signal(8192, 22);
  CVec out(8192);
  for (auto _ : state) {
    simd::cmul_conj(reinterpret_cast<const double*>(a.data()),
                    reinterpret_cast<const double*>(b.data()),
                    reinterpret_cast<double*>(out.data()), out.size());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Simd_CmulConj_8192)->DenseRange(0, 2);

void BM_Simd_FftPow2_8192(benchmark::State& state) {
  // The transform length of the fast detect path for a 1016-tap CIR
  // upsampled by 8 (next_pow2(1016) * 8).
  BenchLevelGuard guard;
  if (!set_bench_level(state)) return;
  const CVec x = random_signal(8192, 23);
  CVec y(8192);
  for (auto _ : state) {
    std::copy(x.begin(), x.end(), y.begin());
    dsp::fft_pow2_inplace(y, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Simd_FftPow2_8192)->DenseRange(0, 2);

void BM_Simd_FftBluestein_1016(benchmark::State& state) {
  BenchLevelGuard guard;
  if (!set_bench_level(state)) return;
  const CVec x = random_signal(k::cir_len_prf64, 24);
  for (auto _ : state) {
    CVec y = dsp::fft(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Simd_FftBluestein_1016)->DenseRange(0, 2);

void BM_Simd_BankCorrelate(benchmark::State& state) {
  // The bank_correlate span body: one pointwise multiply + inverse
  // transform per template of a three-shape bank against a shared
  // residual spectrum at the real fast-path sizes.
  BenchLevelGuard guard;
  if (!set_bench_level(state)) return;
  const std::size_t kM = 8192;
  std::vector<dsp::MatchedFilter> bank;
  for (const std::uint8_t reg : {0x93, 0xC8, 0xE6})
    bank.emplace_back(dw::sample_pulse_template(reg, k::cir_ts_s / 8.0));
  const std::size_t kP =
      dsp::next_pow2(kM + bank[0].template_length() - 1);
  CVec spec = random_signal(kP, 25);
  dsp::plan_for(kP).transform_pow2(spec.data(), false);
  CVec y;
  for (auto _ : state) {
    for (const auto& mf : bank) {
      mf.apply_spectrum(spec.data(), kP, kM, y);
      benchmark::DoNotOptimize(y.data());
    }
  }
}
BENCHMARK(BM_Simd_BankCorrelate)->DenseRange(0, 2);

void BM_Simd_SubtractUpdate(benchmark::State& state) {
  // The subtract_update span body: the windowed correlation that patches
  // every template's output after one subtraction.
  BenchLevelGuard guard;
  if (!set_bench_level(state)) return;
  dsp::MatchedFilter mf(dw::sample_pulse_template(0x93, k::cir_ts_s / 8.0));
  const CVec& s = mf.unit_template();
  const auto np = static_cast<std::ptrdiff_t>(s.size());
  CVec y = random_signal(8192, 26);
  const CVec delta = random_signal(static_cast<std::size_t>(np) + 1, 27);
  const std::ptrdiff_t w_lo = 4000;
  const std::ptrdiff_t w_hi = w_lo + np + 1;
  const std::ptrdiff_t j_lo = std::max<std::ptrdiff_t>(0, w_lo - np + 1);
  const std::ptrdiff_t j_hi =
      std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(y.size()), w_hi);
  for (auto _ : state) {
    simd::corr_window_update(reinterpret_cast<double*>(y.data()),
                             reinterpret_cast<const double*>(delta.data()),
                             reinterpret_cast<const double*>(s.data()), j_lo,
                             j_hi, w_lo, w_hi, np);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Simd_SubtractUpdate)->DenseRange(0, 2);

// --- batched detection throughput ---------------------------------------

void BM_SearchSubtract_DetectBatch32(benchmark::State& state) {
  // 32 CIRs through one staged batch; cirs_per_sec is the headline
  // throughput metric CI requires in the bench JSON.
  std::vector<CVec> cirs;
  double ts_s = 0.0;
  for (std::uint64_t i = 0; i < 32; ++i) {
    const auto cir = test_cir(3, 40 + i);
    cirs.push_back(cir.taps);
    ts_s = cir.ts_s;
  }
  ranging::DetectorConfig cfg;
  cfg.shape_registers = {0x93, 0xC8, 0xE6};
  ranging::SearchSubtractDetector det{cfg};
  for (auto _ : state) {
    auto out = det.detect_batch(cirs, ts_s, 3);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["cirs_per_sec"] = benchmark::Counter(
      static_cast<double>(cirs.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SearchSubtract_DetectBatch32);

void BM_SearchSubtract_DetectLoop32(benchmark::State& state) {
  // The same 32 CIRs through per-CIR detect(): the baseline the batch
  // restaging is measured against.
  std::vector<CVec> cirs;
  double ts_s = 0.0;
  for (std::uint64_t i = 0; i < 32; ++i) {
    const auto cir = test_cir(3, 40 + i);
    cirs.push_back(cir.taps);
    ts_s = cir.ts_s;
  }
  ranging::DetectorConfig cfg;
  cfg.shape_registers = {0x93, 0xC8, 0xE6};
  ranging::SearchSubtractDetector det{cfg};
  for (auto _ : state) {
    for (const CVec& taps : cirs) {
      auto out = det.detect(taps, ts_s, 3);
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.counters["cirs_per_sec"] = benchmark::Counter(
      static_cast<double>(cirs.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_SearchSubtract_DetectLoop32);

void BM_ThresholdDetector(benchmark::State& state) {
  const auto cir = test_cir(3, 7);
  ranging::ThresholdDetector det{ranging::DetectorConfig{}};
  for (auto _ : state) {
    auto found = det.detect(cir.taps, cir.ts_s, 3);
    benchmark::DoNotOptimize(found.data());
  }
}
BENCHMARK(BM_ThresholdDetector);

void BM_FullConcurrentRound(benchmark::State& state) {
  ranging::ScenarioConfig cfg = bench::hallway_scenario(8);
  cfg.responders = {{0, bench::hallway_at(3.0)},
                    {1, bench::hallway_at(6.0)},
                    {2, bench::hallway_at(10.0)}};
  ranging::ConcurrentRangingScenario scenario(cfg);
  for (auto _ : state) {
    auto out = scenario.run_round();
    benchmark::DoNotOptimize(&out);
  }
}
BENCHMARK(BM_FullConcurrentRound);

// --- runner / parallel harness micro-benchmarks -------------------------

void BM_DeriveSeed(benchmark::State& state) {
  std::uint64_t s = 0;
  for (auto _ : state) {
    s ^= derive_seed(42, s);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_DeriveSeed);

void BM_ThreadPoolSubmitDrain(benchmark::State& state) {
  runner::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::atomic<int> acc{0};
    for (int i = 0; i < 256; ++i)
      pool.submit([&acc] { acc.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    benchmark::DoNotOptimize(acc.load());
  }
}
BENCHMARK(BM_ThreadPoolSubmitDrain)->Arg(1)->Arg(4);

void BM_MonteCarloRun(benchmark::State& state) {
  runner::MonteCarlo::Config cfg;
  cfg.threads = static_cast<int>(state.range(0));
  cfg.base_seed = 9;
  const runner::MonteCarlo mc(cfg);
  for (auto _ : state) {
    auto result = mc.run(64, [](const runner::TrialContext& ctx,
                                runner::TrialRecorder& rec) {
      Rng rng(ctx.seed);
      double acc = 0.0;
      for (int i = 0; i < 1000; ++i) acc += rng.normal(0.0, 1.0);
      rec.sample("acc", acc);
    });
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(BM_MonteCarloRun)->Arg(1)->Arg(4);

void BM_CachedPulseTemplate(benchmark::State& state) {
  dw::clear_pulse_cache();
  for (auto _ : state) {
    const CVec& t = dw::cached_pulse_template(0x93, k::cir_ts_s / 8.0);
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_CachedPulseTemplate);

void BM_MonteCarloScenarioRound(benchmark::State& state) {
  // One full scenario-per-trial Monte-Carlo round trip — the unit of work
  // every ported bench schedules. Warm thread-local caches dominate.
  runner::MonteCarlo::Config cfg;
  cfg.threads = 1;
  cfg.base_seed = 11;
  const runner::MonteCarlo mc(cfg);
  for (auto _ : state) {
    auto result = mc.run(1, [](const runner::TrialContext& ctx,
                               runner::TrialRecorder& rec) {
      ranging::ScenarioConfig cfg2 = bench::hallway_scenario(ctx.seed);
      cfg2.responders = {{0, bench::hallway_at(3.0)},
                         {1, bench::hallway_at(6.0)}};
      ranging::ConcurrentRangingScenario scenario(cfg2);
      const auto out = scenario.run_round();
      rec.sample("d", out.d_twr_m);
    });
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(BM_MonteCarloScenarioRound);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Record the startup dispatch level in the JSON context so a perf run is
  // attributable to the SIMD level it exercised.
  benchmark::AddCustomContext(
      "uwb_simd_level", uwb::simd::level_name(uwb::simd::active_level()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
