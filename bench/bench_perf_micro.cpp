// Micro-benchmarks (google-benchmark): run-time feasibility of the Sect. IV
// detection pipeline — the paper requires the initiator to process the CIR
// *at run time*, so the detector must be fast enough for embedded use.
#include <benchmark/benchmark.h>

#include <atomic>

#include "common/constants.hpp"
#include "common/random.hpp"
#include "dsp/fft.hpp"
#include "dsp/matched_filter.hpp"
#include "dsp/resample.hpp"
#include "dw1000/cir.hpp"
#include "dw1000/pulse.hpp"
#include "ranging/search_subtract.hpp"
#include "ranging/threshold_detector.hpp"
#include "runner/thread_pool.hpp"
#include "bench_util.hpp"

namespace {

using namespace uwb;

CVec random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  CVec x(n);
  for (auto& v : x) v = rng.complex_normal(1.0);
  return x;
}

dw::CirEstimate test_cir(int responses, std::uint64_t seed) {
  std::vector<dw::CirArrival> arrivals;
  for (int i = 0; i < responses; ++i) {
    dw::CirArrival a;
    a.time_into_window_s = (80.0 + 40.0 * i) * k::cir_ts_s;
    a.amplitude = {0.4 - 0.05 * i, 0.0};
    arrivals.push_back(a);
  }
  dw::CirParams params;
  Rng rng(seed);
  return dw::synthesize_cir(arrivals, params, rng);
}

void BM_FftPow2_1024(benchmark::State& state) {
  CVec x = random_signal(1024, 1);
  for (auto _ : state) {
    CVec y = x;
    dsp::fft_pow2_inplace(y, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FftPow2_1024);

void BM_FftBluestein_1016(benchmark::State& state) {
  const CVec x = random_signal(k::cir_len_prf64, 2);
  for (auto _ : state) {
    CVec y = dsp::fft(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FftBluestein_1016);

void BM_UpsampleCirBy8(benchmark::State& state) {
  const CVec x = random_signal(k::cir_len_prf64, 3);
  for (auto _ : state) {
    CVec y = dsp::upsample_fft(x, 8);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_UpsampleCirBy8);

void BM_MatchedFilterUpsampledCir(benchmark::State& state) {
  const CVec r = random_signal(8192, 4);
  dsp::MatchedFilter mf(dw::sample_pulse_template(0x93, k::cir_ts_s / 8.0));
  for (auto _ : state) {
    CVec y = mf.apply(r);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MatchedFilterUpsampledCir);

void BM_SearchSubtract_SingleTemplate(benchmark::State& state) {
  const auto cir = test_cir(static_cast<int>(state.range(0)), 5);
  ranging::SearchSubtractDetector det{ranging::DetectorConfig{}};
  for (auto _ : state) {
    auto found = det.detect(cir.taps, cir.ts_s, static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(found.data());
  }
}
BENCHMARK(BM_SearchSubtract_SingleTemplate)->Arg(1)->Arg(3)->Arg(8);

void BM_SearchSubtract_ThreeTemplateBank(benchmark::State& state) {
  const auto cir = test_cir(3, 6);
  ranging::DetectorConfig cfg;
  cfg.shape_registers = {0x93, 0xC8, 0xE6};
  ranging::SearchSubtractDetector det{cfg};
  for (auto _ : state) {
    auto found = det.detect(cir.taps, cir.ts_s, 3);
    benchmark::DoNotOptimize(found.data());
  }
}
BENCHMARK(BM_SearchSubtract_ThreeTemplateBank);

void BM_ThresholdDetector(benchmark::State& state) {
  const auto cir = test_cir(3, 7);
  ranging::ThresholdDetector det{ranging::DetectorConfig{}};
  for (auto _ : state) {
    auto found = det.detect(cir.taps, cir.ts_s, 3);
    benchmark::DoNotOptimize(found.data());
  }
}
BENCHMARK(BM_ThresholdDetector);

void BM_FullConcurrentRound(benchmark::State& state) {
  ranging::ScenarioConfig cfg = bench::hallway_scenario(8);
  cfg.responders = {{0, bench::hallway_at(3.0)},
                    {1, bench::hallway_at(6.0)},
                    {2, bench::hallway_at(10.0)}};
  ranging::ConcurrentRangingScenario scenario(cfg);
  for (auto _ : state) {
    auto out = scenario.run_round();
    benchmark::DoNotOptimize(&out);
  }
}
BENCHMARK(BM_FullConcurrentRound);

// --- runner / parallel harness micro-benchmarks -------------------------

void BM_DeriveSeed(benchmark::State& state) {
  std::uint64_t s = 0;
  for (auto _ : state) {
    s ^= derive_seed(42, s);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_DeriveSeed);

void BM_ThreadPoolSubmitDrain(benchmark::State& state) {
  runner::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::atomic<int> acc{0};
    for (int i = 0; i < 256; ++i)
      pool.submit([&acc] { acc.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    benchmark::DoNotOptimize(acc.load());
  }
}
BENCHMARK(BM_ThreadPoolSubmitDrain)->Arg(1)->Arg(4);

void BM_MonteCarloRun(benchmark::State& state) {
  runner::MonteCarlo::Config cfg;
  cfg.threads = static_cast<int>(state.range(0));
  cfg.base_seed = 9;
  const runner::MonteCarlo mc(cfg);
  for (auto _ : state) {
    auto result = mc.run(64, [](const runner::TrialContext& ctx,
                                runner::TrialRecorder& rec) {
      Rng rng(ctx.seed);
      double acc = 0.0;
      for (int i = 0; i < 1000; ++i) acc += rng.normal(0.0, 1.0);
      rec.sample("acc", acc);
    });
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(BM_MonteCarloRun)->Arg(1)->Arg(4);

void BM_CachedPulseTemplate(benchmark::State& state) {
  dw::clear_pulse_cache();
  for (auto _ : state) {
    const CVec& t = dw::cached_pulse_template(0x93, k::cir_ts_s / 8.0);
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_CachedPulseTemplate);

void BM_MonteCarloScenarioRound(benchmark::State& state) {
  // One full scenario-per-trial Monte-Carlo round trip — the unit of work
  // every ported bench schedules. Warm thread-local caches dominate.
  runner::MonteCarlo::Config cfg;
  cfg.threads = 1;
  cfg.base_seed = 11;
  const runner::MonteCarlo mc(cfg);
  for (auto _ : state) {
    auto result = mc.run(1, [](const runner::TrialContext& ctx,
                               runner::TrialRecorder& rec) {
      ranging::ScenarioConfig cfg2 = bench::hallway_scenario(ctx.seed);
      cfg2.responders = {{0, bench::hallway_at(3.0)},
                         {1, bench::hallway_at(6.0)}};
      ranging::ConcurrentRangingScenario scenario(cfg2);
      const auto out = scenario.run_round();
      rec.sample("d", out.d_twr_m);
    });
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(BM_MonteCarloScenarioRound);

}  // namespace

BENCHMARK_MAIN();
