// Extension — building-scale concurrent ranging on the spatially-sharded
// medium (DESIGN.md Sect. 13; paper Sect. VIII argues concurrent ranging
// scales to hundreds of responders — this bench runs them).
//
// Two sweeps, both on generated multi-room floor plans with a steep
// through-building channel (exponent 3.5), where the derived interference
// radius is far smaller than the building:
//
// 1. Session sweep (headline): N concurrent responders run full
//    concurrent-ranging rounds on the Monte-Carlo engine. The culled
//    (sharded) runs are timed — nN_sessions_per_sec and the headline
//    sessions_per_sec — and every trial is re-run on the unculled O(N^2)
//    reference medium at the same seed: the round-outcome digests must
//    match bit for bit (nN_identity_ok; a mismatch fails the run).
//
// 2. Raw medium sweep: every node broadcasts one frame through the medium
//    (no protocol on top), isolating the transmit fan-out. Measures
//    frames/sec at node counts beyond session scale, the delivered-frame
//    digest identity against the reference where affordable, and the
//    scaling exponent d ln(wall) / d ln(N) (1 = linear fan-out, 2 =
//    all-pairs quadratic).
//
// Extra flags on top of the standard bench set:
//   --sessions N      single session responder count instead of the sweep
//   --medium-nodes N  single raw-sweep node count instead of the sweep
//   --rounds R        rounds per representative per-cell scenario (default 3)
//
// Wall-clock metrics (sessions_per_sec, *_frames_per_sec, *_ms, scaling
// exponents) vary run to run; the identity flags, delivery/cull counters,
// and digests are deterministic at any --threads value.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/hash.hpp"
#include "sim/floorplan.hpp"

namespace {

using namespace uwb;

/// Through-building propagation: steeper decay than the single-room
/// default, no image-source solve (hundreds of partition segments), diffuse
/// tail on. Matches test_spatial's scale channel.
channel::ChannelModelParams scale_channel() {
  channel::ChannelModelParams ch;
  ch.path_loss_exponent = 3.5;
  ch.max_reflection_order = 0;
  return ch;
}

/// One initiator at the building centre, N responders spread one-per-room.
ranging::ScenarioConfig building_scenario(std::uint64_t seed, int responders,
                                          bool culling) {
  const sim::FloorPlan plan =
      sim::make_floor_plan(sim::plan_for_nodes(responders + 1,
                                               /*nodes_per_room=*/1.0));
  const auto positions = sim::place_nodes(plan, responders + 1, seed);
  ranging::ScenarioConfig cfg;
  cfg.room = plan.room;
  cfg.channel = scale_channel();
  cfg.medium.culling_enabled = culling;
  // Short-range radio: detectable links span a few rooms, the derived
  // interference radius (~16 m) a few more — the building spans many.
  cfg.medium.detection_threshold_amp = 0.05;
  cfg.initiator_position = plan.center();
  for (int i = 0; i < responders; ++i)
    cfg.responders.push_back({i, positions[static_cast<std::size_t>(i)]});
  cfg.ranging.num_slots = 64;
  cfg.ranging.slot_spacing_s = 150e-9;
  cfg.ranging.shape_registers = {0x93, 0xB8, 0xC8, 0xE0};  // 256 id capacity
  cfg.detect_max_responses = 12;
  cfg.slot_aware_selection = true;
  cfg.seed = seed;
  return cfg;
}

/// Everything observable about a round, folded to one word (same fields as
/// test_spatial's outcome digest).
std::uint64_t outcome_digest(const ranging::RoundOutcome& out) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = hash_combine(h, out.completed ? 1 : 0);
  h = hash_combine(h, out.payload_decoded ? 1 : 0);
  h = hash_combine(h, static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(out.sync_responder_id)));
  h = hash_combine(h, double_bits(out.d_twr_m));
  h = hash_combine(h, out.estimates.size());
  for (const auto& e : out.estimates)
    h = hash_combine(h, double_bits(e.distance_m));
  for (const auto& r : out.responder_reports)
    h = hash_combine(h, static_cast<std::uint64_t>(r.status));
  for (const auto& c : out.cir.taps) {
    h = hash_combine(h, double_bits(c.real()));
    h = hash_combine(h, double_bits(c.imag()));
  }
  return h;
}

/// Raw medium traffic: every node broadcasts once, 200 us apart.
struct TrafficResult {
  std::uint64_t digest = 0xcbf29ce484222325ull;
  double wall_ms = 0.0;
  sim::MediumStats stats;
};

TrafficResult run_traffic(bool culling, int node_count, std::uint64_t seed) {
  const sim::FloorPlan plan =
      sim::make_floor_plan(sim::plan_for_nodes(node_count));
  const auto positions = sim::place_nodes(plan, node_count, seed);

  sim::Simulator sim;
  sim.reserve_events(static_cast<std::size_t>(node_count));
  sim::MediumParams mp;
  mp.culling_enabled = culling;
  mp.detection_threshold_amp = 0.1;
  sim::Medium medium(sim, channel::ChannelModel(plan.room, scale_channel()),
                     mp, Rng(seed));
  TrafficResult result;
  medium.set_delivery_probe([&](int rx_id, const sim::AirFrame& af) {
    std::uint64_t& h = result.digest;
    h = hash_combine(h, static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(rx_id)));
    h = hash_combine(h, static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(af.tx_node_id)));
    h = hash_combine(h,
                     static_cast<std::uint64_t>(af.preamble_start_arrival.ps()));
    h = hash_combine(h, static_cast<std::uint64_t>(af.rmarker_arrival.ps()));
    h = hash_combine(h, double_bits(af.first_path_amplitude));
    h = hash_combine(h, double_bits(af.first_detectable_delay.value()));
    h = hash_combine(h, af.preamble_missed ? 1 : 0);
    for (const channel::Tap& t : af.taps) {
      h = hash_combine(h, double_bits(t.delay_s));
      h = hash_combine(h, double_bits(t.amplitude.real()));
      h = hash_combine(h, double_bits(t.amplitude.imag()));
    }
  });

  std::vector<std::unique_ptr<sim::Node>> nodes;
  Rng node_seeds(derive_seed(seed, 0x50A7));
  for (int i = 0; i < node_count; ++i) {
    sim::NodeConfig nc;
    nc.id = i;
    nc.position = positions[static_cast<std::size_t>(i)];
    nodes.push_back(
        std::make_unique<sim::Node>(sim, medium, nc, node_seeds.fork()));
  }

  dw::MacFrame f;
  f.type = dw::FrameType::Init;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < node_count; ++i) {
    sim.after(SimTime::from_micros(200.0 * i + 5.0),
              [&, i] { nodes[static_cast<std::size_t>(i)]->transmit_now(f); });
    sim.run();
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  result.stats = medium.stats();
  return result;
}

bool same_samples(const runner::TrialResult& a, const runner::TrialResult& b,
                  const std::string& name) {
  const RVec& xs = a.samples(name);
  const RVec& ys = b.samples(name);
  if (xs.size() != ys.size()) return false;
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (xs[i] != ys[i]) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 8);

  std::vector<int> session_counts = {10, 50, 200};
  std::vector<int> medium_counts = {50, 200, 500};
  int rounds = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      session_counts = {std::atoi(argv[++i])};
    } else if (std::strcmp(argv[i], "--medium-nodes") == 0 && i + 1 < argc) {
      medium_counts = {std::atoi(argv[++i])};
    } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
      rounds = std::atoi(argv[++i]);
    }
  }

  bench::JsonReport report("ext_scale", opts.trials);
  bench::heading("Extension — building-scale ranging on the sharded medium");

  // -------------------------------------------------------------------
  // 1. Session sweep: timed culled runs, each verified bit-for-bit
  //    against the unculled reference at the same seeds.
  bench::subheading("concurrent-ranging sessions vs responder count");
  std::printf("(%d rounds per count; culled timed, reference for identity)\n",
              opts.trials);
  std::printf("%-8s %-10s %-16s %-12s %-12s %-10s %s\n", "N", "rooms",
              "sessions/sec", "round [ms]", "realized", "culled",
              "identity");

  bool identity_ok = true;
  double headline_sessions_per_sec = 0.0;
  std::vector<double> session_round_ms;
  for (const int n : session_counts) {
    const std::string cell = "n" + std::to_string(n);
    const std::uint64_t base_seed = 8200 + static_cast<std::uint64_t>(n);
    const auto record = [&cell](
                            const ranging::ConcurrentRangingScenario& scenario,
                            const ranging::RoundOutcome& out,
                            runner::TrialRecorder& rec) {
      // >> 11 keeps the digest inside a double's 53 exact integer bits.
      rec.sample(cell + "_digest",
                 static_cast<double>(outcome_digest(out) >> 11));
      const auto& stats = scenario.medium().stats();
      rec.count(cell + "_delivered",
                static_cast<std::int64_t>(stats.frames_delivered));
      rec.count(cell + "_realized",
                static_cast<std::int64_t>(stats.channels_realized));
      rec.count(cell + "_culled",
                static_cast<std::int64_t>(stats.receivers_culled));
      for (const auto& rep : out.responder_reports)
        if (rep.status == ranging::RangingStatus::kOk)
          rec.count(cell + "_status_ok");
    };
    const auto culled = bench::run_rounds(
        opts, base_seed, opts.trials,
        [&](std::uint64_t seed) { return building_scenario(seed, n, true); },
        record);
    const auto reference = bench::run_rounds(
        opts, base_seed, opts.trials,
        [&](std::uint64_t seed) { return building_scenario(seed, n, false); },
        record);

    const bool ok = same_samples(culled, reference, cell + "_digest");
    identity_ok = identity_ok && ok;
    const double round_ms = culled.wall_ms() / opts.trials;
    const double per_sec =
        culled.wall_ms() > 0.0 ? 1000.0 * opts.trials / culled.wall_ms() : 0.0;
    session_round_ms.push_back(round_ms);
    headline_sessions_per_sec = per_sec;  // largest N wins (ascending sweep)

    const int room_count = sim::plan_for_nodes(n + 1, 1.0).rooms_x *
                           sim::plan_for_nodes(n + 1, 1.0).rooms_y;
    std::printf("%-8d %-10d %-16.1f %-12.2f %-12lld %-10lld %s\n", n,
                room_count, per_sec, round_ms,
                static_cast<long long>(culled.counter(cell + "_realized")),
                static_cast<long long>(culled.counter(cell + "_culled")),
                ok ? "ok" : "MISMATCH");

    report.metric(cell + "_sessions_per_sec", per_sec);
    report.metric(cell + "_round_ms", round_ms);
    report.metric(cell + "_identity_ok", ok ? 1.0 : 0.0);
    report.metric(cell + "_status_ok",
                  static_cast<double>(culled.counter(cell + "_status_ok")));
    report.metric(cell + "_frames_delivered",
                  static_cast<double>(culled.counter(cell + "_delivered")));
    report.metric(cell + "_channels_realized",
                  static_cast<double>(culled.counter(cell + "_realized")));
    report.metric(cell + "_receivers_culled",
                  static_cast<double>(culled.counter(cell + "_culled")));
    report.metric(
        cell + "_channels_realized_reference",
        static_cast<double>(reference.counter(cell + "_realized")));
  }
  report.metric("sessions_per_sec", headline_sessions_per_sec);
  if (session_counts.size() >= 2) {
    // d ln(round time) / d ln(N) between the sweep's extremes: 1 = linear,
    // 2 = quadratic. The culled medium keeps per-round work at O(k).
    const double expo =
        std::log(session_round_ms.back() / session_round_ms.front()) /
        std::log(static_cast<double>(session_counts.back()) /
                 session_counts.front());
    report.metric("session_scaling_exponent", expo);
    std::printf("session scaling exponent (round time vs N): %.2f "
                "(1 = linear, 2 = quadratic)\n", expo);
  }

  // -------------------------------------------------------------------
  // Representative per-cell traffic of the largest session scenario.
  {
    const int n = session_counts.back();
    ranging::ConcurrentRangingScenario scenario(
        building_scenario(4242, n, true));
    for (int r = 0; r < rounds; ++r) scenario.run_round();
    auto& medium = scenario.medium();
    bench::subheading("per-cell traffic (N = " + std::to_string(n) +
                      ", seed 4242, " + std::to_string(rounds) + " rounds)");
    std::printf("interference radius: %.1f m, grid cells occupied: %zu\n",
                medium.interference_radius_m(), medium.cell_traffic().size());
    std::printf("%-12s %-12s %s\n", "cell", "delivered", "culled");
    std::uint64_t delivered_total = 0;
    std::uint64_t culled_total = 0;
    int shown = 0;
    for (const sim::CellTraffic& c : medium.cell_traffic()) {
      delivered_total += c.delivered;
      culled_total += c.culled;
      if (shown++ < 10)
        std::printf("(%3d,%3d)    %-12llu %llu\n",
                    geom::UniformGrid::cell_ix(c.key),
                    geom::UniformGrid::cell_iy(c.key),
                    static_cast<unsigned long long>(c.delivered),
                    static_cast<unsigned long long>(c.culled));
    }
    if (shown > 10) std::printf("... (%d more cells)\n", shown - 10);
    std::printf("totals: delivered %llu, culled %llu\n",
                static_cast<unsigned long long>(delivered_total),
                static_cast<unsigned long long>(culled_total));
    report.metric("cells_occupied",
                  static_cast<double>(medium.cell_traffic().size()));
    report.metric("cell_delivered_total",
                  static_cast<double>(delivered_total));
    report.metric("cell_culled_total", static_cast<double>(culled_total));
    report.metric("interference_radius_m", medium.interference_radius_m());
  }

  // -------------------------------------------------------------------
  // 2. Raw medium sweep: fan-out throughput beyond session scale.
  bench::subheading("raw frame fan-out vs node count");
  std::printf("%-8s %-14s %-14s %-12s %-10s %s\n", "N", "frames/sec",
              "ref frames/sec", "realized", "culled", "identity");
  std::vector<double> medium_wall_ms;
  for (const int n : medium_counts) {
    const std::string cell = "m" + std::to_string(n);
    const std::uint64_t seed = 9100 + static_cast<std::uint64_t>(n);
    const TrafficResult culled = run_traffic(true, n, seed);
    medium_wall_ms.push_back(culled.wall_ms);
    const double fps =
        culled.wall_ms > 0.0 ? 1000.0 * n / culled.wall_ms : 0.0;
    report.metric(cell + "_frames_per_sec", fps);
    report.metric(cell + "_channels_realized",
                  static_cast<double>(culled.stats.channels_realized));
    report.metric(cell + "_receivers_culled",
                  static_cast<double>(culled.stats.receivers_culled));

    // The quadratic reference is only affordable at moderate N; beyond
    // that the unit tests carry the identity contract.
    std::string identity = "skipped";
    double ref_fps = 0.0;
    if (n <= 200) {
      const TrafficResult full = run_traffic(false, n, seed);
      ref_fps = full.wall_ms > 0.0 ? 1000.0 * n / full.wall_ms : 0.0;
      const bool ok = culled.digest == full.digest &&
                      culled.stats.frames_delivered ==
                          full.stats.frames_delivered;
      identity = ok ? "ok" : "MISMATCH";
      identity_ok = identity_ok && ok;
      report.metric(cell + "_identity_ok", ok ? 1.0 : 0.0);
      report.metric(cell + "_ref_frames_per_sec", ref_fps);
    }
    std::printf("%-8d %-14.1f %-14.1f %-12llu %-10llu %s\n", n, fps, ref_fps,
                static_cast<unsigned long long>(culled.stats.channels_realized),
                static_cast<unsigned long long>(culled.stats.receivers_culled),
                identity.c_str());
  }
  if (medium_counts.size() >= 2) {
    const double expo =
        std::log(medium_wall_ms.back() / medium_wall_ms.front()) /
        std::log(static_cast<double>(medium_counts.back()) /
                 medium_counts.front());
    report.metric("medium_scaling_exponent", expo);
    std::printf("medium scaling exponent (wall vs N): %.2f "
                "(1 = linear, 2 = quadratic)\n", expo);
  }

  std::printf(
      "\ncheck: identity columns all 'ok' — the sharded medium skips\n"
      "out-of-range receivers without perturbing a single delivered frame —\n"
      "and both scaling exponents stay well below 2.\n");
  if (!identity_ok)
    std::fprintf(stderr, "FAIL: culled run diverged from reference\n");
  const bool wrote = report.write_if_requested(opts);
  return (identity_ok && wrote) ? 0 : 1;
}
