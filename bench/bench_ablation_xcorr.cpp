// Ablation B2 (challenge II): cross-correlation identification against
// recorded reference CIRs (the feasibility study's proposal) vs the paper's
// pulse-shaping identification.
//
// Three responders in a reflective corridor (so each position has a
// distinctive multipath signature — the best case for recorded
// references). Each responder's reference CIR is recorded once in
// isolation. Identification is then scored on correctly-located responses
// in concurrent rounds, (a) with everything unchanged and (b) after all
// responders moved 2 m — the situation the paper argues invalidates
// recorded references, while pulse shaping needs no calibration at all.
// Chance level is 33%. The recorded XcorrIdentifier is immutable during
// scoring, so the Monte-Carlo workers share it read-only.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "ranging/xcorr_id.hpp"

namespace {

using namespace uwb;

ranging::ScenarioConfig xcorr_scenario(std::uint64_t seed) {
  ranging::ScenarioConfig cfg = bench::hallway_scenario(seed);
  cfg.room = geom::Room::hallway(40.0, 2.4, /*reflection_loss_db=*/6.0);
  return cfg;
}

const std::vector<double> kRecordedDistances{3.0, 7.0, 11.0};

geom::Vec2 position_at(double distance_m) { return bench::hallway_at(distance_m); }

void record_references(ranging::XcorrIdentifier& identifier,
                       std::uint64_t seed) {
  for (std::size_t i = 0; i < kRecordedDistances.size(); ++i) {
    ranging::ScenarioConfig cfg = xcorr_scenario(seed + i);
    cfg.responders = {{0, position_at(kRecordedDistances[i])}};
    ranging::ConcurrentRangingScenario scenario(cfg);
    const auto out = scenario.run_round();
    if (!out.payload_decoded || out.detections.empty()) continue;
    identifier.add_reference(static_cast<int>(i), out.cir.taps, out.cir.ts_s,
                             out.detections.front().tau_s);
  }
}

struct Accuracy {
  std::int64_t correct = 0;
  std::int64_t scored = 0;
  double pct() const {
    return scored ? 100.0 * static_cast<double>(correct) /
                        static_cast<double>(scored)
                  : 0.0;
  }
};

// Index of the estimate located at d_true (within 0.8 m); -1 if none.
int located_index(const ranging::RoundOutcome& out, double d_true) {
  int idx = -1;
  double best = 0.8;
  for (std::size_t i = 0; i < out.estimates.size(); ++i) {
    const double err = std::abs(out.estimates[i].distance_m - d_true);
    if (err < best) {
      best = err;
      idx = static_cast<int>(i);
    }
  }
  return idx;
}

// Score identification of every correctly-located response; `offset_m`
// shifts all responders relative to the recorded positions.
Accuracy xcorr_accuracy(const bench::BenchOptions& opts,
                        const ranging::XcorrIdentifier& identifier,
                        double offset_m, std::uint64_t seed) {
  const auto result = bench::run_rounds(
      opts, seed, opts.trials,
      [offset_m](std::uint64_t trial_seed) {
        ranging::ScenarioConfig cfg = xcorr_scenario(trial_seed);
        for (std::size_t i = 0; i < kRecordedDistances.size(); ++i)
          cfg.responders.push_back(
              {static_cast<int>(i),
               position_at(kRecordedDistances[i] + offset_m)});
        cfg.detect_max_responses = 5;
        return cfg;
      },
      [&identifier, offset_m](const ranging::ConcurrentRangingScenario&,
                              const ranging::RoundOutcome& out,
                              runner::TrialRecorder& rec) {
        if (!out.payload_decoded) return;
        for (std::size_t r = 0; r < kRecordedDistances.size(); ++r) {
          const int idx = located_index(out, kRecordedDistances[r] + offset_m);
          if (idx < 0) continue;
          rec.count("scored");
          const auto match = identifier.identify(
              out.cir.taps, out.cir.ts_s,
              out.detections[static_cast<std::size_t>(idx)]);
          if (match.responder_id == static_cast<int>(r)) rec.count("correct");
        }
      });
  return {result.counter("correct"), result.counter("scored")};
}

Accuracy shape_accuracy(const bench::BenchOptions& opts, double offset_m,
                        std::uint64_t seed) {
  const auto result = bench::run_rounds(
      opts, seed, opts.trials,
      [offset_m](std::uint64_t trial_seed) {
        ranging::ScenarioConfig cfg = xcorr_scenario(trial_seed);
        cfg.ranging.shape_registers = {0x93, 0xC8, 0xE6};
        // One slot, three shapes: responder i transmits shape s_{i+1}.
        for (std::size_t i = 0; i < kRecordedDistances.size(); ++i)
          cfg.responders.push_back(
              {static_cast<int>(i),
               position_at(kRecordedDistances[i] + offset_m)});
        cfg.detect_max_responses = 5;
        return cfg;
      },
      [offset_m](const ranging::ConcurrentRangingScenario&,
                 const ranging::RoundOutcome& out,
                 runner::TrialRecorder& rec) {
        if (!out.payload_decoded) return;
        for (std::size_t r = 0; r < kRecordedDistances.size(); ++r) {
          const int idx = located_index(out, kRecordedDistances[r] + offset_m);
          if (idx < 0) continue;
          rec.count("scored");
          if (out.estimates[static_cast<std::size_t>(idx)].shape_index ==
              static_cast<int>(r))
            rec.count("correct");
        }
      });
  return {result.counter("correct"), result.counter("scored")};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 120);
  bench::JsonReport report("ablation_xcorr", opts.trials);
  bench::heading(
      "Ablation — cross-correlation identification vs pulse shaping "
      "(challenge II)");
  std::printf("(3 responders, %d concurrent rounds per case, chance = 33%%)\n",
              opts.trials);

  ranging::XcorrIdentifier identifier;
  record_references(identifier, 2001);
  std::printf("references recorded: %d (one isolated round each)\n",
              identifier.reference_count());

  std::printf("\n%-46s %-14s %s\n", "identification method", "unchanged",
              "all moved 2 m");
  const auto x_same = xcorr_accuracy(opts, identifier, 0.0, 2101);
  const auto x_moved = xcorr_accuracy(opts, identifier, 2.0, 2102);
  const auto s_same = shape_accuracy(opts, 0.0, 2103);
  const auto s_moved = shape_accuracy(opts, 2.0, 2104);
  std::printf("%-46s %6.1f %%       %6.1f %%\n",
              "xcorr vs recorded references (Corbalan'18)", x_same.pct(),
              x_moved.pct());
  std::printf("%-46s %6.1f %%       %6.1f %%\n",
              "pulse shaping, no calibration (paper Sect. V)", s_same.pct(),
              s_moved.pct());

  report.metric("xcorr_unchanged_pct", x_same.pct());
  report.metric("xcorr_moved_pct", x_moved.pct());
  report.metric("shape_unchanged_pct", s_same.pct());
  report.metric("shape_moved_pct", s_moved.pct());

  std::printf(
      "\npaper check (challenge II): recorded-reference identification\n"
      "hovers barely above the 33%% chance level in concurrent conditions —\n"
      "the isolated signatures are invalidated by response superposition,\n"
      "TX-timing jitter, and any movement — while pulse shaping decodes\n"
      "identity from the waveform itself, calibration-free.\n");
  return report.write_if_requested(opts) ? 0 : 1;
}
