// Reproduces paper Sect. VIII in-text numbers: slot capacity vs maximum
// communication range, total user capacity with pulse shaping, and the
// message/energy savings of concurrent ranging.
#include <cstdio>

#include "bench_util.hpp"
#include "common/constants.hpp"
#include "ranging/capacity.hpp"

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 1);
  bench::JsonReport report("sect8_scalability", opts.trials);
  bench::heading("Sect. VIII — scalability of the combined scheme");

  const dw::PhyConfig phy;
  std::printf("CIR span delta_max = %.1f ns  (%.1f m at c)\n",
              ranging::cir_max_offset_s(phy) * 1e9,
              ranging::cir_max_offset_s(phy) * k::c_air);
  std::printf("paper quotes delta_max ~= 1017 ns, delta_max*c ~= 307 m\n");

  bench::subheading("RPM slots and user capacity vs communication range");
  std::printf("%-14s %-12s %-18s %-14s %-14s %s\n", "r_max [m]",
              "N_RPM", "N_RPM (alias-free)", "N_max (NPS=3)",
              "N_max (NPS=10)", "N_max (NPS=108)");
  for (const double r : {10.0, 20.0, 50.0, 75.0, 150.0}) {
    const int slots = ranging::rpm_slots_paper(phy, r);
    const int safe = ranging::rpm_slots_aliasing_free(phy, r);
    std::printf("%-14.0f %-12d %-18d %-14d %-14d %d\n", r, slots, safe,
                ranging::max_concurrent_responders(slots, 3),
                ranging::max_concurrent_responders(slots, 10),
                ranging::max_concurrent_responders(slots, k::num_pulse_shapes));
  }
  std::printf(
      "\npaper anchors: r_max = 75 m -> N_RPM ~= 4; r_max = 20 m with ~100\n"
      "shapes -> more than 1500 supported responders. (The alias-free column\n"
      "is our round-trip-honest bound; see DESIGN.md.)\n");

  bench::subheading("network-wide messages for all-pairs distances");
  std::printf("%-8s %-16s %-16s %s\n", "N", "SS-TWR N(N-1)", "concurrent N",
              "savings");
  for (const int n : {2, 5, 10, 50, 100, 1500}) {
    std::printf("%-8d %-16lld %-16lld %.0fx\n", n,
                static_cast<long long>(ranging::twr_message_count(n)),
                static_cast<long long>(ranging::concurrent_message_count(n)),
                static_cast<double>(n - 1));
  }

  bench::subheading("one initiator round: energy vs number of neighbours");
  const dw::EnergyModelParams energy;
  std::printf("%-8s %-18s %-18s %-12s %-18s %s\n", "N-1", "TWR init [mJ]",
              "conc. init [mJ]", "saving", "TWR network [mJ]",
              "conc. network [mJ]");
  for (const int n : {1, 3, 9, 19, 49, 99}) {
    const auto twr = ranging::twr_round_cost(n, phy, 290e-6, energy);
    const auto conc = ranging::concurrent_round_cost(n, phy, 290e-6, energy);
    std::printf("%-8d %-18.3f %-18.3f %-12.1f %-18.3f %.3f\n", n,
                twr.initiator_j * 1e3, conc.initiator_j * 1e3,
                twr.initiator_j / conc.initiator_j, twr.network_j * 1e3,
                conc.network_j * 1e3);
  }
  std::printf(
      "\npaper check: with 1499 neighbours the classical scheme needs one\n"
      "TX+RX pair per neighbour while concurrent ranging needs a single\n"
      "transmit and a single receive operation at the initiator.\n");
  report.metric("cir_max_offset_ns", ranging::cir_max_offset_s(phy) * 1e9);
  report.metric("rpm_slots_75m",
                static_cast<double>(ranging::rpm_slots_paper(phy, 75.0)));
  report.metric("nmax_20m_108shapes",
                static_cast<double>(ranging::max_concurrent_responders(
                    ranging::rpm_slots_paper(phy, 20.0),
                    k::num_pulse_shapes)));
  return report.write_if_requested(opts) ? 0 : 1;
}
