// Reproduces paper Table I: percentage of pulse shapes identified correctly.
// Responder 1 fixed at d1 = 3 m with the default shape s1; responder 2 at
// d2 in {6,7,8,9,10} m replying with s2 (0xC8) or s3 (0xE6); 1000 rounds per
// cell in the paper (default here: 300, use --trials to scale).
#include <cstdio>
#include <string>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 300);
  bench::JsonReport report("table1_id_accuracy", opts.trials);
  bench::heading("Table I — pulse shape identification accuracy");
  std::printf("(%d rounds per cell; paper used 1000)\n", opts.trials);

  const double paper_s2[] = {99.9, 99.5, 99.8, 100.0, 99.8};
  const double paper_s3[] = {99.2, 99.7, 99.9, 100.0, 100.0};

  std::printf("\n%-10s", "d2 [m]");
  for (int d2 = 6; d2 <= 10; ++d2) std::printf("%8d", d2);
  std::printf("\n");

  double total_wall_ms = 0.0;
  for (const int shape_id : {1, 2}) {  // shape index 1 = s2 (0xC8), 2 = s3 (0xE6)
    std::printf("%-10s", shape_id == 1 ? "s2 [%]" : "s3 [%]");
    for (int d2 = 6; d2 <= 10; ++d2) {
      const std::uint64_t cell_seed = 1000 +
                                      static_cast<std::uint64_t>(d2) * 10 +
                                      static_cast<std::uint64_t>(shape_id);
      const auto result = bench::run_rounds(
          opts, cell_seed, opts.trials,
          [&](std::uint64_t seed) {
            ranging::ScenarioConfig cfg = bench::hallway_scenario(seed);
            cfg.ranging.shape_registers = {0x93, 0xC8, 0xE6};
            // One slot: responder ID selects the pulse shape directly.
            cfg.responders = {
                {0, bench::hallway_at(3.0)},
                {shape_id, bench::hallway_at(static_cast<double>(d2))}};
            return cfg;
          },
          [&](const ranging::ConcurrentRangingScenario&,
              const ranging::RoundOutcome& out, runner::TrialRecorder& rec) {
            if (!out.payload_decoded || out.estimates.size() < 2) return;
            rec.count("rounds");
            // The farther response is the second in ascending order.
            if (out.estimates[1].shape_index == shape_id) rec.count("correct");
          });
      total_wall_ms += result.wall_ms();
      const auto rounds = result.counter("rounds");
      const double pct =
          rounds > 0 ? 100.0 * static_cast<double>(result.counter("correct")) /
                           static_cast<double>(rounds)
                     : 0.0;
      std::printf("%8.1f", pct);
      std::string cell = "s";
      cell += std::to_string(shape_id + 1);
      cell += "_d";
      cell += std::to_string(d2);
      cell += "_pct";
      report.metric(cell, pct);
    }
    std::printf("   (paper:");
    for (int i = 0; i < 5; ++i)
      std::printf(" %.1f", shape_id == 1 ? paper_s2[i] : paper_s3[i]);
    std::printf(")\n");
  }

  std::printf("(%.1f ms total Monte-Carlo time)\n", total_wall_ms);
  std::printf(
      "\npaper check: identification accuracy stays above ~99%% regardless of\n"
      "the responder distance and of which wide shape is used.\n");
  report.metric("mc_wall_ms", total_wall_ms);
  return report.write_if_requested(opts) ? 0 : 1;
}
