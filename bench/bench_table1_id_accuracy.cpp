// Reproduces paper Table I: percentage of pulse shapes identified correctly.
// Responder 1 fixed at d1 = 3 m with the default shape s1; responder 2 at
// d2 in {6,7,8,9,10} m replying with s2 (0xC8) or s3 (0xE6); 1000 rounds per
// cell in the paper (default here: 300, use --trials to scale).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace uwb;
  const int trials = bench::trials_arg(argc, argv, 300);
  bench::heading("Table I — pulse shape identification accuracy");
  std::printf("(%d rounds per cell; paper used 1000)\n", trials);

  const double paper_s2[] = {99.9, 99.5, 99.8, 100.0, 99.8};
  const double paper_s3[] = {99.2, 99.7, 99.9, 100.0, 100.0};

  std::printf("\n%-10s", "d2 [m]");
  for (int d2 = 6; d2 <= 10; ++d2) std::printf("%8d", d2);
  std::printf("\n");

  for (const int shape_id : {1, 2}) {  // shape index 1 = s2 (0xC8), 2 = s3 (0xE6)
    std::printf("%-10s", shape_id == 1 ? "s2 [%]" : "s3 [%]");
    std::vector<double> measured;
    for (int d2 = 6; d2 <= 10; ++d2) {
      ranging::ScenarioConfig cfg =
          bench::hallway_scenario(1000 + static_cast<std::uint64_t>(d2) * 10 +
                                  static_cast<std::uint64_t>(shape_id));
      cfg.ranging.shape_registers = {0x93, 0xC8, 0xE6};
      // One slot: responder ID selects the pulse shape directly.
      cfg.responders = {{0, bench::hallway_at(3.0)},
                        {shape_id, bench::hallway_at(static_cast<double>(d2))}};
      ranging::ConcurrentRangingScenario scenario(cfg);

      int correct = 0, rounds = 0;
      for (int t = 0; t < trials; ++t) {
        const auto out = scenario.run_round();
        if (!out.payload_decoded || out.estimates.size() < 2) continue;
        ++rounds;
        // The farther response is the second in ascending order.
        if (out.estimates[1].shape_index == shape_id) ++correct;
      }
      const double pct = rounds > 0 ? 100.0 * correct / rounds : 0.0;
      measured.push_back(pct);
      std::printf("%8.1f", pct);
    }
    std::printf("   (paper:");
    for (int i = 0; i < 5; ++i)
      std::printf(" %.1f", shape_id == 1 ? paper_s2[i] : paper_s3[i]);
    std::printf(")\n");
  }

  std::printf(
      "\npaper check: identification accuracy stays above ~99%% regardless of\n"
      "the responder distance and of which wide shape is used.\n");
  return 0;
}
