// Shared helpers for the experiment harnesses: argument handling, table
// printing, ASCII series plotting, and canonical scenario builders.
//
// Every bench binary regenerates one table or figure of the paper. Binaries
// accept `--trials N` to scale the Monte-Carlo count (defaults keep the full
// suite to a couple of minutes; paper-scale counts are noted per bench).
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ranging/session.hpp"

namespace uwb::bench {

/// Parse `--trials N` (or use the bench's default).
inline int trials_arg(int argc, char** argv, int default_trials) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0) {
      const int n = std::atoi(argv[i + 1]);
      if (n > 0) return n;
    }
  }
  return default_trials;
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void subheading(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Print a horizontal ASCII profile of a magnitude series: one row per
/// (downsampled) point with a proportional bar, for eyeballing CIR shapes in
/// a terminal.
inline void ascii_profile(const std::vector<double>& xs,
                          const std::vector<double>& ys,
                          const char* x_label, int max_rows = 40,
                          int bar_width = 60) {
  const std::size_t n = ys.size();
  if (n == 0) return;
  const double peak = *std::max_element(ys.begin(), ys.end());
  const std::size_t stride = std::max<std::size_t>(1, n / static_cast<std::size_t>(max_rows));
  for (std::size_t i = 0; i < n; i += stride) {
    const int bar =
        peak > 0 ? static_cast<int>(ys[i] / peak * bar_width + 0.5) : 0;
    std::printf("%10.2f %-8s |%s\n", xs[i], x_label,
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
}

/// Hallway scenario matching the paper's measurement environment: a 2.4 m
/// corridor. Nodes sit slightly off the centre line so the two side-wall
/// reflections have distinct path lengths (perfectly centred nodes would
/// make them coincide and coherently sum). The 15 dB effective reflection
/// loss accounts for the 2-D image-source model concentrating specular
/// energy that in reality spreads in elevation and over antenna patterns
/// (EXPERIMENTS.md discusses this calibration).
inline ranging::ScenarioConfig hallway_scenario(std::uint64_t seed) {
  ranging::ScenarioConfig cfg;
  cfg.room = geom::Room::hallway(40.0, 2.4, /*reflection_loss_db=*/15.0);
  cfg.initiator_position = {2.0, 1.0};
  cfg.seed = seed;
  return cfg;
}

/// Place a responder along the hallway `distance_m` from the initiator of
/// hallway_scenario().
inline geom::Vec2 hallway_at(double distance_m) {
  return {2.0 + distance_m, 1.0};
}

/// Office scenario (rectangular room) for the localisation/NLOS studies.
inline ranging::ScenarioConfig office_scenario(std::uint64_t seed) {
  ranging::ScenarioConfig cfg;
  cfg.room = geom::Room::rectangular(12.0, 8.0, 10.0);
  cfg.initiator_position = {2.0, 4.0};
  cfg.seed = seed;
  return cfg;
}

}  // namespace uwb::bench
