// Shared helpers for the experiment harnesses: argument handling, table
// printing, ASCII series plotting, canonical scenario builders, Monte-Carlo
// glue, and machine-readable JSON reports.
//
// Every bench binary regenerates one table or figure of the paper. Binaries
// accept:
//   --trials N    scale the Monte-Carlo count (defaults keep the full suite
//                 to a couple of minutes; paper-scale counts noted per bench)
//   --threads N   Monte-Carlo worker threads (0/default = all hardware
//                 threads; results are bit-identical for any value)
//   --json PATH   additionally emit a JSON record of the run's parameters
//                 and metrics (the perf trajectory CI archives as
//                 BENCH_*.json — see DESIGN.md for the schema)
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "dsp/fft.hpp"
#include "dw1000/pulse.hpp"
#include "ranging/search_subtract.hpp"
#include "ranging/session.hpp"
#include "runner/monte_carlo.hpp"

namespace uwb::bench {

/// Command-line options shared by every bench binary.
struct BenchOptions {
  int trials = 0;
  int threads = 0;        // 0 = hardware concurrency
  std::string json_path;  // empty = no JSON output
};

/// Parse `--trials N`, `--threads N`, and `--json PATH`.
inline BenchOptions parse_options(int argc, char** argv, int default_trials) {
  BenchOptions opts;
  opts.trials = default_trials;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n > 0) opts.trials = n;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n > 0) opts.threads = n;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opts.json_path = argv[++i];
    }
  }
  return opts;
}

/// Monte-Carlo engine configured from the command line.
inline runner::MonteCarlo monte_carlo(const BenchOptions& opts,
                                      std::uint64_t base_seed) {
  runner::MonteCarlo::Config cfg;
  cfg.threads = opts.threads;
  cfg.base_seed = base_seed;
  return runner::MonteCarlo(cfg);
}

/// Machine-readable record of one bench run:
///   {"bench": ..., "params": {...}, "metrics": {...},
///    "wall_ms": ..., "trials": ...}
/// Params describe the configuration (inputs), metrics the results
/// (outputs). Insertion order is preserved so records diff cleanly.
class JsonReport {
 public:
  JsonReport(std::string bench_name, int trials)
      : bench_(std::move(bench_name)), trials_(trials),
        start_(std::chrono::steady_clock::now()) {}

  void param(const std::string& name, double value) {
    params_.emplace_back(name, number(value));
  }
  void param(const std::string& name, const std::string& value) {
    params_.emplace_back(name, quote(value));
  }
  void metric(const std::string& name, double value) {
    metrics_.emplace_back(name, number(value));
  }

  /// Write the record to opts.json_path (no-op when --json was not given).
  /// Returns false on I/O failure.
  bool write_if_requested(const BenchOptions& opts) const {
    if (opts.json_path.empty()) return true;
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    std::FILE* f = std::fopen(opts.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": %s,\n", quote(bench_).c_str());
    write_object(f, "params", params_);
    std::vector<Field> metrics = metrics_;
    append_cache_metrics(metrics);
    write_object(f, "metrics", metrics);
    std::fprintf(f, "  \"wall_ms\": %s,\n  \"trials\": %d\n}\n",
                 number(wall_ms).c_str(), trials_);
    const bool ok = std::fclose(f) == 0;
    if (ok) std::printf("\n[json written to %s]\n", opts.json_path.c_str());
    return ok;
  }

  /// Record the standard summary of one Monte-Carlo metric.
  void summarize(const runner::TrialResult& result,
                 const std::string& metric_name) {
    const auto s = result.summary(metric_name);
    metric(metric_name + "_mean", s.mean);
    metric(metric_name + "_stddev", s.stddev);
    metric(metric_name + "_p50", s.p50);
    metric(metric_name + "_p90", s.p90);
    metric(metric_name + "_count", static_cast<double>(s.count));
  }

 private:
  using Field = std::pair<std::string, std::string>;

  // Process-wide memo-cache counters (pulse templates, detector template
  // banks, FFT plans), aggregated over every worker thread. Prefixed
  // `cache_` — values depend on thread count and scheduling, so the CI
  // determinism check skips the prefix, like `mc_`.
  static void append_cache_metrics(std::vector<Field>& metrics) {
    const auto add = [&metrics](const char* name, std::size_t hits,
                                std::size_t misses) {
      metrics.emplace_back(std::string("cache_") + name + "_hits",
                           number(static_cast<double>(hits)));
      metrics.emplace_back(std::string("cache_") + name + "_misses",
                           number(static_cast<double>(misses)));
      const std::size_t lookups = hits + misses;
      metrics.emplace_back(
          std::string("cache_") + name + "_hit_rate",
          number(lookups ? static_cast<double>(hits) /
                               static_cast<double>(lookups)
                         : 0.0));
    };
    const auto pulse = dw::pulse_cache_stats_total();
    add("pulse", pulse.hits, pulse.misses);
    const auto bank = ranging::SearchSubtractDetector::bank_cache_stats_total();
    add("bank", bank.hits, bank.misses);
    const auto plan = dsp::fft_plan_cache_stats_total();
    add("fft_plan", plan.hits, plan.misses);
  }

  static std::string number(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out.push_back(c);
      }
    }
    out.push_back('"');
    return out;
  }

  static void write_object(std::FILE* f, const char* key,
                           const std::vector<Field>& fields) {
    std::fprintf(f, "  \"%s\": {", key);
    for (std::size_t i = 0; i < fields.size(); ++i)
      std::fprintf(f, "%s\n    %s: %s", i ? "," : "",
                   quote(fields[i].first).c_str(), fields[i].second.c_str());
    std::fprintf(f, "%s},\n", fields.empty() ? "" : "\n  ");
  }

  std::string bench_;
  int trials_;
  std::chrono::steady_clock::time_point start_;
  std::vector<Field> params_;
  std::vector<Field> metrics_;
};

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void subheading(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Print a horizontal ASCII profile of a magnitude series: one row per
/// (downsampled) point with a proportional bar, for eyeballing CIR shapes in
/// a terminal.
inline void ascii_profile(const std::vector<double>& xs,
                          const std::vector<double>& ys,
                          const char* x_label, int max_rows = 40,
                          int bar_width = 60) {
  const std::size_t n = ys.size();
  if (n == 0) return;
  const double peak = *std::max_element(ys.begin(), ys.end());
  const std::size_t stride = std::max<std::size_t>(1, n / static_cast<std::size_t>(max_rows));
  for (std::size_t i = 0; i < n; i += stride) {
    const int bar =
        peak > 0 ? static_cast<int>(ys[i] / peak * bar_width + 0.5) : 0;
    std::printf("%10.2f %-8s |%s\n", xs[i], x_label,
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
}

/// Hallway scenario matching the paper's measurement environment: a 2.4 m
/// corridor. Nodes sit slightly off the centre line so the two side-wall
/// reflections have distinct path lengths (perfectly centred nodes would
/// make them coincide and coherently sum). The 15 dB effective reflection
/// loss accounts for the 2-D image-source model concentrating specular
/// energy that in reality spreads in elevation and over antenna patterns
/// (EXPERIMENTS.md discusses this calibration).
inline ranging::ScenarioConfig hallway_scenario(std::uint64_t seed) {
  ranging::ScenarioConfig cfg;
  cfg.room = geom::Room::hallway(40.0, 2.4, /*reflection_loss_db=*/15.0);
  cfg.initiator_position = {2.0, 1.0};
  cfg.seed = seed;
  return cfg;
}

/// Place a responder along the hallway `distance_m` from the initiator of
/// hallway_scenario().
inline geom::Vec2 hallway_at(double distance_m) {
  return {2.0 + distance_m, 1.0};
}

/// Office scenario (rectangular room) for the localisation/NLOS studies.
inline ranging::ScenarioConfig office_scenario(std::uint64_t seed) {
  ranging::ScenarioConfig cfg;
  cfg.room = geom::Room::rectangular(12.0, 8.0, 10.0);
  cfg.initiator_position = {2.0, 4.0};
  cfg.seed = seed;
  return cfg;
}

/// Run `trials` independent concurrent-ranging rounds on the Monte-Carlo
/// engine. Each trial builds its own scenario seeded by
/// derive_seed(base_seed, trial) and runs exactly one round, so results are
/// bit-identical for any --threads value. `make_cfg(seed)` returns the
/// ScenarioConfig; `record(scenario, outcome, recorder)` scores the round.
template <typename MakeCfg, typename Record>
runner::TrialResult run_rounds(const BenchOptions& opts,
                               std::uint64_t base_seed, int trials,
                               MakeCfg&& make_cfg, Record&& record) {
  return monte_carlo(opts, base_seed)
      .run(trials, [&](const runner::TrialContext& ctx,
                       runner::TrialRecorder& rec) {
        ranging::ScenarioConfig cfg = make_cfg(ctx.seed);
        cfg.seed = ctx.seed;
        ranging::ConcurrentRangingScenario scenario(cfg);
        const ranging::RoundOutcome out = scenario.run_round();
        record(scenario, out, rec);
      });
}

}  // namespace uwb::bench
