// Shared helpers for the experiment harnesses: argument handling, table
// printing, ASCII series plotting, canonical scenario builders, Monte-Carlo
// glue, and machine-readable JSON reports.
//
// Every bench binary regenerates one table or figure of the paper. Binaries
// accept:
//   --trials N    scale the Monte-Carlo count (defaults keep the full suite
//                 to a couple of minutes; paper-scale counts noted per bench)
//   --threads N   Monte-Carlo worker threads (0/default = all hardware
//                 threads; results are bit-identical for any value)
//   --json PATH   additionally emit a JSON record of the run's parameters
//                 and metrics (the perf trajectory CI archives as
//                 BENCH_*.json — see DESIGN.md for the schema)
//   --trace PATH  enable span tracing and write a Chrome trace_event JSON
//                 (open in chrome://tracing or ui.perfetto.dev)
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "ranging/session.hpp"
#include "runner/monte_carlo.hpp"
#include "simd/simd.hpp"

namespace uwb::bench {

/// Command-line options shared by every bench binary.
struct BenchOptions {
  int trials = 0;
  int threads = 0;          // 0 = hardware concurrency
  std::string json_path;    // empty = no JSON output
  std::string trace_path;   // empty = tracing off
  std::string metrics_path; // empty = no Prometheus metrics file
  std::string flight_record_path;  // empty = flight recorder off
};

/// Parse `--trials N`, `--threads N`, `--json PATH`, `--trace PATH` (turns
/// on span tracing process-wide), `--metrics PATH` (Prometheus text dump of
/// the merged metrics snapshot), and `--flight-record PATH` (turns on the
/// flight recorder process-wide; JSONL written by write_if_requested).
inline BenchOptions parse_options(int argc, char** argv, int default_trials) {
  BenchOptions opts;
  opts.trials = default_trials;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n > 0) opts.trials = n;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n > 0) opts.threads = n;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opts.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      opts.trace_path = argv[++i];
      obs::set_tracing_enabled(true);
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      opts.metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--flight-record") == 0 && i + 1 < argc) {
      opts.flight_record_path = argv[++i];
      obs::FlightRecorder::set_enabled(true);
    }
  }
  return opts;
}

/// Monte-Carlo engine configured from the command line.
inline runner::MonteCarlo monte_carlo(const BenchOptions& opts,
                                      std::uint64_t base_seed) {
  runner::MonteCarlo::Config cfg;
  cfg.threads = opts.threads;
  cfg.base_seed = base_seed;
  return runner::MonteCarlo(cfg);
}

/// Machine-readable record of one bench run:
///   {"bench": ..., "params": {...}, "metrics": {...},
///    "wall_ms": ..., "trials": ...}
/// Params describe the configuration (inputs), metrics the results
/// (outputs). Insertion order is preserved so records diff cleanly.
class JsonReport {
 public:
  JsonReport(std::string bench_name, int trials)
      : bench_(std::move(bench_name)), trials_(trials),
        start_(std::chrono::steady_clock::now()) {
    // Every record carries the SIMD dispatch level it ran at, so perf
    // trajectories (and the forced-level CI legs) are attributable.
    param("simd_level", simd::level_name(simd::active_level()));
  }

  void param(const std::string& name, double value) {
    params_.emplace_back(name, number(value));
  }
  void param(const std::string& name, const std::string& value) {
    params_.emplace_back(name, quote(value));
  }
  void metric(const std::string& name, double value) {
    metrics_.emplace_back(name, number(value));
  }

  /// Write the JSON record to opts.json_path and/or the Chrome trace to
  /// opts.trace_path (each a no-op when its flag was not given). Returns
  /// false on any I/O failure.
  bool write_if_requested(const BenchOptions& opts) const {
    bool ok = true;
    if (!opts.json_path.empty()) {
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - start_)
                                 .count();
      std::FILE* f = std::fopen(opts.json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
        return false;
      }
      std::fprintf(f, "{\n  \"bench\": %s,\n", quote(bench_).c_str());
      write_object(f, "params", params_);
      std::vector<Field> metrics = metrics_;
      append_obs_metrics(metrics);
      write_object(f, "metrics", metrics);
      std::fprintf(f, "  \"wall_ms\": %s,\n  \"trials\": %d\n}\n",
                   number(wall_ms).c_str(), trials_);
      ok = std::fclose(f) == 0;
      if (ok) std::printf("\n[json written to %s]\n", opts.json_path.c_str());
    }
    if (!opts.trace_path.empty()) {
      if (obs::write_chrome_trace(opts.trace_path)) {
        std::printf("[trace written to %s]\n", opts.trace_path.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", opts.trace_path.c_str());
        ok = false;
      }
    }
    if (!opts.metrics_path.empty()) {
      const std::string text =
          obs::MetricsRegistry::instance().aggregate().to_prometheus();
      std::FILE* f = std::fopen(opts.metrics_path.c_str(), "w");
      bool wrote = false;
      if (f != nullptr) {
        wrote = std::fwrite(text.data(), 1, text.size(), f) == text.size();
        wrote = std::fclose(f) == 0 && wrote;
      }
      if (wrote) {
        std::printf("[metrics written to %s]\n", opts.metrics_path.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", opts.metrics_path.c_str());
        ok = false;
      }
    }
    if (!opts.flight_record_path.empty()) {
      if (obs::FlightRecorder::instance().write_jsonl(
              opts.flight_record_path)) {
        std::printf("[flight recording written to %s]\n",
                    opts.flight_record_path.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n",
                     opts.flight_record_path.c_str());
        ok = false;
      }
    }
    return ok;
  }

  /// Record the standard summary of one Monte-Carlo metric.
  void summarize(const runner::TrialResult& result,
                 const std::string& metric_name) {
    const auto s = result.summary(metric_name);
    metric(metric_name + "_mean", s.mean);
    metric(metric_name + "_stddev", s.stddev);
    metric(metric_name + "_p50", s.p50);
    metric(metric_name + "_p90", s.p90);
    metric(metric_name + "_count", static_cast<double>(s.count));
  }

  /// Record the Monte-Carlo engine bookkeeping of a run (wall time and
  /// thread count — `mc_` prefixed, skipped by the determinism diff).
  void runner_metrics(const runner::TrialResult& result) {
    metric("mc_wall_ms", result.wall_ms());
    metric("mc_threads", static_cast<double>(result.threads_used()));
  }

 private:
  using Field = std::pair<std::string, std::string>;

  // Observability snapshot of the whole run, merged over every worker
  // shard (obs::MetricsRegistry). Cache hit/miss counters keep their PR 2
  // `cache_*` keys; everything else is prefixed `obs_`. Both prefixes are
  // scheduling/thread-count dependent (wall-clock or per-thread memo
  // traffic), so the CI determinism check skips them, like `mc_`.
  static void append_obs_metrics(std::vector<Field>& metrics) {
    const obs::Snapshot snap = obs::MetricsRegistry::instance().aggregate();

    // Memo-cache counters (pulse templates, detector template banks, FFT
    // plans). Emitted explicitly so the key set stays stable even when a
    // counter never fired (or instrumentation is compiled out).
    const auto add_cache = [&metrics, &snap](const char* name) {
      const double hits = static_cast<double>(
          snap.counter(std::string("cache_") + name + "_hits"));
      const double misses = static_cast<double>(
          snap.counter(std::string("cache_") + name + "_misses"));
      metrics.emplace_back(std::string("cache_") + name + "_hits",
                           number(hits));
      metrics.emplace_back(std::string("cache_") + name + "_misses",
                           number(misses));
      const double lookups = hits + misses;
      metrics.emplace_back(std::string("cache_") + name + "_hit_rate",
                           number(lookups > 0.0 ? hits / lookups : 0.0));
    };
    add_cache("pulse");
    add_cache("bank");
    add_cache("fft_plan");

    // Remaining counters and all gauges, under the obs_ prefix.
    for (const auto& [name, value] : snap.counters)
      if (name.rfind("cache_", 0) != 0)
        metrics.emplace_back("obs_" + name,
                             number(static_cast<double>(value)));
    for (const auto& [name, value] : snap.gauges)
      metrics.emplace_back("obs_" + name, number(value));

    // Per-stage span totals (the nested pipeline timings).
    for (const auto& span : snap.spans) {
      metrics.emplace_back("obs_span_" + span.name + "_count",
                           number(static_cast<double>(span.count)));
      metrics.emplace_back("obs_span_" + span.name + "_total_ms",
                           number(span.total_ms));
    }

    // Per-trial latency percentiles from the runner's merged histogram.
    if (const obs::Histogram* h = snap.histogram("trial_latency_ms")) {
      metrics.emplace_back("obs_trial_latency_count",
                           number(static_cast<double>(h->count())));
      metrics.emplace_back("obs_trial_latency_p50_ms",
                           number(h->quantile(0.50)));
      metrics.emplace_back("obs_trial_latency_p90_ms",
                           number(h->quantile(0.90)));
      metrics.emplace_back("obs_trial_latency_p99_ms",
                           number(h->quantile(0.99)));
      metrics.emplace_back("obs_trial_latency_max_ms", number(h->max()));
      metrics.emplace_back("obs_trial_latency_mean_ms", number(h->mean()));
    }

    // Per-frame delivery fan-out from the spatially-sharded medium.
    if (const obs::Histogram* h = snap.histogram("medium_frame_fanout")) {
      metrics.emplace_back("obs_medium_fanout_count",
                           number(static_cast<double>(h->count())));
      metrics.emplace_back("obs_medium_fanout_p50", number(h->quantile(0.50)));
      metrics.emplace_back("obs_medium_fanout_p90", number(h->quantile(0.90)));
      metrics.emplace_back("obs_medium_fanout_max", number(h->max()));
      metrics.emplace_back("obs_medium_fanout_mean", number(h->mean()));
    }
  }

  static std::string number(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out.push_back(c);
      }
    }
    out.push_back('"');
    return out;
  }

  static void write_object(std::FILE* f, const char* key,
                           const std::vector<Field>& fields) {
    std::fprintf(f, "  \"%s\": {", key);
    for (std::size_t i = 0; i < fields.size(); ++i)
      std::fprintf(f, "%s\n    %s: %s", i ? "," : "",
                   quote(fields[i].first).c_str(), fields[i].second.c_str());
    std::fprintf(f, "%s},\n", fields.empty() ? "" : "\n  ");
  }

  std::string bench_;
  int trials_;
  std::chrono::steady_clock::time_point start_;
  std::vector<Field> params_;
  std::vector<Field> metrics_;
};

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void subheading(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Print a horizontal ASCII profile of a magnitude series: one row per
/// (downsampled) point with a proportional bar, for eyeballing CIR shapes in
/// a terminal.
inline void ascii_profile(const std::vector<double>& xs,
                          const std::vector<double>& ys,
                          const char* x_label, int max_rows = 40,
                          int bar_width = 60) {
  const std::size_t n = ys.size();
  if (n == 0) return;
  const double peak = *std::max_element(ys.begin(), ys.end());
  const std::size_t stride = std::max<std::size_t>(1, n / static_cast<std::size_t>(max_rows));
  for (std::size_t i = 0; i < n; i += stride) {
    const int bar =
        peak > 0 ? static_cast<int>(ys[i] / peak * bar_width + 0.5) : 0;
    std::printf("%10.2f %-8s |%s\n", xs[i], x_label,
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
}

/// Hallway scenario matching the paper's measurement environment: a 2.4 m
/// corridor. Nodes sit slightly off the centre line so the two side-wall
/// reflections have distinct path lengths (perfectly centred nodes would
/// make them coincide and coherently sum). The 15 dB effective reflection
/// loss accounts for the 2-D image-source model concentrating specular
/// energy that in reality spreads in elevation and over antenna patterns
/// (EXPERIMENTS.md discusses this calibration).
inline ranging::ScenarioConfig hallway_scenario(std::uint64_t seed) {
  ranging::ScenarioConfig cfg;
  cfg.room = geom::Room::hallway(40.0, 2.4, /*reflection_loss_db=*/15.0);
  cfg.initiator_position = {2.0, 1.0};
  cfg.seed = seed;
  return cfg;
}

/// Place a responder along the hallway `distance_m` from the initiator of
/// hallway_scenario().
inline geom::Vec2 hallway_at(double distance_m) {
  return {2.0 + distance_m, 1.0};
}

/// Office scenario (rectangular room) for the localisation/NLOS studies.
inline ranging::ScenarioConfig office_scenario(std::uint64_t seed) {
  ranging::ScenarioConfig cfg;
  cfg.room = geom::Room::rectangular(12.0, 8.0, 10.0);
  cfg.initiator_position = {2.0, 4.0};
  cfg.seed = seed;
  return cfg;
}

/// Run `trials` independent concurrent-ranging rounds on the Monte-Carlo
/// engine. Each trial builds its own scenario seeded by
/// derive_seed(base_seed, trial) and runs exactly one round, so results are
/// bit-identical for any --threads value. `make_cfg(seed)` returns the
/// ScenarioConfig; `record(scenario, outcome, recorder)` scores the round.
template <typename MakeCfg, typename Record>
runner::TrialResult run_rounds(const BenchOptions& opts,
                               std::uint64_t base_seed, int trials,
                               MakeCfg&& make_cfg, Record&& record) {
  return monte_carlo(opts, base_seed)
      .run(trials, [&](const runner::TrialContext& ctx,
                       runner::TrialRecorder& rec) {
        ranging::ScenarioConfig cfg = make_cfg(ctx.seed);
        cfg.seed = ctx.seed;
        ranging::ConcurrentRangingScenario scenario(cfg);
        const ranging::RoundOutcome out = scenario.run_round();
        record(scenario, out, rec);
      });
}

}  // namespace uwb::bench
