// Reproduces paper Fig. 3 / Sect. III: the SS-TWR vs concurrent-ranging
// message budget, the PHY frame-duration breakdown, and the response-delay
// budget (178.5 us minimum, 290 us chosen).
#include <cstdio>

#include "bench_util.hpp"
#include "dw1000/frame.hpp"
#include "dw1000/phy_config.hpp"
#include "ranging/capacity.hpp"

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 1);
  bench::JsonReport report("fig3_timing", opts.trials);
  bench::heading("Fig. 3 / Sect. III — frame timing and message counts");

  dw::PhyConfig phy;  // DR 6.8 Mbps, PRF 64 MHz, PSR 128 (paper config)
  dw::MacFrame init;
  init.type = dw::FrameType::Init;
  dw::MacFrame resp;
  resp.type = dw::FrameType::Resp;

  bench::subheading("UWB PHY frame structure durations (DR=6.8M, PRF=64, PSR=128)");
  std::printf("preamble          : %8.2f us (%d symbols)\n",
              phy.preamble_symbols * phy.preamble_symbol_s() * 1e6,
              phy.preamble_symbols);
  std::printf("SFD               : %8.2f us (%d symbols)\n",
              phy.sfd_symbols() * phy.preamble_symbol_s() * 1e6,
              phy.sfd_symbols());
  std::printf("PHR               : %8.2f us\n", phy.phr_duration_s() * 1e6);
  std::printf("INIT payload (%2dB): %8.2f us\n", init.payload_bytes(),
              phy.payload_duration_s(init.payload_bytes()) * 1e6);
  std::printf("RESP payload (%2dB): %8.2f us\n", resp.payload_bytes(),
              phy.payload_duration_s(resp.payload_bytes()) * 1e6);
  std::printf("INIT frame total  : %8.2f us\n",
              phy.frame_duration_s(init.payload_bytes()) * 1e6);
  std::printf("RESP frame total  : %8.2f us\n",
              phy.frame_duration_s(resp.payload_bytes()) * 1e6);

  bench::subheading("response delay budget");
  const double min_delay = dw::min_response_delay_s(phy, init.payload_bytes());
  std::printf("minimum Delta_RESP (PHR+payload of INIT + preamble+SFD of RESP)\n");
  std::printf("  computed : %.1f us   (paper: 178.5 us)\n", min_delay * 1e6);
  std::printf("  + RX/TX turnaround < 100 us, + safety gap\n");
  std::printf("  chosen   : 290.0 us  (paper Sect. III)\n");

  bench::subheading("messages to range between all N nodes (paper: N(N-1) vs N)");
  std::printf("%-6s %-16s %-16s %s\n", "N", "SS-TWR msgs", "concurrent msgs",
              "reduction");
  for (int n : {2, 3, 5, 10, 20, 30, 40, 50}) {
    const auto twr = ranging::twr_message_count(n);
    const auto conc = ranging::concurrent_message_count(n);
    std::printf("%-6d %-16lld %-16lld %.1fx\n", n,
                static_cast<long long>(twr), static_cast<long long>(conc),
                static_cast<double>(twr) / static_cast<double>(conc));
  }

  bench::subheading("initiator radio operations for one round (N-1 neighbours)");
  dw::EnergyModelParams energy;
  std::printf("%-6s %-14s %-14s %-18s %s\n", "N-1", "TWR ops", "conc. ops",
              "TWR init [mJ]", "conc. init [mJ]");
  for (int n : {1, 2, 4, 9, 19, 49}) {
    const auto twr = ranging::twr_round_cost(n, phy, 290e-6, energy);
    const auto conc = ranging::concurrent_round_cost(n, phy, 290e-6, energy);
    std::printf("%-6d %-14d %-14d %-18.3f %.3f\n", n, twr.initiator_messages,
                conc.initiator_messages, twr.initiator_j * 1e3,
                conc.initiator_j * 1e3);
  }
  report.metric("min_response_delay_us", min_delay * 1e6);
  report.metric("init_frame_us",
                phy.frame_duration_s(init.payload_bytes()) * 1e6);
  report.metric("resp_frame_us",
                phy.frame_duration_s(resp.payload_bytes()) * 1e6);
  report.metric("twr_msgs_n50",
                static_cast<double>(ranging::twr_message_count(50)));
  report.metric("concurrent_msgs_n50",
                static_cast<double>(ranging::concurrent_message_count(50)));
  std::printf(
      "\npaper check: the initiator sends/receives exactly one frame pair in\n"
      "the concurrent scheme regardless of N, and the minimum response delay\n"
      "reproduces the 178.5 us figure.\n");
  return report.write_if_requested(opts) ? 0 : 1;
}
