// Ablation A2: amplitude-independent detection (rank-based search &
// subtract, paper Sect. IV) vs the Friis power-boundary filtering suggested
// by prior work — in exactly the situation the paper's open challenge IV
// describes: an attenuated direct path makes a responder's response weaker
// than Friis predicts, while another responder's wall reflection is
// Friis-plausible at its apparent distance.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/constants.hpp"
#include "common/units.hpp"

namespace {

using namespace uwb;

// Friis power-boundary acceptance: calibrate the amplitude-vs-distance law
// on the decoded responder's peak, then accept a detection only if its
// amplitude is within `window_db` of the free-space prediction for its
// estimated distance (amplitude ~ 1/d in free space).
bool friis_accepts(double amplitude, double distance_m, double ref_amp,
                   double ref_dist_m, double window_db) {
  const double predicted = ref_amp * ref_dist_m / distance_m;
  return std::abs(linear_to_db((amplitude * amplitude) /
                               (predicted * predicted))) < window_db;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 300);
  bench::JsonReport report("ablation_amplitude", opts.trials);
  bench::heading(
      "Ablation — rank-based detection vs Friis power boundaries (challenge IV)");
  std::printf("(%d rounds)\n", opts.trials);

  // Responder 1 at 3 m, clear. Responder 2 at 8 m behind an obstacle that
  // attenuates its direct path by 9 dB — still the strongest copy of its
  // response, but far below what free-space propagation would predict.
  const double d2_true = 8.0;
  const auto result = bench::run_rounds(
      opts, 902, opts.trials,
      [](std::uint64_t seed) {
        ranging::ScenarioConfig cfg = bench::office_scenario(seed);
        cfg.room = geom::Room::rectangular(14.0, 8.0, 12.0);
        cfg.room.add_obstacle({{{7.0, 3.2}, {7.0, 4.8}}, 9.0, "blocked LOS"});
        cfg.initiator_position = {2.0, 4.0};
        cfg.responders = {{0, {5.0, 4.0}}, {1, {10.0, 4.0}}};
        // Extract a couple of extra peaks: the attenuated response may rank
        // below strong MPCs; the question is which *acceptance rule* keeps
        // the right peaks.
        cfg.detect_max_responses = 4;
        return cfg;
      },
      [d2_true](const ranging::ConcurrentRangingScenario&,
                const ranging::RoundOutcome& out, runner::TrialRecorder& rec) {
        if (!out.payload_decoded || out.estimates.empty()) return;
        rec.count("rounds");
        const auto& sync = out.estimates.front();
        for (std::size_t i = 1; i < out.estimates.size(); ++i) {
          const auto& est = out.estimates[i];
          const bool is_resp2 = std::abs(est.distance_m - d2_true) < 0.8;
          const bool accepted_friis =
              friis_accepts(est.amplitude, est.distance_m, sync.amplitude,
                            out.d_twr_m, 6.0);
          if (is_resp2) {
            rec.count("rank_ok");  // rank-based: every extraction is accepted
            if (accepted_friis) rec.count("friis_ok");
          } else if (accepted_friis) {
            rec.count("friis_false_accept");  // MPC mistaken for a response
          }
        }
      });

  const auto rounds = result.counter("rounds");
  const double denom = rounds ? static_cast<double>(rounds) : 1.0;
  const double rank_pct = 100.0 * static_cast<double>(result.counter("rank_ok")) / denom;
  const double friis_pct = 100.0 * static_cast<double>(result.counter("friis_ok")) / denom;
  const double false_per_round =
      static_cast<double>(result.counter("friis_false_accept")) / denom;

  std::printf("\ncompleted rounds: %lld\n", static_cast<long long>(rounds));
  std::printf("%-46s %6.1f %%\n",
              "responder 2 found, rank-based (search&subtract)",
              rounds ? rank_pct : 0.0);
  std::printf("%-46s %6.1f %%\n",
              "responder 2 surviving Friis power boundary",
              rounds ? friis_pct : 0.0);
  std::printf("%-46s %6.2f per round\n",
              "MPCs falsely accepted by the Friis boundary",
              rounds ? false_per_round : 0.0);

  report.metric("rank_found_pct", rounds ? rank_pct : 0.0);
  report.metric("friis_found_pct", rounds ? friis_pct : 0.0);
  report.metric("friis_false_per_round", rounds ? false_per_round : 0.0);

  std::printf(
      "\npaper check (challenge IV): power boundaries reject the attenuated\n"
      "responder (its response sits far below the free-space prediction)\n"
      "while the rank-based detector keeps it — amplitude-independent\n"
      "detection is necessary in obstructed environments.\n");
  return report.write_if_requested(opts) ? 0 : 1;
}
