// Reproduces paper Fig. 1: multipath reflections in a rectangular room
// (Fig. 1a floor plan) and the theoretically received pulses at 900 MHz vs
// 50 MHz bandwidth (Fig. 1b).
//
// Expected shape: at 900 MHz the LOS and the four first-order reflections
// appear as distinct resolvable pulses; at 50 MHz they merge into one
// overlapping blob (the narrowband multipath-fading regime).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/constants.hpp"
#include "channel/path_loss.hpp"
#include "geom/image_source.hpp"

namespace {

using namespace uwb;

// Theoretical band-limited pulse: Gaussian with sigma ~ 1/bandwidth,
// calibrated so 900 MHz matches the DW1000 channel-7 pulse width.
double pulse(double t_s, double bandwidth_hz) {
  const double sigma = 0.75e-9 * (900e6 / bandwidth_hz);
  const double z = t_s / sigma;
  return std::exp(-0.5 * z * z);
}

int count_resolvable_peaks(const std::vector<double>& y) {
  int peaks = 0;
  for (std::size_t i = 1; i + 1 < y.size(); ++i)
    if (y[i] > y[i - 1] && y[i] >= y[i + 1] && y[i] > 0.05) ++peaks;
  return peaks;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 1);
  bench::JsonReport report("fig1_bandwidth", opts.trials);
  bench::heading("Fig. 1 — multipath reflections vs bandwidth");

  // Fig. 1a: rectangular floor plan, TX lower-left area, RX right.
  // Asymmetric TX/RX placement so all four first-order reflections have
  // distinct path lengths, as in the paper's floor plan.
  const geom::Room room = geom::Room::rectangular(10.0, 6.0, 5.0);
  const geom::Vec2 tx{2.0, 1.2}, rx{7.5, 4.2};
  const auto paths = geom::compute_paths(room, tx, rx, 1);

  bench::subheading("propagation paths (LOS + first-order MPCs, Fig. 1a)");
  std::printf("%-8s %-10s %-12s %-12s %s\n", "path", "order", "length [m]",
              "delay [ns]", "rel. amplitude");
  std::vector<std::pair<double, double>> arrivals;  // delay, amplitude
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const auto& p = paths[i];
    const double delay_ns = p.length_m / k::c_air * 1e9;
    const double amp = channel::loss_db_to_amplitude(
        channel::log_distance_loss_db(p.length_m, 2.0, 0.0) +
        p.reflection_loss_db);
    arrivals.emplace_back(delay_ns, amp);
    std::printf("%-8s %-10d %-12.3f %-12.3f %.4f\n",
                i == 0 ? "LOS" : ("MPC" + std::to_string(i)).c_str(), p.order,
                p.length_m, delay_ns, amp);
  }

  for (const double bw : {900e6, 50e6}) {
    bench::subheading("received signal at " + std::to_string(static_cast<int>(bw / 1e6)) +
                      " MHz bandwidth (Fig. 1b)");
    std::vector<double> ts, ys;
    const double t0 = arrivals.front().first - 5.0;
    const double t1 = arrivals.back().first + 25.0;
    for (double t = t0; t <= t1; t += 0.25) {
      double y = 0.0;
      for (const auto& [delay, amp] : arrivals)
        y += amp * pulse((t - delay) * 1e-9, bw);
      ts.push_back(t);
      ys.push_back(y / arrivals.front().second);
    }
    bench::ascii_profile(ts, ys, "ns", 48);
    const int peaks = count_resolvable_peaks(ys);
    std::printf("resolvable peaks: %d of %zu paths\n", peaks, arrivals.size());
    report.metric("resolvable_peaks_" +
                      std::to_string(static_cast<int>(bw / 1e6)) + "mhz",
                  peaks);
  }

  report.param("paths", static_cast<double>(arrivals.size()));
  std::printf(
      "\npaper check: 900 MHz resolves the individual MPCs, 50 MHz merges\n"
      "them into overlapping pulses (and BLE at <5 MHz would be far worse).\n");
  return report.write_if_requested(opts) ? 0 : 1;
}
