// Robustness extension: resilient ranging under injected faults.
//
// Sweeps the fault-injection loss level against the responder count and
// measures what degrades: round decode/degradation/failure rates, retry
// consumption, per-status responder outcomes, and — the key claim — that
// the survivors of a degraded round keep fault-free ranging accuracy (the
// faults in the model knock out responses, they do not bias the ones that
// get through).
//
// Extra flags on top of the standard bench set:
//   --loss P        run a single loss level instead of the sweep
//   --responders N  run a single responder count instead of the sweep
//   --inert         leave the fault plan disabled entirely (byte-identity
//                   reference for the CI determinism gate: must produce the
//                   same JSON as --loss 0)
//
// JSON keys are cell-prefixed (l30_n4_* = loss 0.30, 4 responders) plus the
// run-wide totals fault_injected_total / session_retry_attempts /
// session_degraded_rounds. All are plain (unprefixed) deterministic metrics:
// identical at any --threads value.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numbers>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dsp/stats.hpp"

namespace {

using namespace uwb;

/// Loss level -> fault plan. Reply jitter stays 0 here: jitter shifts the
/// surviving estimates (c * J / 2 per second of jitter) and this bench
/// isolates the claim that pure loss faults do not. test_fault covers
/// jitter.
fault::FaultPlan plan_for_loss(double loss) {
  fault::FaultPlan plan;
  plan.enabled = loss > 0.0;
  plan.preamble_miss_prob = loss;
  plan.preamble_snr_exponent = 1.0;
  plan.crc_error_prob = loss / 4.0;
  plan.late_tx_abort_prob = loss / 4.0;
  plan.dropout_prob = loss / 8.0;
  return plan;
}

ranging::ScenarioConfig sweep_config(std::uint64_t seed, int responders,
                                     double loss, bool inert) {
  ranging::ScenarioConfig cfg = bench::office_scenario(seed);
  cfg.ranging.num_slots = 4;
  cfg.ranging.slot_spacing_s = 150e-9;
  cfg.ranging.shape_registers = {0x93, 0xC8};
  cfg.detect_max_responses = 2 * responders;
  cfg.slot_aware_selection = true;
  const double radius = 2.8;
  for (int i = 0; i < responders; ++i) {
    const double ang = 2.0 * std::numbers::pi * i / responders + 0.4;
    cfg.responders.push_back(
        {i, {cfg.initiator_position.x + radius * std::cos(ang) + 1.5,
             cfg.initiator_position.y + 0.6 * radius * std::sin(ang)}});
  }
  if (!inert) cfg.fault = plan_for_loss(loss);
  cfg.resilience.max_retries = 2;
  return cfg;
}

std::string cell_key(double loss, int responders) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "l%02d_n%d",
                static_cast<int>(std::lround(loss * 100.0)), responders);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uwb;
  const auto opts = bench::parse_options(argc, argv, 400);

  std::vector<double> losses = {0.0, 0.1, 0.2, 0.3, 0.5};
  std::vector<int> responder_counts = {2, 4, 6};
  bool inert = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--loss") == 0 && i + 1 < argc) {
      losses = {std::atof(argv[++i])};
    } else if (std::strcmp(argv[i], "--responders") == 0 && i + 1 < argc) {
      responder_counts = {std::atoi(argv[++i])};
    } else if (std::strcmp(argv[i], "--inert") == 0) {
      inert = true;
    }
  }

  bench::JsonReport report("ext_fault_sweep", opts.trials);
  bench::heading("Extension — resilient ranging under injected faults");
  std::printf("(%d trials per cell, max_retries = 2%s)\n", opts.trials,
              inert ? ", fault plan inert" : "");
  std::printf("\n%-10s %-6s %-10s %-10s %-10s %-9s %-12s %s\n", "loss",
              "resp", "decoded", "degraded", "failed", "retries",
              "|err| p50", "faults");

  double fault_injected_total = 0.0;
  double session_retry_attempts = 0.0;
  double session_degraded_rounds = 0.0;

  for (const int responders : responder_counts) {
    // Fault-free reference median per responder count (for the survivors'
    // accuracy delta printed per row).
    double baseline_p50 = 0.0;
    for (const double loss : losses) {
      const std::string cell = cell_key(loss, responders);
      const std::uint64_t cell_seed =
          7100 + static_cast<std::uint64_t>(std::lround(loss * 100.0)) * 101 +
          static_cast<std::uint64_t>(responders);

      const auto result = bench::run_rounds(
          opts, cell_seed, opts.trials,
          [&](std::uint64_t seed) {
            return sweep_config(seed, responders, loss, inert);
          },
          [&](const ranging::ConcurrentRangingScenario& scenario,
              const ranging::RoundOutcome& out, runner::TrialRecorder& rec) {
            const auto& stats = scenario.stats();
            rec.count(cell + "_rounds");
            rec.count(cell + "_retries",
                      static_cast<std::int64_t>(stats.retry_attempts));
            if (out.degraded) rec.count(cell + "_degraded");
            if (!out.payload_decoded) rec.count(cell + "_failed");
            for (const auto& rep : out.responder_reports)
              rec.count(cell + "_status_" +
                        ranging::to_string(rep.status));
            if (const auto* inj = scenario.fault_injector())
              rec.count(cell + "_fault_injected",
                        static_cast<std::int64_t>(inj->counters().total()));
            if (!out.payload_decoded) return;
            // Survivors' ranging error: every estimate that decodes to a
            // real responder, against geometry truth.
            for (const auto& est : out.estimates) {
              if (est.responder_id < 0 || est.responder_id >= responders)
                continue;
              const double err =
                  est.distance_m - scenario.true_distance(est.responder_id).value();
              if (std::abs(err) < 2.0) rec.sample(cell + "_err_m", err);
            }
          });

      const double rounds =
          static_cast<double>(result.counter(cell + "_rounds"));
      const double degraded =
          static_cast<double>(result.counter(cell + "_degraded"));
      const double failed =
          static_cast<double>(result.counter(cell + "_failed"));
      const double retries =
          static_cast<double>(result.counter(cell + "_retries"));
      const double injected =
          static_cast<double>(result.counter(cell + "_fault_injected"));

      RVec abs_errs;
      for (const double e : result.samples(cell + "_err_m"))
        abs_errs.push_back(std::abs(e));
      const double p50 =
          abs_errs.empty() ? 0.0 : dsp::percentile(abs_errs, 50.0);
      if (loss == losses.front()) baseline_p50 = p50;

      std::printf("%-10.2f %-6d %7.1f %%  %7.1f %%  %7.1f %%  %-9.0f "
                  "%-12.4f %.0f\n",
                  loss, responders, 100.0 * (rounds - failed) / rounds,
                  100.0 * degraded / rounds, 100.0 * failed / rounds, retries,
                  p50, injected);
      if (loss != losses.front() && !abs_errs.empty())
        std::printf("%-10s %-6s survivors' p50 delta vs fault-free: "
                    "%+.4f m\n", "", "", p50 - baseline_p50);

      report.summarize(result, cell + "_err_m");
      report.metric(cell + "_rounds", rounds);
      report.metric(cell + "_degraded_rounds", degraded);
      report.metric(cell + "_failed_rounds", failed);
      report.metric(cell + "_retry_attempts", retries);
      report.metric(cell + "_fault_injected", injected);
      for (const char* status :
           {"ok", "no_preamble", "crc_error", "late_tx_abort", "timed_out"})
        report.metric(
            cell + "_status_" + status,
            static_cast<double>(
                result.counter(cell + "_status_" + status)));

      fault_injected_total += injected;
      session_retry_attempts += retries;
      session_degraded_rounds += degraded;
    }
  }

  report.metric("fault_injected_total", fault_injected_total);
  report.metric("session_retry_attempts", session_retry_attempts);
  report.metric("session_degraded_rounds", session_degraded_rounds);

  std::printf(
      "\ncheck: degradation and retries grow with the loss level while the\n"
      "survivors' median |error| stays at the fault-free level — loss-type\n"
      "faults remove responses without biasing the ones that survive.\n");
  return report.write_if_requested(opts) ? 0 : 1;
}
