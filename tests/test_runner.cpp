// The parallel Monte-Carlo runner: seed derivation, thread pool, and the
// determinism contract — bit-identical aggregates at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <stdexcept>
#include <thread>

#include "common/random.hpp"
#include "dw1000/pulse.hpp"
#include "obs/metrics.hpp"
#include "geom/image_source.hpp"
#include "ranging/session.hpp"
#include "runner/monte_carlo.hpp"
#include "runner/thread_pool.hpp"
#include "runner/worker_context.hpp"

namespace uwb {
namespace {

// --- seed derivation --------------------------------------------------------

TEST(DeriveSeed, GoldenValuesStableAcrossPlatforms) {
  // The determinism contract hinges on derive_seed being pure 64-bit
  // integer arithmetic: the same (base, stream) must map to the same seed
  // on every platform, compiler, and thread. These anchors were computed
  // once from the definition; a change here is a contract break.
  EXPECT_EQ(derive_seed(0, 0), 0x8194228B8265021FULL);
  EXPECT_EQ(derive_seed(1, 0), 0x50FCD7BCF2FCB933ULL);
  EXPECT_EQ(derive_seed(1, 1), 0xB9DCCA0CF6663F98ULL);
  EXPECT_EQ(derive_seed(42, 7), 0xE680D06710AA5E65ULL);
  EXPECT_EQ(derive_seed(0xDEADBEEFULL, 123456789), 0xB824400C7C867080ULL);
}

TEST(DeriveSeed, StreamsAndBasesAreDistinct) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 0; base < 8; ++base)
    for (std::uint64_t stream = 0; stream < 256; ++stream)
      seen.insert(derive_seed(base, stream));
  EXPECT_EQ(seen.size(), 8u * 256u);
}

TEST(DeriveSeed, NeverReturnsTrivialSeeds) {
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    EXPECT_NE(derive_seed(0, stream), 0u);
    EXPECT_NE(derive_seed(0, stream), stream);
  }
}

// --- thread pool ------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  runner::ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 500; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, TasksMaySubmitMoreTasks) {
  runner::ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 16; ++i)
    pool.submit([&pool, &counter] {
      counter.fetch_add(1);
      pool.submit([&counter] { counter.fetch_add(1); });
    });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, PropagatesFirstWorkerException) {
  runner::ThreadPool pool(2);
  std::atomic<int> survivors{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([i, &survivors] {
      if (i == 3) throw std::runtime_error("trial blew up");
      survivors.fetch_add(1);
    });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The failure neither killed the workers nor poisoned the pool.
  pool.submit([&survivors] { survivors.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(survivors.load(), 8);
}

TEST(ThreadPool, WaitIdleWithNoWorkReturnsImmediately) {
  runner::ThreadPool pool(2);
  pool.wait_idle();
  pool.wait_idle();
}

// --- Monte-Carlo determinism contract --------------------------------------

runner::TrialResult run_mc(int threads, int n_trials, int chunk = 0) {
  runner::MonteCarlo::Config cfg;
  cfg.threads = threads;
  cfg.base_seed = 77;
  cfg.chunk = chunk;
  return runner::MonteCarlo(cfg).run(
      n_trials, [](const runner::TrialContext& ctx, runner::TrialRecorder& rec) {
        Rng rng(ctx.seed);
        rec.sample("gauss", rng.normal(0.0, 1.0));
        rec.sample("uniform", rng.uniform(0.0, 1.0));
        if (ctx.trial_index % 3 == 0) rec.count("thirds");
        rec.count("trials");
      });
}

void expect_bit_identical(const runner::TrialResult& a,
                          const runner::TrialResult& b) {
  ASSERT_EQ(a.metric_names(), b.metric_names());
  ASSERT_EQ(a.counter_names(), b.counter_names());
  for (const auto& name : a.metric_names()) {
    const RVec& xs = a.samples(name);
    const RVec& ys = b.samples(name);
    ASSERT_EQ(xs.size(), ys.size()) << name;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      // Bitwise comparison: the contract is bit-identical, not "close".
      std::uint64_t xb = 0, yb = 0;
      std::memcpy(&xb, &xs[i], sizeof(xb));
      std::memcpy(&yb, &ys[i], sizeof(yb));
      EXPECT_EQ(xb, yb) << name << "[" << i << "]";
    }
  }
  for (const auto& name : a.counter_names())
    EXPECT_EQ(a.counter(name), b.counter(name)) << name;
}

TEST(MonteCarlo, BitIdenticalAcrossThreadCounts) {
  const auto serial = run_mc(1, 97);
  for (const int threads : {2, 5, 8}) {
    const auto parallel = run_mc(threads, 97);
    expect_bit_identical(serial, parallel);
  }
}

TEST(MonteCarlo, ChunkSizeNeverAffectsResults) {
  const auto reference = run_mc(4, 50);
  for (const int chunk : {1, 3, 7, 50, 1000})
    expect_bit_identical(reference, run_mc(4, 50, chunk));
}

TEST(MonteCarlo, TrialLatencyHistogramCountsEveryTrial) {
  // Every trial's wall time lands in the merged obs registry histogram —
  // in both build flavours (recorded via the Shard API, not the macros) —
  // and the aggregate's count equals the trial count for any thread count.
  for (const int threads : {1, 4}) {
    obs::MetricsRegistry::instance().reset();
    run_mc(threads, 61);
    const obs::Snapshot snap = obs::MetricsRegistry::instance().aggregate();
    const obs::Histogram* h = snap.histogram("trial_latency_ms");
    ASSERT_NE(h, nullptr) << "threads=" << threads;
    EXPECT_EQ(h->count(), 61u) << "threads=" << threads;
    EXPECT_GE(h->max(), h->min());
    EXPECT_GE(h->quantile(0.99), h->quantile(0.50));
  }
}

TEST(MonteCarlo, TrialsSeeSeedOfTheirIndex) {
  runner::MonteCarlo::Config cfg;
  cfg.threads = 4;
  cfg.base_seed = 123;
  const auto result = runner::MonteCarlo(cfg).run(
      40, [](const runner::TrialContext& ctx, runner::TrialRecorder& rec) {
        EXPECT_EQ(ctx.seed, derive_seed(123, ctx.trial_index));
        rec.sample("index", static_cast<double>(ctx.trial_index));
      });
  const RVec& indices = result.samples("index");
  ASSERT_EQ(indices.size(), 40u);
  // merge_in_order: samples come back sorted by trial index regardless of
  // which worker ran which trial.
  for (std::size_t i = 0; i < indices.size(); ++i)
    EXPECT_EQ(indices[i], static_cast<double>(i));
}

TEST(MonteCarlo, CountersAndSummariesAreExact) {
  const auto result = run_mc(3, 90);
  EXPECT_EQ(result.trials(), 90);
  EXPECT_EQ(result.counter("trials"), 90);
  EXPECT_EQ(result.counter("thirds"), 30);
  EXPECT_EQ(result.counter("never_recorded"), 0);
  const auto s = result.summary("uniform");
  EXPECT_EQ(s.count, 90u);
  EXPECT_GE(s.min, 0.0);
  EXPECT_LE(s.max, 1.0);
  EXPECT_GE(s.p90, s.p50);
  EXPECT_GE(s.p99, s.p90);
}

TEST(MonteCarlo, RethrowsTrialException) {
  runner::MonteCarlo::Config cfg;
  cfg.threads = 4;
  const runner::MonteCarlo mc(cfg);
  EXPECT_THROW(
      mc.run(20,
             [](const runner::TrialContext& ctx, runner::TrialRecorder&) {
               if (ctx.trial_index == 11)
                 throw std::runtime_error("determinism violated");
             }),
      std::runtime_error);
}

TEST(MonteCarlo, InlineModeMatchesPool) {
  // threads=1 runs inline on the calling thread (no pool at all); it is the
  // reference the pooled runs must reproduce.
  runner::MonteCarlo::Config cfg;
  cfg.threads = 1;
  EXPECT_EQ(runner::MonteCarlo(cfg).threads(), 1);
  const auto inline_result = run_mc(1, 10);
  EXPECT_EQ(inline_result.threads_used(), 1);
  const auto pooled = run_mc(2, 10);
  EXPECT_EQ(pooled.threads_used(), 2);
  expect_bit_identical(inline_result, pooled);
}

// --- scenario-level determinism (the acceptance property) -------------------

TEST(MonteCarlo, ScenarioRoundsBitIdenticalAcrossThreads) {
  const auto run_rounds = [](int threads) {
    runner::MonteCarlo::Config cfg;
    cfg.threads = threads;
    cfg.base_seed = 404;
    return runner::MonteCarlo(cfg).run(
        12, [](const runner::TrialContext& ctx, runner::TrialRecorder& rec) {
          ranging::ScenarioConfig scfg;
          scfg.room = geom::Room::hallway(40.0, 2.4, 15.0);
          scfg.initiator_position = {2.0, 1.0};
          scfg.responders = {{0, {5.0, 1.0}}, {1, {8.0, 1.0}}};
          scfg.seed = ctx.seed;
          ranging::ConcurrentRangingScenario scenario(scfg);
          const auto out = scenario.run_round();
          rec.sample("d_twr", out.d_twr_m);
          rec.count("decoded", out.payload_decoded ? 1 : 0);
        });
  };
  expect_bit_identical(run_rounds(1), run_rounds(8));
}

// --- worker context & caches -------------------------------------------------

TEST(WorkerContext, CachedPulseTemplateMatchesUncached) {
  auto& ctx = runner::WorkerContext::current();
  ctx.clear();
  const CVec direct = dw::sample_pulse_template(0xC8, 1e-10);
  const CVec& cached = ctx.pulse_template(0xC8, 1e-10);
  ASSERT_EQ(cached.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_EQ(cached[i], direct[i]);
  // Second lookup is a hit and returns the same storage.
  const auto before = ctx.stats();
  const CVec& again = ctx.pulse_template(0xC8, 1e-10);
  EXPECT_EQ(&again, &cached);
  EXPECT_EQ(ctx.stats().pulse_hits, before.pulse_hits + 1);
}

TEST(WorkerContext, CachedPathsMatchUncached) {
  auto& ctx = runner::WorkerContext::current();
  ctx.clear();
  const geom::Room room = geom::Room::rectangular(10.0, 6.0, 5.0);
  const geom::Vec2 tx{2.0, 1.2}, rx{7.5, 4.2};
  const auto direct = geom::compute_paths(room, tx, rx, 1);
  const auto& cached = ctx.specular_paths(room, tx, rx, 1);
  ASSERT_EQ(cached.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(cached[i].length_m, direct[i].length_m);
    EXPECT_EQ(cached[i].order, direct[i].order);
    EXPECT_EQ(cached[i].reflection_loss_db, direct[i].reflection_loss_db);
  }
  const auto before = ctx.stats();
  ctx.specular_paths(room, tx, rx, 1);
  EXPECT_EQ(ctx.stats().path_hits, before.path_hits + 1);
}

TEST(WorkerContext, DistinctGeometriesDoNotCollide) {
  auto& ctx = runner::WorkerContext::current();
  ctx.clear();
  const geom::Room a = geom::Room::rectangular(10.0, 6.0, 5.0);
  const geom::Room b = geom::Room::rectangular(10.0, 6.0, 8.0);  // loss diff
  const auto& pa = ctx.specular_paths(a, {2.0, 1.0}, {7.0, 4.0}, 1);
  const auto& pb = ctx.specular_paths(b, {2.0, 1.0}, {7.0, 4.0}, 1);
  ASSERT_FALSE(pa.empty());
  ASSERT_FALSE(pb.empty());
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(pa.size(), pb.size()); ++i)
    if (pa[i].reflection_loss_db != pb[i].reflection_loss_db) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(WorkerContext, EachThreadHasItsOwnCaches) {
  auto& main_ctx = runner::WorkerContext::current();
  main_ctx.clear();
  main_ctx.pulse_template(0x93, 1e-10);
  const auto main_stats = main_ctx.stats();
  std::size_t other_misses = 1;  // sentinel; overwritten by the thread
  std::thread([&other_misses] {
    // A fresh thread starts cold: its first lookup must be a miss even
    // though the main thread already cached this exact template.
    auto& ctx = runner::WorkerContext::current();
    other_misses = ctx.stats().pulse_misses;
    ctx.pulse_template(0x93, 1e-10);
    other_misses = ctx.stats().pulse_misses - other_misses;
  }).join();
  EXPECT_EQ(other_misses, 1u);
  EXPECT_EQ(main_ctx.stats().pulse_misses, main_stats.pulse_misses);
}

}  // namespace
}  // namespace uwb
