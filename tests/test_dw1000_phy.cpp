// Unit tests: PHY configuration, frame air-times (incl. the paper's 178.5 us
// minimum response delay), and MAC frame serialisation.
#include <gtest/gtest.h>

#include "common/expects.hpp"
#include "dw1000/frame.hpp"
#include "dw1000/phy_config.hpp"

namespace uwb::dw {
namespace {

TEST(ChannelInfoTest, KnownChannels) {
  EXPECT_NEAR(channel_info(7).centre_hz, 6489.6e6, 1.0);
  EXPECT_NEAR(channel_info(7).bandwidth_hz, 900e6, 1.0);
  EXPECT_NEAR(channel_info(2).centre_hz, 3993.6e6, 1.0);
  EXPECT_NEAR(channel_info(5).bandwidth_hz, 499.2e6, 1.0);
  EXPECT_THROW(channel_info(6), PreconditionError);
  EXPECT_THROW(channel_info(0), PreconditionError);
}

TEST(PhyConfigTest, PreambleSymbolDurations) {
  PhyConfig cfg;
  cfg.prf = Prf::Mhz64;
  EXPECT_NEAR(cfg.preamble_symbol_s(), 1017.63e-9, 0.01e-9);
  cfg.prf = Prf::Mhz16;
  EXPECT_NEAR(cfg.preamble_symbol_s(), 993.59e-9, 0.01e-9);
}

TEST(PhyConfigTest, SfdLengthByRate) {
  PhyConfig cfg;
  cfg.rate = DataRate::k110;
  EXPECT_EQ(cfg.sfd_symbols(), 64);
  cfg.rate = DataRate::k850;
  EXPECT_EQ(cfg.sfd_symbols(), 8);
  cfg.rate = DataRate::M6_8;
  EXPECT_EQ(cfg.sfd_symbols(), 8);
}

TEST(PhyConfigTest, ShrDurationPaperConfig) {
  // PSR 128 + 8 SFD symbols at 1017.63 ns ~= 138.4 us.
  PhyConfig cfg;  // defaults: PRF64, 6.8 Mbps, PSR 128
  EXPECT_NEAR(cfg.shr_duration_s(), 138.4e-6, 0.1e-6);
}

TEST(PhyConfigTest, PayloadDurationIncludesReedSolomon) {
  PhyConfig cfg;
  // 12 bytes = 96 bits -> one RS block -> +48 parity bits at 128.21 ns.
  EXPECT_NEAR(cfg.payload_duration_s(12), (96 + 48) * 128.21e-9, 1e-9);
  // 42 bytes = 336 bits -> two RS blocks.
  EXPECT_NEAR(cfg.payload_duration_s(42), (336 + 96) * 128.21e-9, 1e-9);
  EXPECT_DOUBLE_EQ(cfg.payload_duration_s(0), 0.0);
  EXPECT_THROW(cfg.payload_duration_s(-1), PreconditionError);
  EXPECT_THROW(cfg.payload_duration_s(128), PreconditionError);
}

TEST(PhyConfigTest, MinResponseDelayMatchesPaper) {
  // Paper Sect. III: DR = 6.8 Mbps, PRF = 64 MHz, PSR = 128 and the INIT
  // payload give a minimum Delta_RESP of 178.5 us.
  PhyConfig cfg;
  MacFrame init;
  init.type = FrameType::Init;
  const double d = min_response_delay_s(cfg, init.payload_bytes());
  EXPECT_NEAR(d, 178.5e-6, 1.0e-6);
}

TEST(PhyConfigTest, ChosenDelayCoversMinPlusTurnaround) {
  // The paper's 290 us = minimum + <100 us RX/TX switch + safety gap.
  PhyConfig cfg;
  MacFrame init;
  init.type = FrameType::Init;
  EXPECT_GT(290e-6, min_response_delay_s(cfg, init.payload_bytes()) + 100e-6);
}

TEST(PhyConfigTest, FrameDurationIsSumOfParts) {
  PhyConfig cfg;
  const double total = cfg.frame_duration_s(20);
  EXPECT_NEAR(total,
              cfg.shr_duration_s() + cfg.phr_duration_s() +
                  cfg.payload_duration_s(20),
              1e-12);
  EXPECT_DOUBLE_EQ(cfg.rmarker_offset_s(), cfg.shr_duration_s());
}

TEST(PhyConfigTest, DataRatesOrdering) {
  PhyConfig slow;
  slow.rate = DataRate::k110;
  PhyConfig mid;
  mid.rate = DataRate::k850;
  PhyConfig fast;
  fast.rate = DataRate::M6_8;
  EXPECT_GT(slow.payload_duration_s(20), mid.payload_duration_s(20));
  EXPECT_GT(mid.payload_duration_s(20), fast.payload_duration_s(20));
}

TEST(PhyConfigTest, CirLengthByPrf) {
  PhyConfig cfg;
  cfg.prf = Prf::Mhz64;
  EXPECT_EQ(cfg.cir_length(), 1016);
  cfg.prf = Prf::Mhz16;
  EXPECT_EQ(cfg.cir_length(), 992);
}

TEST(PhyConfigTest, ValidationCatchesBadValues) {
  PhyConfig cfg;
  cfg.preamble_symbols = 32;
  EXPECT_THROW(cfg.validate(), PreconditionError);
  cfg = PhyConfig{};
  cfg.channel = 9;
  EXPECT_THROW(cfg.validate(), PreconditionError);
  cfg = PhyConfig{};
  cfg.tc_pgdelay = 0x10;
  EXPECT_THROW(cfg.validate(), PreconditionError);
  EXPECT_NO_THROW(PhyConfig{}.validate());
}

TEST(MacFrameTest, PayloadSizes) {
  MacFrame init;
  init.type = FrameType::Init;
  EXPECT_EQ(init.payload_bytes(), 12);  // drives the 178.5 us figure
  MacFrame resp;
  resp.type = FrameType::Resp;
  EXPECT_EQ(resp.payload_bytes(), 23);  // + id + two 40-bit timestamps
}

TEST(MacFrameTest, SerializeRoundTripInit) {
  MacFrame f;
  f.type = FrameType::Init;
  f.src = 0x1234;
  f.dst = kBroadcast;
  f.seq = 42;
  const auto bytes = f.serialize();
  EXPECT_EQ(static_cast<int>(bytes.size()), f.payload_bytes());
  const auto parsed = MacFrame::deserialize(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, f);
}

TEST(MacFrameTest, SerializeRoundTripResp) {
  MacFrame f;
  f.type = FrameType::Resp;
  f.src = 7;
  f.dst = 0;
  f.responder_id = 9;
  f.rx_timestamp = DwTimestamp(0xABCDEF0123ULL);
  f.tx_timestamp = DwTimestamp(0x9876543210ULL);
  const auto bytes = f.serialize();
  const auto parsed = MacFrame::deserialize(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, f);
  EXPECT_EQ(parsed->rx_timestamp.ticks(), 0xABCDEF0123ULL);
}

TEST(MacFrameTest, SerializeRoundTripFinal) {
  MacFrame f;
  f.type = FrameType::Final;
  f.src = 0;
  f.dst = 1;
  f.rx_timestamp = DwTimestamp(0x1111111111ULL);
  f.tx_timestamp = DwTimestamp(0x2222222222ULL);
  f.aux_timestamp = DwTimestamp(0x3333333333ULL);
  const auto bytes = f.serialize();
  EXPECT_EQ(static_cast<int>(bytes.size()), f.payload_bytes());
  EXPECT_EQ(f.payload_bytes(), 27);  // header + type + 3x40-bit + FCS
  const auto parsed = MacFrame::deserialize(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, f);
}

TEST(MacFrameTest, DeserializeRejectsTruncatedFinal) {
  MacFrame f;
  f.type = FrameType::Final;
  auto bytes = f.serialize();
  bytes.resize(bytes.size() - 8);
  EXPECT_FALSE(MacFrame::deserialize(bytes).has_value());
}

TEST(MacFrameTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(MacFrame::deserialize({}).has_value());
  EXPECT_FALSE(MacFrame::deserialize({1, 2, 3}).has_value());
  // Valid INIT with a corrupted frame-control field.
  MacFrame f;
  f.type = FrameType::Init;
  auto bytes = f.serialize();
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(MacFrame::deserialize(bytes).has_value());
}

TEST(MacFrameTest, DeserializeRejectsBadType) {
  MacFrame f;
  f.type = FrameType::Init;
  auto bytes = f.serialize();
  bytes[9] = 0x77;  // type field out of range
  EXPECT_FALSE(MacFrame::deserialize(bytes).has_value());
}

TEST(MacFrameTest, DeserializeRejectsTruncatedResp) {
  MacFrame f;
  f.type = FrameType::Resp;
  auto bytes = f.serialize();
  bytes.resize(bytes.size() - 6);
  EXPECT_FALSE(MacFrame::deserialize(bytes).has_value());
}

}  // namespace
}  // namespace uwb::dw
