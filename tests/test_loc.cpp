// Unit tests: multilateration solver and the anchor-based localisation
// extension (paper future work).
#include <gtest/gtest.h>

#include <cmath>

#include "common/expects.hpp"
#include "common/random.hpp"
#include "loc/anchor_system.hpp"
#include "loc/multilateration.hpp"

namespace uwb::loc {
namespace {

std::vector<RangeObservation> perfect_ranges(
    const std::vector<geom::Vec2>& anchors, geom::Vec2 truth) {
  std::vector<RangeObservation> obs;
  for (const auto& a : anchors) obs.push_back({a, geom::distance(a, truth)});
  return obs;
}

TEST(MultilaterationTest, ExactRangesExactPosition) {
  const std::vector<geom::Vec2> anchors{{0.0, 0.0}, {10.0, 0.0}, {0.0, 8.0}, {10.0, 8.0}};
  const geom::Vec2 truth{3.2, 5.7};
  const PositionFix fix = multilaterate(perfect_ranges(anchors, truth));
  EXPECT_TRUE(fix.converged);
  EXPECT_NEAR(fix.position.x, truth.x, 1e-6);
  EXPECT_NEAR(fix.position.y, truth.y, 1e-6);
  EXPECT_NEAR(fix.residual_rms_m, 0.0, 1e-6);
}

TEST(MultilaterationTest, ThreeAnchorsSuffice) {
  const std::vector<geom::Vec2> anchors{{0.0, 0.0}, {12.0, 0.0}, {6.0, 9.0}};
  const geom::Vec2 truth{5.0, 3.0};
  const PositionFix fix = multilaterate(perfect_ranges(anchors, truth));
  EXPECT_TRUE(fix.converged);
  EXPECT_NEAR(fix.position.x, truth.x, 1e-6);
  EXPECT_NEAR(fix.position.y, truth.y, 1e-6);
}

TEST(MultilaterationTest, NoisyRangesStayClose) {
  Rng rng(5);
  const std::vector<geom::Vec2> anchors{{0.0, 0.0}, {10.0, 0.0}, {0.0, 8.0}, {10.0, 8.0}};
  const geom::Vec2 truth{4.0, 4.0};
  auto obs = perfect_ranges(anchors, truth);
  for (auto& o : obs) o.distance_m += rng.normal(0.0, 0.05);
  const PositionFix fix = multilaterate(obs);
  EXPECT_TRUE(fix.converged);
  EXPECT_LT(geom::distance(fix.position, truth), 0.2);
  EXPECT_GT(fix.residual_rms_m, 0.0);
}

TEST(MultilaterationTest, CustomInitialGuess) {
  const std::vector<geom::Vec2> anchors{{0.0, 0.0}, {10.0, 0.0}, {5.0, 9.0}};
  const geom::Vec2 truth{7.0, 2.0};
  const PositionFix fix =
      multilaterate_from(perfect_ranges(anchors, truth), {6.0, 3.0});
  EXPECT_TRUE(fix.converged);
  EXPECT_NEAR(fix.position.x, truth.x, 1e-6);
}

TEST(MultilaterationTest, DegenerateCollinearGeometryDoesNotConverge) {
  // Collinear anchors leave a mirror ambiguity; the solver must not claim a
  // wrong high-confidence answer from the centroid start (which sits on the
  // ambiguity line where the normal matrix is singular).
  const std::vector<geom::Vec2> anchors{{0.0, 0.0}, {5.0, 0.0}, {10.0, 0.0}};
  const geom::Vec2 truth{5.0, 3.0};
  const PositionFix fix = multilaterate(perfect_ranges(anchors, truth));
  // Either it failed to converge, or it found one of the two mirror points.
  if (fix.converged) {
    EXPECT_NEAR(std::abs(fix.position.y), 3.0, 1e-3);
  }
}

TEST(MultilaterationTest, TooFewAnchorsThrow) {
  EXPECT_THROW(multilaterate({{{0.0, 0.0}, 1.0}, {{1.0, 0.0}, 1.0}}),
               PreconditionError);
}

TEST(MultilaterationTest, BadOptionsThrow) {
  const std::vector<geom::Vec2> anchors{{0.0, 0.0}, {10.0, 0.0}, {5.0, 9.0}};
  SolverOptions opt;
  opt.max_iterations = 0;
  EXPECT_THROW(multilaterate(perfect_ranges(anchors, {1.0, 1.0}), opt),
               PreconditionError);
}

AnchorSystemConfig office_config(std::uint64_t seed) {
  AnchorSystemConfig cfg;
  cfg.scenario.room = geom::Room::rectangular(12.0, 8.0, 10.0);
  cfg.scenario.seed = seed;
  // Four anchors with distinct RPM slots (IDs 0..3, N_RPM = 4).
  cfg.scenario.ranging.num_slots = 4;
  cfg.scenario.ranging.slot_spacing_s = 120e-9;
  cfg.scenario.responders = {{0, {0.5, 0.5}},
                             {1, {11.5, 0.5}},
                             {2, {11.5, 7.5}},
                             {3, {0.5, 7.5}}};
  return cfg;
}

TEST(AnchorSystemTest, SingleRoundFix) {
  AnchorLocalizer localizer(office_config(11));
  const Fix fix = localizer.locate({6.0, 4.0});
  ASSERT_TRUE(fix.round.payload_decoded);
  EXPECT_EQ(fix.anchors_used, 4);
  ASSERT_TRUE(fix.ok);
  // Slot-decoded distances carry the +-8 ns TX truncation -> sub-metre fix.
  EXPECT_LT(fix.error_m, 0.8);
}

TEST(AnchorSystemTest, IdealTxTimingGivesDecimetreFix) {
  AnchorSystemConfig cfg = office_config(12);
  cfg.scenario.delayed_tx_truncation = false;
  AnchorLocalizer localizer(cfg);
  const Fix fix = localizer.locate({4.0, 3.0});
  ASSERT_TRUE(fix.ok);
  EXPECT_LT(fix.error_m, 0.15);
}

TEST(AnchorSystemTest, SequentialFixesTrackMovingTag) {
  AnchorLocalizer localizer(office_config(13));
  int good = 0;
  for (double x = 3.0; x <= 9.0; x += 1.5) {
    const Fix fix = localizer.locate({x, 4.0});
    // The +-8 ns TX truncation bounds per-range errors at ~0.6 m; a 4-anchor
    // LS fix stays within ~1.2 m.
    if (fix.ok && fix.error_m < 1.2) ++good;
  }
  EXPECT_GE(good, 4);
}

TEST(AnchorSystemTest, RequiresThreeAnchors) {
  AnchorSystemConfig cfg = office_config(14);
  cfg.scenario.responders.resize(2);
  EXPECT_THROW(AnchorLocalizer{cfg}, PreconditionError);
}

}  // namespace
}  // namespace uwb::loc
