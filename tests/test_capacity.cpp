// Unit tests: scalability / capacity analysis (paper Sect. III & VIII).
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "ranging/session.hpp"
#include "ranging/capacity.hpp"

namespace uwb::ranging {
namespace {

TEST(CapacityTest, CirSpanIsAbout1017ns) {
  // Paper Sect. VII: 1016 samples * 1.0016 ns -> delta_max ~= 1017 ns.
  dw::PhyConfig phy;
  EXPECT_NEAR(cir_max_offset_s(phy), 1017e-9, 1e-9);
}

TEST(CapacityTest, MaxOffsetDistanceIsAbout305m) {
  // Paper rounds delta_max * c to ~307 m; the exact figure for 1016 taps at
  // 1.0016 ns and c_air is 305.0 m.
  dw::PhyConfig phy;
  EXPECT_NEAR(cir_max_offset_s(phy) * 299'702'547.0, 305.0, 1.0);
}

TEST(CapacityTest, PaperSlotCountAt75m) {
  // Paper Sect. VIII: r_max > 75 m -> N_RPM ~= 4.
  dw::PhyConfig phy;
  EXPECT_EQ(rpm_slots_paper(phy, 75.0), 4);
}

TEST(CapacityTest, AliasingFreeHalvesSlots) {
  // Responses traverse both legs; the guaranteed-unambiguous count is half.
  dw::PhyConfig phy;
  EXPECT_EQ(rpm_slots_aliasing_free(phy, 75.0), 2);
  EXPECT_EQ(rpm_slots_aliasing_free(phy, 20.0),
            rpm_slots_paper(phy, 40.0));
}

TEST(CapacityTest, Above1500UsersAt20m) {
  // Paper Sect. VIII: r_max = 20 m and the full shape bank (108 registers)
  // -> more than 1500 users.
  dw::PhyConfig phy;
  const int slots = rpm_slots_paper(phy, 20.0);
  EXPECT_GE(slots, 15);
  EXPECT_GT(max_concurrent_responders(slots, uwb::k::num_pulse_shapes), 1500);
}

TEST(CapacityTest, Fig8Configuration) {
  EXPECT_EQ(max_concurrent_responders(4, 3), 12);
}

TEST(CapacityTest, MessageCounts) {
  // Paper Sect. III: N(N-1) scheduled messages vs N concurrent.
  EXPECT_EQ(twr_message_count(2), 2);
  EXPECT_EQ(twr_message_count(10), 90);
  EXPECT_EQ(concurrent_message_count(10), 10);
  EXPECT_EQ(twr_message_count(40), 1560);
  EXPECT_EQ(concurrent_message_count(40), 40);
  EXPECT_THROW(twr_message_count(1), PreconditionError);
}

TEST(CapacityTest, InitiatorMessageOps) {
  dw::PhyConfig phy;
  dw::EnergyModelParams energy;
  const auto twr = twr_round_cost(9, phy, 290e-6, energy);
  const auto conc = concurrent_round_cost(9, phy, 290e-6, energy);
  EXPECT_EQ(twr.initiator_messages, 18);  // 2 * (N-1)
  EXPECT_EQ(conc.initiator_messages, 2);  // 1 TX + 1 RX
}

TEST(CapacityTest, ConcurrentInitiatorEnergyFlatInN) {
  dw::PhyConfig phy;
  dw::EnergyModelParams energy;
  const auto c3 = concurrent_round_cost(3, phy, 290e-6, energy);
  const auto c30 = concurrent_round_cost(30, phy, 290e-6, energy);
  EXPECT_DOUBLE_EQ(c3.initiator_j, c30.initiator_j);
}

TEST(CapacityTest, TwrInitiatorEnergyLinearInN) {
  dw::PhyConfig phy;
  dw::EnergyModelParams energy;
  const auto t1 = twr_round_cost(1, phy, 290e-6, energy);
  const auto t10 = twr_round_cost(10, phy, 290e-6, energy);
  EXPECT_NEAR(t10.initiator_j, 10.0 * t1.initiator_j, 1e-12);
}

TEST(CapacityTest, ConcurrentBeatsTwrForMultipleNeighbors) {
  dw::PhyConfig phy;
  dw::EnergyModelParams energy;
  for (int n : {2, 5, 10, 50}) {
    const auto twr = twr_round_cost(n, phy, 290e-6, energy);
    const auto conc = concurrent_round_cost(n, phy, 290e-6, energy);
    EXPECT_LT(conc.initiator_j, twr.initiator_j) << "n=" << n;
    EXPECT_LT(conc.network_j, twr.network_j) << "n=" << n;
  }
}

TEST(CapacityTest, PerResponderCostIdenticalAcrossSchemes) {
  // A responder does one RX + one TX in both schemes.
  dw::PhyConfig phy;
  dw::EnergyModelParams energy;
  EXPECT_DOUBLE_EQ(twr_round_cost(5, phy, 290e-6, energy).per_responder_j,
                   concurrent_round_cost(5, phy, 290e-6, energy).per_responder_j);
}

TEST(RpmPlanTest, IndoorDeployment) {
  // 20 m operating range, 60 ns delay spread, 9 responders (the Fig. 8
  // scenario scaled): needs few shapes, many slots.
  dw::PhyConfig phy;
  const RpmPlan plan = plan_rpm(phy, 20.0, 60e-9, 9);
  ASSERT_TRUE(plan.feasible);
  EXPECT_GE(plan.num_slots, 4);
  EXPECT_LE(plan.num_pulse_shapes, 3);
  EXPECT_GE(plan.capacity, 9);
  EXPECT_EQ(plan.shape_registers.size(),
            static_cast<std::size_t>(plan.num_pulse_shapes));
  // Slot spacing covers the aliasing-free width.
  EXPECT_GE(plan.slot_spacing_s, 2.0 * 20.0 / 299'702'547.0 + 60e-9 - 1e-12);
}

TEST(RpmPlanTest, SlotWidthGrowsWithRange) {
  dw::PhyConfig phy;
  const RpmPlan near = plan_rpm(phy, 10.0, 30e-9, 4);
  const RpmPlan far = plan_rpm(phy, 60.0, 30e-9, 4);
  ASSERT_TRUE(near.feasible);
  ASSERT_TRUE(far.feasible);
  EXPECT_GT(near.num_slots, far.num_slots);
  EXPECT_GT(far.slot_spacing_s, near.slot_spacing_s);
}

TEST(RpmPlanTest, ManyRespondersNeedMoreShapes) {
  dw::PhyConfig phy;
  const RpmPlan plan = plan_rpm(phy, 20.0, 60e-9, 100);
  ASSERT_TRUE(plan.feasible);
  EXPECT_GE(plan.capacity, 100);
  EXPECT_GT(plan.num_pulse_shapes, 10);
  // Registers stay within the legal range and are strictly increasing.
  for (std::size_t i = 1; i < plan.shape_registers.size(); ++i)
    EXPECT_GT(plan.shape_registers[i], plan.shape_registers[i - 1]);
  EXPECT_EQ(plan.shape_registers.front(), uwb::k::tc_pgdelay_default);
  EXPECT_LE(plan.shape_registers.back(), uwb::k::tc_pgdelay_max);
}

TEST(RpmPlanTest, InfeasibleWhenSpreadExceedsCir) {
  // A 200 m range cannot fit even one aliasing-free slot in the ~1017 ns CIR.
  dw::PhyConfig phy;
  EXPECT_FALSE(plan_rpm(phy, 200.0, 0.0, 2).feasible);
}

TEST(RpmPlanTest, InfeasibleWhenTooManyResponders) {
  dw::PhyConfig phy;
  // 2 slots at 75 m; 109 shapes max -> capacity ~218 < 10000.
  EXPECT_FALSE(plan_rpm(phy, 75.0, 100e-9, 10000).feasible);
}

TEST(RpmPlanTest, SingleResponderUsesDefaultShape) {
  dw::PhyConfig phy;
  const RpmPlan plan = plan_rpm(phy, 15.0, 40e-9, 1);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.num_pulse_shapes, 1);
  ASSERT_EQ(plan.shape_registers.size(), 1u);
  EXPECT_EQ(plan.shape_registers[0], uwb::k::tc_pgdelay_default);
}

TEST(RpmPlanTest, PlanWorksEndToEnd) {
  // Feed a generated plan into a live scenario: the distances must decode.
  dw::PhyConfig phy;
  const RpmPlan plan = plan_rpm(phy, 16.0, 60e-9, 6);
  ASSERT_TRUE(plan.feasible);
  ScenarioConfig cfg;
  cfg.room = geom::Room::rectangular(16.0, 10.0, 10.0);
  cfg.initiator_position = {1.0, 5.0};
  cfg.seed = 77;
  cfg.ranging.num_slots = plan.num_slots;
  cfg.ranging.slot_spacing_s = plan.slot_spacing_s;
  cfg.ranging.shape_registers = plan.shape_registers;
  cfg.responders = {{0, {4.0, 5.0}}, {1, {7.0, 3.0}}, {2, {10.0, 7.0}},
                    {3, {12.0, 4.0}}, {4, {6.0, 7.0}}, {5, {9.0, 2.5}}};
  ConcurrentRangingScenario scenario(cfg);
  const auto out = scenario.run_round();
  ASSERT_TRUE(out.payload_decoded);
  int accurate = 0;
  for (const auto& est : out.estimates) {
    if (est.responder_id < 0 || est.responder_id > 5) continue;
    if (std::abs(est.distance_m -
                 scenario.true_distance(est.responder_id).value()) < 1.0)
      ++accurate;
  }
  EXPECT_GE(accurate, 5);
}

TEST(RpmPlanTest, InvalidInputsThrow) {
  dw::PhyConfig phy;
  EXPECT_THROW(plan_rpm(phy, 0.0, 0.0, 1), PreconditionError);
  EXPECT_THROW(plan_rpm(phy, 10.0, -1.0, 1), PreconditionError);
  EXPECT_THROW(plan_rpm(phy, 10.0, 0.0, 0), PreconditionError);
}

TEST(CapacityTest, InvalidInputsThrow) {
  dw::PhyConfig phy;
  dw::EnergyModelParams energy;
  EXPECT_THROW(rpm_slots_paper(phy, 0.0), PreconditionError);
  EXPECT_THROW(max_concurrent_responders(0, 3), PreconditionError);
  EXPECT_THROW(twr_round_cost(0, phy, 290e-6, energy), PreconditionError);
  EXPECT_THROW(concurrent_round_cost(3, phy, 0.0, energy), PreconditionError);
}

}  // namespace
}  // namespace uwb::ranging
