// Property-based sweeps (parameterised gtest): invariants that must hold
// across ranges of positions, amplitudes, registers, factors, and seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/constants.hpp"
#include "dsp/resample.hpp"
#include "dsp/signal.hpp"
#include "dw1000/cir.hpp"
#include "dw1000/clock.hpp"
#include "dw1000/pulse.hpp"
#include "ranging/protocol.hpp"
#include "ranging/search_subtract.hpp"
#include "runner/monte_carlo.hpp"

namespace uwb {
namespace {

// --- upsampling: sample preservation across factors and lengths ------------

class UpsampleProperty
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(UpsampleProperty, OriginalSamplesPreserved) {
  const auto [factor, n] = GetParam();
  Rng rng(n * 31 + static_cast<std::size_t>(factor));
  CVec x(n);
  for (auto& v : x) v = rng.complex_normal(1.0);
  const CVec y = dsp::upsample_fft(x, factor);
  ASSERT_EQ(y.size(), n * static_cast<std::size_t>(factor));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_LT(std::abs(y[i * static_cast<std::size_t>(factor)] - x[i]), 1e-9);
}

TEST_P(UpsampleProperty, EnergyScalesWithFactor) {
  // Band-limited interpolation preserves the continuous-time signal, so
  // discrete energy grows by ~factor.
  const auto [factor, n] = GetParam();
  Rng rng(n * 17 + static_cast<std::size_t>(factor));
  CVec x(n);
  for (auto& v : x) v = rng.complex_normal(1.0);
  const double ratio =
      dsp::energy(dsp::upsample_fft(x, factor)) / dsp::energy(x);
  // The split Nyquist bin sheds up to ~half of one bin's energy (~1/2N of
  // the total for white input), so the tolerance scales with 1/n.
  EXPECT_NEAR(ratio, static_cast<double>(factor),
              (0.02 + 2.0 / static_cast<double>(n)) * factor);
}

INSTANTIATE_TEST_SUITE_P(
    FactorsAndLengths, UpsampleProperty,
    ::testing::Combine(::testing::Values(2, 3, 4, 8, 16),
                       ::testing::Values<std::size_t>(16, 33, 128, 1016)));

// --- pulse family: monotonicity and normalisation over all registers --------

class PulseRegisterProperty : public ::testing::TestWithParam<int> {};

TEST_P(PulseRegisterProperty, PeakNearUnity) {
  const auto reg = static_cast<std::uint8_t>(GetParam());
  EXPECT_GT(dw::pulse_value(reg, 0.0), 0.85);
  EXPECT_LE(dw::pulse_value(reg, 0.0), 1.05);
}

TEST_P(PulseRegisterProperty, DurationCoversSupport) {
  const auto reg = static_cast<std::uint8_t>(GetParam());
  const double half = dw::pulse_duration_s(reg) / 2.0;
  EXPECT_LT(std::abs(dw::pulse_value(reg, half)), 5e-3);
  EXPECT_LT(std::abs(dw::pulse_value(reg, -half)), 5e-3);
  EXPECT_LT(dw::pulse_main_lobe_s(reg), dw::pulse_duration_s(reg));
}

TEST_P(PulseRegisterProperty, TemplateCentreIsGlobalPeak) {
  const auto reg = static_cast<std::uint8_t>(GetParam());
  const double ts = k::cir_ts_s / 8.0;
  const CVec tmpl = dw::sample_pulse_template(reg, ts);
  const std::size_t centre = dw::template_centre_index(reg, ts);
  for (const auto& v : tmpl)
    EXPECT_LE(std::abs(v), std::abs(tmpl[centre]) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Registers, PulseRegisterProperty,
                         ::testing::Values(0x93, 0xA0, 0xB4, 0xC8, 0xD0, 0xE6,
                                           0xF0, 0xFF));

// --- detector: localisation accuracy across positions and amplitudes --------

class DetectorSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DetectorSweep, SinglePulseWithinEighthTap) {
  const auto [position_taps, amplitude] = GetParam();
  dw::CirParams params;
  params.noise_sigma = 0.003;
  Rng rng(static_cast<std::uint64_t>(position_taps * 100.0) +
          static_cast<std::uint64_t>(amplitude * 1000.0));
  dw::CirArrival a;
  a.time_into_window_s = position_taps * k::cir_ts_s;
  a.amplitude = rng.random_phase() * amplitude;
  const auto cir = dw::synthesize_cir({a}, params, rng);
  ranging::SearchSubtractDetector det{ranging::DetectorConfig{}};
  const auto found = det.detect(cir.taps, cir.ts_s, 1);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NEAR(found[0].tau_s / k::cir_ts_s, position_taps, 0.15);
  EXPECT_NEAR(std::abs(found[0].amplitude), amplitude, 0.1 * amplitude + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    PositionsAmplitudes, DetectorSweep,
    ::testing::Combine(::testing::Values(70.0, 100.3, 256.77, 500.5, 900.25),
                       ::testing::Values(0.08, 0.3, 0.9)));

// --- two-pulse resolution sweep ---------------------------------------------

class ResolutionSweep : public ::testing::TestWithParam<double> {};

TEST_P(ResolutionSweep, ResolvesSeparationsDownToOneTap) {
  const double sep = GetParam();
  dw::CirParams params;
  params.noise_sigma = 0.003;
  Rng rng(static_cast<std::uint64_t>(sep * 10) + 5);
  dw::CirArrival a, b;
  a.time_into_window_s = 120.0 * k::cir_ts_s;
  a.amplitude = {0.5, 0.0};
  b.time_into_window_s = (120.0 + sep) * k::cir_ts_s;
  b.amplitude = {0.4, 0.1};
  const auto cir = dw::synthesize_cir({a, b}, params, rng);
  ranging::SearchSubtractDetector det{ranging::DetectorConfig{}};
  const auto found = det.detect(cir.taps, cir.ts_s, 2);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_NEAR(found[1].tau_s / k::cir_ts_s - found[0].tau_s / k::cir_ts_s, sep,
              0.5);
}

INSTANTIATE_TEST_SUITE_P(Separations, ResolutionSweep,
                         ::testing::Values(1.0, 1.5, 2.0, 3.0, 5.0, 10.0,
                                           50.0, 300.0));

// --- classification across shape pairs ---------------------------------------

class ShapePairSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ShapePairSweep, TwoShapesClassified) {
  const auto [i, j] = GetParam();
  const std::vector<std::uint8_t> bank{0x93, 0xC8, 0xE6};
  dw::CirParams params;
  params.noise_sigma = 0.003;
  Rng rng(static_cast<std::uint64_t>(i * 10 + j));
  dw::CirArrival a, b;
  a.time_into_window_s = 100.0 * k::cir_ts_s;
  a.amplitude = {0.4, 0.0};
  a.tc_pgdelay = bank[static_cast<std::size_t>(i)];
  b.time_into_window_s = 300.0 * k::cir_ts_s;
  b.amplitude = {0.25, 0.1};
  b.tc_pgdelay = bank[static_cast<std::size_t>(j)];
  const auto cir = dw::synthesize_cir({a, b}, params, rng);
  ranging::DetectorConfig cfg;
  cfg.shape_registers = bank;
  ranging::SearchSubtractDetector det{cfg};
  const auto found = det.detect(cir.taps, cir.ts_s, 2);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].shape_index, i);
  EXPECT_EQ(found[1].shape_index, j);
}

INSTANTIATE_TEST_SUITE_P(Pairs, ShapePairSweep,
                         ::testing::Values(std::make_tuple(0, 1),
                                           std::make_tuple(0, 2),
                                           std::make_tuple(1, 0),
                                           std::make_tuple(1, 2),
                                           std::make_tuple(2, 0),
                                           std::make_tuple(2, 1),
                                           std::make_tuple(0, 0),
                                           std::make_tuple(2, 2)));

// --- slot assignment bijectivity across configurations ----------------------

class SlotConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SlotConfigSweep, AssignmentRoundTrips) {
  const auto [slots, shapes] = GetParam();
  ranging::ConcurrentRangingConfig cfg;
  cfg.num_slots = slots;
  cfg.slot_spacing_s = slots > 1 ? 150e-9 : 0.0;
  const std::vector<std::uint8_t> all{0x93, 0xC8, 0xE6};
  cfg.shape_registers.assign(all.begin(), all.begin() + shapes);
  for (int id = 0; id < cfg.max_responders(); ++id) {
    const auto a = ranging::assign_responder(id, cfg);
    EXPECT_EQ(ranging::responder_id_from(a.slot, a.shape_index, cfg), id);
    EXPECT_GE(a.slot, 0);
    EXPECT_LT(a.slot, slots);
    EXPECT_NEAR(a.extra_delay_s,
                slots > 1 ? a.slot * cfg.slot_spacing_s : 0.0, 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SlotShapeGrid, SlotConfigSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 15),
                       ::testing::Values(1, 2, 3)));

// --- clock model: invertibility across offsets and drifts -------------------

class ClockSweep : public ::testing::TestWithParam<std::tuple<double, double>> {
};

TEST_P(ClockSweep, GlobalTimeOfInverts) {
  const auto [epoch_s, ppm] = GetParam();
  const dw::ClockModel clock(SimTime::from_seconds(epoch_s), ppm);
  const SimTime now = SimTime::from_seconds(3.25);
  for (const double ahead_s : {1e-6, 290e-6, 0.01, 1.0}) {
    const dw::DwTimestamp target =
        clock.device_time(now).plus_seconds(Seconds(ahead_s));
    const SimTime when = clock.global_time_of(target, now);
    EXPECT_NEAR(clock.device_time(when).diff_seconds(target).value(), 0.0,
                2.0 * k::dw_tick_s)
        << "epoch " << epoch_s << " ppm " << ppm << " ahead " << ahead_s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OffsetsAndDrifts, ClockSweep,
    ::testing::Combine(::testing::Values(0.0, 1.2345, 16.9),
                       ::testing::Values(-20.0, -2.0, 0.0, 2.0, 20.0)));

// --- Monte-Carlo sweeps on the parallel runner -------------------------------
// The parameterised sweeps above check a handful of handpicked draws; these
// sample the parameter space randomly over many trials on the Monte-Carlo
// engine and assert the aggregate. Trials only record — all assertions run
// on the main thread after the pool drains (gtest assertions are not
// thread-safe inside workers).

TEST(RunnerSweep, DetectorLocalisesRandomPulsesInAggregate) {
  runner::MonteCarlo::Config cfg;
  cfg.base_seed = 3101;
  const auto result = runner::MonteCarlo(cfg).run(
      48, [](const runner::TrialContext& ctx, runner::TrialRecorder& rec) {
        Rng rng(ctx.seed);
        const double position_taps = rng.uniform(70.0, 900.0);
        const double amplitude = rng.uniform(0.1, 0.9);
        dw::CirParams params;
        params.noise_sigma = 0.003;
        dw::CirArrival a;
        a.time_into_window_s = position_taps * k::cir_ts_s;
        a.amplitude = rng.random_phase() * amplitude;
        const auto cir = dw::synthesize_cir({a}, params, rng);
        ranging::SearchSubtractDetector det{ranging::DetectorConfig{}};
        const auto found = det.detect(cir.taps, cir.ts_s, 1);
        if (found.size() != 1) return;
        rec.count("found");
        rec.sample("tau_err_taps",
                   found[0].tau_s / k::cir_ts_s - position_taps);
        rec.sample("amp_rel_err",
                   (std::abs(found[0].amplitude) - amplitude) / amplitude);
      });
  EXPECT_EQ(result.counter("found"), 48);
  const auto tau = result.summary("tau_err_taps");
  EXPECT_LT(std::abs(tau.mean), 0.05);
  EXPECT_LT(tau.max, 0.2);
  EXPECT_GT(tau.min, -0.2);
  const auto amp = result.summary("amp_rel_err");
  EXPECT_LT(std::abs(amp.mean), 0.1);
}

TEST(RunnerSweep, TwoPulseResolutionHoldsOverRandomSeparations) {
  runner::MonteCarlo::Config cfg;
  cfg.base_seed = 3102;
  const auto result = runner::MonteCarlo(cfg).run(
      32, [](const runner::TrialContext& ctx, runner::TrialRecorder& rec) {
        Rng rng(ctx.seed);
        const double sep = rng.uniform(1.5, 60.0);
        dw::CirParams params;
        params.noise_sigma = 0.003;
        dw::CirArrival a, b;
        a.time_into_window_s = 120.0 * k::cir_ts_s;
        a.amplitude = {0.5, 0.0};
        b.time_into_window_s = (120.0 + sep) * k::cir_ts_s;
        b.amplitude = {0.4, 0.1};
        const auto cir = dw::synthesize_cir({a, b}, params, rng);
        ranging::SearchSubtractDetector det{ranging::DetectorConfig{}};
        const auto found = det.detect(cir.taps, cir.ts_s, 2);
        if (found.size() != 2) return;
        rec.count("resolved");
        rec.sample("sep_err_taps",
                   (found[1].tau_s - found[0].tau_s) / k::cir_ts_s - sep);
      });
  EXPECT_EQ(result.counter("resolved"), 32);
  const auto s = result.summary("sep_err_taps");
  EXPECT_LT(std::abs(s.mean), 0.2);
  EXPECT_LT(s.max, 0.5);
  EXPECT_GT(s.min, -0.5);
}

TEST(RunnerSweep, SweepIsScheduleIndependent) {
  // Same sweep at 1 and 4 workers: the runner contract says every sample
  // comes back bit-identical regardless of scheduling.
  const auto sweep = [](int threads) {
    runner::MonteCarlo::Config cfg;
    cfg.threads = threads;
    cfg.base_seed = 3103;
    return runner::MonteCarlo(cfg).run(
        24, [](const runner::TrialContext& ctx, runner::TrialRecorder& rec) {
          Rng rng(ctx.seed);
          dw::CirParams params;
          params.noise_sigma = 0.005;
          dw::CirArrival a;
          a.time_into_window_s = rng.uniform(80.0, 800.0) * k::cir_ts_s;
          a.amplitude = rng.random_phase() * 0.5;
          const auto cir = dw::synthesize_cir({a}, params, rng);
          ranging::SearchSubtractDetector det{ranging::DetectorConfig{}};
          const auto found = det.detect(cir.taps, cir.ts_s, 1);
          if (!found.empty()) rec.sample("tau_s", found[0].tau_s);
        });
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  const RVec& xs = serial.samples("tau_s");
  const RVec& ys = parallel.samples("tau_s");
  ASSERT_EQ(xs.size(), ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_EQ(xs[i], ys[i]);
}

}  // namespace
}  // namespace uwb
