// Integration tests: network-wide concurrent ranging (all-pairs sweep).
#include <gtest/gtest.h>

#include <cmath>

#include "common/expects.hpp"
#include "ranging/network.hpp"

namespace uwb::ranging {
namespace {

NetworkConfig small_network(std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.room = geom::Room::rectangular(16.0, 10.0, 10.0);
  cfg.node_positions = {{2.0, 2.0}, {13.0, 2.5}, {12.5, 8.0}, {3.0, 7.5}};
  cfg.ranging.num_slots = 4;
  cfg.ranging.slot_spacing_s = 150e-9;
  cfg.seed = seed;
  return cfg;
}

TEST(NetworkTest, SingleRoundMeasuresAllNeighbours) {
  NetworkRangingSession session(small_network(1));
  const NetworkRound round = session.run_round(0);
  ASSERT_TRUE(round.completed);
  EXPECT_EQ(round.frames_in_batch, 3);
  EXPECT_FALSE(round.distances[0].has_value());  // no self-distance
  for (int j = 1; j < 4; ++j) {
    ASSERT_TRUE(round.distances[static_cast<std::size_t>(j)].has_value())
        << "node " << j;
    EXPECT_NEAR(*round.distances[static_cast<std::size_t>(j)],
                session.true_distance(0, j).value(), 0.9);
  }
}

TEST(NetworkTest, EveryNodeCanInitiate) {
  NetworkRangingSession session(small_network(2));
  for (int i = 0; i < session.node_count(); ++i) {
    const NetworkRound round = session.run_round(i);
    EXPECT_TRUE(round.completed) << "initiator " << i;
    EXPECT_EQ(round.initiator, i);
  }
}

TEST(NetworkTest, FullSweepFillsMatrix) {
  NetworkRangingSession session(small_network(3));
  const NetworkSweep sweep = session.run_full_sweep();
  EXPECT_EQ(sweep.completed_rounds, 4);
  int filled = 0;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) {
      if (i == j) {
        EXPECT_FALSE(sweep.matrix[static_cast<std::size_t>(i)]
                                 [static_cast<std::size_t>(j)]
                                     .has_value());
        continue;
      }
      const auto& d = sweep.matrix[static_cast<std::size_t>(i)]
                                  [static_cast<std::size_t>(j)];
      if (d.has_value()) {
        ++filled;
        EXPECT_NEAR(*d, session.true_distance(i, j).value(), 1.0);
      }
    }
  EXPECT_GE(filled, 10);  // at least 10 of the 12 directed pairs
}

TEST(NetworkTest, SweepTracksEnergyAndTime) {
  NetworkRangingSession session(small_network(4));
  const NetworkSweep sweep = session.run_full_sweep();
  EXPECT_GT(sweep.total_energy_j, 0.0);
  // 4 rounds of ~600 us (plus idle gaps) — well under 0.1 s, and at least
  // 4 response delays long.
  EXPECT_GT(sweep.duration_s, 4 * 290e-6);
  EXPECT_LT(sweep.duration_s, 0.1);
  // Each node transmitted once as initiator and three times as responder.
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(session.node(i).energy().tx_count(), 4);
}

TEST(NetworkTest, ReciprocalDistancesAgree) {
  NetworkRangingSession session(small_network(5));
  const NetworkSweep sweep = session.run_full_sweep();
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j) {
      const auto& a = sweep.matrix[static_cast<std::size_t>(i)]
                                  [static_cast<std::size_t>(j)];
      const auto& b = sweep.matrix[static_cast<std::size_t>(j)]
                                  [static_cast<std::size_t>(i)];
      if (a.has_value() && b.has_value()) {
        EXPECT_NEAR(*a, *b, 1.5) << i << "," << j;
      }
    }
}

TEST(NetworkTest, TwoNodeNetworkIsPlainTwr) {
  NetworkConfig cfg;
  cfg.room = geom::Room::rectangular(16.0, 10.0, 10.0);
  cfg.node_positions = {{2.0, 5.0}, {10.0, 5.0}};
  cfg.seed = 6;
  NetworkRangingSession session(cfg);
  const NetworkRound round = session.run_round(0);
  ASSERT_TRUE(round.completed);
  ASSERT_TRUE(round.distances[1].has_value());
  EXPECT_NEAR(*round.distances[1], 8.0, 0.1);
}

TEST(NetworkTest, CapacityBoundEnforced) {
  NetworkConfig cfg;
  cfg.node_positions.assign(14, geom::Vec2{1.0, 1.0});  // 13 responders
  cfg.ranging.num_slots = 4;
  cfg.ranging.slot_spacing_s = 150e-9;
  cfg.ranging.shape_registers = {0x93, 0xC8, 0xE6};  // capacity 12
  EXPECT_THROW(NetworkRangingSession{cfg}, PreconditionError);
}

TEST(NetworkTest, InvalidInitiatorIndexThrows) {
  NetworkRangingSession session(small_network(7));
  EXPECT_THROW(session.run_round(-1), PreconditionError);
  EXPECT_THROW(session.run_round(4), PreconditionError);
}

}  // namespace
}  // namespace uwb::ranging
