// Unit tests: Medium propagation details and the detector trace API.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "common/constants.hpp"
#include "dw1000/cir.hpp"
#include "ranging/search_subtract.hpp"
#include "sim/medium.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace uwb::sim {
namespace {

struct Bench {
  Simulator sim;
  std::unique_ptr<Medium> medium;

  explicit Bench(double detect_amp = 0.02, std::uint64_t seed = 1,
                 geom::Room room = geom::Room::rectangular(100.0, 50.0, 10.0),
                 channel::ChannelModelParams ch = {}) {
    MediumParams mp;
    mp.detection_threshold_amp = detect_amp;
    medium = std::make_unique<Medium>(
        sim, channel::ChannelModel(std::move(room), ch), mp, Rng(seed));
  }
};

NodeConfig node_cfg(int id, geom::Vec2 pos) {
  NodeConfig nc;
  nc.id = id;
  nc.position = pos;
  return nc;
}

TEST(MediumTest, PropagationDelayMatchesDistance) {
  Bench bench;
  channel::ChannelModelParams ch;
  Node tx(bench.sim, *bench.medium, node_cfg(0, {10.0, 25.0}), Rng(2));
  Node rx(bench.sim, *bench.medium, node_cfg(1, {40.0, 25.0}), Rng(3));
  std::optional<RxResult> got;
  rx.set_rx_handler([&](const RxResult& r) { got = r; });
  rx.enter_rx();
  dw::MacFrame f;
  f.type = dw::FrameType::Init;
  SimTime tx_time;
  bench.sim.after(SimTime::from_micros(5.0), [&] {
    tx_time = bench.sim.now();
    tx.transmit_now(f);
  });
  bench.sim.run();
  ASSERT_TRUE(got.has_value());
  // Completion = frame end arrival + processing margin; frame end is the
  // TX start + air time + propagation (30 m ~= 100 ns).
  const double airtime = rx.phy().frame_duration_s(f.payload_bytes());
  const double expected_completion =
      tx_time.seconds() + airtime + 30.0 / k::c_air;
  EXPECT_NEAR(got->completed_at.seconds(), expected_completion, 3e-6);
}

TEST(MediumTest, HighThresholdDropsWeakFrames) {
  // With an absurd detection threshold nothing is ever delivered.
  Bench bench(/*detect_amp=*/10.0);
  Node tx(bench.sim, *bench.medium, node_cfg(0, {10.0, 25.0}), Rng(2));
  Node rx(bench.sim, *bench.medium, node_cfg(1, {12.0, 25.0}), Rng(3));
  std::optional<RxResult> got;
  rx.set_rx_handler([&](const RxResult& r) { got = r; });
  rx.enter_rx();
  dw::MacFrame f;
  bench.sim.after(SimTime::from_micros(5.0), [&] { tx.transmit_now(f); });
  bench.sim.run();
  EXPECT_FALSE(got.has_value());
  rx.exit_rx();
}

TEST(MediumTest, ChannelRedrawnPerFrame) {
  // Two consecutive receptions draw fresh fading: the CIRs differ.
  Bench bench(0.02, 7);
  Node tx(bench.sim, *bench.medium, node_cfg(0, {10.0, 25.0}), Rng(2));
  Node rx(bench.sim, *bench.medium, node_cfg(1, {20.0, 25.0}), Rng(3));
  std::vector<CVec> cirs;
  rx.set_rx_handler([&](const RxResult& r) { cirs.push_back(r.cir.taps); });
  dw::MacFrame f;
  for (int i = 0; i < 2; ++i) {
    bench.sim.after(SimTime::from_micros(5.0), [&] {
      rx.enter_rx();
    });
    bench.sim.after(SimTime::from_micros(10.0), [&] { tx.transmit_now(f); });
    bench.sim.run();
  }
  ASSERT_EQ(cirs.size(), 2u);
  double diff = 0.0;
  for (std::size_t i = 0; i < cirs[0].size(); ++i)
    diff += std::abs(cirs[0][i] - cirs[1][i]);
  EXPECT_GT(diff, 0.1);
}

TEST(MediumTest, ObstructedDirectPathLocksToReflection) {
  // Bury the direct path: the receiver's first detectable path is a wall
  // reflection, so the reported ToF is biased long.
  geom::Room room = geom::Room::rectangular(30.0, 10.0, 3.0);
  room.add_obstacle({{{15.0, 4.0}, {15.0, 6.0}}, 40.0, "vault door"});
  channel::ChannelModelParams ch;
  ch.specular_fading_db = 0.0;
  ch.enable_diffuse = false;
  Bench bench(0.02, 9, room, ch);
  Node tx(bench.sim, *bench.medium, node_cfg(0, {10.0, 5.0}), Rng(2));
  Node rx(bench.sim, *bench.medium, node_cfg(1, {20.0, 5.0}), Rng(3));
  std::optional<RxResult> got;
  rx.set_rx_handler([&](const RxResult& r) { got = r; });
  rx.enter_rx();
  dw::MacFrame f;
  dw::DwTimestamp tx_ts;
  bench.sim.after(SimTime::from_micros(5.0), [&] { tx_ts = tx.transmit_now(f); });
  bench.sim.run();
  ASSERT_TRUE(got.has_value());
  const double tof = got->rx_timestamp.diff_seconds(tx_ts).value();
  // Direct path is 10 m; the shortest reflection is noticeably longer.
  EXPECT_GT(tof, 10.5 / k::c_air);
}

TEST(DetectorTraceTest, TraceMatchesDetect) {
  dw::CirParams params;
  params.noise_sigma = 0.004;
  Rng rng(11);
  std::vector<dw::CirArrival> arrivals;
  for (int i = 0; i < 3; ++i) {
    dw::CirArrival a;
    a.time_into_window_s = (80.0 + 60.0 * i) * k::cir_ts_s;
    a.amplitude = {0.4 - 0.1 * i, 0.0};
    arrivals.push_back(a);
  }
  const auto cir = dw::synthesize_cir(arrivals, params, rng);
  ranging::SearchSubtractDetector det{ranging::DetectorConfig{}};
  const auto plain = det.detect(cir.taps, cir.ts_s, 3);
  const auto trace = det.detect_with_trace(cir.taps, cir.ts_s, 3);
  ASSERT_EQ(plain.size(), trace.responses.size());
  for (std::size_t i = 0; i < plain.size(); ++i)
    EXPECT_DOUBLE_EQ(plain[i].tau_s, trace.responses[i].tau_s);
  // One matched-filter snapshot per accepted iteration (or one more if the
  // stop check rejected a candidate after recording it).
  EXPECT_GE(trace.mf_outputs.size(), plain.size());
  EXPECT_LE(trace.mf_outputs.size(), plain.size() + 1);
  EXPECT_GT(trace.ts_up, 0.0);
  // Successive residual peaks are non-increasing.
  double prev_peak = 1e9;
  for (const auto& y : trace.mf_outputs) {
    double peak = 0.0;
    for (const auto& v : y) peak = std::max(peak, std::abs(v));
    EXPECT_LE(peak, prev_peak + 1e-9);
    prev_peak = peak;
  }
}

}  // namespace
}  // namespace uwb::sim
