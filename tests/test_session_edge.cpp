// Edge-case integration tests: 40-bit counter wrap during a round, PRF 16
// configurations, data-rate variants, out-of-range responders, and failure
// injection.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "ranging/session.hpp"
#include "ranging/twr.hpp"

namespace uwb::ranging {
namespace {

ScenarioConfig base_scenario(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.room = geom::Room::rectangular(30.0, 10.0, 12.0);
  cfg.initiator_position = {2.0, 5.0};
  cfg.seed = seed;
  return cfg;
}

TEST(SessionEdgeTest, ManyRoundsSurviveCounterWrap) {
  // The 40-bit counter wraps every ~17.2 s. Rounds advance simulated time;
  // with clock epochs drawn in [0, 17 s), a long-running scenario crosses
  // wraps on several nodes. Accuracy must be unaffected.
  ScenarioConfig cfg = base_scenario(41);
  cfg.responders = {{0, {8.0, 5.0}}};
  ConcurrentRangingScenario scenario(cfg);
  int good = 0, rounds = 0;
  for (int t = 0; t < 60; ++t) {
    // Skip simulated time forward so device counters sweep their range.
    scenario.simulator().run_until(scenario.simulator().now() +
                                   SimTime::from_seconds(0.4));
    const auto out = scenario.run_round();
    if (!out.payload_decoded) continue;
    ++rounds;
    if (std::abs(out.d_twr_m - 6.0) < 0.15) ++good;
  }
  // 60 rounds over ~24 s of simulated time: > one full wrap per node.
  EXPECT_GE(rounds, 58);
  EXPECT_EQ(good, rounds);
}

TEST(SessionEdgeTest, Prf16Configuration) {
  ScenarioConfig cfg = base_scenario(42);
  cfg.phy.prf = dw::Prf::Mhz16;
  cfg.cir.length = k::cir_len_prf16;
  cfg.responders = {{0, {6.0, 5.0}}, {1, {11.0, 5.0}}};
  ConcurrentRangingScenario scenario(cfg);
  const auto out = scenario.run_round();
  ASSERT_TRUE(out.payload_decoded);
  EXPECT_EQ(out.cir.taps.size(), static_cast<std::size_t>(k::cir_len_prf16));
  ASSERT_EQ(out.estimates.size(), 2u);
  EXPECT_NEAR(out.estimates[0].distance_m, 4.0, 0.2);
  EXPECT_NEAR(out.estimates[1].distance_m, 9.0, 0.8);
}

TEST(SessionEdgeTest, DataRate850k) {
  // Slower data rate stretches the frames; the protocol must still work
  // with a correspondingly larger response delay.
  ScenarioConfig cfg = base_scenario(43);
  cfg.phy.rate = dw::DataRate::k850;
  dw::MacFrame init;
  init.type = dw::FrameType::Init;
  cfg.ranging.response_delay_s =
      dw::min_response_delay_s(cfg.phy, init.payload_bytes()) + 150e-6;
  cfg.responders = {{0, {7.0, 5.0}}};
  ConcurrentRangingScenario scenario(cfg);
  const auto out = scenario.run_round();
  ASSERT_TRUE(out.payload_decoded);
  EXPECT_NEAR(out.d_twr_m, 5.0, 0.15);
}

TEST(SessionEdgeTest, LongPreambleConfiguration) {
  ScenarioConfig cfg = base_scenario(44);
  cfg.phy.preamble_symbols = 1024;
  dw::MacFrame init;
  init.type = dw::FrameType::Init;
  cfg.ranging.response_delay_s =
      dw::min_response_delay_s(cfg.phy, init.payload_bytes()) + 150e-6;
  cfg.responders = {{0, {5.0, 5.0}}};
  ConcurrentRangingScenario scenario(cfg);
  const auto out = scenario.run_round();
  ASSERT_TRUE(out.payload_decoded);
  EXPECT_NEAR(out.d_twr_m, 3.0, 0.15);
}

TEST(SessionEdgeTest, TooShortResponseDelayAbortsLate) {
  // A response delay below the minimum makes the responder's delayed TX
  // start before the INIT has even finished arriving — the radio raises
  // HPDWARN and aborts the TX (runtime condition, not a precondition), so
  // the round degrades instead of the process aborting.
  ScenarioConfig cfg = base_scenario(45);
  cfg.ranging.response_delay_s = 100e-6;  // < 178.5 us minimum
  cfg.responders = {{0, {6.0, 5.0}}};
  ConcurrentRangingScenario scenario(cfg);
  const auto out = scenario.run_round();
  EXPECT_FALSE(out.payload_decoded);
  ASSERT_EQ(out.responder_reports.size(), 1u);
  EXPECT_EQ(out.responder_reports[0].status, RangingStatus::kLateTxAbort);
}

TEST(SessionEdgeTest, OutOfRangeResponderSilent) {
  // One responder is far beyond the detection threshold: the round still
  // completes with the remaining responder.
  ScenarioConfig cfg = base_scenario(46);
  cfg.room = geom::Room::rectangular(3000.0, 10.0, 12.0);
  cfg.responders = {{0, {8.0, 5.0}}, {1, {2900.0, 5.0}}};
  ConcurrentRangingScenario scenario(cfg);
  const auto out = scenario.run_round();
  ASSERT_TRUE(out.payload_decoded);
  EXPECT_EQ(out.frames_in_batch, 1);
  EXPECT_NEAR(out.d_twr_m, 6.0, 0.2);
  // The far responder never responded (it missed the INIT).
  EXPECT_EQ(out.truths.size(), 1u);
}

TEST(SessionEdgeTest, AllRespondersOutOfRange) {
  ScenarioConfig cfg = base_scenario(47);
  cfg.room = geom::Room::rectangular(5000.0, 10.0, 12.0);
  cfg.responders = {{0, {4500.0, 5.0}}};
  ConcurrentRangingScenario scenario(cfg);
  const auto out = scenario.run_round();
  EXPECT_FALSE(out.completed);
  EXPECT_FALSE(out.payload_decoded);
  EXPECT_TRUE(out.estimates.empty());
}

TEST(SessionEdgeTest, PowerImbalancedRespondersBothRanged) {
  // A ~12 dB power imbalance (5 m vs 23 m): the payload decodes from the
  // near responder and the weak far response is still extracted from the
  // CIR — amplitude-independent detection at work.
  ScenarioConfig cfg = base_scenario(48);
  cfg.responders = {{0, {7.0, 5.0}}, {1, {25.0, 5.0}}};
  cfg.detect_max_responses = 4;
  ConcurrentRangingScenario scenario(cfg);
  const auto out = scenario.run_round();
  ASSERT_TRUE(out.payload_decoded);
  EXPECT_EQ(out.sync_responder_id, 0);
  bool far_found = false;
  for (const auto& est : out.estimates)
    if (std::abs(est.distance_m - 23.0) < 1.2) far_found = true;
  EXPECT_TRUE(far_found);
}

TEST(SessionEdgeTest, UncalibratedAntennaDelayBiasesAndIsCorrectable) {
  // Uncalibrated 100 ns antenna delays inflate every SS-TWR distance by
  // ~c * 100 ns ~= 30 m; the APS014-style commissioning recovers the delay
  // from a known-distance link and the correction restores accuracy.
  ScenarioConfig cfg = base_scenario(51);
  cfg.antenna_delay = Seconds(100e-9);
  cfg.responders = {{0, {7.0, 5.0}}};  // true distance 5 m
  ConcurrentRangingScenario scenario(cfg);
  const auto out = scenario.run_round();
  ASSERT_TRUE(out.payload_decoded);
  EXPECT_NEAR(out.d_twr_m, 5.0 + 299'702'547.0 * 100e-9, 0.2);
  // Commission against the known 5 m link, then correct.
  const Seconds delay = estimate_antenna_delay(Meters(out.d_twr_m), Meters(5.0));
  EXPECT_NEAR(delay.value(), 100e-9, 1e-9);
  EXPECT_NEAR(correct_antenna_delay(Meters(out.d_twr_m), delay, delay).value(), 5.0,
              0.05);
}

TEST(SessionEdgeTest, SameSeedSameOutcomeAcrossConfigCopies) {
  ScenarioConfig cfg = base_scenario(49);
  cfg.responders = {{0, {9.0, 5.0}}};
  ConcurrentRangingScenario a(cfg);
  ConcurrentRangingScenario b(cfg);
  EXPECT_DOUBLE_EQ(a.run_round().d_twr_m, b.run_round().d_twr_m);
}

TEST(SessionEdgeTest, MovingInitiatorBetweenRounds) {
  ScenarioConfig cfg = base_scenario(50);
  cfg.responders = {{0, {10.0, 5.0}}};
  ConcurrentRangingScenario scenario(cfg);
  const auto first = scenario.run_round();
  ASSERT_TRUE(first.payload_decoded);
  EXPECT_NEAR(first.d_twr_m, 8.0, 0.2);
  scenario.set_initiator_position({6.0, 5.0});
  EXPECT_DOUBLE_EQ(scenario.true_distance(0).value(), 4.0);
  const auto second = scenario.run_round();
  ASSERT_TRUE(second.payload_decoded);
  EXPECT_NEAR(second.d_twr_m, 4.0, 0.2);
}

}  // namespace
}  // namespace uwb::ranging
