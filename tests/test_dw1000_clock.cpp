// Unit tests: 40-bit device timestamps, wrap arithmetic, delayed-TX
// truncation, and the per-node clock model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "dw1000/clock.hpp"

namespace uwb::dw {
namespace {

TEST(DwTimestampTest, MasksTo40Bits) {
  const DwTimestamp t(std::uint64_t{1} << 41 | 123);
  EXPECT_EQ(t.ticks(), 123u);
}

TEST(DwTimestampTest, SecondsConversion) {
  const DwTimestamp t(63'897'600'000ULL);  // exactly 1 s of ticks
  EXPECT_NEAR(t.seconds().value(), 1.0, 1e-12);
}

TEST(DwTimestampTest, DiffSimple) {
  const DwTimestamp a(1000), b(400);
  EXPECT_EQ(a.diff_ticks(b).count(), 600);
  EXPECT_EQ(b.diff_ticks(a).count(), -600);
  EXPECT_EQ(a.diff_ticks(a).count(), 0);
}

TEST(DwTimestampTest, DiffAcrossWrap) {
  // b shortly before the wrap, a shortly after: the difference must be the
  // short way around (this is the ~17.2 s rollover the DW1000 user manual
  // warns about).
  const std::uint64_t wrap = std::uint64_t{1} << 40;
  const DwTimestamp b(wrap - 100);
  const DwTimestamp a(50);
  EXPECT_EQ(a.diff_ticks(b).count(), 150);
  EXPECT_EQ(b.diff_ticks(a).count(), -150);
}

TEST(DwTimestampTest, DiffSecondsAcrossWrap) {
  const std::uint64_t wrap = std::uint64_t{1} << 40;
  const DwTimestamp before(wrap - 1'000'000);
  const DwTimestamp after = before.plus_seconds(Seconds(290e-6));
  EXPECT_NEAR(after.diff_seconds(before).value(), 290e-6, 1e-9);
}

TEST(DwTimestampTest, PlusTicksWraps) {
  const std::uint64_t wrap = std::uint64_t{1} << 40;
  const DwTimestamp t(wrap - 10);
  EXPECT_EQ(t.plus_ticks(DwTicks(20)).ticks(), 10u);
  EXPECT_EQ(DwTimestamp(5).plus_ticks(DwTicks(-10)).ticks(), wrap - 5);
}

TEST(DwTimestampTest, PlusSecondsRoundTrips) {
  const DwTimestamp t(123456789);
  const DwTimestamp u = t.plus_seconds(Seconds(1e-3));
  EXPECT_NEAR(u.diff_seconds(t).value(), 1e-3, 1e-10);
}

TEST(DelayedTxTest, TruncatesLow9Bits) {
  const DwTimestamp target(0x123456789AULL);
  const DwTimestamp q = quantize_delayed_tx(target);
  EXPECT_EQ(q.ticks() & 0x1FF, 0u);
  EXPECT_LE(q.ticks(), target.ticks());
  EXPECT_LT(target.ticks() - q.ticks(), 512u);
}

TEST(DelayedTxTest, AlreadyAlignedUnchanged) {
  const DwTimestamp target(512 * 1000);
  EXPECT_EQ(quantize_delayed_tx(target), target);
}

TEST(DelayedTxTest, GranularityIsAbout8ns) {
  // Paper Sect. III: "limiting the transmission timestamp resolution to
  // approximately 8 ns".
  EXPECT_NEAR(delayed_tx_granularity().value(), 8.013e-9, 0.01e-9);
}

TEST(ClockModelTest, ZeroOffsetZeroDrift) {
  const ClockModel clock;
  const DwTimestamp t = clock.device_time(SimTime::from_seconds(1.0));
  EXPECT_NEAR(t.seconds().value(), 1.0, 1e-9);
}

TEST(ClockModelTest, EpochOffsetShiftsCounter) {
  const ClockModel clock(SimTime::from_seconds(2.0), 0.0);
  const DwTimestamp t = clock.device_time(SimTime::from_seconds(1.0));
  EXPECT_NEAR(t.seconds().value(), 3.0, 1e-9);
}

TEST(ClockModelTest, DriftScalesElapsedTime) {
  const ClockModel fast(SimTime(), +10.0);  // +10 ppm
  const DwTimestamp a = fast.device_time(SimTime::from_seconds(0.0));
  const DwTimestamp b = fast.device_time(SimTime::from_seconds(1.0));
  EXPECT_NEAR(b.diff_seconds(a).value(), 1.0 + 10e-6, 1e-9);
}

TEST(ClockModelTest, GlobalTimeOfInvertsDeviceTime) {
  const ClockModel clock(SimTime::from_seconds(0.5), -3.0);
  const SimTime now = SimTime::from_seconds(10.0);
  const DwTimestamp target = clock.device_time(now).plus_seconds(Seconds(290e-6));
  const SimTime when = clock.global_time_of(target, now);
  // At `when`, the device counter reads `target` (within a tick).
  EXPECT_NEAR(clock.device_time(when).diff_seconds(target).value(), 0.0,
              2 * k::dw_tick_s);
  EXPECT_NEAR((when - now).seconds(), 290e-6, 1e-9);
}

TEST(ClockModelTest, GlobalTimeOfAcrossWrap) {
  const ClockModel clock;
  // Pick a global time whose device counter sits just before the wrap.
  const double wrap_s = (std::uint64_t{1} << 40) * k::dw_tick_s;
  const SimTime now = SimTime::from_seconds(wrap_s - 100e-6);
  const DwTimestamp target = clock.device_time(now).plus_seconds(Seconds(290e-6));
  const SimTime when = clock.global_time_of(target, now);
  EXPECT_NEAR((when - now).seconds(), 290e-6, 1e-9);
}

TEST(ClockModelTest, TwoClocksDisagreeConsistently) {
  const ClockModel a(SimTime::from_seconds(1.0), +5.0);
  const ClockModel b(SimTime::from_seconds(7.0), -5.0);
  const SimTime t = SimTime::from_seconds(3.0);
  // Device times differ, but each inverts its own mapping.
  EXPECT_NE(a.device_time(t).ticks(), b.device_time(t).ticks());
  const DwTimestamp target_a = a.device_time(t).plus_seconds(Seconds(1e-3));
  EXPECT_NEAR((a.global_time_of(target_a, t) - t).seconds(),
              1e-3 / (1.0 + 5e-6), 1e-10);
}

}  // namespace
}  // namespace uwb::dw
