// Unit tests: FFT (radix-2 + Bluestein) and FFT upsampling.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "common/random.hpp"
#include "dsp/fft.hpp"
#include "dsp/resample.hpp"

namespace uwb::dsp {
namespace {

CVec naive_dft(const CVec& x) {
  const std::size_t n = x.size();
  CVec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * j) /
                         static_cast<double>(n);
      acc += x[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

double max_err(const CVec& a, const CVec& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(FftTest, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(1016));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(1016), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
  EXPECT_THROW(next_pow2(0), PreconditionError);
}

TEST(FftTest, ImpulseHasFlatSpectrum) {
  CVec x(16, Complex{});
  x[0] = 1.0;
  const CVec spec = fft(x);
  for (const auto& v : spec) EXPECT_NEAR(std::abs(v - Complex(1.0, 0.0)), 0.0, 1e-12);
}

TEST(FftTest, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  CVec x(n);
  const int bin = 5;
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = 2.0 * std::numbers::pi * bin * static_cast<double>(i) / n;
    x[i] = Complex(std::cos(ang), std::sin(ang));
  }
  const CVec spec = fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == bin)
      EXPECT_NEAR(std::abs(spec[k]), static_cast<double>(n), 1e-9);
    else
      EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-9);
  }
}

class FftLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftLengthTest, MatchesNaiveDft) {
  Rng rng(GetParam());
  CVec x(GetParam());
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  EXPECT_LT(max_err(fft(x), naive_dft(x)), 1e-8 * static_cast<double>(x.size()));
}

TEST_P(FftLengthTest, RoundTrip) {
  Rng rng(GetParam() + 1000);
  CVec x(GetParam());
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  EXPECT_LT(max_err(ifft(fft(x)), x), 1e-9);
}

TEST_P(FftLengthTest, ParsevalHolds) {
  Rng rng(GetParam() + 2000);
  CVec x(GetParam());
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  double time_e = 0.0;
  for (const auto& v : x) time_e += std::norm(v);
  double freq_e = 0.0;
  for (const auto& v : fft(x)) freq_e += std::norm(v);
  EXPECT_NEAR(freq_e / static_cast<double>(x.size()), time_e, 1e-8 * time_e + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftLengthTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 31, 64, 100, 127,
                                           128, 254, 508,
                                           static_cast<std::size_t>(
                                               uwb::k::cir_len_prf64)));

TEST(FftTest, EmptyInputThrows) {
  EXPECT_THROW(fft(CVec{}), PreconditionError);
  EXPECT_THROW(ifft(CVec{}), PreconditionError);
}

TEST(FftTest, NonPow2InplaceThrows) {
  CVec x(12, Complex{1.0, 0.0});
  EXPECT_THROW(fft_pow2_inplace(x, false), PreconditionError);
}

TEST(UpsampleTest, FactorOneIsIdentity) {
  CVec x{{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  EXPECT_EQ(upsample_fft(x, 1), x);
}

TEST(UpsampleTest, PreservesOriginalSamples) {
  Rng rng(77);
  CVec x(50);
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  for (int factor : {2, 4, 8}) {
    const CVec y = upsample_fft(x, factor);
    ASSERT_EQ(y.size(), x.size() * static_cast<std::size_t>(factor));
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_LT(std::abs(y[i * factor] - x[i]), 1e-9)
          << "factor " << factor << " sample " << i;
  }
}

TEST(UpsampleTest, InterpolatesBandlimitedSignalExactly) {
  // A tone below Nyquist/2 must be reconstructed exactly at the new grid.
  const std::size_t n = 64;
  const int factor = 4;
  const int bin = 3;
  CVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = 2.0 * std::numbers::pi * bin * static_cast<double>(i) / n;
    x[i] = Complex(std::cos(ang), 0.0);
  }
  const CVec y = upsample_fft(x, factor);
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double t = static_cast<double>(i) / factor;
    const double expected = std::cos(2.0 * std::numbers::pi * bin * t / n);
    EXPECT_NEAR(y[i].real(), expected, 1e-9);
    EXPECT_NEAR(y[i].imag(), 0.0, 1e-9);
  }
}

TEST(UpsampleTest, RealInputStaysReal) {
  Rng rng(88);
  CVec x(uwb::k::cir_len_prf64);
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), 0.0};
  for (const auto& v : upsample_fft(x, 8)) EXPECT_NEAR(v.imag(), 0.0, 1e-9);
}

TEST(UpsampleTest, OddLengthWorks) {
  Rng rng(89);
  CVec x(33);
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  const CVec y = upsample_fft(x, 3);
  ASSERT_EQ(y.size(), 99u);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_LT(std::abs(y[i * 3] - x[i]), 1e-9);
}

TEST(UpsampleTest, InvalidArgsThrow) {
  EXPECT_THROW(upsample_fft(CVec{}, 2), PreconditionError);
  EXPECT_THROW(upsample_fft(CVec{{1, 0}}, 0), PreconditionError);
}

}  // namespace
}  // namespace uwb::dsp
