// Unit tests: FFT (radix-2 + Bluestein) and FFT upsampling.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "common/random.hpp"
#include "dsp/fft.hpp"
#include "dsp/resample.hpp"

namespace uwb::dsp {
namespace {

CVec naive_dft(const CVec& x) {
  const std::size_t n = x.size();
  CVec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc{};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * j) /
                         static_cast<double>(n);
      acc += x[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

double max_err(const CVec& a, const CVec& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(FftTest, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(1016));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(1016), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
  EXPECT_THROW(next_pow2(0), PreconditionError);
}

TEST(FftTest, ImpulseHasFlatSpectrum) {
  CVec x(16, Complex{});
  x[0] = 1.0;
  const CVec spec = fft(x);
  for (const auto& v : spec) EXPECT_NEAR(std::abs(v - Complex(1.0, 0.0)), 0.0, 1e-12);
}

TEST(FftTest, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  CVec x(n);
  const int bin = 5;
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = 2.0 * std::numbers::pi * bin * static_cast<double>(i) / n;
    x[i] = Complex(std::cos(ang), std::sin(ang));
  }
  const CVec spec = fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == bin)
      EXPECT_NEAR(std::abs(spec[k]), static_cast<double>(n), 1e-9);
    else
      EXPECT_NEAR(std::abs(spec[k]), 0.0, 1e-9);
  }
}

class FftLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftLengthTest, MatchesNaiveDft) {
  Rng rng(GetParam());
  CVec x(GetParam());
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  EXPECT_LT(max_err(fft(x), naive_dft(x)), 1e-8 * static_cast<double>(x.size()));
}

TEST_P(FftLengthTest, RoundTrip) {
  Rng rng(GetParam() + 1000);
  CVec x(GetParam());
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  EXPECT_LT(max_err(ifft(fft(x)), x), 1e-9);
}

TEST_P(FftLengthTest, ParsevalHolds) {
  Rng rng(GetParam() + 2000);
  CVec x(GetParam());
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  double time_e = 0.0;
  for (const auto& v : x) time_e += std::norm(v);
  double freq_e = 0.0;
  for (const auto& v : fft(x)) freq_e += std::norm(v);
  EXPECT_NEAR(freq_e / static_cast<double>(x.size()), time_e, 1e-8 * time_e + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftLengthTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 31, 64, 100, 127,
                                           128, 254, 508,
                                           static_cast<std::size_t>(
                                               uwb::k::cir_len_prf64)));

TEST(FftTest, EmptyInputThrows) {
  EXPECT_THROW(fft(CVec{}), PreconditionError);
  EXPECT_THROW(ifft(CVec{}), PreconditionError);
}

TEST(FftTest, NonPow2InplaceThrows) {
  CVec x(12, Complex{1.0, 0.0});
  EXPECT_THROW(fft_pow2_inplace(x, false), PreconditionError);
}

TEST(UpsampleTest, FactorOneIsIdentity) {
  CVec x{{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  EXPECT_EQ(upsample_fft(x, 1), x);
}

TEST(UpsampleTest, PreservesOriginalSamples) {
  Rng rng(77);
  CVec x(50);
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  for (int factor : {2, 4, 8}) {
    const CVec y = upsample_fft(x, factor);
    ASSERT_EQ(y.size(), x.size() * static_cast<std::size_t>(factor));
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_LT(std::abs(y[i * factor] - x[i]), 1e-9)
          << "factor " << factor << " sample " << i;
  }
}

TEST(UpsampleTest, InterpolatesBandlimitedSignalExactly) {
  // A tone below Nyquist/2 must be reconstructed exactly at the new grid.
  const std::size_t n = 64;
  const int factor = 4;
  const int bin = 3;
  CVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = 2.0 * std::numbers::pi * bin * static_cast<double>(i) / n;
    x[i] = Complex(std::cos(ang), 0.0);
  }
  const CVec y = upsample_fft(x, factor);
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double t = static_cast<double>(i) / factor;
    const double expected = std::cos(2.0 * std::numbers::pi * bin * t / n);
    EXPECT_NEAR(y[i].real(), expected, 1e-9);
    EXPECT_NEAR(y[i].imag(), 0.0, 1e-9);
  }
}

TEST(UpsampleTest, RealInputStaysReal) {
  Rng rng(88);
  CVec x(uwb::k::cir_len_prf64);
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), 0.0};
  for (const auto& v : upsample_fft(x, 8)) EXPECT_NEAR(v.imag(), 0.0, 1e-9);
}

TEST(UpsampleTest, OddLengthWorks) {
  Rng rng(89);
  CVec x(33);
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  const CVec y = upsample_fft(x, 3);
  ASSERT_EQ(y.size(), 99u);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_LT(std::abs(y[i * 3] - x[i]), 1e-9);
}

TEST(UpsampleTest, InvalidArgsThrow) {
  EXPECT_THROW(upsample_fft(CVec{}, 2), PreconditionError);
  EXPECT_THROW(upsample_fft(CVec{{1, 0}}, 0), PreconditionError);
}

// --- FftPlan vs an unplanned textbook reference ---------------------------
//
// The plan path precomputes twiddle tables, bit-reversal permutations, and
// Bluestein kernels; `reference_fft_pow2` below recomputes every twiddle
// with std::polar inside the butterfly loop (the pre-plan implementation).
// Agreement to ~1e-12 shows the tables are exact, not approximations.

CVec reference_fft_pow2(CVec x, bool inverse) {
  const std::size_t n = x.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                       static_cast<double>(len);
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex w = std::polar(1.0, ang * static_cast<double>(j));
        const Complex u = x[i + j];
        const Complex v = x[i + j + len / 2] * w;
        x[i + j] = u + v;
        x[i + j + len / 2] = u - v;
      }
    }
  }
  return x;
}

class PlanVsReferenceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlanVsReferenceTest, Pow2PlanMatchesUnplannedReference) {
  const std::size_t n = GetParam();
  Rng rng(n);
  CVec x(n);
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  for (const bool inverse : {false, true}) {
    CVec planned = x;
    plan_for(n).transform_pow2(planned.data(), inverse);
    EXPECT_LT(max_err(planned, reference_fft_pow2(x, inverse)),
              1e-12 * static_cast<double>(n))
        << "n=" << n << " inverse=" << inverse;
  }
}

INSTANTIATE_TEST_SUITE_P(Pow2Lengths, PlanVsReferenceTest,
                         ::testing::Values(2, 4, 8, 64, 1024, 8192, 16384));

TEST(FftPlanTest, BluesteinPlanMatchesNaiveDft) {
  // 1016 is the DW1000 PRF-64 CIR length — the Bluestein length that
  // matters. Also check a small prime for the general case.
  for (const std::size_t n : {11ul, 1016ul}) {
    Rng rng(n);
    CVec x(n);
    for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    CVec y(n);
    plan_for(n).transform(x.data(), y.data(), false);
    EXPECT_LT(max_err(y, naive_dft(x)), 1e-9 * static_cast<double>(n));
    // Inverse: unscaled conjugate transform; round trip recovers n * x.
    CVec back(n);
    plan_for(n).transform(y.data(), back.data(), true);
    for (auto& v : back) v /= static_cast<double>(n);
    EXPECT_LT(max_err(back, x), 1e-11);
  }
}

TEST(FftPlanTest, TwiddleHalfFusesZeroPaddedDoubling) {
  // Contract used by the detector's upsample fusion: for x of length m
  // zero-padded to 2m, even output bins are FFT_m(x) and odd bins are
  // FFT_m(x modulated by plan_for(2m).twiddle_half()).
  constexpr std::size_t m = 256;
  Rng rng(42);
  CVec x(m);
  for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  CVec padded(2 * m, Complex{});
  std::copy(x.begin(), x.end(), padded.begin());
  plan_for(2 * m).transform_pow2(padded.data(), false);

  CVec even = x;
  plan_for(m).transform_pow2(even.data(), false);
  const Complex* w = plan_for(2 * m).twiddle_half();
  CVec odd(m);
  for (std::size_t j = 0; j < m; ++j) odd[j] = x[j] * w[j];
  plan_for(m).transform_pow2(odd.data(), false);

  for (std::size_t k = 0; k < m; ++k) {
    EXPECT_LT(std::abs(padded[2 * k] - even[k]), 1e-11);
    EXPECT_LT(std::abs(padded[2 * k + 1] - odd[k]), 1e-11);
  }
}

TEST(FftPlanTest, CacheHitsOnRepeatedLengths) {
  clear_fft_plan_cache();
  const auto before = fft_plan_cache_stats();
  plan_for(512);
  plan_for(512);
  plan_for(512);
  const auto after = fft_plan_cache_stats();
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, 2u);
#ifndef UWB_OBS_DISABLED
  // The registry-backed aggregate moves with the per-thread counters.
  // (With instrumentation compiled out the aggregate legitimately stays 0.)
  const auto total = fft_plan_cache_stats_total();
  EXPECT_GE(total.hits, after.hits);
  EXPECT_GE(total.misses, after.misses);
#endif
}

}  // namespace
}  // namespace uwb::dsp
