// Strong unit types (common/units.hpp): explicit conversions round-trip,
// 40-bit timestamp semantics survive the typed interface, and the types are
// genuinely zero-overhead (same size and triviality as the raw scalar).

#include <gtest/gtest.h>

#include <type_traits>

#include "common/constants.hpp"
#include "common/units.hpp"
#include "dw1000/clock.hpp"

namespace uwb {
namespace {

namespace dw = uwb::dw;

// ---- Zero-overhead guarantees (compile-time) -------------------------------

static_assert(sizeof(Seconds) == sizeof(double));
static_assert(sizeof(Meters) == sizeof(double));
static_assert(sizeof(DwTicks) == sizeof(std::int64_t));
static_assert(sizeof(CirTapIndex) == sizeof(std::int32_t));

static_assert(std::is_trivially_copyable_v<Seconds>);
static_assert(std::is_trivially_copyable_v<Meters>);
static_assert(std::is_trivially_copyable_v<DwTicks>);
static_assert(std::is_trivially_copyable_v<CirTapIndex>);

static_assert(std::is_trivially_destructible_v<Seconds>);
static_assert(std::is_trivially_destructible_v<DwTicks>);

// Construction and cross-unit mixing must stay explicit: no implicit
// double -> unit, no unit -> unit.
static_assert(!std::is_convertible_v<double, Seconds>);
static_assert(!std::is_convertible_v<double, Meters>);
static_assert(!std::is_convertible_v<std::int64_t, DwTicks>);
static_assert(!std::is_convertible_v<Seconds, Meters>);
static_assert(!std::is_convertible_v<Seconds, double>);

// Conversions are constexpr-usable.
static_assert(to_dw_ticks(Seconds(0.0)).count() == 0);
static_assert(to_seconds(DwTicks(0)).value() == 0.0);
static_assert(distance_from_tof(Seconds(0.0)).value() == 0.0);

// ---- Arithmetic stays in-unit ----------------------------------------------

TEST(UnitsTest, SecondsArithmetic) {
  const Seconds a(3.0), b(1.5);
  EXPECT_DOUBLE_EQ((a + b).value(), 4.5);
  EXPECT_DOUBLE_EQ((a - b).value(), 1.5);
  EXPECT_DOUBLE_EQ((-a).value(), -3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 6.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 6.0);
  EXPECT_DOUBLE_EQ((a / 2.0).value(), 1.5);
  EXPECT_DOUBLE_EQ(a / b, 2.0);  // ratio of durations is dimensionless
  Seconds c(1.0);
  c += b;
  c -= Seconds(0.5);
  EXPECT_DOUBLE_EQ(c.value(), 2.0);
  EXPECT_LT(b, a);
}

TEST(UnitsTest, MetersArithmetic) {
  const Meters d(10.0);
  EXPECT_DOUBLE_EQ((d + Meters(2.0)).value(), 12.0);
  EXPECT_DOUBLE_EQ((d * 0.5).value(), 5.0);
  EXPECT_DOUBLE_EQ(d / Meters(4.0), 2.5);
  EXPECT_GT(d, Meters(9.0));
}

TEST(UnitsTest, DwTicksArithmetic) {
  const DwTicks t(1000), u(-400);
  EXPECT_EQ((t + u).count(), 600);
  EXPECT_EQ((t - u).count(), 1400);
  EXPECT_EQ((-u).count(), 400);
  EXPECT_EQ((t * 3).count(), 3000);
  EXPECT_LT(u, t);
}

TEST(UnitsTest, CirTapIndexArithmetic) {
  const CirTapIndex a(100), b(30);
  EXPECT_EQ((a + b).count(), 130);
  EXPECT_EQ((a - b).count(), 70);
  EXPECT_LT(b, a);
}

// ---- Round-trip conversions ------------------------------------------------

TEST(UnitsTest, DwTicksSecondsRoundTrip) {
  // Exact tick counts round-trip through seconds and back.
  for (const std::int64_t ticks :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{63898},
        std::int64_t{1} << 32, (std::int64_t{1} << 40) - 1}) {
    EXPECT_EQ(to_dw_ticks(to_seconds(DwTicks(ticks))).count(), ticks)
        << "ticks=" << ticks;
  }
}

TEST(UnitsTest, ToDwTicksRoundsToNearest) {
  EXPECT_EQ(to_dw_ticks(Seconds(0.4 * k::dw_tick_s)).count(), 0);
  EXPECT_EQ(to_dw_ticks(Seconds(0.6 * k::dw_tick_s)).count(), 1);
  EXPECT_EQ(to_dw_ticks(Seconds(-0.6 * k::dw_tick_s)).count(), -1);
  EXPECT_EQ(to_dw_ticks(Seconds(-0.4 * k::dw_tick_s)).count(), 0);
}

TEST(UnitsTest, DistanceTofRoundTrip) {
  const Meters d(123.456);
  EXPECT_NEAR(distance_from_tof(tof_from_distance(d)).value(), d.value(),
              1e-12);
  // 1 m of one-way flight is ~3.3 ns.
  EXPECT_NEAR(tof_from_distance(Meters(1.0)).value(), 1.0 / k::c_air, 1e-18);
}

TEST(UnitsTest, CirTapConversions) {
  const CirTapIndex tap(250);
  EXPECT_DOUBLE_EQ(to_seconds(tap).value(), 250.0 * k::cir_ts_s);
  EXPECT_EQ(to_cir_tap(to_seconds(tap)).count(), 250);
  EXPECT_DOUBLE_EQ(cir_tap_of(Seconds(2.5 * k::cir_ts_s)), 2.5);
  // One tap of delay is ~30 cm of one-way distance.
  EXPECT_NEAR(distance_of(CirTapIndex(1)).value(), k::cir_ts_s * k::c_air,
              1e-12);
}

TEST(UnitsTest, SimTimeSecondsRoundTrip) {
  const Seconds s(1.25e-3);
  EXPECT_DOUBLE_EQ(to_seconds(to_sim_time(s)).value(), 1.25e-3);
  EXPECT_EQ(to_sim_time(s).ps(), 1'250'000'000);
}

// ---- 40-bit wrap semantics through the typed interface ---------------------

TEST(UnitsTest, FortyBitWrapPreservedUnderStrongTypes) {
  // Stepping a timestamp to just past the 40-bit horizon wraps; the typed
  // difference still reports the short (signed) separation.
  const dw::DwTimestamp near_wrap(k::dw_timestamp_mask - 9);  // modulus - 10
  const dw::DwTimestamp wrapped = near_wrap.plus_ticks(DwTicks(25));
  EXPECT_EQ(wrapped.ticks(), 15u);
  EXPECT_EQ(wrapped.diff_ticks(near_wrap).count(), 25);
  EXPECT_EQ(near_wrap.diff_ticks(wrapped).count(), -25);
  EXPECT_NEAR(wrapped.diff_seconds(near_wrap).value(), 25.0 * k::dw_tick_s,
              1e-15);
}

TEST(UnitsTest, PlusSecondsQuantizesToTickGrid) {
  const dw::DwTimestamp t0(1000);
  // 1 us is ~63898 ticks; plus_seconds rounds to the nearest whole tick.
  const dw::DwTimestamp t1 = t0.plus_seconds(Seconds(1e-6));
  EXPECT_EQ(t1.ticks() - t0.ticks(),
            static_cast<std::uint64_t>(to_dw_ticks(Seconds(1e-6)).count()));
}

}  // namespace
}  // namespace uwb
