// Tests for the observability subsystem (src/obs): histogram bucket
// boundaries and quantile estimates, deterministic counter merges across
// worker counts, nested span integrity, and a round-trip parse of the
// Chrome trace_event JSON.
//
// Everything here drives the obs classes directly (not through the
// UWB_OBS_* macros), so the suite passes identically in UWB_OBS_DISABLED
// builds — the classes stay fully functional there; only instrumentation
// call sites compile away.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/expects.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/span.hpp"
#include "obs/trace_sink.hpp"
#include "runner/monte_carlo.hpp"
#include "runner/worker_context.hpp"

namespace uwb::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::instance().reset();
    clear_trace_events();
    set_tracing_enabled(false);
  }
  void TearDown() override {
    MetricsRegistry::instance().reset();
    clear_trace_events();
    set_tracing_enabled(false);
  }
};

// --- bucket layouts ---------------------------------------------------------

TEST_F(ObsTest, ExponentialBucketsHaveGeometricUppers) {
  const auto b = HistogramBuckets::exponential(1.0, 2.0, 4);
  ASSERT_EQ(b.uppers.size(), 4u);
  EXPECT_DOUBLE_EQ(b.uppers[0], 1.0);
  EXPECT_DOUBLE_EQ(b.uppers[1], 2.0);
  EXPECT_DOUBLE_EQ(b.uppers[2], 4.0);
  EXPECT_DOUBLE_EQ(b.uppers[3], 8.0);
}

TEST_F(ObsTest, LinearBucketsHaveArithmeticUppers) {
  const auto b = HistogramBuckets::linear(10.0, 5.0, 3);
  ASSERT_EQ(b.uppers.size(), 3u);
  EXPECT_DOUBLE_EQ(b.uppers[0], 10.0);
  EXPECT_DOUBLE_EQ(b.uppers[1], 15.0);
  EXPECT_DOUBLE_EQ(b.uppers[2], 20.0);
}

// --- histogram bucket boundaries -------------------------------------------

TEST_F(ObsTest, BucketIndexUsesInclusiveUpperEdges) {
  Histogram h(HistogramBuckets::linear(1.0, 1.0, 3));  // uppers 1, 2, 3
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(1.0), 0u);  // inclusive upper edge
  EXPECT_EQ(h.bucket_index(1.0000001), 1u);
  EXPECT_EQ(h.bucket_index(2.0), 1u);
  EXPECT_EQ(h.bucket_index(3.0), 2u);
  EXPECT_EQ(h.bucket_index(3.5), 3u);  // overflow bucket
}

TEST_F(ObsTest, ObserveFillsBucketsAndTracksExtremes) {
  Histogram h(HistogramBuckets::linear(1.0, 1.0, 2));  // uppers 1, 2
  h.observe(0.5);
  h.observe(1.5);
  h.observe(1.7);
  h.observe(9.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.5 + 1.7 + 9.0);
  EXPECT_DOUBLE_EQ(h.mean(), (0.5 + 1.5 + 1.7 + 9.0) / 4.0);
}

TEST_F(ObsTest, EmptyHistogramIsAllZero) {
  Histogram h(latency_buckets_ms());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

// --- quantiles against known distributions ----------------------------------

TEST_F(ObsTest, QuantilesOfUniformDistribution) {
  // 1000 evenly spaced values on (0, 100] in fine buckets: interpolated
  // quantiles must land close to the exact order statistics.
  Histogram h(HistogramBuckets::linear(1.0, 1.0, 100));
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i) * 0.1);
  EXPECT_NEAR(h.quantile(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.90), 90.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  // q=0 clamps to the smallest observation.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.1);
}

TEST_F(ObsTest, QuantilesOfPointMass) {
  // Every observation identical: all quantiles collapse to that value even
  // though interpolation inside the covering bucket would spread them.
  Histogram h(HistogramBuckets::exponential(0.001, 2.0, 20));
  for (int i = 0; i < 100; ++i) h.observe(3.25);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.25);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.25);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 3.25);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.25);
}

TEST_F(ObsTest, QuantileOfTwoPointDistribution) {
  // 90 observations at ~1 and 10 at ~100: p50 must sit near the low mass,
  // p99 near the high mass.
  Histogram h(HistogramBuckets::linear(1.0, 1.0, 200));
  for (int i = 0; i < 90; ++i) h.observe(1.0);
  for (int i = 0; i < 10; ++i) h.observe(100.0);
  EXPECT_LT(h.quantile(0.50), 2.0);
  EXPECT_GT(h.quantile(0.95), 99.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST_F(ObsTest, QuantileValuesAboveAllBucketsUseOverflow) {
  Histogram h(HistogramBuckets::linear(1.0, 1.0, 2));
  h.observe(50.0);
  h.observe(60.0);
  // Both in overflow: quantiles stay within [min, max].
  EXPECT_GE(h.quantile(0.5), 50.0);
  EXPECT_LE(h.quantile(0.5), 60.0);
}

// --- merge ------------------------------------------------------------------

TEST_F(ObsTest, MergeAddsBucketsAndExtremes) {
  Histogram a(HistogramBuckets::linear(1.0, 1.0, 3));
  Histogram b(HistogramBuckets::linear(1.0, 1.0, 3));
  a.observe(0.5);
  a.observe(2.5);
  b.observe(1.5);
  b.observe(10.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_EQ(a.bucket_count(0), 1u);
  EXPECT_EQ(a.bucket_count(1), 1u);
  EXPECT_EQ(a.bucket_count(2), 1u);
  EXPECT_EQ(a.bucket_count(3), 1u);
}

TEST_F(ObsTest, MergeRejectsMismatchedLayouts) {
  Histogram a(HistogramBuckets::linear(1.0, 1.0, 3));
  Histogram b(HistogramBuckets::linear(1.0, 1.0, 4));
  EXPECT_THROW(a.merge(b), PreconditionError);
}

// --- counter merge determinism across worker counts -------------------------

// Record the same deterministic per-trial counts through the Monte-Carlo
// runner at different thread counts: the merged registry aggregate must be
// bit-identical (integer sums are order-independent). Uses the Shard API
// via WorkerContext so the test also covers UWB_OBS_DISABLED builds.
Snapshot run_counting_trials(int threads, int n_trials) {
  MetricsRegistry::instance().reset();
  runner::MonteCarlo::Config cfg;
  cfg.threads = threads;
  cfg.base_seed = 42;
  const auto result = runner::MonteCarlo(cfg).run(
      n_trials, [](const runner::TrialContext& ctx, runner::TrialRecorder&) {
        Shard& shard = ctx.worker->metrics();
        shard.counter("trials_seen").add(1);
        // Trial-dependent but schedule-independent: depends only on index.
        shard.counter("weighted").add(
            static_cast<std::uint64_t>(ctx.trial_index % 7));
        shard
            .histogram("det_values", HistogramBuckets::linear(10.0, 10.0, 10))
            .observe(static_cast<double>(ctx.trial_index));
      });
  EXPECT_EQ(result.trials(), n_trials);
  return MetricsRegistry::instance().aggregate();
}

TEST_F(ObsTest, CounterMergeBitIdenticalAcrossWorkerCounts) {
  const Snapshot one = run_counting_trials(1, 101);
  for (const int threads : {2, 4}) {
    const Snapshot many = run_counting_trials(threads, 101);
    EXPECT_EQ(many.counter("trials_seen"), one.counter("trials_seen"));
    EXPECT_EQ(many.counter("weighted"), one.counter("weighted"));
    const Histogram* ha = one.histogram("det_values");
    const Histogram* hb = many.histogram("det_values");
    ASSERT_NE(ha, nullptr);
    ASSERT_NE(hb, nullptr);
    EXPECT_EQ(ha->count(), hb->count());
    // Bucket-by-bucket bit identity (uint64 counts, order-independent sums).
    for (std::size_t i = 0; i <= ha->buckets().uppers.size(); ++i)
      EXPECT_EQ(ha->bucket_count(i), hb->bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(one.counter("trials_seen"), 101u);
  EXPECT_EQ(one.counter("never_recorded"), 0u);
}

TEST_F(ObsTest, PrometheusExpositionCoversEveryMetricFamily) {
  Shard& shard = MetricsRegistry::instance().local_shard();
  shard.counter("frames.delivered").add(17);
  shard.gauge("queue-depth").set(2.5);
  Histogram& h = shard.histogram("fanout",
                                 HistogramBuckets::linear(1.0, 1.0, 2));
  h.observe(0.5);
  h.observe(1.5);
  h.observe(99.0);

  const std::string text =
      MetricsRegistry::instance().aggregate().to_prometheus();

  // Counter: uwb_ prefix, non-[a-zA-Z0-9_:] characters sanitized to '_'.
  EXPECT_NE(text.find("# TYPE uwb_frames_delivered counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("uwb_frames_delivered 17\n"), std::string::npos);
  // Gauge.
  EXPECT_NE(text.find("# TYPE uwb_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("uwb_queue_depth 2.5\n"), std::string::npos);
  // Histogram: cumulative buckets ending at +Inf, plus _sum/_count.
  EXPECT_NE(text.find("# TYPE uwb_fanout histogram\n"), std::string::npos);
  EXPECT_NE(text.find("uwb_fanout_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("uwb_fanout_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("uwb_fanout_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("uwb_fanout_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("uwb_fanout_sum 101\n"), std::string::npos);
}

TEST_F(ObsTest, PrometheusExpositionIncludesSpanTotals) {
  Shard& shard = MetricsRegistry::instance().local_shard();
  for (const std::uint64_t dur_ns : {5'000'000ull, 5'000'000ull, 2'500'000ull}) {
    const int depth = shard.enter_span();
    shard.exit_span("detect", 0, dur_ns, depth);
  }
  const std::string text =
      MetricsRegistry::instance().aggregate().to_prometheus();
  EXPECT_NE(text.find("# TYPE uwb_span_detect_calls_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("uwb_span_detect_calls_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("uwb_span_detect_ms_total 12.5\n"), std::string::npos);
}

TEST_F(ObsTest, AggregateNamesAreSorted) {
  Shard& shard = MetricsRegistry::instance().local_shard();
  shard.counter("zebra").add(1);
  shard.counter("alpha").add(1);
  shard.counter("mid").add(1);
  const Snapshot snap = MetricsRegistry::instance().aggregate();
  std::vector<std::string> names;
  for (const auto& [name, value] : snap.counters) names.push_back(name);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST_F(ObsTest, GaugesMergeByMaximum) {
  // Two shards on two threads set the same gauge to different values.
  std::thread t1([] {
    MetricsRegistry::instance().local_shard().gauge("level").set(3.0);
  });
  t1.join();
  std::thread t2([] {
    MetricsRegistry::instance().local_shard().gauge("level").set(7.0);
  });
  t2.join();
  const Snapshot snap = MetricsRegistry::instance().aggregate();
  for (const auto& [name, value] : snap.gauges) {
    if (name == "level") {
      EXPECT_DOUBLE_EQ(value, 7.0);
    }
  }
  EXPECT_FALSE(snap.gauges.empty());
}

TEST_F(ObsTest, ResetZeroesInPlaceKeepingReferencesValid) {
  Shard& shard = MetricsRegistry::instance().local_shard();
  Counter& c = shard.counter("persistent");
  c.add(5);
  MetricsRegistry::instance().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the cached reference still works after reset
  EXPECT_EQ(MetricsRegistry::instance().aggregate().counter("persistent"),
            2u);
}

// --- span nesting ------------------------------------------------------------

TEST_F(ObsTest, NestedSpansTrackDepthAndUnwindInOrder) {
  EXPECT_EQ(current_span_depth(), 0);
  {
    Span outer("outer_stage");
    EXPECT_EQ(outer.depth(), 0);
    EXPECT_EQ(current_span_depth(), 1);
    {
      Span inner("inner_stage");
      EXPECT_EQ(inner.depth(), 1);
      EXPECT_EQ(current_span_depth(), 2);
    }
    EXPECT_EQ(current_span_depth(), 1);
  }
  EXPECT_EQ(current_span_depth(), 0);

  const Snapshot snap = MetricsRegistry::instance().aggregate();
  const auto* outer_total = snap.span("outer_stage");
  const auto* inner_total = snap.span("inner_stage");
  ASSERT_NE(outer_total, nullptr);
  ASSERT_NE(inner_total, nullptr);
  EXPECT_EQ(outer_total->count, 1u);
  EXPECT_EQ(inner_total->count, 1u);
  // The child ran strictly inside the parent.
  EXPECT_GE(outer_total->total_ms, inner_total->total_ms);
}

TEST_F(ObsTest, SpanTotalsAccumulateAcrossCalls) {
  for (int i = 0; i < 5; ++i) {
    Span s("repeated");
  }
  const auto* total = MetricsRegistry::instance().aggregate().span("repeated");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count, 5u);
}

TEST_F(ObsTest, TraceEventsRecordedOnlyWhileTracingEnabled) {
  {
    Span s("untraced");
  }
  EXPECT_TRUE(collect_trace_events().empty());
  set_tracing_enabled(true);
  {
    Span s("traced");
  }
  set_tracing_enabled(false);
  const auto events = collect_trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "traced");
  // A second collect drains nothing.
  EXPECT_TRUE(collect_trace_events().empty());
}

TEST_F(ObsTest, TraceEventsCaptureNesting) {
  set_tracing_enabled(true);
  {
    Span outer("outer_stage");
    {
      Span inner("inner_stage");
    }
  }
  set_tracing_enabled(false);
  const auto events = collect_trace_events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "outer_stage") outer = &e;
    if (std::string(e.name) == "inner_stage") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  // Child bounds inside parent bounds.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);
}

// --- Chrome trace JSON round trip -------------------------------------------

// Minimal JSON tokenizer sufficient to round-trip the trace document the
// sink emits (objects, arrays, strings without exotic escapes, numbers).
struct MiniJson {
  std::string text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\n' ||
                                 text[pos] == '\t' || text[pos] == '\r'))
      ++pos;
  }
  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  std::string parse_string() {
    skip_ws();
    EXPECT_EQ(text[pos], '"');
    ++pos;
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') ++pos;
      out.push_back(text[pos++]);
    }
    ++pos;
    return out;
  }
  double parse_number() {
    skip_ws();
    std::size_t end = pos;
    while (end < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[end])) ||
            text[end] == '.' || text[end] == '-' || text[end] == '+' ||
            text[end] == 'e' || text[end] == 'E'))
      ++end;
    const double v = std::stod(text.substr(pos, end - pos));
    pos = end;
    return v;
  }
};

TEST_F(ObsTest, ChromeTraceJsonRoundTrips) {
  set_tracing_enabled(true);
  {
    Span outer("stage_a");
    {
      Span inner("stage_b");
    }
  }
  set_tracing_enabled(false);
  const auto events = collect_trace_events();
  ASSERT_EQ(events.size(), 2u);
  const std::string doc = chrome_trace_json(events);

  // Structural round trip with the mini parser: find the traceEvents array
  // and re-extract each event's name/ph/ts/dur/depth.
  MiniJson p{doc};
  ASSERT_TRUE(p.consume('{'));
  ASSERT_EQ(p.parse_string(), "displayTimeUnit");
  ASSERT_TRUE(p.consume(':'));
  ASSERT_EQ(p.parse_string(), "ms");
  ASSERT_TRUE(p.consume(','));
  ASSERT_EQ(p.parse_string(), "traceEvents");
  ASSERT_TRUE(p.consume(':'));
  ASSERT_TRUE(p.consume('['));

  struct Parsed {
    std::string name, ph;
    double ts = -1.0, dur = -1.0, pid = -1.0, tid = -1.0, depth = -1.0;
  };
  std::vector<Parsed> parsed;
  do {
    ASSERT_TRUE(p.consume('{'));
    Parsed ev;
    do {
      const std::string key = p.parse_string();
      ASSERT_TRUE(p.consume(':'));
      if (key == "name") {
        ev.name = p.parse_string();
      } else if (key == "ph") {
        ev.ph = p.parse_string();
      } else if (key == "cat") {
        p.parse_string();
      } else if (key == "ts") {
        ev.ts = p.parse_number();
      } else if (key == "dur") {
        ev.dur = p.parse_number();
      } else if (key == "pid") {
        ev.pid = p.parse_number();
      } else if (key == "tid") {
        ev.tid = p.parse_number();
      } else if (key == "args") {
        ASSERT_TRUE(p.consume('{'));
        ASSERT_EQ(p.parse_string(), "depth");
        ASSERT_TRUE(p.consume(':'));
        ev.depth = p.parse_number();
        ASSERT_TRUE(p.consume('}'));
      } else {
        FAIL() << "unexpected key " << key;
      }
    } while (p.consume(','));
    ASSERT_TRUE(p.consume('}'));
    parsed.push_back(ev);
  } while (p.consume(','));
  ASSERT_TRUE(p.consume(']'));
  ASSERT_TRUE(p.consume('}'));

  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].name, std::string(events[i].name));
    EXPECT_EQ(parsed[i].ph, "X");
    EXPECT_EQ(parsed[i].pid, 0.0);
    EXPECT_DOUBLE_EQ(parsed[i].tid, static_cast<double>(events[i].tid));
    EXPECT_DOUBLE_EQ(parsed[i].depth, static_cast<double>(events[i].depth));
    // ts/dur are microseconds with 3 decimals — exact at ns granularity.
    EXPECT_DOUBLE_EQ(parsed[i].ts,
                     static_cast<double>(events[i].start_ns) / 1000.0);
    EXPECT_DOUBLE_EQ(parsed[i].dur,
                     static_cast<double>(events[i].dur_ns) / 1000.0);
  }
}

TEST_F(ObsTest, ChromeTraceJsonEscapesControlCharacters) {
  std::vector<TraceEvent> events;
  events.push_back(TraceEvent{"quote\"back\\slash", 10, 5, 0, 0});
  const std::string doc = chrome_trace_json(events);
  EXPECT_NE(doc.find("quote\\\"back\\\\slash"), std::string::npos);
}

// --- instrumentation macros --------------------------------------------------

TEST_F(ObsTest, MacrosRespectBuildFlavour) {
  {
    UWB_OBS_SPAN("macro_span");
    UWB_OBS_COUNT("macro_counter", 3);
    UWB_OBS_GAUGE_SET("macro_gauge", 1.5);
  }
  const Snapshot snap = MetricsRegistry::instance().aggregate();
  if (kEnabled) {
    EXPECT_EQ(snap.counter("macro_counter"), 3u);
    const auto* span = snap.span("macro_span");
    ASSERT_NE(span, nullptr);
    EXPECT_EQ(span->count, 1u);
  } else {
    EXPECT_EQ(snap.counter("macro_counter"), 0u);
    EXPECT_EQ(snap.span("macro_span"), nullptr);
  }
}

}  // namespace
}  // namespace uwb::obs
