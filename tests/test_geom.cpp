// Unit tests: 2-D geometry, rooms, and the image-source method (Fig. 1a).
#include <gtest/gtest.h>

#include <cmath>

#include "common/expects.hpp"
#include "geom/image_source.hpp"
#include "geom/room.hpp"
#include "geom/vec2.hpp"

namespace uwb::geom {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ((a + b), (Vec2{4.0, 1.0}));
  EXPECT_EQ((a - b), (Vec2{-2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Vec2{2.0, 4.0}));
  EXPECT_EQ((a / 2.0), (Vec2{0.5, 1.0}));
  EXPECT_DOUBLE_EQ(dot(a, b), 1.0);
  EXPECT_DOUBLE_EQ(cross(a, b), -7.0);
}

TEST(Vec2Test, NormAndDistance) {
  EXPECT_DOUBLE_EQ(norm(Vec2{3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance(Vec2{1.0, 1.0}, Vec2{4.0, 5.0}), 5.0);
  const Vec2 unit = normalized(Vec2{3.0, 4.0});
  EXPECT_NEAR(norm(unit), 1.0, 1e-12);
  EXPECT_EQ(normalized(Vec2{0.0, 0.0}), (Vec2{0.0, 0.0}));
}

TEST(SegmentTest, LengthAndMidpoint) {
  const Segment s{{0.0, 0.0}, {4.0, 0.0}};
  EXPECT_DOUBLE_EQ(s.length(), 4.0);
  EXPECT_EQ(s.midpoint(), (Vec2{2.0, 0.0}));
}

TEST(SegmentTest, ProperIntersection) {
  const Segment a{{0.0, 0.0}, {2.0, 2.0}};
  const Segment b{{0.0, 2.0}, {2.0, 0.0}};
  EXPECT_TRUE(segments_intersect(a, b));
  EXPECT_TRUE(segments_intersect(a, b, /*strict=*/true));
}

TEST(SegmentTest, DisjointSegments) {
  const Segment a{{0.0, 0.0}, {1.0, 0.0}};
  const Segment b{{0.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(segments_intersect(a, b));
}

TEST(SegmentTest, TouchingEndpointsStrictVsLoose) {
  const Segment a{{0.0, 0.0}, {1.0, 1.0}};
  const Segment b{{1.0, 1.0}, {2.0, 0.0}};
  EXPECT_TRUE(segments_intersect(a, b, /*strict=*/false));
  EXPECT_FALSE(segments_intersect(a, b, /*strict=*/true));
}

TEST(SegmentTest, CollinearOverlap) {
  const Segment a{{0.0, 0.0}, {2.0, 0.0}};
  const Segment b{{1.0, 0.0}, {3.0, 0.0}};
  EXPECT_TRUE(segments_intersect(a, b));
  EXPECT_FALSE(segments_intersect(a, b, /*strict=*/true));
}

TEST(SegmentTest, LineIntersection) {
  Vec2 p;
  ASSERT_TRUE(line_intersection(Segment{{0.0, 0.0}, {1.0, 0.0}},
                                Segment{{5.0, -1.0}, {5.0, 1.0}}, p));
  EXPECT_NEAR(p.x, 5.0, 1e-12);
  EXPECT_NEAR(p.y, 0.0, 1e-12);
  // Parallel lines: no intersection.
  EXPECT_FALSE(line_intersection(Segment{{0.0, 0.0}, {1.0, 0.0}},
                                 Segment{{0.0, 1.0}, {1.0, 1.0}}, p));
}

TEST(SegmentTest, MirrorAcross) {
  const Segment wall{{0.0, 0.0}, {10.0, 0.0}};  // the x-axis
  const Vec2 img = mirror_across(wall, {3.0, 2.0});
  EXPECT_NEAR(img.x, 3.0, 1e-12);
  EXPECT_NEAR(img.y, -2.0, 1e-12);
  // Mirroring twice returns the original point.
  const Vec2 back = mirror_across(wall, img);
  EXPECT_NEAR(back.y, 2.0, 1e-12);
}

TEST(SegmentTest, ProjectT) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_DOUBLE_EQ(project_t(s, {2.5, 7.0}), 0.25);
  EXPECT_DOUBLE_EQ(project_t(s, {-5.0, 0.0}), -0.5);
  EXPECT_THROW(project_t(Segment{{1.0, 1.0}, {1.0, 1.0}}, {0.0, 0.0}),
               PreconditionError);
}

TEST(RoomTest, RectangularHasFourWalls) {
  const Room room = Room::rectangular(8.0, 5.0, 7.0);
  ASSERT_EQ(room.walls().size(), 4u);
  for (const Wall& w : room.walls())
    EXPECT_DOUBLE_EQ(w.reflection_loss_db, 7.0);
  EXPECT_THROW(Room::rectangular(0.0, 5.0), PreconditionError);
}

TEST(RoomTest, HallwayHasTwoWalls) {
  const Room room = Room::hallway(30.0, 2.4);
  EXPECT_EQ(room.walls().size(), 2u);
}

TEST(RoomTest, ObstructionLossAccumulates) {
  Room room = Room::rectangular(10.0, 10.0);
  room.add_obstacle({{{5.0, 0.0}, {5.0, 10.0}}, 12.0, "divider"});
  room.add_obstacle({{{7.0, 0.0}, {7.0, 10.0}}, 5.0, "shelf"});
  EXPECT_DOUBLE_EQ(room.obstruction_loss_db({1.0, 5.0}, {9.0, 5.0}), 17.0);
  EXPECT_DOUBLE_EQ(room.obstruction_loss_db({1.0, 5.0}, {4.0, 5.0}), 0.0);
  // A ray parallel to (not crossing) the obstacle is free.
  EXPECT_DOUBLE_EQ(room.obstruction_loss_db({1.0, 1.0}, {4.0, 1.0}), 0.0);
}

TEST(ImageSourceTest, LosAlwaysFirst) {
  const Room room = Room::rectangular(10.0, 6.0);
  const auto paths = compute_paths(room, {2.0, 3.0}, {8.0, 3.0}, 1);
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths.front().order, 0);
  EXPECT_DOUBLE_EQ(paths.front().length_m, 6.0);
  EXPECT_DOUBLE_EQ(paths.front().reflection_loss_db, 0.0);
}

TEST(ImageSourceTest, RectangularRoomGivesFourFirstOrderPaths) {
  // Interior TX/RX in a rectangle: one specular bounce per wall (Fig. 1a).
  const Room room = Room::rectangular(10.0, 6.0);
  const auto paths = compute_paths(room, {2.0, 3.0}, {8.0, 3.0}, 1);
  int first_order = 0;
  for (const auto& p : paths)
    if (p.order == 1) ++first_order;
  EXPECT_EQ(first_order, 4);
}

TEST(ImageSourceTest, KnownReflectionLength) {
  // TX (2,3) -> floor (y=0) -> RX (8,3): image at (2,-3), length
  // |(8,3)-(2,-3)| = sqrt(36+36).
  const Room room = Room::rectangular(10.0, 6.0);
  const auto paths = compute_paths(room, {2.0, 3.0}, {8.0, 3.0}, 1);
  const double expected = std::sqrt(72.0);
  bool found = false;
  for (const auto& p : paths)
    if (p.order == 1 && std::abs(p.length_m - expected) < 1e-9) found = true;
  EXPECT_TRUE(found);
}

TEST(ImageSourceTest, ReflectionAlwaysLongerThanLos) {
  const Room room = Room::rectangular(12.0, 7.0);
  const auto paths = compute_paths(room, {1.5, 2.0}, {10.0, 5.5}, 2);
  const double los = paths.front().length_m;
  for (const auto& p : paths) {
    if (p.order >= 1) {
      EXPECT_GT(p.length_m, los);
    }
  }
}

TEST(ImageSourceTest, SecondOrderPathsExist) {
  const Room room = Room::rectangular(10.0, 6.0);
  const auto paths = compute_paths(room, {2.0, 3.0}, {8.0, 3.0}, 2);
  int second = 0;
  for (const auto& p : paths)
    if (p.order == 2) {
      ++second;
      EXPECT_EQ(p.wall_indices.size(), 2u);
      // Two bounces accumulate two reflection losses.
      EXPECT_DOUBLE_EQ(p.reflection_loss_db, 12.0);
    }
  EXPECT_GT(second, 0);
}

TEST(ImageSourceTest, MaxOrderZeroIsLosOnly) {
  const Room room = Room::rectangular(10.0, 6.0);
  const auto paths = compute_paths(room, {2.0, 3.0}, {8.0, 3.0}, 0);
  EXPECT_EQ(paths.size(), 1u);
  EXPECT_THROW(compute_paths(room, {1.0, 1.0}, {2.0, 2.0}, 3), PreconditionError);
}

TEST(ImageSourceTest, HallwayGivesTwoSideReflections) {
  const Room room = Room::hallway(40.0, 2.4);
  const auto paths = compute_paths(room, {2.0, 1.2}, {12.0, 1.2}, 1);
  int first_order = 0;
  for (const auto& p : paths)
    if (p.order == 1) ++first_order;
  EXPECT_EQ(first_order, 2);
}

TEST(ImageSourceTest, ObstructedLosCarriesLoss) {
  Room room = Room::rectangular(10.0, 6.0);
  room.add_obstacle({{{5.0, 0.0}, {5.0, 6.0}}, 15.0, "wall"});
  const auto paths = compute_paths(room, {2.0, 3.0}, {8.0, 3.0}, 0);
  EXPECT_DOUBLE_EQ(paths.front().obstruction_loss_db, 15.0);
}

TEST(ImageSourceTest, EmptyRoomStillHasLos) {
  const Room room;  // no walls at all
  const auto paths = compute_paths(room, {0.0, 0.0}, {3.0, 4.0}, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_DOUBLE_EQ(paths.front().length_m, 5.0);
}

}  // namespace
}  // namespace uwb::geom
