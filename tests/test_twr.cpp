// Unit tests: SS-TWR distance computation (Eq. 2) with drift correction.
#include <gtest/gtest.h>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "ranging/twr.hpp"

namespace uwb::ranging {
namespace {

// Build a consistent timestamp quadruple for a given true ToF and reply
// time, with optional clock drift on the responder (relative to the
// initiator's clock, in ppm).
TwrTimestamps make_timestamps(double tof_s, double reply_s,
                              double responder_ppm = 0.0) {
  TwrTimestamps ts;
  ts.t_tx_init = dw::DwTimestamp(1'000'000'000);
  // Responder counters are an arbitrary epoch apart; only differences matter.
  const dw::DwTimestamp resp_epoch(42'424'242);
  ts.t_rx_resp = resp_epoch;
  ts.t_tx_resp =
      resp_epoch.plus_seconds(Seconds(reply_s * (1.0 + responder_ppm * 1e-6)));
  ts.t_rx_init = ts.t_tx_init.plus_seconds(Seconds(2.0 * tof_s + reply_s));
  return ts;
}

TEST(TwrTest, PerfectClocksExactDistance) {
  const double tof = 5.0 / k::c_air;
  const TwrTimestamps ts = make_timestamps(tof, 290e-6);
  EXPECT_NEAR(ss_twr_distance(ts).value(), 5.0, 0.005);
  EXPECT_NEAR(ss_twr_tof(ts).value(), tof, 1e-11);
}

TEST(TwrTest, ZeroDistanceIsZero) {
  const TwrTimestamps ts = make_timestamps(0.0, 290e-6);
  EXPECT_NEAR(ss_twr_distance(ts).value(), 0.0, 0.005);
}

TEST(TwrTest, DriftWithoutCorrectionBiasesDistance) {
  // +5 ppm responder drift over a 290 us reply inflates the reply interval
  // by 1.45 ns -> ~22 cm error if uncorrected (why drift compensation is
  // mandatory for SS-TWR).
  const double tof = 3.0 / k::c_air;
  const TwrTimestamps ts = make_timestamps(tof, 290e-6, +5.0);
  const double uncorrected = ss_twr_distance(ts, 0.0).value();
  EXPECT_LT(uncorrected, 3.0 - 0.15);
  EXPECT_NEAR(3.0 - uncorrected, k::c_air * 5e-6 * 290e-6 / 2.0, 0.02);
}

TEST(TwrTest, CfoCorrectionRemovesDriftBias) {
  const double tof = 3.0 / k::c_air;
  const TwrTimestamps ts = make_timestamps(tof, 290e-6, +5.0);
  EXPECT_NEAR(ss_twr_distance(ts, +5.0).value(), 3.0, 0.01);
}

TEST(TwrTest, NegativeDriftCorrectedSymmetrically) {
  const double tof = 10.0 / k::c_air;
  const TwrTimestamps ts = make_timestamps(tof, 400e-6, -8.0);
  EXPECT_NEAR(ss_twr_distance(ts, -8.0).value(), 10.0, 0.01);
}

TEST(TwrTest, WorksAcrossCounterWrap) {
  // Reply interval straddling the 40-bit wrap must still compute correctly.
  const double tof = 4.0 / k::c_air;
  const std::uint64_t wrap = std::uint64_t{1} << 40;
  TwrTimestamps ts;
  ts.t_tx_init = dw::DwTimestamp(wrap - 1000);
  ts.t_rx_resp = dw::DwTimestamp(wrap - 500);
  ts.t_tx_resp = ts.t_rx_resp.plus_seconds(Seconds(290e-6));
  ts.t_rx_init = ts.t_tx_init.plus_seconds(Seconds(2.0 * tof + 290e-6));
  EXPECT_NEAR(ss_twr_distance(ts).value(), 4.0, 0.01);
}

TEST(AntennaDelayTest, EstimateFromKnownDistance) {
  // d_meas = d_true + c * delay for symmetric devices.
  const double delay = 100e-9;
  const double measured = 5.0 + k::c_air * delay;
  EXPECT_NEAR(estimate_antenna_delay(Meters(measured), Meters(5.0)).value(),
              delay, 1e-12);
}

TEST(AntennaDelayTest, CorrectionRemovesBias) {
  const double measured = 5.0 + k::c_air * (80e-9 + 120e-9) / 2.0;
  EXPECT_NEAR(
      correct_antenna_delay(Meters(measured), Seconds(80e-9), Seconds(120e-9))
          .value(),
      5.0, 1e-9);
  EXPECT_THROW(
      correct_antenna_delay(Meters(5.0), Seconds(-1e-9), Seconds(0.0)),
      PreconditionError);
}


TEST(TwrTest, NonPositiveIntervalsThrow) {
  TwrTimestamps ts = make_timestamps(3.0 / k::c_air, 290e-6);
  std::swap(ts.t_tx_init, ts.t_rx_init);  // negative round time
  EXPECT_THROW(ss_twr_distance(ts), PreconditionError);
}

}  // namespace
}  // namespace uwb::ranging
