// Unit tests: common utilities (units, constants, RNG, precondition macros).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "common/random.hpp"
#include "common/units.hpp"

namespace uwb {
namespace {

TEST(SimTimeTest, ConversionsRoundTrip) {
  const SimTime t = SimTime::from_seconds(1.5);
  EXPECT_EQ(t.ps(), 1'500'000'000'000LL);
  EXPECT_DOUBLE_EQ(t.seconds(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::from_micros(290.0).micros(), 290.0);
  EXPECT_DOUBLE_EQ(SimTime::from_nanos(8.0).nanos(), 8.0);
}

TEST(SimTimeTest, NegativeDurationsRoundCorrectly) {
  EXPECT_EQ(SimTime::from_nanos(-1.0).ps(), -1000);
  EXPECT_EQ(SimTime::from_seconds(-2.5).seconds(), -2.5);
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::from_micros(100.0);
  const SimTime b = SimTime::from_micros(40.0);
  EXPECT_EQ((a + b).micros(), 140.0);
  EXPECT_EQ((a - b).micros(), 60.0);
  EXPECT_EQ((b * 3).micros(), 120.0);
  SimTime c = a;
  c += b;
  EXPECT_EQ(c, SimTime::from_micros(140.0));
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::from_nanos(1.0), SimTime::from_nanos(2.0));
  EXPECT_GE(SimTime::from_nanos(2.0), SimTime::from_nanos(2.0));
  EXPECT_GT(SimTime::from_seconds(1.0), SimTime::from_micros(999999.0));
}

TEST(SimTimeTest, ToStringMentionsMicroseconds) {
  EXPECT_NE(SimTime::from_micros(290.0).to_string().find("290.0"),
            std::string::npos);
}

TEST(UnitsTest, DbLinearRoundTrip) {
  EXPECT_NEAR(db_to_linear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(db_to_linear(10.0), 10.0, 1e-12);
  EXPECT_NEAR(db_to_linear(-3.0), 0.501187, 1e-5);
  EXPECT_NEAR(linear_to_db(100.0), 20.0, 1e-12);
  for (double db : {-20.0, -3.0, 0.0, 7.5, 30.0})
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-9);
}

TEST(ConstantsTest, Dw1000DatasheetValues) {
  // ~15.65 ps tick (User Manual), 63.8976 GHz clock.
  EXPECT_NEAR(k::dw_tick_ps, 15.65, 0.01);
  EXPECT_NEAR(k::dw_tick_hz, 63.8976e9, 1e3);
  // T_s = 1.0016 ns (paper Sect. VII).
  EXPECT_NEAR(k::cir_ts_ns, 1.0016, 0.0001);
  EXPECT_EQ(k::cir_len_prf64, 1016);
  // 108 pulse shapes (paper Sect. V: "up to 108 different pulse shapes").
  EXPECT_GE(k::num_pulse_shapes, 108);
  EXPECT_LE(k::num_pulse_shapes, 109);
}

TEST(ExpectsTest, ThrowsOnViolation) {
  EXPECT_THROW(UWB_EXPECTS(1 == 2), PreconditionError);
  EXPECT_THROW(UWB_ENSURES(false), InvariantError);
  EXPECT_NO_THROW(UWB_EXPECTS(true));
}

TEST(ExpectsTest, MessageNamesExpression) {
  try {
    UWB_EXPECTS(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("2 + 2 == 5"), std::string::npos);
  }
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(RngTest, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(2);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(3));
}

TEST(RngTest, NormalMoments) {
  Rng rng(3);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, NormalZeroSigmaIsMean) {
  Rng rng(4);
  EXPECT_DOUBLE_EQ(rng.normal(7.0, 0.0), 7.0);
}

TEST(RngTest, RayleighMeanPower) {
  // E[a^2] = 2 sigma^2 for Rayleigh(sigma).
  Rng rng(5);
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.rayleigh(1.5);
    EXPECT_GE(v, 0.0);
    sq += v * v;
  }
  EXPECT_NEAR(sq / n, 2.0 * 1.5 * 1.5, 0.15);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.2);
}

TEST(RngTest, PoissonMean) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.15);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ComplexNormalIsCircular) {
  Rng rng(9);
  Complex sum{};
  double power = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const Complex v = rng.complex_normal(0.5);
    sum += v;
    power += std::norm(v);
  }
  EXPECT_NEAR(std::abs(sum) / n, 0.0, 0.02);
  EXPECT_NEAR(power / n, 2.0 * 0.25, 0.02);  // 2 sigma^2
}

TEST(RngTest, RandomPhaseUnitMagnitude) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i)
    EXPECT_NEAR(std::abs(rng.random_phase()), 1.0, 1e-12);
}

TEST(RngTest, ForkGivesIndependentStream) {
  Rng a(11);
  Rng b = a.fork();
  // Streams should not be identical.
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++same;
  EXPECT_LT(same, 5);
}

TEST(RngTest, PreconditionViolations) {
  Rng rng(12);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
  EXPECT_THROW(rng.chance(1.5), PreconditionError);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
}

}  // namespace
}  // namespace uwb
