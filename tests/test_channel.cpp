// Unit tests: path loss, Saleh-Valenzuela diffuse tail, channel realisation
// (the paper's Eq. 1 channel model).
#include <gtest/gtest.h>

#include <cmath>

#include "channel/channel_model.hpp"
#include "channel/path_loss.hpp"
#include "channel/saleh_valenzuela.hpp"
#include "common/constants.hpp"
#include "common/expects.hpp"
#include "common/units.hpp"

namespace uwb::channel {
namespace {

TEST(PathLossTest, FriisKnownValue) {
  // Free space at 1 m, 6.4896 GHz: 20 log10(4 pi d f / c) ~= 48.7 dB.
  const double loss = friis_loss_db(1.0, 6489.6e6);
  EXPECT_NEAR(loss, 48.7, 0.2);
  // +20 dB per decade of distance.
  EXPECT_NEAR(friis_loss_db(10.0, 6489.6e6) - loss, 20.0, 1e-9);
  EXPECT_THROW(friis_loss_db(0.0, 1e9), PreconditionError);
}

TEST(PathLossTest, LogDistanceSlope) {
  const double l1 = log_distance_loss_db(1.0, 1.8, 40.0);
  EXPECT_DOUBLE_EQ(l1, 40.0);
  EXPECT_NEAR(log_distance_loss_db(10.0, 1.8, 40.0) - l1, 18.0, 1e-12);
  EXPECT_NEAR(log_distance_loss_db(100.0, 2.0, 40.0), 80.0, 1e-9);
}

TEST(PathLossTest, LossToAmplitude) {
  EXPECT_DOUBLE_EQ(loss_db_to_amplitude(0.0), 1.0);
  EXPECT_NEAR(loss_db_to_amplitude(20.0), 0.1, 1e-12);
  EXPECT_NEAR(loss_db_to_amplitude(6.0), 0.501, 1e-3);
}

TEST(SalehValenzuelaTest, TotalPowerNearTarget) {
  SalehValenzuelaParams params;
  params.total_power_rel_db = -6.0;
  Rng rng(1);
  // Average realised diffuse power over many draws ~= target.
  double total = 0.0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    for (const DiffuseRay& ray : draw_diffuse_tail(params, rng))
      total += std::norm(ray.amplitude);
  }
  EXPECT_NEAR(total / n, db_to_linear(-6.0), 0.1);
}

TEST(SalehValenzuelaTest, DelaysWithinWindow) {
  SalehValenzuelaParams params;
  params.window_s = 80e-9;
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    for (const DiffuseRay& ray : draw_diffuse_tail(params, rng)) {
      EXPECT_GT(ray.excess_delay_s, 0.0);
      EXPECT_LE(ray.excess_delay_s, params.window_s);
    }
  }
}

TEST(SalehValenzuelaTest, PowerDecaysWithDelay) {
  SalehValenzuelaParams params;
  Rng rng(3);
  // Average power in the first third vs the last third of the window.
  double early = 0.0, late = 0.0;
  int early_n = 0, late_n = 0;
  for (int i = 0; i < 500; ++i) {
    for (const DiffuseRay& ray : draw_diffuse_tail(params, rng)) {
      if (ray.excess_delay_s < params.window_s / 3.0) {
        early += std::norm(ray.amplitude);
        ++early_n;
      } else if (ray.excess_delay_s > 2.0 * params.window_s / 3.0) {
        late += std::norm(ray.amplitude);
        ++late_n;
      }
    }
  }
  ASSERT_GT(early_n, 100);
  ASSERT_GT(late_n, 100);
  EXPECT_GT(early / early_n, 3.0 * (late / late_n));
}

TEST(SalehValenzuelaTest, InvalidParamsThrow) {
  SalehValenzuelaParams params;
  params.window_s = 0.0;
  Rng rng(4);
  EXPECT_THROW(draw_diffuse_tail(params, rng), PreconditionError);
}

class ChannelModelTest : public ::testing::Test {
 protected:
  ChannelModelParams params_;
  geom::Room room_ = geom::Room::rectangular(20.0, 10.0);
};

TEST_F(ChannelModelTest, LosDelayMatchesGeometry) {
  ChannelModel model(room_, params_);
  Rng rng(5);
  const auto ch = model.realize({2.0, 5.0}, {12.0, 5.0}, rng);
  EXPECT_NEAR(ch.los_delay_s, 10.0 / k::c_air, 1e-15);
  ASSERT_FALSE(ch.taps.empty());
  // First deterministic tap is the LOS at the geometric delay.
  const Tap* los = nullptr;
  for (const Tap& t : ch.taps)
    if (t.deterministic && t.order == 0) {
      los = &t;
      break;
    }
  ASSERT_NE(los, nullptr);
  EXPECT_NEAR(los->delay_s, ch.los_delay_s, 1e-15);
}

TEST_F(ChannelModelTest, TapsSortedByDelay) {
  ChannelModel model(room_, params_);
  Rng rng(6);
  const auto ch = model.realize({3.0, 4.0}, {15.0, 7.0}, rng);
  for (std::size_t i = 1; i < ch.taps.size(); ++i)
    EXPECT_GE(ch.taps[i].delay_s, ch.taps[i - 1].delay_s);
}

TEST_F(ChannelModelTest, AmplitudeFallsWithDistance) {
  params_.enable_diffuse = false;
  params_.specular_fading_db = 0.0;
  ChannelModel model(room_, params_);
  Rng rng(7);
  const auto near = model.realize({2.0, 5.0}, {5.0, 5.0}, rng);
  const auto far = model.realize({2.0, 5.0}, {18.0, 5.0}, rng);
  EXPECT_GT(std::abs(near.taps.front().amplitude),
            std::abs(far.taps.front().amplitude));
}

TEST_F(ChannelModelTest, PathLossExponentRespected) {
  params_.enable_diffuse = false;
  params_.specular_fading_db = 0.0;
  params_.max_reflection_order = 0;
  params_.path_loss_exponent = 2.0;
  ChannelModel model(room_, params_);
  Rng rng(8);
  const auto d1 = model.realize({1.0, 5.0}, {2.0, 5.0}, rng);   // 1 m
  const auto d10 = model.realize({1.0, 5.0}, {11.0, 5.0}, rng); // 10 m
  const double ratio =
      std::abs(d1.taps.front().amplitude) / std::abs(d10.taps.front().amplitude);
  EXPECT_NEAR(ratio, 10.0, 1e-6);  // n=2 -> amplitude ~ 1/d
}

TEST_F(ChannelModelTest, DiffuseTailAddsNonDeterministicTaps) {
  ChannelModel model(room_, params_);
  Rng rng(9);
  const auto ch = model.realize({2.0, 5.0}, {10.0, 5.0}, rng);
  int diffuse = 0;
  for (const Tap& t : ch.taps)
    if (!t.deterministic) ++diffuse;
  EXPECT_GT(diffuse, 10);
  // Diffuse taps never precede the LOS.
  for (const Tap& t : ch.taps) {
    if (!t.deterministic) {
      EXPECT_GE(t.delay_s, ch.los_delay_s);
    }
  }
}

TEST_F(ChannelModelTest, DisableDiffuseRemovesThem) {
  params_.enable_diffuse = false;
  ChannelModel model(room_, params_);
  Rng rng(10);
  for (const Tap& t : model.realize({2.0, 5.0}, {10.0, 5.0}, rng).taps)
    EXPECT_TRUE(t.deterministic);
}

TEST_F(ChannelModelTest, ObstructedLosWeakerThanClear) {
  params_.enable_diffuse = false;
  params_.specular_fading_db = 0.0;
  geom::Room blocked = room_;
  blocked.add_obstacle({{{7.0, 0.0}, {7.0, 10.0}}, 20.0, "blocker"});
  ChannelModel clear_model(room_, params_);
  ChannelModel blocked_model(blocked, params_);
  Rng rng(11);
  const auto clear_ch = clear_model.realize({2.0, 5.0}, {12.0, 5.0}, rng);
  const auto blocked_ch = blocked_model.realize({2.0, 5.0}, {12.0, 5.0}, rng);
  EXPECT_NEAR(linear_to_db(std::norm(clear_ch.taps.front().amplitude) /
                           std::norm(blocked_ch.taps.front().amplitude)),
              20.0, 1e-6);
}

TEST_F(ChannelModelTest, NlosCanMakeMpcStrongerThanDirect) {
  // The scenario motivating challenge IV: with a heavily obstructed direct
  // path, a wall reflection dominates the CIR.
  params_.enable_diffuse = false;
  params_.specular_fading_db = 0.0;
  geom::Room blocked = geom::Room::rectangular(20.0, 10.0, 3.0);
  blocked.add_obstacle({{{7.0, 4.0}, {7.0, 6.0}}, 25.0, "cabinet"});
  ChannelModel model(blocked, params_);
  Rng rng(12);
  const auto ch = model.realize({2.0, 5.0}, {12.0, 5.0}, rng);
  const Tap& los = ch.taps.front();
  double strongest_mpc = 0.0;
  for (const Tap& t : ch.taps)
    if (t.order >= 1) strongest_mpc = std::max(strongest_mpc, std::abs(t.amplitude));
  EXPECT_GT(strongest_mpc, std::abs(los.amplitude));
}

TEST_F(ChannelModelTest, ZeroDistanceThrows) {
  ChannelModel model(room_, params_);
  Rng rng(13);
  EXPECT_THROW(model.realize({2.0, 5.0}, {2.0, 5.0}, rng), PreconditionError);
}

TEST_F(ChannelModelTest, InvalidParamsThrow) {
  ChannelModelParams bad;
  bad.max_reflection_order = 5;
  EXPECT_THROW(ChannelModel(room_, bad), PreconditionError);
}

}  // namespace
}  // namespace uwb::channel
