// Unit tests: CIR synthesis, RX timestamping model, first-path detection,
// and energy accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "dsp/peaks.hpp"
#include "dsp/signal.hpp"
#include "dw1000/cir.hpp"
#include "dw1000/energy.hpp"
#include "dw1000/pulse.hpp"
#include "dw1000/timestamping.hpp"

namespace uwb::dw {
namespace {

CirParams noiseless() {
  CirParams p;
  p.noise_sigma = 0.0;
  return p;
}

TEST(CirTest, EmptyArrivalsGiveNoise) {
  CirParams params;
  params.noise_sigma = 0.01;
  Rng rng(1);
  const CirEstimate cir = synthesize_cir({}, params, rng);
  ASSERT_EQ(cir.taps.size(), static_cast<std::size_t>(k::cir_len_prf64));
  EXPECT_NEAR(dsp::noise_sigma_estimate(cir.taps), 0.01, 0.003);
}

TEST(CirTest, SinglePulsePeaksAtArrival) {
  Rng rng(2);
  CirArrival a;
  a.time_into_window_s = 100.0 * k::cir_ts_s;
  a.amplitude = {0.7, 0.0};
  const CirEstimate cir = synthesize_cir({a}, noiseless(), rng);
  const std::size_t peak = dsp::argmax_abs(cir.taps);
  EXPECT_EQ(peak, 100u);
  EXPECT_NEAR(std::abs(cir.taps[peak]), 0.7, 0.01);
}

TEST(CirTest, FractionalDelayShiftsEnergyBetweenTaps) {
  Rng rng(3);
  CirArrival a;
  a.amplitude = {1.0, 0.0};
  a.time_into_window_s = 50.0 * k::cir_ts_s;
  const CirEstimate on_grid = synthesize_cir({a}, noiseless(), rng);
  a.time_into_window_s = 50.5 * k::cir_ts_s;
  const CirEstimate off_grid = synthesize_cir({a}, noiseless(), rng);
  // On-grid: tap 50 carries the peak value; off-grid: taps 50 and 51 split.
  EXPECT_GT(std::abs(on_grid.taps[50]), std::abs(off_grid.taps[50]));
  EXPECT_GT(std::abs(off_grid.taps[51]), std::abs(on_grid.taps[51]));
}

TEST(CirTest, SuperpositionIsLinear) {
  Rng rng1(4), rng2(4), rng3(4);
  CirArrival a;
  a.time_into_window_s = 80.0 * k::cir_ts_s;
  a.amplitude = {0.5, 0.1};
  CirArrival b;
  b.time_into_window_s = 300.0 * k::cir_ts_s;
  b.amplitude = {0.0, -0.4};
  const CirEstimate both = synthesize_cir({a, b}, noiseless(), rng1);
  const CirEstimate only_a = synthesize_cir({a}, noiseless(), rng2);
  const CirEstimate only_b = synthesize_cir({b}, noiseless(), rng3);
  for (std::size_t i = 0; i < both.taps.size(); ++i)
    EXPECT_NEAR(std::abs(both.taps[i] - only_a.taps[i] - only_b.taps[i]), 0.0,
                1e-12);
}

TEST(CirTest, ArrivalOutsideWindowIgnored) {
  Rng rng(5);
  CirArrival a;
  a.time_into_window_s = 2000.0 * k::cir_ts_s;  // beyond the 1016-tap window
  a.amplitude = {1.0, 0.0};
  const CirEstimate cir = synthesize_cir({a}, noiseless(), rng);
  EXPECT_LT(dsp::energy(cir.taps), 1e-12);
}

TEST(CirTest, NegativeArrivalPartiallyClipped) {
  Rng rng(6);
  CirArrival a;
  a.time_into_window_s = -0.5 * pulse_duration_s(k::tc_pgdelay_default);
  a.amplitude = {1.0, 0.0};
  const CirEstimate cir = synthesize_cir({a}, noiseless(), rng);
  // Some trailing ring energy may land in the window, but far less than a
  // full pulse.
  EXPECT_LT(dsp::energy(cir.taps), 0.5);
}

TEST(CirTest, WiderPulseSpreadsMoreTaps) {
  Rng rng(7);
  CirArrival narrow;
  narrow.time_into_window_s = 200.0 * k::cir_ts_s;
  narrow.amplitude = {1.0, 0.0};
  narrow.tc_pgdelay = 0x93;
  CirArrival wide = narrow;
  wide.tc_pgdelay = 0xE6;
  const CirEstimate cn = synthesize_cir({narrow}, noiseless(), rng);
  const CirEstimate cw = synthesize_cir({wide}, noiseless(), rng);
  const auto count_significant = [](const CVec& taps) {
    int n = 0;
    for (const auto& v : taps)
      if (std::abs(v) > 0.05) ++n;
    return n;
  };
  EXPECT_GT(count_significant(cw.taps), count_significant(cn.taps));
}

TEST(CirTest, InvalidParamsThrow) {
  Rng rng(8);
  CirParams bad;
  bad.length = 0;
  EXPECT_THROW(synthesize_cir({}, bad, rng), PreconditionError);
  bad = CirParams{};
  bad.noise_sigma = -1.0;
  EXPECT_THROW(synthesize_cir({}, bad, rng), PreconditionError);
}

TEST(TimestampingTest, SigmaGrowsWithPulseWidth) {
  TimestampModelParams params;
  const double s1 = rx_timestamp_sigma_s(params, 0x93);
  const double s3 = rx_timestamp_sigma_s(params, 0xE6);
  EXPECT_GT(s3, s1);
  EXPECT_NEAR(s1, params.base_jitter_s, 1e-15);
}

TEST(TimestampingTest, NoisyTimestampUnbiased) {
  TimestampModelParams params;
  Rng rng(9);
  const DwTimestamp truth(1'000'000'000);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i)
    sum += noisy_rx_timestamp(params, 0x93, truth, rng).diff_seconds(truth).value();
  EXPECT_NEAR(sum / n, 0.0, 5e-12);
}

TEST(TimestampingTest, NoisySpreadMatchesSigma) {
  TimestampModelParams params;
  Rng rng(10);
  const DwTimestamp truth(5'000'000);
  RVec errs;
  for (int i = 0; i < 5000; ++i)
    errs.push_back(
        noisy_rx_timestamp(params, 0x93, truth, rng).diff_seconds(truth).value());
  double sq = 0.0;
  for (double e : errs) sq += e * e;
  const double sigma = std::sqrt(sq / errs.size());
  EXPECT_NEAR(sigma, params.base_jitter_s, 0.15 * params.base_jitter_s);
}

TEST(TimestampingTest, FirstPathOnCleanPulse) {
  Rng rng(11);
  CirArrival a;
  a.time_into_window_s = 64.0 * k::cir_ts_s;
  a.amplitude = {0.5, 0.0};
  CirParams params;
  params.noise_sigma = 0.004;
  const CirEstimate cir = synthesize_cir({a}, params, rng);
  const double fp = detect_first_path(cir.taps);
  // The leading edge sits within a couple of taps before the peak.
  EXPECT_GT(fp, 58.0);
  EXPECT_LT(fp, 65.0);
}

TEST(TimestampingTest, FirstPathPrefersEarlierWeakerPath) {
  Rng rng(12);
  CirArrival early;
  early.time_into_window_s = 100.0 * k::cir_ts_s;
  early.amplitude = {0.3, 0.0};
  CirArrival late;
  late.time_into_window_s = 140.0 * k::cir_ts_s;
  late.amplitude = {0.9, 0.0};
  CirParams params;
  params.noise_sigma = 0.004;
  const CirEstimate cir = synthesize_cir({early, late}, params, rng);
  const double fp = detect_first_path(cir.taps);
  EXPECT_LT(fp, 105.0);  // locks to the early path, not the strong one
}

TEST(TimestampingTest, InvalidArgsThrow) {
  EXPECT_THROW(detect_first_path(CVec{}), PreconditionError);
  CVec x(16, Complex{1.0, 0.0});
  EXPECT_THROW(detect_first_path(x, 0.0), PreconditionError);
}

TEST(EnergyTest, AccumulatesChargeAndEnergy) {
  EnergyMeter meter;
  meter.add_tx(1.0);  // 1 s at 90 mA
  meter.add_rx(1.0);  // 1 s at 155 mA
  EXPECT_NEAR(meter.charge_c(), 0.245, 1e-9);
  EXPECT_NEAR(meter.energy_j(), 0.245 * 3.3, 1e-9);
  EXPECT_EQ(meter.tx_count(), 1);
  EXPECT_EQ(meter.rx_count(), 1);
}

TEST(EnergyTest, RxDominatesTxPerSecond) {
  // The premise of the paper's motivation: receiving costs more than
  // transmitting on the DW1000.
  EnergyMeter tx_only, rx_only;
  tx_only.add_tx(1.0);
  rx_only.add_rx(1.0);
  EXPECT_GT(rx_only.energy_j(), tx_only.energy_j());
}

TEST(EnergyTest, ResetClears) {
  EnergyMeter meter;
  meter.add_tx(0.5);
  meter.add_idle(100.0);
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.charge_c(), 0.0);
  EXPECT_EQ(meter.tx_count(), 0);
}

TEST(EnergyTest, NegativeDurationThrows) {
  EnergyMeter meter;
  EXPECT_THROW(meter.add_tx(-1.0), PreconditionError);
  EXPECT_THROW(meter.add_rx(-1.0), PreconditionError);
  EXPECT_THROW(meter.add_idle(-1.0), PreconditionError);
}

TEST(EnergyTest, CustomParams) {
  EnergyModelParams params;
  params.tx_current_a = 0.1;
  params.supply_v = 3.0;
  EnergyMeter meter(params);
  meter.add_tx(2.0);
  EXPECT_NEAR(meter.energy_j(), 0.6, 1e-12);
}

}  // namespace
}  // namespace uwb::dw
