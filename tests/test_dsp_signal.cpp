// Unit tests: signal helpers, matched filter, peak search, stats, windows.
#include <gtest/gtest.h>

#include <cmath>

#include "common/expects.hpp"
#include "common/random.hpp"
#include "dsp/matched_filter.hpp"
#include "dsp/peaks.hpp"
#include "dsp/signal.hpp"
#include "dsp/stats.hpp"
#include "dsp/window.hpp"

namespace uwb::dsp {
namespace {

TEST(SignalTest, MagnitudeAndEnergy) {
  const CVec x{{3.0, 4.0}, {0.0, 1.0}};
  const RVec m = magnitude(x);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0], 5.0);
  EXPECT_DOUBLE_EQ(m[1], 1.0);
  EXPECT_DOUBLE_EQ(energy(x), 26.0);
}

TEST(SignalTest, NormalizeEnergy) {
  CVec x{{2.0, 0.0}, {0.0, 2.0}};
  const CVec y = normalize_energy(x);
  EXPECT_NEAR(energy(y), 1.0, 1e-12);
  // Zero signal unchanged.
  const CVec z(4, Complex{});
  EXPECT_EQ(normalize_energy(z), z);
}

TEST(SignalTest, NormalizePeak) {
  CVec x{{0.5, 0.0}, {0.0, -4.0}, {1.0, 0.0}};
  const CVec y = normalize_peak(x);
  double peak = 0.0;
  for (const auto& v : y) peak = std::max(peak, std::abs(v));
  EXPECT_NEAR(peak, 1.0, 1e-12);
}

TEST(SignalTest, AddScaledShiftedInRange) {
  CVec y(6, Complex{});
  const CVec x{{1.0, 0.0}, {2.0, 0.0}};
  add_scaled_shifted(y, x, Complex(2.0, 0.0), 3);
  EXPECT_DOUBLE_EQ(y[3].real(), 2.0);
  EXPECT_DOUBLE_EQ(y[4].real(), 4.0);
  EXPECT_DOUBLE_EQ(y[5].real(), 0.0);
}

TEST(SignalTest, AddScaledShiftedClipsBothEnds) {
  CVec y(3, Complex{});
  const CVec x{{1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}};
  add_scaled_shifted(y, x, Complex(1.0, 0.0), -1);  // x[1], x[2] land on y[0], y[1]
  EXPECT_DOUBLE_EQ(y[0].real(), 1.0);
  EXPECT_DOUBLE_EQ(y[1].real(), 1.0);
  EXPECT_DOUBLE_EQ(y[2].real(), 0.0);
  add_scaled_shifted(y, x, Complex(1.0, 0.0), 2);  // only x[0] fits
  EXPECT_DOUBLE_EQ(y[2].real(), 1.0);
  // Entirely out of range: no-op.
  add_scaled_shifted(y, x, Complex(1.0, 0.0), 10);
  add_scaled_shifted(y, x, Complex(1.0, 0.0), -10);
  EXPECT_DOUBLE_EQ(y[0].real(), 1.0);
}

TEST(SignalTest, SampleAtInterpolates) {
  const CVec x{{0.0, 0.0}, {2.0, 0.0}, {4.0, 0.0}};
  EXPECT_DOUBLE_EQ(sample_at(x, 0.5).real(), 1.0);
  EXPECT_DOUBLE_EQ(sample_at(x, 1.75).real(), 3.5);
  // Clamped outside the range.
  EXPECT_DOUBLE_EQ(sample_at(x, -1.0).real(), 0.0);
  EXPECT_DOUBLE_EQ(sample_at(x, 99.0).real(), 4.0);
  EXPECT_THROW(sample_at(CVec{}, 0.0), PreconditionError);
}

TEST(MatchedFilterTest, NormalisesTemplate) {
  MatchedFilter mf(CVec{{3.0, 0.0}, {4.0, 0.0}});
  EXPECT_NEAR(energy(mf.unit_template()), 1.0, 1e-12);
}

TEST(MatchedFilterTest, PeakAtTemplateStart) {
  // Signal = template placed at index 10; correlation must peak exactly there.
  const CVec tmpl{{1.0, 0.0}, {2.0, 0.0}, {1.0, 0.0}};
  CVec r(64, Complex{});
  add_scaled_shifted(r, tmpl, Complex(1.0, 0.0), 10);
  MatchedFilter mf(tmpl);
  const CVec y = mf.apply(r);
  ASSERT_EQ(y.size(), r.size());
  EXPECT_EQ(argmax_abs(y), 10u);
  // Peak value = ||s|| for a unit-placed raw template.
  EXPECT_NEAR(std::abs(y[10]), std::sqrt(6.0), 1e-9);
}

TEST(MatchedFilterTest, ComplexAmplitudeRecovered) {
  const CVec tmpl{{1.0, 0.0}, {2.0, 0.0}, {1.0, 0.0}};
  const Complex amp{0.3, -0.7};
  CVec r(32, Complex{});
  add_scaled_shifted(r, tmpl, amp, 5);
  MatchedFilter mf(tmpl);
  const CVec y = mf.apply(r);
  // y[peak] / ||s|| = amplitude.
  const Complex est = y[5] / std::sqrt(6.0);
  EXPECT_NEAR(std::abs(est - amp), 0.0, 1e-9);
}

TEST(MatchedFilterTest, FftPathMatchesDirect) {
  Rng rng(5);
  CVec tmpl(40);
  for (auto& v : tmpl) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  CVec r(2048);  // large enough to trigger the FFT path
  for (auto& v : r) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  MatchedFilter mf(tmpl);
  const CVec fast = mf.apply(r);
  const CVec direct = correlate_direct(r, mf.unit_template());
  ASSERT_EQ(fast.size(), direct.size());
  for (std::size_t i = 0; i < fast.size(); ++i)
    EXPECT_LT(std::abs(fast[i] - direct[i]), 1e-9) << "at " << i;
}

TEST(MatchedFilterTest, RepeatedApplyReusesCache) {
  Rng rng(6);
  CVec tmpl(16);
  for (auto& v : tmpl) v = {rng.uniform(-1.0, 1.0), 0.0};
  MatchedFilter mf(tmpl);
  CVec r(4096);
  for (auto& v : r) v = {rng.uniform(-1.0, 1.0), 0.0};
  const CVec y1 = mf.apply(r);
  const CVec y2 = mf.apply(r);
  for (std::size_t i = 0; i < y1.size(); ++i)
    EXPECT_EQ(y1[i], y2[i]);
}

TEST(MatchedFilterTest, EmptyInputsThrow) {
  EXPECT_THROW(MatchedFilter(CVec{}), PreconditionError);
  MatchedFilter mf(CVec{{1.0, 0.0}});
  EXPECT_THROW(mf.apply(CVec{}), PreconditionError);
}

TEST(PeaksTest, ArgmaxAbs) {
  const CVec x{{1.0, 0.0}, {0.0, -5.0}, {2.0, 0.0}};
  EXPECT_EQ(argmax_abs(x), 1u);
  EXPECT_THROW(argmax_abs(CVec{}), PreconditionError);
}

TEST(PeaksTest, ArgmaxReal) {
  EXPECT_EQ(argmax(RVec{1.0, 9.0, 3.0}), 1u);
  EXPECT_THROW(argmax(RVec{}), PreconditionError);
}

TEST(PeaksTest, LocalMaximaRespectsThresholdAndDistance) {
  CVec x(50, Complex{});
  x[10] = 10.0;
  x[12] = 8.0;   // within min_distance of the stronger peak at 10
  x[30] = 5.0;
  x[40] = 0.5;   // below threshold
  const auto peaks = local_maxima(x, 1.0, 5);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].index, 10u);
  EXPECT_EQ(peaks[1].index, 30u);
  EXPECT_DOUBLE_EQ(peaks[0].magnitude, 10.0);
}

TEST(PeaksTest, LocalMaximaSortedByIndex) {
  CVec x(100, Complex{});
  x[80] = 3.0;
  x[20] = 2.0;
  x[50] = 5.0;
  const auto peaks = local_maxima(x, 1.0, 3);
  ASSERT_EQ(peaks.size(), 3u);
  EXPECT_EQ(peaks[0].index, 20u);
  EXPECT_EQ(peaks[1].index, 50u);
  EXPECT_EQ(peaks[2].index, 80u);
}

TEST(PeaksTest, NoiseSigmaEstimateOnPureNoise) {
  Rng rng(7);
  CVec x(4096);
  const double sigma = 0.3;
  for (auto& v : x) v = rng.complex_normal(sigma);
  EXPECT_NEAR(noise_sigma_estimate(x), sigma, 0.02);
}

TEST(PeaksTest, NoiseSigmaRobustToStrongTaps) {
  Rng rng(8);
  CVec x(2048);
  for (auto& v : x) v = rng.complex_normal(0.1);
  // A handful of very strong "signal" taps should barely move the estimate.
  for (int i = 0; i < 20; ++i) x[static_cast<std::size_t>(i * 100)] = {50.0, 0.0};
  EXPECT_NEAR(noise_sigma_estimate(x), 0.1, 0.02);
}

TEST(StatsTest, BasicMoments) {
  const RVec x{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(x), 5.0);
  EXPECT_NEAR(variance(x), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(x), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(rms(RVec{3.0, 4.0}), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(max_abs(RVec{-5.0, 3.0}), 5.0);
}

TEST(StatsTest, SingleElementEdgeCases) {
  EXPECT_DOUBLE_EQ(mean(RVec{42.0}), 42.0);
  EXPECT_DOUBLE_EQ(variance(RVec{42.0}), 0.0);
  EXPECT_DOUBLE_EQ(median(RVec{42.0}), 42.0);
}

TEST(StatsTest, MedianAndPercentile) {
  EXPECT_DOUBLE_EQ(median(RVec{1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(RVec{1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(percentile(RVec{0.0, 10.0}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(RVec{0.0, 10.0}, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(RVec{0.0, 10.0}, 25.0), 2.5);
  EXPECT_THROW(percentile(RVec{1.0}, 101.0), PreconditionError);
  EXPECT_THROW(mean(RVec{}), PreconditionError);
}

TEST(WindowTest, HannProperties) {
  const RVec w = hann(64);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);  // periodic Hann peaks at n/2
  for (double v : w) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(WindowTest, HammingEndpointsNonZero) {
  const RVec w = hamming(32);
  EXPECT_NEAR(w[0], 0.08, 1e-12);
  EXPECT_GT(w[16], 0.99);
}

TEST(WindowTest, GaussianSymmetricAndPeaked) {
  const RVec w = gaussian(33, 0.4);
  EXPECT_DOUBLE_EQ(w[16], 1.0);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(w[i], w[32 - i], 1e-12);
  EXPECT_THROW(gaussian(0, 0.4), PreconditionError);
  EXPECT_THROW(gaussian(8, 0.0), PreconditionError);
}

}  // namespace
}  // namespace uwb::dsp
