// Unit + integration tests: double-sided TWR (drift-immune ranging
// extension) — formula and full simulated POLL/RESP/FINAL exchanges.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "dsp/stats.hpp"
#include "ranging/dstwr.hpp"
#include "ranging/twr.hpp"

namespace uwb::ranging {
namespace {

// Consistent timestamp set for a given ToF, reply delays, and per-node
// drifts (ppm). All intervals measured on the respective local clocks.
DsTwrTimestamps make_timestamps(double tof, double reply_b, double reply_a,
                                double ppm_a = 0.0, double ppm_b = 0.0) {
  const double ka = 1.0 + ppm_a * 1e-6;
  const double kb = 1.0 + ppm_b * 1e-6;
  DsTwrTimestamps ts;
  ts.t_tx_poll = dw::DwTimestamp(1'000'000);
  ts.t_rx_resp = ts.t_tx_poll.plus_seconds(Seconds((2.0 * tof + reply_b) * ka));
  ts.t_tx_final = ts.t_rx_resp.plus_seconds(Seconds(reply_a * ka));
  ts.t_rx_poll = dw::DwTimestamp(777'777'777);
  ts.t_tx_resp = ts.t_rx_poll.plus_seconds(Seconds(reply_b * kb));
  ts.t_rx_final = ts.t_tx_resp.plus_seconds(Seconds((2.0 * tof + reply_a) * kb));
  return ts;
}

TEST(DsTwrFormulaTest, PerfectClocksExact) {
  const double tof = 7.0 / k::c_air;
  const auto ts = make_timestamps(tof, 290e-6, 290e-6);
  EXPECT_NEAR(ds_twr_distance(ts).value(), 7.0, 0.002);
}

TEST(DsTwrFormulaTest, AsymmetricRepliesStillExact) {
  // The asymmetric formula tolerates different reply delays on both sides.
  const double tof = 12.0 / k::c_air;
  const auto ts = make_timestamps(tof, 290e-6, 650e-6);
  EXPECT_NEAR(ds_twr_distance(ts).value(), 12.0, 0.002);
}

TEST(DsTwrFormulaTest, DriftCancelsToFirstOrder) {
  // +-10 ppm drift that would wreck uncorrected SS-TWR leaves DS-TWR at
  // millimetre level.
  const double tof = 5.0 / k::c_air;
  const auto ts = make_timestamps(tof, 290e-6, 290e-6, +10.0, -10.0);
  EXPECT_NEAR(ds_twr_distance(ts).value(), 5.0, 0.005);
  // Contrast: SS-TWR with the same drift and no correction is off by
  // ~c * 20ppm * 290us / 2 ~= 0.87 m.
  TwrTimestamps ss;
  ss.t_tx_init = ts.t_tx_poll;
  ss.t_rx_init = ts.t_rx_resp;
  ss.t_rx_resp = ts.t_rx_poll;
  ss.t_tx_resp = ts.t_tx_resp;
  EXPECT_GT(std::abs(ss_twr_distance(ss).value() - 5.0), 0.5);
}

TEST(DsTwrFormulaTest, WrapSafe) {
  const std::uint64_t wrap = std::uint64_t{1} << 40;
  const double tof = 4.0 / k::c_air;
  DsTwrTimestamps ts;
  ts.t_tx_poll = dw::DwTimestamp(wrap - 100);
  ts.t_rx_resp = ts.t_tx_poll.plus_seconds(Seconds(2.0 * tof + 290e-6));
  ts.t_tx_final = ts.t_rx_resp.plus_seconds(Seconds(290e-6));
  ts.t_rx_poll = dw::DwTimestamp(wrap - 50);
  ts.t_tx_resp = ts.t_rx_poll.plus_seconds(Seconds(290e-6));
  ts.t_rx_final = ts.t_tx_resp.plus_seconds(Seconds(2.0 * tof + 290e-6));
  EXPECT_NEAR(ds_twr_distance(ts).value(), 4.0, 0.002);
}

TEST(DsTwrFormulaTest, NonPositiveIntervalThrows) {
  auto ts = make_timestamps(3.0 / k::c_air, 290e-6, 290e-6);
  std::swap(ts.t_tx_poll, ts.t_rx_resp);
  EXPECT_THROW(ds_twr_tof(ts), PreconditionError);
}

DsTwrSessionConfig session_config(std::uint64_t seed, double distance_m) {
  DsTwrSessionConfig cfg;
  cfg.room = geom::Room::rectangular(30.0, 10.0, 12.0);
  cfg.initiator_position = {2.0, 5.0};
  cfg.responder_position = {2.0 + distance_m, 5.0};
  cfg.seed = seed;
  return cfg;
}

TEST(DsTwrSessionTest, SingleRoundAccuracy) {
  DsTwrSession session(session_config(1, 8.0));
  const auto result = session.run_round();
  ASSERT_TRUE(result.ok);
  EXPECT_NEAR(result.distance_m, 8.0, 0.15);
}

TEST(DsTwrSessionTest, RepeatedRoundsPrecision) {
  DsTwrSession session(session_config(2, 5.0));
  RVec errors;
  for (int i = 0; i < 100; ++i) {
    const auto result = session.run_round();
    if (result.ok) errors.push_back(result.distance_m - 5.0);
  }
  ASSERT_GE(errors.size(), 95u);
  EXPECT_LT(std::abs(dsp::mean(errors)), 0.02);
  EXPECT_LT(dsp::stddev(errors), 0.05);
}

TEST(DsTwrSessionTest, LargeDriftWithoutCfoCorrection) {
  // DS-TWR needs no CFO estimate even with 20-ppm-class crystals.
  DsTwrSessionConfig cfg = session_config(3, 6.0);
  cfg.clock_drift_sigma_ppm = 20.0;
  DsTwrSession session(cfg);
  RVec errors;
  for (int i = 0; i < 50; ++i) {
    const auto result = session.run_round();
    if (result.ok) errors.push_back(result.distance_m - 6.0);
  }
  ASSERT_GE(errors.size(), 45u);
  EXPECT_LT(std::abs(dsp::mean(errors)), 0.05);
}

TEST(DsTwrSessionTest, TimestampsConsistent) {
  DsTwrSession session(session_config(4, 10.0));
  const auto result = session.run_round();
  ASSERT_TRUE(result.ok);
  const auto& ts = result.timestamps;
  // Round/reply intervals are close to the configured 290 us.
  EXPECT_NEAR(ts.t_tx_resp.diff_seconds(ts.t_rx_poll).value(), 290e-6, 1e-6);
  EXPECT_NEAR(ts.t_rx_resp.diff_seconds(ts.t_tx_poll).value(), 290e-6, 1e-6);
  EXPECT_GT(ts.t_rx_final.diff_seconds(ts.t_tx_resp).value(), 0.0);
}

TEST(DsTwrSessionTest, TrueDistanceHelper) {
  DsTwrSession session(session_config(5, 7.5));
  EXPECT_DOUBLE_EQ(session.true_distance(), 7.5);
}

}  // namespace
}  // namespace uwb::ranging
