// Unit tests: cross-correlation responder identification (the challenge-II
// baseline) — snippet extraction and matching behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "dsp/signal.hpp"
#include "dw1000/cir.hpp"
#include "ranging/search_subtract.hpp"
#include "ranging/xcorr_id.hpp"

namespace uwb::ranging {
namespace {

// A CIR with a distinctive multipath signature around the main response.
dw::CirEstimate signature_cir(double main_tap, double mpc_offset_taps,
                              double mpc_amp, std::uint64_t seed) {
  std::vector<dw::CirArrival> arrivals;
  dw::CirArrival main;
  main.time_into_window_s = main_tap * k::cir_ts_s;
  main.amplitude = {0.5, 0.0};
  arrivals.push_back(main);
  dw::CirArrival mpc;
  mpc.time_into_window_s = (main_tap + mpc_offset_taps) * k::cir_ts_s;
  mpc.amplitude = {mpc_amp, 0.1};
  arrivals.push_back(mpc);
  dw::CirParams params;
  params.noise_sigma = 0.003;
  Rng rng(seed);
  return dw::synthesize_cir(arrivals, params, rng);
}

DetectedResponse at_tap(double tap) {
  DetectedResponse d;
  d.tau_s = tap * k::cir_ts_s;
  d.amplitude = {0.5, 0.0};
  return d;
}

TEST(XcorrIdTest, SnippetIsUnitEnergyAndCentred) {
  const auto cir = signature_cir(100.0, 4.0, 0.2, 1);
  const CVec snippet = XcorrIdentifier::extract_snippet(
      cir.taps, k::cir_ts_s, 100.0 * k::cir_ts_s, 15e-9);
  EXPECT_NEAR(dsp::energy(snippet), 1.0, 1e-9);
  // Centre sample carries the main peak.
  const std::size_t centre = snippet.size() / 2;
  for (const auto& v : snippet)
    EXPECT_LE(std::abs(v), std::abs(snippet[centre]) + 1e-9);
}

TEST(XcorrIdTest, SnippetClipsAtEdges) {
  const auto cir = signature_cir(3.0, 4.0, 0.2, 2);
  const CVec snippet = XcorrIdentifier::extract_snippet(
      cir.taps, k::cir_ts_s, 3.0 * k::cir_ts_s, 15e-9);
  EXPECT_EQ(snippet.size(), 2u * 15u + 1u);  // window intact, zero-padded
}

TEST(XcorrIdTest, IdentifiesMatchingSignature) {
  // Two responders with clearly different multipath signatures.
  XcorrIdentifier id;
  const auto ref_a = signature_cir(100.0, 3.0, 0.30, 3);   // close strong MPC
  const auto ref_b = signature_cir(100.0, 11.0, 0.18, 4);  // far weak MPC
  id.add_reference(0, ref_a.taps, k::cir_ts_s, 100.0 * k::cir_ts_s);
  id.add_reference(1, ref_b.taps, k::cir_ts_s, 100.0 * k::cir_ts_s);
  // A fresh draw of signature A must match reference 0.
  const auto probe = signature_cir(100.0, 3.0, 0.30, 5);
  const auto match = id.identify(probe.taps, k::cir_ts_s, at_tap(100.0));
  EXPECT_EQ(match.responder_id, 0);
  EXPECT_GT(match.score, 0.8);
}

TEST(XcorrIdTest, ChangedSignatureDropsScore) {
  // The paper's argument: once the responder moves, its recorded signature
  // no longer matches.
  XcorrIdentifier id;
  const auto ref = signature_cir(100.0, 3.0, 0.30, 6);
  id.add_reference(0, ref.taps, k::cir_ts_s, 100.0 * k::cir_ts_s);
  const auto same = signature_cir(100.0, 3.0, 0.30, 7);
  const auto moved = signature_cir(100.0, 12.0, 0.30, 8);
  const double score_same =
      id.identify(same.taps, k::cir_ts_s, at_tap(100.0)).score;
  const double score_moved =
      id.identify(moved.taps, k::cir_ts_s, at_tap(100.0)).score;
  EXPECT_GT(score_same, score_moved + 0.1);
}

TEST(XcorrIdTest, LagSearchAbsorbsSmallShift) {
  XcorrIdentifier id;
  const auto ref = signature_cir(100.0, 3.0, 0.30, 9);
  id.add_reference(0, ref.taps, k::cir_ts_s, 100.0 * k::cir_ts_s);
  // Same signature arriving 2 taps later (TX truncation shift).
  const auto shifted = signature_cir(102.0, 3.0, 0.30, 10);
  const auto match = id.identify(shifted.taps, k::cir_ts_s, at_tap(100.0));
  EXPECT_EQ(match.responder_id, 0);
  EXPECT_GT(match.score, 0.7);
}

TEST(XcorrIdTest, NoReferencesGiveNoMatch) {
  XcorrIdentifier id;
  const auto cir = signature_cir(100.0, 3.0, 0.3, 11);
  const auto match = id.identify(cir.taps, k::cir_ts_s, at_tap(100.0));
  EXPECT_EQ(match.responder_id, -1);
  EXPECT_DOUBLE_EQ(match.score, 0.0);
}

TEST(XcorrIdTest, InvalidArgsThrow) {
  EXPECT_THROW(XcorrIdentifier{0.0}, PreconditionError);
  XcorrIdentifier id;
  const auto cir = signature_cir(100.0, 3.0, 0.3, 12);
  EXPECT_THROW(id.add_reference(-1, cir.taps, k::cir_ts_s, 0.0),
               PreconditionError);
  EXPECT_THROW(
      XcorrIdentifier::extract_snippet(CVec{}, k::cir_ts_s, 0.0, 15e-9),
      PreconditionError);
}

}  // namespace
}  // namespace uwb::ranging
