// Unit tests: TC_PGDELAY pulse shaping (paper Sect. V, Fig. 5).
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "dsp/signal.hpp"
#include "dw1000/pulse.hpp"

namespace uwb::dw {
namespace {

// The paper's canonical registers (Fig. 5).
constexpr std::uint8_t kS1 = 0x93;
constexpr std::uint8_t kS2 = 0xC8;
constexpr std::uint8_t kS3 = 0xE6;
constexpr std::uint8_t kS4 = 0xF0;

TEST(PulseTest, DefaultWidthFactorIsOne) {
  EXPECT_DOUBLE_EQ(pulse_width_factor(kS1), 1.0);
}

TEST(PulseTest, WidthGrowsMonotonically) {
  double prev = 0.0;
  for (int reg = kS1; reg <= k::tc_pgdelay_max; ++reg) {
    const double w = pulse_width_factor(static_cast<std::uint8_t>(reg));
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST(PulseTest, CanonicalOrderingMatchesFig5) {
  EXPECT_LT(pulse_width_factor(kS1), pulse_width_factor(kS2));
  EXPECT_LT(pulse_width_factor(kS2), pulse_width_factor(kS3));
  EXPECT_LT(pulse_width_factor(kS3), pulse_width_factor(kS4));
}

TEST(PulseTest, BelowDefaultRegisterThrows) {
  // 0x93 is the lower limit (narrower would violate the spectral mask).
  EXPECT_THROW(pulse_width_factor(0x92), PreconditionError);
  EXPECT_THROW(pulse_value(0x00, 0.0), PreconditionError);
}

TEST(PulseTest, PeakNearUnityAtZero) {
  for (std::uint8_t reg : {kS1, kS2, kS3, kS4}) {
    const double v = pulse_value(reg, 0.0);
    EXPECT_GT(v, 0.85);
    EXPECT_LE(v, 1.05);
  }
}

TEST(PulseTest, DecaysToZeroOutsideSupport) {
  for (std::uint8_t reg : {kS1, kS3}) {
    const double half = pulse_duration_s(reg) / 2.0;
    EXPECT_LT(std::abs(pulse_value(reg, -half)), 1e-3);
    EXPECT_LT(std::abs(pulse_value(reg, +half)), 1e-3);
  }
}

TEST(PulseTest, HasTrailingRingLobe) {
  // Fig. 5 shows asymmetric ringing after the main lobe; our template
  // reproduces a negative trailing lobe.
  const double sigma = 0.75e-9;
  double min_v = 0.0;
  for (double t = 0.5 * sigma; t < 4.0 * sigma; t += 0.05 * sigma)
    min_v = std::min(min_v, pulse_value(kS1, t));
  EXPECT_LT(min_v, -0.05);
}

TEST(PulseTest, DefaultBandwidthIs900MHz) {
  EXPECT_DOUBLE_EQ(pulse_bandwidth_hz(kS1), 900e6);
  EXPECT_LT(pulse_bandwidth_hz(kS3), 900e6 / 2.0);
}

TEST(PulseTest, DurationScalesWithWidth) {
  EXPECT_NEAR(pulse_duration_s(kS2) / pulse_duration_s(kS1),
              pulse_width_factor(kS2), 1e-9);
}

TEST(PulseTest, TemplateOddLengthPeakCentred) {
  const double ts = k::cir_ts_s / 8.0;
  const CVec tmpl = sample_pulse_template(kS1, ts);
  ASSERT_EQ(tmpl.size() % 2, 1u);
  const std::size_t centre = template_centre_index(kS1, ts);
  EXPECT_EQ(centre, tmpl.size() / 2);
  // The centre sample is the global magnitude maximum.
  for (const auto& v : tmpl) EXPECT_LE(std::abs(v), std::abs(tmpl[centre]) + 1e-12);
}

TEST(PulseTest, TemplateSamplesMatchContinuousPulse) {
  const double ts = 0.2e-9;
  const CVec tmpl = sample_pulse_template(kS3, ts);
  const auto centre = static_cast<double>(template_centre_index(kS3, ts));
  for (std::size_t i = 0; i < tmpl.size(); ++i) {
    const double t = (static_cast<double>(i) - centre) * ts;
    EXPECT_NEAR(tmpl[i].real(), pulse_value(kS3, t), 1e-12);
    EXPECT_NEAR(tmpl[i].imag(), 0.0, 1e-12);
  }
}

TEST(PulseTest, CrossCorrelationBelowUnity) {
  // The Sect. V classifier needs the canonical shapes to be distinguishable:
  // normalised cross-correlation well below 1.
  const double ts = k::cir_ts_s / 8.0;
  const CVec s1 = dsp::normalize_energy(sample_pulse_template(kS1, ts));
  const CVec s2 = dsp::normalize_energy(sample_pulse_template(kS2, ts));
  const CVec s3 = dsp::normalize_energy(sample_pulse_template(kS3, ts));
  const auto xcorr_max = [](const CVec& a, const CVec& b) {
    double best = 0.0;
    const auto na = static_cast<std::ptrdiff_t>(a.size());
    const auto nb = static_cast<std::ptrdiff_t>(b.size());
    for (std::ptrdiff_t lag = -nb + 1; lag < na; ++lag) {
      Complex acc{};
      for (std::ptrdiff_t i = std::max<std::ptrdiff_t>(0, lag);
           i < std::min(na, lag + nb); ++i)
        acc += a[static_cast<std::size_t>(i)] *
               std::conj(b[static_cast<std::size_t>(i - lag)]);
      best = std::max(best, std::abs(acc));
    }
    return best;
  };
  EXPECT_LT(xcorr_max(s1, s2), 0.90);
  EXPECT_LT(xcorr_max(s1, s3), 0.72);
  EXPECT_LT(xcorr_max(s2, s3), 0.88);
}

TEST(PulseTest, AtLeast108DistinctShapes) {
  // Paper Sect. V: "up to 108 different pulse shapes are supported".
  EXPECT_GE(k::tc_pgdelay_max - k::tc_pgdelay_default, 107);
  // All register values sample without error.
  for (int reg = k::tc_pgdelay_default; reg <= k::tc_pgdelay_max; ++reg)
    EXPECT_NO_THROW(pulse_value(static_cast<std::uint8_t>(reg), 0.0));
}

TEST(PulseTest, InvalidSamplePeriodThrows) {
  EXPECT_THROW(sample_pulse_template(kS1, 0.0), PreconditionError);
  EXPECT_THROW(template_centre_index(kS1, -1.0), PreconditionError);
}

}  // namespace
}  // namespace uwb::dw
