// SIMD dispatch and equivalence tests (DESIGN.md §12): every vector level
// must reproduce the scalar reference — bit-identically for the elementwise
// kernels, to roundoff for the reductions — at sizes that do not divide the
// vector width, and the detection pipeline built on top must stay equivalent
// (and thread-count deterministic) at every forced level.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/constants.hpp"
#include "common/random.hpp"
#include "dsp/fft.hpp"
#include "dw1000/cir.hpp"
#include "ranging/search_subtract.hpp"
#include "runner/monte_carlo.hpp"
#include "simd/simd.hpp"

namespace uwb {
namespace {

// Sizes chosen to exercise every tail case: below, at, and off the 2- and
// 4-double vector widths, plus one large buffer.
constexpr std::size_t kSizes[] = {1, 2, 3, 5, 8, 17, 64, 1023};

std::vector<simd::Level> supported_levels() {
  std::vector<simd::Level> levels{simd::Level::kScalar};
  const simd::Level max = simd::runtime_max_level();
  if (max >= simd::Level::kSse2) levels.push_back(simd::Level::kSse2);
  if (max >= simd::Level::kAvx2) levels.push_back(simd::Level::kAvx2);
  return levels;
}

// Restores the startup dispatch level when a test is done forcing levels.
struct LevelGuard {
  simd::Level saved = simd::active_level();
  ~LevelGuard() { simd::set_active_level(saved); }
};

std::vector<double> random_doubles(std::uint64_t seed, std::size_t count) {
  Rng rng(seed);
  std::vector<double> v(count);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

TEST(SimdDispatch, LevelNamesRoundTrip) {
  for (const simd::Level level :
       {simd::Level::kScalar, simd::Level::kSse2, simd::Level::kAvx2}) {
    const auto parsed = simd::parse_level(simd::level_name(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(simd::parse_level("avx512").has_value());
  EXPECT_FALSE(simd::parse_level("").has_value());
  EXPECT_FALSE(simd::parse_level("Scalar").has_value());
}

TEST(SimdDispatch, SetActiveLevelSwitchesWithinRuntimeMax) {
  LevelGuard guard;
  for (const simd::Level level : supported_levels()) {
    ASSERT_TRUE(simd::set_active_level(level));
    EXPECT_EQ(simd::active_level(), level);
  }
}

TEST(SimdKernels, ElementwiseKernelsBitIdenticalAcrossLevels) {
  LevelGuard guard;
  for (const std::size_t n : kSizes) {
    const auto a = random_doubles(2 * n, 2 * n);
    const auto b = random_doubles(2 * n + 1, 2 * n);
    const double s = 0.37;

    struct Variant {
      const char* name;
      void (*run)(const double*, const double*, double, double*, std::size_t);
    };
    const Variant variants[] = {
        {"cmul",
         [](const double* x, const double* y, double, double* out,
            std::size_t m) { simd::cmul(x, y, out, m); }},
        {"cmul_conj",
         [](const double* x, const double* y, double, double* out,
            std::size_t m) { simd::cmul_conj(x, y, out, m); }},
        {"cmul_scaled", simd::cmul_scaled},
        {"cmul_conj_scaled", simd::cmul_conj_scaled},
        {"scale",
         [](const double* x, const double*, double sc, double* out,
            std::size_t m) {
           std::copy(x, x + 2 * m, out);
           simd::scale(out, sc, m);
         }},
        {"copy_scaled",
         [](const double* x, const double*, double sc, double* out,
            std::size_t m) { simd::copy_scaled(x, sc, out, m); }},
    };

    for (const auto& variant : variants) {
      ASSERT_TRUE(simd::set_active_level(simd::Level::kScalar));
      std::vector<double> ref(2 * n);
      variant.run(a.data(), b.data(), s, ref.data(), n);
      for (const simd::Level level : supported_levels()) {
        ASSERT_TRUE(simd::set_active_level(level));
        std::vector<double> out(2 * n);
        variant.run(a.data(), b.data(), s, out.data(), n);
        for (std::size_t k = 0; k < 2 * n; ++k)
          ASSERT_EQ(out[k], ref[k])
              << variant.name << " level=" << simd::level_name(level)
              << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(SimdKernels, ButterflyPairsBitIdenticalAcrossLevels) {
  LevelGuard guard;
  for (const std::size_t n : {2ul, 4ul, 6ul, 34ul, 1024ul}) {
    const auto input = random_doubles(7 * n, 2 * n);
    ASSERT_TRUE(simd::set_active_level(simd::Level::kScalar));
    auto ref = input;
    simd::butterfly_pairs(ref.data(), n);
    for (const simd::Level level : supported_levels()) {
      ASSERT_TRUE(simd::set_active_level(level));
      auto out = input;
      simd::butterfly_pairs(out.data(), n);
      for (std::size_t k = 0; k < 2 * n; ++k)
        ASSERT_EQ(out[k], ref[k])
            << "level=" << simd::level_name(level) << " n=" << n << " k=" << k;
    }
  }
}

TEST(SimdKernels, FftStageBitIdenticalAcrossLevels) {
  LevelGuard guard;
  for (const std::size_t len : {8ul, 16ul}) {
    const std::size_t n = 4 * len;
    std::vector<double> w(len);  // len/2 interleaved twiddles
    for (std::size_t j = 0; j < len / 2; ++j) {
      const double ang =
          -2.0 * 3.14159265358979323846 * static_cast<double>(j) /
          static_cast<double>(len);
      w[2 * j] = std::cos(ang);
      w[2 * j + 1] = std::sin(ang);
    }
    const auto input = random_doubles(len, 2 * n);
    for (const bool inverse : {false, true}) {
      ASSERT_TRUE(simd::set_active_level(simd::Level::kScalar));
      auto ref = input;
      simd::fft_stage(ref.data(), w.data(), n, len, inverse);
      for (const simd::Level level : supported_levels()) {
        ASSERT_TRUE(simd::set_active_level(level));
        auto out = input;
        simd::fft_stage(out.data(), w.data(), n, len, inverse);
        for (std::size_t k = 0; k < 2 * n; ++k)
          ASSERT_EQ(out[k], ref[k])
              << "level=" << simd::level_name(level) << " len=" << len
              << " inverse=" << inverse << " k=" << k;
      }
    }
  }
}

TEST(SimdKernels, ArgmaxNormMatchesScalarAndBreaksTiesLow) {
  LevelGuard guard;
  for (const std::size_t n : kSizes) {
    auto y = random_doubles(31 * n, 2 * n);
    ASSERT_TRUE(simd::set_active_level(simd::Level::kScalar));
    const std::size_t ref = simd::argmax_norm(y.data(), n);
    for (const simd::Level level : supported_levels()) {
      ASSERT_TRUE(simd::set_active_level(level));
      EXPECT_EQ(simd::argmax_norm(y.data(), n), ref)
          << "level=" << simd::level_name(level) << " n=" << n;
    }
  }
}

TEST(SimdKernels, ArgmaxNormTiesResolveToLowestIndexEverywhere) {
  LevelGuard guard;
  // Duplicate maxima placed across different vector lanes and in the scalar
  // tail; every level must report the first occurrence.
  struct Case {
    std::size_t n;
    std::vector<std::size_t> max_at;
  };
  const Case cases[] = {
      {9, {1, 8}},   {12, {0, 3}},   {16, {2, 6, 14}},
      {17, {5, 16}}, {21, {19, 20}}, {4, {0, 1, 2, 3}},
  };
  for (const auto& c : cases) {
    std::vector<double> y(2 * c.n, 0.0);
    for (std::size_t j = 0; j < c.n; ++j) {
      y[2 * j] = 0.01 * static_cast<double>(j % 3);
      y[2 * j + 1] = 0.0;
    }
    for (const std::size_t j : c.max_at) {
      y[2 * j] = 3.0;
      y[2 * j + 1] = 4.0;  // |y|^2 = 25, the shared maximum
    }
    for (const simd::Level level : supported_levels()) {
      ASSERT_TRUE(simd::set_active_level(level));
      EXPECT_EQ(simd::argmax_norm(y.data(), c.n), c.max_at.front())
          << "level=" << simd::level_name(level) << " n=" << c.n;
    }
  }
  // Degenerate all-equal input: index 0 at every level.
  std::vector<double> flat(2 * 11, 0.5);
  for (const simd::Level level : supported_levels()) {
    ASSERT_TRUE(simd::set_active_level(level));
    EXPECT_EQ(simd::argmax_norm(flat.data(), 11), 0u)
        << "level=" << simd::level_name(level);
  }
}

TEST(SimdKernels, ReductionsMatchScalarToRoundoff) {
  LevelGuard guard;
  for (const std::size_t n : kSizes) {
    const auto a = random_doubles(41 * n, 2 * n);
    const auto b = random_doubles(43 * n, 2 * n);
    ASSERT_TRUE(simd::set_active_level(simd::Level::kScalar));
    double ref_re = 0.0, ref_im = 0.0;
    simd::cdot_conj(a.data(), b.data(), n, &ref_re, &ref_im);
    const double bound =
        1e-13 * (1.0 + static_cast<double>(n));  // generous roundoff budget
    for (const simd::Level level : supported_levels()) {
      ASSERT_TRUE(simd::set_active_level(level));
      double re = 0.0, im = 0.0;
      simd::cdot_conj(a.data(), b.data(), n, &re, &im);
      EXPECT_NEAR(re, ref_re, bound)
          << "level=" << simd::level_name(level) << " n=" << n;
      EXPECT_NEAR(im, ref_im, bound)
          << "level=" << simd::level_name(level) << " n=" << n;
    }
  }
}

TEST(SimdKernels, Sse2ReductionsBitIdenticalToScalar) {
  // SSE2 accumulates one complex per step in scalar order — unlike AVX2 it
  // promises exact agreement, which the dispatch docs rely on.
  if (simd::runtime_max_level() < simd::Level::kSse2)
    GTEST_SKIP() << "no SSE2 on this machine";
  LevelGuard guard;
  for (const std::size_t n : kSizes) {
    const auto a = random_doubles(53 * n, 2 * n);
    const auto b = random_doubles(59 * n, 2 * n);
    ASSERT_TRUE(simd::set_active_level(simd::Level::kScalar));
    double ref_re = 0.0, ref_im = 0.0;
    simd::cdot_conj(a.data(), b.data(), n, &ref_re, &ref_im);
    ASSERT_TRUE(simd::set_active_level(simd::Level::kSse2));
    double re = 0.0, im = 0.0;
    simd::cdot_conj(a.data(), b.data(), n, &re, &im);
    EXPECT_EQ(re, ref_re) << "n=" << n;
    EXPECT_EQ(im, ref_im) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Transform-level equivalence: the FFT uses only elementwise kernels, so its
// output must be bit-identical across levels — including the Bluestein path
// for odd and otherwise awkward lengths.

TEST(SimdFft, TransformsBitIdenticalAcrossLevels) {
  LevelGuard guard;
  // Pow2, odd primes, odd composite, even non-pow2 (the CIR tap count 1016).
  for (const std::size_t n :
       {1ul, 2ul, 4ul, 8ul, 1024ul, 3ul, 7ul, 127ul, 225ul, 1000ul, 1016ul}) {
    Rng rng(500 + n);
    CVec x(n);
    for (auto& v : x) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    ASSERT_TRUE(simd::set_active_level(simd::Level::kScalar));
    const CVec ref_fwd = dsp::fft(x);
    const CVec ref_inv = dsp::ifft(x);
    for (const simd::Level level : supported_levels()) {
      ASSERT_TRUE(simd::set_active_level(level));
      dsp::clear_fft_plan_cache();  // plans are level-independent; rebuild anyway
      const CVec fwd = dsp::fft(x);
      const CVec inv = dsp::ifft(x);
      for (std::size_t k = 0; k < n; ++k) {
        ASSERT_EQ(fwd[k].real(), ref_fwd[k].real())
            << "fwd level=" << simd::level_name(level) << " n=" << n;
        ASSERT_EQ(fwd[k].imag(), ref_fwd[k].imag())
            << "fwd level=" << simd::level_name(level) << " n=" << n;
        ASSERT_EQ(inv[k].real(), ref_inv[k].real())
            << "inv level=" << simd::level_name(level) << " n=" << n;
        ASSERT_EQ(inv[k].imag(), ref_inv[k].imag())
            << "inv level=" << simd::level_name(level) << " n=" << n;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Detector-level equivalence under forced levels, and the batched entry
// point against its single-CIR counterpart.

constexpr std::uint8_t kShapeBank[] = {0x93, 0xB5, 0xE6};

dw::CirEstimate random_cir(std::uint64_t seed, int min_arrivals,
                           int max_arrivals) {
  Rng rng(seed);
  const auto n = static_cast<int>(rng.uniform_int(min_arrivals, max_arrivals));
  std::vector<dw::CirArrival> arrivals;
  double pos = rng.uniform(40.0, 120.0);
  for (int i = 0; i < n; ++i) {
    dw::CirArrival a;
    a.time_into_window_s = pos * k::cir_ts_s;
    a.amplitude = Complex(rng.uniform(0.1, 0.7), 0.0) * rng.random_phase();
    a.tc_pgdelay =
        kShapeBank[static_cast<std::size_t>(rng.uniform_int(0, 2))];
    arrivals.push_back(a);
    pos += rng.uniform(6.0, 180.0);
  }
  dw::CirParams params;
  params.noise_sigma = 0.004;
  return dw::synthesize_cir(arrivals, params, rng);
}

ranging::DetectorConfig multi_shape_config() {
  ranging::DetectorConfig cfg;
  cfg.shape_registers.assign(std::begin(kShapeBank), std::end(kShapeBank));
  return cfg;
}

void expect_identical_responses(
    const std::vector<ranging::DetectedResponse>& got,
    const std::vector<ranging::DetectedResponse>& want, const char* what,
    std::size_t item) {
  ASSERT_EQ(got.size(), want.size()) << what << " item=" << item;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].tau_s, want[i].tau_s) << what << " item=" << item;
    EXPECT_EQ(got[i].index_upsampled, want[i].index_upsampled)
        << what << " item=" << item;
    EXPECT_EQ(got[i].amplitude, want[i].amplitude) << what << " item=" << item;
    EXPECT_EQ(got[i].shape_index, want[i].shape_index)
        << what << " item=" << item;
  }
}

TEST(SimdDetector, FastPathMatchesExactAtEveryLevel) {
  LevelGuard guard;
  for (const simd::Level level : supported_levels()) {
    ASSERT_TRUE(simd::set_active_level(level));
    ranging::SearchSubtractDetector fast{multi_shape_config()};
    ranging::DetectorConfig exact_cfg = multi_shape_config();
    exact_cfg.exact_recompute = true;
    ranging::SearchSubtractDetector exact{exact_cfg};
    for (std::uint64_t seed = 300; seed <= 305; ++seed) {
      const auto cir = random_cir(seed, 2, 5);
      const auto f = fast.detect(cir.taps, cir.ts_s, 6);
      const auto e = exact.detect(cir.taps, cir.ts_s, 6);
      ASSERT_EQ(f.size(), e.size())
          << "level=" << simd::level_name(level) << " seed=" << seed;
      for (std::size_t i = 0; i < f.size(); ++i) {
        EXPECT_EQ(f[i].shape_index, e[i].shape_index);
        EXPECT_NEAR(f[i].index_upsampled, e[i].index_upsampled, 1e-6);
        EXPECT_NEAR(std::abs(f[i].amplitude - e[i].amplitude), 0.0, 1e-9);
      }
    }
  }
}

TEST(SimdDetector, BatchMatchesSingleDetectAtEveryLevelAndBatchSize) {
  LevelGuard guard;
  // Sizes around the internal chunk: 1 (degenerate), 3 (partial chunk),
  // 17 and 33 (one / two full chunks plus a remainder).
  for (const simd::Level level : supported_levels()) {
    ASSERT_TRUE(simd::set_active_level(level));
    ranging::SearchSubtractDetector det{multi_shape_config()};
    for (const std::size_t batch : {1ul, 3ul, 17ul, 33ul}) {
      std::vector<CVec> cirs;
      double ts_s = 0.0;
      for (std::size_t i = 0; i < batch; ++i) {
        const auto cir = random_cir(700 + i, 1, 4);
        cirs.push_back(cir.taps);
        ts_s = cir.ts_s;
      }
      const auto results = det.detect_batch(cirs, ts_s, 5);
      ASSERT_EQ(results.size(), batch);
      for (std::size_t i = 0; i < batch; ++i)
        expect_identical_responses(results[i],
                                   det.detect(cirs[i], ts_s, 5),
                                   simd::level_name(level), i);
    }
  }
}

TEST(SimdDetector, BatchMatchesSingleWithSingleTemplateBank) {
  LevelGuard guard;
  for (const simd::Level level : supported_levels()) {
    ASSERT_TRUE(simd::set_active_level(level));
    ranging::SearchSubtractDetector det{ranging::DetectorConfig{}};
    std::vector<CVec> cirs;
    double ts_s = 0.0;
    for (std::size_t i = 0; i < 5; ++i) {
      const auto cir = random_cir(900 + i, 1, 3);
      cirs.push_back(cir.taps);
      ts_s = cir.ts_s;
    }
    const auto results = det.detect_batch(cirs, ts_s, 4);
    ASSERT_EQ(results.size(), cirs.size());
    for (std::size_t i = 0; i < cirs.size(); ++i)
      expect_identical_responses(results[i], det.detect(cirs[i], ts_s, 4),
                                 simd::level_name(level), i);
  }
}

TEST(SimdDetector, BatchHonoursExactRecompute) {
  ranging::DetectorConfig cfg = multi_shape_config();
  cfg.exact_recompute = true;
  ranging::SearchSubtractDetector det{cfg};
  std::vector<CVec> cirs;
  double ts_s = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto cir = random_cir(1100 + i, 1, 3);
    cirs.push_back(cir.taps);
    ts_s = cir.ts_s;
  }
  const auto results = det.detect_batch(cirs, ts_s, 4);
  ASSERT_EQ(results.size(), cirs.size());
  for (std::size_t i = 0; i < cirs.size(); ++i)
    expect_identical_responses(results[i], det.detect(cirs[i], ts_s, 4),
                               "exact", i);
}

TEST(SimdDetector, McDetectionBitIdenticalAcrossThreadCountsAtEveryLevel) {
  // The derive_seed contract under SIMD: with the level fixed, Monte-Carlo
  // detection is bitwise identical at any thread count. Worker threads
  // inherit the process-global dispatch table.
  LevelGuard guard;
  for (const simd::Level level : supported_levels()) {
    ASSERT_TRUE(simd::set_active_level(level));
    const auto run = [](int threads) {
      runner::MonteCarlo::Config cfg;
      cfg.threads = threads;
      cfg.base_seed = 77;
      return runner::MonteCarlo(cfg).run(
          16, [](const runner::TrialContext& ctx, runner::TrialRecorder& rec) {
            const auto cir = random_cir(ctx.seed, 1, 4);
            ranging::SearchSubtractDetector det{multi_shape_config()};
            const auto found = det.detect(cir.taps, cir.ts_s, 5);
            rec.count("responses", static_cast<std::int64_t>(found.size()));
            for (const auto& r : found) {
              rec.sample("tau_s", r.tau_s);
              rec.sample("amp", std::abs(r.amplitude));
            }
          });
    };
    const auto serial = run(1);
    const auto parallel = run(4);
    EXPECT_EQ(serial.counter("responses"), parallel.counter("responses"))
        << "level=" << simd::level_name(level);
    ASSERT_EQ(serial.metric_names(), parallel.metric_names());
    for (const auto& name : serial.metric_names()) {
      const RVec& a = serial.samples(name);
      const RVec& b = parallel.samples(name);
      ASSERT_EQ(a.size(), b.size()) << name;
      for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i])
            << "level=" << simd::level_name(level) << " " << name << "[" << i
            << "]";
    }
  }
}

}  // namespace
}  // namespace uwb
