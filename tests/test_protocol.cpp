// Unit tests: combined RPM/pulse-shape assignment (Sect. VII/VIII) and
// response interpretation (Eq. 4 with slot decoding).
#include <gtest/gtest.h>

#include <set>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "ranging/protocol.hpp"

namespace uwb::ranging {
namespace {

ConcurrentRangingConfig combined_config() {
  ConcurrentRangingConfig cfg;
  cfg.num_slots = 4;
  cfg.slot_spacing_s = 250e-9;
  cfg.shape_registers = {0x93, 0xC8, 0xE6};
  return cfg;
}

TEST(ConfigTest, MaxRespondersIsProduct) {
  const auto cfg = combined_config();
  EXPECT_EQ(cfg.num_pulse_shapes(), 3);
  EXPECT_EQ(cfg.max_responders(), 12);  // paper Fig. 8: N_max = 4 * 3 = 12
}

TEST(ConfigTest, ValidationCatchesBadConfigs) {
  ConcurrentRangingConfig cfg;
  cfg.response_delay_s = 0.0;
  EXPECT_THROW(cfg.validate(), PreconditionError);
  cfg = ConcurrentRangingConfig{};
  cfg.num_slots = 3;  // slots without spacing
  EXPECT_THROW(cfg.validate(), PreconditionError);
  cfg = ConcurrentRangingConfig{};
  cfg.shape_registers = {};
  EXPECT_THROW(cfg.validate(), PreconditionError);
  EXPECT_NO_THROW(ConcurrentRangingConfig{}.validate());
}

TEST(AssignTest, Fig8AssignmentPattern) {
  // Fig. 8: slot = ID % N_RPM, shape = floor(ID / N_RPM) — IDs 0..3 use
  // shape s1 in slots 0..3, IDs 4..7 use s2, IDs 8..11 use s3.
  const auto cfg = combined_config();
  for (int id = 0; id < 12; ++id) {
    const SlotAssignment a = assign_responder(id, cfg);
    EXPECT_EQ(a.slot, id % 4) << "id " << id;
    EXPECT_EQ(a.shape_index, id / 4) << "id " << id;
    EXPECT_EQ(a.shape_register, cfg.shape_registers[static_cast<std::size_t>(id / 4)]);
    EXPECT_DOUBLE_EQ(a.extra_delay_s, (id % 4) * 250e-9);
  }
}

TEST(AssignTest, AssignmentIsBijectiveWithinCapacity) {
  const auto cfg = combined_config();
  std::set<std::pair<int, int>> seen;
  for (int id = 0; id < cfg.max_responders(); ++id) {
    const SlotAssignment a = assign_responder(id, cfg);
    EXPECT_TRUE(seen.emplace(a.slot, a.shape_index).second)
        << "collision at id " << id;
    // Round trip through the inverse.
    EXPECT_EQ(responder_id_from(a.slot, a.shape_index, cfg), id);
  }
}

TEST(AssignTest, IdsBeyondCapacityAlias) {
  const auto cfg = combined_config();
  const SlotAssignment a0 = assign_responder(0, cfg);
  const SlotAssignment a12 = assign_responder(12, cfg);
  EXPECT_EQ(a0.slot, a12.slot);
  EXPECT_EQ(a0.shape_index, a12.shape_index);
}

TEST(AssignTest, SingleSlotSingleShape) {
  ConcurrentRangingConfig cfg;  // anonymous plain concurrent ranging
  for (int id : {0, 1, 7}) {
    const SlotAssignment a = assign_responder(id, cfg);
    EXPECT_EQ(a.slot, 0);
    EXPECT_EQ(a.shape_index, 0);
    EXPECT_DOUBLE_EQ(a.extra_delay_s, 0.0);
  }
  EXPECT_THROW(assign_responder(-1, cfg), PreconditionError);
}

TEST(AssignTest, InverseValidatesRanges) {
  const auto cfg = combined_config();
  EXPECT_THROW(responder_id_from(4, 0, cfg), PreconditionError);
  EXPECT_THROW(responder_id_from(0, 3, cfg), PreconditionError);
}

DetectedResponse det(double tau_s, double amp = 0.5, int shape = -1) {
  DetectedResponse d;
  d.tau_s = tau_s;
  d.amplitude = {amp, 0.0};
  d.shape_index = shape;
  return d;
}

TEST(InterpretTest, FirstResponseIsTwrDistance) {
  ConcurrentRangingConfig cfg;
  const auto ests = interpret_responses({det(100e-9)}, cfg, 3.0);
  ASSERT_EQ(ests.size(), 1u);
  EXPECT_DOUBLE_EQ(ests[0].distance_m, 3.0);
  EXPECT_DOUBLE_EQ(ests[0].tau_rel_s, 0.0);
}

TEST(InterpretTest, Eq4HalvesDelayDifferences) {
  // Paper Eq. 4: d_i = d_TWR + c (tau_i - tau_1) / 2.
  ConcurrentRangingConfig cfg;
  const double dtau = 20e-9;  // responder 3 m farther -> 20 ns round trip
  const auto ests = interpret_responses({det(0.0), det(dtau)}, cfg, 3.0);
  ASSERT_EQ(ests.size(), 2u);
  EXPECT_NEAR(ests[1].distance_m, 3.0 + k::c_air * dtau / 2.0, 1e-9);
  EXPECT_NEAR(ests[1].distance_m, 6.0, 0.01);
}

TEST(InterpretTest, SlotDelayRemovedOnce) {
  // A response in slot 1 carries the full (un-halved) slot delay; Eq. 4
  // must subtract it before halving the residual.
  auto cfg = combined_config();
  const double in_slot_extra = 10e-9;  // 1.5 m farther than sync
  const auto ests = interpret_responses(
      {det(0.0), det(cfg.slot_spacing_s + in_slot_extra)}, cfg, 4.0);
  ASSERT_EQ(ests.size(), 2u);
  EXPECT_EQ(ests[1].slot, 1);
  EXPECT_NEAR(ests[1].distance_m, 4.0 + k::c_air * in_slot_extra / 2.0, 1e-6);
}

TEST(InterpretTest, NegativeInSlotResidualAllowed) {
  // A slot-1 responder *closer* than the sync responder arrives slightly
  // before the nominal slot boundary; rounding must still decode slot 1.
  auto cfg = combined_config();
  const double in_slot = -8e-9;  // 1.2 m closer
  const auto ests = interpret_responses(
      {det(0.0), det(cfg.slot_spacing_s + in_slot)}, cfg, 4.0);
  ASSERT_EQ(ests.size(), 2u);
  EXPECT_EQ(ests[1].slot, 1);
  EXPECT_LT(ests[1].distance_m, 4.0);
}

TEST(InterpretTest, SyncSlotOffsetsDecoding) {
  auto cfg = combined_config();
  // Sync responder sits in slot 2; a peak one slot later is slot 3.
  const auto ests = interpret_responses(
      {det(0.0), det(cfg.slot_spacing_s)}, cfg, 5.0, /*sync_slot=*/2);
  ASSERT_EQ(ests.size(), 2u);
  EXPECT_EQ(ests[0].slot, 2);
  EXPECT_EQ(ests[1].slot, 3);
}

TEST(InterpretTest, IdDecodedFromSlotAndShape) {
  auto cfg = combined_config();
  // Shape index 1 (s2) in slot 2 -> ID = 1*4 + 2 = 6.
  const auto ests = interpret_responses(
      {det(0.0, 0.5, 0), det(2.0 * cfg.slot_spacing_s, 0.4, 1)}, cfg, 3.0);
  ASSERT_EQ(ests.size(), 2u);
  EXPECT_EQ(ests[0].responder_id, 0);
  EXPECT_EQ(ests[1].responder_id, 6);
}

TEST(InterpretTest, AnonymousWithoutShapes) {
  ConcurrentRangingConfig cfg;  // 1 slot, 1 shape: IDs decode trivially to 0
  const auto ests = interpret_responses({det(0.0), det(10e-9)}, cfg, 3.0);
  EXPECT_EQ(ests[0].responder_id, 0);
  EXPECT_EQ(ests[1].responder_id, 0);
}

TEST(InterpretTest, MultiShapeWithoutClassificationStaysAnonymous) {
  auto cfg = combined_config();
  const auto ests = interpret_responses({det(0.0, 0.5, -1)}, cfg, 3.0);
  EXPECT_EQ(ests[0].responder_id, -1);
}

TEST(InterpretTest, EmptyDetectionsGiveEmptyEstimates) {
  ConcurrentRangingConfig cfg;
  EXPECT_TRUE(interpret_responses({}, cfg, 3.0).empty());
}

ResponderEstimate make_est(int id, double dist, double amp, double tau_rel) {
  ResponderEstimate e;
  e.responder_id = id;
  e.distance_m = dist;
  e.amplitude = amp;
  e.tau_rel_s = tau_rel;
  return e;
}

TEST(SlotSelectTest, PassThroughWhenUnique) {
  auto cfg = combined_config();
  const std::vector<ResponderEstimate> ests{make_est(0, 3.0, 0.5, 0.0),
                                            make_est(1, 5.0, 0.3, 150e-9)};
  const auto out = select_slot_responses(ests, cfg);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].responder_id, 0);
  EXPECT_EQ(out[1].responder_id, 1);
}

TEST(SlotSelectTest, DropsWeakerDuplicateOfSameId) {
  auto cfg = combined_config();
  // The second entry is an MPC of responder 0: same ID, later, weaker.
  const std::vector<ResponderEstimate> ests{
      make_est(0, 3.0, 0.5, 0.0), make_est(0, 3.8, 0.1, 5e-9),
      make_est(1, 6.0, 0.3, 150e-9)};
  const auto out = select_slot_responses(ests, cfg);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].distance_m, 3.0);
  EXPECT_EQ(out[1].responder_id, 1);
}

TEST(SlotSelectTest, PrefersEarliestOfComparablyStrong) {
  auto cfg = combined_config();
  // Direct path slightly weaker than its own reflection (NLOS-ish): keep
  // the earlier one as long as it is within 6 dB.
  const std::vector<ResponderEstimate> ests{
      make_est(0, 3.0, 0.3, 0.0), make_est(0, 4.1, 0.4, 7e-9)};
  const auto out = select_slot_responses(ests, cfg);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].distance_m, 3.0);
}

TEST(SlotSelectTest, SkipsWeakPrecursorBlip) {
  auto cfg = combined_config();
  // A noise blip far below the true response must not displace it.
  const std::vector<ResponderEstimate> ests{
      make_est(0, 2.2, 0.04, 0.0), make_est(0, 3.0, 0.5, 5e-9)};
  const auto out = select_slot_responses(ests, cfg);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].distance_m, 3.0);
}

TEST(SlotSelectTest, AnonymousEstimatesPassThrough) {
  auto cfg = combined_config();
  const std::vector<ResponderEstimate> ests{
      make_est(-1, 3.0, 0.5, 0.0), make_est(-1, 4.0, 0.4, 6e-9)};
  EXPECT_EQ(select_slot_responses(ests, cfg).size(), 2u);
}

TEST(SlotSelectTest, EmptyInputEmptyOutput) {
  EXPECT_TRUE(select_slot_responses({}, combined_config()).empty());
}

TEST(InterpretTest, OutOfRangeSlotGivesNoId) {
  auto cfg = combined_config();
  // A peak 10 slots out decodes to slot 10 > N_RPM-1: no identity.
  const auto ests = interpret_responses(
      {det(0.0, 0.5, 0), det(10.0 * cfg.slot_spacing_s, 0.4, 0)}, cfg, 3.0);
  EXPECT_EQ(ests[1].responder_id, -1);
}

}  // namespace
}  // namespace uwb::ranging
