// Unit tests: DW1000 register-file encoding (TX_FCTRL/CHAN_CTRL/TC_PGDELAY/
// DX_TIME bit layouts), materials presets, and CIR persistence.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/expects.hpp"
#include "dw1000/cir_io.hpp"
#include "dw1000/registers.hpp"
#include "geom/materials.hpp"

namespace uwb::dw {
namespace {

TEST(RegisterEncodingTest, TxbrBitPatterns) {
  // User Manual: TXBR at bits 14:13 — 00=110k, 01=850k, 10=6.8M.
  EXPECT_EQ(encode_txbr(DataRate::k110), 0u);
  EXPECT_EQ(encode_txbr(DataRate::k850), 0x2000u);
  EXPECT_EQ(encode_txbr(DataRate::M6_8), 0x4000u);
  EXPECT_EQ(decode_txbr(0x4000u), DataRate::M6_8);
  EXPECT_THROW(decode_txbr(0x6000u), PreconditionError);  // reserved 11
}

TEST(RegisterEncodingTest, TxprfBitPatterns) {
  EXPECT_EQ(encode_txprf(Prf::Mhz16), 0x10000u);
  EXPECT_EQ(encode_txprf(Prf::Mhz64), 0x20000u);
  EXPECT_EQ(decode_txprf(0x20000u), Prf::Mhz64);
  EXPECT_THROW(decode_txprf(0x0u), PreconditionError);
}

TEST(RegisterEncodingTest, PsrRoundTripsAllLengths) {
  for (const int len : {64, 128, 256, 512, 1024, 1536, 2048, 4096})
    EXPECT_EQ(decode_psr(encode_psr(len)), len) << len;
  EXPECT_THROW(encode_psr(100), PreconditionError);
}

TEST(RegisterEncodingTest, Psr128IsTheDocumentedPattern) {
  // 128 symbols: TXPSR=01, PE=01 -> bits 21:18 = 0101.
  EXPECT_EQ(encode_psr(128), 0b0101u << 18);
}

TEST(RegisterFileTest, RawReadWrite) {
  RegisterFile regs;
  EXPECT_EQ(regs.read32(RegFile::TX_FCTRL), 0u);
  regs.write32(RegFile::TX_FCTRL, 0, 0xDEADBEEF);
  EXPECT_EQ(regs.read32(RegFile::TX_FCTRL), 0xDEADBEEFu);
  // Distinct sub-addresses are distinct words.
  regs.write32(RegFile::TX_CAL, kTcPgDelaySub, 0xC8);
  EXPECT_EQ(regs.read32(RegFile::TX_CAL, 0), 0u);
  EXPECT_EQ(regs.read32(RegFile::TX_CAL, kTcPgDelaySub), 0xC8u);
}

TEST(RegisterFileTest, PhyConfigRoundTrip) {
  PhyConfig cfg;
  cfg.channel = 7;
  cfg.prf = Prf::Mhz64;
  cfg.rate = DataRate::M6_8;
  cfg.preamble_symbols = 128;
  cfg.tc_pgdelay = 0xE6;
  RegisterFile regs;
  regs.apply_phy_config(cfg);
  const PhyConfig back = regs.decode_phy_config();
  EXPECT_EQ(back.channel, cfg.channel);
  EXPECT_EQ(back.prf, cfg.prf);
  EXPECT_EQ(back.rate, cfg.rate);
  EXPECT_EQ(back.preamble_symbols, cfg.preamble_symbols);
  EXPECT_EQ(back.tc_pgdelay, cfg.tc_pgdelay);
}

TEST(RegisterFileTest, AlternateConfigRoundTrip) {
  PhyConfig cfg;
  cfg.channel = 2;
  cfg.prf = Prf::Mhz16;
  cfg.rate = DataRate::k110;
  cfg.preamble_symbols = 2048;
  cfg.tc_pgdelay = 0x93;
  RegisterFile regs;
  regs.apply_phy_config(cfg);
  const PhyConfig back = regs.decode_phy_config();
  EXPECT_EQ(back.channel, 2);
  EXPECT_EQ(back.prf, Prf::Mhz16);
  EXPECT_EQ(back.rate, DataRate::k110);
  EXPECT_EQ(back.preamble_symbols, 2048);
}

TEST(RegisterFileTest, DxTimeTruncation) {
  RegisterFile regs;
  const DwTimestamp target(0x123456789AULL);
  regs.write_dx_time(target);
  // Read-back is verbatim; the effective TX time has the low 9 bits cleared.
  EXPECT_EQ(regs.read_dx_time(), target);
  EXPECT_EQ(regs.effective_tx_time().ticks() & 0x1FF, 0u);
  EXPECT_EQ(regs.effective_tx_time(), quantize_delayed_tx(target));
}

TEST(MaterialsTest, LossOrdering) {
  using namespace geom::material;
  EXPECT_LT(metal_db, concrete_db);
  EXPECT_LT(concrete_db, plasterboard_db);
  EXPECT_LT(plasterboard_db, wood_db);
}

TEST(MaterialsTest, FurnishedOfficeHasObstacles) {
  const geom::Room room = geom::make_furnished_office();
  EXPECT_EQ(room.walls().size(), 4u);
  EXPECT_EQ(room.obstacles().size(), 2u);
  EXPECT_THROW(geom::make_furnished_office(1.0, 1.0), PreconditionError);
}

TEST(MaterialsTest, CorridorUsesRequestedMaterial) {
  const geom::Room room = geom::make_corridor(30.0, 2.4, geom::material::glass_db);
  ASSERT_EQ(room.walls().size(), 2u);
  EXPECT_DOUBLE_EQ(room.walls()[0].reflection_loss_db, geom::material::glass_db);
}

TEST(CirIoTest, SaveLoadRoundTrip) {
  CirEstimate cir;
  cir.ts_s = k::cir_ts_s;
  cir.first_path_index = 64.25;
  Rng rng(1);
  cir.taps.resize(128);
  for (auto& t : cir.taps) t = rng.complex_normal(0.3);
  const std::string path = "/tmp/uwb_cir_io_test.csv";
  ASSERT_TRUE(save_cir_csv(cir, path));
  const auto loaded = load_cir_csv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_DOUBLE_EQ(loaded->ts_s, cir.ts_s);
  EXPECT_DOUBLE_EQ(loaded->first_path_index, 64.25);
  ASSERT_EQ(loaded->taps.size(), cir.taps.size());
  for (std::size_t i = 0; i < cir.taps.size(); ++i)
    EXPECT_LT(std::abs(loaded->taps[i] - cir.taps[i]), 1e-9);
  std::remove(path.c_str());
}

TEST(CirIoTest, LoadRejectsGarbage) {
  const std::string path = "/tmp/uwb_cir_io_bad.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not a cir file\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(load_cir_csv(path).has_value());
  EXPECT_FALSE(load_cir_csv("/nonexistent/nowhere.csv").has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uwb::dw
