// Spatially-sharded medium (DESIGN.md Sect. 13): uniform grid, interference
// radius derivation, floor-plan generation, and the culling determinism
// contract — culled and unculled runs bit-identical for every delivered
// frame.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "channel/channel_model.hpp"
#include "channel/path_loss.hpp"
#include "common/hash.hpp"
#include "geom/grid.hpp"
#include "ranging/session.hpp"
#include "runner/monte_carlo.hpp"
#include "sim/floorplan.hpp"
#include "sim/medium.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace uwb::sim {
namespace {

// ---------------------------------------------------------------------------
// UniformGrid

TEST(GridTest, PackUnpackRoundTripsNegativeCoordinates) {
  for (const std::int32_t ix : {-1000000, -3, -1, 0, 1, 7, 1000000}) {
    for (const std::int32_t iy : {-999, -1, 0, 2, 31337}) {
      const geom::CellKey key = geom::UniformGrid::pack(ix, iy);
      EXPECT_EQ(geom::UniformGrid::cell_ix(key), ix);
      EXPECT_EQ(geom::UniformGrid::cell_iy(key), iy);
    }
  }
}

TEST(GridTest, BucketsPointsDeterministically) {
  const std::vector<geom::Vec2> points = {
      {0.5, 0.5}, {1.5, 0.5}, {0.6, 0.4}, {-0.5, -0.5}};
  geom::UniformGrid grid(points, 1.0);
  EXPECT_EQ(grid.point_count(), 4u);
  ASSERT_EQ(grid.cells().size(), 3u);
  const geom::UniformGrid::Cell* origin = grid.find(grid.key_of({0.5, 0.5}));
  ASSERT_NE(origin, nullptr);
  EXPECT_EQ(origin->indices, (std::vector<std::int32_t>{0, 2}));
  EXPECT_EQ(grid.find(geom::UniformGrid::pack(50, 50)), nullptr);
}

TEST(GridTest, NeighborhoodCoversEveryPointWithinCellSize) {
  Rng rng(99);
  std::vector<geom::Vec2> points;
  for (int i = 0; i < 400; ++i)
    points.push_back({rng.uniform(-40.0, 40.0), rng.uniform(-40.0, 40.0)});
  const double radius = 7.5;
  geom::UniformGrid grid(points, radius);
  std::vector<std::int32_t> out;
  for (int probe = 0; probe < 50; ++probe) {
    const geom::Vec2 p{rng.uniform(-40.0, 40.0), rng.uniform(-40.0, 40.0)};
    out.clear();
    grid.neighborhood(p, out);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    // Every point within the radius must be a candidate, and every
    // candidate's cell must report in_neighborhood.
    std::vector<bool> candidate(points.size(), false);
    for (const std::int32_t i : out) {
      candidate[static_cast<std::size_t>(i)] = true;
      EXPECT_TRUE(grid.in_neighborhood(
          p, grid.key_of(points[static_cast<std::size_t>(i)])));
    }
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (geom::distance(p, points[i]) <= radius) {
        EXPECT_TRUE(candidate[i]);
      }
      if (!candidate[i]) {
        EXPECT_FALSE(grid.in_neighborhood(p, grid.key_of(points[i])));
      }
    }
  }
}

TEST(GridTest, EmptyGridReturnsNothing) {
  geom::UniformGrid grid;
  std::vector<std::int32_t> out;
  grid.neighborhood({0.0, 0.0}, out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(grid.cells().empty());
}

// ---------------------------------------------------------------------------
// Interference radius

TEST(RangeBoundTest, SolvesLogDistanceLawAtThreshold) {
  channel::ChannelModelParams ch;
  ch.path_loss_exponent = 3.5;
  const channel::ChannelModel model(geom::Room::rectangular(10.0, 10.0), ch);
  const double threshold = 0.02;
  const double margin_db = 16.0;
  const double d = model.max_detectable_range(threshold, margin_db).value();
  ASSERT_TRUE(std::isfinite(d));
  // At the bound, the best-case LOS amplitude (margin applied) equals the
  // threshold.
  const double amp =
      channel::loss_db_to_amplitude(
          channel::log_distance_loss_db(d, ch.path_loss_exponent, 0.0) -
          margin_db);
  EXPECT_NEAR(amp, threshold, 1e-9);
}

TEST(RangeBoundTest, DegenerateParamsYieldNoFiniteBound) {
  channel::ChannelModelParams ch;
  ch.path_loss_exponent = 1.8;
  const channel::ChannelModel model(geom::Room::rectangular(10.0, 10.0), ch);
  EXPECT_TRUE(std::isinf(model.max_detectable_range(0.0, 16.0).value()));
  channel::ChannelModelParams flat;
  flat.path_loss_exponent = 0.0;
  const channel::ChannelModel no_loss(geom::Room::rectangular(10.0, 10.0),
                                      flat);
  EXPECT_TRUE(std::isinf(no_loss.max_detectable_range(0.02, 16.0).value()));
}

// ---------------------------------------------------------------------------
// Floor plan

TEST(FloorPlanTest, PlanForNodesCoversRequestedDensity) {
  const FloorPlanConfig cfg = plan_for_nodes(200, 2.0);
  EXPECT_GE(cfg.rooms_x * cfg.rooms_y, 100);
  const FloorPlanConfig one = plan_for_nodes(1, 2.0);
  EXPECT_EQ(one.rooms_x * one.rooms_y, 1);
}

TEST(FloorPlanTest, PlacementIsDeterministicAndInBounds) {
  FloorPlanConfig cfg;
  cfg.rooms_x = 4;
  cfg.rooms_y = 3;
  const FloorPlan plan = make_floor_plan(cfg);
  EXPECT_EQ(plan.room_count(), 12);
  EXPECT_DOUBLE_EQ(plan.width_m(), 24.0);
  EXPECT_DOUBLE_EQ(plan.height_m(), 15.0);
  const auto a = place_nodes(plan, 30, 42);
  const auto b = place_nodes(plan, 30, 42);
  ASSERT_EQ(a.size(), 30u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].y, b[i].y);
    EXPECT_GE(a[i].x, cfg.placement_margin_m);
    EXPECT_LE(a[i].x, plan.width_m() - cfg.placement_margin_m);
    EXPECT_GE(a[i].y, cfg.placement_margin_m);
    EXPECT_LE(a[i].y, plan.height_m() - cfg.placement_margin_m);
  }
  EXPECT_NE(place_nodes(plan, 30, 43)[0].x, a[0].x);
}

TEST(FloorPlanTest, PartitionsAttenuateButDoorwaysDoNot) {
  FloorPlanConfig cfg;
  cfg.rooms_x = 2;
  cfg.rooms_y = 1;
  const FloorPlan plan = make_floor_plan(cfg);
  // Straight through the partition's solid span: attenuated.
  EXPECT_GT(plan.room.obstruction_loss_db({5.0, 1.0}, {7.0, 1.0}), 0.0);
  // Straight through the doorway (centered at y = room_h/2): clear.
  EXPECT_EQ(plan.room.obstruction_loss_db({5.0, 2.5}, {7.0, 2.5}), 0.0);
}

// ---------------------------------------------------------------------------
// Culling determinism contract

channel::ChannelModelParams scale_channel() {
  channel::ChannelModelParams ch;
  // Through-building propagation: steeper decay, no image-source solve
  // (hundreds of partition segments would defeat the memo), diffuse on.
  ch.path_loss_exponent = 3.5;
  ch.max_reflection_order = 0;
  return ch;
}

struct Delivery {
  int rx = -1;
  int tx = -1;
  std::int64_t preamble_ps = 0;
  std::int64_t rmarker_ps = 0;
  std::int64_t end_ps = 0;
  std::uint64_t taps_digest = 0;
  std::uint64_t amp_bits = 0;
  std::uint64_t first_delay_bits = 0;
  bool missed = false;

  bool operator==(const Delivery&) const = default;
};

Delivery digest(int rx_id, const AirFrame& af) {
  Delivery d;
  d.rx = rx_id;
  d.tx = af.tx_node_id;
  d.preamble_ps = af.preamble_start_arrival.ps();
  d.rmarker_ps = af.rmarker_arrival.ps();
  d.end_ps = af.frame_end_arrival.ps();
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const channel::Tap& t : af.taps) {
    h = hash_combine(h, double_bits(t.delay_s));
    h = hash_combine(h, double_bits(t.amplitude.real()));
    h = hash_combine(h, double_bits(t.amplitude.imag()));
  }
  d.taps_digest = h;
  d.amp_bits = double_bits(af.first_path_amplitude);
  d.first_delay_bits = double_bits(af.first_detectable_delay.value());
  d.missed = af.preamble_missed;
  return d;
}

/// A raw many-node rig: floorplan placement, every node transmits a few
/// frames round-robin, deliveries recorded via the medium's probe.
std::vector<Delivery> run_traffic(bool culling, int node_count,
                                  std::uint64_t seed, int frames_per_node,
                                  MediumStats* stats_out = nullptr) {
  const FloorPlan plan = make_floor_plan(plan_for_nodes(node_count));
  const auto positions = place_nodes(plan, node_count, seed);

  Simulator sim;
  MediumParams mp;
  mp.culling_enabled = culling;
  // Short-range radio (~4 m links): the derived radius (~11 m) is smaller
  // than the building, so the grid actually culls.
  mp.detection_threshold_amp = 0.1;
  Medium medium(sim, channel::ChannelModel(plan.room, scale_channel()), mp,
                Rng(seed));
  std::vector<Delivery> deliveries;
  medium.set_delivery_probe([&](int rx_id, const AirFrame& af) {
    deliveries.push_back(digest(rx_id, af));
  });

  std::vector<std::unique_ptr<Node>> nodes;
  Rng node_seeds(derive_seed(seed, 0x50A7));
  for (int i = 0; i < node_count; ++i) {
    NodeConfig nc;
    nc.id = i;
    nc.position = positions[static_cast<std::size_t>(i)];
    nodes.push_back(
        std::make_unique<Node>(sim, medium, nc, node_seeds.fork()));
  }

  dw::MacFrame f;
  f.type = dw::FrameType::Init;
  for (int round = 0; round < frames_per_node; ++round) {
    for (int i = 0; i < node_count; ++i) {
      sim.after(SimTime::from_micros(200.0 * (round * node_count + i) + 5.0),
                [&, i] { nodes[static_cast<std::size_t>(i)]->transmit_now(f); });
      sim.run();
    }
  }
  if (stats_out != nullptr) *stats_out = medium.stats();
  return deliveries;
}

TEST(CullingIdentityTest, DeliveredFramesByteIdenticalWithCullingOnOrOff) {
  for (const std::uint64_t seed : {1ull, 17ull, 3333ull}) {
    MediumStats culled_stats;
    MediumStats full_stats;
    const auto culled = run_traffic(true, 60, seed, 1, &culled_stats);
    const auto full = run_traffic(false, 60, seed, 1, &full_stats);
    // Identical deliveries, in identical order: taps, arrival instants,
    // first-path fields, fault flags.
    EXPECT_EQ(culled, full);
    EXPECT_EQ(culled_stats.frames_delivered, full_stats.frames_delivered);
    // The sharded run must actually skip work.
    EXPECT_GT(culled_stats.receivers_culled, 0u);
    EXPECT_LT(culled_stats.channels_realized, full_stats.channels_realized);
  }
}

TEST(CullingIdentityTest, CullingInactiveForRoomScaleDefaults) {
  // The default channel (exponent 1.8) bounds detectability at hundreds of
  // meters — larger than any room scenario, so the derived radius must
  // never cull room-scale receivers (it may still be finite).
  Simulator sim;
  Medium medium(sim,
                channel::ChannelModel(geom::Room::rectangular(20.0, 10.0), {}),
                MediumParams{}, Rng(1));
  EXPECT_GT(medium.interference_radius_m(), 100.0);
}

TEST(CullingIdentityTest, OutOfRangeReceiverNeverDelivered) {
  // Property test against the *unculled* medium: beyond the derived radius
  // no frame is ever detectable, which is exactly what makes culling safe.
  channel::ChannelModelParams ch = scale_channel();
  const geom::Room room = geom::Room::rectangular(400.0, 50.0, 10.0);
  const channel::ChannelModel model(room, ch);
  MediumParams mp;
  const double radius =
      model.max_detectable_range(mp.detection_threshold_amp,
                                 mp.range_margin_db)
          .value();
  ASSERT_TRUE(std::isfinite(radius));
  ASSERT_LT(radius + 30.0, 400.0);

  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Simulator sim;
    mp.culling_enabled = false;
    Medium medium(sim, channel::ChannelModel(room, ch), mp, Rng(seed));
    int delivered = 0;
    medium.set_delivery_probe(
        [&](int, const AirFrame&) { ++delivered; });
    NodeConfig a;
    a.id = 0;
    a.position = {10.0, 25.0};
    NodeConfig b;
    b.id = 1;
    b.position = {10.0 + radius + 1.0, 25.0};
    Node tx(sim, medium, a, Rng(derive_seed(seed, 1)));
    Node rx(sim, medium, b, Rng(derive_seed(seed, 2)));
    dw::MacFrame f;
    sim.after(SimTime::from_micros(5.0), [&] { tx.transmit_now(f); });
    sim.run();
    EXPECT_EQ(delivered, 0) << "seed " << seed;
  }
}

TEST(CullingIdentityTest, MovedNodeRejoinsNeighborhood) {
  // set_position must invalidate the spatial index: a node moved out of
  // range stops receiving, moved back it receives again.
  const geom::Room room = geom::Room::rectangular(500.0, 50.0, 10.0);
  Simulator sim;
  MediumParams mp;
  Medium medium(sim, channel::ChannelModel(room, scale_channel()), mp,
                Rng(5));
  const double radius = medium.interference_radius_m();
  ASSERT_TRUE(std::isfinite(radius));
  int delivered = 0;
  medium.set_delivery_probe([&](int, const AirFrame&) { ++delivered; });
  NodeConfig a;
  a.id = 0;
  a.position = {10.0, 25.0};
  NodeConfig b;
  b.id = 1;
  b.position = {14.0, 25.0};
  Node tx(sim, medium, a, Rng(2));
  Node rx(sim, medium, b, Rng(3));
  dw::MacFrame f;
  sim.after(SimTime::from_micros(5.0), [&] { tx.transmit_now(f); });
  sim.run();
  EXPECT_EQ(delivered, 1);

  rx.set_position({10.0 + 3.0 * radius, 25.0});
  sim.after(SimTime::from_micros(5.0), [&] { tx.transmit_now(f); });
  sim.run();
  EXPECT_EQ(delivered, 1);  // culled: not even realized
  EXPECT_GT(medium.stats().receivers_culled, 0u);

  rx.set_position({14.0, 25.0});
  sim.after(SimTime::from_micros(5.0), [&] { tx.transmit_now(f); });
  sim.run();
  EXPECT_EQ(delivered, 2);
}

TEST(CullingIdentityTest, CellTrafficAccountsEveryReceiver) {
  MediumStats stats;
  const FloorPlan plan = make_floor_plan(plan_for_nodes(40));
  const auto positions = place_nodes(plan, 40, 9);
  Simulator sim;
  MediumParams mp;
  Medium medium(sim, channel::ChannelModel(plan.room, scale_channel()), mp,
                Rng(9));
  std::vector<std::unique_ptr<Node>> nodes;
  for (int i = 0; i < 40; ++i) {
    NodeConfig nc;
    nc.id = i;
    nc.position = positions[static_cast<std::size_t>(i)];
    nodes.push_back(
        std::make_unique<Node>(sim, medium, nc, Rng(derive_seed(9, i))));
  }
  dw::MacFrame f;
  for (int i = 0; i < 40; ++i) {
    sim.after(SimTime::from_micros(200.0 * i + 5.0),
              [&, i] { nodes[static_cast<std::size_t>(i)]->transmit_now(f); });
    sim.run();
  }
  stats = medium.stats();
  ASSERT_TRUE(medium.culling_active());
  EXPECT_EQ(stats.frames_transmitted, 40u);
  // Per-frame receiver accounting closes: realized + culled = N - 1.
  EXPECT_EQ(stats.channels_realized + stats.receivers_culled, 40u * 39u);
  EXPECT_EQ(stats.channels_realized,
            stats.frames_delivered + stats.below_threshold);
  std::uint64_t cell_delivered = 0;
  std::uint64_t cell_culled = 0;
  std::uint64_t cell_below = 0;
  for (const CellTraffic& c : medium.cell_traffic()) {
    cell_delivered += c.delivered;
    cell_culled += c.culled;
    cell_below += c.below_threshold;
  }
  EXPECT_EQ(cell_delivered, stats.frames_delivered);
  EXPECT_EQ(cell_culled, stats.receivers_culled);
  EXPECT_EQ(cell_below, stats.below_threshold);
  // Per-cell accounting closes exactly: every one of the N-1 potential
  // receivers of every frame lands in exactly one bucket.
  EXPECT_EQ(cell_delivered + cell_culled + cell_below, 40u * 39u);

  // The fan-out histogram is plain Medium state (not an UWB_OBS_* macro),
  // so it must be live in every build flavour, one observation per
  // transmitted frame, summing to the delivered totals.
  EXPECT_EQ(medium.frame_fanout().count(), stats.frames_transmitted);
  EXPECT_DOUBLE_EQ(medium.frame_fanout().sum(),
                   static_cast<double>(stats.frames_delivered));
}

// ---------------------------------------------------------------------------
// Session-level identity and thread-count determinism on the sharded path

ranging::ScenarioConfig floorplan_scenario(std::uint64_t seed, int responders,
                                           bool culling) {
  // Sparse building (four rooms per node) so the interference radius is
  // smaller than the floor: distant responders get culled, nearby ones
  // range normally.
  const FloorPlan plan =
      make_floor_plan(plan_for_nodes(responders + 1, /*nodes_per_room=*/0.25));
  const auto positions = place_nodes(plan, responders + 1, seed);
  ranging::ScenarioConfig cfg;
  cfg.room = plan.room;
  cfg.channel = scale_channel();
  cfg.medium.culling_enabled = culling;
  cfg.medium.detection_threshold_amp = 0.05;
  cfg.initiator_position = plan.center();
  for (int i = 0; i < responders; ++i)
    cfg.responders.push_back({i, positions[static_cast<std::size_t>(i)]});
  cfg.ranging.num_slots = 32;
  cfg.ranging.slot_spacing_s = 150e-9;
  cfg.detect_max_responses = 8;
  cfg.slot_aware_selection = true;
  cfg.seed = seed;
  return cfg;
}

std::uint64_t outcome_digest(const ranging::RoundOutcome& out) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = hash_combine(h, out.completed ? 1 : 0);
  h = hash_combine(h, out.payload_decoded ? 1 : 0);
  h = hash_combine(h, static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(out.sync_responder_id)));
  h = hash_combine(h, double_bits(out.d_twr_m));
  h = hash_combine(h, out.estimates.size());
  for (const auto& e : out.estimates)
    h = hash_combine(h, double_bits(e.distance_m));
  for (const auto& r : out.responder_reports)
    h = hash_combine(h, static_cast<std::uint64_t>(r.status));
  for (const auto& c : out.cir.taps) {
    h = hash_combine(h, double_bits(c.real()));
    h = hash_combine(h, double_bits(c.imag()));
  }
  return h;
}

TEST(SessionCullingTest, RoundOutcomeBitIdenticalToUncutReference) {
  for (const std::uint64_t seed : {11ull, 77ull}) {
    ranging::ConcurrentRangingScenario culled(
        floorplan_scenario(seed, 24, true));
    ranging::ConcurrentRangingScenario full(
        floorplan_scenario(seed, 24, false));
    for (int round = 0; round < 3; ++round) {
      const auto a = culled.run_round();
      const auto b = full.run_round();
      EXPECT_EQ(outcome_digest(a), outcome_digest(b))
          << "seed " << seed << " round " << round;
    }
    EXPECT_TRUE(culled.medium().culling_active());
    EXPECT_GT(culled.medium().stats().receivers_culled, 0u);
    EXPECT_FALSE(full.medium().culling_active());
  }
}

TEST(SessionCullingTest, MonteCarloBitIdenticalAcrossThreadCounts) {
  const auto run = [](int threads) {
    runner::MonteCarlo::Config cfg;
    cfg.threads = threads;
    cfg.base_seed = 2026;
    runner::MonteCarlo mc(cfg);
    return mc.run(12, [](const runner::TrialContext& ctx,
                         runner::TrialRecorder& rec) {
      ranging::ConcurrentRangingScenario scenario(
          floorplan_scenario(ctx.seed, 16, true));
      const auto out = scenario.run_round();
      rec.sample("digest", static_cast<double>(outcome_digest(out) >> 11));
      rec.count("delivered",
                static_cast<std::int64_t>(
                    scenario.medium().stats().frames_delivered));
    });
  };
  const auto one = run(1);
  const auto four = run(4);
  ASSERT_EQ(one.samples("digest").size(), four.samples("digest").size());
  for (std::size_t i = 0; i < one.samples("digest").size(); ++i)
    EXPECT_EQ(one.samples("digest")[i], four.samples("digest")[i]);
  EXPECT_EQ(one.counter("delivered"), four.counter("delivered"));
}

}  // namespace
}  // namespace uwb::sim
