// Unit tests: position tracker (alpha-beta filter) and CSV export helper.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/expects.hpp"
#include "common/random.hpp"
#include "loc/tracker.hpp"

namespace uwb {
namespace {

TEST(TrackerTest, FirstFixPassesThrough) {
  loc::PositionTracker tracker;
  const geom::Vec2 out = tracker.update({3.0, 4.0}, 0.1);
  EXPECT_EQ(out, (geom::Vec2{3.0, 4.0}));
  EXPECT_TRUE(tracker.initialized());
  EXPECT_EQ(tracker.velocity(), (geom::Vec2{0.0, 0.0}));
}

TEST(TrackerTest, ConvergesToConstantVelocityTrack) {
  loc::PositionTracker tracker;
  // Target moves at 1 m/s along x; noiseless fixes every 0.5 s.
  geom::Vec2 filtered;
  for (int i = 0; i <= 20; ++i)
    filtered = tracker.update({0.5 * i, 2.0}, 0.5);
  EXPECT_NEAR(filtered.x, 10.0, 0.2);
  EXPECT_NEAR(filtered.y, 2.0, 0.05);
  EXPECT_NEAR(tracker.velocity().x, 1.0, 0.2);
}

TEST(TrackerTest, SmoothsNoisyFixes) {
  loc::PositionTracker tracker;
  Rng rng(3);
  double raw_sse = 0.0, filt_sse = 0.0;
  for (int i = 0; i < 200; ++i) {
    const geom::Vec2 truth{0.2 * i, 5.0};
    const geom::Vec2 meas{truth.x + rng.normal(0.0, 0.3),
                          truth.y + rng.normal(0.0, 0.3)};
    const geom::Vec2 filt = tracker.update(meas, 0.2);
    if (i < 20) continue;  // let it converge
    raw_sse += geom::distance(meas, truth) * geom::distance(meas, truth);
    filt_sse += geom::distance(filt, truth) * geom::distance(filt, truth);
  }
  EXPECT_LT(filt_sse, 0.6 * raw_sse);
}

TEST(TrackerTest, GateRejectsOutliers) {
  loc::PositionTracker tracker;
  tracker.update({1.0, 1.0}, 0.5);
  tracker.update({1.1, 1.0}, 0.5);
  // A 10 m jump is an outlier; the filter coasts instead of following it.
  const geom::Vec2 out = tracker.update({11.0, 1.0}, 0.5);
  EXPECT_LT(out.x, 2.0);
  EXPECT_EQ(tracker.rejected_count(), 1);
}

TEST(TrackerTest, ReseedsAfterPersistentJump) {
  loc::TrackerParams params;
  params.max_rejections = 3;
  loc::PositionTracker tracker(params);
  tracker.update({1.0, 1.0}, 0.5);
  tracker.update({1.0, 1.0}, 0.5);
  // The target genuinely teleported (e.g. tracking resumed elsewhere):
  // after max_rejections the filter re-seeds on the new position.
  geom::Vec2 out;
  for (int i = 0; i < 3; ++i) out = tracker.update({20.0, 5.0}, 0.5);
  EXPECT_NEAR(out.x, 20.0, 1e-9);
  EXPECT_NEAR(out.y, 5.0, 1e-9);
}

TEST(TrackerTest, ResetClearsState) {
  loc::PositionTracker tracker;
  tracker.update({5.0, 5.0}, 0.5);
  tracker.reset();
  EXPECT_FALSE(tracker.initialized());
}

TEST(TrackerTest, InvalidParamsThrow) {
  loc::TrackerParams bad;
  bad.alpha = 0.0;
  EXPECT_THROW(loc::PositionTracker{bad}, PreconditionError);
  bad = loc::TrackerParams{};
  bad.gate_m = -1.0;
  EXPECT_THROW(loc::PositionTracker{bad}, PreconditionError);
  loc::PositionTracker tracker;
  EXPECT_THROW(tracker.update({0.0, 0.0}, 0.0), PreconditionError);
}

TEST(CsvTest, WritesHeaderAndRows) {
  const std::string path = "/tmp/uwb_csv_test.csv";
  {
    CsvWriter csv(path);
    ASSERT_TRUE(csv.ok());
    csv.header({"x", "y"});
    csv.row({1.0, 2.5});
    csv.row({3.0, -4.0});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "x,y\n1,2.5\n3,-4\n");
  std::remove(path.c_str());
}

TEST(CsvTest, RowWidthMismatchThrows) {
  CsvWriter csv("/tmp/uwb_csv_test2.csv");
  csv.header({"a", "b", "c"});
  EXPECT_THROW(csv.row({1.0}), PreconditionError);
  EXPECT_THROW(csv.header({"again"}), PreconditionError);
  std::remove("/tmp/uwb_csv_test2.csv");
}

TEST(CsvTest, RowBeforeHeaderThrows) {
  CsvWriter csv("/tmp/uwb_csv_test3.csv");
  EXPECT_THROW(csv.row({1.0}), PreconditionError);
  std::remove("/tmp/uwb_csv_test3.csv");
}

}  // namespace
}  // namespace uwb
