// Unit tests: RX diagnostics (first-path power, SNR, NLOS indicator).
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "dw1000/cir.hpp"
#include "dw1000/diagnostics.hpp"

namespace uwb::dw {
namespace {

CirEstimate make_cir(const std::vector<CirArrival>& arrivals,
                     double noise_sigma, std::uint64_t seed) {
  CirParams params;
  params.noise_sigma = noise_sigma;
  Rng rng(seed);
  return synthesize_cir(arrivals, params, rng);
}

CirArrival at(double tap, double amp) {
  CirArrival a;
  a.time_into_window_s = tap * k::cir_ts_s;
  a.amplitude = {amp, 0.0};
  return a;
}

TEST(DiagnosticsTest, CleanLosLink) {
  const auto cir = make_cir({at(64.0, 0.5)}, 0.004, 1);
  const RxDiagnostics diag = analyze_cir(cir.taps);
  EXPECT_NEAR(diag.first_path_amplitude, 0.5, 0.05);
  EXPECT_NEAR(diag.first_path_index, 62.0, 3.0);
  EXPECT_NEAR(diag.noise_sigma, 0.004, 0.001);
  EXPECT_GT(diag.peak_snr_db, 30.0);
  // Nearly all energy in the direct pulse: FP/total close to the pulse's
  // peak-to-energy ratio, far above the NLOS threshold.
  EXPECT_GT(diag.fp_to_total_db, -10.0);
  EXPECT_FALSE(likely_nlos(diag));
}

TEST(DiagnosticsTest, NlosSignature) {
  // Weak direct path followed by strong reflections + a long tail.
  std::vector<CirArrival> arrivals{at(64.0, 0.05)};
  for (int i = 0; i < 30; ++i)
    arrivals.push_back(at(68.0 + 2.0 * i, 0.12 * std::exp(-i / 15.0)));
  const auto cir = make_cir(arrivals, 0.004, 2);
  const RxDiagnostics diag = analyze_cir(cir.taps);
  EXPECT_LT(diag.fp_to_total_db, -12.0);
  EXPECT_TRUE(likely_nlos(diag));
}

TEST(DiagnosticsTest, SnrTracksAmplitude) {
  const auto strong = analyze_cir(make_cir({at(64.0, 0.8)}, 0.004, 3).taps);
  const auto weak = analyze_cir(make_cir({at(64.0, 0.08)}, 0.004, 4).taps);
  EXPECT_GT(strong.peak_snr_db, weak.peak_snr_db + 15.0);
}

TEST(DiagnosticsTest, NoiseOnlyCirHasLowSnr) {
  const auto cir = make_cir({}, 0.01, 5);
  const RxDiagnostics diag = analyze_cir(cir.taps);
  EXPECT_LT(diag.peak_snr_db, 18.0);  // max of Rayleigh noise over 1016 taps
}

TEST(DiagnosticsTest, CustomThreshold) {
  const auto cir = make_cir({at(64.0, 0.5)}, 0.004, 6);
  const RxDiagnostics diag = analyze_cir(cir.taps);
  // Any link looks "NLOS" against an absurdly strict threshold.
  EXPECT_TRUE(likely_nlos(diag, +10.0));
  EXPECT_FALSE(likely_nlos(diag, -40.0));
}

TEST(DiagnosticsTest, EmptyCirThrows) {
  EXPECT_THROW(analyze_cir(CVec{}), PreconditionError);
}

}  // namespace
}  // namespace uwb::dw
