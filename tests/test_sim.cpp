// Unit tests: discrete-event kernel, medium propagation, node TX/RX paths.
#include <gtest/gtest.h>

#include <vector>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "sim/medium.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace uwb::sim {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(SimTime::from_micros(30.0), [&] { order.push_back(3); });
  sim.at(SimTime::from_micros(10.0), [&] { order.push_back(1); });
  sim.at(SimTime::from_micros(20.0), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.dispatched(), 3u);
}

TEST(SimulatorTest, TiesBreakInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  const SimTime t = SimTime::from_micros(5.0);
  for (int i = 0; i < 10; ++i) sim.at(t, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, NowAdvancesWithEvents) {
  Simulator sim;
  SimTime seen;
  sim.at(SimTime::from_micros(42.0), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime::from_micros(42.0));
  EXPECT_EQ(sim.now(), SimTime::from_micros(42.0));
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.at(SimTime::from_micros(1.0), [&] {
    sim.after(SimTime::from_micros(1.0), [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::from_micros(2.0));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.at(SimTime::from_micros(10.0), [&] { ++fired; });
  sim.at(SimTime::from_micros(30.0), [&] { ++fired; });
  sim.run_until(SimTime::from_micros(20.0));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::from_micros(20.0));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, SchedulingInPastThrows) {
  Simulator sim;
  sim.at(SimTime::from_micros(10.0), [] {});
  sim.run();
  EXPECT_THROW(sim.at(SimTime::from_micros(5.0), [] {}), PreconditionError);
}

// --- Node/Medium integration ------------------------------------------------

struct TestBench {
  Simulator sim;
  std::unique_ptr<Medium> medium;
  std::unique_ptr<Node> a;
  std::unique_ptr<Node> b;

  explicit TestBench(double distance_m = 10.0, std::uint64_t seed = 1,
                     double drift_a = 0.0, double drift_b = 0.0) {
    channel::ChannelModelParams ch;
    ch.enable_diffuse = false;
    ch.specular_fading_db = 0.0;
    ch.max_reflection_order = 0;
    medium = std::make_unique<Medium>(
        sim, channel::ChannelModel(geom::Room::rectangular(100.0, 50.0), ch),
        MediumParams{}, Rng(seed));
    NodeConfig ca;
    ca.id = 0;
    ca.position = {10.0, 25.0};
    ca.drift_ppm = drift_a;
    NodeConfig cb;
    cb.id = 1;
    cb.position = {10.0 + distance_m, 25.0};
    cb.drift_ppm = drift_b;
    a = std::make_unique<Node>(sim, *medium, ca, Rng(seed + 1));
    b = std::make_unique<Node>(sim, *medium, cb, Rng(seed + 2));
  }
};

TEST(NodeTest, DuplicateIdsRejected) {
  Simulator sim;
  channel::ChannelModelParams ch;
  Medium medium(sim, channel::ChannelModel(geom::Room::rectangular(10.0, 10.0), ch),
                MediumParams{}, Rng(1));
  NodeConfig cfg;
  cfg.id = 5;
  cfg.position = {1.0, 1.0};
  Node first(sim, medium, cfg, Rng(2));
  cfg.position = {2.0, 2.0};
  EXPECT_THROW(Node(sim, medium, cfg, Rng(3)), PreconditionError);
}

TEST(NodeTest, BasicFrameDelivery) {
  TestBench bench;
  std::optional<RxResult> got;
  bench.b->set_rx_handler([&](const RxResult& r) { got = r; });
  bench.b->enter_rx();
  dw::MacFrame f;
  f.type = dw::FrameType::Init;
  f.src = 0;
  bench.sim.after(SimTime::from_micros(10.0), [&] { bench.a->transmit_now(f); });
  bench.sim.run();
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->frame.has_value());
  EXPECT_EQ(got->frame->type, dw::FrameType::Init);
  EXPECT_EQ(got->sync_tx_node_id, 0);
  EXPECT_EQ(got->frames_in_batch, 1);
  EXPECT_FALSE(bench.b->in_rx());  // auto-exits after a reception
}

TEST(NodeTest, RxTimestampReflectsPropagation) {
  TestBench bench(15.0);  // 15 m -> ~50 ns of flight
  std::optional<RxResult> got;
  bench.b->set_rx_handler([&](const RxResult& r) { got = r; });
  bench.b->enter_rx();
  dw::MacFrame f;
  f.type = dw::FrameType::Init;
  dw::DwTimestamp tx_time;
  bench.sim.after(SimTime::from_micros(10.0),
                  [&] { tx_time = bench.a->transmit_now(f); });
  bench.sim.run();
  ASSERT_TRUE(got.has_value());
  // Same-epoch clocks: RX - TX = time of flight (within jitter).
  const double tof = got->rx_timestamp.diff_seconds(tx_time).value();
  EXPECT_NEAR(tof, 15.0 / k::c_air, 1e-9);
}

TEST(NodeTest, NotListeningMeansNoDelivery) {
  TestBench bench;
  std::optional<RxResult> got;
  bench.b->set_rx_handler([&](const RxResult& r) { got = r; });
  dw::MacFrame f;
  f.type = dw::FrameType::Init;
  bench.sim.after(SimTime::from_micros(10.0), [&] { bench.a->transmit_now(f); });
  bench.sim.run();
  EXPECT_FALSE(got.has_value());
}

TEST(NodeTest, EnterRxAfterPreambleMissesFrame) {
  TestBench bench;
  std::optional<RxResult> got;
  bench.b->set_rx_handler([&](const RxResult& r) { got = r; });
  dw::MacFrame f;
  f.type = dw::FrameType::Init;
  bench.sim.after(SimTime::from_micros(10.0), [&] { bench.a->transmit_now(f); });
  // Preamble starts arriving at ~10 us; RX turned on at 50 us.
  bench.sim.after(SimTime::from_micros(50.0), [&] { bench.b->enter_rx(); });
  bench.sim.run();
  EXPECT_FALSE(got.has_value());
  bench.b->exit_rx();
}

TEST(NodeTest, DelayedTxHitsRequestedDeviceTime) {
  TestBench bench(5.0, 3, /*drift_a=*/2.0, /*drift_b=*/-1.5);
  std::optional<RxResult> got;
  bench.a->set_rx_handler([&](const RxResult& r) { got = r; });

  dw::MacFrame f;
  f.type = dw::FrameType::Resp;
  bench.sim.after(SimTime::from_micros(10.0), [&] {
    const dw::DwTimestamp target =
        bench.b->device_now().plus_seconds(Seconds(400e-6));
    const dw::DwTimestamp actual = bench.b->delayed_tx_time(target);
    f.tx_timestamp = actual;
    ASSERT_TRUE(bench.b->schedule_delayed_tx(f, actual));
    bench.a->enter_rx();
  });
  bench.sim.run();
  ASSERT_TRUE(got.has_value());
  // Truncation moves the TX at most 512 ticks (~8 ns) earlier.
  const auto requested = got->frame->tx_timestamp;
  EXPECT_EQ(requested.ticks() & 0x1FF, 0u);
}

TEST(NodeTest, UntruncatedDelayedTxWhenDisabled) {
  TestBench bench;
  bench.a->exit_rx();
  NodeConfig cfg;
  cfg.id = 99;
  cfg.position = {50.0, 25.0};
  cfg.delayed_tx_truncation = false;
  Node c(bench.sim, *bench.medium, cfg, Rng(9));
  const dw::DwTimestamp target(123456789);  // not 512-aligned
  EXPECT_EQ(c.delayed_tx_time(target), target);
}

TEST(NodeTest, ConcurrentFramesFormOneBatch) {
  // Three transmitters, one receiver: overlapping preambles must superpose
  // into a single RxResult with frames_in_batch == 3.
  Simulator sim;
  channel::ChannelModelParams ch;
  ch.enable_diffuse = false;
  ch.max_reflection_order = 0;
  Medium medium(sim,
                channel::ChannelModel(geom::Room::rectangular(100.0, 50.0), ch),
                MediumParams{}, Rng(11));
  NodeConfig rc;
  rc.id = 0;
  rc.position = {10.0, 25.0};
  Node rx(sim, medium, rc, Rng(12));
  std::vector<std::unique_ptr<Node>> txs;
  for (int i = 1; i <= 3; ++i) {
    NodeConfig tc;
    tc.id = i;
    tc.position = {10.0 + 3.0 * i, 25.0};
    txs.push_back(std::make_unique<Node>(sim, medium, tc, Rng(12 + i)));
  }
  std::optional<RxResult> got;
  rx.set_rx_handler([&](const RxResult& r) { got = r; });
  rx.enter_rx();
  dw::MacFrame f;
  f.type = dw::FrameType::Resp;
  for (auto& tx : txs)
    sim.at(SimTime::from_micros(10.0), [&tx, f] { tx->transmit_now(f); });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->frames_in_batch, 3);
  // Sync on the earliest (closest) transmitter.
  EXPECT_EQ(got->sync_tx_node_id, 1);
}

TEST(NodeTest, EnergyAccountingPerOperation) {
  TestBench bench;
  dw::MacFrame f;
  f.type = dw::FrameType::Init;
  std::optional<RxResult> got;
  bench.b->set_rx_handler([&](const RxResult& r) { got = r; });
  bench.b->enter_rx();
  bench.sim.after(SimTime::from_micros(10.0), [&] { bench.a->transmit_now(f); });
  bench.sim.run();
  EXPECT_EQ(bench.a->energy().tx_count(), 1);
  EXPECT_GT(bench.a->energy().tx_time_s(), 150e-6);  // whole frame air time
  EXPECT_EQ(bench.b->energy().rx_count(), 1);
  EXPECT_GT(bench.b->energy().rx_time_s(), 150e-6);
  EXPECT_GT(bench.b->energy().energy_j(), bench.a->energy().energy_j());
}

TEST(NodeTest, CarrierOffsetEstimateTracksDrift) {
  TestBench bench(5.0, 21, /*drift_a=*/+4.0, /*drift_b=*/-3.0);
  std::optional<RxResult> got;
  bench.b->set_rx_handler([&](const RxResult& r) { got = r; });
  bench.b->enter_rx();
  dw::MacFrame f;
  f.type = dw::FrameType::Init;
  bench.sim.after(SimTime::from_micros(10.0), [&] { bench.a->transmit_now(f); });
  bench.sim.run();
  ASSERT_TRUE(got.has_value());
  // Remote(+4) minus local(-3) = +7 ppm.
  EXPECT_NEAR(got->carrier_offset_ppm, 7.0, 0.3);
}

TEST(NodeTest, OutOfRangeFrameNotDelivered) {
  // With the log-distance model and the default detection threshold, a node
  // 3 km away produces no detectable path.
  Simulator sim;
  channel::ChannelModelParams ch;
  ch.enable_diffuse = false;
  ch.max_reflection_order = 0;
  Medium medium(sim,
                channel::ChannelModel(geom::Room::rectangular(5000.0, 50.0), ch),
                MediumParams{}, Rng(31));
  NodeConfig ca;
  ca.id = 0;
  ca.position = {1.0, 25.0};
  NodeConfig cb;
  cb.id = 1;
  cb.position = {3001.0, 25.0};
  Node a(sim, medium, ca, Rng(32));
  Node b(sim, medium, cb, Rng(33));
  std::optional<RxResult> got;
  b.set_rx_handler([&](const RxResult& r) { got = r; });
  b.enter_rx();
  dw::MacFrame f;
  f.type = dw::FrameType::Init;
  sim.after(SimTime::from_micros(10.0), [&] { a.transmit_now(f); });
  sim.run();
  EXPECT_FALSE(got.has_value());
  b.exit_rx();
}

TEST(NodeTest, TransmitWhileListeningThrows) {
  TestBench bench;
  bench.a->enter_rx();
  dw::MacFrame f;
  EXPECT_THROW(bench.a->transmit_now(f), PreconditionError);
  bench.a->exit_rx();
}

}  // namespace
}  // namespace uwb::sim
