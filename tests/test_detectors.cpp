// Unit tests: search-and-subtract detector (Sect. IV), threshold baseline
// (Sect. VI), and pulse-shape classification (Sect. V) on synthetic CIRs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "dw1000/cir.hpp"
#include "dw1000/pulse.hpp"
#include "ranging/search_subtract.hpp"
#include "ranging/threshold_detector.hpp"

namespace uwb::ranging {
namespace {

dw::CirEstimate make_cir(const std::vector<dw::CirArrival>& arrivals,
                         double noise_sigma, std::uint64_t seed) {
  dw::CirParams params;
  params.noise_sigma = noise_sigma;
  Rng rng(seed);
  return dw::synthesize_cir(arrivals, params, rng);
}

dw::CirArrival arrival(double tap_pos, double amp, std::uint8_t reg = 0x93) {
  dw::CirArrival a;
  a.time_into_window_s = tap_pos * k::cir_ts_s;
  a.amplitude = {amp, 0.0};
  a.tc_pgdelay = reg;
  return a;
}

TEST(SearchSubtractTest, SinglePulseLocatedPrecisely) {
  const auto cir = make_cir({arrival(100.25, 0.5)}, 0.004, 1);
  SearchSubtractDetector det{DetectorConfig{}};
  const auto found = det.detect(cir.taps, cir.ts_s, 1);
  ASSERT_EQ(found.size(), 1u);
  // Upsampled-by-8 grid: peak within 1/8 tap of the true position.
  EXPECT_NEAR(found[0].tau_s / k::cir_ts_s, 100.25, 0.15);
  EXPECT_NEAR(std::abs(found[0].amplitude), 0.5, 0.03);
}

TEST(SearchSubtractTest, ThreeWellSeparatedResponses) {
  const auto cir = make_cir(
      {arrival(80.0, 0.5), arrival(120.0, 0.3), arrival(200.0, 0.15)}, 0.004, 2);
  SearchSubtractDetector det{DetectorConfig{}};
  const auto found = det.detect(cir.taps, cir.ts_s, 3);
  ASSERT_EQ(found.size(), 3u);
  // Ascending tau (paper step 7), independent of amplitude order.
  EXPECT_NEAR(found[0].tau_s / k::cir_ts_s, 80.0, 0.2);
  EXPECT_NEAR(found[1].tau_s / k::cir_ts_s, 120.0, 0.2);
  EXPECT_NEAR(found[2].tau_s / k::cir_ts_s, 200.0, 0.2);
}

TEST(SearchSubtractTest, AmplitudeIndependenceWeakFirst) {
  // The *weakest* response arrives first; detection must still report it
  // first (open challenge IV: no absolute power ordering).
  const auto cir = make_cir({arrival(90.0, 0.08), arrival(300.0, 0.6)}, 0.004, 3);
  SearchSubtractDetector det{DetectorConfig{}};
  const auto found = det.detect(cir.taps, cir.ts_s, 2);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_NEAR(found[0].tau_s / k::cir_ts_s, 90.0, 0.3);
  EXPECT_LT(std::abs(found[0].amplitude), std::abs(found[1].amplitude));
}

TEST(SearchSubtractTest, StopsAtNoiseFloor) {
  const auto cir = make_cir({arrival(100.0, 0.5)}, 0.004, 4);
  SearchSubtractDetector det{DetectorConfig{}};
  // Asking for 5 responses must not hallucinate 4 extra ones from noise.
  const auto found = det.detect(cir.taps, cir.ts_s, 5);
  EXPECT_LE(found.size(), 2u);
  ASSERT_GE(found.size(), 1u);
  EXPECT_NEAR(found[0].tau_s / k::cir_ts_s, 100.0, 0.2);
}

TEST(SearchSubtractTest, OverlappingResponsesResolved) {
  // Two pulses 3 taps (~3 ns) apart: heavily overlapping but resolvable by
  // subtraction (paper Fig. 7).
  const auto cir = make_cir({arrival(100.0, 0.5), arrival(103.0, 0.45)}, 0.004, 5);
  SearchSubtractDetector det{DetectorConfig{}};
  const auto found = det.detect(cir.taps, cir.ts_s, 2);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_NEAR(found[0].tau_s / k::cir_ts_s, 100.0, 0.5);
  EXPECT_NEAR(found[1].tau_s / k::cir_ts_s, 103.0, 0.5);
}

TEST(SearchSubtractTest, SubtractionRevealsWeakNeighbour) {
  // A weak response in the shadow of a strong one.
  const auto cir = make_cir({arrival(100.0, 0.6), arrival(104.0, 0.12)}, 0.003, 6);
  SearchSubtractDetector det{DetectorConfig{}};
  const auto found = det.detect(cir.taps, cir.ts_s, 2);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_NEAR(found[1].tau_s / k::cir_ts_s, 104.0, 0.8);
}

TEST(SearchSubtractTest, ClassifiesPulseShapes) {
  // Two responders with different TC_PGDELAY shapes (paper Fig. 6).
  const auto cir = make_cir(
      {arrival(100.0, 0.4, 0x93), arrival(250.0, 0.25, 0xE6)}, 0.004, 7);
  DetectorConfig cfg;
  cfg.shape_registers = {0x93, 0xC8, 0xE6};
  SearchSubtractDetector det{cfg};
  const auto found = det.detect(cir.taps, cir.ts_s, 2);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].shape_index, 0);  // s1 = 0x93
  EXPECT_EQ(found[1].shape_index, 2);  // s3 = 0xE6
}

TEST(SearchSubtractTest, SingleTemplateReportsNoShape) {
  const auto cir = make_cir({arrival(100.0, 0.4)}, 0.004, 8);
  SearchSubtractDetector det{DetectorConfig{}};
  const auto found = det.detect(cir.taps, cir.ts_s, 1);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].shape_index, -1);
}

TEST(SearchSubtractTest, MatchedFilterOutputPeaksAtResponse) {
  const auto cir = make_cir({arrival(150.0, 0.5)}, 0.002, 9);
  DetectorConfig cfg;
  SearchSubtractDetector det{cfg};
  const CVec y = det.matched_filter_output(cir.taps, cir.ts_s, 0);
  ASSERT_EQ(y.size(), cir.taps.size() * 8);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < y.size(); ++i)
    if (std::abs(y[i]) > std::abs(y[peak])) peak = i;
  // Peak is the template *start*; peak + centre offset = 150 taps * 8.
  const auto centre = static_cast<double>(
      dw::template_centre_index(0x93, k::cir_ts_s / 8.0));
  EXPECT_NEAR(static_cast<double>(peak) + centre, 150.0 * 8.0, 2.0);
}

TEST(SearchSubtractTest, ConfigValidation) {
  DetectorConfig bad;
  bad.upsample_factor = 0;
  EXPECT_THROW(SearchSubtractDetector{bad}, PreconditionError);
  bad = DetectorConfig{};
  bad.shape_registers = {};
  EXPECT_THROW(SearchSubtractDetector{bad}, PreconditionError);
  bad = DetectorConfig{};
  bad.relative_stop_fraction = 1.5;
  EXPECT_THROW(SearchSubtractDetector{bad}, PreconditionError);
}

TEST(SearchSubtractTest, EmptyCirThrows) {
  SearchSubtractDetector det{DetectorConfig{}};
  EXPECT_THROW(det.detect(CVec{}, k::cir_ts_s, 1), PreconditionError);
  const auto cir = make_cir({arrival(10.0, 0.5)}, 0.004, 10);
  EXPECT_THROW(det.detect(cir.taps, cir.ts_s, 0), PreconditionError);
}

TEST(ThresholdTest, WellSeparatedResponsesDetected) {
  const auto cir = make_cir(
      {arrival(80.0, 0.5), arrival(160.0, 0.3), arrival(300.0, 0.2)}, 0.004, 11);
  ThresholdDetector det{DetectorConfig{}};
  const auto found = det.detect(cir.taps, cir.ts_s, 3);
  ASSERT_EQ(found.size(), 3u);
  EXPECT_NEAR(found[0].tau_s / k::cir_ts_s, 80.0, 1.0);
  EXPECT_NEAR(found[1].tau_s / k::cir_ts_s, 160.0, 1.0);
  EXPECT_NEAR(found[2].tau_s / k::cir_ts_s, 300.0, 1.0);
}

TEST(ThresholdTest, MissesOverlappingResponses) {
  // Coincident responses merge into one crossing window — the failure mode
  // the paper quantifies in Sect. VI.
  const auto cir = make_cir({arrival(100.0, 0.5), arrival(101.0, 0.45)}, 0.004, 12);
  ThresholdDetector det{DetectorConfig{}};
  const auto found = det.detect(cir.taps, cir.ts_s, 2);
  // Only one peak inside the window; any further "response" would have to
  // come from noise beyond it.
  ASSERT_GE(found.size(), 1u);
  EXPECT_NEAR(found[0].tau_s / k::cir_ts_s, 100.0, 2.0);
  if (found.size() == 2u) {
    // If a second crossing fired, it is far from the true second response.
    EXPECT_GT(std::abs(found[1].tau_s / k::cir_ts_s - 101.0), 5.0);
  }
}

TEST(ThresholdTest, RespectsMaxResponses) {
  const auto cir = make_cir(
      {arrival(50.0, 0.5), arrival(150.0, 0.4), arrival(250.0, 0.3)}, 0.004, 13);
  ThresholdDetector det{DetectorConfig{}};
  EXPECT_EQ(det.detect(cir.taps, cir.ts_s, 2).size(), 2u);
}

TEST(ThresholdTest, PureNoiseYieldsNothingAtHighThreshold) {
  DetectorConfig cfg;
  cfg.noise_threshold_factor = 8.0;
  const auto cir = make_cir({}, 0.004, 14);
  ThresholdDetector det{cfg};
  EXPECT_TRUE(det.detect(cir.taps, cir.ts_s, 3).empty());
}

TEST(DetectorComparisonTest, SearchSubtractBeatsThresholdOnOverlap) {
  // Monte-Carlo comparison on identical CIRs (the Sect. VI experiment in
  // miniature): count trials where both true responses are recovered.
  int ss_ok = 0, th_ok = 0;
  const int trials = 60;
  SearchSubtractDetector ss{DetectorConfig{}};
  ThresholdDetector th{DetectorConfig{}};
  Rng offsets(99);
  for (int t = 0; t < trials; ++t) {
    const double offset = offsets.uniform(0.5, 2.0);  // 0.5-2 taps apart
    const auto cir = make_cir(
        {arrival(100.0, 0.5), arrival(100.0 + offset, 0.48)}, 0.004,
        static_cast<std::uint64_t>(t) + 1000);
    const auto check = [&](const std::vector<DetectedResponse>& found) {
      if (found.size() < 2) return false;
      const double tol = 1.5;
      const bool first_ok =
          std::abs(found[0].tau_s / k::cir_ts_s - 100.0) < tol;
      const bool second_ok =
          std::abs(found[1].tau_s / k::cir_ts_s - (100.0 + offset)) < tol;
      return first_ok && second_ok;
    };
    if (check(ss.detect(cir.taps, cir.ts_s, 2))) ++ss_ok;
    if (check(th.detect(cir.taps, cir.ts_s, 2))) ++th_ok;
  }
  EXPECT_GT(ss_ok, th_ok);
  EXPECT_GT(ss_ok, trials / 2);
}

}  // namespace
}  // namespace uwb::ranging
