// Equivalence tests: the shared-spectrum + incremental fast detection path
// against the exact per-iteration recompute path (DESIGN.md Sect. 8), the
// spectrum-reusing matched-filter entry point against the self-contained
// one, and bit-identical Monte-Carlo detection across thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/constants.hpp"
#include "common/random.hpp"
#include "dsp/fft.hpp"
#include "dsp/matched_filter.hpp"
#include "dw1000/cir.hpp"
#include "dw1000/pulse.hpp"
#include "ranging/search_subtract.hpp"
#include "runner/monte_carlo.hpp"

namespace uwb::ranging {
namespace {

constexpr std::uint8_t kShapeBank[] = {0x93, 0xB5, 0xE6};

dw::CirEstimate random_cir(std::uint64_t seed, int min_arrivals,
                           int max_arrivals) {
  Rng rng(seed);
  const auto n = static_cast<int>(rng.uniform_int(min_arrivals, max_arrivals));
  std::vector<dw::CirArrival> arrivals;
  double pos = rng.uniform(40.0, 120.0);
  for (int i = 0; i < n; ++i) {
    dw::CirArrival a;
    a.time_into_window_s = pos * k::cir_ts_s;
    a.amplitude = Complex(rng.uniform(0.1, 0.7), 0.0) * rng.random_phase();
    a.tc_pgdelay =
        kShapeBank[static_cast<std::size_t>(rng.uniform_int(0, 2))];
    arrivals.push_back(a);
    pos += rng.uniform(6.0, 180.0);
  }
  dw::CirParams params;
  params.noise_sigma = 0.004;
  return dw::synthesize_cir(arrivals, params, rng);
}

DetectorConfig multi_shape_config() {
  DetectorConfig cfg;
  cfg.shape_registers.assign(std::begin(kShapeBank), std::end(kShapeBank));
  return cfg;
}

void expect_same_responses(const std::vector<DetectedResponse>& fast,
                           const std::vector<DetectedResponse>& exact,
                           std::uint64_t seed) {
  ASSERT_EQ(fast.size(), exact.size()) << "seed=" << seed;
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].shape_index, exact[i].shape_index)
        << "seed=" << seed << " i=" << i;
    EXPECT_NEAR(fast[i].index_upsampled, exact[i].index_upsampled, 1e-6)
        << "seed=" << seed << " i=" << i;
    EXPECT_NEAR(fast[i].tau_s, exact[i].tau_s, 1e-6 * k::cir_ts_s)
        << "seed=" << seed << " i=" << i;
    EXPECT_NEAR(std::abs(fast[i].amplitude - exact[i].amplitude), 0.0, 1e-9)
        << "seed=" << seed << " i=" << i;
  }
}

TEST(FastPathEquivalence, MatchesExactOnRandomMultiResponderCirs) {
  SearchSubtractDetector fast{multi_shape_config()};
  DetectorConfig exact_cfg = multi_shape_config();
  exact_cfg.exact_recompute = true;
  SearchSubtractDetector exact{exact_cfg};
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto cir = random_cir(seed, 2, 5);
    expect_same_responses(fast.detect(cir.taps, cir.ts_s, 6),
                          exact.detect(cir.taps, cir.ts_s, 6), seed);
  }
}

TEST(FastPathEquivalence, MatchesExactWithSingleTemplateBank) {
  SearchSubtractDetector fast{DetectorConfig{}};
  DetectorConfig exact_cfg;
  exact_cfg.exact_recompute = true;
  SearchSubtractDetector exact{exact_cfg};
  for (std::uint64_t seed = 100; seed <= 106; ++seed) {
    const auto cir = random_cir(seed, 1, 4);
    expect_same_responses(fast.detect(cir.taps, cir.ts_s, 5),
                          exact.detect(cir.taps, cir.ts_s, 5), seed);
  }
}

TEST(FastPathEquivalence, MatchesExactWithoutUpsampling) {
  // factor == 1 skips the upsample fusion and takes the plain copy branch.
  DetectorConfig cfg = multi_shape_config();
  cfg.upsample_factor = 1;
  SearchSubtractDetector fast{cfg};
  DetectorConfig exact_cfg = cfg;
  exact_cfg.exact_recompute = true;
  SearchSubtractDetector exact{exact_cfg};
  for (std::uint64_t seed = 200; seed <= 204; ++seed) {
    const auto cir = random_cir(seed, 2, 4);
    expect_same_responses(fast.detect(cir.taps, cir.ts_s, 5),
                          exact.detect(cir.taps, cir.ts_s, 5), seed);
  }
}

TEST(FastPathEquivalence, TracedDetectEqualsExactPath) {
  // Tracing always runs the exact path; its responses must match a plain
  // exact_recompute detect bit for bit (identical code path and inputs).
  DetectorConfig exact_cfg = multi_shape_config();
  exact_cfg.exact_recompute = true;
  SearchSubtractDetector exact{exact_cfg};
  SearchSubtractDetector traced{multi_shape_config()};
  const auto cir = random_cir(7, 3, 3);
  const auto plain = exact.detect(cir.taps, cir.ts_s, 4);
  const auto trace = traced.detect_with_trace(cir.taps, cir.ts_s, 4);
  ASSERT_EQ(trace.responses.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(trace.responses[i].tau_s, plain[i].tau_s);
    EXPECT_EQ(trace.responses[i].amplitude, plain[i].amplitude);
    EXPECT_EQ(trace.responses[i].shape_index, plain[i].shape_index);
  }
  // One filter output per iteration, including the final rejected one when
  // the search stopped at the noise floor before max_responses.
  EXPECT_GE(trace.mf_outputs.size(), plain.size());
  EXPECT_LE(trace.mf_outputs.size(), plain.size() + 1);
}

TEST(FastPathEquivalence, ApplySpectrumMatchesApply) {
  Rng rng(11);
  const CVec tmpl_raw = dw::sample_pulse_template(0x93, k::cir_ts_s / 8.0);
  const dsp::MatchedFilter mf(tmpl_raw);
  for (const std::size_t n : {500ul, 1024ul, 5000ul}) {
    CVec r(n);
    for (auto& v : r) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    const CVec direct = mf.apply(r);
    const std::size_t padded = dsp::next_pow2(n + mf.template_length() - 1);
    CVec buf(padded, Complex{});
    std::copy(r.begin(), r.end(), buf.begin());
    dsp::plan_for(padded).transform_pow2(buf.data(), false);
    CVec out;
    mf.apply_spectrum(buf.data(), padded, n, out);
    ASSERT_EQ(out.size(), direct.size());
    double max_diff = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      max_diff = std::max(max_diff, std::abs(out[i] - direct[i]));
    EXPECT_LT(max_diff, 1e-10) << "n=" << n;
  }
}

TEST(FastPathEquivalence, BankCacheCountsSharedBanks) {
  SearchSubtractDetector::clear_bank_cache();
  const auto before = SearchSubtractDetector::bank_cache_stats();
  const auto cir = random_cir(3, 2, 2);
  SearchSubtractDetector a{multi_shape_config()};
  SearchSubtractDetector b{multi_shape_config()};
  a.detect(cir.taps, cir.ts_s, 2);
  b.detect(cir.taps, cir.ts_s, 2);  // same config: bank comes from cache
  const auto after = SearchSubtractDetector::bank_cache_stats();
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, 1u);
#ifndef UWB_OBS_DISABLED
  // Registry-backed totals only move while instrumentation is compiled in.
  const auto total = SearchSubtractDetector::bank_cache_stats_total();
  EXPECT_GE(total.hits + total.misses, 2u);
#endif
}

TEST(FastPathEquivalence, McDetectionBitIdenticalAcrossThreadCounts) {
  // The fast path keeps per-thread scratch (residual spectra, correlation
  // outputs) — worker reuse across trials must never leak state between
  // trials. Full detection pipeline, 1 thread vs 4, bitwise-equal samples.
  const auto run = [](int threads) {
    runner::MonteCarlo::Config cfg;
    cfg.threads = threads;
    cfg.base_seed = 99;
    return runner::MonteCarlo(cfg).run(40, [](const runner::TrialContext& ctx,
                                              runner::TrialRecorder& rec) {
      const auto cir = random_cir(ctx.seed, 1, 4);
      SearchSubtractDetector det{multi_shape_config()};
      const auto found = det.detect(cir.taps, cir.ts_s, 5);
      rec.count("responses", static_cast<std::int64_t>(found.size()));
      for (const auto& r : found) {
        rec.sample("tau_s", r.tau_s);
        rec.sample("amp", std::abs(r.amplitude));
        rec.sample("shape", static_cast<double>(r.shape_index));
      }
    });
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  EXPECT_EQ(serial.counter("responses"), parallel.counter("responses"));
  ASSERT_EQ(serial.metric_names(), parallel.metric_names());
  for (const auto& name : serial.metric_names()) {
    const RVec& a = serial.samples(name);
    const RVec& b = parallel.samples(name);
    ASSERT_EQ(a.size(), b.size()) << name;
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_EQ(a[i], b[i]) << name << "[" << i << "]";
  }
}

}  // namespace
}  // namespace uwb::ranging
