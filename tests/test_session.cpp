// Integration tests: full concurrent-ranging rounds through the simulator,
// covering the paper's core scenarios (Sect. III-VIII).
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "ranging/session.hpp"

namespace uwb::ranging {
namespace {

ScenarioConfig hallway_scenario(std::uint64_t seed) {
  ScenarioConfig cfg;
  // Paper-like hallway with plasterboard-grade walls: side-wall reflections
  // stay well below the direct paths, as in the measured CIR of Fig. 4a.
  cfg.room = geom::Room::hallway(40.0, 2.4, /*reflection_loss_db=*/12.0);
  cfg.initiator_position = {2.0, 1.2};
  cfg.seed = seed;
  return cfg;
}

TEST(SessionTest, SingleResponderTwrAccuracy) {
  ScenarioConfig cfg = hallway_scenario(42);
  cfg.responders = {{0, {5.0, 1.2}}};  // 3 m away
  ConcurrentRangingScenario scenario(cfg);
  const RoundOutcome out = scenario.run_round();
  ASSERT_TRUE(out.completed);
  ASSERT_TRUE(out.payload_decoded);
  EXPECT_EQ(out.sync_responder_id, 0);
  EXPECT_NEAR(out.d_twr_m, 3.0, 0.15);
  ASSERT_GE(out.estimates.size(), 1u);
  EXPECT_NEAR(out.estimates.front().distance_m, 3.0, 0.15);
}

TEST(SessionTest, ThreeRespondersFig4Scenario) {
  // Paper Fig. 4: responders at 3, 6, and 10 m in a hallway. With the
  // hardware delayed-TX truncation active, each non-decoded response moves
  // by up to +-8 ns (paper Sect. III) => +-0.6 m one-way tolerance. The
  // seed picks a typical fading draw: adverse draws can hide the second
  // response behind first-responder multipath in this geometry.
  ScenarioConfig cfg = hallway_scenario(8);
  cfg.responders = {{0, {5.0, 1.2}}, {1, {8.0, 1.2}}, {2, {12.0, 1.2}}};
  ConcurrentRangingScenario scenario(cfg);
  const RoundOutcome out = scenario.run_round();
  ASSERT_TRUE(out.completed);
  ASSERT_TRUE(out.payload_decoded);
  EXPECT_EQ(out.frames_in_batch, 3);
  ASSERT_EQ(out.estimates.size(), 3u);
  // The detector orders responses by ascending distance (paper step 7).
  EXPECT_NEAR(out.estimates[0].distance_m, 3.0, 0.3);
  EXPECT_NEAR(out.estimates[1].distance_m, 6.0, 0.75);
  EXPECT_NEAR(out.estimates[2].distance_m, 10.0, 0.75);
}

TEST(SessionTest, ThreeRespondersIdealTxTiming) {
  // Ablation: with ideal (un-truncated) delayed TX the concurrent distances
  // are centimetre-accurate, isolating the truncation as the error source.
  ScenarioConfig cfg = hallway_scenario(8);
  cfg.responders = {{0, {5.0, 1.2}}, {1, {8.0, 1.2}}, {2, {12.0, 1.2}}};
  cfg.delayed_tx_truncation = false;
  ConcurrentRangingScenario scenario(cfg);
  const RoundOutcome out = scenario.run_round();
  ASSERT_TRUE(out.payload_decoded);
  ASSERT_EQ(out.estimates.size(), 3u);
  EXPECT_NEAR(out.estimates[0].distance_m, 3.0, 0.1);
  EXPECT_NEAR(out.estimates[1].distance_m, 6.0, 0.1);
  EXPECT_NEAR(out.estimates[2].distance_m, 10.0, 0.1);
}

TEST(SessionTest, RepeatedRoundsAdvanceTime) {
  ScenarioConfig cfg = hallway_scenario(3);
  cfg.responders = {{0, {6.0, 1.2}}};
  ConcurrentRangingScenario scenario(cfg);
  const SimTime before = scenario.simulator().now();
  const RoundOutcome a = scenario.run_round();
  const SimTime mid = scenario.simulator().now();
  const RoundOutcome b = scenario.run_round();
  EXPECT_TRUE(a.completed);
  EXPECT_TRUE(b.completed);
  EXPECT_GT(mid, before);
  EXPECT_GT(scenario.simulator().now(), mid);
}

}  // namespace
}  // namespace uwb::ranging
