// Adversarial ranging suite tests: golden-seed determinism of attack
// sequences and verdicts across thread counts, inert-plan byte-identity
// (including CIR taps), per-attack efficacy (the measured distance really
// shrinks), the AttackDetector's checks catching each attack kind, the
// benign-fault zero-false-positive contract, and the DS-TWR asymmetry
// residual.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "fault/attack.hpp"
#include "ranging/dstwr.hpp"
#include "ranging/session.hpp"
#include "runner/monte_carlo.hpp"

namespace uwb::ranging {
namespace {

/// Office scenario with RPM + pulse shaping on (slot/ID decoding is what
/// several attacks target), mirroring bench_ext_adversarial's geometry.
ScenarioConfig office(std::uint64_t seed, int responders = 4) {
  ScenarioConfig cfg;
  cfg.room = geom::Room::rectangular(12.0, 8.0, 10.0);
  cfg.initiator_position = {2.0, 4.0};
  cfg.seed = seed;
  cfg.ranging.num_slots = 4;
  cfg.ranging.slot_spacing_s = 150e-9;
  cfg.ranging.shape_registers = {0x93, 0xC8};
  cfg.detect_max_responses = 2 * responders;
  cfg.slot_aware_selection = true;
  const geom::Vec2 spots[] = {{5.0, 4.0}, {8.0, 5.5}, {9.5, 2.5},
                              {6.0, 6.5}, {4.0, 2.0}, {10.5, 5.0}};
  for (int i = 0; i < responders; ++i) cfg.responders.push_back({i, spots[i]});
  return cfg;
}

fault::AttackPlan clock_skew_plan(int attacker, double spoof_ppm,
                                  double bias_s, double ramp_ppm = 0.0) {
  fault::AttackPlan plan;
  plan.enabled = true;
  fault::AttackSpec spec;
  spec.attacker_id = attacker;
  spec.kind = fault::AttackKind::kClockSkew;
  spec.cfo_spoof_ppm = spoof_ppm;
  spec.cfo_ramp_ppm_per_round = ramp_ppm;
  spec.reply_bias_s = bias_s;
  plan.specs.push_back(spec);
  return plan;
}

fault::AttackPlan ghost_plan(int attacker, double advance_s, double rel_amp,
                             double probability = 1.0) {
  fault::AttackPlan plan;
  plan.enabled = true;
  fault::AttackSpec spec;
  spec.attacker_id = attacker;
  spec.kind = fault::AttackKind::kGhostPeak;
  spec.probability = probability;
  spec.ghost_advance_s = advance_s;
  spec.ghost_rel_amplitude = rel_amp;
  plan.specs.push_back(spec);
  return plan;
}

fault::AttackPlan replay_plan(int attacker, int forged_register,
                              double probability = 1.0) {
  fault::AttackPlan plan;
  plan.enabled = true;
  fault::AttackSpec spec;
  spec.attacker_id = attacker;
  spec.kind = fault::AttackKind::kShapeReplay;
  spec.probability = probability;
  spec.forged_shape_register = forged_register;
  plan.specs.push_back(spec);
  return plan;
}

fault::FaultPlan lossy_plan(double loss) {
  fault::FaultPlan plan;
  plan.enabled = true;
  plan.preamble_miss_prob = loss;
  plan.crc_error_prob = loss / 4.0;
  plan.late_tx_abort_prob = loss / 4.0;
  plan.dropout_prob = loss / 8.0;
  return plan;
}

/// Round fingerprint including the adversarial surface: verdicts and
/// suspect statuses divergence-test alongside the ranging results.
std::string fingerprint(const RoundOutcome& out) {
  char buf[64];
  std::string fp;
  const auto add = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g;", v);
    fp += buf;
  };
  add(out.completed);
  add(out.payload_decoded);
  add(out.sync_responder_id);
  add(out.d_twr_m);
  add(out.attempts);
  for (const auto& est : out.estimates) {
    add(est.responder_id);
    add(est.distance_m);
  }
  for (const auto& rep : out.responder_reports) {
    add(rep.id);
    add(static_cast<int>(rep.status));
  }
  for (const auto& v : out.verdicts) {
    add(v.responder_id);
    add(static_cast<int>(v.check));
    add(v.metric);
    add(v.tau_s);
  }
  return fp;
}

bool has_check(const RoundOutcome& out, AttackCheck check) {
  for (const auto& v : out.verdicts)
    if (v.check == check) return true;
  return false;
}

RangingStatus status_of(const RoundOutcome& out, int id) {
  for (const auto& rep : out.responder_reports)
    if (rep.id == id) return rep.status;
  return RangingStatus::kTimedOut;
}

TEST(AttackConfigTest, PlanValidation) {
  fault::AttackPlan plan = ghost_plan(2, 40e-9, 1.5);
  EXPECT_NO_THROW(plan.validate());
  EXPECT_TRUE(plan.active());

  fault::AttackPlan bad = plan;
  bad.specs[0].probability = 1.5;
  EXPECT_THROW(bad.validate(), PreconditionError);

  fault::AttackPlan dup = plan;
  dup.specs.push_back(plan.specs[0]);  // duplicate attacker id
  EXPECT_THROW(dup.validate(), PreconditionError);

  fault::AttackPlan inert;
  inert.enabled = true;  // no specs
  EXPECT_NO_THROW(inert.validate());
  EXPECT_FALSE(inert.active());
}

TEST(AttackConfigTest, ValidateConfigRejectsUnknownAttacker) {
  ScenarioConfig cfg = office(1);
  cfg.attack = ghost_plan(9, 40e-9, 1.5);  // id 9 is not deployed
  const Status s = ConcurrentRangingScenario::validate_config(cfg);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("attacker"), std::string::npos);

  cfg.attack = ghost_plan(2, 40e-9, 1.5);
  EXPECT_TRUE(ConcurrentRangingScenario::validate_config(cfg).ok());

  cfg.attack_detector.enabled = true;
  cfg.attack_detector.cfo_max_ppm = -1.0;
  EXPECT_FALSE(ConcurrentRangingScenario::validate_config(cfg).ok());
}

TEST(AttackDeterminismTest, GoldenSeedIdenticalAcrossThreadCounts) {
  // The same attacked Monte-Carlo run at 1 and 4 worker threads must
  // produce identical per-trial fingerprints (verdicts included) and
  // identical injected-attack counters.
  const auto run_mc = [](int threads) {
    runner::MonteCarlo::Config mc_cfg;
    mc_cfg.threads = threads;
    mc_cfg.base_seed = 2024;
    return runner::MonteCarlo(mc_cfg).run(
        24, [](const runner::TrialContext& ctx, runner::TrialRecorder& rec) {
          ScenarioConfig cfg = office(ctx.seed);
          cfg.fault = lossy_plan(0.3);
          cfg.attack = clock_skew_plan(0, -12.0, 0.0);
          fault::AttackSpec ghost;
          ghost.attacker_id = 2;
          ghost.kind = fault::AttackKind::kGhostPeak;
          ghost.probability = 0.7;
          ghost.ghost_advance_s = 45e-9;
          ghost.ghost_rel_amplitude = 1.8;
          cfg.attack.specs.push_back(ghost);
          cfg.attack_detector.enabled = true;
          cfg.resilience.max_retries = 2;
          ConcurrentRangingScenario scenario(cfg);
          for (int round = 0; round < 3; ++round) {
            const RoundOutcome out = scenario.run_round();
            rec.sample("fp_hash",
                       static_cast<double>(
                           std::hash<std::string>{}(fingerprint(out))));
          }
          rec.count("attacks",
                    static_cast<std::int64_t>(
                        scenario.attack_injector()->counters().total()));
          rec.count("suspects", static_cast<std::int64_t>(
                                    scenario.stats().suspect_reports));
        });
  };
  const auto r1 = run_mc(1);
  const auto r4 = run_mc(4);
  ASSERT_EQ(r1.samples("fp_hash").size(), r4.samples("fp_hash").size());
  EXPECT_EQ(r1.samples("fp_hash"), r4.samples("fp_hash"));
  EXPECT_EQ(r1.counter("attacks"), r4.counter("attacks"));
  EXPECT_GT(r1.counter("attacks"), 0);
  EXPECT_EQ(r1.counter("suspects"), r4.counter("suspects"));
  EXPECT_GT(r1.counter("suspects"), 0);
}

TEST(AttackDeterminismTest, InertPlanByteIdenticalToDefault) {
  // An enabled plan whose specs are all inert constructs no injector and
  // must reproduce the default configuration bit for bit — including every
  // CIR tap, since the ghost hook appends to the delivered tap lists.
  ScenarioConfig plain = office(1234);
  ScenarioConfig zeroed = office(1234);
  zeroed.attack.enabled = true;
  fault::AttackSpec inert;  // all strengths zero
  inert.attacker_id = 1;
  inert.kind = fault::AttackKind::kClockSkew;
  zeroed.attack.specs.push_back(inert);
  fault::AttackSpec silent_ghost;
  silent_ghost.attacker_id = 2;
  silent_ghost.kind = fault::AttackKind::kGhostPeak;
  silent_ghost.probability = 0.0;  // never fires
  zeroed.attack.specs.push_back(silent_ghost);
  ConcurrentRangingScenario a(plain);
  ConcurrentRangingScenario b(zeroed);
  EXPECT_EQ(b.attack_injector(), nullptr);
  for (int round = 0; round < 5; ++round) {
    const RoundOutcome oa = a.run_round();
    const RoundOutcome ob = b.run_round();
    EXPECT_EQ(fingerprint(oa), fingerprint(ob)) << "round " << round;
    ASSERT_EQ(oa.cir.taps.size(), ob.cir.taps.size());
    for (std::size_t i = 0; i < oa.cir.taps.size(); ++i)
      EXPECT_EQ(oa.cir.taps[i], ob.cir.taps[i]);
  }
}

TEST(AttackEfficacyTest, NegativeCfoSpoofShrinksMeasuredDistance) {
  // A -6 ppm overshoot is below the 8 ppm plausibility bound (undetected)
  // and shifts Eq. 2 by ~ -c * 6e-6 * t_reply / 2 ~= -26 cm at 290 us.
  const auto mean_error = [](fault::AttackPlan plan) {
    ScenarioConfig cfg = office(99);
    cfg.attack = std::move(plan);
    ConcurrentRangingScenario scenario(cfg);
    double sum = 0.0;
    int n = 0;
    for (int round = 0; round < 20; ++round) {
      const RoundOutcome out = scenario.run_round();
      if (!out.payload_decoded || out.sync_responder_id != 0) continue;
      sum += out.d_twr_m - scenario.true_distance(0).value();
      ++n;
    }
    EXPECT_GT(n, 10);
    return sum / n;
  };
  const double honest = mean_error({});
  const double attacked = mean_error(clock_skew_plan(0, -6.0, 0.0));
  EXPECT_NEAR(attacked - honest, -0.26, 0.13);
}

TEST(AttackDetectTest, CfoOvershootCaught) {
  ScenarioConfig cfg = office(7);
  cfg.attack = clock_skew_plan(0, -20.0, 0.0);
  cfg.attack_detector.enabled = true;
  ConcurrentRangingScenario scenario(cfg);
  int decoded = 0, caught = 0;
  for (int round = 0; round < 10; ++round) {
    const RoundOutcome out = scenario.run_round();
    if (!out.payload_decoded || out.sync_responder_id != 0) continue;
    ++decoded;
    // -20 ppm shrinks the sync distance by ~87 cm; the detector flags the
    // implausible CFO and demotes the responder to kSuspect.
    EXPECT_LT(out.d_twr_m, scenario.true_distance(0).value() - 0.4);
    if (has_check(out, AttackCheck::kCfoImplausible) &&
        status_of(out, 0) == RangingStatus::kSuspect)
      ++caught;
  }
  EXPECT_GT(decoded, 5);
  EXPECT_EQ(caught, decoded);
  EXPECT_EQ(scenario.stats().suspect_rounds, static_cast<std::uint64_t>(decoded));
}

TEST(AttackDetectTest, CfoRampCrossesThresholdMidRun) {
  // A gradual overshoot ramp (1.5 ppm/round from 0) stays undetected for
  // the first rounds and must be caught once it crosses the 8 ppm bound.
  ScenarioConfig cfg = office(11);
  cfg.attack = clock_skew_plan(0, 0.0, 0.0, /*ramp_ppm=*/1.5);
  cfg.attack_detector.enabled = true;
  ConcurrentRangingScenario scenario(cfg);
  std::vector<bool> suspect_by_round;
  for (int round = 0; round < 12; ++round) {
    const RoundOutcome out = scenario.run_round();
    if (!out.payload_decoded || out.sync_responder_id != 0) continue;
    suspect_by_round.push_back(status_of(out, 0) == RangingStatus::kSuspect);
  }
  ASSERT_GT(suspect_by_round.size(), 8u);
  EXPECT_FALSE(suspect_by_round.front());  // ramp still under the bound
  EXPECT_TRUE(suspect_by_round.back());    // ramp has crossed it
}

TEST(AttackDetectTest, ForgedReplyTimestampCaught) {
  // +80 ns reported-TX bias inflates the reply interval: distance shrinks
  // by c * 40 ns ~= 12 m, and the reply-schedule residual (honest range:
  // delayed-TX quantisation, < 8.013 ns) lands at ~+80 ns — far past the
  // tolerance.
  ScenarioConfig cfg = office(13);
  cfg.attack = clock_skew_plan(0, 0.0, 80e-9);
  cfg.attack_detector.enabled = true;
  ConcurrentRangingScenario scenario(cfg);
  int decoded = 0, caught = 0;
  for (int round = 0; round < 10; ++round) {
    const RoundOutcome out = scenario.run_round();
    if (!out.payload_decoded || out.sync_responder_id != 0) continue;
    ++decoded;
    EXPECT_LT(out.d_twr_m, scenario.true_distance(0).value() - 10.0);
    if (has_check(out, AttackCheck::kReplySchedule) &&
        status_of(out, 0) == RangingStatus::kSuspect)
      ++caught;
  }
  EXPECT_GT(decoded, 5);
  EXPECT_EQ(caught, decoded);
}

TEST(AttackDetectTest, SmallReplyBiasEvadesButBarelyMoves) {
  // A +5 ns bias hides inside the quantisation tolerance (no verdict) but
  // only buys the attacker ~75 cm — the detector bounds the damage.
  ScenarioConfig cfg = office(17);
  cfg.attack = clock_skew_plan(0, 0.0, 5e-9);
  cfg.attack_detector.enabled = true;
  ConcurrentRangingScenario scenario(cfg);
  for (int round = 0; round < 8; ++round) {
    const RoundOutcome out = scenario.run_round();
    if (!out.payload_decoded || out.sync_responder_id != 0) continue;
    EXPECT_TRUE(out.verdicts.empty());
    EXPECT_NEAR(out.d_twr_m, scenario.true_distance(0).value() - 0.75, 0.5);
  }
}

TEST(AttackEfficacyTest, GhostPeakShrinksVictimDistance) {
  // Ghost taps requested 45 ns ahead of responder 2's first path clamp to
  // the attacker's ~25.5 ns one-way delay (a tap cannot precede the frame's
  // transmission), still pulling its slot residual early enough to drop the
  // interpreted distance by ~3.9 m whenever the ghost outranks the
  // legitimate path.
  ScenarioConfig cfg = office(23);
  cfg.attack = ghost_plan(2, 45e-9, 2.0);
  ConcurrentRangingScenario scenario(cfg);
  int shrunk = 0, seen = 0;
  for (int round = 0; round < 12; ++round) {
    const RoundOutcome out = scenario.run_round();
    if (!out.payload_decoded) continue;
    for (const auto& est : out.estimates) {
      if (est.responder_id != 2) continue;
      ++seen;
      if (est.distance_m < scenario.true_distance(2).value() - 3.0) ++shrunk;
    }
  }
  EXPECT_GT(seen, 6);
  EXPECT_GT(shrunk, seen / 2);
}

TEST(AttackDetectTest, GhostPeakCaughtByTailCheck) {
  // A strong isolated ghost ~25 ns early (45 ns requested, clamped at the
  // attacker's one-way delay) has no multipath tail in the 3..20 ns window
  // behind it; the tail-energy check must indict in most decoded rounds.
  ScenarioConfig cfg = office(29);
  cfg.attack = ghost_plan(2, 45e-9, 2.0);
  cfg.attack_detector.enabled = true;
  ConcurrentRangingScenario scenario(cfg);
  int decoded = 0, caught = 0;
  for (int round = 0; round < 12; ++round) {
    const RoundOutcome out = scenario.run_round();
    if (!out.payload_decoded) continue;
    ++decoded;
    if (has_check(out, AttackCheck::kGhostTail)) ++caught;
  }
  EXPECT_GT(decoded, 8);
  EXPECT_GT(caught, (3 * decoded) / 4);
}

TEST(AttackDetectTest, InBankShapeReplayDecodesToUnknownId) {
  // Responder 3 (slot 3, shape 0) replaying bank register 0xC8 decodes as
  // shape 1 -> ID 1*4+3 = 7, which is not deployed: the unknown-ID check
  // fires (responder 3 is close enough that its forged response clears the
  // unknown-ID amplitude floor).
  ScenarioConfig cfg = office(31);
  cfg.attack = replay_plan(3, 0xC8);
  cfg.attack_detector.enabled = true;
  ConcurrentRangingScenario scenario(cfg);
  int decoded = 0, caught = 0;
  for (int round = 0; round < 12; ++round) {
    const RoundOutcome out = scenario.run_round();
    if (!out.payload_decoded) continue;
    ++decoded;
    if (has_check(out, AttackCheck::kUnknownId)) ++caught;
  }
  EXPECT_GT(decoded, 8);
  EXPECT_GT(caught, decoded / 2);
}

TEST(BenignFalsePositiveTest, LossyFaultSweepProducesZeroSuspects) {
  // The CI gate's contract: the benign 30 % loss fault plan with the
  // detector on must never indict anyone, across seeds and rounds.
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    ScenarioConfig cfg = office(seed);
    cfg.fault = lossy_plan(0.3);
    cfg.attack_detector.enabled = true;
    cfg.resilience.max_retries = 2;
    ConcurrentRangingScenario scenario(cfg);
    for (int round = 0; round < 25; ++round) {
      const RoundOutcome out = scenario.run_round();
      EXPECT_TRUE(out.verdicts.empty())
          << "seed " << seed << " round " << round << " check "
          << to_string(out.verdicts.front().check) << " metric "
          << out.verdicts.front().metric;
    }
    EXPECT_EQ(scenario.stats().suspect_reports, 0u);
  }
}

TEST(DsTwrResidualTest, ScheduleConsistentForgeryShiftsAsymmetryResidual) {
  // Honest clocks: the two half-exchange estimates agree to drift-scaled
  // reply intervals (sub-ns). Forging t_tx_resp alone cancels in the
  // residual (it enters Db and Rb with opposite signs) — that forgery is
  // the reply-schedule check's job. The residual catches the
  // schedule-consistent variant: shifting BOTH reported t_rx_poll and
  // t_tx_resp by +b keeps the apparent reply at the programmed value but
  // moves the residual by exactly +b/2 while shrinking the distance ~c*b/4.
  const double tof = 9.0 / k::c_air;
  const auto honest = [&](double ppm_a, double ppm_b) {
    const double ka = 1.0 + ppm_a * 1e-6;
    const double kb = 1.0 + ppm_b * 1e-6;
    DsTwrTimestamps ts;
    ts.t_tx_poll = dw::DwTimestamp(1'000'000);
    ts.t_rx_resp = ts.t_tx_poll.plus_seconds(Seconds((2.0 * tof + 290e-6) * ka));
    ts.t_tx_final = ts.t_rx_resp.plus_seconds(Seconds(290e-6 * ka));
    ts.t_rx_poll = dw::DwTimestamp(777'777'777);
    ts.t_tx_resp = ts.t_rx_poll.plus_seconds(Seconds(290e-6 * kb));
    ts.t_rx_final = ts.t_tx_resp.plus_seconds(Seconds((2.0 * tof + 290e-6) * kb));
    return ts;
  };
  const auto ts = honest(+5.0, -5.0);
  EXPECT_LT(std::abs(ds_twr_asymmetry_residual_s(ts).value()), 5e-9);

  // Naive forgery (t_tx_resp only): invisible to the residual...
  DsTwrTimestamps naive = ts;
  const double bias = 40e-9;
  naive.t_tx_resp = ts.t_tx_resp.plus_seconds(Seconds(bias));
  EXPECT_NEAR(ds_twr_asymmetry_residual_s(naive).value(),
              ds_twr_asymmetry_residual_s(ts).value(), 1e-12);
  // ...but it inflates the apparent reply Db by the full bias, which is
  // what the reply-schedule check compares against the programmed value.
  const double db_naive =
      naive.t_tx_resp.diff_seconds(naive.t_rx_poll).value();
  const double db_honest = ts.t_tx_resp.diff_seconds(ts.t_rx_poll).value();
  EXPECT_NEAR(db_naive - db_honest, bias, 2e-11);

  // Schedule-consistent forgery: both responder-reported timestamps shift,
  // Db stays at the programmed reply, the residual moves by +b/2. Both
  // timestamps shift by the same tick-quantised amount, so the residual
  // shift is exact up to one ~15.65 ps DW1000 tick.
  DsTwrTimestamps forged = ts;
  forged.t_rx_poll = ts.t_rx_poll.plus_seconds(Seconds(bias));
  forged.t_tx_resp = ts.t_tx_resp.plus_seconds(Seconds(bias));
  const double db_forged =
      forged.t_tx_resp.diff_seconds(forged.t_rx_poll).value();
  EXPECT_NEAR(db_forged, db_honest, 2e-11);
  EXPECT_NEAR(ds_twr_asymmetry_residual_s(forged).value() -
                  ds_twr_asymmetry_residual_s(ts).value(),
              bias / 2.0, 2e-11);
  // And the forged exchange's distance really shrinks (~c*b/4 = 3 m).
  EXPECT_LT(ds_twr_distance(forged).value(), ds_twr_distance(ts).value() - 2.0);
}

}  // namespace
}  // namespace uwb::ranging
