// Flight-recorder tests: the determinism contract (byte-identical JSONL
// across worker-thread counts on a golden seed), the bounded-ring overflow
// policy (newest kept, casualties counted), the causal-chain invariants
// every recording must satisfy (chains rooted at a tx event, per-chain
// sim-time monotone), and the post-mortem completeness claim — every
// non-ok responder status in a faulty session has at least one explaining
// event.
//
// The shard/recorder class API is driven directly in the first tests so
// they pass identically in UWB_OBS_DISABLED builds (the classes stay fully
// functional there; only the UWB_FR_* record sites compile away). Tests
// that need the instrumentation itself skip when it is compiled out.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "ranging/session.hpp"
#include "runner/monte_carlo.hpp"

namespace uwb::obs {
namespace {

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::set_enabled(false);
    FlightRecorder::instance().reset();
    FlightRecorder::instance().set_capacity(FlightRecorder::kDefaultCapacity);
  }
  void TearDown() override {
    FlightRecorder::set_enabled(false);
    FlightRecorder::instance().reset();
    FlightRecorder::instance().set_capacity(FlightRecorder::kDefaultCapacity);
  }
};

/// Lossy office scenario, the shape test_fault uses: enough injected
/// faults at 35% loss that every failure status shows up within a few
/// rounds.
ranging::ScenarioConfig faulty_office(std::uint64_t seed) {
  ranging::ScenarioConfig cfg;
  cfg.room = geom::Room::rectangular(12.0, 8.0, 10.0);
  cfg.initiator_position = {2.0, 4.0};
  cfg.seed = seed;
  const geom::Vec2 spots[] = {{5.0, 4.0}, {8.0, 5.5}, {9.5, 2.5}, {6.0, 6.5}};
  for (int i = 0; i < 4; ++i) cfg.responders.push_back({i, spots[i]});
  cfg.fault.enabled = true;
  cfg.fault.preamble_miss_prob = 0.35;
  cfg.fault.crc_error_prob = 0.35 / 4.0;
  cfg.fault.late_tx_abort_prob = 0.35 / 4.0;
  cfg.fault.dropout_prob = 0.35 / 8.0;
  cfg.resilience.max_retries = 2;
  return cfg;
}

runner::TrialResult run_faulty_mc(int threads, int trials) {
  runner::MonteCarlo::Config mc_cfg;
  mc_cfg.threads = threads;
  mc_cfg.base_seed = 1337;
  return runner::MonteCarlo(mc_cfg).run(
      trials,
      [](const runner::TrialContext& ctx, runner::TrialRecorder& rec) {
        ranging::ConcurrentRangingScenario scenario(faulty_office(ctx.seed));
        for (int round = 0; round < 2; ++round) scenario.run_round();
        rec.count("trials");
      });
}

// --- enablement gate --------------------------------------------------------

TEST_F(FlightRecorderTest, DisabledRecorderRecordsNothing) {
  ASSERT_FALSE(FlightRecorder::enabled());
  run_faulty_mc(1, 3);
  EXPECT_EQ(FlightRecorder::instance().recorded_events(), 0u);
  EXPECT_EQ(FlightRecorder::instance().dropped_events(), 0u);
  EXPECT_TRUE(FlightRecorder::instance().collect().empty());
}

// --- ring overflow ----------------------------------------------------------

TEST_F(FlightRecorderTest, RingOverflowKeepsNewestAndCountsDropped) {
  // Drives the shard API directly, so this also proves the classes stay
  // functional in UWB_OBS_DISABLED builds.
  FlightRecorder::instance().set_capacity(8);
  {
    FrSessionScope scope(/*session=*/42, /*round=*/0);
    FrShard& shard = FlightRecorder::instance().local_shard();
    FrEvent probe;
    probe.kind = FrKind::kStatus;
    probe.name = "overflow_probe";
    for (int i = 0; i < 20; ++i) {
      fr_context().t_ps = i;
      shard.record(probe);
    }
  }
  EXPECT_EQ(FlightRecorder::instance().recorded_events(), 20u);
  EXPECT_EQ(FlightRecorder::instance().dropped_events(), 12u);

  const std::vector<FrRecord> records = FlightRecorder::instance().collect();
  ASSERT_EQ(records.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    // Newest events survive: sim-times 12..19 of the 0..19 recorded.
    EXPECT_EQ(records[static_cast<std::size_t>(i)].t_ps, 12 + i);
    EXPECT_EQ(records[static_cast<std::size_t>(i)].session, 42u);
  }

  // The JSONL meta line reports the casualties, so consumers know the
  // recording is incomplete (and the byte-identity guarantee is off).
  const std::string jsonl = FlightRecorder::instance().to_jsonl();
  EXPECT_NE(jsonl.find("\"dropped_events\":12"), std::string::npos);
  EXPECT_NE(jsonl.find("\"events\":8"), std::string::npos);
}

// --- golden-seed byte identity ----------------------------------------------

TEST_F(FlightRecorderTest, GoldenSeedJsonlByteIdenticalAcrossThreadCounts) {
  if (!kEnabled) GTEST_SKIP() << "record sites compiled out (UWB_OBS_DISABLED)";
  FlightRecorder::set_enabled(true);

  run_faulty_mc(1, 8);
  const std::string serial = FlightRecorder::instance().to_jsonl();
  EXPECT_EQ(FlightRecorder::instance().dropped_events(), 0u);

  FlightRecorder::instance().reset();
  run_faulty_mc(4, 8);
  const std::string parallel = FlightRecorder::instance().to_jsonl();
  EXPECT_EQ(FlightRecorder::instance().dropped_events(), 0u);

  ASSERT_GT(serial.size(), 1000u);
  EXPECT_EQ(serial, parallel);
}

// --- chain invariants -------------------------------------------------------

TEST_F(FlightRecorderTest, EveryChainRootsAtTxWithMonotoneSimTime) {
  if (!kEnabled) GTEST_SKIP() << "record sites compiled out (UWB_OBS_DISABLED)";
  FlightRecorder::set_enabled(true);

  run_faulty_mc(1, 4);
  const std::vector<FrRecord> records = FlightRecorder::instance().collect();
  ASSERT_FALSE(records.empty());

  // collect() orders records by (session, seq) = record order per session,
  // so walking them groups each chain's events in causal order.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::int64_t> last_t;
  std::size_t chains = 0;
  for (const FrRecord& r : records) {
    if (r.chain == 0) continue;  // context-less session-level events
    const auto key = std::make_pair(r.session, r.chain);
    const auto it = last_t.find(key);
    if (it == last_t.end()) {
      EXPECT_EQ(r.kind, FrKind::kTx)
          << "chain 0x" << std::hex << r.chain << " starts with " << std::dec
          << to_string(r.kind) << "/" << r.name;
      ++chains;
      last_t.emplace(key, r.t_ps);
    } else {
      EXPECT_GE(r.t_ps, it->second)
          << "chain 0x" << std::hex << r.chain << " time went backwards";
      it->second = r.t_ps;
    }
  }
  EXPECT_GT(chains, 10u);
}

// --- post-mortem completeness -----------------------------------------------

bool name_is(const FrRecord& r, const char* name) {
  return r.name != nullptr && std::strcmp(r.name, name) == 0;
}

/// Mirrors tools/explain_session.py: the event vocabulary that can
/// terminate a frame copy's life short of a completed reception.
bool is_loss_event(const FrRecord& r) {
  return name_is(r, "below_threshold") || name_is(r, "culled") ||
         name_is(r, "rx_radio_off") || name_is(r, "rx_late_for_batch") ||
         name_is(r, "rx_abandoned") || name_is(r, "rx_decode_failed");
}

TEST_F(FlightRecorderTest, EveryNonOkStatusHasExplainingEvent) {
  if (!kEnabled) GTEST_SKIP() << "record sites compiled out (UWB_OBS_DISABLED)";
  FlightRecorder::set_enabled(true);

  constexpr int kInitiator = -1;
  ranging::ConcurrentRangingScenario scenario(faulty_office(4242));
  std::vector<std::pair<std::uint32_t, int>> failures;  // (round, responder)
  for (std::uint32_t round = 0; round < 12; ++round) {
    const ranging::RoundOutcome out = scenario.run_round();
    for (const auto& rep : out.responder_reports)
      if (rep.status != ranging::RangingStatus::kOk)
        failures.emplace_back(round, rep.id);
  }
  ASSERT_FALSE(failures.empty()) << "35% loss produced no failures";

  const std::vector<FrRecord> records = FlightRecorder::instance().collect();
  for (const auto& [round, responder] : failures) {
    bool explained = false;
    for (const FrRecord& r : records) {
      if (r.round != round) continue;
      // A fault struck the responder, its delayed TX aborted, or one of
      // its frame copies was lost — at either end of the exchange.
      if (r.node == responder &&
          (r.kind == FrKind::kFault || is_loss_event(r) ||
           name_is(r, "delayed_tx_abort"))) {
        explained = true;
        break;
      }
      // The sync payload died at the initiator, failing the whole batch.
      if (r.node == kInitiator &&
          ((name_is(r, "rx_batch_complete") && r.detail != nullptr &&
            std::strcmp(r.detail, "crc_error") == 0) ||
           name_is(r, "rx_decode_failed"))) {
        explained = true;
        break;
      }
    }
    EXPECT_TRUE(explained) << "round " << round << " responder " << responder
                           << " has no explaining event";
  }
}

}  // namespace
}  // namespace uwb::obs
