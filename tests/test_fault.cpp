// Fault-injection subsystem + resilient session tests: golden-seed
// determinism across thread counts, zero-fault byte-identity with the
// pre-subsystem behaviour, graceful degradation (all responders lost, every
// RangingStatus reachable), the deterministic retry/backoff schedule, and
// the Status-path config validation.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "ranging/session.hpp"
#include "runner/monte_carlo.hpp"

namespace uwb::ranging {
namespace {

ScenarioConfig office(std::uint64_t seed, int responders = 3) {
  ScenarioConfig cfg;
  cfg.room = geom::Room::rectangular(12.0, 8.0, 10.0);
  cfg.initiator_position = {2.0, 4.0};
  cfg.seed = seed;
  const geom::Vec2 spots[] = {{5.0, 4.0}, {8.0, 5.5}, {9.5, 2.5},
                              {6.0, 6.5}, {4.0, 2.0}, {10.5, 5.0}};
  for (int i = 0; i < responders; ++i) cfg.responders.push_back({i, spots[i]});
  return cfg;
}

fault::FaultPlan lossy_plan(double loss) {
  fault::FaultPlan plan;
  plan.enabled = true;
  plan.preamble_miss_prob = loss;
  plan.crc_error_prob = loss / 4.0;
  plan.late_tx_abort_prob = loss / 4.0;
  plan.dropout_prob = loss / 8.0;
  return plan;
}

/// Fingerprint of one round: every deterministic field that could reveal an
/// RNG-stream or event-order divergence.
std::string fingerprint(const RoundOutcome& out) {
  char buf[64];
  std::string fp;
  const auto add = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g;", v);
    fp += buf;
  };
  add(out.completed);
  add(out.payload_decoded);
  add(out.sync_responder_id);
  add(out.d_twr_m);
  add(out.attempts);
  add(out.degraded);
  add(out.crc_error);
  for (const auto& est : out.estimates) {
    add(est.responder_id);
    add(est.distance_m);
  }
  for (const auto& rep : out.responder_reports) {
    add(rep.id);
    add(static_cast<int>(rep.status));
  }
  return fp;
}

TEST(FaultDeterminismTest, GoldenSeedIdenticalAcrossThreadCounts) {
  // The same faulty Monte-Carlo run at 1 and 4 worker threads must produce
  // identical per-trial fingerprints and identical merged counters.
  const auto run_mc = [](int threads) {
    runner::MonteCarlo::Config mc_cfg;
    mc_cfg.threads = threads;
    mc_cfg.base_seed = 991;
    return runner::MonteCarlo(mc_cfg).run(
        24, [](const runner::TrialContext& ctx, runner::TrialRecorder& rec) {
          ScenarioConfig cfg = office(ctx.seed, 4);
          cfg.fault = lossy_plan(0.35);
          cfg.resilience.max_retries = 2;
          ConcurrentRangingScenario scenario(cfg);
          for (int round = 0; round < 3; ++round) {
            const RoundOutcome out = scenario.run_round();
            rec.sample("fp_hash",
                       static_cast<double>(
                           std::hash<std::string>{}(fingerprint(out))));
          }
          rec.count("faults", static_cast<std::int64_t>(
                                  scenario.fault_injector()->counters().total()));
          rec.count("retries", static_cast<std::int64_t>(
                                   scenario.stats().retry_attempts));
        });
  };
  const auto r1 = run_mc(1);
  const auto r4 = run_mc(4);
  ASSERT_EQ(r1.samples("fp_hash").size(), r4.samples("fp_hash").size());
  EXPECT_EQ(r1.samples("fp_hash"), r4.samples("fp_hash"));
  EXPECT_EQ(r1.counter("faults"), r4.counter("faults"));
  EXPECT_GT(r1.counter("faults"), 0);
  EXPECT_EQ(r1.counter("retries"), r4.counter("retries"));
}

TEST(FaultDeterminismTest, ZeroFaultPlanByteIdenticalToDefault) {
  // An enabled plan whose probabilities are all zero constructs no injector
  // and must reproduce the default configuration bit for bit, round by
  // round — the byte-identity half of the determinism contract.
  ScenarioConfig plain = office(1234, 3);
  ScenarioConfig zeroed = office(1234, 3);
  zeroed.fault.enabled = true;  // every probability left at 0.0
  ConcurrentRangingScenario a(plain);
  ConcurrentRangingScenario b(zeroed);
  EXPECT_EQ(b.fault_injector(), nullptr);
  for (int round = 0; round < 5; ++round) {
    const RoundOutcome oa = a.run_round();
    const RoundOutcome ob = b.run_round();
    EXPECT_EQ(fingerprint(oa), fingerprint(ob)) << "round " << round;
    ASSERT_EQ(oa.cir.taps.size(), ob.cir.taps.size());
    for (std::size_t i = 0; i < oa.cir.taps.size(); ++i)
      EXPECT_EQ(oa.cir.taps[i], ob.cir.taps[i]);
  }
}

TEST(FaultDeterminismTest, SameSeedSameFaultSequence) {
  const auto run_once = [] {
    ScenarioConfig cfg = office(77, 4);
    cfg.fault = lossy_plan(0.4);
    cfg.resilience.max_retries = 1;
    ConcurrentRangingScenario scenario(cfg);
    std::string fp;
    for (int round = 0; round < 4; ++round) fp += fingerprint(scenario.run_round());
    return fp + std::to_string(scenario.fault_injector()->counters().total());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FaultSessionTest, AllRespondersLostRoundIsEmptyButValid) {
  // Mute every responder: the round must come back failed-but-well-formed
  // (no abort, no estimates, every responder reported timed out).
  ScenarioConfig cfg = office(555, 3);
  cfg.fault.enabled = true;
  cfg.fault.dropout_prob = 1.0;
  cfg.fault.dropout_rounds_min = 10;
  cfg.fault.dropout_rounds_max = 10;
  cfg.resilience.max_retries = 1;
  ConcurrentRangingScenario scenario(cfg);
  const RoundOutcome out = scenario.run_round();
  EXPECT_FALSE(out.completed);
  EXPECT_FALSE(out.payload_decoded);
  EXPECT_TRUE(out.estimates.empty());
  EXPECT_EQ(out.attempts, 2);  // both attempts consumed, then gave up
  ASSERT_EQ(out.responder_reports.size(), 3u);
  for (const auto& rep : out.responder_reports)
    EXPECT_EQ(rep.status, RangingStatus::kTimedOut);
  EXPECT_EQ(scenario.stats().failed_rounds, 1u);
  EXPECT_EQ(scenario.stats().retry_attempts, 1u);
}

TEST(FaultSessionTest, PartialLossKeepsSurvivors) {
  // With a moderate loss level, degraded rounds must still deliver
  // estimates for the responders that got through, and the union of
  // reports always covers every configured responder.
  ScenarioConfig cfg = office(4242, 4);
  cfg.fault = lossy_plan(0.45);
  cfg.resilience.max_retries = 2;
  ConcurrentRangingScenario scenario(cfg);
  int degraded_with_estimates = 0;
  for (int round = 0; round < 30; ++round) {
    const RoundOutcome out = scenario.run_round();
    ASSERT_EQ(out.responder_reports.size(), 4u);
    if (out.degraded && !out.estimates.empty()) ++degraded_with_estimates;
  }
  EXPECT_GT(degraded_with_estimates, 0);
  EXPECT_GT(scenario.fault_injector()->counters().total(), 0u);
}

TEST(FaultSessionTest, RetryBackoffScheduleIsDeterministic) {
  // Force total loss so every attempt fails, then verify the simulated
  // clock advanced by exactly sum of backoff * factor^(k-1) plus the
  // attempts' round time — i.e. the backoff schedule is the documented
  // closed form, not incidental.
  ScenarioConfig cfg = office(31, 2);
  cfg.fault.enabled = true;
  cfg.fault.dropout_prob = 1.0;
  cfg.fault.dropout_rounds_min = 50;
  cfg.fault.dropout_rounds_max = 50;
  cfg.resilience.max_retries = 3;
  cfg.resilience.retry_backoff = Seconds(400e-6);
  cfg.resilience.backoff_factor = 2.0;

  // Reference: identical scenario with no retries = one attempt's duration.
  ScenarioConfig ref_cfg = cfg;
  ref_cfg.resilience.max_retries = 0;
  ConcurrentRangingScenario ref(ref_cfg);
  (void)ref.run_round();
  const double attempt_s = ref.simulator().now().seconds();

  ConcurrentRangingScenario scenario(cfg);
  const RoundOutcome out = scenario.run_round();
  EXPECT_EQ(out.attempts, 4);
  const double expected_s =
      4.0 * attempt_s + (400e-6) * (1.0 + 2.0 + 4.0);
  EXPECT_NEAR(scenario.simulator().now().seconds(), expected_s,
              1e-9);
}

TEST(FaultSessionTest, EveryRangingStatusReachable) {
  // Sweep fault mixes until all five statuses have been observed.
  std::map<RangingStatus, int> seen;
  const auto tally = [&seen](ConcurrentRangingScenario& scenario, int rounds) {
    for (int i = 0; i < rounds; ++i)
      for (const auto& rep : scenario.run_round().responder_reports)
        ++seen[rep.status];
  };

  {
    ScenarioConfig cfg = office(61, 3);  // healthy: kOk
    ConcurrentRangingScenario s(cfg);
    tally(s, 2);
  }
  {
    ScenarioConfig cfg = office(62, 3);  // preamble misses: kNoPreamble
    cfg.fault.enabled = true;
    cfg.fault.preamble_miss_prob = 0.8;
    ConcurrentRangingScenario s(cfg);
    tally(s, 8);
  }
  {
    ScenarioConfig cfg = office(63, 2);  // CRC faults: kCrcError
    cfg.fault.enabled = true;
    cfg.fault.crc_error_prob = 0.9;
    ConcurrentRangingScenario s(cfg);
    tally(s, 8);
  }
  {
    ScenarioConfig cfg = office(64, 2);  // late TX aborts: kLateTxAbort
    cfg.fault.enabled = true;
    cfg.fault.late_tx_abort_prob = 0.9;
    ConcurrentRangingScenario s(cfg);
    tally(s, 8);
  }
  {
    ScenarioConfig cfg = office(65, 2);  // mute windows: kTimedOut
    cfg.fault.enabled = true;
    cfg.fault.dropout_prob = 0.9;
    ConcurrentRangingScenario s(cfg);
    tally(s, 8);
  }
  for (const auto status :
       {RangingStatus::kOk, RangingStatus::kNoPreamble,
        RangingStatus::kCrcError, RangingStatus::kLateTxAbort,
        RangingStatus::kTimedOut})
    EXPECT_GT(seen[status], 0) << to_string(status);
}

TEST(FaultInjectorTest, SnrDependentMissRatesPreferWeakFirstPaths) {
  // The effective miss probability scales with (ref_amp / amplitude)^exp:
  // a first path well below the reference must be missed far more often
  // than one well above it.
  fault::FaultPlan plan;
  plan.enabled = true;
  plan.preamble_miss_prob = 0.2;
  plan.preamble_snr_exponent = 1.5;
  plan.preamble_snr_ref_amp = 0.05;
  fault::FaultInjector injector(plan, 42);
  int weak = 0, strong = 0;
  for (int i = 0; i < 2000; ++i) {
    if (injector.miss_preamble(0, /*first_path_amplitude=*/0.02)) ++weak;
    if (injector.miss_preamble(1, /*first_path_amplitude=*/0.5)) ++strong;
  }
  // Expected rates: ~0.79 vs ~0.006.
  EXPECT_GT(weak, 1200);
  EXPECT_LT(strong, 60);
  EXPECT_EQ(injector.counters().preamble_miss,
            static_cast<std::uint64_t>(weak + strong));
}

TEST(FaultSessionTest, ClockGlitchesPerturbButDoNotAbort) {
  // Drift steps and epoch jumps must leave the session functional: rounds
  // keep completing and distances stay plausible (CFO correction absorbs
  // drift; the wrap-aware arithmetic absorbs epoch jumps).
  ScenarioConfig cfg = office(67, 2);
  cfg.fault.enabled = true;
  cfg.fault.drift_step_prob = 0.5;
  cfg.fault.drift_step_sigma_ppm = 2.0;
  cfg.fault.epoch_jump_prob = 0.3;
  cfg.fault.epoch_jump_max_s = 1.0;
  ConcurrentRangingScenario scenario(cfg);
  int decoded = 0, plausible = 0;
  for (int i = 0; i < 25; ++i) {
    const RoundOutcome out = scenario.run_round();
    if (!out.payload_decoded) continue;
    ++decoded;
    const double truth = scenario.true_distance(out.sync_responder_id).value();
    if (std::abs(out.d_twr_m - truth) < 0.5) ++plausible;
  }
  const auto& fc = scenario.fault_injector()->counters();
  EXPECT_GT(fc.clock_drift_step + fc.clock_epoch_jump, 0u);
  EXPECT_GT(decoded, 15);
  EXPECT_EQ(plausible, decoded);
}

TEST(FaultSessionTest, ReplyJitterSpreadsResponseSpacing) {
  // SS-TWR to the sync responder is immune to reply jitter (the responder
  // embeds its actual TX timestamp), so the observable effect is on the
  // *relative timing* of the concurrent responses. With the delayed-TX
  // truncation disabled (its ~8 ns quantisation would mask nanosecond
  // jitter) the round-to-round spread of the two responses' arrival
  // spacing is sigma * sqrt(2) — and near zero without jitter.
  const auto spacing_stddev = [](double jitter_sigma_s) {
    ScenarioConfig cfg = office(68, 2);
    cfg.ranging.num_slots = 4;
    cfg.ranging.slot_spacing_s = 150e-9;
    cfg.delayed_tx_truncation = false;
    if (jitter_sigma_s > 0.0) {
      cfg.fault.enabled = true;
      cfg.fault.reply_jitter_sigma_s = jitter_sigma_s;
    }
    ConcurrentRangingScenario scenario(cfg);
    std::vector<double> spacings;
    for (int i = 0; i < 20; ++i) {
      const RoundOutcome out = scenario.run_round();
      if (out.truths.size() != 2) continue;
      spacings.push_back((out.truths[1].resp_arrival.seconds() -
                          out.truths[0].resp_arrival.seconds()));
    }
    EXPECT_GT(spacings.size(), 15u);
    double mean = 0.0;
    for (const double s : spacings) mean += s;
    mean /= static_cast<double>(spacings.size());
    double var = 0.0;
    for (const double s : spacings) var += (s - mean) * (s - mean);
    return std::sqrt(var / static_cast<double>(spacings.size()));
  };
  // The no-jitter floor is ~0.2 ns: the responders' noisy INIT RX
  // timestamps propagate into the reply schedule.
  const double base = spacing_stddev(0.0);
  const double jittered = spacing_stddev(2e-9);
  EXPECT_GT(jittered, 2e-9);          // ~sqrt(2) * 2 ns expected
  EXPECT_GT(jittered, 6.0 * base);
}

TEST(FaultConfigTest, PlanValidation) {
  fault::FaultPlan plan;
  plan.enabled = true;
  plan.preamble_miss_prob = 0.5;
  EXPECT_NO_THROW(plan.validate());
  EXPECT_TRUE(plan.active());

  plan.preamble_miss_prob = 1.5;
  EXPECT_THROW(plan.validate(), PreconditionError);
  plan.preamble_miss_prob = 0.5;
  plan.dropout_rounds_min = 3;
  plan.dropout_rounds_max = 1;
  EXPECT_THROW(plan.validate(), PreconditionError);
}

TEST(FaultConfigTest, ValidateConfigStatusPath) {
  // validate_config enforces unique identifiability (id < slots x shapes) —
  // stricter than assign_responder's documented aliasing fallback — so the
  // slot plan here covers the three responder ids.
  ScenarioConfig cfg = office(1, 3);
  cfg.ranging.num_slots = 4;
  cfg.ranging.slot_spacing_s = 150e-9;
  EXPECT_TRUE(ConcurrentRangingScenario::validate_config(cfg).ok());

  ScenarioConfig no_resp = cfg;
  no_resp.responders.clear();
  const Status s1 = ConcurrentRangingScenario::validate_config(no_resp);
  EXPECT_EQ(s1.code(), ErrorCode::kInvalidConfig);
  EXPECT_FALSE(s1.message().empty());

  ScenarioConfig dup = cfg;
  dup.responders.push_back(dup.responders.front());
  EXPECT_FALSE(ConcurrentRangingScenario::validate_config(dup).ok());

  ScenarioConfig too_many = cfg;
  too_many.responders = {{0, {5.0, 4.0}}, {7, {6.0, 4.0}}};  // id 7 > 2x3-1
  too_many.ranging.num_slots = 2;
  too_many.ranging.shape_registers = {0x93};
  EXPECT_FALSE(ConcurrentRangingScenario::validate_config(too_many).ok());

  ScenarioConfig bad_fault = cfg;
  bad_fault.fault.enabled = true;
  bad_fault.fault.crc_error_prob = 2.0;
  EXPECT_FALSE(ConcurrentRangingScenario::validate_config(bad_fault).ok());

  ScenarioConfig bad_resilience = cfg;
  bad_resilience.resilience.max_retries = -1;
  EXPECT_FALSE(
      ConcurrentRangingScenario::validate_config(bad_resilience).ok());

  // The factory returns the same diagnosis instead of constructing.
  auto created = ConcurrentRangingScenario::create(no_resp);
  EXPECT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), ErrorCode::kInvalidConfig);

  auto good = ConcurrentRangingScenario::create(cfg);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good.value()->run_round().completed);
}

}  // namespace
}  // namespace uwb::ranging
