// Integration tests: response position modulation, the combined RPM x
// pulse-shaping scheme (paper Sect. VII/VIII), and session-level behaviour
// under drift, truncation, and selection options.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "ranging/session.hpp"

namespace uwb::ranging {
namespace {

ScenarioConfig combined_scenario(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.room = geom::Room::rectangular(16.0, 10.0, 10.0);
  cfg.initiator_position = {1.0, 5.0};
  cfg.seed = seed;
  cfg.ranging.num_slots = 4;
  cfg.ranging.slot_spacing_s = 150e-9;
  cfg.ranging.shape_registers = {0x93, 0xC8, 0xE6};
  return cfg;
}

TEST(RpmSessionTest, TwoSlotsSeparateEqualDistances) {
  // Two responders at the SAME distance: without RPM their responses
  // overlap; with 2 slots they appear ~150 ns apart and both distances
  // decode cleanly.
  ScenarioConfig cfg = combined_scenario(1);
  cfg.ranging.num_slots = 2;
  cfg.ranging.shape_registers = {0x93};
  cfg.responders = {{0, {7.0, 5.0}}, {1, {7.0, 5.2}}};  // both ~6 m
  ConcurrentRangingScenario scenario(cfg);
  const RoundOutcome out = scenario.run_round();
  ASSERT_TRUE(out.payload_decoded);
  ASSERT_EQ(out.estimates.size(), 2u);
  EXPECT_EQ(out.estimates[0].slot, 0);
  EXPECT_EQ(out.estimates[1].slot, 1);
  // The raw peak separation carries the slot delay.
  EXPECT_NEAR(out.estimates[1].tau_rel_s, 150e-9, 20e-9);
  EXPECT_NEAR(out.estimates[0].distance_m, 6.0, 0.2);
  EXPECT_NEAR(out.estimates[1].distance_m, 6.0, 0.8);
}

TEST(RpmSessionTest, SlotDelayNotHalved) {
  // The slot delay enters the CIR once (RESP leg only); Eq. 4 must remove
  // it whole, otherwise every slot-1 responder would be ~22 m off
  // (c * 150 ns / 2).
  ScenarioConfig cfg = combined_scenario(2);
  cfg.ranging.num_slots = 2;
  cfg.ranging.shape_registers = {0x93};
  cfg.responders = {{0, {5.0, 5.0}}, {1, {9.0, 5.0}}};  // 4 m and 8 m
  ConcurrentRangingScenario scenario(cfg);
  const RoundOutcome out = scenario.run_round();
  ASSERT_TRUE(out.payload_decoded);
  ASSERT_EQ(out.estimates.size(), 2u);
  EXPECT_NEAR(out.estimates[1].distance_m, 8.0, 0.8);
}

TEST(RpmSessionTest, NineRespondersDecodeIdentities) {
  ScenarioConfig cfg = combined_scenario(3);
  cfg.responders = {
      {0, {4.0, 5.0}},  {1, {6.5, 3.0}},  {2, {9.0, 7.0}},
      {3, {11.0, 4.0}}, {4, {5.5, 7.5}},  {5, {8.0, 2.5}},
      {6, {12.5, 6.5}}, {7, {14.0, 5.0}}, {8, {7.0, 5.5}},
  };
  ConcurrentRangingScenario scenario(cfg);
  int total_correct = 0, rounds = 0;
  for (int t = 0; t < 15; ++t) {
    const RoundOutcome out = scenario.run_round();
    if (!out.payload_decoded) continue;
    ++rounds;
    std::set<int> seen;
    for (const auto& est : out.estimates) {
      if (est.responder_id < 0 || !seen.insert(est.responder_id).second)
        continue;
      const auto spec = std::find_if(
          cfg.responders.begin(), cfg.responders.end(),
          [&](const ResponderSpec& s) { return s.id == est.responder_id; });
      if (spec == cfg.responders.end()) continue;
      if (std::abs(est.distance_m - scenario.true_distance(spec->id).value()) <
          1.0)
        ++total_correct;
    }
  }
  ASSERT_GE(rounds, 12);
  // On average at least 7.5 of 9 identities ranged correctly per round.
  EXPECT_GE(total_correct, rounds * 15 / 2);
}

TEST(RpmSessionTest, SlotAwareSelectionImprovesCoverage) {
  ScenarioConfig base = combined_scenario(4);
  base.room = geom::Room::rectangular(16.0, 10.0, 8.0);
  base.responders = {
      {0, {4.0, 5.0}},  {1, {6.5, 3.0}},  {2, {9.0, 7.0}},
      {3, {11.0, 4.0}}, {4, {5.5, 7.5}},  {5, {8.0, 2.5}},
      {6, {12.5, 6.5}}, {7, {14.0, 5.0}}, {8, {7.0, 5.5}},
  };
  const auto coverage = [&](bool slot_aware) {
    ScenarioConfig cfg = base;
    if (slot_aware) {
      cfg.detect_max_responses = 16;
      cfg.slot_aware_selection = true;
    }
    ConcurrentRangingScenario scenario(cfg);
    int covered = 0, rounds = 0;
    for (int t = 0; t < 25; ++t) {
      const RoundOutcome out = scenario.run_round();
      if (!out.payload_decoded) continue;
      ++rounds;
      std::set<int> ids;
      for (const auto& est : out.estimates)
        if (est.responder_id >= 0 &&
            std::abs(est.distance_m -
                     scenario.true_distance(est.responder_id % 9).value()) < 5.0)
          ids.insert(est.responder_id);
      covered += static_cast<int>(ids.size());
    }
    return rounds ? static_cast<double>(covered) / rounds : 0.0;
  };
  EXPECT_GE(coverage(true) + 0.05, coverage(false));
}

TEST(RpmSessionTest, SyncResponderInNonZeroSlot) {
  // Only slots 1 and 2 are occupied: the sync (earliest) responder sits in
  // slot 1 and interpretation must offset all slots accordingly.
  ScenarioConfig cfg = combined_scenario(5);
  cfg.ranging.shape_registers = {0x93};
  cfg.responders = {{1, {5.0, 5.0}}, {2, {8.0, 5.0}}};  // 4 m and 7 m
  ConcurrentRangingScenario scenario(cfg);
  const RoundOutcome out = scenario.run_round();
  ASSERT_TRUE(out.payload_decoded);
  EXPECT_EQ(out.sync_responder_id, 1);
  ASSERT_EQ(out.estimates.size(), 2u);
  EXPECT_EQ(out.estimates[0].slot, 1);
  EXPECT_EQ(out.estimates[1].slot, 2);
  EXPECT_EQ(out.estimates[0].responder_id, 1);
  EXPECT_EQ(out.estimates[1].responder_id, 2);
  EXPECT_NEAR(out.estimates[1].distance_m, 7.0, 0.8);
}

TEST(RpmSessionTest, TruthBookkeepingMatchesArrivalOrder) {
  ScenarioConfig cfg = combined_scenario(6);
  cfg.ranging.shape_registers = {0x93};
  cfg.responders = {{0, {5.0, 5.0}}, {1, {12.0, 5.0}}, {2, {8.0, 5.0}}};
  ConcurrentRangingScenario scenario(cfg);
  const RoundOutcome out = scenario.run_round();
  ASSERT_EQ(out.truths.size(), 3u);
  // Truths sorted by arrival: slot order dominates distance differences.
  EXPECT_EQ(out.truths[0].id, 0);
  EXPECT_EQ(out.truths[1].id, 1);
  EXPECT_EQ(out.truths[2].id, 2);
  for (std::size_t i = 1; i < out.truths.size(); ++i)
    EXPECT_GT(out.truths[i].resp_arrival, out.truths[i - 1].resp_arrival);
  EXPECT_DOUBLE_EQ(out.truths[0].true_distance_m, 4.0);
}

TEST(RpmSessionTest, CfoCorrectionSwitchMatters) {
  // With a deliberately bad crystal, disabling the CFO correction visibly
  // degrades d_TWR.
  ScenarioConfig cfg = combined_scenario(7);
  cfg.ranging.shape_registers = {0x93};
  cfg.ranging.num_slots = 1;
  cfg.responders = {{0, {7.0, 5.0}}};
  cfg.clock_drift_sigma_ppm = 15.0;

  double err_on = 0.0, err_off = 0.0;
  {
    ConcurrentRangingScenario s(cfg);
    double acc = 0.0;
    int n = 0;
    for (int t = 0; t < 20; ++t) {
      const auto out = s.run_round();
      if (out.payload_decoded) {
        acc += std::abs(out.d_twr_m - 6.0);
        ++n;
      }
    }
    err_on = acc / n;
  }
  {
    ScenarioConfig raw = cfg;
    raw.cfo_correction = false;
    ConcurrentRangingScenario s(raw);
    double acc = 0.0;
    int n = 0;
    for (int t = 0; t < 20; ++t) {
      const auto out = s.run_round();
      if (out.payload_decoded) {
        acc += std::abs(out.d_twr_m - 6.0);
        ++n;
      }
    }
    err_off = acc / n;
  }
  EXPECT_LT(err_on, 0.08);
  EXPECT_GT(err_off, err_on);
}

TEST(RpmSessionTest, PulseShapeOnlyIdentities) {
  // One slot, three shapes: IDs decode purely from the pulse shape.
  ScenarioConfig cfg = combined_scenario(8);
  cfg.ranging.num_slots = 1;
  cfg.responders = {{0, {5.0, 5.0}}, {1, {8.0, 5.0}}, {2, {11.0, 5.0}}};
  ConcurrentRangingScenario scenario(cfg);
  int correct = 0, rounds = 0;
  for (int t = 0; t < 10; ++t) {
    const RoundOutcome out = scenario.run_round();
    if (!out.payload_decoded || out.estimates.size() != 3) continue;
    ++rounds;
    if (out.estimates[0].responder_id == 0 &&
        out.estimates[1].responder_id == 1 &&
        out.estimates[2].responder_id == 2)
      ++correct;
  }
  ASSERT_GE(rounds, 7);
  EXPECT_GE(correct, rounds - 2);
}

TEST(RpmSessionTest, DeterministicUnderSameSeed) {
  ScenarioConfig cfg = combined_scenario(9);
  cfg.responders = {{0, {5.0, 5.0}}, {5, {9.0, 4.0}}};
  ConcurrentRangingScenario a(cfg), b(cfg);
  const RoundOutcome ra = a.run_round();
  const RoundOutcome rb = b.run_round();
  ASSERT_EQ(ra.estimates.size(), rb.estimates.size());
  for (std::size_t i = 0; i < ra.estimates.size(); ++i)
    EXPECT_DOUBLE_EQ(ra.estimates[i].distance_m, rb.estimates[i].distance_m);
}

TEST(RpmSessionTest, InvalidResponderIdRejected) {
  ScenarioConfig cfg = combined_scenario(10);
  cfg.responders = {{-1, {5.0, 5.0}}};
  EXPECT_THROW(ConcurrentRangingScenario{cfg}, uwb::PreconditionError);
  cfg.responders = {{300, {5.0, 5.0}}};
  EXPECT_THROW(ConcurrentRangingScenario{cfg}, uwb::PreconditionError);
  cfg.responders = {};
  EXPECT_THROW(ConcurrentRangingScenario{cfg}, uwb::PreconditionError);
}

TEST(RpmSessionTest, DuplicateResponderIdRejected) {
  ScenarioConfig cfg = combined_scenario(11);
  cfg.responders = {{0, {5.0, 5.0}}, {0, {8.0, 5.0}}};
  EXPECT_THROW(ConcurrentRangingScenario{cfg}, uwb::PreconditionError);
}

TEST(RpmSessionTest, EnergyAccountingAcrossRound) {
  ScenarioConfig cfg = combined_scenario(12);
  cfg.ranging.shape_registers = {0x93};
  cfg.ranging.num_slots = 1;
  cfg.responders = {{0, {5.0, 5.0}}, {1, {9.0, 5.0}}};
  ConcurrentRangingScenario scenario(cfg);
  const RoundOutcome out = scenario.run_round();
  ASSERT_TRUE(out.payload_decoded);
  // Initiator: one TX (INIT), one RX window.
  EXPECT_EQ(scenario.initiator_node().energy().tx_count(), 1);
  EXPECT_EQ(scenario.initiator_node().energy().rx_count(), 1);
  // Each responder: one RX (INIT), one TX (RESP).
  EXPECT_EQ(scenario.responder_node(0).energy().tx_count(), 1);
  EXPECT_EQ(scenario.responder_node(1).energy().rx_count(), 1);
}

}  // namespace
}  // namespace uwb::ranging
