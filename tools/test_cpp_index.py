#!/usr/bin/env python3
"""Self-tests for tools/lint/cpp_index.py.

The indexer is approximate by design; these tests pin BOTH sides of the
contract on hostile C++ shapes.  Test names state the guarantee:
`..._resolved` means the call-graph edge must exist, `..._unresolved`
means the indexer must NOT invent the edge (documenting the gap is part
of the contract — flow rules reason over it, DESIGN.md Sect. 16).
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "lint"))

import cpp_index  # noqa: E402
import uwb_lint  # noqa: E402


class IndexTestBase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, relpath, content):
        path = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            f.write(content)
        return relpath

    def build(self, cache_path=None):
        rels = uwb_lint.discover_files(self.root, [])
        return cpp_index.build_index(self.root, rels, cache_path)

    def fn(self, index, qname_suffix):
        matches = [f for f in index.defs if f.qname.endswith(qname_suffix)]
        self.assertEqual(
            len(matches), 1,
            f"{qname_suffix}: {[f.qname for f in index.defs]}")
        return matches[0]

    def callee_qnames(self, index, fn):
        return {t.qname for t, _ in index.callees(fn)}


class SymbolTableTest(IndexTestBase):
    def test_qualified_names_from_nested_scopes(self):
        self.write("src/a/x.cpp", (
            "namespace uwb::sim {\n"
            "class Medium {\n"
            " public:\n"
            "  void deliver(int rx) { (void)rx; }\n"
            "};\n"
            "void helper() {}\n"
            "}  // namespace\n"))
        index, _ = self.build()
        names = {f.qname for f in index.defs}
        self.assertIn("uwb::sim::Medium::deliver", names)
        self.assertIn("uwb::sim::helper", names)
        deliver = self.fn(index, "Medium::deliver")
        self.assertEqual(deliver.parent_class, "uwb::sim::Medium")

    def test_out_of_line_method_gets_parent_class_cross_tu(self):
        self.write("src/a/m.hpp", (
            "namespace uwb::sim {\n"
            "class Medium {\n"
            " public:\n"
            "  void deliver(int rx);\n"
            "  std::unordered_map<int, double> traffic_;\n"
            "};\n"
            "}\n"))
        self.write("src/a/m.cpp", (
            "#include \"a/m.hpp\"\n"
            "namespace uwb::sim {\n"
            "void Medium::deliver(int rx) { (void)rx; }\n"
            "}\n"))
        index, _ = self.build()
        deliver = self.fn(index, "Medium::deliver")
        self.assertTrue(deliver.is_def)
        self.assertEqual(deliver.parent_class, "uwb::sim::Medium")
        # ... which makes the header's container members visible to the
        # method (float-ordering's cross-TU resolution path).
        self.assertEqual(
            index.class_member_kind(deliver.parent_class, "traffic_"),
            "unordered")

    def test_include_graph_and_defines_harvested(self):
        self.write("src/a/x.cpp", (
            "#include \"a/m.hpp\"\n"
            "#include <vector>\n"
            "#define MY_MACRO(x) ((x) + 1)\n"
            "int f() { return MY_MACRO(1); }\n"))
        index, _ = self.build()
        tu = index.by_path["src/a/x.cpp"]
        self.assertEqual(tu.includes, ["a/m.hpp", "vector"])
        self.assertIn("MY_MACRO", tu.defines)

    def test_constructor_initializer_list_is_not_the_function_name(self):
        # `Medium::Medium(...) : sim_(s), fanout_(buckets()) {` — the last
        # paren group is an initializer, not the declarator.
        self.write("src/a/c.cpp", (
            "namespace uwb {\n"
            "int buckets() { return 4; }\n"
            "struct Medium {\n"
            "  int sim_; int fanout_;\n"
            "  Medium(int s) : sim_(s), fanout_(buckets()) {}\n"
            "};\n"
            "}\n"))
        index, _ = self.build()
        ctor = self.fn(index, "Medium::Medium")
        self.assertEqual(ctor.leaf, "Medium")
        # The initializer-list call is an edge.
        self.assertIn("uwb::buckets", self.callee_qnames(index, ctor))


class CallGraphTest(IndexTestBase):
    def test_qualified_free_call_resolved(self):
        self.write("src/a/x.cpp", (
            "namespace uwb::dsp { double energy(double x) { return x; } }\n"
            "namespace uwb::sim {\n"
            "double use(double x) { return dsp::energy(x); }\n"
            "}\n"))
        index, _ = self.build()
        use = self.fn(index, "sim::use")
        self.assertEqual(self.callee_qnames(index, use),
                         {"uwb::dsp::energy"})

    def test_overload_selected_by_arity(self):
        self.write("src/a/x.cpp", (
            "namespace uwb {\n"
            "int pick(int a) { return a; }\n"
            "int pick(int a, int b) { return a + b; }\n"
            "int use() { return pick(1, 2); }\n"
            "}\n"))
        index, _ = self.build()
        use = self.fn(index, "uwb::use")
        targets = [t for t, _ in index.callees(use)]
        self.assertEqual(len(targets), 1)
        self.assertEqual(targets[0].params_max, 2)

    def test_std_qualified_call_unresolved(self):
        # std::sort never resolves to a project function named sort.
        self.write("src/a/x.cpp", (
            "namespace uwb { void sort(int* p) { (void)p; }\n"
            "void use(int* p) { std::sort(p, p + 4); } }\n"))
        index, _ = self.build()
        use = self.fn(index, "uwb::use")
        self.assertEqual(self.callee_qnames(index, use), set())

    def test_common_std_member_names_unresolved(self):
        # v.size()/v.push_back() must not resolve to same-named project
        # methods — that would fabricate cross-subsystem dependencies.
        self.write("src/a/x.cpp", (
            "namespace uwb {\n"
            "struct Shard { int size() { return 0; } };\n"
            "int use(std::vector<int>& v) { return (int)v.size(); }\n"
            "}\n"))
        index, _ = self.build()
        use = self.fn(index, "uwb::use")
        self.assertEqual(self.callee_qnames(index, use), set())

    def test_local_object_declaration_is_a_constructor_edge_resolved(self):
        # `static Dispatch d;` runs Dispatch::Dispatch — the edge that
        # carries the real simd getenv finding.
        self.write("src/a/x.cpp", (
            "namespace uwb {\n"
            "struct Dispatch { Dispatch() { init(); } };\n"
            "void init() {}\n"
            "Dispatch& dispatch() { static Dispatch d; return d; }\n"
            "}\n"))
        index, _ = self.build()
        disp = self.fn(index, "uwb::dispatch")
        self.assertIn("uwb::Dispatch::Dispatch",
                      self.callee_qnames(index, disp))

    def test_template_dependent_call_resolved_when_method_name_defined(self):
        # t.step() in a template: resolved (over-approximately) to every
        # class method named step that exists in the tree.
        self.write("src/a/x.cpp", (
            "namespace uwb {\n"
            "struct Walker { void step() {} };\n"
            "template <typename T>\n"
            "void run(T& t) { t.step(); }\n"
            "}\n"))
        index, _ = self.build()
        run = self.fn(index, "uwb::run")
        self.assertIn("uwb::Walker::step", self.callee_qnames(index, run))

    def test_template_dependent_call_unresolved_when_name_undefined(self):
        self.write("src/a/x.cpp", (
            "namespace uwb {\n"
            "template <typename T>\n"
            "void run(T& t) { t.frobnicate(); }\n"
            "}\n"))
        index, _ = self.build()
        run = self.fn(index, "uwb::run")
        self.assertEqual(self.callee_qnames(index, run), set())

    def test_infix_operator_overload_use_unresolved(self):
        # `a + b` creates no call-shaped token; operator+ stays invisible
        # to the call graph (documented completeness gap).
        self.write("src/a/x.cpp", (
            "namespace uwb {\n"
            "struct Vec { double x; };\n"
            "Vec operator+(Vec a, Vec b) { return {a.x + b.x}; }\n"
            "Vec use(Vec a, Vec b) { return a + b; }\n"
            "}\n"))
        index, _ = self.build()
        use = self.fn(index, "uwb::use")
        self.assertEqual(self.callee_qnames(index, use), set())

    def test_lambda_body_call_attributed_to_enclosing_function_resolved(self):
        self.write("src/a/x.cpp", (
            "namespace uwb {\n"
            "void helper() {}\n"
            "void caller() {\n"
            "  std::function<void()> cb = [] { helper(); };\n"
            "  cb();\n"
            "}\n"
            "}\n"))
        index, _ = self.build()
        caller = self.fn(index, "uwb::caller")
        self.assertIn("uwb::helper", self.callee_qnames(index, caller))

    def test_call_through_std_function_value_unresolved(self):
        # cb() invokes whatever was captured; the indexer must not guess.
        self.write("src/a/x.cpp", (
            "namespace uwb {\n"
            "void mystery() {}\n"
            "void caller(std::function<void()>& cb) { cb(); }\n"
            "}\n"))
        index, _ = self.build()
        caller = self.fn(index, "uwb::caller")
        self.assertEqual(self.callee_qnames(index, caller), set())

    def test_macro_expanding_to_call_unresolved(self):
        # UWB_FR_EVENT-style macros expand to calls the scanner never sees
        # expanded; no edge is created through the macro name (this is why
        # obs record macros cannot poison sim-layer reachability).
        self.write("src/a/x.cpp", (
            "#define LOG_IT() log_impl()\n"
            "namespace uwb {\n"
            "void log_impl() {}\n"
            "void caller() { LOG_IT(); }\n"
            "}\n"))
        index, _ = self.build()
        caller = self.fn(index, "uwb::caller")
        self.assertEqual(self.callee_qnames(index, caller), set())


class BodyAnalysisTest(IndexTestBase):
    def test_hot_path_annotation_on_comment_block_above(self):
        self.write("src/a/x.cpp", (
            "namespace uwb {\n"
            "// uwb-hot-path: inner loop.\n"
            "// More prose.\n"
            "void hot() {}\n"
            "void cold() {}\n"
            "}\n"))
        index, _ = self.build()
        self.assertTrue(self.fn(index, "uwb::hot").hot_path)
        self.assertFalse(self.fn(index, "uwb::cold").hot_path)

    def test_banned_io_and_derive_seed_flags(self):
        self.write("src/a/x.cpp", (
            "namespace uwb {\n"
            "void io() { std::ofstream f(\"x\"); (void)f; }\n"
            "uint64_t seeded(uint64_t b) { return derive_seed(b, 1); }\n"
            "}\n"))
        index, _ = self.build()
        io = self.fn(index, "uwb::io")
        self.assertEqual([a for _, a in io.banned_io], ["std::fstream"])
        self.assertTrue(self.fn(index, "uwb::seeded").derive_seed)

    def test_push_back_with_reserve_recorded_on_both_sides(self):
        self.write("src/a/x.cpp", (
            "namespace uwb {\n"
            "void fill(std::vector<int>& v, std::vector<int>& w) {\n"
            "  v.reserve(8);\n"
            "  v.push_back(1);\n"
            "  w.push_back(2);\n"
            "}\n"
            "}\n"))
        index, _ = self.build()
        fill = self.fn(index, "uwb::fill")
        self.assertEqual(fill.reserves, ["v"])
        self.assertEqual({a[2] for a in fill.allocs if a[1] == "push_back"},
                         {"v", "w"})

    def test_raw_string_does_not_desynchronize_lines(self):
        # The multi-line raw string spans lines 2-4; the fopen on line 6
        # must still be reported on line 6.
        self.write("src/a/x.cpp", (
            "namespace uwb {\n"
            "const char* kDoc = R\"(line one\n"
            "std::ofstream not_code(\n"
            ")\";\n"
            "void io() {\n"
            "  std::fopen(\"x\", \"r\");\n"
            "}\n"
            "}\n"))
        index, _ = self.build()
        io = self.fn(index, "uwb::io")
        self.assertEqual(io.banned_io, [[6, "fopen"]])


class CacheTest(IndexTestBase):
    def test_cache_hit_and_content_keyed_invalidation(self):
        self.write("src/a/x.cpp", "namespace uwb { void f() {} }\n")
        self.write("src/a/y.cpp", "namespace uwb { void g() { f(); } }\n")
        cache = os.path.join(self.root, "cache.json")
        _, stats = self.build(cache_path=cache)
        self.assertEqual(stats, {"parsed": 2, "cached": 0})
        _, stats = self.build(cache_path=cache)
        self.assertEqual(stats, {"parsed": 0, "cached": 2})
        self.write("src/a/x.cpp", "namespace uwb { void f2() {} }\n")
        index, stats = self.build(cache_path=cache)
        self.assertEqual(stats, {"parsed": 1, "cached": 1})
        self.assertIn("uwb::f2", {f.qname for f in index.defs})

    def test_cached_suppressions_survive_reload(self):
        # --changed-only filters flow findings in unchanged files through
        # the cached TU, so suppression maps must round-trip the cache.
        self.write("src/a/x.cpp", (
            "namespace uwb {\n"
            "// uwb-lint: allow(sim-host-io)\n"
            "void io() { std::fopen(\"x\", \"r\"); }\n"
            "}\n"))
        cache = os.path.join(self.root, "cache.json")
        self.build(cache_path=cache)
        index, stats = self.build(cache_path=cache)
        self.assertEqual(stats["cached"], 1)
        self.assertIn("sim-host-io",
                      index.suppressed_at("src/a/x.cpp", 3))


if __name__ == "__main__":
    unittest.main()
