#!/usr/bin/env python3
"""uwb_lint: project-specific static checks for the concurrent-ranging repo.

The rules encode determinism and unit-safety invariants that generic tools
cannot know about:

  no-raw-random        All randomness must flow from the seeded uwb::Rng /
                       derive_seed plumbing.  std::random_device, rand(),
                       srand() and time()-seeded generators silently break
                       the bit-identical replay contract.
  no-wall-clock-in-sim Simulation code must read SimTime, never the host
                       clock.  std::chrono::{system,steady,high_resolution}
                       _clock in the simulation layers makes results depend
                       on the machine running them.
  unordered-iteration  Range-for over std::unordered_{map,set} produces
                       platform-dependent ordering; result-producing code
                       must iterate deterministic containers (or sort first).
  nodiscard-result     A function returning uwb::Status or uwb::Result<T>
                       communicates failure through its return value;
                       declarations must carry [[nodiscard]] so dropping the
                       value is a compile error at every call site.
  magic-tick-constant  The DW1000 tick (15.65e-12 s) and CIR tap spacing
                       (1.0016e-9 s) live in src/common/constants.hpp; raw
                       copies of those literals drift out of sync.
  raw-intrinsics       SIMD intrinsics (immintrin.h, _mm*/_mm256_*,
                       vld1q_*) are confined to src/simd/ where the
                       dispatch layer guards ISA availability and the
                       equivalence contract is tested; a stray intrinsic
                       elsewhere silently breaks the scalar/sse2/avx2
                       forced-dispatch CI legs.
  obs-event-literal    Flight-recorder and metrics record sites must name
                       their event with a string literal and their kind
                       with an FrKind enum constant; computed names would
                       make the recording schema ungreppable and break the
                       explain pipeline's vocabulary.

Implementation: when libclang is importable the checker could parse real
ASTs, but the baked toolchain ships without it, so the real path is a
structured line scanner: comments and string literals are stripped first
(so prose mentioning rand() or 15.65e-12 never fires), then per-rule
regexes run over what remains.

Suppression: append `// uwb-lint: allow(<rule>)` to the offending line, or
place it alone on the line directly above.

Exit status: 0 when no findings, 1 when any finding, 2 on usage errors.
Findings print as `file:line: [rule] message`.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

# --------------------------------------------------------------------------
# Source model: physical lines with comments/strings removed, plus the
# suppressions harvested from the comments before stripping.


@dataclass
class SourceFile:
    path: str            # path relative to the repo root, '/'-separated
    raw_lines: list      # original text, 0-indexed
    code_lines: list     # comment- and string-stripped text, 0-indexed
    suppressed: dict     # line number (1-based) -> set of rule names


_ALLOW_RE = re.compile(r"//\s*uwb-lint:\s*allow\(([a-z\-,\s]+)\)")


def _collect_suppressions(lines):
    """Map 1-based line numbers to the rules allowed on that line.

    A marker suppresses its own line; a marker on an otherwise-empty line
    also suppresses the line below it.
    """
    suppressed = {}
    for i, line in enumerate(lines, start=1):
        m = _ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        suppressed.setdefault(i, set()).update(rules)
        if line[: m.start()].strip() == "":
            suppressed.setdefault(i + 1, set()).update(rules)
    return suppressed


def _strip_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving newlines
    and column positions (replaced spans become spaces)."""
    out = list(text)
    i, n = 0, len(text)

    def blank(a, b):
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            blank(i, j)
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            blank(i, j)
            i = j
        elif c == '"':
            # Raw string literal with any encoding prefix: R"d(...)d",
            # u8R/uR/UR/LR likewise.  The prefix must not be the tail of a
            # longer identifier (FOOBAR"..." is not a raw string).
            rm = re.search(r"(u8R|uR|UR|LR|R)$", text[max(0, i - 3):i])
            if rm:
                pstart = i - len(rm.group(1))
                before = text[pstart - 1] if pstart > 0 else ""
                if not (before.isalnum() or before == "_"):
                    m = re.match(r'"([^()\\\s]*)\(', text[i:])
                    if m:
                        close = ")" + m.group(1) + '"'
                        j = text.find(close, i + m.end())
                        j = n if j == -1 else j + len(close)
                        blank(i, j)
                        i = j
                        continue
            # Ordinary string: ends at the closing quote or, failing that,
            # at the newline — a literal cannot span a raw newline, and
            # running past it would desynchronize every later line.
            j = i + 1
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    j += 2
                elif text[j] == "\n":
                    break
                else:
                    j += 1
            if j < n and text[j] == "\n":
                blank(i, j)
                i = j
                continue
            blank(i, min(j + 1, n))
            i = j + 1
        elif c == "'":
            # Only treat as a char literal when it can't be a digit separator
            # (1'000'000) — separators sit between alphanumerics.
            prev = text[i - 1] if i > 0 else ""
            if prev.isalnum() and i + 1 < n and text[i + 1].isalnum():
                i += 1
                continue
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 2
                elif text[j] == "\n":
                    break
                else:
                    j += 1
            if j < n and text[j] == "\n":
                blank(i, j)
                i = j
                continue
            blank(i, min(j + 1, n))
            i = j + 1
        else:
            i += 1
    return "".join(out)


def load_source(root, relpath):
    with open(os.path.join(root, relpath), encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.split("\n")
    code_lines = _strip_comments_and_strings(text).split("\n")
    return SourceFile(
        path=relpath.replace(os.sep, "/"),
        raw_lines=raw_lines,
        code_lines=code_lines,
        suppressed=_collect_suppressions(raw_lines),
    )


# --------------------------------------------------------------------------
# Findings and rule registry.


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


RULES = {}


def rule(name):
    def register(fn):
        RULES[name] = fn
        return fn
    return register


def _in_dirs(path, prefixes):
    return any(path.startswith(p) for p in prefixes)


# --------------------------------------------------------------------------
# no-raw-random


_RAW_RANDOM_PATTERNS = [
    (re.compile(r"std\s*::\s*random_device"), "std::random_device is nondeterministic"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand() bypass the seeded Rng"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "time()-derived seeds are nondeterministic"),
]

# The seed plumbing itself and the Rng wrapper are the one place entropy
# may enter; everything else derives from them.
_RAW_RANDOM_ALLOWED = ("src/runner/", "src/common/random.")

# Fault/attack injection carries a stricter contract on top: every stream
# must be owned by the injector (derive_seed from its stream base), keyed
# by stable identifiers (node id, frame chain), and never forked from or
# shared with a simulation RNG. Forking couples the injected sequence to
# the parent's consumption order; a literal or sim-owned seed silently
# breaks the zero-probability-plans-are-byte-identical contract.
_FAULT_SCOPE = ("src/fault/",)
_FAULT_FORK_RE = re.compile(r"\.\s*fork\s*\(")
_FAULT_RNG_CTOR_RE = re.compile(
    r"(?<![\w:])Rng\s*(?:\w+\s*)?\(\s*(?!derive_seed\b)")


@rule("no-raw-random")
def check_no_raw_random(src):
    """All randomness must come from the seeded uwb::Rng plumbing."""
    if _in_dirs(src.path, _RAW_RANDOM_ALLOWED):
        return []
    findings = []
    in_fault_scope = _in_dirs(src.path, _FAULT_SCOPE)
    for i, line in enumerate(src.code_lines, start=1):
        for pat, why in _RAW_RANDOM_PATTERNS:
            if pat.search(line):
                findings.append(Finding(
                    src.path, i, "no-raw-random",
                    f"{why}; route randomness through uwb::Rng / derive_seed"))
        if not in_fault_scope:
            continue
        if _FAULT_FORK_RE.search(line):
            findings.append(Finding(
                src.path, i, "no-raw-random",
                "fork() in fault/attack code couples injected draws to the "
                "parent RNG's consumption order; derive an injector-owned "
                "stream with derive_seed(stream_base, key) instead"))
        if _FAULT_RNG_CTOR_RE.search(line):
            findings.append(Finding(
                src.path, i, "no-raw-random",
                "fault/attack Rng must be constructed from an "
                "injector-owned derive_seed(...) stream, not a literal or "
                "externally-owned seed"))
    return findings


# --------------------------------------------------------------------------
# no-wall-clock-in-sim


_WALL_CLOCK_RE = re.compile(
    r"std\s*::\s*chrono\s*::\s*(system_clock|steady_clock|high_resolution_clock)")

# Simulation layers where host time must never leak in. The obs layer
# (latency spans) and the runner (wall-clock progress) legitimately read
# host clocks and sit outside these prefixes.
_SIM_SCOPE = ("src/sim/", "src/channel/", "src/dw1000/", "src/ranging/", "src/fault/")


@rule("no-wall-clock-in-sim")
def check_no_wall_clock(src):
    """Simulation code reads SimTime, never the host clock."""
    if not _in_dirs(src.path, _SIM_SCOPE):
        return []
    findings = []
    for i, line in enumerate(src.code_lines, start=1):
        m = _WALL_CLOCK_RE.search(line)
        if m:
            findings.append(Finding(
                src.path, i, "no-wall-clock-in-sim",
                f"std::chrono::{m.group(1)} in simulation code; "
                "use SimTime from the event loop"))
    return findings


# --------------------------------------------------------------------------
# unordered-iteration


_UNORDERED_DECL_RE = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s+(\w+)\s*[;{=]")
_RANGE_FOR_RE = re.compile(r"for\s*\(\s*[^;:()]*:\s*([\w.\->]+)\s*\)")


@rule("unordered-iteration")
def check_unordered_iteration(src):
    """Range-for over unordered containers yields platform-dependent order."""
    declared = set()
    for line in src.code_lines:
        for m in _UNORDERED_DECL_RE.finditer(line):
            declared.add(m.group(1))
    if not declared:
        return []
    findings = []
    for i, line in enumerate(src.code_lines, start=1):
        m = _RANGE_FOR_RE.search(line)
        if not m:
            continue
        target = m.group(1)
        leaf = re.split(r"\.|->", target)[-1]
        if leaf in declared:
            findings.append(Finding(
                src.path, i, "unordered-iteration",
                f"range-for over unordered container '{target}' has "
                "platform-dependent order; iterate a sorted copy or a "
                "deterministic container"))
    return findings


# --------------------------------------------------------------------------
# nodiscard-result


_STATUS_DECL_RE = re.compile(
    r"^\s*(?:virtual\s+|static\s+|friend\s+|constexpr\s+|inline\s+)*"
    r"(?:uwb\s*::\s*)?(Status|Result\s*<)(?=[\w\s<>:,*&]*\s[A-Za-z_]\w*\s*\()")


def _returns_status(line):
    """True when the stripped line begins a declaration returning
    Status/Result<T> (not a constructor, not a variable)."""
    m = _STATUS_DECL_RE.match(line)
    if not m:
        return False
    rest = line[m.end(1):]
    if m.group(1).startswith("Result"):
        # Skip to past the closing '>' of the template argument.
        depth, j = 1, 0
        while j < len(rest) and depth > 0:
            if rest[j] == "<":
                depth += 1
            elif rest[j] == ">":
                depth -= 1
            j += 1
        rest = rest[j:]
    # A function declaration follows: identifier then '('. Qualified names
    # (out-of-line definitions) are excluded — the attribute belongs on the
    # in-class/in-header declaration.
    m2 = re.match(r"\s*([A-Za-z_]\w*)\s*\(", rest)
    return m2 is not None and not rest.lstrip().startswith("operator")


@rule("nodiscard-result")
def check_nodiscard_result(src):
    """Header declarations returning Status/Result<T> carry [[nodiscard]]."""
    if not src.path.endswith((".hpp", ".h")):
        return []
    if src.path.endswith("common/result.hpp"):
        # The class definitions themselves (constructors, internals).
        return []
    findings = []
    for i, line in enumerate(src.code_lines, start=1):
        if not _returns_status(line):
            continue
        prev = src.code_lines[i - 2] if i >= 2 else ""
        if "[[nodiscard]]" in line or "[[nodiscard]]" in prev:
            continue
        findings.append(Finding(
            src.path, i, "nodiscard-result",
            "function returning Status/Result must be [[nodiscard]] so "
            "errors cannot be silently dropped"))
    return findings


# --------------------------------------------------------------------------
# magic-tick-constant


_MAGIC_RE = re.compile(r"(?<![\w.])(15\.65e-0?12|1\.0016e-0?9)(?![\d])")

# The single source of truth for these values, plus the unit types built
# directly on top of them.
_MAGIC_ALLOWED = ("src/common/constants.hpp", "src/common/units.hpp")


@rule("magic-tick-constant")
def check_magic_tick_constant(src):
    """Tick/tap-spacing literals belong in common/constants.hpp."""
    if src.path in _MAGIC_ALLOWED:
        return []
    findings = []
    for i, line in enumerate(src.code_lines, start=1):
        m = _MAGIC_RE.search(line)
        if m:
            name = "k::dw_tick_s" if m.group(1).startswith("15") else "k::cir_ts_s"
            findings.append(Finding(
                src.path, i, "magic-tick-constant",
                f"raw literal {m.group(1)} duplicates {name} "
                "(common/constants.hpp)"))
    return findings


# --------------------------------------------------------------------------
# raw-intrinsics


_INTRINSIC_HEADER_RE = re.compile(
    r"#\s*include\s*[<\"]"
    r"(immintrin|emmintrin|xmmintrin|pmmintrin|tmmintrin|smmintrin|"
    r"nmmintrin|wmmintrin|avxintrin|avx2intrin|x86intrin|arm_neon)\.h[>\"]")
_INTRINSIC_IDENT_RE = re.compile(
    r"(?<![\w:])(_mm_\w+|_mm256_\w+|_mm512_\w+|v(?:ld|st)[1-4]q?_\w+)")

# The vectorization layer: ISA-guarded kernel TUs plus the dispatch core.
_INTRINSICS_ALLOWED = ("src/simd/",)


@rule("raw-intrinsics")
def check_raw_intrinsics(src):
    """SIMD intrinsics and their headers are confined to src/simd/."""
    if _in_dirs(src.path, _INTRINSICS_ALLOWED):
        return []
    findings = []
    for i, line in enumerate(src.code_lines, start=1):
        # Quoted includes are blanked by the string stripper, so match the
        # header name on the raw line — but only when the stripped line still
        # carries the #include (prose in comments must not fire).
        m = _INTRINSIC_HEADER_RE.search(src.raw_lines[i - 1])
        if m and re.match(r"\s*#\s*include", line):
            findings.append(Finding(
                src.path, i, "raw-intrinsics",
                f"intrinsics header <{m.group(1)}.h> outside src/simd/; "
                "add a kernel to src/simd/ and call it through the "
                "dispatch layer"))
            continue
        m = _INTRINSIC_IDENT_RE.search(line)
        if m:
            findings.append(Finding(
                src.path, i, "raw-intrinsics",
                f"raw intrinsic '{m.group(1)}' outside src/simd/; "
                "add a kernel to src/simd/ and call it through the "
                "dispatch layer"))
    return findings


# --------------------------------------------------------------------------
# obs-event-literal


_OBS_RECORD_MACRO_RE = re.compile(
    r"(?<!\w)(UWB_FR_EVENT|UWB_OBS_SPAN|UWB_OBS_COUNT|UWB_OBS_GAUGE_SET|"
    r"UWB_OBS_HISTOGRAM)\s*\(")

# The macro definitions (and the recorder's own tests of them) live here;
# inside them the arguments are forwarded parameters, not call sites.
_OBS_LITERAL_ALLOWED = ("src/obs/",)


def _collect_call(src, line_no, col):
    """Return (code_text, raw_text) of a balanced-paren argument list
    starting just past the opening '(' at (line_no 1-based, col 0-based).

    Paren depth is tracked on code_lines, where strings are blanked, so a
    ')' inside a literal never closes the call; raw_lines supply the
    parallel text (same columns) so literal checks can see the quotes.
    """
    depth = 1
    code_parts, raw_parts = [], []
    li, ci = line_no - 1, col
    while li < len(src.code_lines):
        cl, rl = src.code_lines[li], src.raw_lines[li]
        while ci < len(cl):
            ch = cl[ci]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return "".join(code_parts), "".join(raw_parts)
            code_parts.append(ch)
            raw_parts.append(rl[ci] if ci < len(rl) else ch)
            ci += 1
        code_parts.append("\n")
        raw_parts.append("\n")
        li, ci = li + 1, 0
    return "".join(code_parts), "".join(raw_parts)


_FR_KIND_ENUM_RE = re.compile(
    r"\.\s*kind\s*=\s*(?:::\s*)?(?:uwb\s*::\s*)?(?:obs\s*::\s*)?FrKind\s*::\s*k\w+")
_FR_NAME_LITERAL_RE = re.compile(r"\.\s*name\s*=\s*\"")


@rule("obs-event-literal")
def check_obs_event_literal(src):
    """Event names/kinds at record sites are literals/enum constants, so
    the event vocabulary is greppable and tools can rely on it."""
    if _in_dirs(src.path, _OBS_LITERAL_ALLOWED):
        return []
    findings = []
    for i, line in enumerate(src.code_lines, start=1):
        for m in _OBS_RECORD_MACRO_RE.finditer(line):
            macro = m.group(1)
            code_text, raw_text = _collect_call(src, i, m.end())
            if macro == "UWB_FR_EVENT":
                if not _FR_KIND_ENUM_RE.search(code_text):
                    findings.append(Finding(
                        src.path, i, "obs-event-literal",
                        "UWB_FR_EVENT must set .kind to an FrKind::k* "
                        "enum constant"))
                if not _FR_NAME_LITERAL_RE.search(raw_text):
                    findings.append(Finding(
                        src.path, i, "obs-event-literal",
                        "UWB_FR_EVENT must set .name to a string literal "
                        "(the event vocabulary is part of the recording "
                        "schema)"))
            else:
                if not raw_text.lstrip().startswith('"'):
                    findings.append(Finding(
                        src.path, i, "obs-event-literal",
                        f"{macro} name must be a string literal, not an "
                        "expression (metric names are a fixed vocabulary)"))
    return findings


# --------------------------------------------------------------------------
# Driver.


_DEFAULT_DIRS = ("src", "tests", "bench", "examples", "tools")
_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc")


def discover_files(root, paths):
    if paths:
        rels = []
        for p in paths:
            ap = os.path.abspath(p)
            rels.append(os.path.relpath(ap, root))
        return sorted(rels)
    rels = []
    for d in _DEFAULT_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = sorted(dn for dn in dirnames if dn != "fixtures")
            for fn in sorted(filenames):
                if fn.endswith(_EXTENSIONS):
                    rels.append(os.path.relpath(os.path.join(dirpath, fn), root))
    return sorted(rels)


def lint_file(root, relpath, rules):
    src = load_source(root, relpath)
    findings = []
    for name in rules:
        for f in RULES[name](src):
            if f.rule in src.suppressed.get(f.line, set()):
                continue
            findings.append(f)
    return findings


def _changed_files(root, base):
    """Repo-relative paths changed vs `base` (git diff + untracked)."""
    import subprocess
    out = []
    for cmd in (["git", "diff", "--name-only", base],
                ["git", "ls-files", "--others", "--exclude-standard"]):
        try:
            res = subprocess.run(cmd, cwd=root, capture_output=True,
                                 text=True, check=True)
        except (subprocess.CalledProcessError, OSError) as e:
            print(f"uwb_lint: --changed-only: {' '.join(cmd)} failed: {e}",
                  file=sys.stderr)
            return None
        out.extend(line.strip() for line in res.stdout.splitlines()
                   if line.strip())
    return sorted(set(out))


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="uwb_lint", description="Determinism and unit-safety checks.")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: src/ tests/ bench/ "
                             "examples/ tools/ under --root)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels above "
                             "this script)")
    parser.add_argument("--rule", action="append", dest="rules", metavar="NAME",
                        help="run only this rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and exit")
    parser.add_argument("--no-flow", action="store_true",
                        help="skip the call-graph-aware flow rules "
                             "(cpp_index + flow_rules)")
    parser.add_argument("--sarif", metavar="FILE",
                        help="also write findings as SARIF 2.1.0 to FILE")
    parser.add_argument("--index-cache", metavar="FILE", default=None,
                        help="index cache path (default: "
                             "<root>/.uwb-lint-cache/index.json; "
                             "'none' disables caching)")
    parser.add_argument("--changed-only", metavar="BASE", nargs="?",
                        const="origin/main",
                        help="report findings only in files changed vs BASE "
                             "(default origin/main) plus untracked files; "
                             "the flow analysis still sees the whole tree "
                             "through the index cache")
    args = parser.parse_args(argv)

    # Flow rules are registered lazily: importing flow_rules here (not at
    # module top) keeps the uwb_lint -> cpp_index -> uwb_lint import
    # relationship one-directional at load time.
    import flow_rules as _flow
    import cpp_index as _idx
    import sarif as _sarif

    if args.list_rules:
        for name in sorted(RULES):
            print(f"{name}: {RULES[name].__doc__.strip()}")
        for name in _flow.FLOW_RULES:
            doc = (_flow._CHECKS[name].__doc__ or "").strip()
            print(f"{name}: (flow) {doc}")
        return 0

    all_rules = sorted(RULES) + list(_flow.FLOW_RULES)
    rules = args.rules or all_rules
    unknown = [r for r in rules if r not in all_rules]
    if unknown:
        print(f"uwb_lint: unknown rule(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    file_rules = [r for r in rules if r in RULES]
    flow_rules = [r for r in rules if r in _flow.FLOW_RULES]
    if args.no_flow:
        flow_rules = []

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

    only = None
    if args.changed_only is not None:
        changed = _changed_files(root, args.changed_only)
        if changed is None:
            return 2
        only = set(changed)

    relpaths = discover_files(root, args.paths)
    findings = []
    for relpath in relpaths:
        norm = relpath.replace(os.sep, "/")
        if only is not None and norm not in only:
            continue
        findings.extend(lint_file(root, relpath, file_rules))

    if flow_rules:
        cache_path = args.index_cache
        if cache_path is None:
            cache_path = os.path.join(root, ".uwb-lint-cache", "index.json")
        elif cache_path == "none":
            cache_path = None
        index, _stats = _idx.build_index(root, relpaths, cache_path)
        for f in _flow.run_flow_rules(index, flow_rules):
            if only is not None and f.path not in only:
                continue
            findings.append(f)

    for f in findings:
        print(f.render())
    if args.sarif:
        _sarif.write_sarif(findings, args.sarif)
    if findings:
        print(f"uwb_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
