#!/usr/bin/env bash
# cppcheck over the library sources for the CI lint job.
#
# Scope is src/ only (tests and benches use gtest macros cppcheck cannot
# model). Findings are errors: the tree stays clean, suppressions live in
# cppcheck-suppressions.txt with a justification each.
set -u -o pipefail

cd "$(dirname "$0")/../.."

if ! command -v cppcheck >/dev/null 2>&1; then
  echo "run_cppcheck: cppcheck not installed; skipping" >&2
  exit 0
fi

exec cppcheck \
  --std=c++20 \
  --language=c++ \
  --enable=warning,performance,portability \
  --inline-suppr \
  --suppressions-list=tools/lint/cppcheck-suppressions.txt \
  --error-exitcode=1 \
  --inconclusive \
  --quiet \
  -I src \
  src
