#!/usr/bin/env python3
"""cpp_index: a pure-stdlib approximate semantic index of the C++ tree.

libclang is unavailable in the baked toolchain, so this module builds the
best index a structured scanner can: per-TU symbol tables (functions,
methods, classes with qualified names), an include graph, and an
approximate call graph resolved by qualified-name and overload-arity
matching.  The flow-aware lint rules (tools/lint/flow_rules.py) and the
iwyu-lite check (tools/lint/run_iwyu_lite.py) run on top of it.

The model is deliberately approximate; DESIGN.md Sect. 16 states the
contract precisely.  In short:

  resolved    in-class and out-of-line member functions (``Medium::deliver``),
              qualified free calls (``dsp::energy(...)``), unqualified calls
              (preferring same-class methods, then same-namespace free
              functions), member calls by method name across all classes
              (an over-approximation), overload selection by arity when the
              argument count matches some overload.
  unresolved  calls through macros (``UWB_FR_EVENT(...)`` has no function
              definition, so it creates no edge), dependent calls in
              templates whose method name exists nowhere in the tree,
              infix operator-overload uses (``a + b``), calls through
              function pointers / std::function values, and anything in
              ``namespace std`` (``std::`` qualified calls never resolve to
              project symbols).
  attribution calls inside a lambda body are attributed to the enclosing
              function — sound for reachability, since the lambda cannot
              run before the enclosing scope constructed it.

Parsing runs over comment-/string-stripped text (shared with uwb_lint), so
prose never produces symbols; preprocessor lines are blanked from the
scope scanner (macro bodies with braces would desynchronize it) after
includes and #define names are harvested from the raw text.

The index caches per-file parse results keyed on file content hashes
(``--index-cache``): incremental runs re-parse only changed files, which
keeps the CI lint job's full analysis well under its 3-minute budget.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import uwb_lint  # noqa: E402  (shared source model: stripper, suppressions)

CACHE_VERSION = 1


def _cache_signature():
    """Cache key component covering the analyzer's own code: editing the
    parser must invalidate every cached parse, not just reparses of edited
    C++ files."""
    h = hashlib.sha256()
    here = os.path.dirname(os.path.abspath(__file__))
    for name in ("cpp_index.py", "uwb_lint.py"):
        try:
            with open(os.path.join(here, name), "rb") as f:
                h.update(f.read())
        except OSError:
            pass
    return f"{CACHE_VERSION}:{h.hexdigest()[:16]}"

# ---------------------------------------------------------------------------
# Records.  Plain dicts via to_dict/from_dict so the cache stays schema-free
# JSON; attribute access goes through lightweight classes.


class CallRec:
    __slots__ = ("qual", "leaf", "arity", "line", "member")

    def __init__(self, qual, leaf, arity, line, member):
        self.qual = qual          # explicit qualifier as written ('' if none)
        self.leaf = leaf          # callee identifier
        self.arity = arity        # top-level comma count heuristic
        self.line = line          # 1-based
        self.member = member      # preceded by '.' or '->'

    def to_dict(self):
        return [self.qual, self.leaf, self.arity, self.line, self.member]

    @staticmethod
    def from_dict(d):
        return CallRec(*d)


class FuncRec:
    __slots__ = (
        "qname", "leaf", "qual", "parent_class", "path", "line", "end_line",
        "params_min", "params_max", "return_type", "is_def", "hot_path",
        "derive_seed", "calls", "banned_io", "fma", "allocs", "reserves",
        "rng_ctors", "reductions", "locals_unordered", "namespace")

    def __init__(self, **kw):
        for s in FuncRec.__slots__:
            setattr(self, s, kw.get(s))
        self.calls = self.calls or []
        self.banned_io = self.banned_io or []
        self.fma = self.fma or []
        self.allocs = self.allocs or []
        self.reserves = self.reserves or []
        self.rng_ctors = self.rng_ctors or []
        self.reductions = self.reductions or []
        self.locals_unordered = self.locals_unordered or {}

    def to_dict(self):
        d = {s: getattr(self, s) for s in FuncRec.__slots__ if s != "calls"}
        d["calls"] = [c.to_dict() for c in self.calls]
        return d

    @staticmethod
    def from_dict(d):
        d = dict(d)
        d["calls"] = [CallRec.from_dict(c) for c in d.get("calls", [])]
        return FuncRec(**d)


class ClassRec:
    __slots__ = ("qname", "leaf", "path", "line", "members")

    def __init__(self, qname, leaf, path, line, members=None):
        self.qname = qname
        self.leaf = leaf
        self.path = path
        self.line = line
        self.members = members or {}  # name -> container kind

    def to_dict(self):
        return {"qname": self.qname, "leaf": self.leaf, "path": self.path,
                "line": self.line, "members": self.members}

    @staticmethod
    def from_dict(d):
        return ClassRec(d["qname"], d["leaf"], d["path"], d["line"],
                        d.get("members"))


class TU:
    __slots__ = ("path", "sha", "includes", "functions", "classes",
                 "provides", "defines", "globals_unordered", "fma_pragmas",
                 "suppressed")

    def __init__(self, **kw):
        for s in TU.__slots__:
            setattr(self, s, kw.get(s))
        self.includes = self.includes or []
        self.functions = self.functions or []
        self.classes = self.classes or []
        self.provides = self.provides or []
        self.defines = self.defines or []
        self.globals_unordered = self.globals_unordered or {}
        self.fma_pragmas = self.fma_pragmas or []
        self.suppressed = self.suppressed or {}

    def to_dict(self):
        return {
            "path": self.path, "sha": self.sha, "includes": self.includes,
            "functions": [f.to_dict() for f in self.functions],
            "classes": [c.to_dict() for c in self.classes],
            "provides": self.provides, "defines": self.defines,
            "globals_unordered": self.globals_unordered,
            "fma_pragmas": self.fma_pragmas,
            "suppressed": {str(k): sorted(v)
                           for k, v in self.suppressed.items()},
        }

    @staticmethod
    def from_dict(d):
        return TU(
            path=d["path"], sha=d["sha"], includes=d["includes"],
            functions=[FuncRec.from_dict(f) for f in d["functions"]],
            classes=[ClassRec.from_dict(c) for c in d["classes"]],
            provides=d["provides"], defines=d["defines"],
            globals_unordered=d["globals_unordered"],
            fma_pragmas=d["fma_pragmas"],
            suppressed={int(k): set(v)
                        for k, v in d.get("suppressed", {}).items()},
        )


# ---------------------------------------------------------------------------
# Lexical helpers.

_CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "do", "else", "new",
    "delete", "sizeof", "alignof", "decltype", "noexcept", "alignas",
    "static_assert", "assert", "case", "goto", "throw", "using", "template",
    "typename", "requires", "concept", "co_await", "co_return", "co_yield",
    "void", "int", "bool", "char", "double", "float", "auto", "defined",
    "operator", "this", "constexpr", "const", "static", "inline",
}

# Member-call names that in practice always hit the standard library; an
# edge to a same-named project method would be a false dependency.
_STD_MEMBER_BLOCKLIST = {
    "size", "empty", "clear", "begin", "end", "cbegin", "cend", "rbegin",
    "rend", "push_back", "emplace_back", "pop_back", "front", "back", "data",
    "at", "find", "insert", "erase", "count", "reserve", "resize", "swap",
    "assign", "emplace", "first", "second", "c_str", "str", "substr",
    "append", "length", "get", "release", "real", "imag", "load", "store",
    "fetch_add", "exchange", "lock", "unlock", "join", "detach", "push",
    "pop", "top", "contains", "lower_bound", "upper_bound", "native_handle",
}

# Unqualified free-call names that never mean a project function.
_STD_FREE_BLOCKLIST = {
    "move", "forward", "swap", "min", "max", "abs", "sqrt", "get",
    "make_pair", "make_tuple", "tie", "to_string", "snprintf", "sscanf",
    "printf", "fprintf", "memcpy", "memset", "memmove", "strlen", "strcmp",
}

_SPECIFIER_WORDS = {
    "static", "inline", "constexpr", "consteval", "constinit", "virtual",
    "explicit", "friend", "extern", "mutable", "typename", "register",
}


def _line_of(offsets, pos):
    """1-based line of character offset `pos` given sorted line-start
    offsets."""
    lo, hi = 0, len(offsets) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if offsets[mid] <= pos:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def _balanced_span(text, open_pos):
    """End index (exclusive of the closing paren) of the '(' at open_pos.
    Returns len(text) when unbalanced."""
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(text)


def _split_top_commas(text):
    """Split on commas at paren/brace/bracket depth 0 (angle brackets are
    not tracked: template-argument commas overcount, which the arity
    matcher treats as a soft signal only)."""
    parts, depth, start = [], 0, 0
    for i, c in enumerate(text):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return parts


def _strip_templates(head):
    """Remove leading `template <...>` headers (balanced angles)."""
    h = head.lstrip()
    while h.startswith("template"):
        m = re.match(r"template\s*<", h)
        if not m:
            break
        depth, i = 0, m.end() - 1
        while i < len(h):
            if h[i] == "<":
                depth += 1
            elif h[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        h = h[i + 1:].lstrip()
    return h


def _container_kind(type_text):
    """'unordered', 'ptr_key', or None for a declaration's type text.

    ptr_key: an ordered associative container keyed by pointer — its
    iteration order is deterministic *within* a run but varies across runs
    with allocation addresses, which breaks replay just the same.
    """
    m = re.search(r"\bunordered_(?:map|set|multimap|multiset)\s*<", type_text)
    if m:
        first = _split_top_commas(
            _angle_body(type_text, m.end() - 1))[0]
        return "ptr_key" if "*" in first else "unordered"
    m = re.search(r"\bstd\s*::\s*(?:map|set|multimap|multiset)\s*<",
                  type_text)
    if m:
        first = _split_top_commas(_angle_body(type_text, m.end() - 1))[0]
        if "*" in first:
            return "ptr_key"
    return None


def _angle_body(text, open_pos):
    """Text inside the '<' at open_pos (naive angle matching; good enough
    for type contexts, where shifts do not appear)."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return text[open_pos + 1:i]
    return text[open_pos + 1:]


# ---------------------------------------------------------------------------
# Head classification (what does this '{' open?).

_NAMESPACE_RE = re.compile(r"(?:^|\s)namespace(?:\s+([\w:]+))?\s*$")
_CLASS_RE = re.compile(
    r"(?:^|[^\w])(?:class|struct|union)\s+(?:\[\[[^\]]*\]\]\s*)?"
    r"(?:alignas\s*\([^)]*\)\s*)?([A-Za-z_]\w*)\s*"
    r"(?:final\s*)?(?::[^{;]*)?$")
_ENUM_RE = re.compile(
    r"(?:^|[^\w])enum(?:\s+(?:class|struct))?(?:\s+([A-Za-z_]\w*))?"
    r"\s*(?::\s*[\w:\s]+)?$")
_NAME_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*)"
    r"(~?[A-Za-z_]\w*|operator\s*\(\)|operator\s*\[\]|operator\s*[^\s\w(]+)"
    r"\s*$")


def _top_level_paren_groups(head):
    """(open, close) index pairs of parenthesized groups at depth 0."""
    groups, depth, start = [], 0, -1
    for i, c in enumerate(head):
        if c == "(":
            if depth == 0:
                start = i
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0 and start >= 0:
                groups.append((start, i))
                start = -1
    return groups


def _trailing_ok(after):
    """True when `after` (text between a param list and '{') is a valid
    function-definition tail: cv/ref qualifiers, noexcept, override/final,
    attributes, a trailing return type, or a ctor-initializer list."""
    a = after.strip()
    while a:
        if a.startswith(":") and not a.startswith("::"):
            return True  # ctor-initializer list
        if a.startswith("->"):
            return True  # trailing return type (runs to the '{')
        m = re.match(
            r"(?:const|noexcept(?:\s*\([^()]*\))?|override|final|mutable|"
            r"try|&&|&|\[\[[^\]]*\]\])\s*", a)
        if not m or m.end() == 0:
            return False
        a = a[m.end():]
    return True


def _has_top_level_assign(head):
    depth = 0
    for i, c in enumerate(head):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "=" and depth == 0:
            prev = head[i - 1] if i else ""
            nxt = head[i + 1] if i + 1 < len(head) else ""
            if prev in "<>!=+-*/%&|^" or nxt == "=":
                continue
            if head[:i].rstrip().endswith("operator"):
                continue
            return True
    return False


def _classify_function(head):
    """(qual, leaf, params_min, params_max, return_type) or None."""
    h = _strip_templates(head)
    h = re.sub(r"^\s*(?:public|private|protected)\s*:", "", h).strip()
    if not h or _has_top_level_assign(h):
        return None
    for (po, pc) in _top_level_paren_groups(h):
        before, after = h[:po], h[pc + 1:]
        m = _NAME_RE.search(before)
        if not m:
            continue
        leaf = m.group(2).replace(" ", "")
        if leaf in _CONTROL_KEYWORDS and not leaf.startswith("operator"):
            continue
        if not _trailing_ok(after):
            continue
        qual = re.sub(r"\s+", "", m.group(1)).rstrip(":")
        params = h[po + 1:pc].strip()
        if params in ("", "void"):
            pmin = pmax = 0
        else:
            parts = _split_top_commas(params)
            pmax = len(parts)
            pmin = pmax - sum(1 for p in parts if "=" in p)
        ret = before[:m.start()].strip()
        return qual, leaf, pmin, pmax, ret
    return None


# ---------------------------------------------------------------------------
# Body analysis.

_CALL_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*)([A-Za-z_]\w*)\s*\(")

# `Dispatch d;` / `Rng rng(seed)` / `Foo f{...}` / `Foo f = ...`: a local
# declaration whose type is an upper-case-initial (project-style) class
# name runs that class's constructor.
_CTOR_DECL_RE = re.compile(
    r"(?<![\w:.<>])((?:[A-Za-z_]\w*\s*::\s*)*)([A-Z]\w*)"
    r"\s+([a-z_]\w*)\s*([;({=])")

_BANNED_IO = [
    (re.compile(r"std\s*::\s*chrono\s*::\s*(?:system_clock|steady_clock|"
                r"high_resolution_clock)"), "std::chrono host clock"),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?clock_gettime\s*\("),
     "clock_gettime"),
    (re.compile(r"(?<![\w:.])gettimeofday\s*\("), "gettimeofday"),
    (re.compile(r"(?<![\w:.])time\s*\("), "time()"),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?getenv\s*\("), "getenv"),
    (re.compile(r"std\s*::\s*(?:i|o)?fstream"), "std::fstream"),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?fopen\s*\("), "fopen"),
    (re.compile(r"std\s*::\s*filesystem"), "std::filesystem"),
]

_FMA_RE = re.compile(
    r"(?<![\w:.])(?:std\s*::\s*)?fmaf?\s*\(|__builtin_fmaf?\b")
_NEW_RE = re.compile(r"(?<![\w:.])new\b(?!\s*\()")
_MALLOC_RE = re.compile(
    r"(?<![\w:.])(?:std\s*::\s*)?(malloc|calloc|realloc|aligned_alloc)"
    r"\s*\(")
_MAKE_RE = re.compile(
    r"(?<![\w:])(?:std\s*::\s*)?(make_unique|make_shared)\s*<")
_PUSH_RE = re.compile(
    r"([A-Za-z_]\w*)\s*(?:\.|->)\s*(push_back|emplace_back)\s*\(")
_RESERVE_RE = re.compile(
    r"([A-Za-z_]\w*)\s*(?:\.|->)\s*(?:reserve|resize)\s*\(")
_STDFUNC_RE = re.compile(r"std\s*::\s*function\s*<")
_DERIVE_SEED_RE = re.compile(r"(?<![\w:])derive_seed\s*\(")
_RNG_DECL_RE = re.compile(
    r"(?<![\w:])(?:uwb\s*::\s*)?Rng\s+([A-Za-z_]\w*)\s*([({])")
_RNG_TEMP_RE = re.compile(r"(?<![\w:])(?:uwb\s*::\s*)?Rng\s*([({])")
_ACCUM_RE = re.compile(
    r"(?<![\w:])(?:std\s*::\s*)?(accumulate|reduce|transform_reduce|"
    r"inner_product)\s*\(")
_FOR_RE = re.compile(r"(?<!\w)for\s*\(")
_LOCAL_UNORD_RE = re.compile(
    r"(?:std\s*::\s*)?(unordered_(?:map|set|multimap|multiset)|map|set)"
    r"\s*<")
_REDUCE_OP_RE = re.compile(r"(?<![=<>!+\-*/&|^])[+*]=|\bsum\b|\btotal\b")


def _prev_nonspace(text, pos):
    j = pos - 1
    while j >= 0 and text[j] in " \t\n":
        j -= 1
    return text[j] if j >= 0 else "", j


def _first_top_arg(text, open_pos):
    close = _balanced_span(text, open_pos)
    inner = text[open_pos + 1:close]
    return _split_top_commas(inner)[0].strip(), inner


def _range_for_sites(body):
    """Yield (pos, target_expr, loop_body_text) for each range-for."""
    for m in _FOR_RE.finditer(body):
        open_pos = m.end() - 1
        close = _balanced_span(body, open_pos)
        inner = body[open_pos + 1:close]
        # top-level ':' that is not '::'
        depth, colon = 0, -1
        i = 0
        while i < len(inner):
            c = inner[i]
            if c in "([{<":
                depth += 1 if c != "<" else 0
            elif c in ")]}>":
                depth -= 1 if c != ">" else 0
            elif c == ":" and depth == 0:
                if i + 1 < len(inner) and inner[i + 1] == ":":
                    i += 2
                    continue
                if i > 0 and inner[i - 1] == ":":
                    i += 1
                    continue
                colon = i
                break
            i += 1
        if colon < 0:
            continue
        target = inner[colon + 1:].strip()
        # loop body: '{'..matching '}' or to ';'
        k = close + 1
        while k < len(body) and body[k] in " \t\n":
            k += 1
        if k < len(body) and body[k] == "{":
            depth2, j = 0, k
            while j < len(body):
                if body[j] == "{":
                    depth2 += 1
                elif body[j] == "}":
                    depth2 -= 1
                    if depth2 == 0:
                        break
                j += 1
            loop_body = body[k:j + 1]
        else:
            semi = body.find(";", k)
            loop_body = body[k:semi if semi != -1 else len(body)]
        yield m.start(), target, loop_body


def _analyze_body(fn, body, body_pos, offsets):
    """Populate a FuncRec from its body text (stripped source)."""
    line_at = lambda p: _line_of(offsets, body_pos + p)  # noqa: E731

    fn.derive_seed = bool(_DERIVE_SEED_RE.search(body))

    for pat, api in _BANNED_IO:
        for m in pat.finditer(body):
            fn.banned_io.append([line_at(m.start()), api])
    for m in _FMA_RE.finditer(body):
        fn.fma.append([line_at(m.start()), m.group(0).strip().rstrip("(")])

    for m in _NEW_RE.finditer(body):
        prev, _ = _prev_nonspace(body, m.start())
        fn.allocs.append([line_at(m.start()), "new", "new expression"])
    for m in _MALLOC_RE.finditer(body):
        fn.allocs.append([line_at(m.start()), "malloc", m.group(1) + "()"])
    for m in _MAKE_RE.finditer(body):
        fn.allocs.append([line_at(m.start()), "make", "std::" + m.group(1)])
    for m in _STDFUNC_RE.finditer(body):
        fn.allocs.append(
            [line_at(m.start()), "std_function", "std::function construction"])
    for m in _PUSH_RE.finditer(body):
        fn.allocs.append(
            [line_at(m.start()), "push_back", m.group(1)])
    fn.reserves = sorted({m.group(1) for m in _RESERVE_RE.finditer(body)})

    # Rng constructions: named declarations and temporaries; a match whose
    # argument list reads like a parameter list is a declaration of a
    # function returning Rng, not a construction.
    seen = set()
    for m in _RNG_DECL_RE.finditer(body):
        if m.group(2) != "(":
            open_pos = body.index("{", m.end() - 1)
        else:
            open_pos = m.end() - 1
        arg, _ = _first_top_arg(body, open_pos) if m.group(2) == "(" else \
            (_brace_first_arg(body, m.end() - 1), None)
        if _looks_like_param_list(arg):
            continue
        seen.add(m.start())
        fn.rng_ctors.append([line_at(m.start()), arg])
    for m in _RNG_TEMP_RE.finditer(body):
        if any(abs(m.start() - s) < 4 for s in seen):
            continue
        prev, _ = _prev_nonspace(body, m.start())
        if prev in (".", ":"):
            continue
        open_pos = m.end() - 1
        if body[open_pos] == "{":
            arg = _brace_first_arg(body, open_pos)
        else:
            arg, _ = _first_top_arg(body, open_pos)
        if _looks_like_param_list(arg) or arg == "":
            continue
        fn.rng_ctors.append([line_at(m.start()), arg])

    # Reductions: std::accumulate-family over some range expression.
    for m in _ACCUM_RE.finditer(body):
        arg, _ = _first_top_arg(body, m.end() - 1)
        base = re.sub(
            r"(?:\.|->)\s*c?begin\s*\(\s*\)\s*$", "", arg).strip()
        sb = re.match(r"std\s*::\s*c?begin\s*\((.*)\)\s*$", base)
        if sb:
            base = sb.group(1).strip()
        fn.reductions.append(
            [line_at(m.start()), "accumulate:" + m.group(1), base])
    # Range-for reductions (+=/*= in the loop body).
    for pos, target, loop_body in _range_for_sites(body):
        if _REDUCE_OP_RE.search(loop_body) or _ACCUM_RE.search(loop_body):
            fn.reductions.append([line_at(pos), "range_for", target])

    # Local container declarations with order-hazardous types.
    for m in _LOCAL_UNORD_RE.finditer(body):
        inner = _angle_body(body, m.end() - 1)
        type_text = body[m.start():m.end()] + inner + ">"
        kind = _container_kind(type_text)
        if kind is None:
            continue
        after = body[m.end() + len(inner) + 1:]
        nm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;({=]", after)
        if nm:
            fn.locals_unordered[nm.group(1)] = kind

    # Call sites.
    for m in _CALL_RE.finditer(body):
        qual = re.sub(r"\s+", "", m.group(1)).rstrip(":")
        leaf = m.group(2)
        if leaf in _CONTROL_KEYWORDS:
            continue
        prev, pj = _prev_nonspace(body, m.start())
        member = prev == "." or (prev == ">" and pj > 0 and
                                 body[pj - 1] == "-")
        close = _balanced_span(body, m.end() - 1)
        inner = body[m.end():close].strip()
        arity = 0 if inner == "" else len(_split_top_commas(inner))
        fn.calls.append(CallRec(qual, leaf, arity,
                                line_at(m.start()), member))

    # Local object declarations are implicit constructor calls
    # (``static Dispatch d;`` runs Dispatch::Dispatch).  Upper-case-initial
    # type names approximate "project class"; resolution later drops names
    # with no matching constructor.
    for m in _CTOR_DECL_RE.finditer(body):
        qual = re.sub(r"\s+", "", m.group(1)).rstrip(":")
        type_leaf = m.group(2)
        if type_leaf in _CONTROL_KEYWORDS:
            continue
        term = m.group(4)
        if term == "(":
            open_pos = m.end() - 1
            inner = body[open_pos + 1:_balanced_span(body, open_pos)].strip()
            arity = 0 if inner == "" else len(_split_top_commas(inner))
        else:
            arity = 0
        fn.calls.append(CallRec(qual, type_leaf, arity,
                                line_at(m.start(2)), False))


def _analyze_head(fn, head, head_pos, offsets):
    """Calls hiding in a definition head: constructor-initializer lists
    (``Medium::Medium(...) : fanout_(obs::fanout_buckets()) {``) and
    std::function parameters (each call site converting a lambda allocates
    the type-erased target, so the hazard is charged to the signature)."""
    line_at = lambda p: _line_of(offsets, head_pos + p)  # noqa: E731
    if _DERIVE_SEED_RE.search(head):
        fn.derive_seed = True
    for m in _STDFUNC_RE.finditer(head):
        fn.allocs.append(
            [line_at(m.start()), "std_function",
             "std::function parameter (callers construct a type-erased "
             "target)"])
    for m in _CALL_RE.finditer(head):
        qual = re.sub(r"\s+", "", m.group(1)).rstrip(":")
        leaf = m.group(2)
        if leaf in _CONTROL_KEYWORDS or leaf == fn.leaf:
            continue
        close = _balanced_span(head, m.end() - 1)
        inner = head[m.end():close].strip()
        arity = 0 if inner == "" else len(_split_top_commas(inner))
        fn.calls.append(CallRec(qual, leaf, arity,
                                line_at(m.start()), False))


def _brace_first_arg(body, open_pos):
    depth = 0
    for i in range(open_pos, len(body)):
        if body[i] == "{":
            depth += 1
        elif body[i] == "}":
            depth -= 1
            if depth == 0:
                return _split_top_commas(body[open_pos + 1:i])[0].strip()
    return body[open_pos + 1:].strip()


def _looks_like_param_list(arg):
    """'std::uint64_t seed' is a declaration, 'derive_seed(a, b)' is not."""
    if arg.strip() == "":
        return True
    for part in _split_top_commas(arg):
        if re.match(r"\s*(?:const\s+)?[\w:]+(?:\s*<[^>]*>)?\s*[&*]*\s+"
                    r"[A-Za-z_]\w*\s*$", part):
            return True
    return False


# ---------------------------------------------------------------------------
# The scope scanner.

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*["<]([^">]+)[">]')
_DEFINE_RE = re.compile(r"^\s*#\s*define\s+([A-Za-z_]\w*)")
_FP_CONTRACT_RE = re.compile(
    r"#\s*pragma\s+(?:STDC\s+FP_CONTRACT\s+ON|fp_contract\s*\(\s*on|"
    r"float_control\s*\(\s*precise\s*,\s*off)", re.IGNORECASE)
_HOT_PATH_RE = re.compile(r"//\s*uwb-hot-path\b")
_USING_RE = re.compile(r"(?:^|\s)using\s+([A-Za-z_]\w*)\s*=")
_TYPEDEF_RE = re.compile(r"(?:^|\s)typedef\s+.*?([A-Za-z_]\w*)\s*$")


def _blank_preprocessor(code_lines):
    """Blank preprocessor lines (and their continuations) so macro bodies
    cannot desynchronize the scope scanner."""
    out = list(code_lines)
    i = 0
    while i < len(out):
        if re.match(r"\s*#", out[i]):
            j = i
            while j < len(out) and out[j].rstrip().endswith("\\"):
                out[j] = ""
                j += 1
            if j < len(out):
                out[j] = ""
            i = j + 1
        else:
            i += 1
    return out


def _hot_path_annotated(raw_lines, def_line):
    """True when `// uwb-hot-path` sits on the definition line or in the
    contiguous comment/attribute/template block directly above it."""
    if def_line - 1 < len(raw_lines) and \
            _HOT_PATH_RE.search(raw_lines[def_line - 1]):
        return True
    i = def_line - 2
    while i >= 0:
        line = raw_lines[i].strip()
        if line == "" and i == def_line - 2:
            return False
        if (line.startswith("//") or line.startswith("*") or
                line.startswith("/*") or line.startswith("[[") or
                line.startswith("template")):
            if _HOT_PATH_RE.search(raw_lines[i]):
                return True
            i -= 1
            continue
        break
    return False


def parse_tu(src):
    """Parse one SourceFile into a TU record."""
    tu = TU(path=src.path, sha=None, suppressed=dict(src.suppressed))

    for raw in src.raw_lines:
        m = _INCLUDE_RE.match(raw)
        if m:
            tu.includes.append(m.group(1))
        m = _DEFINE_RE.match(raw)
        if m:
            tu.defines.append(m.group(1))
        if _FP_CONTRACT_RE.search(raw):
            tu.fma_pragmas.append(src.raw_lines.index(raw) + 1)

    code_lines = _blank_preprocessor(src.code_lines)
    code = "\n".join(code_lines)
    offsets = [0]
    for line in code_lines[:-1]:
        offsets.append(offsets[-1] + len(line) + 1)

    provides = set(tu.defines)

    # Scope stack entries: dicts with kind/name/fn/body_start.
    scopes = []
    head_start = 0
    paren_depth = 0
    i, n = 0, len(code)

    def in_function():
        return any(s["kind"] == "function" for s in scopes)

    def ns_path():
        parts = []
        for s in scopes:
            if s["kind"] == "namespace" and s["name"]:
                parts.append(s["name"])
            elif s["kind"] == "class":
                parts.append(s["name"])
        return parts

    def class_qname():
        parts, cls = [], None
        for s in scopes:
            if s["kind"] == "namespace" and s["name"]:
                parts.append(s["name"])
            elif s["kind"] == "class":
                parts.append(s["name"])
                cls = "::".join(parts)
        return cls

    def handle_decl(head, at_pos):
        """A ';'-terminated declaration at namespace/class scope."""
        h = _strip_templates(head)
        h = re.sub(r"^\s*(?:public|private|protected)\s*:", "", h).strip()
        if not h:
            return
        m = _USING_RE.search(h)
        if m:
            provides.add(m.group(1))
            return
        m = _TYPEDEF_RE.search(h)
        if m:
            provides.add(m.group(1))
            return
        for kw_re in (_CLASS_RE, _ENUM_RE):
            m = kw_re.search(h)
            if m and m.group(1):
                provides.add(m.group(1))  # forward declaration
                return
        fc = _classify_function(h)
        if fc:
            qual, leaf, pmin, pmax, ret = fc
            if leaf.startswith("operator"):
                provides.add(leaf)
            else:
                provides.add(leaf)
            cls = class_qname()
            qparts = ns_path()
            if qual:
                qparts.append(qual)
            qparts.append(leaf)
            tu.functions.append(FuncRec(
                qname="::".join(qparts), leaf=leaf, qual=qual,
                parent_class=cls, path=src.path,
                line=_line_of(offsets, at_pos), end_line=None,
                params_min=pmin, params_max=pmax, return_type=ret,
                is_def=False, hot_path=False, derive_seed=False,
                namespace="::".join(ns_path())))
            return
        # Variable / member declaration: record order-hazardous containers
        # and the declared name for iwyu.
        kind = _container_kind(h)
        nm = re.search(r"([A-Za-z_]\w*)\s*(?:=[^=].*|\{.*\})?$", h)
        if nm and nm.group(1) not in _CONTROL_KEYWORDS:
            name = nm.group(1)
            provides.add(name)
            if kind:
                cur_class = None
                for s in reversed(scopes):
                    if s["kind"] == "class":
                        cur_class = s
                        break
                if cur_class is not None:
                    cur_class["rec"].members[name] = kind
                elif not in_function():
                    tu.globals_unordered[name] = kind

    while i < n:
        c = code[i]
        if c == "(":
            paren_depth += 1
        elif c == ")":
            paren_depth = max(0, paren_depth - 1)
        elif c == ";" and paren_depth == 0:
            if not in_function():
                handle_decl(code[head_start:i], head_start)
            head_start = i + 1
        elif c == "{":
            head = code[head_start:i]
            if in_function():
                scopes.append({"kind": "block", "name": None})
            else:
                h = _strip_templates(head)
                h = re.sub(r"^\s*(?:public|private|protected)\s*:", "",
                           h).strip()
                m = _NAMESPACE_RE.search(h)
                cm = _CLASS_RE.search(h)
                em = _ENUM_RE.search(h)
                fc = None if (m or cm) else _classify_function(head)
                if m:
                    scopes.append({"kind": "namespace",
                                   "name": m.group(1) or ""})
                elif cm:
                    qparts = ns_path() + [cm.group(1)]
                    rec = ClassRec("::".join(qparts), cm.group(1), src.path,
                                   _line_of(offsets, i))
                    tu.classes.append(rec)
                    provides.add(cm.group(1))
                    scopes.append({"kind": "class", "name": cm.group(1),
                                   "rec": rec})
                elif fc:
                    qual, leaf, pmin, pmax, ret = fc
                    cls = class_qname()
                    qparts = ns_path()
                    if qual:
                        qparts.append(qual)
                    qparts.append(leaf)
                    def_line = _line_of(offsets, head_start +
                                        len(head) - len(head.lstrip()))
                    fn = FuncRec(
                        qname="::".join(p for p in qparts if p), leaf=leaf,
                        qual=qual, parent_class=cls, path=src.path,
                        line=def_line, end_line=None,
                        params_min=pmin, params_max=pmax, return_type=ret,
                        is_def=True,
                        hot_path=_hot_path_annotated(src.raw_lines,
                                                     def_line),
                        derive_seed=False,
                        namespace="::".join(ns_path()))
                    provides.add(leaf)
                    _analyze_head(fn, head, head_start, offsets)
                    scopes.append({"kind": "function", "fn": fn,
                                   "body_start": i + 1})
                elif em:
                    scopes.append({"kind": "enum", "name": em.group(1),
                                   "body_start": i + 1})
                    if em.group(1):
                        provides.add(em.group(1))
                else:
                    scopes.append({"kind": "block", "name": None})
            head_start = i + 1
            paren_depth = 0
        elif c == "}":
            if scopes:
                top = scopes.pop()
                if top["kind"] == "function":
                    fn = top["fn"]
                    body = code[top["body_start"]:i]
                    fn.end_line = _line_of(offsets, i)
                    _analyze_body(fn, body, top["body_start"], offsets)
                    tu.functions.append(fn)
                elif top["kind"] == "enum":
                    body = code[top["body_start"]:i]
                    for em2 in re.finditer(r"(?:^|,|\{)\s*([A-Za-z_]\w*)",
                                           body):
                        provides.add(em2.group(1))
            head_start = i + 1
            paren_depth = 0
        i += 1

    tu.provides = sorted(provides)
    return tu


# ---------------------------------------------------------------------------
# The index: cross-TU tables + call-graph resolution.


class Index:
    def __init__(self, tus):
        self.tus = tus
        self.by_path = {tu.path: tu for tu in tus}
        self.functions = []
        for tu in tus:
            self.functions.extend(tu.functions)
        self.defs = [f for f in self.functions if f.is_def]
        self.by_leaf = {}
        for f in self.functions:
            self.by_leaf.setdefault(f.leaf, []).append(f)
        self.classes_by_qname = {}
        self.classes_by_leaf = {}
        for tu in tus:
            for c in tu.classes:
                self.classes_by_qname[c.qname] = c
                self.classes_by_leaf.setdefault(c.leaf, []).append(c)
        # Finalize parent_class for out-of-line definitions whose qualifier
        # names a class defined in another TU (``Medium::deliver`` in
        # medium.cpp, class Medium in medium.hpp).
        for f in self.functions:
            if not f.parent_class and f.qual:
                cls = self._resolve_class(f.qual, f.namespace)
                if cls:
                    f.parent_class = cls.qname
        self._callee_cache = {}
        self._reverse = None

    def _resolve_class(self, qual, namespace):
        if qual in self.classes_by_qname:
            return self.classes_by_qname[qual]
        leaf = qual.split("::")[-1]
        cands = self.classes_by_leaf.get(leaf, [])
        for c in cands:
            if c.qname == (namespace + "::" + qual if namespace else qual):
                return c
        for c in cands:
            if c.qname.endswith("::" + qual) or c.qname == qual:
                return c
        return None

    def class_member_kind(self, class_qname, member):
        """Container kind of a member looked up through the class and its
        same-named variants (cross-TU: class defined in a header, method in
        a .cpp)."""
        c = self.classes_by_qname.get(class_qname)
        if c and member in c.members:
            return c.members[member]
        leaf = class_qname.split("::")[-1] if class_qname else None
        for c in self.classes_by_leaf.get(leaf, []):
            if member in c.members:
                return c.members[member]
        return None

    # -- call resolution ----------------------------------------------------

    def resolve_call(self, caller, call):
        if call.qual.startswith("std"):
            return []
        leaf = call.leaf
        if call.member and leaf in _STD_MEMBER_BLOCKLIST:
            return []
        if not call.member and not call.qual and leaf in _STD_FREE_BLOCKLIST:
            return []
        cands = self.by_leaf.get(leaf, [])
        if not cands:
            return []
        if call.qual:
            want = call.qual + "::" + leaf
            out = [f for f in cands
                   if f.qname == want or f.qname.endswith("::" + want)]
            cands = out
        elif call.member:
            cands = [f for f in cands if f.parent_class]
        else:
            same_class = [f for f in cands
                          if f.parent_class and
                          f.parent_class == caller.parent_class]
            if same_class:
                cands = same_class
            else:
                free = [f for f in cands if not f.parent_class]
                ns = caller.namespace or ""
                ns_match = [f for f in free
                            if f.namespace == ns or
                            (f.namespace and ns.startswith(f.namespace))]
                cands = ns_match or free or cands
        by_arity = [f for f in cands
                    if f.params_min is not None and
                    f.params_min <= call.arity <= f.params_max]
        chosen = by_arity or cands
        # Resolve each overload set to its definitions when available.
        defs = [f for f in chosen if f.is_def]
        return defs or chosen

    def callees(self, fn):
        key = id(fn)
        if key not in self._callee_cache:
            out = []
            seen = set()
            for call in fn.calls:
                for target in self.resolve_call(fn, call):
                    if id(target) not in seen:
                        seen.add(id(target))
                        out.append((target, call))
            self._callee_cache[key] = out
        return self._callee_cache[key]

    def reverse_edges(self):
        """callee id -> list of caller FuncRecs (definitions only)."""
        if self._reverse is None:
            rev = {}
            for f in self.defs:
                for target, _ in self.callees(f):
                    rev.setdefault(id(target), []).append(f)
            self._reverse = rev
        return self._reverse

    def reachable_with_parents(self, roots):
        """Multi-source forward BFS. Returns {id(fn): (fn, parent_fn)}
        where parent is the BFS predecessor (None for roots)."""
        visited = {}
        queue = []
        for r in roots:
            if id(r) not in visited:
                visited[id(r)] = (r, None)
                queue.append(r)
        qi = 0
        while qi < len(queue):
            f = queue[qi]
            qi += 1
            for target, _ in self.callees(f):
                if id(target) not in visited:
                    visited[id(target)] = (target, f)
                    queue.append(target)
        return visited

    def chain_to_root(self, visited, fn):
        """Qualified-name chain root -> ... -> fn from a BFS parent map."""
        chain = []
        cur = fn
        guard = 0
        while cur is not None and guard < 64:
            chain.append(cur.qname)
            cur = visited[id(cur)][1]
            guard += 1
        return list(reversed(chain))

    def ancestor_derives_seed(self, fn):
        """True when fn, or any transitive caller of fn, calls
        derive_seed()."""
        rev = self.reverse_edges()
        seen = {id(fn)}
        queue = [fn]
        qi = 0
        while qi < len(queue):
            f = queue[qi]
            qi += 1
            if f.derive_seed:
                return True
            for caller in rev.get(id(f), []):
                if id(caller) not in seen:
                    seen.add(id(caller))
                    queue.append(caller)
        return False

    def suppressed_at(self, path, line):
        tu = self.by_path.get(path)
        if not tu:
            return set()
        return tu.suppressed.get(line, set())


# ---------------------------------------------------------------------------
# Cache-aware construction.


def file_sha(root, relpath):
    with open(os.path.join(root, relpath), "rb") as f:
        return hashlib.sha256(f.read()).hexdigest()


def build_index(root, relpaths, cache_path=None):
    """Parse (or load from cache) every file and assemble the Index.

    Returns (index, stats) where stats = {'parsed': n, 'cached': m}.
    """
    signature = _cache_signature()
    cache = {}
    if cache_path and os.path.isfile(cache_path):
        try:
            with open(cache_path, encoding="utf-8") as f:
                data = json.load(f)
            if data.get("version") == signature:
                cache = data.get("files", {})
        except (json.JSONDecodeError, OSError, KeyError):
            cache = {}

    tus, parsed, hit = [], 0, 0
    new_cache = {}
    for rel in relpaths:
        try:
            sha = file_sha(root, rel)
        except OSError:
            continue
        entry = cache.get(rel)
        if entry is not None and entry.get("sha") == sha:
            tu = TU.from_dict(entry["tu"])
            hit += 1
        else:
            src = uwb_lint.load_source(root, rel)
            tu = parse_tu(src)
            tu.sha = sha
            parsed += 1
        tu.sha = sha
        tus.append(tu)
        new_cache[rel] = {"sha": sha, "tu": tu.to_dict()}

    if cache_path:
        try:
            os.makedirs(os.path.dirname(cache_path), exist_ok=True)
            tmp = cache_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump({"version": signature, "files": new_cache}, f)
            os.replace(tmp, cache_path)
        except OSError:
            pass

    return Index(tus), {"parsed": parsed, "cached": hit}


def main(argv=None):
    import argparse
    parser = argparse.ArgumentParser(
        prog="cpp_index",
        description="Dump the approximate C++ index (debugging aid).")
    parser.add_argument("--root", default=None)
    parser.add_argument("--function", help="print one function's record")
    parser.add_argument("--callers", help="print callers of a function")
    parser.add_argument("--callees", help="print resolved callees")
    args = parser.parse_args(argv)
    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    rels = uwb_lint.discover_files(root, [])
    index, stats = build_index(root, rels)
    print(f"{len(index.tus)} TUs, {len(index.defs)} function definitions "
          f"({stats['parsed']} parsed, {stats['cached']} cached)")
    for f in index.defs:
        if args.function and args.function in f.qname:
            print(f"{f.qname} @ {f.path}:{f.line}-{f.end_line} "
                  f"params[{f.params_min},{f.params_max}] "
                  f"hot={f.hot_path} derive_seed={f.derive_seed}")
        if args.callees and args.callees in f.qname:
            for target, call in index.callees(f):
                print(f"{f.qname}:{call.line} -> {target.qname}")
        if args.callers:
            for target, call in index.callees(f):
                if args.callers in target.qname:
                    print(f"{target.qname} <- {f.qname}:{call.line}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
