#!/usr/bin/env python3
"""flow_rules: call-graph-aware determinism rules over the cpp_index.

Four rule families, each flow-aware where the PR 5 per-file rules are
lexical (DESIGN.md Sect. 16 states each family's soundness/completeness
contract):

  rng-provenance   Every ``uwb::Rng`` construction in ``src/`` must be
                   transitively fed from ``derive_seed``: the constructor
                   argument mentions derive_seed directly, or the enclosing
                   function (or some transitive caller) calls derive_seed —
                   i.e. the seed can have arrived through parameters from a
                   derived stream.  Literal seeds are flagged outright.
  sim-host-io      No function reachable from the simulation layers
                   (src/sim, src/channel, src/dw1000, src/ranging,
                   src/fault) may call banned host-clock / filesystem /
                   environment APIs, even via helpers in src/common or
                   src/obs.  Findings anchor at the banned call site and
                   print the call chain from a simulation entry point.
  float-ordering   Reductions (std::accumulate family, += / *= inside a
                   range-for) whose iteration source resolves to an
                   unordered container or a pointer-keyed map — through
                   locals, class members (cross-TU), or the return type of
                   a called function — accumulate in platform-dependent
                   order.  Also: FMA-generating patterns (std::fma,
                   __builtin_fma, FP_CONTRACT pragmas) outside src/simd/,
                   where contraction differences break cross-level
                   bit-identity.
  hot-path-alloc   Functions annotated ``// uwb-hot-path`` must not reach —
                   directly or transitively — operator new, malloc-family
                   calls, make_unique/make_shared, std::function
                   construction, or push_back/emplace_back on a container
                   with no reserve()/resize() in the same function.  This
                   is the allocation ratchet for the ROADMAP's
                   zero-allocation refactors.

Suppression uses the existing per-site ``// uwb-lint: allow(<rule>)``
markers at the *anchor* line of the finding.
"""

from __future__ import annotations

import re
import sys
import os

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpp_index  # noqa: E402
from uwb_lint import Finding  # noqa: E402

FLOW_RULES = ("rng-provenance", "sim-host-io", "float-ordering",
              "hot-path-alloc")

_SIM_SCOPE = ("src/sim/", "src/channel/", "src/dw1000/", "src/ranging/",
              "src/fault/")
_RNG_SCOPE = ("src/",)
# The Rng wrapper itself (fork(), the engine) is the one place a raw seed
# value legitimately constructs an Rng.
_RNG_ALLOWED = ("src/common/random.",)
_SIMD_SCOPE = ("src/simd/",)

_NUMERIC_SEED_RE = re.compile(
    r"^[\s0-9a-fA-FxXbB'uUlL+\-*/%()]*$")


def _in_dirs(path, prefixes):
    return any(path.startswith(p) for p in prefixes)


def _chain_str(chain, limit=6):
    if len(chain) > limit:
        chain = chain[:2] + ["..."] + chain[-(limit - 3):]
    return " -> ".join(chain)


# ---------------------------------------------------------------------------
# rng-provenance


def check_rng_provenance(index):
    """Every Rng construction is transitively fed from derive_seed."""
    findings = []
    for fn in index.defs:
        if not _in_dirs(fn.path, _RNG_SCOPE):
            continue
        if _in_dirs(fn.path, _RNG_ALLOWED):
            continue
        for line, arg in fn.rng_ctors:
            if "derive_seed" in arg:
                continue
            if _NUMERIC_SEED_RE.match(arg) and re.search(r"\d", arg):
                findings.append(Finding(
                    fn.path, line, "rng-provenance",
                    f"Rng constructed from literal seed '{arg.strip()}' in "
                    f"{fn.qname}; derive the stream with "
                    "derive_seed(base, stream_id)"))
                continue
            if index.ancestor_derives_seed(fn):
                continue
            findings.append(Finding(
                fn.path, line, "rng-provenance",
                f"Rng constructed in {fn.qname} from seed '{arg.strip()}' "
                "with no derive_seed() anywhere in its caller chain; "
                "plumb a derive_seed(base, stream_id) stream through"))
    return findings


# ---------------------------------------------------------------------------
# sim-host-io


def check_sim_host_io(index):
    """No host clock/filesystem/env API reachable from simulation code."""
    roots = [f for f in index.defs if _in_dirs(f.path, _SIM_SCOPE)]
    visited = index.reachable_with_parents(roots)
    findings = []
    for fid, (fn, _parent) in visited.items():
        if not fn.banned_io:
            continue
        chain = index.chain_to_root(visited, fn)
        for line, api in fn.banned_io:
            if len(chain) > 1:
                via = f" (reachable from sim code: {_chain_str(chain)})"
            else:
                via = ""
            findings.append(Finding(
                fn.path, line, "sim-host-io",
                f"{api} in {fn.qname}, reachable from the simulation "
                f"layers{via}; simulated behaviour must depend only on "
                "SimTime and derived seeds"))
    return findings


# ---------------------------------------------------------------------------
# float-ordering


def _resolve_source_kind(index, fn, expr):
    """(kind, description) for a reduction's iteration source, or None.

    Resolution order: call return types, then locals, then class members
    (cross-TU via the class table), then file-level globals.
    """
    e = expr.strip().rstrip(";")
    m = re.match(r"(?:[\w.\->]*?)([A-Za-z_]\w*)\s*\(\s*\)$", e)
    if m:
        leaf = m.group(1)
        for cand in index.by_leaf.get(leaf, []):
            kind = cpp_index._container_kind(cand.return_type or "")
            if kind:
                return kind, f"return value of {cand.qname}()"
        return None
    leaf = re.split(r"\.|->", e)[-1]
    leaf = re.sub(r"[^\w].*$", "", leaf.strip())
    if not leaf:
        return None
    if leaf in fn.locals_unordered:
        return fn.locals_unordered[leaf], f"local '{leaf}'"
    if fn.parent_class:
        kind = index.class_member_kind(fn.parent_class, leaf)
        if kind:
            return kind, f"member '{fn.parent_class}::{leaf}'"
    tu = index.by_path.get(fn.path)
    if tu and leaf in tu.globals_unordered:
        return tu.globals_unordered[leaf], f"file-scope '{leaf}'"
    return None


_KIND_WHY = {
    "unordered": "an unordered container (platform-dependent order)",
    "ptr_key": "a pointer-keyed ordered map (address-dependent order)",
}


def check_float_ordering(index):
    """No float reduction over unordered sources; no FMA outside simd."""
    findings = []
    for fn in index.defs:
        for line, red_kind, source in fn.reductions:
            resolved = _resolve_source_kind(index, fn, source)
            if not resolved:
                continue
            kind, desc = resolved
            # A range-for over a *local* plain-unordered container is
            # already the per-file unordered-iteration rule's finding;
            # re-reporting it here would demand double suppressions.
            if (red_kind == "range_for" and kind == "unordered" and
                    desc.startswith("local ")):
                continue
            what = ("std::" + red_kind.split(":", 1)[1]
                    if red_kind.startswith("accumulate:")
                    else "accumulation in range-for")
            findings.append(Finding(
                fn.path, line, "float-ordering",
                f"{what} in {fn.qname} iterates {desc}, which is "
                f"{_KIND_WHY[kind]}; float reduction order changes the "
                "result bits — iterate a sorted/deterministic sequence"))
        if not _in_dirs(fn.path, _SIMD_SCOPE):
            for line, what in fn.fma:
                findings.append(Finding(
                    fn.path, line, "float-ordering",
                    f"{what} in {fn.qname} outside src/simd/: fused "
                    "multiply-add changes rounding vs the scalar "
                    "contract; keep FMA inside the dispatch-tested "
                    "kernels"))
    for tu in index.tus:
        if _in_dirs(tu.path, _SIMD_SCOPE):
            continue
        for line in tu.fma_pragmas:
            findings.append(Finding(
                tu.path, line, "float-ordering",
                "FP contraction pragma outside src/simd/ licenses the "
                "compiler to fuse multiplies and adds, changing result "
                "bits across compilers"))
    return findings


# ---------------------------------------------------------------------------
# hot-path-alloc


_ALLOC_WHY = {
    "new": "operator new allocates",
    "malloc": "malloc-family call allocates",
    "make": "factory allocates",
    "std_function": "std::function construction may heap-allocate "
                    "(type-erased target)",
    "push_back": "growth without a reserve() in the same function "
                 "may reallocate",
}


def check_hot_path_alloc(index):
    """uwb-hot-path functions must not reach allocation, even transitively."""
    roots = [f for f in index.defs if f.hot_path]
    if not roots:
        return []
    visited = index.reachable_with_parents(roots)
    findings = []
    for fid, (fn, _parent) in visited.items():
        if not fn.allocs:
            continue
        chain = index.chain_to_root(visited, fn)
        root_name = chain[0]
        for line, kind, detail in fn.allocs:
            if kind == "push_back" and detail in fn.reserves:
                continue
            if kind == "push_back":
                what = f"{detail}.push_back/emplace_back"
            else:
                what = detail
            via = (f" via {_chain_str(chain)}" if len(chain) > 1 else "")
            findings.append(Finding(
                fn.path, line, "hot-path-alloc",
                f"{what} in {fn.qname} is reachable from "
                f"// uwb-hot-path function {root_name}{via}: "
                f"{_ALLOC_WHY[kind]}"))
    return findings


# ---------------------------------------------------------------------------
# Driver entry.

_CHECKS = {
    "rng-provenance": check_rng_provenance,
    "sim-host-io": check_sim_host_io,
    "float-ordering": check_float_ordering,
    "hot-path-alloc": check_hot_path_alloc,
}


def run_flow_rules(index, rules=None):
    """Run the selected flow rules; suppression markers at the anchor line
    are honoured through the index's cached per-TU suppression maps."""
    rules = [r for r in (rules or FLOW_RULES) if r in _CHECKS]
    findings = []
    for name in rules:
        for f in _CHECKS[name](index):
            if f.rule in index.suppressed_at(f.path, f.line):
                continue
            findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings
