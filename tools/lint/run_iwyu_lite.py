#!/usr/bin/env python3
"""run_iwyu_lite: unused-header check driven by the cpp_index include graph.

For every ``#include "..."`` of a project header in ``src/``, check that the
including file actually references at least one symbol the header provides
(function/class/enum/alias/macro names harvested by the indexer).  A header
contributing no referenced symbol is probably a leftover include.

This is deliberately *lite*: no transitive-include analysis (a symbol
satisfied through a different header still counts as "used" here), no
system headers, and warn-only by default — exit status is 0 unless
``--strict`` is passed.  Known-intentional includes live in the committed
allowlist (``tools/lint/iwyu_allowlist.txt``): one ``includer:header``
pair per line, ``#`` comments allowed.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cpp_index  # noqa: E402
import uwb_lint  # noqa: E402

_ALLOWLIST = "iwyu_allowlist.txt"

# Headers that act through the preprocessor or provide idioms the symbol
# harvest cannot see (macros used object-like, operator overloads found by
# ADL, aggregate field names).
_GLOBAL_ALLOW = set()


def load_allowlist(path):
    pairs = set()
    if not os.path.isfile(path):
        return pairs
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            pairs.add(line)
    return pairs


def header_provides(index, header_rel):
    """Symbols a project header contributes: everything the indexer
    harvested, plus operator overloads collapsed to a wildcard."""
    tu = index.by_path.get(header_rel)
    if tu is None:
        return set(), False
    names = set(tu.provides)
    has_operators = any(n.startswith("operator") for n in names)
    return names, has_operators


def resolve_include(root, includer_rel, spec):
    """Map an include spec to a repo-relative path under src/, or None."""
    cand = os.path.join("src", spec)
    if os.path.isfile(os.path.join(root, cand)):
        return cand.replace(os.sep, "/")
    rel_dir = os.path.dirname(includer_rel)
    cand = os.path.normpath(os.path.join(rel_dir, spec))
    if os.path.isfile(os.path.join(root, cand)):
        return cand.replace(os.sep, "/")
    return None


def check_tree(root, index, allow):
    findings = []
    for tu in index.tus:
        if not tu.path.startswith("src/"):
            continue
        body = "\n".join(
            uwb_lint.load_source(root, tu.path).code_lines)
        idents = set(re.findall(r"[A-Za-z_]\w*", body))
        own_header = re.sub(r"\.(cpp|cc)$", ".hpp", tu.path)
        for spec in tu.includes:
            header_rel = resolve_include(root, tu.path, spec)
            if header_rel is None or header_rel == tu.path:
                continue  # system or generated header: out of scope
            if header_rel == own_header:
                continue  # a TU always keeps its own interface header
            key = f"{tu.path}:{spec}"
            if key in allow or spec in _GLOBAL_ALLOW:
                continue
            provided, has_operators = header_provides(index, header_rel)
            if not provided and not has_operators:
                continue  # header not indexed (asm, config): no signal
            if has_operators:
                continue  # operators are used infix; usage is invisible
            used = provided & idents
            if not used:
                findings.append(
                    (tu.path, spec,
                     f"{tu.path}: include \"{spec}\" contributes no "
                     f"referenced symbol (header defines e.g. "
                     f"{', '.join(sorted(provided)[:4])})"))
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="run_iwyu_lite",
        description="Flag src/ includes contributing no referenced symbol.")
    parser.add_argument("--root", default=None)
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on findings (default: warn only)")
    parser.add_argument("--allowlist", default=None,
                        help="override the committed allowlist path")
    args = parser.parse_args(argv)
    root = args.root or os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    allow_path = args.allowlist or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), _ALLOWLIST)
    allow = load_allowlist(allow_path)

    rels = uwb_lint.discover_files(root, [])
    index, _ = cpp_index.build_index(root, rels)
    findings = check_tree(root, index, allow)
    for _, _, msg in findings:
        print(f"iwyu-lite: {msg}")
    print(f"iwyu-lite: {len(findings)} unused-include candidate(s) "
          f"({'strict' if args.strict else 'warn-only'})",
          file=sys.stderr)
    return 1 if (findings and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
