#!/usr/bin/env python3
"""SARIF 2.1.0 writer for uwb_lint findings.

GitHub code-scanning ingests this via the upload-sarif action, turning the
`file:line: [rule] msg` job-log lines into inline PR annotations.
"""

from __future__ import annotations

import json

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_RULE_HELP = {
    "no-raw-random": "Route randomness through uwb::Rng / derive_seed.",
    "no-wall-clock-in-sim": "Simulation code reads SimTime, never the "
                            "host clock.",
    "unordered-iteration": "Iterate deterministic containers in "
                           "result-producing code.",
    "nodiscard-result": "Status/Result returns must be [[nodiscard]].",
    "magic-tick-constant": "Tick constants live in common/constants.hpp.",
    "raw-intrinsics": "SIMD intrinsics are confined to src/simd/.",
    "obs-event-literal": "Event names are string literals; kinds are "
                         "FrKind enum constants.",
    "rng-provenance": "Every Rng construction is transitively fed from "
                      "derive_seed along the call graph.",
    "sim-host-io": "No host clock/filesystem/env API is reachable from "
                   "the simulation layers.",
    "float-ordering": "No float reduction over unordered/pointer-keyed "
                      "sources; no FMA outside src/simd/.",
    "hot-path-alloc": "// uwb-hot-path functions must not reach heap "
                      "allocation, even transitively.",
}


def to_sarif(findings, tool_version="1.0"):
    """Build the SARIF log dict for a list of uwb_lint Finding objects."""
    rule_ids = sorted({f.rule for f in findings} | set(_RULE_HELP))
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "uwb_lint",
                    "informationUri":
                        "tools/lint/uwb_lint.py",
                    "version": tool_version,
                    "rules": [{
                        "id": rid,
                        "shortDescription": {
                            "text": _RULE_HELP.get(rid, rid)},
                        "defaultConfiguration": {"level": "error"},
                    } for rid in rule_ids],
                }
            },
            "results": [{
                "ruleId": f.rule,
                "ruleIndex": rule_index[f.rule],
                "level": "error",
                "message": {"text": f.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": 1,
                        },
                    }
                }],
            } for f in findings],
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
        }],
    }


def write_sarif(findings, path, tool_version="1.0"):
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_sarif(findings, tool_version), fh, indent=2,
                  sort_keys=True)
        fh.write("\n")
