#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by the obs TraceSink,
or (with --flight) a flight-recorder JSONL file.

Chrome-trace mode checks that the file parses, uses the trace_event "JSON
object format" with complete events (ph "X"), that every event carries the
fields the viewers need (name/ts/dur/pid/tid), and that the span nesting
recorded in args.depth is structurally consistent per thread: an event at
depth d+1 must lie within the time bounds of an enclosing event at depth d.

Flight mode (--flight) checks the JSONL export of obs::FlightRecorder:
every line is a JSON object with the required fields, the kind vocabulary
matches the C++ enum, per-chain simulated time is non-decreasing in file
order, every non-zero chain is rooted at a "tx" event, and the trailing
meta line's event count matches the line count.

Usage:
    check_trace.py TRACE.json [--min-events N] [--require-name NAME ...]
    check_trace.py RECORDING.jsonl --flight [--min-events N]
"""

from __future__ import annotations

import argparse
import json
import sys


def fail(message: str) -> "NoReturn":  # noqa: F821
    print(f"error: {message}", file=sys.stderr)
    sys.exit(1)


FLIGHT_KINDS = {"tx", "channel", "rx", "fault", "detect", "twr", "status",
                "attack", "verdict"}
FLIGHT_FIELDS = ("session", "round", "chain", "t_ps", "kind", "name")


def check_flight(path: str, min_events: int) -> int:
    try:
        with open(path) as f:
            lines = [line for line in f.read().splitlines() if line]
    except OSError as exc:
        fail(f"cannot read {path}: {exc}")
    if not lines:
        fail(f"{path} is empty")

    try:
        meta = json.loads(lines[-1])
    except json.JSONDecodeError as exc:
        fail(f"{path}: meta line is not valid JSON: {exc}")
    if meta.get("meta") != "uwb_flight_recorder":
        fail(f"{path}: last line is not the uwb_flight_recorder meta line")
    if "dropped_events" not in meta:
        fail(f"{path}: meta line is missing 'dropped_events'")
    if meta.get("events") != len(lines) - 1:
        fail(f"{path}: meta says {meta.get('events')} events, file has "
             f"{len(lines) - 1}")
    if len(lines) - 1 < min_events:
        fail(f"only {len(lines) - 1} event(s), expected >= {min_events}")

    # Per-chain bookkeeping: first-seen kind (must be "tx") and the last
    # simulated time (must never decrease in file order).
    chain_root_kind: dict = {}
    chain_last_t: dict = {}
    kinds_seen = set()
    for i, line in enumerate(lines[:-1]):
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"{path}:{i + 1}: not valid JSON: {exc}")
        if not isinstance(ev, dict):
            fail(f"{path}:{i + 1}: event must be an object")
        for field in FLIGHT_FIELDS:
            if field not in ev:
                fail(f"{path}:{i + 1}: missing '{field}': {ev!r}")
        if ev["kind"] not in FLIGHT_KINDS:
            fail(f"{path}:{i + 1}: unknown kind {ev['kind']!r} (expected "
                 f"one of {sorted(FLIGHT_KINDS)})")
        kinds_seen.add(ev["kind"])
        chain = int(ev["chain"], 16)
        if chain == 0:
            continue
        key = (ev["session"], chain)
        if key not in chain_root_kind:
            chain_root_kind[key] = ev["kind"]
            if ev["kind"] != "tx":
                fail(f"{path}:{i + 1}: chain {ev['chain']} starts with "
                     f"kind {ev['kind']!r}, expected its 'tx' root first")
        t = int(ev["t_ps"])
        if key in chain_last_t and t < chain_last_t[key]:
            fail(f"{path}:{i + 1}: chain {ev['chain']} time went backwards "
                 f"({chain_last_t[key]} -> {t} ps)")
        chain_last_t[key] = t

    print(f"{path}: {len(lines) - 1} events, {len(chain_root_kind)} "
          f"chain(s), kinds: {', '.join(sorted(kinds_seen))}, "
          f"dropped_events={meta['dropped_events']}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument("--min-events", type=int, default=1,
                        help="fail when fewer events are present")
    parser.add_argument("--require-name", action="append", default=[],
                        help="span name that must appear (repeatable)")
    parser.add_argument("--flight", action="store_true",
                        help="validate a flight-recorder JSONL file instead "
                             "of a Chrome trace")
    args = parser.parse_args()

    if args.flight:
        return check_flight(args.trace, args.min_events)

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except OSError as exc:
        fail(f"cannot read {args.trace}: {exc}")
    except json.JSONDecodeError as exc:
        fail(f"{args.trace} is not valid JSON: {exc}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a 'traceEvents' array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' must be an array")
    if len(events) < args.min_events:
        fail(f"only {len(events)} event(s), expected >= {args.min_events}")

    required_fields = ("name", "ph", "ts", "dur", "pid", "tid")
    for i, ev in enumerate(events):
        for field in required_fields:
            if field not in ev:
                fail(f"event {i} is missing '{field}': {ev!r}")
        if ev["ph"] != "X":
            fail(f"event {i} has ph={ev['ph']!r}, expected complete "
                 f"events ('X')")
        if float(ev["dur"]) < 0 or float(ev["ts"]) < 0:
            fail(f"event {i} has negative ts/dur: {ev!r}")

    names = {ev["name"] for ev in events}
    for name in args.require_name:
        if name not in names:
            fail(f"required span {name!r} not present (have: "
                 f"{', '.join(sorted(names))})")

    # Nesting consistency: within a tid, walk events in start order keeping
    # a stack of open spans; an event at depth d must fit inside the
    # currently open event at depth d-1.
    by_tid: dict = {}
    for ev in events:
        by_tid.setdefault(ev["tid"], []).append(ev)
    checked = 0
    for tid, evs in by_tid.items():
        evs.sort(key=lambda e: (float(e["ts"]),
                                -int(e.get("args", {}).get("depth", 0))))
        stack = []  # (depth, start, end)
        for ev in evs:
            depth = int(ev.get("args", {}).get("depth", 0))
            start = float(ev["ts"])
            end = start + float(ev["dur"])
            while stack and stack[-1][0] >= depth:
                stack.pop()
            if stack:
                parent_depth, parent_start, parent_end = stack[-1]
                if parent_depth == depth - 1:
                    # Tolerance: timestamps are rounded to 1 ns.
                    if start < parent_start - 0.001 or end > parent_end + 0.001:
                        fail(f"tid {tid}: span {ev['name']!r} "
                             f"[{start}, {end}] escapes its parent "
                             f"[{parent_start}, {parent_end}]")
                    checked += 1
            stack.append((depth, start, end))

    print(f"{args.trace}: {len(events)} events, {len(by_tid)} thread(s), "
          f"{len(names)} span name(s), {checked} nesting relations OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
