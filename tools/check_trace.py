#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by the obs TraceSink.

Checks that the file parses, uses the trace_event "JSON object format"
with complete events (ph "X"), that every event carries the fields the
viewers need (name/ts/dur/pid/tid), and that the span nesting recorded in
args.depth is structurally consistent per thread: an event at depth d+1
must lie within the time bounds of an enclosing event at depth d.

Usage:
    check_trace.py TRACE.json [--min-events N] [--require-name NAME ...]
"""

from __future__ import annotations

import argparse
import json
import sys


def fail(message: str) -> "NoReturn":  # noqa: F821
    print(f"error: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument("--min-events", type=int, default=1,
                        help="fail when fewer events are present")
    parser.add_argument("--require-name", action="append", default=[],
                        help="span name that must appear (repeatable)")
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except OSError as exc:
        fail(f"cannot read {args.trace}: {exc}")
    except json.JSONDecodeError as exc:
        fail(f"{args.trace} is not valid JSON: {exc}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a 'traceEvents' array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("'traceEvents' must be an array")
    if len(events) < args.min_events:
        fail(f"only {len(events)} event(s), expected >= {args.min_events}")

    required_fields = ("name", "ph", "ts", "dur", "pid", "tid")
    for i, ev in enumerate(events):
        for field in required_fields:
            if field not in ev:
                fail(f"event {i} is missing '{field}': {ev!r}")
        if ev["ph"] != "X":
            fail(f"event {i} has ph={ev['ph']!r}, expected complete "
                 f"events ('X')")
        if float(ev["dur"]) < 0 or float(ev["ts"]) < 0:
            fail(f"event {i} has negative ts/dur: {ev!r}")

    names = {ev["name"] for ev in events}
    for name in args.require_name:
        if name not in names:
            fail(f"required span {name!r} not present (have: "
                 f"{', '.join(sorted(names))})")

    # Nesting consistency: within a tid, walk events in start order keeping
    # a stack of open spans; an event at depth d must fit inside the
    # currently open event at depth d-1.
    by_tid: dict = {}
    for ev in events:
        by_tid.setdefault(ev["tid"], []).append(ev)
    checked = 0
    for tid, evs in by_tid.items():
        evs.sort(key=lambda e: (float(e["ts"]),
                                -int(e.get("args", {}).get("depth", 0))))
        stack = []  # (depth, start, end)
        for ev in evs:
            depth = int(ev.get("args", {}).get("depth", 0))
            start = float(ev["ts"])
            end = start + float(ev["dur"])
            while stack and stack[-1][0] >= depth:
                stack.pop()
            if stack:
                parent_depth, parent_start, parent_end = stack[-1]
                if parent_depth == depth - 1:
                    # Tolerance: timestamps are rounded to 1 ns.
                    if start < parent_start - 0.001 or end > parent_end + 0.001:
                        fail(f"tid {tid}: span {ev['name']!r} "
                             f"[{start}, {end}] escapes its parent "
                             f"[{parent_start}, {parent_end}]")
                    checked += 1
            stack.append((depth, start, end))

    print(f"{args.trace}: {len(events)} events, {len(by_tid)} thread(s), "
          f"{len(names)} span name(s), {checked} nesting relations OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
