#!/usr/bin/env python3
"""Bench-JSON regression and determinism gate for CI.

Default mode compares the timing fields of a freshly produced BENCH_*.json
against a committed baseline and flags slowdowns. Two schemas are
understood:

* google-benchmark output (``{"benchmarks": [{"name", "real_time", ...}]}``):
  every benchmark's ``real_time`` is compared by name.
* the repo's JsonReport schema (``{"bench", "params", "metrics",
  "wall_ms", "trials"}``): only the wall-clock fields are compared
  (``wall_ms`` and the ``mc_wall_ms`` metric when present) — the statistical
  metrics are covered by the determinism mode, not by this gate.

Unpinned CI machines are noisy and differ from the machine that produced
the baseline, so the tolerance is deliberately generous and two-staged:
ratios above ``--warn`` are reported but pass, ratios above ``--fail``
fail the job. A benchmark present in the fresh run but absent from the
baseline fails with an explicit message (commit a refreshed baseline);
benchmarks present only in the baseline are reported and ignored.

``--determinism`` mode instead diffs the ``metrics`` objects of two
JsonReport files (e.g. the same bench run with different ``--threads``)
and fails on any differing value outside the scheduling-dependent
prefixes ``mc_``, ``cache_``, and ``obs_`` (wall-clock and per-thread
bookkeeping, which legitimately vary).

``--require-key`` mode checks that the metrics of ``--current`` contain
every named key (repeat the flag; a trailing ``*`` matches a prefix). For
the JsonReport schema the keys are the ``metrics`` object's; for
google-benchmark output every numeric field of every benchmark entry is
exposed as ``<benchmark name>.<field>`` (so per-benchmark counters like
``BM_SearchSubtract_DetectBatch32.cirs_per_sec`` are addressable). CI uses
it to assert that the fault/resilience keys and the batched-detection
throughput counter actually made it into the bench JSON — a silent schema
regression would otherwise turn the gates into a vacuous pass.

Usage:
    check_bench_regression.py --baseline b.json --current c.json \
        [--warn 1.75] [--fail 3.0]
    check_bench_regression.py --determinism --baseline a.json --current b.json
    check_bench_regression.py --current c.json \
        --require-key fault_injected_total --require-key 'l30_n4_*'
"""

from __future__ import annotations

import argparse
import json
import sys

# Metrics whose values depend on thread count, scheduling, or wall time;
# the determinism diff ignores them.
NONDETERMINISTIC_PREFIXES = ("mc_", "cache_", "obs_")


def fatal(message: str) -> "NoReturn":  # noqa: F821 - py3.8 compat
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load_json(path: str) -> dict:
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as exc:
        fatal(f"cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        fatal(f"{path} is not valid JSON: {exc}")


def load_timings(path: str) -> dict[str, float]:
    """Extract {name: time} from either supported schema."""
    doc = load_json(path)
    timings: dict[str, float] = {}
    if "benchmarks" in doc:  # google-benchmark schema
        for bench in doc["benchmarks"]:
            if bench.get("run_type") == "aggregate":
                continue
            name = bench.get("name")
            time = bench.get("real_time")
            if name is None or time is None:
                fatal(f"{path}: benchmark entry without name/real_time: "
                      f"{bench!r}")
            timings[name] = float(time)
    elif "wall_ms" in doc or "metrics" in doc:  # JsonReport schema
        if "wall_ms" in doc:
            timings["wall_ms"] = float(doc["wall_ms"])
        mc_wall = doc.get("metrics", {}).get("mc_wall_ms")
        if mc_wall is not None:
            timings["mc_wall_ms"] = float(mc_wall)
    else:
        fatal(f"{path}: unrecognised schema (expected google-benchmark "
              f"output or a JsonReport with wall_ms/metrics)")
    return timings


def check_regression(args: argparse.Namespace) -> int:
    baseline = load_timings(args.baseline)
    current = load_timings(args.current)

    baseline_only = sorted(set(baseline) - set(current))
    current_only = sorted(set(current) - set(baseline))
    for name in baseline_only:
        print(f"NOTE   {name}: in baseline only (refresh the baseline?)")

    failures = []
    warnings = []
    for name in sorted(set(baseline) & set(current)):
        base, cur = baseline[name], current[name]
        if base <= 0.0:
            continue
        ratio = cur / base
        status = "ok"
        if ratio > args.fail:
            status = "FAIL"
            failures.append(name)
        elif ratio > args.warn:
            status = "WARN"
            warnings.append(name)
        print(f"{status:6s} {name}: {base:.4g} -> {cur:.4g}  ({ratio:.2f}x)")

    print(f"\n{len(failures)} failure(s), {len(warnings)} warning(s), "
          f"{len(set(baseline) & set(current))} compared "
          f"(warn >{args.warn}x, fail >{args.fail}x)")
    if current_only:
        print(f"baseline {args.baseline} is missing benchmark(s) present in "
              f"the current run: {', '.join(current_only)}\n"
              f"-> run the bench on the baseline machine and commit a "
              f"refreshed baseline file")
        return 1
    if failures:
        print("regression gate FAILED:", ", ".join(failures))
        return 1
    return 0


def check_determinism(args: argparse.Namespace) -> int:
    docs = [load_json(args.baseline), load_json(args.current)]
    for path, doc in zip((args.baseline, args.current), docs):
        if "metrics" not in doc:
            fatal(f"{path}: no 'metrics' object (determinism mode expects "
                  f"the JsonReport schema)")
    a, b = (doc["metrics"] for doc in docs)

    skipped = {name for name in set(a) | set(b)
               if name.startswith(NONDETERMINISTIC_PREFIXES)}
    checked = sorted((set(a) | set(b)) - skipped)
    diffs = []
    for name in checked:
        if name not in a or name not in b or a[name] != b[name]:
            diffs.append(name)
            print(f"DIFF   {name}: {a.get(name, '<absent>')} != "
                  f"{b.get(name, '<absent>')}")

    print(f"\n{len(checked)} metric(s) compared, {len(skipped)} skipped "
          f"({'/'.join(NONDETERMINISTIC_PREFIXES)} prefixes), "
          f"{len(diffs)} differ")
    if diffs:
        print("determinism check FAILED: metrics differ across runs that "
              "must be bit-identical")
        return 1
    return 0


def metrics_of(doc: dict, path: str) -> dict:
    """The key->value metrics view of either supported schema."""
    if "benchmarks" in doc:  # google-benchmark: flatten numeric fields
        metrics: dict = {}
        for bench in doc["benchmarks"]:
            if bench.get("run_type") == "aggregate":
                continue
            name = bench.get("name")
            if name is None:
                continue
            for key, value in bench.items():
                if isinstance(value, bool) or not isinstance(value,
                                                             (int, float)):
                    continue
                metrics[f"{name}.{key}"] = value
        return metrics
    metrics = doc.get("metrics")
    if metrics is None:
        fatal(f"{path}: no 'metrics' object (require-key mode expects the "
              f"JsonReport or google-benchmark schema)")
    return metrics


def check_required_keys(args: argparse.Namespace) -> int:
    metrics = metrics_of(load_json(args.current), args.current)

    missing = []
    for key in args.require_key:
        if key.endswith("*"):
            hits = [name for name in metrics if name.startswith(key[:-1])]
            ok = bool(hits)
            detail = f"{len(hits)} key(s) match" if ok else "no key matches"
        else:
            ok = key in metrics
            detail = f"= {metrics[key]}" if ok else "absent"
        print(f"{'ok' if ok else 'MISSING':8s} {key}: {detail}")
        if not ok:
            missing.append(key)

    print(f"\n{len(args.require_key)} key(s) required, {len(missing)} missing")
    if missing:
        print("required-key check FAILED:", ", ".join(missing))
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline")
    parser.add_argument("--current", required=True)
    parser.add_argument("--warn", type=float, default=1.75,
                        help="ratio above which to print a warning")
    parser.add_argument("--fail", type=float, default=3.0,
                        help="ratio above which to fail the run")
    parser.add_argument("--determinism", action="store_true",
                        help="diff the metrics objects for bit-identity "
                             "instead of gating wall times")
    parser.add_argument("--require-key", action="append", default=[],
                        metavar="KEY",
                        help="assert KEY exists in --current's metrics "
                             "(repeatable; trailing * matches a prefix)")
    args = parser.parse_args()

    if args.require_key:
        if args.determinism or args.baseline:
            fatal("--require-key is a standalone mode (no --baseline / "
                  "--determinism)")
        return check_required_keys(args)
    if args.baseline is None:
        fatal("--baseline is required outside --require-key mode")
    if args.determinism:
        return check_determinism(args)
    return check_regression(args)


if __name__ == "__main__":
    sys.exit(main())
