#!/usr/bin/env python3
"""Bench-JSON regression gate for CI.

Compares the timing fields of a freshly produced BENCH_*.json against a
committed baseline and flags slowdowns. Two schemas are understood:

* google-benchmark output (``{"benchmarks": [{"name", "real_time", ...}]}``):
  every benchmark's ``real_time`` is compared by name.
* the repo's JsonReport schema (``{"bench", "params", "metrics",
  "wall_ms", "trials"}``): only the wall-clock fields are compared
  (``wall_ms`` and the ``mc_wall_ms`` metric when present) — the statistical
  metrics are covered by the separate determinism check, not by this gate.

Unpinned CI machines are noisy and differ from the machine that produced
the baseline, so the tolerance is deliberately generous and two-staged:
ratios above ``--warn`` are reported but pass, ratios above ``--fail``
fail the job. Benchmarks present on only one side are reported and
ignored (renames should refresh the baseline).

Usage:
    check_bench_regression.py --baseline b.json --current c.json \
        [--warn 1.75] [--fail 3.0]
"""

from __future__ import annotations

import argparse
import json
import sys


def load_timings(path: str) -> dict[str, float]:
    """Extract {name: time} from either supported schema."""
    with open(path) as f:
        doc = json.load(f)
    timings: dict[str, float] = {}
    if "benchmarks" in doc:  # google-benchmark schema
        for bench in doc["benchmarks"]:
            if bench.get("run_type") == "aggregate":
                continue
            timings[bench["name"]] = float(bench["real_time"])
    else:  # JsonReport schema
        if "wall_ms" in doc:
            timings["wall_ms"] = float(doc["wall_ms"])
        mc_wall = doc.get("metrics", {}).get("mc_wall_ms")
        if mc_wall is not None:
            timings["mc_wall_ms"] = float(mc_wall)
    return timings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--warn", type=float, default=1.75,
                        help="ratio above which to print a warning")
    parser.add_argument("--fail", type=float, default=3.0,
                        help="ratio above which to fail the run")
    args = parser.parse_args()

    baseline = load_timings(args.baseline)
    current = load_timings(args.current)

    missing = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))
    for name in missing:
        print(f"NOTE   {name}: in baseline only (refresh the baseline?)")
    for name in added:
        print(f"NOTE   {name}: new benchmark, no baseline yet")

    failures = []
    warnings = []
    for name in sorted(set(baseline) & set(current)):
        base, cur = baseline[name], current[name]
        if base <= 0.0:
            continue
        ratio = cur / base
        status = "ok"
        if ratio > args.fail:
            status = "FAIL"
            failures.append(name)
        elif ratio > args.warn:
            status = "WARN"
            warnings.append(name)
        print(f"{status:6s} {name}: {base:.4g} -> {cur:.4g}  ({ratio:.2f}x)")

    print(f"\n{len(failures)} failure(s), {len(warnings)} warning(s), "
          f"{len(set(baseline) & set(current))} compared "
          f"(warn >{args.warn}x, fail >{args.fail}x)")
    if failures:
        print("regression gate FAILED:", ", ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
