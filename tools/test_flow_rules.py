#!/usr/bin/env python3
"""Self-tests for tools/lint/flow_rules.py.

Fixture corpus for the four flow-aware rule families.  Every family has
seeded violations that must be caught AND clean idioms that must be
accepted — the clean cases are what let the tree-wide run gate CI at
exit 0.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "lint"))

import cpp_index  # noqa: E402
import flow_rules  # noqa: E402
import uwb_lint  # noqa: E402


class FlowRuleTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, relpath, content):
        path = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            f.write(content)
        return relpath

    def run_rule(self, rule):
        rels = uwb_lint.discover_files(self.root, [])
        index, _ = cpp_index.build_index(self.root, rels)
        return flow_rules.run_flow_rules(index, [rule])

    def assert_sites(self, rule, sites):
        findings = self.run_rule(rule)
        self.assertEqual([(f.path, f.line) for f in findings], sites,
                         msg=f"{rule}: {[f.render() for f in findings]}")


class RngProvenanceTest(FlowRuleTest):
    def test_literal_seed_violation(self):
        self.write("src/sim/x.cpp", (
            "namespace uwb {\n"
            "void f() { Rng rng(12345); (void)rng; }\n"
            "}\n"))
        self.assert_sites("rng-provenance", [("src/sim/x.cpp", 2)])

    def test_underived_parameter_seed_violation(self):
        # No caller anywhere derives the seed: the chain is provably
        # disconnected from derive_seed.
        self.write("src/sim/x.cpp", (
            "namespace uwb {\n"
            "void f(std::uint64_t seed) { Rng rng(seed); (void)rng; }\n"
            "void entry() { f(42); }\n"
            "}\n"))
        self.assert_sites("rng-provenance", [("src/sim/x.cpp", 2)])

    def test_direct_derive_seed_clean(self):
        self.write("src/sim/x.cpp", (
            "namespace uwb {\n"
            "void f(std::uint64_t base) {\n"
            "  Rng rng(derive_seed(base, 3));\n"
            "  (void)rng;\n"
            "}\n"
            "}\n"))
        self.assert_sites("rng-provenance", [])

    def test_seed_derived_in_transitive_caller_clean(self):
        # The whole point of the call-graph upgrade over PR 5: the seed is
        # derived two frames up and flows down through parameters.
        self.write("src/sim/a.cpp", (
            "namespace uwb {\n"
            "void leafy(std::uint64_t seed) { Rng rng(seed); (void)rng; }\n"
            "void mid(std::uint64_t s) { leafy(s); }\n"
            "}\n"))
        self.write("src/sim/b.cpp", (
            "namespace uwb {\n"
            "void top(std::uint64_t base) { mid(derive_seed(base, 1)); }\n"
            "}\n"))
        self.assert_sites("rng-provenance", [])

    def test_rng_wrapper_itself_allowed(self):
        # Rng::fork() constructs from a drawn value; the wrapper is the
        # one legitimate raw-seed site.
        self.write("src/common/random.cpp", (
            "namespace uwb {\n"
            "Rng Rng::fork() { return Rng(engine_()); }\n"
            "}\n"))
        self.assert_sites("rng-provenance", [])

    def test_suppression_honoured(self):
        self.write("src/sim/x.cpp", (
            "namespace uwb {\n"
            "// uwb-lint: allow(rng-provenance)\n"
            "void f() { Rng rng(99); (void)rng; }\n"
            "}\n"))
        self.assert_sites("rng-provenance", [])


class SimHostIoTest(FlowRuleTest):
    def test_direct_fstream_in_sim_violation(self):
        self.write("src/sim/x.cpp", (
            "namespace uwb {\n"
            "void dump() { std::ofstream f(\"x.csv\"); (void)f; }\n"
            "}\n"))
        self.assert_sites("sim-host-io", [("src/sim/x.cpp", 2)])

    def test_banned_api_via_common_helper_violation_with_chain(self):
        # The helper lives outside the sim prefixes; only reachability
        # convicts it.  PR 5's per-file scoping could never see this.
        self.write("src/common/env.cpp", (
            "namespace uwb {\n"
            "const char* env() { return std::getenv(\"UWB_X\"); }\n"
            "}\n"))
        self.write("src/ranging/x.cpp", (
            "namespace uwb {\n"
            "void detect() { env(); }\n"
            "}\n"))
        findings = self.run_rule("sim-host-io")
        self.assertEqual([(f.path, f.line) for f in findings],
                         [("src/common/env.cpp", 2)])
        self.assertIn("uwb::detect", findings[0].message)
        self.assertIn("uwb::env", findings[0].message)

    def test_two_hop_chain_violation(self):
        self.write("src/common/a.cpp", (
            "namespace uwb {\n"
            "double now_s() {\n"
            "  return std::chrono::steady_clock::now().time_since_epoch()\n"
            "      .count() * 1e-9;\n"
            "}\n"
            "double stamp() { return now_s(); }\n"
            "}\n"))
        self.write("src/channel/x.cpp", (
            "namespace uwb {\n"
            "double realize() { return stamp(); }\n"
            "}\n"))
        self.assert_sites("sim-host-io", [("src/common/a.cpp", 3)])

    def test_helper_not_reachable_from_sim_clean(self):
        # The runner measures wall-clock progress; nothing in the sim
        # prefixes calls it, so it stays legal.
        self.write("src/runner/x.cpp", (
            "namespace uwb {\n"
            "double wall_s() {\n"
            "  return std::chrono::steady_clock::now().time_since_epoch()\n"
            "      .count() * 1e-9;\n"
            "}\n"
            "}\n"))
        self.write("src/sim/x.cpp", (
            "namespace uwb {\n"
            "void step() {}\n"
            "}\n"))
        self.assert_sites("sim-host-io", [])

    def test_suppression_at_banned_site(self):
        self.write("src/dw1000/x.cpp", (
            "namespace uwb {\n"
            "void import_trace() {\n"
            "  // offline import, runs before the simulated timeline\n"
            "  // uwb-lint: allow(sim-host-io)\n"
            "  std::ifstream in(\"trace.csv\");\n"
            "  (void)in;\n"
            "}\n"
            "}\n"))
        self.assert_sites("sim-host-io", [])


class FloatOrderingTest(FlowRuleTest):
    def test_accumulate_over_local_unordered_violation(self):
        self.write("src/loc/x.cpp", (
            "namespace uwb {\n"
            "double total() {\n"
            "  std::unordered_map<int, double> m;\n"
            "  return std::accumulate(m.begin(), m.end(), 0.0, add);\n"
            "}\n"
            "}\n"))
        self.assert_sites("float-ordering", [("src/loc/x.cpp", 4)])

    def test_accumulate_over_pointer_keyed_map_violation(self):
        # Ordered container, but pointer keys order by allocation address.
        self.write("src/loc/x.cpp", (
            "namespace uwb {\n"
            "struct Node;\n"
            "double total() {\n"
            "  std::map<Node*, double> m;\n"
            "  double s = 0.0;\n"
            "  for (const auto& kv : m) s += kv.second;\n"
            "  return s;\n"
            "}\n"
            "}\n"))
        self.assert_sites("float-ordering", [("src/loc/x.cpp", 6)])

    def test_range_for_reduction_over_member_unordered_cross_tu(self):
        # Container declared in the header, reduction in the .cpp — only
        # the cross-TU class table links them.
        self.write("src/obs/m.hpp", (
            "namespace uwb {\n"
            "class Registry {\n"
            " public:\n"
            "  double total();\n"
            " private:\n"
            "  std::unordered_map<int, double> shards_;\n"
            "};\n"
            "}\n"))
        self.write("src/obs/m.cpp", (
            "#include \"obs/m.hpp\"\n"
            "namespace uwb {\n"
            "double Registry::total() {\n"
            "  double s = 0.0;\n"
            "  for (const auto& kv : shards_) s += kv.second;\n"
            "  return s;\n"
            "}\n"
            "}\n"))
        self.assert_sites("float-ordering", [("src/obs/m.cpp", 5)])

    def test_accumulate_over_unordered_returning_call_violation(self):
        self.write("src/obs/x.cpp", (
            "namespace uwb {\n"
            "std::unordered_map<int, double> snapshot() { return {}; }\n"
            "double total() {\n"
            "  auto snap = snapshot();\n"
            "  return std::accumulate(snapshot().begin(), snapshot().end(),\n"
            "                         0.0, add);\n"
            "}\n"
            "}\n"))
        self.assert_sites("float-ordering", [("src/obs/x.cpp", 5)])

    def test_accumulate_over_vector_clean(self):
        self.write("src/loc/x.cpp", (
            "namespace uwb {\n"
            "double total(const std::vector<double>& v) {\n"
            "  return std::accumulate(v.begin(), v.end(), 0.0);\n"
            "}\n"
            "}\n"))
        self.assert_sites("float-ordering", [])

    def test_non_reducing_iteration_over_unordered_not_flagged_here(self):
        # Lookup-only iteration is the per-file unordered-iteration rule's
        # business; float-ordering fires only on reductions.
        self.write("src/loc/x.cpp", (
            "namespace uwb {\n"
            "int count() {\n"
            "  std::unordered_map<int, double> m;\n"
            "  int n = 0;\n"
            "  for (const auto& kv : m) { if (kv.second > 0) n = 1; }\n"
            "  return n;\n"
            "}\n"
            "}\n"))
        self.assert_sites("float-ordering", [])

    def test_fma_outside_simd_violation_inside_simd_clean(self):
        self.write("src/dsp/x.cpp", (
            "namespace uwb {\n"
            "double mac(double a, double b, double c) {\n"
            "  return std::fma(a, b, c);\n"
            "}\n"
            "}\n"))
        self.write("src/simd/k.cpp", (
            "namespace uwb::simd {\n"
            "double mac(double a, double b, double c) {\n"
            "  return std::fma(a, b, c);\n"
            "}\n"
            "}\n"))
        self.assert_sites("float-ordering", [("src/dsp/x.cpp", 3)])

    def test_fp_contract_pragma_outside_simd_violation(self):
        self.write("src/dsp/x.cpp", (
            "#pragma STDC FP_CONTRACT ON\n"
            "namespace uwb { double f(double a) { return a; } }\n"))
        self.assert_sites("float-ordering", [("src/dsp/x.cpp", 1)])


class HotPathAllocTest(FlowRuleTest):
    def test_direct_new_in_annotated_function_violation(self):
        self.write("src/ranging/x.cpp", (
            "namespace uwb {\n"
            "// uwb-hot-path: detector inner loop.\n"
            "void correlate() { double* p = new double[8]; delete[] p; }\n"
            "}\n"))
        self.assert_sites("hot-path-alloc", [("src/ranging/x.cpp", 3)])

    def test_transitive_push_back_without_reserve_violation(self):
        self.write("src/sim/x.cpp", (
            "namespace uwb {\n"
            "void grow(std::vector<int>& v) { v.push_back(1); }\n"
            "// uwb-hot-path: per-frame delivery.\n"
            "void deliver(std::vector<int>& v) { grow(v); }\n"
            "}\n"))
        findings = self.run_rule("hot-path-alloc")
        self.assertEqual([(f.path, f.line) for f in findings],
                         [("src/sim/x.cpp", 2)])
        self.assertIn("uwb::deliver", findings[0].message)

    def test_push_back_with_same_function_reserve_clean(self):
        self.write("src/sim/x.cpp", (
            "namespace uwb {\n"
            "// uwb-hot-path\n"
            "void fill(std::vector<int>& v, int n) {\n"
            "  v.reserve(static_cast<std::size_t>(n));\n"
            "  for (int i = 0; i < n; ++i) v.push_back(i);\n"
            "}\n"
            "}\n"))
        self.assert_sites("hot-path-alloc", [])

    def test_allocation_outside_hot_set_clean(self):
        self.write("src/sim/x.cpp", (
            "namespace uwb {\n"
            "void setup() { double* p = new double[8]; delete[] p; }\n"
            "// uwb-hot-path\n"
            "void deliver(double* p) { p[0] = 1.0; }\n"
            "}\n"))
        self.assert_sites("hot-path-alloc", [])

    def test_std_function_parameter_on_reachable_callee_violation(self):
        # Passing a lambda into a std::function parameter allocates the
        # type-erased target; the hazard anchors at the signature.
        self.write("src/sim/x.cpp", (
            "namespace uwb {\n"
            "void schedule(std::function<void()> cb) { cb(); }\n"
            "// uwb-hot-path\n"
            "void deliver() { schedule([] {}); }\n"
            "}\n"))
        self.assert_sites("hot-path-alloc", [("src/sim/x.cpp", 2)])

    def test_suppression_honoured(self):
        self.write("src/sim/x.cpp", (
            "namespace uwb {\n"
            "// uwb-hot-path\n"
            "void deliver(std::vector<int>& v) {\n"
            "  // steady-state capacity, ramp-only growth\n"
            "  v.push_back(1);  // uwb-lint: allow(hot-path-alloc)\n"
            "}\n"
            "}\n"))
        self.assert_sites("hot-path-alloc", [])


class DriverIntegrationTest(FlowRuleTest):
    def test_flow_rules_run_through_main_and_gate_exit_code(self):
        self.write("src/sim/x.cpp", (
            "namespace uwb {\n"
            "void f() { Rng rng(7); (void)rng; }\n"
            "}\n"))
        self.assertEqual(uwb_lint.main(
            ["--root", self.root, "--rule", "rng-provenance"]), 1)
        self.assertEqual(uwb_lint.main(
            ["--root", self.root, "--rule", "rng-provenance",
             "--no-flow"]), 0)

    def test_per_file_rules_unchanged_on_new_substrate(self):
        # PR 5 rules keep running alongside the flow rules in one pass.
        self.write("src/sim/x.cpp", (
            "namespace uwb {\n"
            "int bad() { return rand(); }\n"
            "}\n"))
        self.assertEqual(uwb_lint.main(["--root", self.root]), 1)


if __name__ == "__main__":
    unittest.main()
