#!/usr/bin/env bash
# Check-only clang-format gate for CI.
#
# Formats are enforced incrementally: only C++ files changed relative to the
# merge base (or an explicit file list) are checked, so adopting the gate
# does not require a mass reformat of the existing tree.
#
# Usage:
#   tools/check_format.sh [base-ref]        # diff against merge-base (default origin/main)
#   tools/check_format.sh --files a.cpp ... # explicit file list
#
# Exit 0 when every checked file is clean (or none to check), 1 otherwise.
set -u -o pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not installed; skipping" >&2
  exit 0
fi

files=()
if [[ "${1:-}" == "--files" ]]; then
  shift
  files=("$@")
else
  base_ref="${1:-origin/main}"
  if git rev-parse --verify --quiet "$base_ref" >/dev/null; then
    merge_base="$(git merge-base HEAD "$base_ref" 2>/dev/null || true)"
  else
    merge_base=""
  fi
  if [[ -z "$merge_base" ]]; then
    # Shallow clone or detached CI checkout: fall back to the last commit.
    merge_base="HEAD~1"
  fi
  while IFS= read -r f; do
    files+=("$f")
  done < <(git diff --name-only --diff-filter=ACMR "$merge_base"...HEAD -- \
             '*.cpp' '*.hpp' '*.h' '*.cc' 2>/dev/null ||
           git diff --name-only --diff-filter=ACMR "$merge_base" HEAD -- \
             '*.cpp' '*.hpp' '*.h' '*.cc')
fi

if [[ ${#files[@]} -eq 0 ]]; then
  echo "check_format: no changed C++ files to check"
  exit 0
fi

status=0
for f in "${files[@]}"; do
  [[ -f "$f" ]] || continue
  if ! clang-format --dry-run --Werror "$f" 2>/dev/null; then
    echo "check_format: $f needs formatting (clang-format -i $f)" >&2
    status=1
  fi
done

if [[ $status -eq 0 ]]; then
  echo "check_format: ${#files[@]} file(s) clean"
fi
exit $status
