#!/usr/bin/env python3
"""Post-mortem explain pipeline for flight-recorder recordings.

Takes the JSONL export of obs::FlightRecorder (--flight-record FILE on the
benches, or the flight_recorder_demo example) and reconstructs the causal
narrative behind any ranging outcome: which frames were transmitted, what
the channel did to each receiver's copy, which faults were injected, what
the detector decided, and how the session arrived at each responder's
final status.

Modes:
    explain_session.py R.jsonl --list
        Sessions, rounds, and per-responder statuses in the recording.

    explain_session.py R.jsonl --session HEX --round N --responder ID
        Causal narrative for one (session, round, responder) triple:
        the INIT chains of the round as the responder saw them, the
        responder's own RESP chains as the initiator saw them, the faults
        that struck the responder, and the final status event.

    explain_session.py R.jsonl --check-all
        For every non-ok responder status in the recording, require at
        least one explaining event (a fault naming the responder, a lost
        INIT copy at the responder, a lost/corrupted RESP at the
        initiator, an aborted delayed TX, or — for "suspect" statuses —
        an attack-detector verdict or injected-attack event naming the
        responder). Exits 1 listing any status with no explaining event
        chain — the obs-smoke and adversarial-stress CI gates.

Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import sys

INITIATOR = -1

# Events that terminate a frame copy's life short of a completed reception.
LOSS_NAMES = {
    "below_threshold", "culled", "rx_radio_off", "rx_late_for_batch",
    "rx_abandoned", "rx_decode_failed",
}


def fail(message: str) -> "NoReturn":  # noqa: F821
    print(f"error: {message}", file=sys.stderr)
    sys.exit(1)


def load(path: str):
    """Parse a recording into (events, meta); validates the meta line."""
    try:
        with open(path) as f:
            lines = [line for line in f.read().splitlines() if line]
    except OSError as exc:
        fail(f"cannot read {path}: {exc}")
    if not lines:
        fail(f"{path} is empty")
    try:
        meta = json.loads(lines[-1])
    except json.JSONDecodeError as exc:
        fail(f"{path}: meta line is not valid JSON: {exc}")
    if meta.get("meta") != "uwb_flight_recorder":
        fail(f"{path}: not a flight recording (missing meta line)")
    events = []
    for i, line in enumerate(lines[:-1]):
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"{path}:{i + 1}: not valid JSON: {exc}")
        ev["session"] = int(ev["session"], 16)
        ev["chain"] = int(ev["chain"], 16)
        events.append(ev)
    return events, meta


class Recording:
    """Index of a recording: chains with their roots, per-round events."""

    def __init__(self, events):
        self.events = events
        # chain id -> events in file (= causal) order
        self.chains = {}
        # (session, round) -> events
        self.rounds = {}
        for ev in events:
            if ev["chain"] != 0:
                self.chains.setdefault((ev["session"], ev["chain"]),
                                       []).append(ev)
            self.rounds.setdefault((ev["session"], ev["round"]),
                                   []).append(ev)

    def chain_root(self, session, chain):
        evs = self.chains.get((session, chain))
        return evs[0] if evs else None

    def round_chains(self, session, rnd):
        """Chain ids rooted (tx event) in this round, in tx order."""
        out = []
        for ev in self.rounds.get((session, rnd), []):
            if ev["kind"] == "tx" and ev["name"] == "frame_tx":
                out.append(ev["chain"])
        return out

    def statuses(self, session, rnd):
        """responder id -> (status string, attempts) for one round."""
        out = {}
        for ev in self.rounds.get((session, rnd), []):
            if ev["name"] == "responder_status":
                out[ev["node"]] = (ev.get("detail", "?"),
                                   int(ev.get("f", {}).get("attempts", 0)))
        return out


def fmt_time(t_ps: int) -> str:
    return f"{t_ps / 1e6:.3f} us"


def fmt_event(ev, indent="  ") -> str:
    parts = [f"{indent}[{fmt_time(ev['t_ps'])}] {ev['kind']}/{ev['name']}"]
    if "node" in ev:
        parts.append(f"node={ev['node']}")
    if "peer" in ev:
        parts.append(f"peer={ev['peer']}")
    if "detail" in ev:
        parts.append(f"detail={ev['detail']}")
    for key, value in ev.get("f", {}).items():
        parts.append(f"{key}={value:.6g}")
    return " ".join(parts)


def explaining_events(rec: Recording, session, rnd, responder):
    """Events that explain a non-ok status for `responder` in the round."""
    found = []
    round_events = rec.rounds.get((session, rnd), [])
    chain_ids = set(rec.round_chains(session, rnd))
    for ev in round_events:
        # Faults and aborted delayed transmissions striking the responder.
        if ev["kind"] == "fault" and ev.get("node") == responder:
            found.append(ev)
        # Attack-detector verdicts indicting the responder (a "suspect"
        # status), and the injected attacks behind them.
        elif (ev["kind"] in ("verdict", "attack")
              and ev.get("node") == responder):
            found.append(ev)
        elif ev["name"] == "delayed_tx_abort" and ev.get("node") == responder:
            found.append(ev)
        # A frame copy lost at the responder (it never heard the INIT) —
        # any chain of the round, since RESP copies from peers matter too.
        elif (ev["name"] in LOSS_NAMES and ev.get("node") == responder
              and ev["chain"] in chain_ids):
            found.append(ev)
    # The responder's own RESP chains: copies lost or corrupted anywhere
    # (most importantly at the initiator).
    for chain in chain_ids:
        root = rec.chain_root(session, chain)
        if root is None or root.get("node") != responder:
            continue
        for ev in rec.chains[(session, chain)]:
            if ev["name"] in LOSS_NAMES or ev["kind"] == "fault":
                found.append(ev)
            if (ev["name"] == "rx_batch_complete"
                    and ev.get("detail") == "crc_error"):
                found.append(ev)
    # CRC failure of the sync payload fails the whole batch: every in-batch
    # responder's crc_error status is explained by that one event.
    for ev in round_events:
        if (ev["name"] == "rx_batch_complete"
                and ev.get("detail") == "crc_error"
                and ev.get("node") == INITIATOR):
            found.append(ev)
        if (ev["name"] == "rx_decode_failed"
                and ev.get("node") == INITIATOR):
            found.append(ev)
    # Deduplicate, preserving order.
    seen, unique = set(), []
    for ev in found:
        key = id(ev)
        if key not in seen:
            seen.add(key)
            unique.append(ev)
    return unique


def cmd_list(rec: Recording) -> int:
    sessions = sorted({s for s, _ in rec.rounds})
    print(f"{len(sessions)} session(s)")
    for session in sessions:
        rounds = sorted(r for s, r in rec.rounds if s == session)
        print(f"session 0x{session:016x}: {len(rounds)} round(s)")
        for rnd in rounds:
            statuses = rec.statuses(session, rnd)
            summary = ", ".join(f"{node}:{status}"
                                for node, (status, _) in sorted(statuses.items()))
            print(f"  round {rnd}: {summary if summary else '(no statuses)'}")
    return 0


def cmd_explain(rec: Recording, session, rnd, responder) -> int:
    round_events = rec.rounds.get((session, rnd), [])
    if not round_events:
        fail(f"no events for session 0x{session:016x} round {rnd}")
    statuses = rec.statuses(session, rnd)
    if responder not in statuses:
        fail(f"no status for responder {responder} in round {rnd} "
             f"(have: {sorted(statuses)})")
    status, attempts = statuses[responder]

    print(f"session 0x{session:016x} round {rnd} responder {responder}: "
          f"{status} after {attempts} attempt(s)")

    chain_ids = rec.round_chains(session, rnd)
    init_chains = [c for c in chain_ids
                   if rec.chain_root(session, c)["node"] == INITIATOR]
    resp_chains = [c for c in chain_ids
                   if rec.chain_root(session, c)["node"] == responder]

    for i, chain in enumerate(init_chains):
        print(f"\nINIT chain 0x{chain:016x} (attempt {i + 1}):")
        for ev in rec.chains[(session, chain)]:
            if ev["kind"] == "tx" or ev.get("node") == responder:
                print(fmt_event(ev))

    if not resp_chains:
        print(f"\nresponder {responder} transmitted no RESP this round")
    for chain in resp_chains:
        print(f"\nRESP chain 0x{chain:016x} (responder {responder}):")
        for ev in rec.chains[(session, chain)]:
            print(fmt_event(ev))

    named = [ev for ev in round_events
             if ev.get("node") == responder and ev["chain"] == 0
             and ev["name"] != "responder_status"]
    if named:
        print(f"\nother events naming responder {responder}:")
        for ev in named:
            print(fmt_event(ev))

    if status != "ok":
        explain = explaining_events(rec, session, rnd, responder)
        print(f"\nexplanation ({len(explain)} event(s)):")
        for ev in explain:
            print(fmt_event(ev))
        if not explain:
            print("  NO EXPLAINING EVENT FOUND")
            return 1
    return 0


def cmd_check_all(rec: Recording) -> int:
    checked = 0
    unexplained = []
    for (session, rnd), events in sorted(rec.rounds.items()):
        for ev in events:
            if ev["name"] != "responder_status":
                continue
            status = ev.get("detail", "?")
            if status == "ok":
                continue
            checked += 1
            if not explaining_events(rec, session, rnd, ev["node"]):
                unexplained.append((session, rnd, ev["node"], status))
    if unexplained:
        print(f"{len(unexplained)} non-ok status(es) with no explaining "
              f"event chain:", file=sys.stderr)
        for session, rnd, node, status in unexplained:
            print(f"  session 0x{session:016x} round {rnd} "
                  f"responder {node}: {status}", file=sys.stderr)
        return 1
    print(f"all {checked} non-ok responder status(es) have an explaining "
          f"event chain")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("recording")
    parser.add_argument("--list", action="store_true",
                        help="list sessions, rounds, and statuses")
    parser.add_argument("--session", help="session id (hex)")
    parser.add_argument("--round", type=int, help="round index (0-based)")
    parser.add_argument("--responder", type=int, help="responder node id")
    parser.add_argument("--check-all", action="store_true",
                        help="require an explaining chain for every non-ok "
                             "status; exit 1 otherwise")
    args = parser.parse_args()

    events, meta = load(args.recording)
    if int(meta.get("dropped_events", 0)) > 0:
        print(f"warning: recording dropped {meta['dropped_events']} events "
              f"(ring overflow); narratives may be incomplete",
              file=sys.stderr)
    rec = Recording(events)

    if args.list:
        return cmd_list(rec)
    if args.check_all:
        return cmd_check_all(rec)
    if args.session is None or args.round is None or args.responder is None:
        parser.error("need --list, --check-all, or all of "
                     "--session/--round/--responder")
    return cmd_explain(rec, int(args.session, 16), args.round,
                       args.responder)


if __name__ == "__main__":
    sys.exit(main())
