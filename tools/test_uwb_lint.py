#!/usr/bin/env python3
"""Self-tests for tools/lint/uwb_lint.py.

Each rule gets at least one violating and one clean fixture, written into a
temporary repo-shaped tree so the path-scoping (allowlists, sim-layer
prefixes) is exercised exactly as in the real repo.  Run directly or via
`python3 -m unittest discover tools`.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "lint"))

import uwb_lint  # noqa: E402


class LintFixtureTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, relpath, content):
        path = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            f.write(content)
        return relpath

    def lint(self, relpath, rule):
        return uwb_lint.lint_file(self.root, relpath, [rule])

    def assert_findings(self, relpath, rule, lines):
        findings = self.lint(relpath, rule)
        self.assertEqual([f.line for f in findings], lines,
                         msg=f"{rule} on {relpath}: {findings}")
        for f in findings:
            self.assertEqual(f.rule, rule)

    # -- no-raw-random ----------------------------------------------------

    def test_raw_random_violation(self):
        p = self.write("src/sim/bad_random.cpp", (
            "#include <random>\n"
            "int entropy() {\n"
            "  std::random_device rd;\n"
            "  return rd() + rand();\n"
            "}\n"))
        self.assert_findings(p, "no-raw-random", [3, 4])

    def test_raw_random_clean_and_allowlisted(self):
        clean = self.write("src/sim/good_random.cpp", (
            "#include \"common/random.hpp\"\n"
            "double draw(uwb::Rng& rng) { return rng.normal(0.0, 1.0); }\n"))
        self.assert_findings(clean, "no-raw-random", [])
        # The seed plumbing itself may touch entropy sources.
        allowed = self.write("src/runner/seed_source.cpp", (
            "unsigned fallback_seed() { std::random_device rd; return rd(); }\n"))
        self.assert_findings(allowed, "no-raw-random", [])

    def test_raw_random_in_comment_or_string_ignored(self):
        p = self.write("src/sim/docs.cpp", (
            "// Never call rand() or std::random_device here.\n"
            "const char* kMsg = \"srand(time(0)) is banned\";\n"))
        self.assert_findings(p, "no-raw-random", [])

    def test_time_seed_violation(self):
        p = self.write("src/ranging/seeded.cpp",
                       "auto s = time(NULL);\n")
        self.assert_findings(p, "no-raw-random", [1])

    def test_fault_scope_fork_and_literal_seed_violation(self):
        p = self.write("src/fault/bad_attack.cpp", (
            "#include \"common/random.hpp\"\n"
            "void jam(uwb::Rng& parent) {\n"
            "  uwb::Rng child = parent.fork();\n"
            "  Rng rogue(12345);\n"
            "  (void)child; (void)rogue;\n"
            "}\n"))
        self.assert_findings(p, "no-raw-random", [3, 4])

    def test_fault_scope_injector_owned_streams_clean(self):
        p = self.write("src/fault/good_attack.cpp", (
            "#include \"common/random.hpp\"\n"
            "struct NodeState {\n"
            "  Rng rng;\n"
            "  explicit NodeState(std::uint64_t seed) : rng(seed) {}\n"
            "};\n"
            "void inject(std::uint64_t base, std::uint64_t chain) {\n"
            "  Rng rng(derive_seed(base, chain));\n"
            "  const std::uint64_t seed = derive_seed(base, 7);\n"
            "  NodeState state(seed);\n"
            "  (void)rng; (void)state;\n"
            "}\n"))
        self.assert_findings(p, "no-raw-random", [])

    def test_fork_outside_fault_scope_allowed(self):
        p = self.write("src/sim/forker.cpp", (
            "void split(uwb::Rng& parent) { auto child = parent.fork(); "
            "(void)child; }\n"))
        self.assert_findings(p, "no-raw-random", [])

    # -- no-wall-clock-in-sim ---------------------------------------------

    def test_wall_clock_violation(self):
        p = self.write("src/sim/bad_clock.cpp", (
            "#include <chrono>\n"
            "auto t = std::chrono::steady_clock::now();\n"))
        self.assert_findings(p, "no-wall-clock-in-sim", [2])

    def test_wall_clock_outside_sim_scope_allowed(self):
        # The obs layer measures real latency; host clocks are its job.
        p = self.write("src/obs/spans.cpp",
                       "auto t = std::chrono::steady_clock::now();\n")
        self.assert_findings(p, "no-wall-clock-in-sim", [])

    def test_sim_time_clean(self):
        p = self.write("src/sim/good_clock.cpp",
                       "uwb::SimTime now = sim.now();\n")
        self.assert_findings(p, "no-wall-clock-in-sim", [])

    # -- unordered-iteration ----------------------------------------------

    def test_unordered_iteration_violation(self):
        p = self.write("src/ranging/bad_iter.cpp", (
            "#include <unordered_map>\n"
            "std::unordered_map<int, double> cache;\n"
            "double total() {\n"
            "  double sum = 0.0;\n"
            "  for (const auto& kv : cache) sum += kv.second;\n"
            "  return sum;\n"
            "}\n"))
        self.assert_findings(p, "unordered-iteration", [5])

    def test_unordered_lookup_clean(self):
        p = self.write("src/ranging/good_iter.cpp", (
            "#include <map>\n"
            "#include <unordered_map>\n"
            "std::unordered_map<int, double> cache;\n"
            "std::map<int, double> ordered;\n"
            "double get(int k) { return cache.at(k); }\n"
            "double total() {\n"
            "  double sum = 0.0;\n"
            "  for (const auto& kv : ordered) sum += kv.second;\n"
            "  return sum;\n"
            "}\n"))
        self.assert_findings(p, "unordered-iteration", [])

    # -- nodiscard-result -------------------------------------------------

    def test_nodiscard_violation(self):
        p = self.write("src/ranging/bad_api.hpp", (
            "#include \"common/result.hpp\"\n"
            "namespace uwb {\n"
            "Status connect(int node);\n"
            "Result<double> measure(int node);\n"
            "}\n"))
        self.assert_findings(p, "nodiscard-result", [3, 4])

    def test_nodiscard_clean(self):
        p = self.write("src/ranging/good_api.hpp", (
            "#include \"common/result.hpp\"\n"
            "namespace uwb {\n"
            "[[nodiscard]] Status connect(int node);\n"
            "[[nodiscard]] static Result<double> measure(int node);\n"
            "[[nodiscard]] Result<std::vector<int>> peers();\n"
            "}\n"))
        self.assert_findings(p, "nodiscard-result", [])

    def test_nodiscard_on_previous_line(self):
        p = self.write("src/ranging/wrapped_api.hpp", (
            "[[nodiscard]]\n"
            "Status connect(int node);\n"))
        self.assert_findings(p, "nodiscard-result", [])

    def test_nodiscard_ignores_variables_and_cpp(self):
        # A Status variable is not a declaration; .cpp definitions need not
        # repeat the attribute.
        var = self.write("src/ranging/vars.hpp",
                         "Status last_status;\n")
        self.assert_findings(var, "nodiscard-result", [])
        impl = self.write("src/ranging/impl.cpp",
                          "Status connect(int node) { return {}; }\n")
        self.assert_findings(impl, "nodiscard-result", [])

    # -- magic-tick-constant ----------------------------------------------

    def test_magic_constant_violation(self):
        p = self.write("src/dw1000/bad_ticks.cpp", (
            "double to_s(long long t) { return t * 15.65e-12; }\n"
            "double tap_s(int i) { return i * 1.0016e-9; }\n"))
        self.assert_findings(p, "magic-tick-constant", [1, 2])

    def test_magic_constant_allowlisted_and_clean(self):
        allowed = self.write("src/common/constants.hpp",
                             "inline constexpr double dw_tick_s = 15.65e-12;\n")
        self.assert_findings(allowed, "magic-tick-constant", [])
        clean = self.write("src/dw1000/good_ticks.cpp",
                           "double to_s(long long t) { return t * k::dw_tick_s; }\n")
        self.assert_findings(clean, "magic-tick-constant", [])

    def test_magic_constant_in_comment_ignored(self):
        p = self.write("src/dw1000/doc_ticks.cpp",
                       "// One tick is 15.65e-12 s.\nint x = 0;\n")
        self.assert_findings(p, "magic-tick-constant", [])

    # -- raw-intrinsics ---------------------------------------------------

    def test_raw_intrinsics_violation(self):
        p = self.write("src/dsp/bad_simd.cpp", (
            "#include <immintrin.h>\n"
            "void f(double* d) {\n"
            "  __m256d v = _mm256_loadu_pd(d);\n"
            "  _mm256_storeu_pd(d, _mm256_add_pd(v, v));\n"
            "}\n"))
        self.assert_findings(p, "raw-intrinsics", [1, 3, 4])

    def test_raw_intrinsics_quoted_include_and_neon(self):
        p = self.write("src/ranging/bad_neon.cpp", (
            "#include \"arm_neon.h\"\n"
            "void f(float* d) { float32x4_t v = vld1q_f32(d); }\n"))
        self.assert_findings(p, "raw-intrinsics", [1, 2])

    def test_raw_intrinsics_allowed_in_simd_dir(self):
        p = self.write("src/simd/kernels_avx2.cpp", (
            "#include <immintrin.h>\n"
            "__m256d dbl(__m256d v) { return _mm256_add_pd(v, v); }\n"))
        self.assert_findings(p, "raw-intrinsics", [])

    def test_raw_intrinsics_comment_and_lookalikes_clean(self):
        p = self.write("src/dsp/good_simd.cpp", (
            "// Vectorized via _mm256_mul_pd in src/simd (see immintrin.h).\n"
            "#include \"simd/simd.hpp\"\n"
            "void f(double* d) { uwb::simd::scale(d, 2.0, 8); }\n"))
        self.assert_findings(p, "raw-intrinsics", [])

    # -- obs-event-literal ------------------------------------------------

    def test_obs_event_literal_clean_multiline(self):
        p = self.write("src/sim/good_event.cpp", (
            "void f(int rx, double amp) {\n"
            "  UWB_FR_EVENT(.kind = obs::FrKind::kChannel,\n"
            "               .name = \"delivered\", .node = rx,\n"
            "               .v0 = {\"first_path_amp\", amp});\n"
            "  UWB_OBS_COUNT(\"medium_frames_delivered\", 1);\n"
            "}\n"))
        self.assert_findings(p, "obs-event-literal", [])

    def test_obs_event_computed_name_violation(self):
        p = self.write("src/sim/bad_event.cpp", (
            "void f(const char* what) {\n"
            "  UWB_FR_EVENT(.kind = obs::FrKind::kRx, .name = what);\n"
            "}\n"))
        self.assert_findings(p, "obs-event-literal", [2])

    def test_obs_event_missing_kind_violation(self):
        p = self.write("src/sim/bad_event2.cpp", (
            "void f(uwb::obs::FrKind k) {\n"
            "  UWB_FR_EVENT(.kind = k, .name = \"delivered\");\n"
            "}\n"))
        self.assert_findings(p, "obs-event-literal", [2])

    def test_obs_metric_computed_name_violation(self):
        p = self.write("src/sim/bad_metric.cpp", (
            "void f(const std::string& name) {\n"
            "  UWB_OBS_COUNT(name.c_str(), 1);\n"
            "  UWB_OBS_HISTOGRAM(name, buckets(), 2.0);\n"
            "}\n"))
        self.assert_findings(p, "obs-event-literal", [2, 3])

    def test_obs_event_paren_in_string_arg(self):
        # A ')' inside a literal must not close the argument list early.
        p = self.write("src/sim/paren_event.cpp", (
            "void f(int rx) {\n"
            "  UWB_FR_EVENT(.kind = obs::FrKind::kRx,\n"
            "               .name = \"rx_(weird)\",\n"
            "               .node = rx);\n"
            "}\n"))
        self.assert_findings(p, "obs-event-literal", [])

    def test_obs_event_literal_allowed_in_obs_dir(self):
        # The macro definitions forward their parameters; not call sites.
        p = self.write("src/obs/flight_recorder.hpp", (
            "#define UWB_FR_EVENT(...) record(FrEvent{__VA_ARGS__})\n"
            "void self_test(const char* n) { UWB_OBS_COUNT(n, 1); }\n"))
        self.assert_findings(p, "obs-event-literal", [])

    # -- suppression ------------------------------------------------------

    def test_inline_suppression(self):
        p = self.write("src/sim/suppressed.cpp", (
            "auto t = std::chrono::steady_clock::now();"
            "  // uwb-lint: allow(no-wall-clock-in-sim)\n"))
        self.assert_findings(p, "no-wall-clock-in-sim", [])

    def test_preceding_line_suppression(self):
        p = self.write("src/sim/suppressed2.cpp", (
            "// uwb-lint: allow(no-wall-clock-in-sim)\n"
            "auto t = std::chrono::steady_clock::now();\n"))
        self.assert_findings(p, "no-wall-clock-in-sim", [])

    def test_suppression_is_rule_specific(self):
        p = self.write("src/sim/suppressed3.cpp", (
            "// uwb-lint: allow(no-raw-random)\n"
            "auto t = std::chrono::steady_clock::now();\n"))
        self.assert_findings(p, "no-wall-clock-in-sim", [2])

    # -- raw string literals ----------------------------------------------

    def test_raw_string_masking_fixed(self):
        # A quote inside a raw string used to leave the stripper inside a
        # "string" until the next quote, blanking real code after it.
        p = self.write("src/sim/raw1.cpp", (
            "const char* a = R\"(quote: \")\";\n"
            "int bad = rand();\n"))
        self.assert_findings(p, "no-raw-random", [2])

    def test_raw_string_false_positive_fixed(self):
        # ...and, symmetrically, could leave real string contents exposed
        # as if they were code.
        p = self.write("src/sim/raw2.cpp", (
            "const char* a = u8R\"(quote: \")\";\n"
            "const char* b = \"std::random_device in prose\";\n"))
        self.assert_findings(p, "no-raw-random", [])

    def test_raw_string_with_delimiter(self):
        p = self.write("src/sim/raw3.cpp", (
            "const char* a = R\"x(contains )\" and rand() text)x\";\n"
            "int ok = 0;\n"))
        self.assert_findings(p, "no-raw-random", [])

    def test_multiline_raw_string_preserves_line_numbers(self):
        p = self.write("src/sim/raw4.cpp", (
            "const char* doc = R\"(line one\n"
            "rand() inside the raw string\n"
            "last raw line)\";\n"
            "int bad = rand();\n"))
        self.assert_findings(p, "no-raw-random", [4])

    def test_identifier_ending_in_r_is_not_a_raw_string_prefix(self):
        # FOOBAR"..." is a macro-token paste or user literal, not R"...".
        p = self.write("src/sim/raw5.cpp", (
            "int x = FOOBAR\"(text\";\n"
            "int bad = rand();\n"))
        self.assert_findings(p, "no-raw-random", [2])

    def test_unterminated_string_stops_at_newline(self):
        # A lone quote (e.g. inside an #error) must not swallow the rest
        # of the file and mask later findings.
        p = self.write("src/sim/raw6.cpp", (
            "#error missing \" quote\n"
            "int bad = rand();\n"))
        self.assert_findings(p, "no-raw-random", [2])

    def test_apostrophe_in_preprocessor_text_is_not_a_char_literal(self):
        p = self.write("src/sim/raw7.cpp", (
            "#error can't happen\n"
            "int bad = rand();\n"))
        self.assert_findings(p, "no-raw-random", [2])

    # -- driver behaviour -------------------------------------------------

    def test_main_exit_codes(self):
        self.write("src/sim/bad.cpp", "int x = rand();\n")
        self.assertEqual(uwb_lint.main(["--root", self.root]), 1)
        os.remove(os.path.join(self.root, "src/sim/bad.cpp"))
        self.write("src/sim/good.cpp", "int x = 0;\n")
        self.assertEqual(uwb_lint.main(["--root", self.root]), 0)

    def test_unknown_rule_is_usage_error(self):
        self.assertEqual(
            uwb_lint.main(["--root", self.root, "--rule", "no-such-rule"]), 2)


class SarifOutputTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, relpath, content):
        path = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            f.write(content)
        return relpath

    def test_sarif_file_written_with_findings(self):
        import json
        self.write("src/sim/bad.cpp", "int x = rand();\n")
        out = os.path.join(self.root, "lint.sarif")
        rc = uwb_lint.main(["--root", self.root, "--sarif", out])
        self.assertEqual(rc, 1)
        with open(out) as f:
            log = json.load(f)
        self.assertEqual(log["version"], "2.1.0")
        results = log["runs"][0]["results"]
        self.assertEqual(len(results), 1)
        self.assertEqual(results[0]["ruleId"], "no-raw-random")
        loc = results[0]["locations"][0]["physicalLocation"]
        self.assertEqual(loc["artifactLocation"]["uri"], "src/sim/bad.cpp")
        self.assertEqual(loc["region"]["startLine"], 1)
        rule_ids = [r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]]
        self.assertIn("rng-provenance", rule_ids)

    def test_sarif_written_empty_on_clean_tree(self):
        import json
        self.write("src/sim/good.cpp", "int x = 0;\n")
        out = os.path.join(self.root, "lint.sarif")
        rc = uwb_lint.main(["--root", self.root, "--sarif", out])
        self.assertEqual(rc, 0)
        with open(out) as f:
            log = json.load(f)
        self.assertEqual(log["runs"][0]["results"], [])


class ChangedOnlyTest(unittest.TestCase):
    """--changed-only filters *reported* findings to changed/untracked
    files while the flow analysis still spans the whole tree."""

    def setUp(self):
        import subprocess
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name
        env = dict(os.environ,
                   GIT_AUTHOR_NAME="t", GIT_AUTHOR_EMAIL="t@t",
                   GIT_COMMITTER_NAME="t", GIT_COMMITTER_EMAIL="t@t")
        self.env = env

        def git(*args):
            subprocess.run(["git", *args], cwd=self.root, env=env,
                           check=True, capture_output=True)
        self.git = git
        git("init", "-q")

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, relpath, content):
        path = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            f.write(content)
        return relpath

    def test_findings_limited_to_changed_files(self):
        self.write("src/sim/old.cpp", "int a = rand();\n")
        self.git("add", "-A")
        self.git("commit", "-q", "-m", "base")
        self.write("src/sim/new.cpp", "int b = rand();\n")
        # Full run sees both; changed-only reports just the new file.
        self.assertEqual(uwb_lint.main(["--root", self.root]), 1)
        import io
        from contextlib import redirect_stdout
        buf = io.StringIO()
        with redirect_stdout(buf):
            rc = uwb_lint.main(
                ["--root", self.root, "--changed-only", "HEAD"])
        self.assertEqual(rc, 1)
        out = buf.getvalue()
        self.assertIn("src/sim/new.cpp", out)
        self.assertNotIn("src/sim/old.cpp", out)

    def test_flow_analysis_still_sees_unchanged_callers(self):
        # The derive_seed provenance for the *changed* file lives in an
        # unchanged caller: the full-tree index must still clear it.
        self.write("src/sim/top.cpp", (
            "namespace uwb {\n"
            "void leafy(std::uint64_t seed);\n"
            "void top(std::uint64_t b) { leafy(derive_seed(b, 1)); }\n"
            "}\n"))
        self.git("add", "-A")
        self.git("commit", "-q", "-m", "base")
        self.write("src/sim/leaf.cpp", (
            "namespace uwb {\n"
            "void leafy(std::uint64_t seed) { Rng r(seed); (void)r; }\n"
            "}\n"))
        rc = uwb_lint.main(
            ["--root", self.root, "--changed-only", "HEAD",
             "--rule", "rng-provenance"])
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main()
