# Empty dependencies file for nlos_demo.
# This may be replaced when dependencies are built.
