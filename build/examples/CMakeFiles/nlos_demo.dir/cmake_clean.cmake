file(REMOVE_RECURSE
  "CMakeFiles/nlos_demo.dir/nlos_demo.cpp.o"
  "CMakeFiles/nlos_demo.dir/nlos_demo.cpp.o.d"
  "nlos_demo"
  "nlos_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlos_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
