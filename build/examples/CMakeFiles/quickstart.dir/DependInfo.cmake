
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/loc/CMakeFiles/uwb_loc.dir/DependInfo.cmake"
  "/root/repo/build/src/ranging/CMakeFiles/uwb_ranging.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uwb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/uwb_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/uwb_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/dw1000/CMakeFiles/uwb_dw1000.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/uwb_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/uwb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
