# Empty compiler generated dependencies file for office_localization.
# This may be replaced when dependencies are built.
