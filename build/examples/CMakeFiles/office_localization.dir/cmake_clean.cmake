file(REMOVE_RECURSE
  "CMakeFiles/office_localization.dir/office_localization.cpp.o"
  "CMakeFiles/office_localization.dir/office_localization.cpp.o.d"
  "office_localization"
  "office_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/office_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
