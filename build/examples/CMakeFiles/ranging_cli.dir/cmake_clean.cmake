file(REMOVE_RECURSE
  "CMakeFiles/ranging_cli.dir/ranging_cli.cpp.o"
  "CMakeFiles/ranging_cli.dir/ranging_cli.cpp.o.d"
  "ranging_cli"
  "ranging_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranging_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
