# Empty dependencies file for ranging_cli.
# This may be replaced when dependencies are built.
