file(REMOVE_RECURSE
  "../bench/bench_fig7_overlap"
  "../bench/bench_fig7_overlap.pdb"
  "CMakeFiles/bench_fig7_overlap.dir/bench_fig7_overlap.cpp.o"
  "CMakeFiles/bench_fig7_overlap.dir/bench_fig7_overlap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
