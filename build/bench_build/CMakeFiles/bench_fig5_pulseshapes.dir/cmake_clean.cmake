file(REMOVE_RECURSE
  "../bench/bench_fig5_pulseshapes"
  "../bench/bench_fig5_pulseshapes.pdb"
  "CMakeFiles/bench_fig5_pulseshapes.dir/bench_fig5_pulseshapes.cpp.o"
  "CMakeFiles/bench_fig5_pulseshapes.dir/bench_fig5_pulseshapes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_pulseshapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
