# Empty dependencies file for bench_fig5_pulseshapes.
# This may be replaced when dependencies are built.
