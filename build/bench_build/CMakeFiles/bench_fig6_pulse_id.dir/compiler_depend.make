# Empty compiler generated dependencies file for bench_fig6_pulse_id.
# This may be replaced when dependencies are built.
