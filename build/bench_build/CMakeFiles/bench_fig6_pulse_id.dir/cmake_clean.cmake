file(REMOVE_RECURSE
  "../bench/bench_fig6_pulse_id"
  "../bench/bench_fig6_pulse_id.pdb"
  "CMakeFiles/bench_fig6_pulse_id.dir/bench_fig6_pulse_id.cpp.o"
  "CMakeFiles/bench_fig6_pulse_id.dir/bench_fig6_pulse_id.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_pulse_id.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
