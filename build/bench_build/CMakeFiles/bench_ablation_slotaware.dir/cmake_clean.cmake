file(REMOVE_RECURSE
  "../bench/bench_ablation_slotaware"
  "../bench/bench_ablation_slotaware.pdb"
  "CMakeFiles/bench_ablation_slotaware.dir/bench_ablation_slotaware.cpp.o"
  "CMakeFiles/bench_ablation_slotaware.dir/bench_ablation_slotaware.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_slotaware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
