# Empty dependencies file for bench_ablation_slotaware.
# This may be replaced when dependencies are built.
