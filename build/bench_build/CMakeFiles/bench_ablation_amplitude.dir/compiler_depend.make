# Empty compiler generated dependencies file for bench_ablation_amplitude.
# This may be replaced when dependencies are built.
