file(REMOVE_RECURSE
  "../bench/bench_sect5_twr_precision"
  "../bench/bench_sect5_twr_precision.pdb"
  "CMakeFiles/bench_sect5_twr_precision.dir/bench_sect5_twr_precision.cpp.o"
  "CMakeFiles/bench_sect5_twr_precision.dir/bench_sect5_twr_precision.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sect5_twr_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
