# Empty compiler generated dependencies file for bench_sect5_twr_precision.
# This may be replaced when dependencies are built.
