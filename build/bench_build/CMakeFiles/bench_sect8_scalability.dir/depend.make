# Empty dependencies file for bench_sect8_scalability.
# This may be replaced when dependencies are built.
