file(REMOVE_RECURSE
  "../bench/bench_sect8_scalability"
  "../bench/bench_sect8_scalability.pdb"
  "CMakeFiles/bench_sect8_scalability.dir/bench_sect8_scalability.cpp.o"
  "CMakeFiles/bench_sect8_scalability.dir/bench_sect8_scalability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sect8_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
