# Empty dependencies file for bench_ablation_dstwr.
# This may be replaced when dependencies are built.
