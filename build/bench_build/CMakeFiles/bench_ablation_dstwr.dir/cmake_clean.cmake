file(REMOVE_RECURSE
  "../bench/bench_ablation_dstwr"
  "../bench/bench_ablation_dstwr.pdb"
  "CMakeFiles/bench_ablation_dstwr.dir/bench_ablation_dstwr.cpp.o"
  "CMakeFiles/bench_ablation_dstwr.dir/bench_ablation_dstwr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dstwr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
