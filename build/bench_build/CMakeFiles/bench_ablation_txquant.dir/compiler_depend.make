# Empty compiler generated dependencies file for bench_ablation_txquant.
# This may be replaced when dependencies are built.
