file(REMOVE_RECURSE
  "../bench/bench_ablation_txquant"
  "../bench/bench_ablation_txquant.pdb"
  "CMakeFiles/bench_ablation_txquant.dir/bench_ablation_txquant.cpp.o"
  "CMakeFiles/bench_ablation_txquant.dir/bench_ablation_txquant.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_txquant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
