file(REMOVE_RECURSE
  "../bench/bench_ext_localization"
  "../bench/bench_ext_localization.pdb"
  "CMakeFiles/bench_ext_localization.dir/bench_ext_localization.cpp.o"
  "CMakeFiles/bench_ext_localization.dir/bench_ext_localization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
