# Empty dependencies file for bench_ext_localization.
# This may be replaced when dependencies are built.
