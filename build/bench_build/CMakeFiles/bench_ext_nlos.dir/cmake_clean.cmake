file(REMOVE_RECURSE
  "../bench/bench_ext_nlos"
  "../bench/bench_ext_nlos.pdb"
  "CMakeFiles/bench_ext_nlos.dir/bench_ext_nlos.cpp.o"
  "CMakeFiles/bench_ext_nlos.dir/bench_ext_nlos.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_nlos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
