# Empty compiler generated dependencies file for bench_ext_nlos.
# This may be replaced when dependencies are built.
