file(REMOVE_RECURSE
  "../bench/bench_ablation_xcorr"
  "../bench/bench_ablation_xcorr.pdb"
  "CMakeFiles/bench_ablation_xcorr.dir/bench_ablation_xcorr.cpp.o"
  "CMakeFiles/bench_ablation_xcorr.dir/bench_ablation_xcorr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_xcorr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
