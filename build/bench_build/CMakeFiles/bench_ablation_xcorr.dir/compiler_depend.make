# Empty compiler generated dependencies file for bench_ablation_xcorr.
# This may be replaced when dependencies are built.
