file(REMOVE_RECURSE
  "../bench/bench_fig3_timing"
  "../bench/bench_fig3_timing.pdb"
  "CMakeFiles/bench_fig3_timing.dir/bench_fig3_timing.cpp.o"
  "CMakeFiles/bench_fig3_timing.dir/bench_fig3_timing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
