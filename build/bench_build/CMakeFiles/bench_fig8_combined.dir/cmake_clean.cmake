file(REMOVE_RECURSE
  "../bench/bench_fig8_combined"
  "../bench/bench_fig8_combined.pdb"
  "CMakeFiles/bench_fig8_combined.dir/bench_fig8_combined.cpp.o"
  "CMakeFiles/bench_fig8_combined.dir/bench_fig8_combined.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
