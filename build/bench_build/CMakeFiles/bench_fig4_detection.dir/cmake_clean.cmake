file(REMOVE_RECURSE
  "../bench/bench_fig4_detection"
  "../bench/bench_fig4_detection.pdb"
  "CMakeFiles/bench_fig4_detection.dir/bench_fig4_detection.cpp.o"
  "CMakeFiles/bench_fig4_detection.dir/bench_fig4_detection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
