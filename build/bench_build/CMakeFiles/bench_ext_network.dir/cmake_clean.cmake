file(REMOVE_RECURSE
  "../bench/bench_ext_network"
  "../bench/bench_ext_network.pdb"
  "CMakeFiles/bench_ext_network.dir/bench_ext_network.cpp.o"
  "CMakeFiles/bench_ext_network.dir/bench_ext_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
