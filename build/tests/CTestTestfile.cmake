# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_session[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_dsp_fft[1]_include.cmake")
include("/root/repo/build/tests/test_dsp_signal[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_channel[1]_include.cmake")
include("/root/repo/build/tests/test_dw1000_clock[1]_include.cmake")
include("/root/repo/build/tests/test_dw1000_pulse[1]_include.cmake")
include("/root/repo/build/tests/test_dw1000_phy[1]_include.cmake")
include("/root/repo/build/tests/test_dw1000_cir[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_detectors[1]_include.cmake")
include("/root/repo/build/tests/test_twr[1]_include.cmake")
include("/root/repo/build/tests/test_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_capacity[1]_include.cmake")
include("/root/repo/build/tests/test_loc[1]_include.cmake")
include("/root/repo/build/tests/test_dstwr[1]_include.cmake")
include("/root/repo/build/tests/test_diagnostics[1]_include.cmake")
include("/root/repo/build/tests/test_tracker_csv[1]_include.cmake")
include("/root/repo/build/tests/test_session_rpm[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_session_edge[1]_include.cmake")
include("/root/repo/build/tests/test_registers[1]_include.cmake")
include("/root/repo/build/tests/test_medium[1]_include.cmake")
include("/root/repo/build/tests/test_xcorr_id[1]_include.cmake")
