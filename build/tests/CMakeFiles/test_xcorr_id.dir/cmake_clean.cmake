file(REMOVE_RECURSE
  "CMakeFiles/test_xcorr_id.dir/test_xcorr_id.cpp.o"
  "CMakeFiles/test_xcorr_id.dir/test_xcorr_id.cpp.o.d"
  "test_xcorr_id"
  "test_xcorr_id.pdb"
  "test_xcorr_id[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xcorr_id.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
