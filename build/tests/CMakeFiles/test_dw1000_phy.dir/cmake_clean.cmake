file(REMOVE_RECURSE
  "CMakeFiles/test_dw1000_phy.dir/test_dw1000_phy.cpp.o"
  "CMakeFiles/test_dw1000_phy.dir/test_dw1000_phy.cpp.o.d"
  "test_dw1000_phy"
  "test_dw1000_phy.pdb"
  "test_dw1000_phy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dw1000_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
