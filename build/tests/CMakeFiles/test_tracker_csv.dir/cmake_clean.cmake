file(REMOVE_RECURSE
  "CMakeFiles/test_tracker_csv.dir/test_tracker_csv.cpp.o"
  "CMakeFiles/test_tracker_csv.dir/test_tracker_csv.cpp.o.d"
  "test_tracker_csv"
  "test_tracker_csv.pdb"
  "test_tracker_csv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracker_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
