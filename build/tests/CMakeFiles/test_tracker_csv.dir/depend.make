# Empty dependencies file for test_tracker_csv.
# This may be replaced when dependencies are built.
