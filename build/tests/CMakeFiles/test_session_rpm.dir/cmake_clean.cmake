file(REMOVE_RECURSE
  "CMakeFiles/test_session_rpm.dir/test_session_rpm.cpp.o"
  "CMakeFiles/test_session_rpm.dir/test_session_rpm.cpp.o.d"
  "test_session_rpm"
  "test_session_rpm.pdb"
  "test_session_rpm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session_rpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
