# Empty dependencies file for test_session_rpm.
# This may be replaced when dependencies are built.
