# Empty dependencies file for test_twr.
# This may be replaced when dependencies are built.
