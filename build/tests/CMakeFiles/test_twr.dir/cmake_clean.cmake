file(REMOVE_RECURSE
  "CMakeFiles/test_twr.dir/test_twr.cpp.o"
  "CMakeFiles/test_twr.dir/test_twr.cpp.o.d"
  "test_twr"
  "test_twr.pdb"
  "test_twr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_twr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
