file(REMOVE_RECURSE
  "CMakeFiles/test_dw1000_pulse.dir/test_dw1000_pulse.cpp.o"
  "CMakeFiles/test_dw1000_pulse.dir/test_dw1000_pulse.cpp.o.d"
  "test_dw1000_pulse"
  "test_dw1000_pulse.pdb"
  "test_dw1000_pulse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dw1000_pulse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
