# Empty dependencies file for test_dw1000_pulse.
# This may be replaced when dependencies are built.
