# Empty compiler generated dependencies file for test_dw1000_clock.
# This may be replaced when dependencies are built.
