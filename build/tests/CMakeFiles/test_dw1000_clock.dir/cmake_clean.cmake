file(REMOVE_RECURSE
  "CMakeFiles/test_dw1000_clock.dir/test_dw1000_clock.cpp.o"
  "CMakeFiles/test_dw1000_clock.dir/test_dw1000_clock.cpp.o.d"
  "test_dw1000_clock"
  "test_dw1000_clock.pdb"
  "test_dw1000_clock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dw1000_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
