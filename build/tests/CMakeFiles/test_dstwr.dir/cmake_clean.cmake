file(REMOVE_RECURSE
  "CMakeFiles/test_dstwr.dir/test_dstwr.cpp.o"
  "CMakeFiles/test_dstwr.dir/test_dstwr.cpp.o.d"
  "test_dstwr"
  "test_dstwr.pdb"
  "test_dstwr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dstwr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
