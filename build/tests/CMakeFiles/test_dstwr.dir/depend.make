# Empty dependencies file for test_dstwr.
# This may be replaced when dependencies are built.
