file(REMOVE_RECURSE
  "CMakeFiles/test_session_edge.dir/test_session_edge.cpp.o"
  "CMakeFiles/test_session_edge.dir/test_session_edge.cpp.o.d"
  "test_session_edge"
  "test_session_edge.pdb"
  "test_session_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
