# Empty dependencies file for test_session_edge.
# This may be replaced when dependencies are built.
