file(REMOVE_RECURSE
  "CMakeFiles/test_dw1000_cir.dir/test_dw1000_cir.cpp.o"
  "CMakeFiles/test_dw1000_cir.dir/test_dw1000_cir.cpp.o.d"
  "test_dw1000_cir"
  "test_dw1000_cir.pdb"
  "test_dw1000_cir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dw1000_cir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
