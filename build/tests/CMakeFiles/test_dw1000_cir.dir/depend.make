# Empty dependencies file for test_dw1000_cir.
# This may be replaced when dependencies are built.
