file(REMOVE_RECURSE
  "CMakeFiles/uwb_ranging.dir/capacity.cpp.o"
  "CMakeFiles/uwb_ranging.dir/capacity.cpp.o.d"
  "CMakeFiles/uwb_ranging.dir/detector.cpp.o"
  "CMakeFiles/uwb_ranging.dir/detector.cpp.o.d"
  "CMakeFiles/uwb_ranging.dir/dstwr.cpp.o"
  "CMakeFiles/uwb_ranging.dir/dstwr.cpp.o.d"
  "CMakeFiles/uwb_ranging.dir/network.cpp.o"
  "CMakeFiles/uwb_ranging.dir/network.cpp.o.d"
  "CMakeFiles/uwb_ranging.dir/protocol.cpp.o"
  "CMakeFiles/uwb_ranging.dir/protocol.cpp.o.d"
  "CMakeFiles/uwb_ranging.dir/search_subtract.cpp.o"
  "CMakeFiles/uwb_ranging.dir/search_subtract.cpp.o.d"
  "CMakeFiles/uwb_ranging.dir/session.cpp.o"
  "CMakeFiles/uwb_ranging.dir/session.cpp.o.d"
  "CMakeFiles/uwb_ranging.dir/threshold_detector.cpp.o"
  "CMakeFiles/uwb_ranging.dir/threshold_detector.cpp.o.d"
  "CMakeFiles/uwb_ranging.dir/twr.cpp.o"
  "CMakeFiles/uwb_ranging.dir/twr.cpp.o.d"
  "CMakeFiles/uwb_ranging.dir/xcorr_id.cpp.o"
  "CMakeFiles/uwb_ranging.dir/xcorr_id.cpp.o.d"
  "libuwb_ranging.a"
  "libuwb_ranging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uwb_ranging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
