file(REMOVE_RECURSE
  "libuwb_ranging.a"
)
