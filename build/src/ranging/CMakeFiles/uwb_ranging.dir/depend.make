# Empty dependencies file for uwb_ranging.
# This may be replaced when dependencies are built.
