
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ranging/capacity.cpp" "src/ranging/CMakeFiles/uwb_ranging.dir/capacity.cpp.o" "gcc" "src/ranging/CMakeFiles/uwb_ranging.dir/capacity.cpp.o.d"
  "/root/repo/src/ranging/detector.cpp" "src/ranging/CMakeFiles/uwb_ranging.dir/detector.cpp.o" "gcc" "src/ranging/CMakeFiles/uwb_ranging.dir/detector.cpp.o.d"
  "/root/repo/src/ranging/dstwr.cpp" "src/ranging/CMakeFiles/uwb_ranging.dir/dstwr.cpp.o" "gcc" "src/ranging/CMakeFiles/uwb_ranging.dir/dstwr.cpp.o.d"
  "/root/repo/src/ranging/network.cpp" "src/ranging/CMakeFiles/uwb_ranging.dir/network.cpp.o" "gcc" "src/ranging/CMakeFiles/uwb_ranging.dir/network.cpp.o.d"
  "/root/repo/src/ranging/protocol.cpp" "src/ranging/CMakeFiles/uwb_ranging.dir/protocol.cpp.o" "gcc" "src/ranging/CMakeFiles/uwb_ranging.dir/protocol.cpp.o.d"
  "/root/repo/src/ranging/search_subtract.cpp" "src/ranging/CMakeFiles/uwb_ranging.dir/search_subtract.cpp.o" "gcc" "src/ranging/CMakeFiles/uwb_ranging.dir/search_subtract.cpp.o.d"
  "/root/repo/src/ranging/session.cpp" "src/ranging/CMakeFiles/uwb_ranging.dir/session.cpp.o" "gcc" "src/ranging/CMakeFiles/uwb_ranging.dir/session.cpp.o.d"
  "/root/repo/src/ranging/threshold_detector.cpp" "src/ranging/CMakeFiles/uwb_ranging.dir/threshold_detector.cpp.o" "gcc" "src/ranging/CMakeFiles/uwb_ranging.dir/threshold_detector.cpp.o.d"
  "/root/repo/src/ranging/twr.cpp" "src/ranging/CMakeFiles/uwb_ranging.dir/twr.cpp.o" "gcc" "src/ranging/CMakeFiles/uwb_ranging.dir/twr.cpp.o.d"
  "/root/repo/src/ranging/xcorr_id.cpp" "src/ranging/CMakeFiles/uwb_ranging.dir/xcorr_id.cpp.o" "gcc" "src/ranging/CMakeFiles/uwb_ranging.dir/xcorr_id.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uwb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/uwb_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/dw1000/CMakeFiles/uwb_dw1000.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/uwb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/channel/CMakeFiles/uwb_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/uwb_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
