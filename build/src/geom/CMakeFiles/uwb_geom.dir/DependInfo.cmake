
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/image_source.cpp" "src/geom/CMakeFiles/uwb_geom.dir/image_source.cpp.o" "gcc" "src/geom/CMakeFiles/uwb_geom.dir/image_source.cpp.o.d"
  "/root/repo/src/geom/materials.cpp" "src/geom/CMakeFiles/uwb_geom.dir/materials.cpp.o" "gcc" "src/geom/CMakeFiles/uwb_geom.dir/materials.cpp.o.d"
  "/root/repo/src/geom/room.cpp" "src/geom/CMakeFiles/uwb_geom.dir/room.cpp.o" "gcc" "src/geom/CMakeFiles/uwb_geom.dir/room.cpp.o.d"
  "/root/repo/src/geom/vec2.cpp" "src/geom/CMakeFiles/uwb_geom.dir/vec2.cpp.o" "gcc" "src/geom/CMakeFiles/uwb_geom.dir/vec2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uwb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
