# Empty compiler generated dependencies file for uwb_geom.
# This may be replaced when dependencies are built.
