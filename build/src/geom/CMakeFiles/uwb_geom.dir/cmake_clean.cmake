file(REMOVE_RECURSE
  "CMakeFiles/uwb_geom.dir/image_source.cpp.o"
  "CMakeFiles/uwb_geom.dir/image_source.cpp.o.d"
  "CMakeFiles/uwb_geom.dir/materials.cpp.o"
  "CMakeFiles/uwb_geom.dir/materials.cpp.o.d"
  "CMakeFiles/uwb_geom.dir/room.cpp.o"
  "CMakeFiles/uwb_geom.dir/room.cpp.o.d"
  "CMakeFiles/uwb_geom.dir/vec2.cpp.o"
  "CMakeFiles/uwb_geom.dir/vec2.cpp.o.d"
  "libuwb_geom.a"
  "libuwb_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uwb_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
