file(REMOVE_RECURSE
  "libuwb_geom.a"
)
