file(REMOVE_RECURSE
  "CMakeFiles/uwb_loc.dir/anchor_system.cpp.o"
  "CMakeFiles/uwb_loc.dir/anchor_system.cpp.o.d"
  "CMakeFiles/uwb_loc.dir/multilateration.cpp.o"
  "CMakeFiles/uwb_loc.dir/multilateration.cpp.o.d"
  "CMakeFiles/uwb_loc.dir/tracker.cpp.o"
  "CMakeFiles/uwb_loc.dir/tracker.cpp.o.d"
  "libuwb_loc.a"
  "libuwb_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uwb_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
