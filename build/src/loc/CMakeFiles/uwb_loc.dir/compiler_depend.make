# Empty compiler generated dependencies file for uwb_loc.
# This may be replaced when dependencies are built.
