file(REMOVE_RECURSE
  "libuwb_loc.a"
)
