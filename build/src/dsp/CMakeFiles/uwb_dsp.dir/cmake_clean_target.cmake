file(REMOVE_RECURSE
  "libuwb_dsp.a"
)
