file(REMOVE_RECURSE
  "CMakeFiles/uwb_dsp.dir/fft.cpp.o"
  "CMakeFiles/uwb_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/uwb_dsp.dir/matched_filter.cpp.o"
  "CMakeFiles/uwb_dsp.dir/matched_filter.cpp.o.d"
  "CMakeFiles/uwb_dsp.dir/peaks.cpp.o"
  "CMakeFiles/uwb_dsp.dir/peaks.cpp.o.d"
  "CMakeFiles/uwb_dsp.dir/resample.cpp.o"
  "CMakeFiles/uwb_dsp.dir/resample.cpp.o.d"
  "CMakeFiles/uwb_dsp.dir/signal.cpp.o"
  "CMakeFiles/uwb_dsp.dir/signal.cpp.o.d"
  "CMakeFiles/uwb_dsp.dir/stats.cpp.o"
  "CMakeFiles/uwb_dsp.dir/stats.cpp.o.d"
  "CMakeFiles/uwb_dsp.dir/window.cpp.o"
  "CMakeFiles/uwb_dsp.dir/window.cpp.o.d"
  "libuwb_dsp.a"
  "libuwb_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uwb_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
