# Empty dependencies file for uwb_dsp.
# This may be replaced when dependencies are built.
