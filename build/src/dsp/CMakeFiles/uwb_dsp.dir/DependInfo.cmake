
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/uwb_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/uwb_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/matched_filter.cpp" "src/dsp/CMakeFiles/uwb_dsp.dir/matched_filter.cpp.o" "gcc" "src/dsp/CMakeFiles/uwb_dsp.dir/matched_filter.cpp.o.d"
  "/root/repo/src/dsp/peaks.cpp" "src/dsp/CMakeFiles/uwb_dsp.dir/peaks.cpp.o" "gcc" "src/dsp/CMakeFiles/uwb_dsp.dir/peaks.cpp.o.d"
  "/root/repo/src/dsp/resample.cpp" "src/dsp/CMakeFiles/uwb_dsp.dir/resample.cpp.o" "gcc" "src/dsp/CMakeFiles/uwb_dsp.dir/resample.cpp.o.d"
  "/root/repo/src/dsp/signal.cpp" "src/dsp/CMakeFiles/uwb_dsp.dir/signal.cpp.o" "gcc" "src/dsp/CMakeFiles/uwb_dsp.dir/signal.cpp.o.d"
  "/root/repo/src/dsp/stats.cpp" "src/dsp/CMakeFiles/uwb_dsp.dir/stats.cpp.o" "gcc" "src/dsp/CMakeFiles/uwb_dsp.dir/stats.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/dsp/CMakeFiles/uwb_dsp.dir/window.cpp.o" "gcc" "src/dsp/CMakeFiles/uwb_dsp.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uwb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
