# Empty compiler generated dependencies file for uwb_channel.
# This may be replaced when dependencies are built.
