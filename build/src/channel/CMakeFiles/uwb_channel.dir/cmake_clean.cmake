file(REMOVE_RECURSE
  "CMakeFiles/uwb_channel.dir/channel_model.cpp.o"
  "CMakeFiles/uwb_channel.dir/channel_model.cpp.o.d"
  "CMakeFiles/uwb_channel.dir/path_loss.cpp.o"
  "CMakeFiles/uwb_channel.dir/path_loss.cpp.o.d"
  "CMakeFiles/uwb_channel.dir/saleh_valenzuela.cpp.o"
  "CMakeFiles/uwb_channel.dir/saleh_valenzuela.cpp.o.d"
  "libuwb_channel.a"
  "libuwb_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uwb_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
