
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/channel/channel_model.cpp" "src/channel/CMakeFiles/uwb_channel.dir/channel_model.cpp.o" "gcc" "src/channel/CMakeFiles/uwb_channel.dir/channel_model.cpp.o.d"
  "/root/repo/src/channel/path_loss.cpp" "src/channel/CMakeFiles/uwb_channel.dir/path_loss.cpp.o" "gcc" "src/channel/CMakeFiles/uwb_channel.dir/path_loss.cpp.o.d"
  "/root/repo/src/channel/saleh_valenzuela.cpp" "src/channel/CMakeFiles/uwb_channel.dir/saleh_valenzuela.cpp.o" "gcc" "src/channel/CMakeFiles/uwb_channel.dir/saleh_valenzuela.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uwb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/uwb_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
