file(REMOVE_RECURSE
  "libuwb_channel.a"
)
