# Empty compiler generated dependencies file for uwb_dw1000.
# This may be replaced when dependencies are built.
