file(REMOVE_RECURSE
  "CMakeFiles/uwb_dw1000.dir/cir.cpp.o"
  "CMakeFiles/uwb_dw1000.dir/cir.cpp.o.d"
  "CMakeFiles/uwb_dw1000.dir/cir_io.cpp.o"
  "CMakeFiles/uwb_dw1000.dir/cir_io.cpp.o.d"
  "CMakeFiles/uwb_dw1000.dir/clock.cpp.o"
  "CMakeFiles/uwb_dw1000.dir/clock.cpp.o.d"
  "CMakeFiles/uwb_dw1000.dir/diagnostics.cpp.o"
  "CMakeFiles/uwb_dw1000.dir/diagnostics.cpp.o.d"
  "CMakeFiles/uwb_dw1000.dir/energy.cpp.o"
  "CMakeFiles/uwb_dw1000.dir/energy.cpp.o.d"
  "CMakeFiles/uwb_dw1000.dir/frame.cpp.o"
  "CMakeFiles/uwb_dw1000.dir/frame.cpp.o.d"
  "CMakeFiles/uwb_dw1000.dir/phy_config.cpp.o"
  "CMakeFiles/uwb_dw1000.dir/phy_config.cpp.o.d"
  "CMakeFiles/uwb_dw1000.dir/pulse.cpp.o"
  "CMakeFiles/uwb_dw1000.dir/pulse.cpp.o.d"
  "CMakeFiles/uwb_dw1000.dir/registers.cpp.o"
  "CMakeFiles/uwb_dw1000.dir/registers.cpp.o.d"
  "CMakeFiles/uwb_dw1000.dir/timestamping.cpp.o"
  "CMakeFiles/uwb_dw1000.dir/timestamping.cpp.o.d"
  "libuwb_dw1000.a"
  "libuwb_dw1000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uwb_dw1000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
