
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dw1000/cir.cpp" "src/dw1000/CMakeFiles/uwb_dw1000.dir/cir.cpp.o" "gcc" "src/dw1000/CMakeFiles/uwb_dw1000.dir/cir.cpp.o.d"
  "/root/repo/src/dw1000/cir_io.cpp" "src/dw1000/CMakeFiles/uwb_dw1000.dir/cir_io.cpp.o" "gcc" "src/dw1000/CMakeFiles/uwb_dw1000.dir/cir_io.cpp.o.d"
  "/root/repo/src/dw1000/clock.cpp" "src/dw1000/CMakeFiles/uwb_dw1000.dir/clock.cpp.o" "gcc" "src/dw1000/CMakeFiles/uwb_dw1000.dir/clock.cpp.o.d"
  "/root/repo/src/dw1000/diagnostics.cpp" "src/dw1000/CMakeFiles/uwb_dw1000.dir/diagnostics.cpp.o" "gcc" "src/dw1000/CMakeFiles/uwb_dw1000.dir/diagnostics.cpp.o.d"
  "/root/repo/src/dw1000/energy.cpp" "src/dw1000/CMakeFiles/uwb_dw1000.dir/energy.cpp.o" "gcc" "src/dw1000/CMakeFiles/uwb_dw1000.dir/energy.cpp.o.d"
  "/root/repo/src/dw1000/frame.cpp" "src/dw1000/CMakeFiles/uwb_dw1000.dir/frame.cpp.o" "gcc" "src/dw1000/CMakeFiles/uwb_dw1000.dir/frame.cpp.o.d"
  "/root/repo/src/dw1000/phy_config.cpp" "src/dw1000/CMakeFiles/uwb_dw1000.dir/phy_config.cpp.o" "gcc" "src/dw1000/CMakeFiles/uwb_dw1000.dir/phy_config.cpp.o.d"
  "/root/repo/src/dw1000/pulse.cpp" "src/dw1000/CMakeFiles/uwb_dw1000.dir/pulse.cpp.o" "gcc" "src/dw1000/CMakeFiles/uwb_dw1000.dir/pulse.cpp.o.d"
  "/root/repo/src/dw1000/registers.cpp" "src/dw1000/CMakeFiles/uwb_dw1000.dir/registers.cpp.o" "gcc" "src/dw1000/CMakeFiles/uwb_dw1000.dir/registers.cpp.o.d"
  "/root/repo/src/dw1000/timestamping.cpp" "src/dw1000/CMakeFiles/uwb_dw1000.dir/timestamping.cpp.o" "gcc" "src/dw1000/CMakeFiles/uwb_dw1000.dir/timestamping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/uwb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/uwb_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
