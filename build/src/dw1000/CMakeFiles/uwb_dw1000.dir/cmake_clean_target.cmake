file(REMOVE_RECURSE
  "libuwb_dw1000.a"
)
