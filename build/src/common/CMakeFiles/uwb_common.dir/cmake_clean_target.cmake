file(REMOVE_RECURSE
  "libuwb_common.a"
)
