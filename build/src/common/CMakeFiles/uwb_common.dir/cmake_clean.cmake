file(REMOVE_RECURSE
  "CMakeFiles/uwb_common.dir/csv.cpp.o"
  "CMakeFiles/uwb_common.dir/csv.cpp.o.d"
  "CMakeFiles/uwb_common.dir/random.cpp.o"
  "CMakeFiles/uwb_common.dir/random.cpp.o.d"
  "CMakeFiles/uwb_common.dir/units.cpp.o"
  "CMakeFiles/uwb_common.dir/units.cpp.o.d"
  "libuwb_common.a"
  "libuwb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uwb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
