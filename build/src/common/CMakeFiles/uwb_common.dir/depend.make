# Empty dependencies file for uwb_common.
# This may be replaced when dependencies are built.
