# Empty compiler generated dependencies file for uwb_sim.
# This may be replaced when dependencies are built.
