file(REMOVE_RECURSE
  "CMakeFiles/uwb_sim.dir/medium.cpp.o"
  "CMakeFiles/uwb_sim.dir/medium.cpp.o.d"
  "CMakeFiles/uwb_sim.dir/node.cpp.o"
  "CMakeFiles/uwb_sim.dir/node.cpp.o.d"
  "CMakeFiles/uwb_sim.dir/simulator.cpp.o"
  "CMakeFiles/uwb_sim.dir/simulator.cpp.o.d"
  "libuwb_sim.a"
  "libuwb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uwb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
