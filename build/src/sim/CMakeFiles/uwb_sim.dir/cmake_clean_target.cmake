file(REMOVE_RECURSE
  "libuwb_sim.a"
)
