#include "dsp/matched_filter.hpp"

#include <algorithm>

#include "common/expects.hpp"
#include "dsp/fft.hpp"
#include "dsp/signal.hpp"

namespace uwb::dsp {

MatchedFilter::MatchedFilter(CVec pulse_template)
    : tmpl_(normalize_energy(std::move(pulse_template))) {
  UWB_EXPECTS(!tmpl_.empty());
}

CVec correlate_direct(const CVec& r, const CVec& unit_template) {
  const std::size_t n = r.size();
  const std::size_t np = unit_template.size();
  CVec y(n, Complex{});
  const double* rd = reinterpret_cast<const double*>(r.data());
  const double* sd = reinterpret_cast<const double*>(unit_template.data());
  for (std::size_t i = 0; i < n; ++i) {
    double acc_r = 0.0, acc_i = 0.0;
    const std::size_t mmax = std::min(np, n - i);
    for (std::size_t m = 0; m < mmax; ++m) {
      // r[i + m] * conj(s[m]) with explicit arithmetic (see fft.cpp).
      const double xr = rd[2 * (i + m)], xi = rd[2 * (i + m) + 1];
      const double sr = sd[2 * m], si = sd[2 * m + 1];
      acc_r += xr * sr + xi * si;
      acc_i += xi * sr - xr * si;
    }
    y[i] = Complex(acc_r, acc_i);
  }
  return y;
}

const CVec& MatchedFilter::template_spectrum(std::size_t padded) const {
  UWB_EXPECTS(is_pow2(padded));
  UWB_EXPECTS(padded >= tmpl_.size());
  if (spec_len_ != padded) {
    CVec t(padded, Complex{});
    // Correlation = convolution with conj-time-reversed template; placing
    // conj(s[m]) at index (padded - m) % padded makes the circular
    // convolution output index equal the template start position.
    for (std::size_t m = 0; m < tmpl_.size(); ++m)
      t[(padded - m) % padded] = std::conj(tmpl_[m]);
    plan_for(padded).transform_pow2(t.data(), false);
    tmpl_spec_ = std::move(t);
    spec_len_ = padded;
  }
  return tmpl_spec_;
}

void MatchedFilter::apply_spectrum(const Complex* spectrum, std::size_t padded,
                                   std::size_t out_len, CVec& out) const {
  UWB_EXPECTS(out_len <= padded);
  const CVec& tspec = template_spectrum(padded);
  CVec& work = fft_scratch(2, padded);
  const double* a = reinterpret_cast<const double*>(spectrum);
  const double* b = reinterpret_cast<const double*>(tspec.data());
  double* w = reinterpret_cast<double*>(work.data());
  for (std::size_t k = 0; k < padded; ++k) {
    const double ar = a[2 * k], ai = a[2 * k + 1];
    const double br = b[2 * k], bi = b[2 * k + 1];
    w[2 * k] = ar * br - ai * bi;
    w[2 * k + 1] = ar * bi + ai * br;
  }
  plan_for(padded).transform_pow2(work.data(), true);
  const double scale = 1.0 / static_cast<double>(padded);
  out.resize(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = work[i] * scale;
}

CVec MatchedFilter::apply(const CVec& r) const {
  UWB_EXPECTS(!r.empty());
  const std::size_t n = r.size();
  const std::size_t np = tmpl_.size();
  // For tiny inputs the direct form is cheaper and exact.
  if (n * np <= 16384) return correlate_direct(r, tmpl_);

  const std::size_t padded = next_pow2(n + np - 1);
  CVec& x = fft_scratch(3, padded);
  std::copy(r.begin(), r.end(), x.begin());
  std::fill(x.begin() + static_cast<std::ptrdiff_t>(n), x.end(), Complex{});
  plan_for(padded).transform_pow2(x.data(), false);
  CVec y;
  apply_spectrum(x.data(), padded, n, y);
  return y;
}

}  // namespace uwb::dsp
