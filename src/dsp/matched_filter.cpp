#include "dsp/matched_filter.hpp"

#include <algorithm>

#include "common/expects.hpp"
#include "dsp/fft.hpp"
#include "dsp/signal.hpp"
#include "simd/simd.hpp"

namespace uwb::dsp {

MatchedFilter::MatchedFilter(CVec pulse_template)
    : tmpl_(normalize_energy(std::move(pulse_template))) {
  UWB_EXPECTS(!tmpl_.empty());
}

CVec correlate_direct(const CVec& r, const CVec& unit_template) {
  const std::size_t n = r.size();
  const std::size_t np = unit_template.size();
  CVec y(n, Complex{});
  const double* rd = reinterpret_cast<const double*>(r.data());
  const double* sd = reinterpret_cast<const double*>(unit_template.data());
  // y[i] = sum_m r[i + m] * conj(s[m]) via the vectorized kernel.
  simd::corr_direct(rd, sd, reinterpret_cast<double*>(y.data()), n, np);
  return y;
}

const CVec& MatchedFilter::template_spectrum(std::size_t padded) const {
  UWB_EXPECTS(is_pow2(padded));
  UWB_EXPECTS(padded >= tmpl_.size());
  if (spec_len_ != padded) {
    CVec t(padded, Complex{});
    // Correlation = convolution with conj-time-reversed template; placing
    // conj(s[m]) at index (padded - m) % padded makes the circular
    // convolution output index equal the template start position.
    for (std::size_t m = 0; m < tmpl_.size(); ++m)
      t[(padded - m) % padded] = std::conj(tmpl_[m]);
    plan_for(padded).transform_pow2(t.data(), false);
    tmpl_spec_ = std::move(t);
    spec_len_ = padded;
  }
  return tmpl_spec_;
}

void MatchedFilter::apply_spectrum(const Complex* spectrum, std::size_t padded,
                                   std::size_t out_len, CVec& out) const {
  UWB_EXPECTS(out_len <= padded);
  const CVec& tspec = template_spectrum(padded);
  CVec& work = fft_scratch(2, padded);
  const double* a = reinterpret_cast<const double*>(spectrum);
  const double* b = reinterpret_cast<const double*>(tspec.data());
  double* w = reinterpret_cast<double*>(work.data());
  simd::cmul(a, b, w, padded);
  plan_for(padded).transform_pow2(work.data(), true);
  const double scale = 1.0 / static_cast<double>(padded);
  out.resize(out_len);
  simd::copy_scaled(w, scale, reinterpret_cast<double*>(out.data()), out_len);
}

CVec MatchedFilter::apply(const CVec& r) const {
  UWB_EXPECTS(!r.empty());
  const std::size_t n = r.size();
  const std::size_t np = tmpl_.size();
  // For tiny inputs the direct form is cheaper and exact.
  if (n * np <= 16384) return correlate_direct(r, tmpl_);

  const std::size_t padded = next_pow2(n + np - 1);
  CVec& x = fft_scratch(3, padded);
  std::copy(r.begin(), r.end(), x.begin());
  std::fill(x.begin() + static_cast<std::ptrdiff_t>(n), x.end(), Complex{});
  plan_for(padded).transform_pow2(x.data(), false);
  CVec y;
  apply_spectrum(x.data(), padded, n, y);
  return y;
}

}  // namespace uwb::dsp
