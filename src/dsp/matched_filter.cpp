#include "dsp/matched_filter.hpp"

#include "common/expects.hpp"
#include "dsp/fft.hpp"
#include "dsp/signal.hpp"

namespace uwb::dsp {

MatchedFilter::MatchedFilter(CVec pulse_template)
    : tmpl_(normalize_energy(std::move(pulse_template))) {
  UWB_EXPECTS(!tmpl_.empty());
}

CVec correlate_direct(const CVec& r, const CVec& unit_template) {
  const std::size_t n = r.size();
  const std::size_t np = unit_template.size();
  CVec y(n, Complex{});
  for (std::size_t i = 0; i < n; ++i) {
    Complex acc{};
    const std::size_t mmax = std::min(np, n - i);
    for (std::size_t m = 0; m < mmax; ++m)
      acc += r[i + m] * std::conj(unit_template[m]);
    y[i] = acc;
  }
  return y;
}

CVec MatchedFilter::apply(const CVec& r) const {
  UWB_EXPECTS(!r.empty());
  const std::size_t n = r.size();
  const std::size_t np = tmpl_.size();
  // For tiny inputs the direct form is cheaper and exact.
  if (n * np <= 16384) return correlate_direct(r, tmpl_);

  const std::size_t padded = next_pow2(n + np - 1);
  if (spec_len_ != padded) {
    CVec t(padded, Complex{});
    // Correlation = convolution with conj-time-reversed template; placing
    // conj(s[m]) at index (padded - m) % padded makes the circular
    // convolution output index equal the template start position.
    for (std::size_t m = 0; m < np; ++m)
      t[(padded - m) % padded] = std::conj(tmpl_[m]);
    fft_pow2_inplace(t, false);
    tmpl_spec_ = std::move(t);
    spec_len_ = padded;
  }
  CVec x(padded, Complex{});
  std::copy(r.begin(), r.end(), x.begin());
  fft_pow2_inplace(x, false);
  for (std::size_t k = 0; k < padded; ++k) x[k] *= tmpl_spec_[k];
  fft_pow2_inplace(x, true);
  const double scale = 1.0 / static_cast<double>(padded);
  CVec y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] * scale;
  return y;
}

}  // namespace uwb::dsp
