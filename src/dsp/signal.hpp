// Elementwise helpers on complex signals.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace uwb::dsp {

/// |x[i]| for every sample.
RVec magnitude(const CVec& x);

/// Total energy sum |x[i]|^2.
double energy(const CVec& x);

/// Scale to unit energy. No-op on an all-zero signal.
CVec normalize_energy(const CVec& x);

/// Scale so that max |x[i]| == 1. No-op on an all-zero signal.
CVec normalize_peak(const CVec& x);

/// y[i] += a * x[i - shift] for integer shift (out-of-range samples ignored).
void add_scaled_shifted(CVec& y, const CVec& x, Complex a, std::ptrdiff_t shift);

/// Linear interpolation of x at fractional index t (clamped to range).
Complex sample_at(const CVec& x, double t);

}  // namespace uwb::dsp
