#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/expects.hpp"

namespace uwb::dsp {

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  UWB_EXPECTS(n >= 1);
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_pow2_inplace(CVec& x, bool inverse) {
  const std::size_t n = x.size();
  UWB_EXPECTS(is_pow2(n));
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  // Butterflies.
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = x[i + j];
        const Complex v = x[i + j + len / 2] * w;
        x[i + j] = u + v;
        x[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

namespace {

// Bluestein chirp-z transform: expresses an arbitrary-length DFT as a
// power-of-two circular convolution.
CVec bluestein(const CVec& x, bool inverse) {
  const std::size_t n = x.size();
  // With the decomposition below (a[n] = x[n] conj(w[n]), b = w, output
  // scaled by conj(w[k])), the kernel evaluates to e^{-sign*2pi*i*kn/n}, so
  // the forward transform needs the positive chirp.
  const double sign = inverse ? -1.0 : 1.0;
  // Chirp terms w[k] = e^{sign * i * pi * k^2 / n}.
  CVec w(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids precision loss for large k.
    const std::uint64_t k2 = (static_cast<std::uint64_t>(k) * k) % (2 * n);
    const double ang =
        sign * std::numbers::pi * static_cast<double>(k2) / static_cast<double>(n);
    w[k] = Complex(std::cos(ang), std::sin(ang));
  }
  const std::size_t m = next_pow2(2 * n - 1);
  CVec a(m, Complex{}), b(m, Complex{});
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * std::conj(w[k]);
  b[0] = w[0];
  for (std::size_t k = 1; k < n; ++k) b[k] = b[m - k] = w[k];
  fft_pow2_inplace(a, false);
  fft_pow2_inplace(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_pow2_inplace(a, true);
  CVec out(n);
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * scale * std::conj(w[k]);
  return out;
}

}  // namespace

CVec fft(const CVec& x) {
  UWB_EXPECTS(!x.empty());
  if (is_pow2(x.size())) {
    CVec y = x;
    fft_pow2_inplace(y, false);
    return y;
  }
  return bluestein(x, false);
}

CVec ifft(const CVec& x) {
  UWB_EXPECTS(!x.empty());
  CVec y;
  if (is_pow2(x.size())) {
    y = x;
    fft_pow2_inplace(y, true);
  } else {
    y = bluestein(x, true);
  }
  const double scale = 1.0 / static_cast<double>(x.size());
  for (auto& v : y) v *= scale;
  return y;
}

}  // namespace uwb::dsp
