#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>
#include <unordered_map>
#include <utility>

#include "common/expects.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "simd/simd.hpp"

namespace uwb::dsp {

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  UWB_EXPECTS(n >= 1);
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

// The butterfly kernels work on the raw double pairs of the complex array
// (array-oriented access, guaranteed by the standard) with explicit
// real/imaginary arithmetic: std::complex operator* would route every
// product through the Annex-G NaN-recovery helper (__muldc3), which
// dominates the transform cost at any optimisation level.
inline double* as_doubles(Complex* x) { return reinterpret_cast<double*>(x); }

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n), pow2_(is_pow2(n)) {
  UWB_EXPECTS(n >= 1);
  if (pow2_) {
    rev_.resize(n);
    rev_[0] = 0;
    for (std::size_t i = 1, j = 0; i < n; ++i) {
      std::size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      rev_[i] = static_cast<std::uint32_t>(j);
    }
    // Contiguous forward twiddles per stage: stage `len` holds
    // e^{-2*pi*i*j/len} for j < len/2 at offset len/2 - 1 (n-1 total).
    if (n >= 2) {
      tw_.resize(n - 1);
      for (std::size_t len = 2; len <= n; len <<= 1) {
        Complex* w = tw_.data() + (len / 2 - 1);
        const double step = -2.0 * std::numbers::pi / static_cast<double>(len);
        for (std::size_t j = 0; j < len / 2; ++j) {
          const double ang = step * static_cast<double>(j);
          w[j] = Complex(std::cos(ang), std::sin(ang));
        }
      }
    }
    return;
  }
  // Bluestein: chirp w[k] = e^{+i*pi*k^2/n} (k^2 mod 2n avoids precision
  // loss for large k), kernel b[k] = b[m-k] = chirp[k] transformed once per
  // direction.
  chirp_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint64_t k2 = (static_cast<std::uint64_t>(k) * k) % (2 * n);
    const double ang =
        std::numbers::pi * static_cast<double>(k2) / static_cast<double>(n);
    chirp_[k] = Complex(std::cos(ang), std::sin(ang));
  }
  m_ = next_pow2(2 * n - 1);
  sub_ = std::make_unique<FftPlan>(m_);
  const auto make_kernel = [&](bool conj_chirp) {
    CVec b(m_, Complex{});
    b[0] = conj_chirp ? std::conj(chirp_[0]) : chirp_[0];
    for (std::size_t k = 1; k < n; ++k)
      b[k] = b[m_ - k] = conj_chirp ? std::conj(chirp_[k]) : chirp_[k];
    sub_->transform_pow2(b.data(), false);
    return b;
  };
  kernel_fwd_ = make_kernel(false);
  kernel_inv_ = make_kernel(true);
  scratch_.resize(m_);
}

const Complex* FftPlan::twiddle_half() const {
  UWB_EXPECTS(pow2_ && n_ >= 2);
  return tw_.data() + (n_ / 2 - 1);
}

template <bool Inverse>
void FftPlan::run_pow2(Complex* x) const {
  const std::size_t n = n_;
  const std::uint32_t* rev = rev_.data();
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = rev[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  if (n < 2) return;
  double* d = as_doubles(x);
  // Stage len = 2: twiddle is 1 — pure add/sub butterflies.
  simd::butterfly_pairs(d, n);
  if (n < 4) return;
  // Stage len = 4: twiddles are 1 and -+i — still multiplication-free.
  for (std::size_t i = 0; i < 2 * n; i += 8) {
    const double u0r = d[i], u0i = d[i + 1], v0r = d[i + 4], v0i = d[i + 5];
    d[i] = u0r + v0r;
    d[i + 1] = u0i + v0i;
    d[i + 4] = u0r - v0r;
    d[i + 5] = u0i - v0i;
    const double u1r = d[i + 2], u1i = d[i + 3];
    const double x1r = d[i + 6], x1i = d[i + 7];
    // Forward: w = -i so v = (x1i, -x1r); inverse: w = +i so v = (-x1i, x1r).
    const double v1r = Inverse ? -x1i : x1i;
    const double v1i = Inverse ? x1r : -x1r;
    d[i + 2] = u1r + v1r;
    d[i + 3] = u1i + v1i;
    d[i + 6] = u1r - v1r;
    d[i + 7] = u1i - v1i;
  }
  // General stages from the twiddle tables (vectorized whole-stage kernel).
  for (std::size_t len = 8; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const double* w = reinterpret_cast<const double*>(tw_.data() + (half - 1));
    simd::fft_stage(d, w, n, len, Inverse);
  }
}

void FftPlan::transform_pow2(Complex* x, bool inverse) const {
  UWB_EXPECTS(pow2_);
  if (inverse)
    run_pow2<true>(x);
  else
    run_pow2<false>(x);
}

template <bool Inverse>
void FftPlan::run_bluestein(const Complex* x, Complex* y) const {
  const std::size_t n = n_, m = m_;
  Complex* a = scratch_.data();
  const double* w = reinterpret_cast<const double*>(chirp_.data());
  double* ad = as_doubles(a);
  // a[k] = x[k] * conj(chirp[k]) forward, x[k] * chirp[k] inverse.
  const double* xd = reinterpret_cast<const double*>(x);
  if (Inverse)
    simd::cmul(xd, w, ad, n);
  else
    simd::cmul_conj(xd, w, ad, n);
  std::fill(a + n, a + m, Complex{});
  sub_->transform_pow2(a, false);
  const CVec& kernel = Inverse ? kernel_inv_ : kernel_fwd_;
  const double* kd = reinterpret_cast<const double*>(kernel.data());
  simd::cmul(ad, kd, ad, m);
  sub_->transform_pow2(a, true);
  const double scale = 1.0 / static_cast<double>(m);
  double* yd = as_doubles(y);
  // y[k] = a[k] / m * conj(chirp[k]) forward, * chirp[k] inverse (the same
  // multiplier as on the way in).
  if (Inverse)
    simd::cmul_scaled(ad, w, scale, yd, n);
  else
    simd::cmul_conj_scaled(ad, w, scale, yd, n);
}

void FftPlan::transform(const Complex* x, Complex* y, bool inverse) const {
  if (pow2_) {
    if (y != x) std::copy(x, x + n_, y);
    transform_pow2(y, inverse);
    return;
  }
  UWB_EXPECTS(x != y);
  if (inverse)
    run_bluestein<true>(x, y);
  else
    run_bluestein<false>(x, y);
}

namespace {

struct PlanCache {
  std::unordered_map<std::size_t, std::unique_ptr<FftPlan>> plans;
  const FftPlan* last = nullptr;
  std::size_t last_n = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

PlanCache& plan_cache() {
  thread_local PlanCache cache;
  return cache;
}

}  // namespace

const FftPlan& plan_for(std::size_t n) {
  UWB_EXPECTS(n >= 1);
  PlanCache& cache = plan_cache();
  if (cache.last_n == n) {
    ++cache.hits;
    UWB_OBS_COUNT("cache_fft_plan_hits", 1);
    return *cache.last;
  }
  auto it = cache.plans.find(n);
  if (it == cache.plans.end()) {
    ++cache.misses;
    UWB_OBS_COUNT("cache_fft_plan_misses", 1);
    // One allocation per distinct transform size, then cached for the
    // process lifetime; the detect loop runs on the last_n fast path.
    // uwb-lint: allow(hot-path-alloc)
    it = cache.plans.emplace(n, std::make_unique<FftPlan>(n)).first;
  } else {
    ++cache.hits;
    UWB_OBS_COUNT("cache_fft_plan_hits", 1);
  }
  cache.last = it->second.get();
  cache.last_n = n;
  return *cache.last;
}

FftPlanCacheStats fft_plan_cache_stats() {
  const PlanCache& cache = plan_cache();
  return {cache.hits, cache.misses};
}

FftPlanCacheStats fft_plan_cache_stats_total() {
  // Registry-backed totals (obs shards sum per-thread counts). Zero in
  // UWB_OBS_DISABLED builds, where the counting macros compile out.
  const auto snap = obs::MetricsRegistry::instance().aggregate();
  return {snap.counter("cache_fft_plan_hits"),
          snap.counter("cache_fft_plan_misses")};
}

void clear_fft_plan_cache() {
  PlanCache& cache = plan_cache();
  cache.plans.clear();
  cache.last = nullptr;
  cache.last_n = 0;
}

CVec& fft_scratch(int slot, std::size_t n) {
  constexpr int kSlots = 4;
  UWB_EXPECTS(slot >= 0 && slot < kSlots);
  thread_local CVec buffers[kSlots];
  CVec& buf = buffers[slot];
  if (buf.size() != n) buf.resize(n);
  return buf;
}

CVec fft(const CVec& x) {
  UWB_EXPECTS(!x.empty());
  CVec y(x.size());
  plan_for(x.size()).transform(x.data(), y.data(), false);
  return y;
}

CVec ifft(const CVec& x) {
  UWB_EXPECTS(!x.empty());
  CVec y(x.size());
  plan_for(x.size()).transform(x.data(), y.data(), true);
  const double scale = 1.0 / static_cast<double>(x.size());
  simd::scale(reinterpret_cast<double*>(y.data()), scale, y.size());
  return y;
}

void fft_pow2_inplace(CVec& x, bool inverse) {
  UWB_EXPECTS(is_pow2(x.size()));
  plan_for(x.size()).transform_pow2(x.data(), inverse);
}

}  // namespace uwb::dsp
