#include "dsp/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/expects.hpp"

namespace uwb::dsp {

double mean(const RVec& x) {
  UWB_EXPECTS(!x.empty());
  return std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(x.size());
}

double variance(const RVec& x) {
  UWB_EXPECTS(!x.empty());
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size() - 1);
}

double stddev(const RVec& x) { return std::sqrt(variance(x)); }

double median(RVec x) { return percentile(std::move(x), 50.0); }

double percentile(RVec x, double p) {
  UWB_EXPECTS(!x.empty());
  UWB_EXPECTS(p >= 0.0 && p <= 100.0);
  std::sort(x.begin(), x.end());
  const double rank = p / 100.0 * static_cast<double>(x.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, x.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return x[lo] * (1.0 - frac) + x[hi] * frac;
}

double rms(const RVec& x) {
  UWB_EXPECTS(!x.empty());
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return std::sqrt(acc / static_cast<double>(x.size()));
}

double max_abs(const RVec& x) {
  UWB_EXPECTS(!x.empty());
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace uwb::dsp
