// Discrete Fourier transforms.
//
// `fft`/`ifft` accept any length: power-of-two inputs use an iterative
// radix-2 Cooley-Tukey transform, everything else falls back to Bluestein's
// chirp-z algorithm (needed because the DW1000 CIR is 1016 taps long).
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace uwb::dsp {

/// True if n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// Forward DFT of arbitrary length. Returns X[k] = sum_n x[n] e^{-2pi i kn/N}.
CVec fft(const CVec& x);

/// Inverse DFT of arbitrary length (includes the 1/N factor).
CVec ifft(const CVec& x);

/// In-place radix-2 FFT; `x.size()` must be a power of two.
/// `inverse` selects the conjugate transform (without the 1/N factor).
void fft_pow2_inplace(CVec& x, bool inverse);

}  // namespace uwb::dsp
