// Discrete Fourier transforms.
//
// `fft`/`ifft` accept any length: power-of-two inputs use an iterative
// radix-2 Cooley-Tukey transform, everything else falls back to Bluestein's
// chirp-z algorithm (needed because the DW1000 CIR is 1016 taps long).
//
// Transforms execute against an `FftPlan`: precomputed bit-reversal tables,
// per-stage twiddle factors, and (for Bluestein lengths) the chirp and its
// kernel spectra. Plans are memoised per thread via `plan_for`, so repeated
// transforms of the hot lengths (1024/8192/16384 in the detection pipeline)
// never recompute trigonometry or reallocate workspace. Plans are not
// thread-safe: a plan must stay on the thread that built it, which the
// thread-local cache guarantees.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/types.hpp"

namespace uwb::dsp {

/// True if n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// Precomputed transform state for one length.
///
/// Power-of-two lengths hold a bit-reversal permutation plus contiguous
/// per-stage twiddle tables; other lengths hold the Bluestein chirp, the
/// forward/inverse kernel spectra, a nested plan for the padded
/// power-of-two convolution length, and a reusable scratch buffer.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }
  bool radix2() const { return pow2_; }

  /// In-place unscaled DFT of x[0..size()); requires radix2(). `inverse`
  /// selects the conjugate transform (no 1/N factor).
  void transform_pow2(Complex* x, bool inverse) const;

  /// Out-of-place unscaled DFT of any length: y[0..size()) = DFT(x).
  /// x and y may alias only for radix2() plans.
  void transform(const Complex* x, Complex* y, bool inverse) const;

  /// Final-stage twiddle table of a radix2() plan: e^{-2*pi*i*j/size()} for
  /// j < size()/2. Used to fuse zero-padded doubling transforms (a signal
  /// of length size()/2 padded to size(): even output bins are the
  /// half-length DFT, odd bins the half-length DFT of the input modulated
  /// by this table).
  const Complex* twiddle_half() const;

 private:
  template <bool Inverse>
  void run_pow2(Complex* x) const;
  template <bool Inverse>
  void run_bluestein(const Complex* x, Complex* y) const;

  std::size_t n_ = 0;
  bool pow2_ = false;
  // Radix-2 state: bit-reversal permutation and per-stage forward twiddles
  // (stage with butterfly span `len` starts at offset len/2 - 1; n-1 total).
  std::vector<std::uint32_t> rev_;
  CVec tw_;
  // Bluestein state: chirp w[k] = e^{+i*pi*k^2/n}, kernel spectra for both
  // directions at the padded length m_, nested pow-2 plan, and scratch.
  std::size_t m_ = 0;
  CVec chirp_;
  CVec kernel_fwd_;
  CVec kernel_inv_;
  std::unique_ptr<FftPlan> sub_;
  mutable CVec scratch_;
};

/// The calling thread's cached plan for length n (built on first use; the
/// reference stays valid for the thread's lifetime).
const FftPlan& plan_for(std::size_t n);

/// Hit/miss counters of an FFT plan cache.
struct FftPlanCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
};

/// Counters of the calling thread's plan cache.
FftPlanCacheStats fft_plan_cache_stats();

/// Process-wide counters aggregated across every thread's plan cache (what
/// the bench JSON reports: worker-thread caches are invisible to the main
/// thread otherwise).
FftPlanCacheStats fft_plan_cache_stats_total();

/// Drop the calling thread's cached plans (tests / memory pressure).
void clear_fft_plan_cache();

/// Reusable per-thread scratch buffer for transform intermediates. The
/// returned buffer has size n and undefined contents; it is clobbered by
/// the next dsp call that requests the same slot, so finish with it before
/// calling back into routines that may share the slot (slots 0-1 are used
/// by upsample_fft, slots 2-3 by MatchedFilter).
CVec& fft_scratch(int slot, std::size_t n);

/// Forward DFT of arbitrary length. Returns X[k] = sum_n x[n] e^{-2pi i kn/N}.
CVec fft(const CVec& x);

/// Inverse DFT of arbitrary length (includes the 1/N factor).
CVec ifft(const CVec& x);

/// In-place radix-2 FFT; `x.size()` must be a power of two.
/// `inverse` selects the conjugate transform (without the 1/N factor).
void fft_pow2_inplace(CVec& x, bool inverse);

}  // namespace uwb::dsp
