#include "dsp/peaks.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "dsp/signal.hpp"

namespace uwb::dsp {

std::size_t argmax_abs(const CVec& x) {
  UWB_EXPECTS(!x.empty());
  std::size_t best = 0;
  double best_mag = std::abs(x[0]);
  for (std::size_t i = 1; i < x.size(); ++i) {
    const double m = std::abs(x[i]);
    if (m > best_mag) {
      best_mag = m;
      best = i;
    }
  }
  return best;
}

std::size_t argmax(const RVec& x) {
  UWB_EXPECTS(!x.empty());
  return static_cast<std::size_t>(
      std::distance(x.begin(), std::max_element(x.begin(), x.end())));
}

std::vector<Peak> local_maxima(const CVec& x, double threshold,
                               std::size_t min_distance) {
  UWB_EXPECTS(!x.empty());
  const RVec mag = magnitude(x);
  std::vector<Peak> candidates;
  for (std::size_t i = 0; i < mag.size(); ++i) {
    const bool left_ok = (i == 0) || mag[i] >= mag[i - 1];
    const bool right_ok = (i + 1 == mag.size()) || mag[i] > mag[i + 1];
    if (left_ok && right_ok && mag[i] >= threshold)
      candidates.push_back({i, mag[i]});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Peak& a, const Peak& b) { return a.magnitude > b.magnitude; });
  std::vector<Peak> accepted;
  for (const Peak& c : candidates) {
    const bool clash = std::any_of(
        accepted.begin(), accepted.end(), [&](const Peak& a) {
          const std::size_t d =
              c.index > a.index ? c.index - a.index : a.index - c.index;
          return d < min_distance;
        });
    if (!clash) accepted.push_back(c);
  }
  std::sort(accepted.begin(), accepted.end(),
            [](const Peak& a, const Peak& b) { return a.index < b.index; });
  return accepted;
}

double noise_sigma_estimate(const CVec& x) {
  UWB_EXPECTS(!x.empty());
  RVec mag = magnitude(x);
  const std::size_t mid = mag.size() / 2;
  std::nth_element(mag.begin(), mag.begin() + mid, mag.end());
  // Rayleigh median = sigma * sqrt(2 ln 2).
  return mag[mid] / std::sqrt(2.0 * std::log(2.0));
}

}  // namespace uwb::dsp
