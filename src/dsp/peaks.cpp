#include "dsp/peaks.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "dsp/signal.hpp"

namespace uwb::dsp {

std::size_t argmax_abs(const CVec& x) {
  UWB_EXPECTS(!x.empty());
  // Comparing |x|^2 avoids a hypot per sample; the argmax is the same.
  std::size_t best = 0;
  double best_mag = std::norm(x[0]);
  for (std::size_t i = 1; i < x.size(); ++i) {
    const double m = std::norm(x[i]);
    if (m > best_mag) {
      best_mag = m;
      best = i;
    }
  }
  return best;
}

std::size_t argmax(const RVec& x) {
  UWB_EXPECTS(!x.empty());
  return static_cast<std::size_t>(
      std::distance(x.begin(), std::max_element(x.begin(), x.end())));
}

std::vector<Peak> local_maxima(const CVec& x, double threshold,
                               std::size_t min_distance) {
  UWB_EXPECTS(!x.empty());
  const RVec mag = magnitude(x);
  std::vector<Peak> candidates;
  for (std::size_t i = 0; i < mag.size(); ++i) {
    const bool left_ok = (i == 0) || mag[i] >= mag[i - 1];
    const bool right_ok = (i + 1 == mag.size()) || mag[i] > mag[i + 1];
    if (left_ok && right_ok && mag[i] >= threshold)
      candidates.push_back({i, mag[i]});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Peak& a, const Peak& b) { return a.magnitude > b.magnitude; });
  std::vector<Peak> accepted;
  for (const Peak& c : candidates) {
    const bool clash = std::any_of(
        accepted.begin(), accepted.end(), [&](const Peak& a) {
          const std::size_t d =
              c.index > a.index ? c.index - a.index : a.index - c.index;
          return d < min_distance;
        });
    if (!clash) accepted.push_back(c);
  }
  std::sort(accepted.begin(), accepted.end(),
            [](const Peak& a, const Peak& b) { return a.index < b.index; });
  return accepted;
}

double noise_sigma_estimate(const CVec& x) {
  UWB_EXPECTS(!x.empty());
  // Select the median of |x|^2 (same element as the median of |x|, one
  // sqrt instead of a hypot per sample) in a reused per-thread buffer:
  // the detector calls this once per search-and-subtract iteration.
  thread_local RVec sq;
  sq.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) sq[i] = std::norm(x[i]);
  const std::size_t mid = sq.size() / 2;
  std::nth_element(sq.begin(), sq.begin() + static_cast<std::ptrdiff_t>(mid),
                   sq.end());
  // Rayleigh median = sigma * sqrt(2 ln 2).
  return std::sqrt(sq[mid]) / std::sqrt(2.0 * std::log(2.0));
}

}  // namespace uwb::dsp
