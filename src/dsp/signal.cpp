#include "dsp/signal.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"

namespace uwb::dsp {

RVec magnitude(const CVec& x) {
  RVec m(x.size());
  std::transform(x.begin(), x.end(), m.begin(),
                 [](Complex v) { return std::abs(v); });
  return m;
}

double energy(const CVec& x) {
  double e = 0.0;
  for (const auto& v : x) e += std::norm(v);
  return e;
}

CVec normalize_energy(const CVec& x) {
  const double e = energy(x);
  if (e == 0.0) return x;
  const double s = 1.0 / std::sqrt(e);
  CVec y(x.size());
  std::transform(x.begin(), x.end(), y.begin(), [s](Complex v) { return v * s; });
  return y;
}

CVec normalize_peak(const CVec& x) {
  double peak = 0.0;
  for (const auto& v : x) peak = std::max(peak, std::abs(v));
  if (peak == 0.0) return x;
  const double s = 1.0 / peak;
  CVec y(x.size());
  std::transform(x.begin(), x.end(), y.begin(), [s](Complex v) { return v * s; });
  return y;
}

void add_scaled_shifted(CVec& y, const CVec& x, Complex a, std::ptrdiff_t shift) {
  const auto ny = static_cast<std::ptrdiff_t>(y.size());
  const auto nx = static_cast<std::ptrdiff_t>(x.size());
  const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, shift);
  const std::ptrdiff_t hi = std::min(ny, shift + nx);
  for (std::ptrdiff_t i = lo; i < hi; ++i) y[i] += a * x[i - shift];
}

Complex sample_at(const CVec& x, double t) {
  UWB_EXPECTS(!x.empty());
  if (t <= 0.0) return x.front();
  const auto n = static_cast<double>(x.size() - 1);
  if (t >= n) return x.back();
  const auto i0 = static_cast<std::size_t>(t);
  const double frac = t - static_cast<double>(i0);
  return x[i0] * (1.0 - frac) + x[i0 + 1] * frac;
}

}  // namespace uwb::dsp
