// Window functions (used for pulse-template construction and spectral work).
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace uwb::dsp {

/// Periodic Hann window of length n.
RVec hann(std::size_t n);

/// Periodic Hamming window of length n.
RVec hamming(std::size_t n);

/// Gaussian window of length n; `sigma_fraction` is the standard deviation
/// as a fraction of (n-1)/2.
RVec gaussian(std::size_t n, double sigma_fraction);

}  // namespace uwb::dsp
