// Peak search and noise-floor estimation on CIR-like signals.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace uwb::dsp {

/// A detected local maximum.
struct Peak {
  std::size_t index = 0;
  double magnitude = 0.0;
};

/// Index of the sample with the largest magnitude.
std::size_t argmax_abs(const CVec& x);

/// Index of the largest value.
std::size_t argmax(const RVec& x);

/// All local maxima of |x| with magnitude >= threshold, at least
/// `min_distance` samples apart (greedy, strongest first).
std::vector<Peak> local_maxima(const CVec& x, double threshold,
                               std::size_t min_distance);

/// Estimate the per-component noise sigma of a complex signal whose samples
/// are mostly circular Gaussian noise, via the median of the Rayleigh
/// magnitudes (robust against a few strong signal taps).
double noise_sigma_estimate(const CVec& x);

}  // namespace uwb::dsp
