#include "dsp/resample.hpp"

#include <algorithm>

#include "common/expects.hpp"
#include "dsp/fft.hpp"
#include "simd/simd.hpp"

namespace uwb::dsp {

void upsample_spectrum(const Complex* spec, std::size_t n, int factor,
                       Complex* padded) {
  const std::size_t m = n * static_cast<std::size_t>(factor);
  std::fill(padded, padded + m, Complex{});
  // Copy positive frequencies [0, n/2) and negative frequencies (n/2, n).
  const std::size_t half = n / 2;
  for (std::size_t k = 0; k < half; ++k) padded[k] = spec[k];
  for (std::size_t k = half + (n % 2); k < n; ++k) padded[m - n + k] = spec[k];
  if (n % 2 == 0) {
    // Split the Nyquist bin between the two halves to keep a real input real.
    padded[half] = spec[half] * 0.5;
    padded[m - half] = spec[half] * 0.5;
  } else {
    padded[half] = spec[half];
  }
}

CVec upsample_fft(const CVec& x, int factor) {
  UWB_EXPECTS(!x.empty());
  UWB_EXPECTS(factor >= 1);
  if (factor == 1) return x;
  const std::size_t n = x.size();
  const std::size_t m = n * static_cast<std::size_t>(factor);
  CVec& spec = fft_scratch(0, n);
  plan_for(n).transform(x.data(), spec.data(), false);
  const FftPlan& pm = plan_for(m);
  CVec y(m);
  const double scale =
      static_cast<double>(factor) / static_cast<double>(m);
  if (pm.radix2()) {
    upsample_spectrum(spec.data(), n, factor, y.data());
    pm.transform_pow2(y.data(), true);
  } else {
    CVec& padded = fft_scratch(1, m);
    upsample_spectrum(spec.data(), n, factor, padded.data());
    pm.transform(padded.data(), y.data(), true);
  }
  simd::scale(reinterpret_cast<double*>(y.data()), scale, m);
  return y;
}

}  // namespace uwb::dsp
