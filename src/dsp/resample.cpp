#include "dsp/resample.hpp"

#include "common/expects.hpp"
#include "dsp/fft.hpp"

namespace uwb::dsp {

CVec upsample_fft(const CVec& x, int factor) {
  UWB_EXPECTS(!x.empty());
  UWB_EXPECTS(factor >= 1);
  if (factor == 1) return x;
  const std::size_t n = x.size();
  const std::size_t m = n * static_cast<std::size_t>(factor);
  const CVec spec = fft(x);
  CVec padded(m, Complex{});
  // Copy positive frequencies [0, n/2) and negative frequencies (n/2, n).
  const std::size_t half = n / 2;
  for (std::size_t k = 0; k < half; ++k) padded[k] = spec[k];
  for (std::size_t k = half + (n % 2); k < n; ++k) padded[m - n + k] = spec[k];
  if (n % 2 == 0) {
    // Split the Nyquist bin between the two halves to keep a real input real.
    padded[half] = spec[half] * 0.5;
    padded[m - half] = spec[half] * 0.5;
  } else {
    padded[half] = spec[half];
  }
  CVec y = ifft(padded);
  for (auto& v : y) v *= static_cast<double>(factor);
  return y;
}

}  // namespace uwb::dsp
