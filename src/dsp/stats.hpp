// Basic descriptive statistics for evaluation harnesses.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace uwb::dsp {

double mean(const RVec& x);
/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double variance(const RVec& x);
double stddev(const RVec& x);
/// Median (copies and partially sorts).
double median(RVec x);
/// Linear-interpolated percentile, p in [0, 100].
double percentile(RVec x, double p);
double rms(const RVec& x);
double max_abs(const RVec& x);

}  // namespace uwb::dsp
