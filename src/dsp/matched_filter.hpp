// Matched filtering (paper Sect. IV, Eq. 3).
//
// The paper's detector convolves the received CIR with the time-reversed
// pulse template. We implement the equivalent correlation form:
//
//   y[n] = sum_m r[n + m] * conj(s[m])
//
// so that the peak index n of |y| is directly the *start* sample of the
// template within the CIR. Templates are normalised to unit energy, making
// |y[n]| the amplitude estimate of a pulse starting at n — comparable across
// templates of different widths (needed by the pulse-shape classifier of
// Sect. V).
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace uwb::dsp {

/// Correlation-form matched filter for one pulse template.
class MatchedFilter {
 public:
  /// The template is normalised to unit energy on construction.
  explicit MatchedFilter(CVec pulse_template);

  /// Correlate against `r`. Output has the same length as `r`; output index
  /// n is the template start position (template samples beyond the end of
  /// `r` are treated as zero).
  CVec apply(const CVec& r) const;

  /// Shared-spectrum fast path: correlate against an input whose forward
  /// FFT at the power-of-two length `padded` is already known. `spectrum`
  /// is the length-`padded` FFT of the zero-padded input; `padded` must be
  /// >= input length + template_length() - 1 so the circular convolution
  /// equals the linear correlation. Writes the first `out_len` correlation
  /// samples into `out` (resized). One inverse transform per call — the
  /// caller amortises the single forward transform over a whole template
  /// bank.
  void apply_spectrum(const Complex* spectrum, std::size_t padded,
                      std::size_t out_len, CVec& out) const;

  /// FFT of the conj-time-reversed unit template at the power-of-two length
  /// `padded` (cached; rebuilt when `padded` changes).
  const CVec& template_spectrum(std::size_t padded) const;

  /// Unit-energy template used by the filter.
  const CVec& unit_template() const { return tmpl_; }

  std::size_t template_length() const { return tmpl_.size(); }

 private:
  CVec tmpl_;
  // Cached template spectrum for FFT-based correlation (lazily built per
  // padded length; rebuilt if the input length changes).
  mutable CVec tmpl_spec_;
  mutable std::size_t spec_len_ = 0;
};

/// Direct (non-FFT) correlation with identical semantics; used for testing
/// and for very short inputs.
CVec correlate_direct(const CVec& r, const CVec& unit_template);

}  // namespace uwb::dsp
