// Band-limited resampling.
//
// Sect. IV step 1 of the paper upsamples the CIR "using fast Fourier
// transform in order to obtain a smoother signal"; `upsample_fft` is that
// operation: zero-padding in the frequency domain, which interpolates the
// band-limited signal exactly.
#pragma once

#include "common/types.hpp"

namespace uwb::dsp {

/// FFT interpolation by an integer factor. Returns a signal of length
/// `x.size() * factor`; sample i of the output corresponds to time
/// i * (Ts / factor). factor >= 1.
CVec upsample_fft(const CVec& x, int factor);

}  // namespace uwb::dsp
