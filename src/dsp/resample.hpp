// Band-limited resampling.
//
// Sect. IV step 1 of the paper upsamples the CIR "using fast Fourier
// transform in order to obtain a smoother signal"; `upsample_fft` is that
// operation: zero-padding in the frequency domain, which interpolates the
// band-limited signal exactly.
#pragma once

#include "common/types.hpp"

namespace uwb::dsp {

/// FFT interpolation by an integer factor. Returns a signal of length
/// `x.size() * factor`; sample i of the output corresponds to time
/// i * (Ts / factor). factor >= 1.
CVec upsample_fft(const CVec& x, int factor);

/// Frequency-domain zero-stuffing: scatter the length-n spectrum `spec`
/// into the length n*factor buffer `padded` (Nyquist bin split for even n,
/// keeping real inputs real). Building block of upsample_fft, exposed so
/// the detector can reuse the stuffed spectrum it already has instead of
/// re-transforming the upsampled signal.
void upsample_spectrum(const Complex* spec, std::size_t n, int factor,
                       Complex* padded);

}  // namespace uwb::dsp
