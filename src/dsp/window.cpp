#include "dsp/window.hpp"

#include <cmath>
#include <numbers>

#include "common/expects.hpp"

namespace uwb::dsp {

RVec hann(std::size_t n) {
  UWB_EXPECTS(n >= 1);
  RVec w(n);
  for (std::size_t i = 0; i < n; ++i)
    w[i] = 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi * static_cast<double>(i) /
                                static_cast<double>(n));
  return w;
}

RVec hamming(std::size_t n) {
  UWB_EXPECTS(n >= 1);
  RVec w(n);
  for (std::size_t i = 0; i < n; ++i)
    w[i] = 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi * static_cast<double>(i) /
                                  static_cast<double>(n));
  return w;
}

RVec gaussian(std::size_t n, double sigma_fraction) {
  UWB_EXPECTS(n >= 1);
  UWB_EXPECTS(sigma_fraction > 0.0);
  RVec w(n);
  const double centre = static_cast<double>(n - 1) / 2.0;
  const double sigma = sigma_fraction * centre > 0 ? sigma_fraction * centre
                                                   : sigma_fraction;
  for (std::size_t i = 0; i < n; ++i) {
    const double z = (static_cast<double>(i) - centre) / (sigma > 0 ? sigma : 1.0);
    w[i] = std::exp(-0.5 * z * z);
  }
  return w;
}

}  // namespace uwb::dsp
