// Minimal CSV writer so benches can export the exact series behind every
// reproduced figure (for external plotting).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace uwb {

class CsvWriter {
 public:
  /// Opens (truncates) `path`. Check ok() before relying on output.
  explicit CsvWriter(const std::string& path);

  bool ok() const { return static_cast<bool>(out_); }

  /// Write the header row (call once, first).
  void header(const std::vector<std::string>& columns);

  /// Write one numeric row; must match the header width.
  void row(const std::vector<double>& values);

  /// Rows written so far (excluding the header).
  std::size_t rows_written() const { return rows_; }

 private:
  std::ofstream out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace uwb
