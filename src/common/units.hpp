// Time and unit handling.
//
// Simulation time is an integer picosecond count (`SimTime`). Picoseconds are
// fine enough to represent the DW1000's 15.65 ps timestamp resolution without
// accumulating floating-point error over long simulations, and a signed
// 64-bit count covers ±106 days.
//
// Physical lengths are carried as plain `double` metres inside numeric code;
// protocol-level APIs document the unit in the name (`distance_m`, ...).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace uwb {

/// Absolute simulation time or duration in integer picoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t picoseconds) : ps_(picoseconds) {}

  static constexpr SimTime from_seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e12 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr SimTime from_micros(double us) { return from_seconds(us * 1e-6); }
  static constexpr SimTime from_nanos(double ns) { return from_seconds(ns * 1e-9); }

  constexpr std::int64_t ps() const { return ps_; }
  constexpr double seconds() const { return static_cast<double>(ps_) * 1e-12; }
  constexpr double micros() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double nanos() const { return static_cast<double>(ps_) * 1e-3; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime(ps_ + o.ps_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(ps_ - o.ps_); }
  constexpr SimTime& operator+=(SimTime o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ps_ -= o.ps_;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime(ps_ * k); }

  std::string to_string() const;

 private:
  std::int64_t ps_ = 0;
};

/// Convert decibels to linear power ratio.
double db_to_linear(double db);
/// Convert linear power ratio to decibels.
double linear_to_db(double ratio);

}  // namespace uwb
