// Time and unit handling.
//
// Simulation time is an integer picosecond count (`SimTime`). Picoseconds are
// fine enough to represent the DW1000's 15.65 ps timestamp resolution without
// accumulating floating-point error over long simulations, and a signed
// 64-bit count covers ±106 days.
//
// The DW1000 stack juggles four scales that are all "just a number" in
// untyped code: seconds, metres, ~15.65 ps device ticks, and ~1 ns CIR tap
// indices. Mixing them up is the classic UWB ranging bug (a tick count fed
// where seconds were expected is off by 10 orders of magnitude and still
// "runs"). The strong types below make those mixes a compile error while
// compiling to the identical machine code as a raw double/int64:
//
//   Seconds      double-backed physical duration (tof, jitter, airtime)
//   Meters       double-backed physical length (distances, ranging errors)
//   DwTicks      int64-backed signed duration on the 63.8976 GHz device clock
//   CirTapIndex  int32-backed position in the CIR accumulator (T_s spacing)
//
// Construction and cross-unit conversion are always explicit; the only way
// from one unit to another is a named conversion function below. The escape
// hatch to untyped code is `.value()` / `.count()`.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/constants.hpp"

namespace uwb {

/// Absolute simulation time or duration in integer picoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t picoseconds) : ps_(picoseconds) {}

  static constexpr SimTime from_seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e12 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr SimTime from_micros(double us) { return from_seconds(us * 1e-6); }
  static constexpr SimTime from_nanos(double ns) { return from_seconds(ns * 1e-9); }

  constexpr std::int64_t ps() const { return ps_; }
  constexpr double seconds() const { return static_cast<double>(ps_) * 1e-12; }
  constexpr double micros() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double nanos() const { return static_cast<double>(ps_) * 1e-3; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime(ps_ + o.ps_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(ps_ - o.ps_); }
  constexpr SimTime& operator+=(SimTime o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ps_ -= o.ps_;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime(ps_ * k); }

  std::string to_string() const;

 private:
  std::int64_t ps_ = 0;
};

/// A physical duration in seconds. Same-unit arithmetic stays in the unit;
/// scaling by a dimensionless factor stays in the unit; the ratio of two
/// durations is dimensionless.
class Seconds {
 public:
  constexpr Seconds() = default;
  constexpr explicit Seconds(double s) : s_(s) {}

  constexpr double value() const { return s_; }

  constexpr auto operator<=>(const Seconds&) const = default;

  constexpr Seconds operator+(Seconds o) const { return Seconds(s_ + o.s_); }
  constexpr Seconds operator-(Seconds o) const { return Seconds(s_ - o.s_); }
  constexpr Seconds operator-() const { return Seconds(-s_); }
  constexpr Seconds operator*(double k) const { return Seconds(s_ * k); }
  constexpr Seconds operator/(double k) const { return Seconds(s_ / k); }
  constexpr double operator/(Seconds o) const { return s_ / o.s_; }
  constexpr Seconds& operator+=(Seconds o) {
    s_ += o.s_;
    return *this;
  }
  constexpr Seconds& operator-=(Seconds o) {
    s_ -= o.s_;
    return *this;
  }

 private:
  double s_ = 0.0;
};

constexpr Seconds operator*(double k, Seconds s) { return s * k; }

/// A physical length in metres.
class Meters {
 public:
  constexpr Meters() = default;
  constexpr explicit Meters(double m) : m_(m) {}

  constexpr double value() const { return m_; }

  constexpr auto operator<=>(const Meters&) const = default;

  constexpr Meters operator+(Meters o) const { return Meters(m_ + o.m_); }
  constexpr Meters operator-(Meters o) const { return Meters(m_ - o.m_); }
  constexpr Meters operator-() const { return Meters(-m_); }
  constexpr Meters operator*(double k) const { return Meters(m_ * k); }
  constexpr Meters operator/(double k) const { return Meters(m_ / k); }
  constexpr double operator/(Meters o) const { return m_ / o.m_; }
  constexpr Meters& operator+=(Meters o) {
    m_ += o.m_;
    return *this;
  }
  constexpr Meters& operator-=(Meters o) {
    m_ -= o.m_;
    return *this;
  }

 private:
  double m_ = 0.0;
};

constexpr Meters operator*(double k, Meters m) { return m * k; }

/// A signed duration counted in DW1000 device ticks (~15.65 ps each). This
/// is the *operand* type for 40-bit timestamp arithmetic — the absolute
/// wrap-aware counter itself is `dw::DwTimestamp` (dw1000/clock.hpp), whose
/// differences and offsets travel as DwTicks.
class DwTicks {
 public:
  constexpr DwTicks() = default;
  constexpr explicit DwTicks(std::int64_t ticks) : ticks_(ticks) {}

  constexpr std::int64_t count() const { return ticks_; }

  constexpr auto operator<=>(const DwTicks&) const = default;

  constexpr DwTicks operator+(DwTicks o) const { return DwTicks(ticks_ + o.ticks_); }
  constexpr DwTicks operator-(DwTicks o) const { return DwTicks(ticks_ - o.ticks_); }
  constexpr DwTicks operator-() const { return DwTicks(-ticks_); }
  constexpr DwTicks operator*(std::int64_t k) const { return DwTicks(ticks_ * k); }

 private:
  std::int64_t ticks_ = 0;
};

/// An index into the CIR accumulator (taps spaced T_s = 1.0016 ns apart).
class CirTapIndex {
 public:
  constexpr CirTapIndex() = default;
  constexpr explicit CirTapIndex(std::int32_t tap) : tap_(tap) {}

  constexpr std::int32_t count() const { return tap_; }

  constexpr auto operator<=>(const CirTapIndex&) const = default;

  constexpr CirTapIndex operator+(CirTapIndex o) const {
    return CirTapIndex(tap_ + o.tap_);
  }
  constexpr CirTapIndex operator-(CirTapIndex o) const {
    return CirTapIndex(tap_ - o.tap_);
  }

 private:
  std::int32_t tap_ = 0;
};

// ---- Named cross-unit conversions ------------------------------------------
// Each conversion states its scale factor once; call sites can no longer pick
// the wrong constant (or the right constant in the wrong direction).

/// Duration of a whole tick count on the 63.8976 GHz device clock.
constexpr Seconds to_seconds(DwTicks t) {
  return Seconds(static_cast<double>(t.count()) * k::dw_tick_s);
}

/// Nearest whole device-tick count for a physical duration.
constexpr DwTicks to_dw_ticks(Seconds s) {
  const double t = s.value() * k::dw_tick_hz;
  return DwTicks(static_cast<std::int64_t>(t + (t >= 0 ? 0.5 : -0.5)));
}

/// One-way distance covered in `tof` at the DW1000 propagation speed.
constexpr Meters distance_from_tof(Seconds tof) {
  return Meters(tof.value() * k::c_air);
}

/// One-way time of flight across `d` at the DW1000 propagation speed.
constexpr Seconds tof_from_distance(Meters d) {
  return Seconds(d.value() / k::c_air);
}

/// Time offset of a CIR tap from the accumulator origin (T_s per tap).
constexpr Seconds to_seconds(CirTapIndex tap) {
  return Seconds(static_cast<double>(tap.count()) * k::cir_ts_s);
}

/// Fractional CIR tap position of a time offset (callers round or
/// interpolate as appropriate for their detector).
constexpr double cir_tap_of(Seconds t) { return t.value() / k::cir_ts_s; }

/// Nearest whole CIR tap for a time offset.
constexpr CirTapIndex to_cir_tap(Seconds t) {
  const double tap = cir_tap_of(t);
  return CirTapIndex(static_cast<std::int32_t>(tap + (tap >= 0 ? 0.5 : -0.5)));
}

/// Distance equivalent of a CIR tap offset (one-way, at c_air).
constexpr Meters distance_of(CirTapIndex tap) {
  return distance_from_tof(to_seconds(tap));
}

/// SimTime for a physical duration (rounds to the picosecond grid).
constexpr SimTime to_sim_time(Seconds s) { return SimTime::from_seconds(s.value()); }

/// Physical duration of a SimTime span.
constexpr Seconds to_seconds(SimTime t) { return Seconds(t.seconds()); }

/// Convert decibels to linear power ratio.
double db_to_linear(double db);
/// Convert linear power ratio to decibels.
double linear_to_db(double ratio);

}  // namespace uwb
