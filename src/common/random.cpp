#include "common/random.hpp"

#include <cmath>
#include <numbers>

#include "common/expects.hpp"

namespace uwb {

namespace {

// splitmix64 finalizer (Steele et al., "Fast splittable pseudorandom number
// generators"): a bijective avalanche mix on 64 bits.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  // Advance the base by the golden-gamma increment per stream index, then
  // finalize twice so nearby (base, stream) pairs decorrelate fully.
  const std::uint64_t z = base + (stream + 1) * 0x9E3779B97F4A7C15ULL;
  return mix64(mix64(z) ^ 0x8BADF00D5AFEC0DEULL);
}

double Rng::uniform(double lo, double hi) {
  UWB_EXPECTS(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  UWB_EXPECTS(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev) {
  UWB_EXPECTS(stddev >= 0.0);
  if (stddev == 0.0) return mean;
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::rayleigh(double sigma) {
  UWB_EXPECTS(sigma >= 0.0);
  const double u = uniform(1e-300, 1.0);
  return sigma * std::sqrt(-2.0 * std::log(u));
}

double Rng::exponential(double mean) {
  UWB_EXPECTS(mean > 0.0);
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

int Rng::poisson(double mean) {
  UWB_EXPECTS(mean >= 0.0);
  if (mean == 0.0) return 0;
  return std::poisson_distribution<int>(mean)(engine_);
}

bool Rng::chance(double probability) {
  UWB_EXPECTS(probability >= 0.0 && probability <= 1.0);
  return std::bernoulli_distribution(probability)(engine_);
}

Complex Rng::complex_normal(double sigma) {
  return {normal(0.0, sigma), normal(0.0, sigma)};
}

Complex Rng::random_phase() {
  const double phi = uniform(0.0, 2.0 * std::numbers::pi);
  return {std::cos(phi), std::sin(phi)};
}

Rng Rng::fork() { return Rng(engine_()); }

}  // namespace uwb
