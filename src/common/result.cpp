#include "common/result.hpp"

namespace uwb {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidConfig: return "invalid_config";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kLateTx: return "late_tx";
    case ErrorCode::kDecodeFailure: return "decode_failure";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  return std::string(uwb::to_string(code_)) + ": " + message_;
}

}  // namespace uwb
