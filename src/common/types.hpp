// Fundamental numeric aliases used throughout the library.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace uwb {

using Real = double;
using Complex = std::complex<double>;
using CVec = std::vector<Complex>;
using RVec = std::vector<double>;

}  // namespace uwb
