// Precondition / postcondition checking.
//
// Following the Core Guidelines (I.5/I.6), interface preconditions are stated
// and checked at run time. Violations indicate programmer error and throw
// uwb::PreconditionError so tests can assert on them.
#pragma once

#include <stdexcept>
#include <string>

namespace uwb {

/// Thrown when a stated interface precondition is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant or postcondition fails.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void precondition_failed(const char* expr, const char* file,
                                             int line) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " +
                          file + ":" + std::to_string(line));
}
[[noreturn]] inline void invariant_failed(const char* expr, const char* file,
                                          int line) {
  throw InvariantError(std::string("invariant failed: ") + expr + " at " +
                       file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace uwb

#define UWB_EXPECTS(cond)                                          \
  do {                                                             \
    if (!(cond))                                                   \
      ::uwb::detail::precondition_failed(#cond, __FILE__, __LINE__); \
  } while (false)

#define UWB_ENSURES(cond)                                        \
  do {                                                           \
    if (!(cond))                                                 \
      ::uwb::detail::invariant_failed(#cond, __FILE__, __LINE__); \
  } while (false)
