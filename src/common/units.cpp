#include "common/units.hpp"

#include <cmath>
#include <cstdio>

namespace uwb {

std::string SimTime::to_string() const {
  char buf[48];
  const double us = micros();
  std::snprintf(buf, sizeof(buf), "%.6f us", us);
  return buf;
}

double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

double linear_to_db(double ratio) { return 10.0 * std::log10(ratio); }

}  // namespace uwb
