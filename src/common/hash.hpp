// Small hashing helpers for unordered cache keys.
//
// The thread-local memo caches (pulse templates, detector template banks,
// FFT plans) key on mixtures of small integers and the exact bit patterns
// of doubles. `hash_mix` is a splitmix64-style finalizer: cheap, stateless,
// and good enough to keep those unordered_map buckets balanced.
#pragma once

#include <cstdint>
#include <cstring>

namespace uwb {

/// Splitmix64 finalizer: avalanches every input bit over the output.
constexpr std::uint64_t hash_mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Combine a new value into an existing hash.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return hash_mix(seed ^ (v + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2)));
}

/// Exact bit pattern of a double (distinguishes -0.0/0.0 and NaN payloads,
/// which is what cache keys want: bitwise-equal inputs hit, others miss).
inline std::uint64_t double_bits(double x) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

}  // namespace uwb
