#include "common/csv.hpp"

#include <cstdio>

#include "common/expects.hpp"

namespace uwb {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::header(const std::vector<std::string>& columns) {
  UWB_EXPECTS(!columns.empty());
  UWB_EXPECTS(columns_ == 0);  // header written once, before any rows
  columns_ = columns.size();
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
  UWB_EXPECTS(columns_ > 0);
  UWB_EXPECTS(values.size() == columns_);
  char buf[32];
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    std::snprintf(buf, sizeof(buf), "%.9g", values[i]);
    out_ << buf;
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace uwb
