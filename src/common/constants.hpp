// Physical constants and DW1000 datasheet constants used across modules.
//
// DW1000 values follow the Decawave DW1000 User Manual v2.10 and the paper:
//  - device timestamps tick at 499.2 MHz * 128 = 63.8976 GHz (~15.65 ps),
//  - the CIR accumulator at PRF 64 MHz holds 1016 complex taps spaced at
//    half a chip, T_s = 1/(2 * 499.2 MHz) = 1.0016 ns,
//  - delayed transmission ignores the low 9 bits of the 40-bit target time,
//    giving ~8.013 ns transmit granularity.
#pragma once

#include <cstdint>

namespace uwb::k {

/// Speed of light in vacuum [m/s].
inline constexpr double c_vacuum = 299'792'458.0;

/// Propagation speed in air used by DW1000-based ranging [m/s].
inline constexpr double c_air = 299'702'547.0;

/// DW1000 system clock driving timestamps: 128 * 499.2 MHz [Hz].
inline constexpr double dw_tick_hz = 128.0 * 499.2e6;  // 63.8976 GHz

/// One device timestamp tick [s] (~15.65 ps).
inline constexpr double dw_tick_s = 1.0 / dw_tick_hz;

/// One device timestamp tick [ps].
inline constexpr double dw_tick_ps = 1e12 / dw_tick_hz;

/// Device timestamps are 40-bit counters.
inline constexpr std::uint64_t dw_timestamp_mask = (std::uint64_t{1} << 40) - 1;

/// Delayed TX ignores the low 9 bits of the 40-bit target time.
inline constexpr int dw_delayed_tx_ignored_bits = 9;

/// CIR accumulator length at PRF 64 MHz [taps].
inline constexpr int cir_len_prf64 = 1016;

/// CIR accumulator length at PRF 16 MHz [taps].
inline constexpr int cir_len_prf16 = 992;

/// CIR tap spacing: half a 499.2 MHz chip [s] (paper: T_s = 1.0016 ns).
inline constexpr double cir_ts_s = 1.0 / (2.0 * 499.2e6);

/// CIR tap spacing [ns].
inline constexpr double cir_ts_ns = cir_ts_s * 1e9;

/// DW1000 current draw in receive mode [A] (paper Sect. I).
inline constexpr double rx_current_a = 0.155;

/// DW1000 current draw in transmit mode [A] (paper Sect. I).
inline constexpr double tx_current_a = 0.090;

/// Typical supply voltage [V].
inline constexpr double supply_v = 3.3;

/// Default TC_PGDELAY register value for channel 7 / 900 MHz bandwidth.
inline constexpr std::uint8_t tc_pgdelay_default = 0x93;

/// Highest TC_PGDELAY register value (8-bit register).
inline constexpr std::uint8_t tc_pgdelay_max = 0xFF;

/// Number of distinct pulse shapes available (paper Sect. V: "up to 108").
inline constexpr int num_pulse_shapes = tc_pgdelay_max - tc_pgdelay_default + 1;

}  // namespace uwb::k
