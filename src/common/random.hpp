// Deterministic random number generation.
//
// All stochastic components take an explicit `Rng&` so that every simulation
// is reproducible from a single seed (no hidden global state, cf. I.2).
#pragma once

#include <cstdint>
#include <random>

#include "common/types.hpp"

namespace uwb {

/// Deterministically derive the seed of sub-stream `stream` from a base
/// seed. Pure 64-bit integer mixing (splitmix64 finalizer), so the result
/// is identical on every platform, compiler, and thread schedule — the
/// foundation of the Monte-Carlo engine's determinism contract: trial i of
/// a run seeded with `base` always uses derive_seed(base, i), regardless
/// of how trials are distributed over worker threads.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

/// Seeded pseudo-random source with the distributions the simulator needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Rayleigh-distributed magnitude with scale sigma.
  double rayleigh(double sigma);

  /// Exponential with given mean.
  double exponential(double mean);

  /// Poisson-distributed count with given mean.
  int poisson(double mean);

  /// Bernoulli trial.
  bool chance(double probability);

  /// Circularly-symmetric complex Gaussian sample with per-component sigma.
  Complex complex_normal(double sigma);

  /// Unit-magnitude complex number with uniform phase.
  Complex random_phase();

  /// Fork a new independent generator (stream split for sub-components).
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace uwb
