// Recoverable-error handling: status codes and a small Result<T>.
//
// UWB_EXPECTS (expects.hpp) stays reserved for programmer-error
// preconditions; conditions that can legitimately arise at run time from
// user input or radio behaviour — invalid scenario configurations, timed-out
// rounds, late delayed transmissions — travel through uwb::Status /
// uwb::Result<T> so callers can report and degrade instead of aborting.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/expects.hpp"

namespace uwb {

enum class ErrorCode {
  kOk = 0,
  /// A user-supplied configuration is out of range or inconsistent.
  kInvalidConfig,
  /// An operation gave up waiting (e.g. an RX window expired).
  kTimeout,
  /// A delayed transmission could not be honoured (DW1000 HPDWARN).
  kLateTx,
  /// A payload was received but could not be decoded.
  kDecodeFailure,
};

const char* to_string(ErrorCode code);

/// Success-or-error outcome of an operation with no value. The class-level
/// [[nodiscard]] makes silently dropping any returned Status a compiler
/// warning (an error under UWB_WERROR); uwb_lint's nodiscard-result rule
/// additionally requires the attribute on each returning declaration so the
/// intent is visible at the call-site's header.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status success() { return Status(); }
  [[nodiscard]] static Status error(ErrorCode code, std::string message) {
    return Status(code, std::move(message));
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// A value or the Status explaining its absence.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}       // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    UWB_EXPECTS(!std::get<Status>(data_).ok());  // an ok-Status carries no value
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The value; precondition ok().
  T& value() {
    UWB_EXPECTS(ok());
    return std::get<T>(data_);
  }
  const T& value() const {
    UWB_EXPECTS(ok());
    return std::get<T>(data_);
  }

  /// The error (Status::success() when ok()).
  [[nodiscard]] Status status() const {
    return ok() ? Status::success() : std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace uwb
