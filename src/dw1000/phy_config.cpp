#include "dw1000/phy_config.hpp"

#include <cmath>

#include "common/expects.hpp"

namespace uwb::dw {

namespace {
constexpr double kPsym64 = 1017.63e-9;
constexpr double kPsym16 = 993.59e-9;
constexpr double kDsym110 = 8205.13e-9;
constexpr double kDsym850 = 1025.64e-9;
constexpr double kDsym6M8 = 128.21e-9;
constexpr int kPhrSymbols = 21;
constexpr int kRsBlockBits = 330;
constexpr int kRsParityBits = 48;
}  // namespace

UwbChannelInfo channel_info(int channel_number) {
  switch (channel_number) {
    case 1: return {1, 3494.4e6, 499.2e6};
    case 2: return {2, 3993.6e6, 499.2e6};
    case 3: return {3, 4492.8e6, 499.2e6};
    case 4: return {4, 3993.6e6, 900e6};
    case 5: return {5, 6489.6e6, 499.2e6};
    case 7: return {7, 6489.6e6, 900e6};
    default: break;
  }
  throw PreconditionError("unsupported DW1000 channel number");
}

double PhyConfig::preamble_symbol_s() const {
  return prf == Prf::Mhz64 ? kPsym64 : kPsym16;
}

int PhyConfig::sfd_symbols() const { return rate == DataRate::k110 ? 64 : 8; }

double PhyConfig::shr_duration_s() const {
  return (preamble_symbols + sfd_symbols()) * preamble_symbol_s();
}

double PhyConfig::phr_duration_s() const {
  // The PHR is sent at 850 kbps for the 850 kbps and 6.8 Mbps data rates,
  // and at 110 kbps for the 110 kbps rate.
  const double sym = rate == DataRate::k110 ? kDsym110 : kDsym850;
  return kPhrSymbols * sym;
}

double PhyConfig::data_symbol_s() const {
  switch (rate) {
    case DataRate::k110: return kDsym110;
    case DataRate::k850: return kDsym850;
    case DataRate::M6_8: return kDsym6M8;
  }
  throw InvariantError("unreachable data rate");
}

double PhyConfig::payload_duration_s(int payload_bytes) const {
  UWB_EXPECTS(payload_bytes >= 0 && payload_bytes <= 127);
  const int bits = payload_bytes * 8;
  const int parity =
      kRsParityBits * static_cast<int>(std::ceil(static_cast<double>(bits) /
                                                 kRsBlockBits));
  return (bits + parity) * data_symbol_s();
}

double PhyConfig::frame_duration_s(int payload_bytes) const {
  return shr_duration_s() + phr_duration_s() + payload_duration_s(payload_bytes);
}

int PhyConfig::cir_length() const {
  return prf == Prf::Mhz64 ? k::cir_len_prf64 : k::cir_len_prf16;
}

void PhyConfig::validate() const {
  channel_info(channel);  // throws on a bad channel
  UWB_EXPECTS(preamble_symbols >= 64 && preamble_symbols <= 4096);
  UWB_EXPECTS(tc_pgdelay >= k::tc_pgdelay_default);
}

double min_response_delay_s(const PhyConfig& cfg, int init_payload_bytes) {
  return cfg.phr_duration_s() + cfg.payload_duration_s(init_payload_bytes) +
         cfg.shr_duration_s();
}

}  // namespace uwb::dw
