// Receive-quality diagnostics derived from the CIR — the software
// equivalent of the DW1000's RX_FQUAL/RX_TIME register fields.
//
// Real deployments use these figures to adapt PHY settings (the paper's
// ref. [7]) and to flag NLOS links: an attenuated direct path shows up as a
// low first-path-to-total-power ratio long before ranging breaks down.
#pragma once

#include "common/types.hpp"

namespace uwb::dw {

struct RxDiagnostics {
  /// Magnitude of the first-path tap (interpolated at the detected index).
  double first_path_amplitude = 0.0;
  /// First-path power relative to unit amplitude [dB].
  double first_path_power_db = 0.0;
  /// Total received power over the whole accumulator [dB].
  double total_power_db = 0.0;
  /// Estimated per-component noise sigma of the accumulator.
  double noise_sigma = 0.0;
  /// Peak signal-to-noise ratio [dB].
  double peak_snr_db = 0.0;
  /// First-path-to-total-power ratio [dB]; strongly negative values are the
  /// classic NLOS signature (energy arrives via reflections).
  double fp_to_total_db = 0.0;
  /// Fractional tap index of the detected first path.
  double first_path_index = 0.0;
};

/// Compute diagnostics from an estimated CIR.
RxDiagnostics analyze_cir(const CVec& cir_taps);

/// Simple NLOS indicator: true when the first path carries less than
/// `threshold_db` of the total received power (default -12 dB, a typical
/// operating point for DW1000-based NLOS classifiers).
bool likely_nlos(const RxDiagnostics& diag, double threshold_db = -12.0);

}  // namespace uwb::dw
