#include "dw1000/timestamping.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "dsp/peaks.hpp"
#include "dsp/signal.hpp"
#include "dw1000/pulse.hpp"

namespace uwb::dw {

double rx_timestamp_sigma_s(const TimestampModelParams& params,
                            std::uint8_t tc_pgdelay) {
  UWB_EXPECTS(params.base_jitter_s > 0.0);
  const double w = pulse_width_factor(tc_pgdelay);
  return params.base_jitter_s * (1.0 + params.width_jitter_slope * (w - 1.0));
}

DwTimestamp noisy_rx_timestamp(const TimestampModelParams& params,
                               std::uint8_t tc_pgdelay, DwTimestamp true_arrival,
                               Rng& rng) {
  const double sigma = rx_timestamp_sigma_s(params, tc_pgdelay);
  return true_arrival.plus_seconds(Seconds(rng.normal(0.0, sigma)));
}

double detect_first_path(const CVec& cir_taps, double noise_floor_factor,
                         double relative_factor) {
  UWB_EXPECTS(!cir_taps.empty());
  UWB_EXPECTS(noise_floor_factor > 0.0 && relative_factor > 0.0);
  const RVec mag = dsp::magnitude(cir_taps);
  const double peak = *std::max_element(mag.begin(), mag.end());
  const double noise = dsp::noise_sigma_estimate(cir_taps);
  const double threshold = std::max(noise_floor_factor * noise,
                                    relative_factor * peak);
  for (std::size_t i = 0; i < mag.size(); ++i) {
    if (mag[i] >= threshold) {
      if (i == 0) return 0.0;
      // Interpolate the crossing between i-1 and i.
      const double below = mag[i - 1];
      const double frac = (threshold - below) / (mag[i] - below);
      return static_cast<double>(i - 1) + std::clamp(frac, 0.0, 1.0);
    }
  }
  return 0.0;
}

}  // namespace uwb::dw
