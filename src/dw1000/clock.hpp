// Device clock model: 40-bit timestamps, crystal offset/drift, and the
// delayed-transmission truncation.
//
// The DW1000 timestamps events with a 40-bit counter ticking at
// 128 * 499.2 MHz = 63.8976 GHz (~15.65 ps per tick, wrapping every ~17.2 s).
// Delayed transmission ignores the low 9 bits of the programmed target time,
// which limits TX timestamp resolution to ~8 ns (paper Sect. III, "Limited
// TX timestamp resolution").
#pragma once

#include <cstdint>

#include "common/constants.hpp"
#include "common/units.hpp"

namespace uwb::dw {

/// A 40-bit device timestamp in 15.65 ps ticks, with wrap-aware arithmetic.
class DwTimestamp {
 public:
  constexpr DwTimestamp() = default;
  constexpr explicit DwTimestamp(std::uint64_t raw_ticks)
      : ticks_(raw_ticks & k::dw_timestamp_mask) {}

  constexpr std::uint64_t ticks() const { return ticks_; }

  /// Seconds represented by the raw counter value (0 .. ~17.2 s).
  Seconds seconds() const {
    return Seconds(static_cast<double>(ticks_) * k::dw_tick_s);
  }

  /// Wrap-aware signed difference (this - other), interpreted as the
  /// shortest distance on the 40-bit circle.
  DwTicks diff_ticks(DwTimestamp other) const;

  /// Wrap-aware signed difference as a physical duration.
  Seconds diff_seconds(DwTimestamp other) const {
    return to_seconds(diff_ticks(other));
  }

  /// Advance by a (possibly negative) tick count, wrapping.
  DwTimestamp plus_ticks(DwTicks delta) const;

  /// Advance by a duration (rounded to the tick grid), wrapping.
  DwTimestamp plus_seconds(Seconds s) const;

  constexpr bool operator==(const DwTimestamp&) const = default;

 private:
  std::uint64_t ticks_ = 0;
};

/// Apply the DW1000 delayed-TX truncation: the low 9 bits of the target are
/// ignored, i.e. the transmission happens at the target rounded *down* to a
/// 512-tick (~8.013 ns) boundary.
DwTimestamp quantize_delayed_tx(DwTimestamp target);

/// Duration of the delayed-TX granularity (~8.013 ns).
Seconds delayed_tx_granularity();

/// Per-node free-running clock: maps global simulation time to the device's
/// 40-bit counter, including a fixed epoch offset and crystal drift in ppm.
class ClockModel {
 public:
  ClockModel() = default;
  ClockModel(SimTime epoch_offset, double drift_ppm)
      : offset_(epoch_offset), drift_ppm_(drift_ppm) {}

  /// Device counter value at global time t.
  DwTimestamp device_time(SimTime t) const;

  /// Global simulation time at which the device counter next reaches
  /// `target`, given the current global time `now` (searches forward within
  /// one wrap period).
  SimTime global_time_of(DwTimestamp target, SimTime now) const;

  double drift_ppm() const { return drift_ppm_; }
  SimTime epoch_offset() const { return offset_; }

 private:
  SimTime offset_;
  double drift_ppm_ = 0.0;
};

}  // namespace uwb::dw
