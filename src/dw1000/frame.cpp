#include "dw1000/frame.hpp"

#include "common/expects.hpp"

namespace uwb::dw {

namespace {
constexpr int kHeaderBytes = 9;  // FC(2) seq(1) PAN(2) dst(2) src(2)
constexpr int kFcsBytes = 2;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u40(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 5; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get_u16(const std::vector<std::uint8_t>& in, std::size_t at) {
  return static_cast<std::uint16_t>(in[at] | (in[at + 1] << 8));
}

std::uint64_t get_u40(const std::vector<std::uint8_t>& in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 5; ++i) v |= static_cast<std::uint64_t>(in[at + i]) << (8 * i);
  return v;
}
}  // namespace

int MacFrame::payload_bytes() const {
  int size = kHeaderBytes + 1 + kFcsBytes;  // header + type + FCS
  if (type == FrameType::Resp) size += 1 + 5 + 5;  // id + two 40-bit stamps
  if (type == FrameType::Final) size += 5 + 5 + 5;  // three 40-bit stamps
  return size;
}

std::vector<std::uint8_t> MacFrame::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(payload_bytes()));
  put_u16(out, 0x8841);  // frame control: data, PAN compressed, short addrs
  out.push_back(seq);
  put_u16(out, 0xDECA);  // PAN id
  put_u16(out, dst);
  put_u16(out, src);
  out.push_back(static_cast<std::uint8_t>(type));
  if (type == FrameType::Resp) {
    out.push_back(responder_id);
    put_u40(out, rx_timestamp.ticks());
    put_u40(out, tx_timestamp.ticks());
  }
  if (type == FrameType::Final) {
    put_u40(out, rx_timestamp.ticks());
    put_u40(out, tx_timestamp.ticks());
    put_u40(out, aux_timestamp.ticks());
  }
  // FCS placeholder (the simulator does not model bit errors in the FCS).
  put_u16(out, 0x0000);
  UWB_ENSURES(static_cast<int>(out.size()) == payload_bytes());
  return out;
}

std::optional<MacFrame> MacFrame::deserialize(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kHeaderBytes + 1 + kFcsBytes) return std::nullopt;
  MacFrame f;
  if (get_u16(bytes, 0) != 0x8841) return std::nullopt;
  f.seq = bytes[2];
  if (get_u16(bytes, 3) != 0xDECA) return std::nullopt;
  f.dst = get_u16(bytes, 5);
  f.src = get_u16(bytes, 7);
  const auto t = bytes[9];
  if (t < 1 || t > 4) return std::nullopt;
  f.type = static_cast<FrameType>(t);
  std::size_t at = 10;
  if (f.type == FrameType::Resp) {
    if (bytes.size() < at + 11 + kFcsBytes) return std::nullopt;
    f.responder_id = bytes[at++];
    f.rx_timestamp = DwTimestamp(get_u40(bytes, at));
    at += 5;
    f.tx_timestamp = DwTimestamp(get_u40(bytes, at));
    at += 5;
  }
  if (f.type == FrameType::Final) {
    if (bytes.size() < at + 15 + kFcsBytes) return std::nullopt;
    f.rx_timestamp = DwTimestamp(get_u40(bytes, at));
    at += 5;
    f.tx_timestamp = DwTimestamp(get_u40(bytes, at));
    at += 5;
    f.aux_timestamp = DwTimestamp(get_u40(bytes, at));
    at += 5;
  }
  if (bytes.size() != at + kFcsBytes) return std::nullopt;
  return f;
}

}  // namespace uwb::dw
