// Receive timestamping model.
//
// The DW1000's leading-edge detection (LDE) reports the RMARKER arrival with
// sub-nanosecond precision. We model the LDE error statistically: zero-mean
// Gaussian jitter whose sigma grows with the transmitted pulse width (wider
// pulse => flatter leading edge => more jitter), calibrated against the
// paper's Sect. V SS-TWR precision figures (sigma ~= 2.2-2.8 cm).
//
// `detect_first_path` is the CIR-space equivalent used to align the CIR with
// the TWR distance (paper Sect. IV step 1).
#pragma once

#include <cstdint>

#include "common/random.hpp"
#include "common/types.hpp"
#include "dw1000/clock.hpp"

namespace uwb::dw {

struct TimestampModelParams {
  /// LDE jitter (1 sigma) with the default pulse shape [s]. Calibrated so
  /// SS-TWR at 3 m gives sigma ~2.3 cm as measured in the paper (Sect. V).
  double base_jitter_s = 105e-12;
  /// Relative jitter growth per unit of pulse width factor above 1
  /// (reproduces sigma_3/sigma_1 ~= 1.24 between shapes 0xE6 and 0x93).
  double width_jitter_slope = 0.15;
};

/// RX timestamp jitter sigma for a given pulse shape.
double rx_timestamp_sigma_s(const TimestampModelParams& params,
                            std::uint8_t tc_pgdelay);

/// Draw a noisy RX timestamp around the true RMARKER arrival device time.
DwTimestamp noisy_rx_timestamp(const TimestampModelParams& params,
                               std::uint8_t tc_pgdelay, DwTimestamp true_arrival,
                               Rng& rng);

/// First-path detection on a CIR magnitude profile: the earliest sample that
/// exceeds max(noise_floor_factor * noise_sigma, relative_factor * peak).
/// Returns a fractional tap index (linear interpolation of the crossing).
double detect_first_path(const CVec& cir_taps, double noise_floor_factor = 8.0,
                         double relative_factor = 0.25);

}  // namespace uwb::dw
