#include "dw1000/clock.hpp"

#include <cmath>


namespace uwb::dw {

namespace {
constexpr std::uint64_t kWrap = std::uint64_t{1} << 40;
}

DwTicks DwTimestamp::diff_ticks(DwTimestamp other) const {
  const std::uint64_t d = (ticks_ - other.ticks_) & k::dw_timestamp_mask;
  if (d >= kWrap / 2) {
    return DwTicks(static_cast<std::int64_t>(d) - static_cast<std::int64_t>(kWrap));
  }
  return DwTicks(static_cast<std::int64_t>(d));
}

DwTimestamp DwTimestamp::plus_ticks(DwTicks delta) const {
  const auto wrapped = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(ticks_) + delta.count());
  return DwTimestamp(wrapped & k::dw_timestamp_mask);
}

DwTimestamp DwTimestamp::plus_seconds(Seconds s) const {
  return plus_ticks(to_dw_ticks(s));
}

DwTimestamp quantize_delayed_tx(DwTimestamp target) {
  const std::uint64_t mask = ~((std::uint64_t{1} << k::dw_delayed_tx_ignored_bits) - 1);
  return DwTimestamp(target.ticks() & mask);
}

Seconds delayed_tx_granularity() {
  return to_seconds(
      DwTicks(std::int64_t{1} << k::dw_delayed_tx_ignored_bits));
}

DwTimestamp ClockModel::device_time(SimTime t) const {
  const double local_s = (t + offset_).seconds() * (1.0 + drift_ppm_ * 1e-6);
  // Round to the nearest tick, then wrap to 40 bits. Negative local times
  // (before the device epoch) wrap backwards consistently.
  const auto ticks = static_cast<std::int64_t>(std::llround(local_s * k::dw_tick_hz));
  return DwTimestamp(static_cast<std::uint64_t>(ticks) & k::dw_timestamp_mask);
}

SimTime ClockModel::global_time_of(DwTimestamp target, SimTime now) const {
  const DwTimestamp current = device_time(now);
  const std::uint64_t forward =
      (target.ticks() - current.ticks()) & k::dw_timestamp_mask;
  const double local_s = static_cast<double>(forward) * k::dw_tick_s;
  const double global_s = local_s / (1.0 + drift_ppm_ * 1e-6);
  return now + SimTime::from_seconds(global_s);
}

}  // namespace uwb::dw
