#include "dw1000/clock.hpp"

#include <cmath>

#include "common/expects.hpp"

namespace uwb::dw {

namespace {
constexpr std::uint64_t kWrap = std::uint64_t{1} << 40;
}

std::int64_t DwTimestamp::diff_ticks(DwTimestamp other) const {
  const std::uint64_t d = (ticks_ - other.ticks_) & k::dw_timestamp_mask;
  if (d >= kWrap / 2) return static_cast<std::int64_t>(d) - static_cast<std::int64_t>(kWrap);
  return static_cast<std::int64_t>(d);
}

DwTimestamp DwTimestamp::plus_ticks(std::int64_t delta) const {
  const auto wrapped = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(ticks_) + delta);
  return DwTimestamp(wrapped & k::dw_timestamp_mask);
}

DwTimestamp DwTimestamp::plus_seconds(double s) const {
  return plus_ticks(static_cast<std::int64_t>(std::llround(s * k::dw_tick_hz)));
}

DwTimestamp quantize_delayed_tx(DwTimestamp target) {
  const std::uint64_t mask = ~((std::uint64_t{1} << k::dw_delayed_tx_ignored_bits) - 1);
  return DwTimestamp(target.ticks() & mask);
}

double delayed_tx_granularity_s() {
  return static_cast<double>(std::uint64_t{1} << k::dw_delayed_tx_ignored_bits) *
         k::dw_tick_s;
}

DwTimestamp ClockModel::device_time(SimTime t) const {
  const double local_s = (t + offset_).seconds() * (1.0 + drift_ppm_ * 1e-6);
  // Round to the nearest tick, then wrap to 40 bits. Negative local times
  // (before the device epoch) wrap backwards consistently.
  const auto ticks = static_cast<std::int64_t>(std::llround(local_s * k::dw_tick_hz));
  return DwTimestamp(static_cast<std::uint64_t>(ticks) & k::dw_timestamp_mask);
}

SimTime ClockModel::global_time_of(DwTimestamp target, SimTime now) const {
  const DwTimestamp current = device_time(now);
  const std::uint64_t forward =
      (target.ticks() - current.ticks()) & k::dw_timestamp_mask;
  const double local_s = static_cast<double>(forward) * k::dw_tick_s;
  const double global_s = local_s / (1.0 + drift_ppm_ * 1e-6);
  return now + SimTime::from_seconds(global_s);
}

}  // namespace uwb::dw
