#include "dw1000/cir_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace uwb::dw {

bool save_cir_csv(const CirEstimate& cir, const std::string& path) {
  // Offline trace export invoked from tools/benches after a run completes;
  // nothing on the simulated timeline calls it.
  // uwb-lint: allow(sim-host-io)
  std::ofstream out(path);
  if (!out) return false;
  char header[96];
  std::snprintf(header, sizeof(header), "# ts_s=%.17g first_path_index=%.17g\n",
                cir.ts_s, cir.first_path_index);
  out << header;
  out << "tap,re,im\n";
  char buf[80];
  for (std::size_t i = 0; i < cir.taps.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%zu,%.17g,%.17g\n", i,
                  cir.taps[i].real(), cir.taps[i].imag());
    out << buf;
  }
  return static_cast<bool>(out);
}

std::optional<CirEstimate> load_cir_csv(const std::string& path) {
  // Offline import of recorded hardware CIR traces at setup time, before
  // the simulated timeline starts.
  // uwb-lint: allow(sim-host-io)
  std::ifstream in(path);
  if (!in) return std::nullopt;
  CirEstimate cir;
  std::string line;
  if (!std::getline(in, line)) return std::nullopt;
  if (std::sscanf(line.c_str(), "# ts_s=%lf first_path_index=%lf", &cir.ts_s,
                  &cir.first_path_index) != 2)
    return std::nullopt;
  if (!std::getline(in, line) || line != "tap,re,im") return std::nullopt;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::size_t tap = 0;
    double re = 0.0, im = 0.0;
    if (std::sscanf(line.c_str(), "%zu,%lf,%lf", &tap, &re, &im) != 3)
      return std::nullopt;
    if (tap != cir.taps.size()) return std::nullopt;  // must be contiguous
    cir.taps.emplace_back(re, im);
  }
  if (cir.taps.empty()) return std::nullopt;
  return cir;
}

}  // namespace uwb::dw
