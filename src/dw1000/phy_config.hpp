// IEEE 802.15.4 UWB PHY configuration and frame timing.
//
// Frame air-times follow the Decawave-documented symbol durations:
//   preamble symbol: 1017.63 ns (PRF 64 MHz) / 993.59 ns (PRF 16 MHz),
//   data symbol:     8205.13 ns (110 kbps), 1025.64 ns (850 kbps),
//                    128.21 ns (6.8 Mbps),
//   PHR: 21 symbols at the 850 kbps symbol time (at 110 kbps: its own rate),
//   Reed-Solomon parity: 48 bits per started 330-bit payload block.
//
// With DR = 6.8 Mbps, PRF = 64 MHz, PSR = 128 and a 12-byte INIT payload the
// minimum response delay (PHR + payload of INIT plus preamble + SFD of RESP)
// evaluates to ~178.5 us, matching the paper (Sect. III).
#pragma once

#include <cstdint>

#include "common/constants.hpp"
#include "common/units.hpp"

namespace uwb::dw {

enum class DataRate { k110, k850, M6_8 };
enum class Prf { Mhz16, Mhz64 };

/// Centre frequency / bandwidth of a DW1000 UWB channel.
struct UwbChannelInfo {
  int number = 7;
  double centre_hz = 6489.6e6;
  double bandwidth_hz = 900e6;
};

/// Lookup for the DW1000-supported channels {1,2,3,4,5,7}.
UwbChannelInfo channel_info(int channel_number);

/// Full PHY configuration of one radio.
struct PhyConfig {
  int channel = 7;
  Prf prf = Prf::Mhz64;
  DataRate rate = DataRate::M6_8;
  /// Preamble symbol repetitions (PSR): 64..4096.
  int preamble_symbols = 128;
  /// Pulse-shaping register (paper Sect. V).
  std::uint8_t tc_pgdelay = k::tc_pgdelay_default;

  /// Duration of one preamble symbol.
  double preamble_symbol_s() const;
  /// Number of SFD symbols (64 at 110 kbps, 8 otherwise).
  int sfd_symbols() const;
  /// Synchronisation header (preamble + SFD) duration.
  double shr_duration_s() const;
  /// PHY header duration.
  double phr_duration_s() const;
  /// Duration of one data symbol at the configured rate.
  double data_symbol_s() const;
  /// Data-part duration for an n-byte MAC payload (includes RS parity).
  double payload_duration_s(int payload_bytes) const;
  /// Total frame air time.
  double frame_duration_s(int payload_bytes) const;
  /// Offset of the RMARKER (start of PHR, the IEEE timestamp reference)
  /// from the start of the preamble.
  double rmarker_offset_s() const { return shr_duration_s(); }
  /// CIR accumulator length for the configured PRF.
  int cir_length() const;
  /// Validate ranges; throws PreconditionError on nonsense.
  void validate() const;
};

/// Minimum response delay of the concurrent ranging scheme for a given INIT
/// payload: PHR + payload of INIT plus preamble + SFD of RESP (Sect. III).
double min_response_delay_s(const PhyConfig& cfg, int init_payload_bytes);

}  // namespace uwb::dw
