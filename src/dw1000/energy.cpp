#include "dw1000/energy.hpp"

#include "common/expects.hpp"

namespace uwb::dw {

void EnergyMeter::add_tx(double duration_s) {
  UWB_EXPECTS(duration_s >= 0.0);
  tx_s_ += duration_s;
  ++tx_count_;
}

void EnergyMeter::add_rx(double duration_s) {
  UWB_EXPECTS(duration_s >= 0.0);
  rx_s_ += duration_s;
  ++rx_count_;
}

void EnergyMeter::add_idle(double duration_s) {
  UWB_EXPECTS(duration_s >= 0.0);
  idle_s_ += duration_s;
}

double EnergyMeter::charge_c() const {
  return tx_s_ * params_.tx_current_a + rx_s_ * params_.rx_current_a +
         idle_s_ * params_.idle_current_a;
}

void EnergyMeter::reset() {
  tx_s_ = rx_s_ = idle_s_ = 0.0;
  tx_count_ = rx_count_ = 0;
}

}  // namespace uwb::dw
