// Channel impulse response estimation (accumulator model).
//
// The DW1000 estimates the CIR from the preamble: 1016 complex taps at
// T_s = 1.0016 ns for PRF 64 MHz. In a concurrent-ranging round every
// arriving preamble (each responder's every propagation path) adds its pulse
// shape into the same accumulator; this module performs that superposition
// plus the accumulator noise.
#pragma once

#include <cstdint>
#include <vector>

#include "common/constants.hpp"
#include "common/random.hpp"
#include "common/types.hpp"

namespace uwb::dw {

/// One pulse arriving at the receiver during CIR accumulation.
struct CirArrival {
  /// Pulse peak time relative to the start of the CIR window [s].
  double time_into_window_s = 0.0;
  /// Complex amplitude at the receiver.
  Complex amplitude;
  /// Pulse shape used by the transmitter (TC_PGDELAY).
  std::uint8_t tc_pgdelay = k::tc_pgdelay_default;
};

/// Accumulator configuration.
struct CirParams {
  int length = k::cir_len_prf64;
  double ts_s = k::cir_ts_s;
  /// Accumulator noise per complex component (relative to the unit-amplitude
  /// scale of CirArrival::amplitude).
  double noise_sigma = 0.004;
};

/// An estimated CIR as read back from the accumulator.
struct CirEstimate {
  CVec taps;
  double ts_s = k::cir_ts_s;
  /// Index the receiver reports as the first path of the frame it
  /// synchronised on (tap-space, fractional).
  double first_path_index = 0.0;
};

/// Superpose all arrivals (evaluating each pulse shape at fractional delays)
/// and add accumulator noise.
CirEstimate synthesize_cir(const std::vector<CirArrival>& arrivals,
                           const CirParams& params, Rng& rng);

}  // namespace uwb::dw
