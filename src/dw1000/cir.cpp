#include "dw1000/cir.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "dw1000/pulse.hpp"

namespace uwb::dw {

CirEstimate synthesize_cir(const std::vector<CirArrival>& arrivals,
                           const CirParams& params, Rng& rng) {
  UWB_EXPECTS(params.length > 0);
  UWB_EXPECTS(params.ts_s > 0.0);
  UWB_EXPECTS(params.noise_sigma >= 0.0);

  CirEstimate out;
  out.ts_s = params.ts_s;
  out.taps.assign(static_cast<std::size_t>(params.length), Complex{});

  for (const CirArrival& a : arrivals) {
    const double half = pulse_duration_s(a.tc_pgdelay) / 2.0;
    const auto lo = static_cast<std::ptrdiff_t>(
        std::floor((a.time_into_window_s - half) / params.ts_s));
    const auto hi = static_cast<std::ptrdiff_t>(
        std::ceil((a.time_into_window_s + half) / params.ts_s));
    const std::ptrdiff_t begin = std::max<std::ptrdiff_t>(0, lo);
    const std::ptrdiff_t end =
        std::min<std::ptrdiff_t>(params.length - 1, hi);
    for (std::ptrdiff_t n = begin; n <= end; ++n) {
      const double t = static_cast<double>(n) * params.ts_s - a.time_into_window_s;
      out.taps[static_cast<std::size_t>(n)] +=
          a.amplitude * pulse_value(a.tc_pgdelay, t);
    }
  }

  if (params.noise_sigma > 0.0) {
    for (auto& tap : out.taps) tap += rng.complex_normal(params.noise_sigma);
  }
  return out;
}

}  // namespace uwb::dw
