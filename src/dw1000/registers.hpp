// DW1000 register-file encoding (User Manual v2.10 field layouts).
//
// The subset of the register map a concurrent-ranging firmware touches:
//
//   TX_FCTRL  (0x08): TXBR[14:13] data rate, TXPRF[17:16], TXPSR+PE[21:18]
//   DX_TIME   (0x0A): 40-bit delayed TX/RX time (low 9 bits ignored by HW)
//   CHAN_CTRL (0x1F): TX_CHAN[3:0], RX_CHAN[7:4], RXPRF[19:18]
//   TC_PGDELAY(0x2A:0B): 8-bit pulse generator delay (paper Sect. V)
//
// `encode_*` / `decode_*` translate between the library's typed PhyConfig
// and the on-device bit patterns, so a firmware port drives real registers
// through the exact code paths exercised here.
#pragma once

#include <cstdint>
#include <map>

#include "dw1000/clock.hpp"
#include "dw1000/phy_config.hpp"

namespace uwb::dw {

/// Register file IDs (the DW1000's SPI-addressable files).
enum class RegFile : std::uint8_t {
  TX_FCTRL = 0x08,
  DX_TIME = 0x0A,
  CHAN_CTRL = 0x1F,
  TX_CAL = 0x2A,  // sub-address 0x0B = TC_PGDELAY
};

/// TC_PGDELAY sub-address within TX_CAL.
inline constexpr std::uint16_t kTcPgDelaySub = 0x0B;

/// Encode the data-rate bits TXBR[14:13].
[[nodiscard]] std::uint32_t encode_txbr(DataRate rate);
[[nodiscard]] DataRate decode_txbr(std::uint32_t tx_fctrl);

/// Encode the PRF bits TXPRF[17:16] (01 = 16 MHz, 10 = 64 MHz).
[[nodiscard]] std::uint32_t encode_txprf(Prf prf);
[[nodiscard]] Prf decode_txprf(std::uint32_t tx_fctrl);

/// Encode the preamble length bits TXPSR[19:18] + PE[21:20].
/// Supported lengths: 64, 128, 256, 512, 1024, 1536, 2048, 4096.
[[nodiscard]] std::uint32_t encode_psr(int preamble_symbols);
[[nodiscard]] int decode_psr(std::uint32_t tx_fctrl);

/// A tiny register file holding raw 32-bit words per (file, sub-address),
/// with typed encode/decode of the whole PHY configuration.
class RegisterFile {
 public:
  RegisterFile() = default;

  [[nodiscard]] std::uint32_t read32(RegFile file, std::uint16_t sub = 0) const;
  void write32(RegFile file, std::uint16_t sub, std::uint32_t value);

  /// 40-bit delayed-TX target (DX_TIME). The hardware ignores the low 9
  /// bits; the read-back reflects what was written, the *effective* time is
  /// what quantize_delayed_tx() yields.
  void write_dx_time(DwTimestamp target);
  [[nodiscard]] DwTimestamp read_dx_time() const;
  [[nodiscard]] DwTimestamp effective_tx_time() const;

  /// Program every PHY field from a typed config.
  void apply_phy_config(const PhyConfig& config);

  /// Reconstruct the typed config from the programmed registers.
  PhyConfig decode_phy_config() const;

 private:
  std::map<std::pair<std::uint8_t, std::uint16_t>, std::uint32_t> words_;
  std::uint64_t dx_time_ = 0;
};

}  // namespace uwb::dw
