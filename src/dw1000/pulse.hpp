// TC_PGDELAY pulse shaping (paper Sect. V, Fig. 5).
//
// Decawave does not document the transmitted pulse; the paper measured it
// per TC_PGDELAY register value. We model the measured behaviour with an
// analytic template: a Gaussian envelope whose width grows monotonically
// with the register value (the register reduces the output bandwidth),
// carrying a register-dependent residual oscillation plus a trailing ring
// lobe — reproducing the widening *and* the structural change across the
// measured shapes of Fig. 5 that makes them separable by matched filtering.
// The default 0x93 maps to the ~900 MHz bandwidth of channel 7; values up
// to 0xFF give the paper's "up to 108" distinct shapes.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace uwb::dw {

/// Width multiplier of the main lobe relative to the default register 0x93.
/// Monotonically increasing in the register value; 1.0 at the default.
double pulse_width_factor(std::uint8_t tc_pgdelay);

/// Continuous pulse shape s(t) for a register value; peak ~1.0 at t = 0,
/// t in seconds. Deterministic and cheap (a few exp() calls).
double pulse_value(std::uint8_t tc_pgdelay, double t_s);

/// Effective pulse support T_p: s(t) is negligible outside
/// [-duration/2 .. +duration/2] around the peak (conservative bound
/// including the ring lobe).
double pulse_duration_s(std::uint8_t tc_pgdelay);

/// Main-lobe duration (FWHM of the envelope): the "pulse duration" visible
/// in the paper's Fig. 5 and the window the threshold-based baseline scans
/// after a crossing.
double pulse_main_lobe_s(std::uint8_t tc_pgdelay);

/// Nominal -10 dB bandwidth [Hz] (900 MHz / width factor at channel 7).
double pulse_bandwidth_hz(std::uint8_t tc_pgdelay);

/// Sampled template at spacing `ts_s` (odd length, peak at the centre
/// sample). Suitable for MatchedFilter construction; not normalised.
CVec sample_pulse_template(std::uint8_t tc_pgdelay, double ts_s);

/// Index of the centre (peak) sample of sample_pulse_template's output.
std::size_t template_centre_index(std::uint8_t tc_pgdelay, double ts_s);

/// Thread-locally memoised sample_pulse_template(). The returned reference
/// stays valid for the lifetime of the calling thread; repeated requests
/// for the same (register, Ts) pair — e.g. one scenario construction per
/// Monte-Carlo trial — stop re-sampling the pulse. Never shared across
/// threads, so no synchronisation is involved.
const CVec& cached_pulse_template(std::uint8_t tc_pgdelay, double ts_s);

/// Hit/miss counters of the calling thread's pulse-template cache.
struct PulseCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
};
PulseCacheStats pulse_cache_stats();

/// Process-wide pulse-cache counters aggregated over every thread (what the
/// bench JSON reports; worker-thread caches are invisible to the main
/// thread otherwise).
PulseCacheStats pulse_cache_stats_total();

/// Drop the calling thread's cached templates (tests / memory pressure).
void clear_pulse_cache();

}  // namespace uwb::dw
