#include "dw1000/pulse.hpp"

#include <cmath>
#include <numbers>
#include <unordered_map>
#include <utility>

#include "common/constants.hpp"
#include "common/expects.hpp"
#include "common/hash.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace uwb::dw {

namespace {

// Calibration of the analytic template (see header).
//
// The template is a Gaussian-windowed oscillation plus a trailing ring lobe:
// increasing TC_PGDELAY slows the pulse generator, which both widens the
// envelope (lower bandwidth) and shifts the residual oscillation frequency —
// the structural change visible across the measured shapes in Fig. 5. The
// frequency term is what keeps even nearby register values distinguishable
// by matched filtering (canonical s1/s2/s3 cross-correlations ~0.6/0.3/0.5).
constexpr double kBaseSigmaS = 0.75e-9;  // default main-lobe sigma (~2 ns FWHM)
constexpr double kWidthSlope = 0.020;    // envelope growth per register step
constexpr double kBaseFreqHz = 60e6;     // residual oscillation at the default
// Oscillation shift per register step. Kept small enough that every shape's
// spectrum stays inside the +-499 MHz band of the 1.0016 ns CIR sampling —
// otherwise the accumulator aliases the pulse and matched filtering against
// the true template breaks down.
constexpr double kFreqSlopeHz = 2.5e6;
constexpr double kRingAmp = 0.25;        // trailing ring lobe amplitude

int register_delta(std::uint8_t reg) {
  UWB_EXPECTS(reg >= k::tc_pgdelay_default);
  return reg - k::tc_pgdelay_default;
}

double gauss(double t, double sigma) {
  const double z = t / sigma;
  return std::exp(-0.5 * z * z);
}

}  // namespace

double pulse_width_factor(std::uint8_t tc_pgdelay) {
  return 1.0 + kWidthSlope * register_delta(tc_pgdelay);
}

double pulse_value(std::uint8_t tc_pgdelay, double t_s) {
  const int delta = register_delta(tc_pgdelay);
  const double sigma = kBaseSigmaS * (1.0 + kWidthSlope * delta);
  const double freq = kBaseFreqHz + kFreqSlopeHz * delta;
  return gauss(t_s, sigma) * std::cos(2.0 * std::numbers::pi * freq * t_s) -
         kRingAmp * gauss(t_s - 1.9 * sigma, 0.6 * sigma);
}

double pulse_duration_s(std::uint8_t tc_pgdelay) {
  const double sigma = kBaseSigmaS * pulse_width_factor(tc_pgdelay);
  // Support [-4.5 sigma, +6 sigma] rounded to a symmetric window.
  return 12.0 * sigma;
}

double pulse_main_lobe_s(std::uint8_t tc_pgdelay) {
  const double sigma = kBaseSigmaS * pulse_width_factor(tc_pgdelay);
  return 2.355 * sigma;  // Gaussian FWHM
}

double pulse_bandwidth_hz(std::uint8_t tc_pgdelay) {
  return 900e6 / pulse_width_factor(tc_pgdelay);
}

CVec sample_pulse_template(std::uint8_t tc_pgdelay, double ts_s) {
  UWB_EXPECTS(ts_s > 0.0);
  const double half = pulse_duration_s(tc_pgdelay) / 2.0;
  const auto half_n = static_cast<std::size_t>(std::ceil(half / ts_s));
  CVec tmpl(2 * half_n + 1);
  for (std::size_t i = 0; i < tmpl.size(); ++i) {
    const double t = (static_cast<double>(i) - static_cast<double>(half_n)) * ts_s;
    tmpl[i] = Complex(pulse_value(tc_pgdelay, t), 0.0);
  }
  return tmpl;
}

std::size_t template_centre_index(std::uint8_t tc_pgdelay, double ts_s) {
  UWB_EXPECTS(ts_s > 0.0);
  const double half = pulse_duration_s(tc_pgdelay) / 2.0;
  return static_cast<std::size_t>(std::ceil(half / ts_s));
}

namespace {

struct PulseCache {
  // Key: register byte plus the exact bit pattern of the sample period.
  using Key = std::pair<std::uint8_t, std::uint64_t>;
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      return static_cast<std::size_t>(
          hash_combine(hash_mix(key.first), key.second));
    }
  };
  std::unordered_map<Key, CVec, KeyHash> entries;
  PulseCacheStats stats;
};

PulseCache& pulse_cache() {
  thread_local PulseCache cache;
  return cache;
}

}  // namespace

const CVec& cached_pulse_template(std::uint8_t tc_pgdelay, double ts_s) {
  UWB_EXPECTS(ts_s > 0.0);
  PulseCache& cache = pulse_cache();
  const auto key = std::make_pair(tc_pgdelay, double_bits(ts_s));
  const auto it = cache.entries.find(key);
  if (it != cache.entries.end()) {
    ++cache.stats.hits;
    UWB_OBS_COUNT("cache_pulse_hits", 1);
    return it->second;
  }
  ++cache.stats.misses;
  UWB_OBS_COUNT("cache_pulse_misses", 1);
  return cache.entries.emplace(key, sample_pulse_template(tc_pgdelay, ts_s))
      .first->second;
}

PulseCacheStats pulse_cache_stats() { return pulse_cache().stats; }

PulseCacheStats pulse_cache_stats_total() {
  // Registry-backed totals (obs shards sum per-thread counts). Zero in
  // UWB_OBS_DISABLED builds, where the counting macros compile out.
  const auto snap = obs::MetricsRegistry::instance().aggregate();
  return {snap.counter("cache_pulse_hits"), snap.counter("cache_pulse_misses")};
}

void clear_pulse_cache() { pulse_cache() = PulseCache{}; }

}  // namespace uwb::dw
