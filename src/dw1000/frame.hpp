// MAC frames exchanged by the ranging protocols.
//
// The wire format models a compact IEEE 802.15.4 data frame: 9 header bytes
// (FC 2, seq 1, PAN 2, dst 2, src 2), a 1-byte message type, type-specific
// fields, and a 2-byte FCS. The serialised size feeds the PHY air-time
// calculator; a 12-byte INIT reproduces the paper's 178.5 us minimum
// response delay.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dw1000/clock.hpp"

namespace uwb::dw {

enum class FrameType : std::uint8_t { Init = 1, Resp = 2, Data = 3, Final = 4 };

/// Broadcast address.
inline constexpr std::uint16_t kBroadcast = 0xFFFF;

struct MacFrame {
  FrameType type = FrameType::Data;
  std::uint16_t src = 0;
  std::uint16_t dst = kBroadcast;
  std::uint8_t seq = 0;

  /// RESP only: responder identity.
  std::uint8_t responder_id = 0;
  /// RESP: INIT reception timestamp at the responder (t_rx,i).
  /// FINAL (DS-TWR): RESP reception timestamp at the initiator.
  DwTimestamp rx_timestamp;
  /// RESP: RESP transmission timestamp at the responder (t_tx,i).
  /// FINAL (DS-TWR): FINAL transmission timestamp at the initiator.
  DwTimestamp tx_timestamp;
  /// FINAL (DS-TWR) only: POLL transmission timestamp at the initiator.
  DwTimestamp aux_timestamp;

  /// Serialised wire size in bytes (drives the air-time model).
  int payload_bytes() const;

  /// Serialise to bytes (little-endian, 5-byte timestamps).
  std::vector<std::uint8_t> serialize() const;

  /// Parse; returns nullopt on malformed input.
  static std::optional<MacFrame> deserialize(const std::vector<std::uint8_t>& bytes);

  bool operator==(const MacFrame&) const = default;
};

}  // namespace uwb::dw
