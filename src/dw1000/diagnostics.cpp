#include "dw1000/diagnostics.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "common/units.hpp"
#include "dsp/peaks.hpp"
#include "dsp/signal.hpp"
#include "dw1000/timestamping.hpp"

namespace uwb::dw {

RxDiagnostics analyze_cir(const CVec& cir_taps) {
  UWB_EXPECTS(!cir_taps.empty());
  RxDiagnostics diag;
  diag.noise_sigma = dsp::noise_sigma_estimate(cir_taps);
  diag.first_path_index = detect_first_path(cir_taps);

  // Interpolate the first-path magnitude at the (fractional) index, then
  // take the local maximum over the next couple of taps — the leading-edge
  // index sits on the rising flank, not the peak.
  const auto fp = static_cast<std::size_t>(diag.first_path_index);
  double fp_amp = std::abs(dsp::sample_at(cir_taps, diag.first_path_index));
  for (std::size_t i = fp; i < std::min(cir_taps.size(), fp + 4); ++i)
    fp_amp = std::max(fp_amp, std::abs(cir_taps[i]));
  diag.first_path_amplitude = fp_amp;

  const double total_power = dsp::energy(cir_taps);
  // Exclude the (estimated) noise contribution from the total so the ratio
  // reflects signal energy only. The first path is itself signal, so it
  // bounds the estimate from below (keeps fp/total <= 0 dB on noisy links
  // where the noise-power estimate overshoots).
  const double noise_power = 2.0 * diag.noise_sigma * diag.noise_sigma *
                             static_cast<double>(cir_taps.size());
  const double signal_power =
      std::max(total_power - noise_power, fp_amp * fp_amp + 1e-30);

  diag.first_path_power_db = linear_to_db(fp_amp * fp_amp + 1e-30);
  diag.total_power_db = linear_to_db(signal_power);
  diag.fp_to_total_db = diag.first_path_power_db - diag.total_power_db;

  double peak = 0.0;
  for (const auto& v : cir_taps) peak = std::max(peak, std::abs(v));
  diag.peak_snr_db =
      diag.noise_sigma > 0.0 ? linear_to_db((peak * peak) /
                                            (2.0 * diag.noise_sigma *
                                             diag.noise_sigma))
                             : 0.0;
  return diag;
}

bool likely_nlos(const RxDiagnostics& diag, double threshold_db) {
  return diag.fp_to_total_db < threshold_db;
}

}  // namespace uwb::dw
