#include "dw1000/registers.hpp"

#include "common/expects.hpp"

namespace uwb::dw {

namespace {
constexpr std::uint32_t kTxbrShift = 13;   // TX_FCTRL TXBR
constexpr std::uint32_t kTxprfShift = 16;  // TX_FCTRL TXPRF
constexpr std::uint32_t kPsrShift = 18;    // TX_FCTRL TXPSR+PE (4 bits)
}  // namespace

std::uint32_t encode_txbr(DataRate rate) {
  switch (rate) {
    case DataRate::k110: return 0b00u << kTxbrShift;
    case DataRate::k850: return 0b01u << kTxbrShift;
    case DataRate::M6_8: return 0b10u << kTxbrShift;
  }
  throw InvariantError("unreachable data rate");
}

DataRate decode_txbr(std::uint32_t tx_fctrl) {
  switch ((tx_fctrl >> kTxbrShift) & 0b11u) {
    case 0b00: return DataRate::k110;
    case 0b01: return DataRate::k850;
    case 0b10: return DataRate::M6_8;
    default: break;
  }
  throw PreconditionError("reserved TXBR value");
}

std::uint32_t encode_txprf(Prf prf) {
  return (prf == Prf::Mhz16 ? 0b01u : 0b10u) << kTxprfShift;
}

Prf decode_txprf(std::uint32_t tx_fctrl) {
  switch ((tx_fctrl >> kTxprfShift) & 0b11u) {
    case 0b01: return Prf::Mhz16;
    case 0b10: return Prf::Mhz64;
    default: break;
  }
  throw PreconditionError("reserved TXPRF value");
}

std::uint32_t encode_psr(int preamble_symbols) {
  // TXPSR (bits 19:18) selects the base length, PE (21:20) the extension:
  // 64=01/00 128=01/01 256=01/10 512=01/11 1024=10/00 1536=10/01
  // 2048=10/10 4096=11/00 (User Manual table 16).
  std::uint32_t psr = 0, pe = 0;
  switch (preamble_symbols) {
    case 64: psr = 0b01; pe = 0b00; break;
    case 128: psr = 0b01; pe = 0b01; break;
    case 256: psr = 0b01; pe = 0b10; break;
    case 512: psr = 0b01; pe = 0b11; break;
    case 1024: psr = 0b10; pe = 0b00; break;
    case 1536: psr = 0b10; pe = 0b01; break;
    case 2048: psr = 0b10; pe = 0b10; break;
    case 4096: psr = 0b11; pe = 0b00; break;
    default:
      throw PreconditionError("unsupported preamble length for TXPSR/PE");
  }
  return (psr << kPsrShift) | (pe << (kPsrShift + 2));
}

int decode_psr(std::uint32_t tx_fctrl) {
  const std::uint32_t psr = (tx_fctrl >> kPsrShift) & 0b11u;
  const std::uint32_t pe = (tx_fctrl >> (kPsrShift + 2)) & 0b11u;
  if (psr == 0b01) {
    switch (pe) {
      case 0b00: return 64;
      case 0b01: return 128;
      case 0b10: return 256;
      case 0b11: return 512;
    }
  }
  if (psr == 0b10) {
    switch (pe) {
      case 0b00: return 1024;
      case 0b01: return 1536;
      case 0b10: return 2048;
      default: break;
    }
  }
  if (psr == 0b11 && pe == 0b00) return 4096;
  throw PreconditionError("reserved TXPSR/PE combination");
}

std::uint32_t RegisterFile::read32(RegFile file, std::uint16_t sub) const {
  const auto it = words_.find({static_cast<std::uint8_t>(file), sub});
  return it == words_.end() ? 0u : it->second;
}

void RegisterFile::write32(RegFile file, std::uint16_t sub, std::uint32_t value) {
  words_[{static_cast<std::uint8_t>(file), sub}] = value;
}

void RegisterFile::write_dx_time(DwTimestamp target) {
  dx_time_ = target.ticks();
}

DwTimestamp RegisterFile::read_dx_time() const { return DwTimestamp(dx_time_); }

DwTimestamp RegisterFile::effective_tx_time() const {
  return quantize_delayed_tx(DwTimestamp(dx_time_));
}

void RegisterFile::apply_phy_config(const PhyConfig& config) {
  config.validate();
  const std::uint32_t tx_fctrl = encode_txbr(config.rate) |
                                 encode_txprf(config.prf) |
                                 encode_psr(config.preamble_symbols);
  write32(RegFile::TX_FCTRL, 0, tx_fctrl);

  // CHAN_CTRL: TX and RX channel in the low byte, RXPRF mirrors TXPRF.
  const auto chan = static_cast<std::uint32_t>(config.channel);
  const std::uint32_t rxprf = (config.prf == Prf::Mhz16 ? 0b01u : 0b10u) << 18;
  write32(RegFile::CHAN_CTRL, 0, chan | (chan << 4) | rxprf);

  write32(RegFile::TX_CAL, kTcPgDelaySub, config.tc_pgdelay);
}

PhyConfig RegisterFile::decode_phy_config() const {
  const std::uint32_t tx_fctrl = read32(RegFile::TX_FCTRL, 0);
  const std::uint32_t chan_ctrl = read32(RegFile::CHAN_CTRL, 0);
  PhyConfig config;
  config.rate = decode_txbr(tx_fctrl);
  config.prf = decode_txprf(tx_fctrl);
  config.preamble_symbols = decode_psr(tx_fctrl);
  config.channel = static_cast<int>(chan_ctrl & 0xF);
  config.tc_pgdelay =
      static_cast<std::uint8_t>(read32(RegFile::TX_CAL, kTcPgDelaySub) & 0xFF);
  config.validate();
  return config;
}

}  // namespace uwb::dw
