// Radio energy accounting.
//
// The motivation for concurrent ranging (paper Sect. I/III) is the DW1000's
// current draw: up to 155 mA receiving and 90 mA transmitting. EnergyMeter
// accumulates radio-on time per state and converts it to charge and energy,
// so benches can compare SS-TWR scheduling against concurrent ranging.
#pragma once

#include <cstdint>

namespace uwb::dw {

struct EnergyModelParams {
  double rx_current_a = 0.155;
  double tx_current_a = 0.090;
  double idle_current_a = 0.000018;  // deep-sleep order of magnitude
  double supply_v = 3.3;
};

class EnergyMeter {
 public:
  EnergyMeter() = default;
  explicit EnergyMeter(EnergyModelParams params) : params_(params) {}

  void add_tx(double duration_s);
  void add_rx(double duration_s);
  void add_idle(double duration_s);

  double tx_time_s() const { return tx_s_; }
  double rx_time_s() const { return rx_s_; }
  double idle_time_s() const { return idle_s_; }
  int tx_count() const { return tx_count_; }
  int rx_count() const { return rx_count_; }

  /// Total charge drawn [C].
  double charge_c() const;
  /// Total energy [J].
  double energy_j() const { return charge_c() * params_.supply_v; }

  void reset();

  const EnergyModelParams& params() const { return params_; }

 private:
  EnergyModelParams params_;
  double tx_s_ = 0.0;
  double rx_s_ = 0.0;
  double idle_s_ = 0.0;
  int tx_count_ = 0;
  int rx_count_ = 0;
};

}  // namespace uwb::dw
