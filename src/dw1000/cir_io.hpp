// CIR persistence: dump/reload estimated CIRs as CSV so rounds captured in
// simulation can be analysed offline (or replayed through the detectors).
#pragma once

#include <optional>
#include <string>

#include "dw1000/cir.hpp"

namespace uwb::dw {

/// Write `cir` to `path` as CSV with columns tap,re,im (plus a header line
/// carrying ts and the first-path index as comments). Returns false on I/O
/// failure.
bool save_cir_csv(const CirEstimate& cir, const std::string& path);

/// Load a CIR previously written by save_cir_csv. Returns nullopt on parse
/// or I/O failure.
std::optional<CirEstimate> load_cir_csv(const std::string& path);

}  // namespace uwb::dw
