#include "loc/multilateration.hpp"

#include <cmath>

#include "common/expects.hpp"

namespace uwb::loc {

PositionFix multilaterate(const std::vector<RangeObservation>& observations,
                          const SolverOptions& options) {
  UWB_EXPECTS(observations.size() >= 3);
  geom::Vec2 centroid;
  for (const RangeObservation& o : observations) centroid = centroid + o.anchor;
  centroid = centroid / static_cast<double>(observations.size());
  return multilaterate_from(observations, centroid, options);
}

PositionFix multilaterate_from(const std::vector<RangeObservation>& observations,
                               geom::Vec2 initial,
                               const SolverOptions& options) {
  UWB_EXPECTS(observations.size() >= 3);
  UWB_EXPECTS(options.max_iterations >= 1);
  UWB_EXPECTS(options.tolerance_m > 0.0);

  PositionFix fix;
  fix.position = initial;
  for (int it = 0; it < options.max_iterations; ++it) {
    fix.iterations = it + 1;
    // Gauss-Newton step on f_i(p) = |p - a_i| - d_i with J_i = (p - a_i)/|.|.
    double jtj00 = 0.0, jtj01 = 0.0, jtj11 = 0.0;
    double jtr0 = 0.0, jtr1 = 0.0;
    for (const RangeObservation& o : observations) {
      const geom::Vec2 diff = fix.position - o.anchor;
      const double range = geom::norm(diff);
      if (range < 1e-9) continue;  // sitting on an anchor: skip its gradient
      const double jx = diff.x / range;
      const double jy = diff.y / range;
      const double resid = range - o.distance_m;
      jtj00 += jx * jx;
      jtj01 += jx * jy;
      jtj11 += jy * jy;
      jtr0 += jx * resid;
      jtr1 += jy * resid;
    }
    const double det = jtj00 * jtj11 - jtj01 * jtj01;
    if (std::abs(det) < 1e-12) break;  // degenerate geometry
    const double dx = (jtj11 * jtr0 - jtj01 * jtr1) / det;
    const double dy = (jtj00 * jtr1 - jtj01 * jtr0) / det;
    fix.position = fix.position - geom::Vec2{dx, dy};
    if (std::hypot(dx, dy) < options.tolerance_m) {
      fix.converged = true;
      break;
    }
  }

  double ss = 0.0;
  for (const RangeObservation& o : observations) {
    const double resid = geom::distance(fix.position, o.anchor) - o.distance_m;
    ss += resid * resid;
  }
  fix.residual_rms_m = std::sqrt(ss / static_cast<double>(observations.size()));
  return fix;
}

}  // namespace uwb::loc
