#include "loc/tracker.hpp"

#include "common/expects.hpp"

namespace uwb::loc {

PositionTracker::PositionTracker(TrackerParams params) : params_(params) {
  UWB_EXPECTS(params.alpha > 0.0 && params.alpha <= 1.0);
  UWB_EXPECTS(params.beta >= 0.0 && params.beta < 1.0);
  UWB_EXPECTS(params.gate_m > 0.0);
  UWB_EXPECTS(params.max_rejections >= 1);
}

geom::Vec2 PositionTracker::update(geom::Vec2 measurement, double dt_s) {
  UWB_EXPECTS(dt_s > 0.0);
  if (!initialized_) {
    position_ = measurement;
    velocity_ = {0.0, 0.0};
    initialized_ = true;
    rejected_streak_ = 0;
    return position_;
  }

  const geom::Vec2 predicted = position_ + velocity_ * dt_s;
  const geom::Vec2 residual = measurement - predicted;

  if (geom::norm(residual) > params_.gate_m) {
    ++rejected_total_;
    if (++rejected_streak_ >= params_.max_rejections) {
      // Too many rejections in a row: the track is lost, re-seed.
      initialized_ = false;
      return update(measurement, dt_s);
    }
    position_ = predicted;  // coast on the model
    return position_;
  }

  rejected_streak_ = 0;
  position_ = predicted + residual * params_.alpha;
  velocity_ = velocity_ + residual * (params_.beta / dt_s);
  return position_;
}

void PositionTracker::reset() {
  initialized_ = false;
  velocity_ = {0.0, 0.0};
  rejected_streak_ = 0;
}

}  // namespace uwb::loc
