#include "loc/anchor_system.hpp"

#include <map>

#include "common/expects.hpp"

namespace uwb::loc {

AnchorLocalizer::AnchorLocalizer(AnchorSystemConfig config)
    : config_(std::move(config)) {
  UWB_EXPECTS(config_.scenario.responders.size() >= 3);
  // Extract extra peaks per round: multipath of a nearby anchor can
  // out-rank a far anchor's direct path, and the per-anchor deduplication
  // below discards the surplus safely.
  if (config_.scenario.detect_max_responses == 0)
    config_.scenario.detect_max_responses =
        2 * static_cast<int>(config_.scenario.responders.size());
  scenario_ = std::make_unique<ranging::ConcurrentRangingScenario>(
      config_.scenario);
}

Fix AnchorLocalizer::locate(geom::Vec2 tag_position) {
  scenario_->set_initiator_position(tag_position);
  Fix fix;
  fix.round = scenario_->run_round();
  if (!fix.round.payload_decoded) return fix;

  // Collect the decoded anchor distances. Each estimate carries the decoded
  // responder ID (slot + pulse shape); unidentified detections are dropped,
  // and when several detections decode to the same anchor (e.g. a diffuse
  // tail peak landing in a neighbouring slot) only the strongest is kept.
  std::map<int, const ranging::ResponderEstimate*> best;
  for (const ranging::ResponderEstimate& est : fix.round.estimates) {
    if (est.responder_id < 0 || est.distance_m <= 0.0) continue;
    const auto it = best.find(est.responder_id);
    if (it == best.end() || est.amplitude > it->second->amplitude)
      best[est.responder_id] = &est;
  }
  std::vector<RangeObservation> obs;
  for (const auto& [id, est] : best) {
    for (const ranging::ResponderSpec& spec : config_.scenario.responders) {
      if (spec.id == id) {
        obs.push_back({spec.position, est->distance_m});
        break;
      }
    }
  }
  fix.anchors_used = static_cast<int>(obs.size());
  if (obs.size() < 3) return fix;

  fix.solver_fix = multilaterate(obs, config_.solver);
  fix.position = fix.solver_fix.position;
  fix.error_m = geom::distance(fix.position, tag_position);
  fix.ok = fix.solver_fix.converged;
  return fix;
}

}  // namespace uwb::loc
