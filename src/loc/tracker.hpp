// Position tracking across fixes (extension).
//
// Concurrent ranging gives one multilateration fix per round; a mobile tag
// benefits from smoothing consecutive fixes. This is a gated alpha-beta
// (g-h) filter with a constant-velocity model — deliberately simple, cheap
// enough for the tag itself, and robust against the occasional multipath
// outlier fix.
#pragma once

#include "geom/vec2.hpp"

namespace uwb::loc {

struct TrackerParams {
  /// Position correction gain (0..1].
  double alpha = 0.5;
  /// Velocity correction gain [0..1).
  double beta = 0.15;
  /// Fixes farther than this from the prediction are rejected as outliers
  /// (after initialisation).
  double gate_m = 3.0;
  /// Consecutive rejections after which the filter re-initialises.
  int max_rejections = 3;
};

class PositionTracker {
 public:
  PositionTracker() = default;
  explicit PositionTracker(TrackerParams params);

  /// Feed one fix taken `dt_s` after the previous one. Returns the filtered
  /// position (the raw measurement for the very first fix).
  geom::Vec2 update(geom::Vec2 measurement, double dt_s);

  bool initialized() const { return initialized_; }
  geom::Vec2 position() const { return position_; }
  geom::Vec2 velocity() const { return velocity_; }
  /// Total measurements rejected by the gate.
  int rejected_count() const { return rejected_total_; }

  void reset();

 private:
  TrackerParams params_;
  bool initialized_ = false;
  geom::Vec2 position_;
  geom::Vec2 velocity_;
  int rejected_streak_ = 0;
  int rejected_total_ = 0;
};

}  // namespace uwb::loc
