// Range-based 2-D position estimation (Gauss-Newton least squares).
//
// The paper's stated future work is "an efficient cooperative or
// anchor-based localization system" on top of concurrent ranging; this
// module provides the position solver for that extension.
#pragma once

#include <vector>

#include "geom/vec2.hpp"

namespace uwb::loc {

/// One anchor observation: a known position and a measured distance to it.
struct RangeObservation {
  geom::Vec2 anchor;
  double distance_m = 0.0;
};

struct SolverOptions {
  int max_iterations = 50;
  /// Stop when the position update is below this step [m].
  double tolerance_m = 1e-6;
};

struct PositionFix {
  geom::Vec2 position;
  /// RMS of the range residuals at the solution [m].
  double residual_rms_m = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Least-squares position from >= 3 range observations, starting from the
/// anchor centroid (or `initial` if provided).
PositionFix multilaterate(const std::vector<RangeObservation>& observations,
                          const SolverOptions& options = {});

PositionFix multilaterate_from(const std::vector<RangeObservation>& observations,
                               geom::Vec2 initial,
                               const SolverOptions& options = {});

}  // namespace uwb::loc
