// Anchor-based localisation using concurrent ranging (paper future work).
//
// A mobile tag acts as the concurrent-ranging initiator; fixed anchors are
// the responders. One ranging round yields a distance to every anchor, and
// multilateration turns those into a position fix — one TX and one RX per
// fix instead of 2*(N_anchors) messages with scheduled SS-TWR.
#pragma once

#include <memory>
#include <vector>

#include "loc/multilateration.hpp"
#include "ranging/session.hpp"

namespace uwb::loc {

struct AnchorSystemConfig {
  /// Scenario template: responders are the anchors. Tag position is set per
  /// fix via locate().
  ranging::ScenarioConfig scenario;
  SolverOptions solver;
};

struct Fix {
  bool ok = false;
  geom::Vec2 position;
  /// Distance from the true tag position (evaluation convenience).
  double error_m = 0.0;
  /// Number of anchors whose distance was decoded this round.
  int anchors_used = 0;
  PositionFix solver_fix;
  ranging::RoundOutcome round;
};

class AnchorLocalizer {
 public:
  explicit AnchorLocalizer(AnchorSystemConfig config);

  /// Run one concurrent-ranging round with the tag at `tag_position` and
  /// multilaterate a fix from the decoded anchor distances.
  Fix locate(geom::Vec2 tag_position);

  ranging::ConcurrentRangingScenario& scenario() { return *scenario_; }

 private:
  AnchorSystemConfig config_;
  std::unique_ptr<ranging::ConcurrentRangingScenario> scenario_;
};

}  // namespace uwb::loc
