#include "geom/image_source.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_map>

#include "common/expects.hpp"

namespace uwb::geom {

namespace {

// Intersection of segment (from, to) with the wall segment; true if the
// crossing lies strictly inside both the wall segment and the (from, to)
// span. Sets `point`.
bool reflection_point(const Segment& wall, Vec2 from, Vec2 to, Vec2& point) {
  Vec2 p;
  if (!line_intersection(Segment{from, to}, wall, p)) return false;
  const double t_wall = project_t(wall, p);
  if (t_wall < 1e-9 || t_wall > 1.0 - 1e-9) return false;
  const Segment ray{from, to};
  const double t_ray = project_t(ray, p);
  if (t_ray < 1e-9 || t_ray > 1.0 - 1e-9) return false;
  return true && (point = p, true);
}

// Signed side of point p relative to the wall line (sign of the cross
// product); 0 means on the line.
double side_of(const Segment& wall, Vec2 p) {
  return cross(wall.b - wall.a, p - wall.a);
}

}  // namespace

std::vector<SpecularPath> compute_paths(const Room& room, Vec2 tx, Vec2 rx,
                                        int max_order) {
  UWB_EXPECTS(max_order >= 0 && max_order <= 2);
  std::vector<SpecularPath> paths;
  // LOS + one first-order path per wall + one second-order path per
  // ordered wall pair bounds the growth exactly.
  const std::size_t n_walls = room.walls().size();
  paths.reserve(max_order == 0   ? 1
                : max_order == 1 ? 1 + n_walls
                                 : 1 + n_walls + n_walls * n_walls);

  SpecularPath los;
  los.length_m = distance(tx, rx);
  los.obstruction_loss_db = room.obstruction_loss_db(tx, rx);
  paths.push_back(los);
  if (max_order == 0) return paths;

  const auto& walls = room.walls();
  for (std::size_t i = 0; i < walls.size(); ++i) {
    const Segment& w = walls[i].segment;
    // TX and RX must be on the same side for a specular bounce to exist.
    if (side_of(w, tx) * side_of(w, rx) <= 0.0) continue;
    const Vec2 image = mirror_across(w, tx);
    Vec2 p;
    if (!reflection_point(w, image, rx, p)) continue;
    SpecularPath sp;
    sp.length_m = distance(image, rx);
    sp.reflection_loss_db = walls[i].reflection_loss_db;
    sp.obstruction_loss_db =
        room.obstruction_loss_db(tx, p) + room.obstruction_loss_db(p, rx);
    sp.order = 1;
    sp.wall_indices = {static_cast<int>(i)};
    paths.push_back(sp);
  }
  if (max_order == 1) return paths;

  for (std::size_t i = 0; i < walls.size(); ++i) {
    const Segment& wi = walls[i].segment;
    if (side_of(wi, tx) == 0.0) continue;
    const Vec2 image1 = mirror_across(wi, tx);
    for (std::size_t j = 0; j < walls.size(); ++j) {
      if (j == i) continue;
      const Segment& wj = walls[j].segment;
      const Vec2 image2 = mirror_across(wj, image1);
      Vec2 pj;
      if (!reflection_point(wj, image2, rx, pj)) continue;
      Vec2 pi;
      if (!reflection_point(wi, image1, pj, pi)) continue;
      // The leg from TX to the first bounce must not cross the second wall
      // and vice versa; for convex rooms the segment checks above suffice,
      // but validate the bounce order geometrically.
      SpecularPath sp;
      sp.length_m = distance(image2, rx);
      sp.reflection_loss_db =
          walls[i].reflection_loss_db + walls[j].reflection_loss_db;
      sp.obstruction_loss_db = room.obstruction_loss_db(tx, pi) +
                               room.obstruction_loss_db(pi, pj) +
                               room.obstruction_loss_db(pj, rx);
      sp.order = 2;
      sp.wall_indices = {static_cast<int>(i), static_cast<int>(j)};
      paths.push_back(sp);
    }
  }
  return paths;
}

namespace {

void append_double(std::string& key, double x) {
  char bits[sizeof(double)];
  std::memcpy(bits, &x, sizeof(bits));
  key.append(bits, sizeof(bits));
}

void append_size(std::string& key, std::size_t n) {
  const auto v = static_cast<std::uint32_t>(n);
  char bits[sizeof(v)];
  std::memcpy(bits, &v, sizeof(bits));
  key.append(bits, sizeof(bits));
}

void append_segment(std::string& key, const Segment& s) {
  append_double(key, s.a.x);
  append_double(key, s.a.y);
  append_double(key, s.b.x);
  append_double(key, s.b.y);
}

// Exact byte-wise key over everything compute_paths reads: the key matches
// iff a fresh computation would return the identical result, so a cache hit
// can never change behaviour.
std::string geometry_key(const Room& room, Vec2 tx, Vec2 rx, int max_order) {
  std::string key;
  key.reserve(16 + 40 * (room.walls().size() + room.obstacles().size()) + 40);
  key.push_back(static_cast<char>(max_order));
  append_size(key, room.walls().size());
  for (const Wall& w : room.walls()) {
    append_segment(key, w.segment);
    append_double(key, w.reflection_loss_db);
  }
  append_size(key, room.obstacles().size());
  for (const Obstacle& o : room.obstacles()) {
    append_segment(key, o.segment);
    append_double(key, o.transmission_loss_db);
  }
  append_double(key, tx.x);
  append_double(key, tx.y);
  append_double(key, rx.x);
  append_double(key, rx.y);
  return key;
}

struct PathCache {
  std::unordered_map<std::string, std::vector<SpecularPath>> entries;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

PathCache& path_cache() {
  thread_local PathCache cache;
  return cache;
}

// Bound on distinct (geometry, endpoints) pairs kept per thread; sweeps with
// continuously moving nodes would otherwise grow without limit.
constexpr std::size_t kMaxPathCacheEntries = 4096;

}  // namespace

const std::vector<SpecularPath>& compute_paths_cached(const Room& room,
                                                      Vec2 tx, Vec2 rx,
                                                      int max_order) {
  PathCache& cache = path_cache();
  std::string key = geometry_key(room, tx, rx, max_order);
  const auto it = cache.entries.find(key);
  if (it != cache.entries.end()) {
    ++cache.hits;
    return it->second;
  }
  ++cache.misses;
  if (cache.entries.size() >= kMaxPathCacheEntries) cache.entries.clear();
  return cache.entries
      .emplace(std::move(key), compute_paths(room, tx, rx, max_order))
      .first->second;
}

PathCacheStats path_cache_stats() {
  const PathCache& cache = path_cache();
  return {cache.hits, cache.misses, cache.entries.size()};
}

void clear_path_cache() { path_cache() = PathCache{}; }

}  // namespace uwb::geom
