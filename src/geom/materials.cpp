#include "geom/materials.hpp"

#include "common/expects.hpp"

namespace uwb::geom {

Room make_furnished_office(double width_m, double height_m) {
  UWB_EXPECTS(width_m > 4.0 && height_m > 4.0);
  Room room = Room::rectangular(width_m, height_m, material::plasterboard_db);
  // A metal cabinet along the north wall and a half-height partition.
  room.add_obstacle({{{width_m * 0.55, height_m - 0.4},
                      {width_m * 0.75, height_m - 0.4}},
                     obstruction::metal_cabinet_db,
                     "cabinet"});
  room.add_obstacle({{{width_m * 0.45, height_m * 0.25},
                      {width_m * 0.45, height_m * 0.60}},
                     obstruction::wooden_door_db,
                     "partition"});
  return room;
}

Room make_corridor(double length_m, double width_m, double wall_loss_db) {
  return Room::hallway(length_m, width_m, wall_loss_db);
}

}  // namespace uwb::geom
