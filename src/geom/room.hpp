// Floor-plan model: reflecting walls plus attenuating obstacles.
//
// Walls produce specular multipath (paper Fig. 1a); obstacles attenuate rays
// that pass through them (used for the NLOS extension study).
#pragma once

#include <string>
#include <vector>

#include "geom/vec2.hpp"

namespace uwb::geom {

/// A reflecting wall segment.
struct Wall {
  Segment segment;
  /// Power reflection loss in dB (>= 0); typical plasterboard ~ 4-8 dB.
  double reflection_loss_db = 6.0;
  std::string name;
};

/// An obstacle that attenuates rays crossing it (e.g., a person, cabinet).
struct Obstacle {
  Segment segment;
  /// Power loss in dB added to any ray crossing the obstacle.
  double transmission_loss_db = 10.0;
  std::string name;
};

/// A 2-D environment: a set of walls and obstacles.
class Room {
 public:
  Room() = default;

  /// Axis-aligned rectangular room [0,width] x [0,height] with four walls of
  /// equal reflection loss (the paper's Fig. 1a scenario).
  static Room rectangular(double width_m, double height_m,
                          double reflection_loss_db = 6.0);

  /// A long corridor: like rectangular() but with the two long side walls
  /// only (open ends), matching the paper's hallway experiments.
  static Room hallway(double length_m, double width_m,
                      double reflection_loss_db = 5.0);

  void add_wall(Wall w) { walls_.push_back(std::move(w)); }
  void add_obstacle(Obstacle o) { obstacles_.push_back(std::move(o)); }

  const std::vector<Wall>& walls() const { return walls_; }
  const std::vector<Obstacle>& obstacles() const { return obstacles_; }

  /// Total obstacle transmission loss (dB) along the open segment from a to
  /// b; 0 when the path is clear.
  double obstruction_loss_db(Vec2 a, Vec2 b) const;

 private:
  std::vector<Wall> walls_;
  std::vector<Obstacle> obstacles_;
};

}  // namespace uwb::geom
