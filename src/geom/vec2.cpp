#include "geom/vec2.hpp"

#include <algorithm>

#include "common/expects.hpp"

namespace uwb::geom {

Vec2 normalized(Vec2 a) {
  const double n = norm(a);
  if (n == 0.0) return a;
  return a / n;
}

namespace {
int orientation_sign(Vec2 a, Vec2 b, Vec2 c) {
  const double v = cross(b - a, c - a);
  constexpr double eps = 1e-12;
  if (v > eps) return 1;
  if (v < -eps) return -1;
  return 0;
}
bool on_segment(Vec2 a, Vec2 b, Vec2 p) {
  return std::min(a.x, b.x) - 1e-12 <= p.x && p.x <= std::max(a.x, b.x) + 1e-12 &&
         std::min(a.y, b.y) - 1e-12 <= p.y && p.y <= std::max(a.y, b.y) + 1e-12;
}
}  // namespace

bool segments_intersect(const Segment& p, const Segment& q, bool strict) {
  const int o1 = orientation_sign(p.a, p.b, q.a);
  const int o2 = orientation_sign(p.a, p.b, q.b);
  const int o3 = orientation_sign(q.a, q.b, p.a);
  const int o4 = orientation_sign(q.a, q.b, p.b);
  if (o1 != o2 && o3 != o4) {
    if (!strict) return true;
    // Strict: reject intersections exactly at an endpoint.
    if (o1 == 0 || o2 == 0 || o3 == 0 || o4 == 0) return false;
    return true;
  }
  if (strict) return false;
  // Collinear overlap cases.
  if (o1 == 0 && on_segment(p.a, p.b, q.a)) return true;
  if (o2 == 0 && on_segment(p.a, p.b, q.b)) return true;
  if (o3 == 0 && on_segment(q.a, q.b, p.a)) return true;
  if (o4 == 0 && on_segment(q.a, q.b, p.b)) return true;
  return false;
}

bool line_intersection(const Segment& p, const Segment& q, Vec2& out) {
  const Vec2 r = p.b - p.a;
  const Vec2 s = q.b - q.a;
  const double denom = cross(r, s);
  if (std::abs(denom) < 1e-15) return false;
  const double t = cross(q.a - p.a, s) / denom;
  out = p.a + r * t;
  return true;
}

Vec2 mirror_across(const Segment& s, Vec2 p) {
  UWB_EXPECTS(s.length() > 0.0);
  const Vec2 d = normalized(s.b - s.a);
  const Vec2 ap = p - s.a;
  const Vec2 foot = s.a + d * dot(ap, d);
  return foot * 2.0 - p;
}

double project_t(const Segment& s, Vec2 p) {
  UWB_EXPECTS(s.length() > 0.0);
  const Vec2 d = s.b - s.a;
  return dot(p - s.a, d) / dot(d, d);
}

}  // namespace uwb::geom
