// Image-source computation of specular multipath (paper Fig. 1a).
//
// For each wall the transmitter is mirrored across the wall line; if the
// straight path from the image to the receiver crosses the wall segment, a
// first-order specular reflection exists with path length |image - rx|.
// Second-order paths mirror the image across a second wall.
#pragma once

#include <vector>

#include "geom/room.hpp"

namespace uwb::geom {

/// One specular propagation path between a TX and an RX.
struct SpecularPath {
  /// Total geometric path length [m].
  double length_m = 0.0;
  /// Sum of the reflection losses of all bounces [dB] (0 for the LOS path).
  double reflection_loss_db = 0.0;
  /// Obstacle transmission loss accumulated along the path [dB].
  double obstruction_loss_db = 0.0;
  /// Number of wall bounces (0 = line of sight).
  int order = 0;
  /// Indices (into Room::walls()) of the bounce walls, in order.
  std::vector<int> wall_indices;
};

/// LOS path plus specular reflections up to `max_order` (1 or 2).
/// The LOS path is always first in the result.
std::vector<SpecularPath> compute_paths(const Room& room, Vec2 tx, Vec2 rx,
                                        int max_order = 1);

/// Thread-locally memoised compute_paths(). Geometry is static within a
/// scenario, so Monte-Carlo harnesses recompute the identical image-source
/// solution for every frame of every round; this cache keys on the exact
/// room geometry (wall/obstacle coordinates and losses) plus the endpoints
/// and order, and returns a reference valid for the calling thread's
/// lifetime. The cache self-clears when it grows past a few thousand
/// entries (mobile-tag sweeps), so memory stays bounded.
const std::vector<SpecularPath>& compute_paths_cached(const Room& room,
                                                      Vec2 tx, Vec2 rx,
                                                      int max_order = 1);

/// Hit/miss/entry counters of the calling thread's path cache.
struct PathCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t entries = 0;
};
PathCacheStats path_cache_stats();

/// Drop the calling thread's cached paths (tests / memory pressure).
void clear_path_cache();

}  // namespace uwb::geom
