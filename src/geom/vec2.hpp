// 2-D vector algebra for floor-plan geometry.
#pragma once

#include <cmath>

namespace uwb::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double k) const { return {x * k, y * k}; }
  constexpr Vec2 operator/(double k) const { return {x / k, y / k}; }
  constexpr bool operator==(const Vec2&) const = default;
};

constexpr double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }
constexpr double cross(Vec2 a, Vec2 b) { return a.x * b.y - a.y * b.x; }

inline double norm(Vec2 a) { return std::sqrt(dot(a, a)); }
inline double distance(Vec2 a, Vec2 b) { return norm(a - b); }

/// Unit vector in the direction of a; {0,0} stays {0,0}.
Vec2 normalized(Vec2 a);

/// A line segment between two points.
struct Segment {
  Vec2 a;
  Vec2 b;

  double length() const { return distance(a, b); }
  Vec2 midpoint() const { return (a + b) / 2.0; }
};

/// True if segments p and q properly intersect (sharing only endpoints
/// counts as no intersection when `strict` is true).
bool segments_intersect(const Segment& p, const Segment& q, bool strict = false);

/// Intersection point of the infinite lines through p and q, if not parallel;
/// returns true and sets `out`.
bool line_intersection(const Segment& p, const Segment& q, Vec2& out);

/// Mirror point `p` across the infinite line through segment `s`.
Vec2 mirror_across(const Segment& s, Vec2 p);

/// Parameter t of the projection of point p onto segment s (0 at s.a, 1 at s.b).
double project_t(const Segment& s, Vec2 p);

}  // namespace uwb::geom
