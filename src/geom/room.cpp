#include "geom/room.hpp"

#include "common/expects.hpp"

namespace uwb::geom {

Room Room::rectangular(double width_m, double height_m, double reflection_loss_db) {
  UWB_EXPECTS(width_m > 0.0 && height_m > 0.0);
  UWB_EXPECTS(reflection_loss_db >= 0.0);
  Room room;
  const Vec2 bl{0.0, 0.0}, br{width_m, 0.0}, tr{width_m, height_m}, tl{0.0, height_m};
  room.add_wall({{bl, br}, reflection_loss_db, "south"});
  room.add_wall({{br, tr}, reflection_loss_db, "east"});
  room.add_wall({{tr, tl}, reflection_loss_db, "north"});
  room.add_wall({{tl, bl}, reflection_loss_db, "west"});
  return room;
}

Room Room::hallway(double length_m, double width_m, double reflection_loss_db) {
  UWB_EXPECTS(length_m > 0.0 && width_m > 0.0);
  Room room;
  room.add_wall({{{0.0, 0.0}, {length_m, 0.0}}, reflection_loss_db, "side-a"});
  room.add_wall({{{0.0, width_m}, {length_m, width_m}}, reflection_loss_db, "side-b"});
  return room;
}

double Room::obstruction_loss_db(Vec2 a, Vec2 b) const {
  double loss = 0.0;
  const Segment ray{a, b};
  for (const Obstacle& o : obstacles_) {
    if (segments_intersect(ray, o.segment, /*strict=*/true))
      loss += o.transmission_loss_db;
  }
  return loss;
}

}  // namespace uwb::geom
