// Uniform spatial grid over 2-D points (DESIGN.md Sect. 13).
//
// Buckets a fixed point set into square cells whose side equals the query
// radius, so every point within Euclidean distance `cell_size_m` of a query
// position lies in the 3x3 cell neighborhood around it. Cells are stored in
// a flat vector sorted by packed cell key — deterministic iteration order,
// binary-search lookup, no hashing and no pointer-chasing.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"

namespace uwb::geom {

/// Packed (ix, iy) integer cell coordinate: two 32-bit lanes in one key.
/// Keys of adjacent cells are not adjacent numbers; use cell_ix/cell_iy to
/// unpack.
using CellKey = std::int64_t;

class UniformGrid {
 public:
  /// One occupied cell: packed coordinate plus the indices (into the point
  /// set the grid was built from) of the points it contains, ascending.
  struct Cell {
    CellKey key = 0;
    std::vector<std::int32_t> indices;
  };

  /// An empty grid: no cells, every neighborhood query returns nothing.
  UniformGrid() = default;

  /// Bucket `points` into square cells of side `cell_size_m` (> 0).
  UniformGrid(const std::vector<Vec2>& points, double cell_size_m);

  double cell_size_m() const { return cell_size_m_; }
  std::size_t point_count() const { return point_count_; }

  /// Packed cell coordinate containing `p`.
  CellKey key_of(Vec2 p) const;

  /// Occupied cells, ascending by key.
  const std::vector<Cell>& cells() const { return cells_; }

  /// Cell with exactly `key`, or nullptr when unoccupied.
  const Cell* find(CellKey key) const;

  /// Append the indices of every point in the 3x3 cell neighborhood of `p`
  /// to `out`, in ascending index order. Guarantee: contains every point
  /// within Euclidean distance cell_size_m of `p` (plus near misses from
  /// the square cells).
  void neighborhood(Vec2 p, std::vector<std::int32_t>& out) const;

  /// True when cell `key` is one of the 9 neighborhood cells of `p`.
  bool in_neighborhood(Vec2 p, CellKey key) const;

  /// Pack / unpack cell coordinates (exposed for tests and reporting).
  static CellKey pack(std::int32_t ix, std::int32_t iy);
  static std::int32_t cell_ix(CellKey key);
  static std::int32_t cell_iy(CellKey key);

 private:
  std::int32_t coord(double v) const;

  double cell_size_m_ = 0.0;
  std::size_t point_count_ = 0;
  std::vector<Cell> cells_;
};

}  // namespace uwb::geom
