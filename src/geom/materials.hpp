// Wall/obstacle material presets for indoor UWB modelling.
//
// Effective power reflection losses at 6-7 GHz for common building
// materials (order-of-magnitude literature values, adjusted for the 2-D
// image-source model which concentrates specular energy — see
// EXPERIMENTS.md calibration notes).
#pragma once

#include "geom/room.hpp"

namespace uwb::geom {

/// Effective specular reflection loss per bounce [dB].
namespace material {
inline constexpr double metal_db = 3.0;
inline constexpr double concrete_db = 8.0;
inline constexpr double brick_db = 10.0;
inline constexpr double glass_db = 12.0;
inline constexpr double plasterboard_db = 15.0;
inline constexpr double wood_db = 17.0;
}  // namespace material

/// Typical transmission loss through obstacles [dB].
namespace obstruction {
inline constexpr double person_db = 6.0;
inline constexpr double wooden_door_db = 4.0;
inline constexpr double glass_door_db = 3.0;
inline constexpr double brick_wall_db = 12.0;
inline constexpr double concrete_wall_db = 18.0;
inline constexpr double metal_cabinet_db = 25.0;
}  // namespace obstruction

/// A furnished office: plasterboard shell plus a metal cabinet and an
/// interior partition — a ready-made multipath-rich evaluation room.
Room make_furnished_office(double width_m = 12.0, double height_m = 8.0);

/// A corridor with the material of choice on both side walls.
Room make_corridor(double length_m, double width_m,
                   double wall_loss_db = material::plasterboard_db);

}  // namespace uwb::geom
