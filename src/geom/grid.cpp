#include "geom/grid.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"

namespace uwb::geom {

namespace {

std::uint32_t lane(std::int32_t v) {
  return static_cast<std::uint32_t>(v);
}

}  // namespace

CellKey UniformGrid::pack(std::int32_t ix, std::int32_t iy) {
  return static_cast<std::int64_t>(
      (static_cast<std::uint64_t>(lane(ix)) << 32) |
      static_cast<std::uint64_t>(lane(iy)));
}

std::int32_t UniformGrid::cell_ix(CellKey key) {
  return static_cast<std::int32_t>(
      static_cast<std::uint32_t>(static_cast<std::uint64_t>(key) >> 32));
}

std::int32_t UniformGrid::cell_iy(CellKey key) {
  return static_cast<std::int32_t>(
      static_cast<std::uint32_t>(static_cast<std::uint64_t>(key) & 0xFFFFFFFFull));
}

std::int32_t UniformGrid::coord(double v) const {
  return static_cast<std::int32_t>(std::floor(v / cell_size_m_));
}

UniformGrid::UniformGrid(const std::vector<Vec2>& points, double cell_size_m)
    : cell_size_m_(cell_size_m), point_count_(points.size()) {
  UWB_EXPECTS(cell_size_m > 0.0);
  std::vector<std::pair<CellKey, std::int32_t>> entries;
  entries.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    entries.emplace_back(key_of(points[i]), static_cast<std::int32_t>(i));
  }
  std::sort(entries.begin(), entries.end());
  for (const auto& [key, index] : entries) {
    if (cells_.empty() || cells_.back().key != key) {
      cells_.push_back(Cell{key, {}});
    }
    cells_.back().indices.push_back(index);
  }
}

CellKey UniformGrid::key_of(Vec2 p) const {
  UWB_EXPECTS(cell_size_m_ > 0.0);
  return pack(coord(p.x), coord(p.y));
}

const UniformGrid::Cell* UniformGrid::find(CellKey key) const {
  auto it = std::lower_bound(
      cells_.begin(), cells_.end(), key,
      [](const Cell& c, CellKey k) { return c.key < k; });
  if (it == cells_.end() || it->key != key) return nullptr;
  return &*it;
}

void UniformGrid::neighborhood(Vec2 p, std::vector<std::int32_t>& out) const {
  if (cells_.empty()) return;
  const std::int32_t cx = coord(p.x);
  const std::int32_t cy = coord(p.y);
  const std::size_t first = out.size();
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      if (const Cell* cell = find(pack(cx + dx, cy + dy))) {
        out.insert(out.end(), cell->indices.begin(), cell->indices.end());
      }
    }
  }
  // Cells were visited in (dx, dy) order, not index order; receivers must be
  // scheduled in ascending node order to keep event tie-breaks stable.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
}

bool UniformGrid::in_neighborhood(Vec2 p, CellKey key) const {
  const std::int32_t cx = coord(p.x);
  const std::int32_t cy = coord(p.y);
  const std::int32_t kx = cell_ix(key);
  const std::int32_t ky = cell_iy(key);
  return kx >= cx - 1 && kx <= cx + 1 && ky >= cy - 1 && ky <= cy + 1;
}

}  // namespace uwb::geom
