// Path-loss models.
//
// The paper (open challenge IV) stresses that the idealised Friis equation
// does not hold in typical UWB operational areas; we provide both Friis and
// the log-distance model actually used by the channel simulator, so that the
// amplitude-independence ablation can contrast them.
#pragma once

namespace uwb::channel {

/// Free-space (Friis) path loss [dB] at distance d for carrier frequency f.
/// d in metres, f in Hz. d must be > 0.
double friis_loss_db(double distance_m, double frequency_hz);

/// Log-distance path loss [dB]: PL(d) = PL(d0) + 10 n log10(d/d0).
/// Typical indoor LOS UWB: n ~ 1.6-1.8; NLOS: n ~ 3-4.
double log_distance_loss_db(double distance_m, double exponent,
                            double reference_loss_db, double reference_m = 1.0);

/// Linear *amplitude* gain corresponding to a power loss in dB.
double loss_db_to_amplitude(double loss_db);

}  // namespace uwb::channel
