#include "channel/channel_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "channel/path_loss.hpp"
#include "common/constants.hpp"
#include "common/expects.hpp"

namespace uwb::channel {

ChannelModel::ChannelModel(geom::Room room, ChannelModelParams params)
    : room_(std::move(room)), params_(params) {
  UWB_EXPECTS(params.path_loss_exponent >= 0.0);
  UWB_EXPECTS(params.max_reflection_order >= 0 && params.max_reflection_order <= 2);
  UWB_EXPECTS(params.specular_fading_db >= 0.0);
}

ChannelRealization ChannelModel::realize(geom::Vec2 tx, geom::Vec2 rx,
                                         Rng& rng) const {
  UWB_EXPECTS(geom::distance(tx, rx) > 0.0);
  ChannelRealization out;

  // Memoised image-source solve: geometry is static across the rounds of a
  // scenario, so all but the first frame per (tx, rx) pair hit the cache.
  const auto& specular =
      geom::compute_paths_cached(room_, tx, rx, params_.max_reflection_order);
  UWB_ENSURES(!specular.empty());
  out.los_delay_s = specular.front().length_m / k::c_air;
  out.taps.reserve(specular.size());

  double los_amp = 0.0;
  for (const geom::SpecularPath& p : specular) {
    const double loss_db =
        log_distance_loss_db(p.length_m, params_.path_loss_exponent,
                             params_.reference_loss_db) +
        p.reflection_loss_db + p.obstruction_loss_db +
        rng.normal(0.0, params_.specular_fading_db);
    Tap tap;
    tap.delay_s = p.length_m / k::c_air;
    tap.amplitude = rng.random_phase() * loss_db_to_amplitude(loss_db);
    tap.deterministic = true;
    tap.order = p.order;
    if (p.order == 0) los_amp = std::abs(tap.amplitude);
    out.taps.push_back(tap);
  }

  if (params_.enable_diffuse) {
    // Diffuse power is defined relative to the (unobstructed) direct path.
    const double ref_amp =
        los_amp > 0.0
            ? los_amp
            : loss_db_to_amplitude(log_distance_loss_db(
                  specular.front().length_m, params_.path_loss_exponent,
                  params_.reference_loss_db));
    const std::vector<DiffuseRay> rays = draw_diffuse_tail(params_.diffuse, rng);
    out.taps.reserve(out.taps.size() + rays.size());
    for (const DiffuseRay& ray : rays) {
      Tap tap;
      tap.delay_s = out.los_delay_s + ray.excess_delay_s;
      tap.amplitude = ray.amplitude * ref_amp;
      tap.deterministic = false;
      out.taps.push_back(tap);
    }
  }

  std::sort(out.taps.begin(), out.taps.end(),
            [](const Tap& a, const Tap& b) { return a.delay_s < b.delay_s; });
  return out;
}

Meters ChannelModel::max_detectable_range(double threshold_amp,
                                          double margin_db) const {
  if (!(threshold_amp > 0.0) || !(params_.path_loss_exponent > 0.0)) {
    return Meters{std::numeric_limits<double>::infinity()};
  }
  // Best-case LOS amplitude at distance d (with margin_db of fading
  // headroom): 10^((margin - ref)/20) * d^(-n/2). Solve amp == threshold
  // for d.
  const double numer =
      std::pow(10.0, (margin_db - params_.reference_loss_db) / 20.0);
  const double d =
      std::pow(numer / threshold_amp, 2.0 / params_.path_loss_exponent);
  if (!std::isfinite(d)) {
    return Meters{std::numeric_limits<double>::infinity()};
  }
  return Meters{d};
}

}  // namespace uwb::channel
