#include "channel/path_loss.hpp"

#include <cmath>
#include <numbers>

#include "common/constants.hpp"
#include "common/expects.hpp"

namespace uwb::channel {

double friis_loss_db(double distance_m, double frequency_hz) {
  UWB_EXPECTS(distance_m > 0.0);
  UWB_EXPECTS(frequency_hz > 0.0);
  const double lambda = k::c_vacuum / frequency_hz;
  const double ratio = 4.0 * std::numbers::pi * distance_m / lambda;
  return 20.0 * std::log10(ratio);
}

double log_distance_loss_db(double distance_m, double exponent,
                            double reference_loss_db, double reference_m) {
  UWB_EXPECTS(distance_m > 0.0);
  UWB_EXPECTS(reference_m > 0.0);
  UWB_EXPECTS(exponent >= 0.0);
  return reference_loss_db + 10.0 * exponent * std::log10(distance_m / reference_m);
}

double loss_db_to_amplitude(double loss_db) {
  return std::pow(10.0, -loss_db / 20.0);
}

}  // namespace uwb::channel
