#include "channel/saleh_valenzuela.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"
#include "common/units.hpp"

namespace uwb::channel {

std::vector<DiffuseRay> draw_diffuse_tail(const SalehValenzuelaParams& params,
                                          Rng& rng) {
  UWB_EXPECTS(params.cluster_rate_hz > 0.0 && params.ray_rate_hz > 0.0);
  UWB_EXPECTS(params.cluster_decay_s > 0.0 && params.ray_decay_s > 0.0);
  UWB_EXPECTS(params.window_s > 0.0);

  struct RawRay {
    double delay = 0.0;
    double mean_power = 0.0;
  };
  std::vector<RawRay> raw;
  // Expected arrival count: clusters arriving at cluster_rate over the
  // window, each spawning rays at ray_rate over (on average) half the
  // remaining window.  A capacity hint — the draw itself is unbounded.
  const double exp_clusters = params.window_s * params.cluster_rate_hz + 1.0;
  const double exp_rays_per = 0.5 * params.window_s * params.ray_rate_hz + 1.0;
  raw.reserve(static_cast<std::size_t>(
      std::min(4096.0, exp_clusters * exp_rays_per)));

  // Cluster arrivals (first cluster pinned at the LOS arrival).
  double cluster_t = 0.0;
  while (cluster_t < params.window_s) {
    // Ray arrivals within the cluster (first ray at the cluster start).
    double ray_t = 0.0;
    while (cluster_t + ray_t < params.window_s) {
      const double mean_power = std::exp(-cluster_t / params.cluster_decay_s) *
                                std::exp(-ray_t / params.ray_decay_s);
      if (cluster_t + ray_t > 0.0)  // exclude the LOS instant itself
        raw.push_back({cluster_t + ray_t, mean_power});
      ray_t += rng.exponential(1.0 / params.ray_rate_hz);
    }
    cluster_t += rng.exponential(1.0 / params.cluster_rate_hz);
  }

  if (raw.empty()) return {};

  // Normalise the *mean* power profile to the requested total, then apply
  // per-ray Rayleigh fading so the realised total still fluctuates.
  double mean_total = 0.0;
  for (const RawRay& r : raw) mean_total += r.mean_power;
  const double target = db_to_linear(params.total_power_rel_db);
  const double scale = target / mean_total;

  std::vector<DiffuseRay> rays;
  rays.reserve(raw.size());
  for (const RawRay& r : raw) {
    const double mean_amp = std::sqrt(r.mean_power * scale);
    // Rayleigh with E[a^2] = mean_amp^2 -> sigma = mean_amp / sqrt(2).
    const double a = rng.rayleigh(mean_amp / std::sqrt(2.0));
    rays.push_back({r.delay, rng.random_phase() * a});
  }
  return rays;
}

}  // namespace uwb::channel
