// Full channel realisation: Eq. 1 of the paper,
//   h(t) = sum_k alpha_k delta(t - tau_k) + nu(t)
// with deterministic specular components alpha_k from floor-plan geometry
// (image-source method) and the diffuse term nu(t) from a Saleh-Valenzuela
// tail attached to the first arrival.
#pragma once

#include <vector>

#include "channel/saleh_valenzuela.hpp"
#include "common/random.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "geom/image_source.hpp"
#include "geom/room.hpp"

namespace uwb::channel {

/// One resolvable propagation component.
struct Tap {
  /// Absolute propagation delay TX -> RX [s].
  double delay_s = 0.0;
  /// Complex amplitude (relative to unit TX amplitude at the 1 m reference).
  Complex amplitude;
  /// True for deterministic (specular/LOS) components.
  bool deterministic = false;
  /// Bounce order (0 = LOS) for deterministic taps.
  int order = 0;
};

/// A drawn channel between one TX and one RX.
struct ChannelRealization {
  /// Taps sorted by increasing delay. The first deterministic tap is the
  /// direct path (possibly attenuated by obstacles).
  std::vector<Tap> taps;
  /// Propagation delay of the geometric direct path [s] (even if blocked).
  double los_delay_s = 0.0;
};

/// Channel model configuration.
struct ChannelModelParams {
  /// Log-distance path-loss exponent (indoor LOS).
  double path_loss_exponent = 1.8;
  /// Path loss at the 1 m reference distance [dB]. With unit TX amplitude
  /// the LOS amplitude at 1 m is 10^(-ref/20).
  double reference_loss_db = 0.0;
  /// Per-path complex amplitude jitter (std-dev of a multiplicative
  /// lognormal-ish fluctuation in dB) modelling small-scale variation of
  /// specular components between rounds.
  double specular_fading_db = 1.0;
  /// Maximum image-source reflection order (0 disables specular MPCs).
  int max_reflection_order = 1;
  /// Include the Saleh-Valenzuela diffuse tail.
  bool enable_diffuse = true;
  SalehValenzuelaParams diffuse;
};

/// Generates channel realisations for node pairs placed in a Room.
class ChannelModel {
 public:
  ChannelModel(geom::Room room, ChannelModelParams params);

  /// Draw a realisation for a TX at `tx` and an RX at `rx` [m].
  ChannelRealization realize(geom::Vec2 tx, geom::Vec2 rx, Rng& rng) const;

  /// Upper bound on the TX-RX distance at which any tap of a realisation
  /// can still reach `threshold_amp`. Every specular path is at least as
  /// long as the direct path and only adds reflection/obstruction loss, and
  /// diffuse rays are scaled below the direct-path amplitude, so the bound
  /// follows from the log-distance law of the unobstructed LOS component
  /// alone. `margin_db` is headroom for the unbounded specular fading draw
  /// (16 dB = 16 sigma at the default 1 dB fading — astronomically safe).
  /// Returns +infinity (no finite bound) when the threshold or the path-loss
  /// exponent make the law non-invertible.
  Meters max_detectable_range(double threshold_amp, double margin_db) const;

  const geom::Room& room() const { return room_; }
  const ChannelModelParams& params() const { return params_; }

 private:
  geom::Room room_;
  ChannelModelParams params_;
};

}  // namespace uwb::channel
