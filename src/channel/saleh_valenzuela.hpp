// Saleh-Valenzuela diffuse multipath generator.
//
// Models the nondeterministic term nu(t) of the paper's channel model
// (Eq. 1): higher-order reflections and scattering arriving as Poisson ray
// clusters with doubly-exponential power decay and Rayleigh amplitudes.
#pragma once

#include <vector>

#include "common/random.hpp"
#include "common/types.hpp"

namespace uwb::channel {

/// One diffuse ray.
struct DiffuseRay {
  /// Excess delay relative to the first (LOS) arrival [s].
  double excess_delay_s = 0.0;
  /// Complex amplitude, relative to a unit-amplitude LOS ray.
  Complex amplitude;
};

/// Saleh-Valenzuela parameters. Defaults approximate an indoor office
/// (IEEE 802.15.4a CM1-like orders of magnitude).
struct SalehValenzuelaParams {
  /// Cluster arrival rate [1/s] (Lambda).
  double cluster_rate_hz = 0.047e9;
  /// Ray arrival rate within a cluster [1/s] (lambda).
  double ray_rate_hz = 1.54e9;
  /// Cluster power decay constant [s] (Gamma).
  double cluster_decay_s = 22.61e-9;
  /// Ray power decay constant [s] (gamma).
  double ray_decay_s = 12.53e-9;
  /// Total diffuse power relative to the LOS ray power [dB] (negative).
  /// -9 dB corresponds to a moderate indoor LOS Rician K-factor; NLOS
  /// studies override this upward.
  double total_power_rel_db = -9.0;
  /// Generation window after the first arrival [s].
  double window_s = 120e-9;
};

/// Draw a diffuse-tail realisation. The returned rays carry excess delays in
/// (0, window_s] and complex amplitudes scaled so the *expected* total
/// diffuse power equals `total_power_rel_db` relative to a unit LOS ray.
std::vector<DiffuseRay> draw_diffuse_tail(const SalehValenzuelaParams& params,
                                          Rng& rng);

}  // namespace uwb::channel
