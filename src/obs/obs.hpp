// Instrumentation entry points for the observability subsystem.
//
// Instrumented code uses only these macros. In the default build they expand
// to the real Span/Counter/Gauge machinery; configuring with
// -DUWB_OBS_DISABLED=ON (which defines UWB_OBS_DISABLED) compiles every
// macro to nothing, so the hot paths carry zero instrumentation cost. The
// obs classes themselves (metrics.hpp, span.hpp, trace_sink.hpp) stay fully
// functional in both builds — only the macro call sites disappear — so code
// that aggregates or tests the registry directly behaves identically.
//
// All names passed to these macros must be string literals (spans store the
// pointer; counters/gauges cache a reference in a function-local
// `static thread_local`, so the name must be the same on every execution of
// that call site).
#pragma once

#include <cstdint>

#ifndef UWB_OBS_DISABLED
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#endif

namespace uwb::obs {

/// True when instrumentation macros are live in this build.
#ifndef UWB_OBS_DISABLED
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

}  // namespace uwb::obs

#define UWB_OBS_CONCAT_INNER(a, b) a##b
#define UWB_OBS_CONCAT(a, b) UWB_OBS_CONCAT_INNER(a, b)

#ifndef UWB_OBS_DISABLED

/// Time the enclosing scope under `name` (a string literal).
#define UWB_OBS_SPAN(name) \
  ::uwb::obs::Span UWB_OBS_CONCAT(uwb_obs_span_, __LINE__)(name)

/// Add `delta` to the thread-local counter `name` (a string literal).
#define UWB_OBS_COUNT(name, delta)                                      \
  do {                                                                  \
    static thread_local ::uwb::obs::Counter& uwb_obs_counter_ =         \
        ::uwb::obs::MetricsRegistry::instance().local_shard().counter(  \
            name);                                                      \
    uwb_obs_counter_.add(static_cast<std::uint64_t>(delta));            \
  } while (false)

/// Set the thread-local gauge `name` (a string literal) to `value`.
#define UWB_OBS_GAUGE_SET(name, value)                                \
  do {                                                                \
    static thread_local ::uwb::obs::Gauge& uwb_obs_gauge_ =           \
        ::uwb::obs::MetricsRegistry::instance().local_shard().gauge(  \
            name);                                                    \
    uwb_obs_gauge_.set(static_cast<double>(value));                   \
  } while (false)

/// Observe `value` in the thread-local histogram `name` (a string literal).
/// `buckets` is a `const HistogramBuckets&` expression; the first execution
/// per thread fixes the layout, so pass the same layout at every call site
/// sharing a name.
#define UWB_OBS_HISTOGRAM(name, buckets, value)                          \
  do {                                                                   \
    static thread_local ::uwb::obs::Histogram& uwb_obs_histogram_ =      \
        ::uwb::obs::MetricsRegistry::instance().local_shard().histogram( \
            name, buckets);                                              \
    uwb_obs_histogram_.observe(static_cast<double>(value));              \
  } while (false)

#else  // UWB_OBS_DISABLED

#define UWB_OBS_SPAN(name) \
  do {                     \
  } while (false)
#define UWB_OBS_COUNT(name, delta) \
  do {                             \
  } while (false)
#define UWB_OBS_GAUGE_SET(name, value) \
  do {                                 \
  } while (false)
#define UWB_OBS_HISTOGRAM(name, buckets, value) \
  do {                                          \
  } while (false)

#endif  // UWB_OBS_DISABLED
