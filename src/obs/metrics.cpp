#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>

#include "common/expects.hpp"
#include "obs/trace_sink.hpp"

namespace uwb::obs {

std::uint64_t monotonic_ns() {
  static const auto anchor = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - anchor)
          .count());
}

HistogramBuckets HistogramBuckets::exponential(double first_upper,
                                               double factor, int count) {
  UWB_EXPECTS(first_upper > 0.0);
  UWB_EXPECTS(factor > 1.0);
  UWB_EXPECTS(count >= 1);
  HistogramBuckets b;
  b.uppers.reserve(static_cast<std::size_t>(count));
  double upper = first_upper;
  for (int i = 0; i < count; ++i) {
    b.uppers.push_back(upper);
    upper *= factor;
  }
  return b;
}

HistogramBuckets HistogramBuckets::linear(double first_upper, double width,
                                          int count) {
  UWB_EXPECTS(width > 0.0);
  UWB_EXPECTS(count >= 1);
  HistogramBuckets b;
  b.uppers.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    b.uppers.push_back(first_upper + width * static_cast<double>(i));
  return b;
}

const HistogramBuckets& latency_buckets_ms() {
  // 1 µs, 2 µs, 4 µs, ... ~8.4 s: covers one Monte-Carlo trial from a
  // trivially cheap closure to a pathologically slow scenario round.
  static const HistogramBuckets buckets =
      HistogramBuckets::exponential(1e-3, 2.0, 24);
  return buckets;
}

const HistogramBuckets& fanout_buckets() {
  // 0, 1, 2, 4, ... 2048: a broadcast in a small room lands in the low
  // buckets; a building-scale unculled medium can reach every node.
  static const HistogramBuckets buckets = [] {
    HistogramBuckets b = HistogramBuckets::exponential(1.0, 2.0, 12);
    b.uppers.insert(b.uppers.begin(), 0.0);
    return b;
  }();
  return buckets;
}

Histogram::Histogram(HistogramBuckets buckets)
    : buckets_(std::move(buckets)),
      counts_(buckets_.uppers.size() + 1, 0) {
  UWB_EXPECTS(!buckets_.uppers.empty());
  UWB_EXPECTS(std::is_sorted(buckets_.uppers.begin(), buckets_.uppers.end()));
}

std::size_t Histogram::bucket_index(double value) const {
  // First bucket whose (inclusive) upper edge covers the value.
  const auto it =
      std::lower_bound(buckets_.uppers.begin(), buckets_.uppers.end(), value);
  return static_cast<std::size_t>(it - buckets_.uppers.begin());
}

// uwb-hot-path: metric record path; called from spans on the detector and
// medium hot loops, so it must stay pure arithmetic on preallocated state.
void Histogram::observe(double value) {
  ++counts_[bucket_index(value)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  UWB_EXPECTS(buckets_ == other.buckets_);
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    min_ = count_ ? std::min(min_, other.min_) : other.min_;
    max_ = count_ ? std::max(max_, other.max_) : other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

double Histogram::quantile(double q) const {
  UWB_EXPECTS(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += counts_[b];
    if (static_cast<double>(cum) >= target) {
      const double lower = b == 0 ? min_ : buckets_.uppers[b - 1];
      const double upper = b < buckets_.uppers.size()
                               ? std::min(buckets_.uppers[b], max_)
                               : max_;
      const double lo = std::max(lower, min_);
      const double frac =
          (target - before) / static_cast<double>(counts_[b]);
      return std::clamp(lo + frac * (upper - lo), min_, max_);
    }
  }
  return max_;
}

Counter& Shard::counter(std::string_view name) {
  for (auto& [n, c] : counters_)
    if (n == name) return c;
  counters_.emplace_back(std::string(name), Counter{});
  return counters_.back().second;
}

Gauge& Shard::gauge(std::string_view name) {
  for (auto& [n, g] : gauges_)
    if (n == name) return g;
  gauges_.emplace_back(std::string(name), Gauge{});
  return gauges_.back().second;
}

Histogram& Shard::histogram(std::string_view name,
                            const HistogramBuckets& buckets) {
  for (auto& [n, h] : histograms_) {
    if (n == name) {
      UWB_EXPECTS(h.buckets() == buckets);
      return h;
    }
  }
  histograms_.emplace_back(std::string(name), Histogram(buckets));
  return histograms_.back().second;
}

SpanStat& Shard::span_stat(const char* name) {
  // Literal-pointer identity first (the common case: one call site), then
  // content equality (the same stage name instrumented from several TUs).
  for (SpanStat& s : span_stats_)
    if (s.name == name || std::strcmp(s.name, name) == 0) return s;
  span_stats_.push_back(SpanStat{name, 0, 0});
  return span_stats_.back();
}

void Shard::exit_span(const char* name, std::uint64_t start_ns,
                      std::uint64_t dur_ns, int depth) {
  --span_depth_;
  SpanStat& stat = span_stat(name);
  ++stat.count;
  stat.total_ns += dur_ns;
  if (tracing_enabled() && trace_.size() < kMaxTraceEventsPerShard)
    trace_.push_back(TraceEvent{name, start_ns, dur_ns, id_, depth});
}

void Shard::reset() {
  for (auto& [n, c] : counters_) c.reset();
  for (auto& [n, g] : gauges_) g.reset();
  for (auto& [n, h] : histograms_) h.reset();
  for (SpanStat& s : span_stats_) {
    s.count = 0;
    s.total_ns = 0;
  }
  trace_.clear();
}

std::uint64_t Snapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

const Histogram* Snapshot::histogram(std::string_view name) const {
  for (const auto& [n, h] : histograms)
    if (n == name) return &h;
  return nullptr;
}

const Snapshot::SpanTotal* Snapshot::span(std::string_view name) const {
  for (const SpanTotal& s : spans)
    if (s.name == name) return &s;
  return nullptr;
}

namespace {

std::string prom_name(std::string_view name) {
  std::string out = "uwb_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prom_number(double v) {
  if (v != v) return "NaN";
  if (v > 1.7976931348623157e308) return "+Inf";
  if (v < -1.7976931348623157e308) return "-Inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void prom_scalar(std::string& out, const std::string& name, const char* type,
                 const std::string& value) {
  out += "# TYPE " + name + " " + type + "\n";
  out += name + " " + value + "\n";
}

}  // namespace

std::string Snapshot::to_prometheus() const {
  std::string out;
  char buf[64];
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    prom_scalar(out, prom_name(name), "counter", buf);
  }
  for (const auto& [name, value] : gauges)
    prom_scalar(out, prom_name(name), "gauge", prom_number(value));
  for (const auto& [name, h] : histograms) {
    const std::string metric = prom_name(name);
    out += "# TYPE " + metric + " histogram\n";
    std::uint64_t cumulative = 0;
    const auto& uppers = h.buckets().uppers;
    for (std::size_t i = 0; i <= uppers.size(); ++i) {
      cumulative += h.bucket_count(i);
      const std::string le =
          i < uppers.size() ? prom_number(uppers[i]) : "+Inf";
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(cumulative));
      out += metric + "_bucket{le=\"" + le + "\"} " + buf + "\n";
    }
    out += metric + "_sum " + prom_number(h.sum()) + "\n";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(h.count()));
    out += metric + "_count " + std::string(buf) + "\n";
  }
  for (const SpanTotal& s : spans) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(s.count));
    prom_scalar(out, prom_name("span_" + s.name + "_calls_total"), "counter",
                buf);
    prom_scalar(out, prom_name("span_" + s.name + "_ms_total"), "counter",
                prom_number(s.total_ms));
  }
  return out;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Shard& MetricsRegistry::register_shard() {
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(
      std::make_unique<Shard>(static_cast<int>(shards_.size())));
  return *shards_.back();
}

Shard& MetricsRegistry::local_shard() {
  thread_local Shard* shard = nullptr;
  if (shard == nullptr) shard = &register_shard();
  return *shard;
}

std::vector<Shard*> MetricsRegistry::shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Shard*> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) out.push_back(s.get());
  return out;
}

Snapshot MetricsRegistry::aggregate() const {
  // std::map keys the merge by name: sorted, hence deterministic output
  // order regardless of shard registration order.
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
  struct RawSpan {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::string, RawSpan> spans;

  for (const Shard* shard : shards()) {
    for (const auto& [name, c] : shard->counters())
      counters[name] += c.value();
    for (const auto& [name, g] : shard->gauges()) {
      const auto [it, inserted] = gauges.emplace(name, g.value());
      if (!inserted) it->second = std::max(it->second, g.value());
    }
    for (const auto& [name, h] : shard->histograms()) {
      const auto it = histograms.find(name);
      if (it == histograms.end())
        histograms.emplace(name, h);
      else
        it->second.merge(h);
    }
    for (const SpanStat& s : shard->span_stats()) {
      RawSpan& agg = spans[s.name];
      agg.count += s.count;
      agg.total_ns += s.total_ns;
    }
  }

  Snapshot snap;
  snap.counters.assign(counters.begin(), counters.end());
  snap.gauges.assign(gauges.begin(), gauges.end());
  for (auto& [name, h] : histograms) snap.histograms.emplace_back(name, h);
  for (const auto& [name, s] : spans)
    snap.spans.push_back(Snapshot::SpanTotal{
        name, s.count, static_cast<double>(s.total_ns) / 1e6});
  return snap;
}

void MetricsRegistry::reset() {
  for (Shard* shard : shards()) shard->reset();
}

}  // namespace uwb::obs
