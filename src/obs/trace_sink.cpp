#include "obs/trace_sink.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>

namespace uwb::obs {

namespace {
std::atomic<bool> g_tracing{false};
}  // namespace

void set_tracing_enabled(bool enabled) {
  g_tracing.store(enabled, std::memory_order_relaxed);
}

bool tracing_enabled() { return g_tracing.load(std::memory_order_relaxed); }

std::vector<TraceEvent> collect_trace_events() {
  std::vector<TraceEvent> events;
  for (Shard* shard : MetricsRegistry::instance().shards()) {
    const auto& buf = shard->trace_events();
    events.insert(events.end(), buf.begin(), buf.end());
    shard->clear_trace_events();
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.depth < b.depth;
            });
  return events;
}

void clear_trace_events() {
  for (Shard* shard : MetricsRegistry::instance().shards())
    shard->clear_trace_events();
}

namespace {

void append_json_string(std::string& out, const char* s) {
  out += '"';
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_us(std::string& out, std::uint64_t ns) {
  // Microseconds with fixed 3-decimal precision: Chrome's ts/dur unit,
  // kept exact (1 ns = 0.001 µs) to avoid double rounding.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":";
    append_json_string(out, e.name);
    out += ",\"ph\":\"X\",\"cat\":\"uwb\",\"pid\":0,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    append_us(out, e.start_ns);
    out += ",\"dur\":";
    append_us(out, e.dur_ns);
    out += ",\"args\":{\"depth\":";
    out += std::to_string(e.depth);
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string doc = chrome_trace_json(collect_trace_events());
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  return static_cast<bool>(f);
}

}  // namespace uwb::obs
