// Metrics core of the observability subsystem (DESIGN.md Sect. 9).
//
// A process-wide MetricsRegistry hands every thread its own Shard of
// counters, gauges, and fixed-bucket histograms. Instrumented code mutates
// only its own shard — plain non-atomic writes, no cross-thread traffic on
// the hot path — and aggregate() merges all shards into one Snapshot with
// names in sorted order, so the merged output is deterministic given the
// same shard contents. Counters of deterministic per-trial events (integer
// sums, order-independent) therefore aggregate bit-identically at any
// worker-thread count, preserving the Monte-Carlo determinism contract of
// DESIGN.md Sect. 7; wall-clock quantities (span timings, latencies) are
// inherently scheduling-dependent and surface under skipped prefixes in
// the bench JSON (`obs_*`, like `mc_*`/`cache_*`).
//
// Quiescence contract: aggregate(), reset(), and the trace-sink collectors
// must not run concurrently with instrumentation on other threads. The
// benches and the Monte-Carlo runner satisfy this by aggregating only
// after the pool has drained (ThreadPool::wait_idle establishes the
// happens-before edge); tests join their threads first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace uwb::obs {

/// Nanoseconds since an arbitrary process-wide steady-clock anchor (the
/// first call). All span/trace timestamps share this origin.
std::uint64_t monotonic_ns();

/// Single-writer counter: incremented only by the shard-owning thread.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Single-writer last-value gauge. Shards aggregate gauges by maximum
/// (the only order-independent choice that stays meaningful for the
/// typical "configured level / high-water mark" uses).
class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed bucket layout: ascending inclusive upper edges plus an implicit
/// overflow bucket. Histograms only merge when layouts match exactly.
struct HistogramBuckets {
  std::vector<double> uppers;

  /// `count` buckets with uppers first_upper * factor^i.
  static HistogramBuckets exponential(double first_upper, double factor,
                                      int count);
  /// `count` buckets with uppers first_upper + width * i.
  static HistogramBuckets linear(double first_upper, double width, int count);

  bool operator==(const HistogramBuckets& other) const {
    return uppers == other.uppers;
  }
};

/// Bucket layout used for per-trial latency [ms]: 1 µs .. ~8.4 s,
/// factor-2 spacing.
const HistogramBuckets& latency_buckets_ms();

/// Bucket layout for per-frame delivery fan-out (receivers reached by one
/// transmission): 0 .. 2048, factor-2 spacing above 1.
const HistogramBuckets& fanout_buckets();

/// Fixed-bucket histogram with exact count/sum/min/max and
/// linearly-interpolated quantile estimates.
class Histogram {
 public:
  explicit Histogram(HistogramBuckets buckets);

  void observe(double value);
  /// Add `other`'s contents; layouts must match.
  void merge(const Histogram& other);
  void reset();

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Smallest / largest observed value (0 when empty).
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Quantile estimate for q in [0, 1]: linear interpolation inside the
  /// covering bucket, clamped to [min, max]. 0 when empty.
  double quantile(double q) const;

  /// Bucket a value falls into: first i with value <= uppers[i], else the
  /// overflow bucket uppers.size().
  std::size_t bucket_index(double value) const;
  /// Count in bucket i (i == uppers.size() is the overflow bucket).
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }

  const HistogramBuckets& buckets() const { return buckets_; }

 private:
  HistogramBuckets buckets_;
  std::vector<std::uint64_t> counts_;  // uppers.size() + 1 slots
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Totals of one span name within a shard (trace_sink aggregates these
/// into the per-stage timings of the bench JSON).
struct SpanStat {
  const char* name = nullptr;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

/// One completed span, recorded only while tracing is enabled
/// (see trace_sink.hpp).
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  // monotonic_ns() origin
  std::uint64_t dur_ns = 0;
  int tid = 0;    // shard id
  int depth = 0;  // span-stack depth at entry (0 = top level)
};

/// Per-thread slice of the registry. All mutation goes through the owning
/// thread; names are compared literally. References returned by
/// counter()/gauge()/histogram() stay valid for the process lifetime
/// (reset() zeroes values in place), which lets call sites cache them in
/// `static thread_local` handles.
class Shard {
 public:
  /// Cap on buffered trace events per shard: bounds memory when a long
  /// traced run never drains the sink (~5 MB/shard worst case).
  static constexpr std::size_t kMaxTraceEventsPerShard = std::size_t{1} << 18;

  explicit Shard(int id) : id_(id) {}
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  int id() const { return id_; }

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First call per name fixes the layout; later calls must pass an equal
  /// layout.
  Histogram& histogram(std::string_view name, const HistogramBuckets& buckets);

  // --- span plumbing (used by obs::Span and the trace sink) ---------------
  /// Push one level onto the span stack; returns the depth of the new span.
  int enter_span() { return span_depth_++; }
  /// Pop a span: record its totals and, when tracing, its trace event.
  void exit_span(const char* name, std::uint64_t start_ns,
                 std::uint64_t dur_ns, int depth);
  int span_depth() const { return span_depth_; }

  // --- aggregation access (quiescence contract applies) -------------------
  const std::deque<std::pair<std::string, Counter>>& counters() const {
    return counters_;
  }
  const std::deque<std::pair<std::string, Gauge>>& gauges() const {
    return gauges_;
  }
  const std::deque<std::pair<std::string, Histogram>>& histograms() const {
    return histograms_;
  }
  const std::vector<SpanStat>& span_stats() const { return span_stats_; }
  const std::vector<TraceEvent>& trace_events() const { return trace_; }

  void clear_trace_events() { trace_.clear(); }
  /// Zero every value in place (references stay valid).
  void reset();

 private:
  SpanStat& span_stat(const char* name);

  int id_ = 0;
  // deque: reference stability under growth.
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
  std::vector<SpanStat> span_stats_;
  std::vector<TraceEvent> trace_;
  int span_depth_ = 0;
};

/// Deterministically merged view over every shard: names sorted, counters
/// summed, gauges max-merged, histograms bucket-added, span totals summed.
struct Snapshot {
  struct SpanTotal {
    std::string name;
    std::uint64_t count = 0;
    double total_ms = 0.0;
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram>> histograms;
  std::vector<SpanTotal> spans;

  /// Sum of `name` over all shards (0 if never recorded).
  std::uint64_t counter(std::string_view name) const;
  /// Merged histogram (nullptr if never recorded).
  const Histogram* histogram(std::string_view name) const;
  /// Merged span totals (nullptr if never recorded).
  const SpanTotal* span(std::string_view name) const;

  /// Prometheus text exposition (format 0.0.4) of the snapshot: counters
  /// and gauges as scalars, histograms with cumulative `_bucket{le=...}`
  /// series plus `_sum`/`_count`, span totals as `_calls_total`/`_ms_total`
  /// counter pairs. Metric names are prefixed `uwb_` and sanitized to
  /// [a-zA-Z0-9_:]. Deterministic: names sorted (Snapshot order), numbers
  /// printed with %.17g.
  std::string to_prometheus() const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// The calling thread's shard (created and registered on first use;
  /// retained after thread exit so totals survive worker churn).
  Shard& local_shard();

  /// Merge every shard (quiescence contract applies).
  Snapshot aggregate() const;

  /// Zero all shards in place (tests). Cached Counter/Gauge/Histogram
  /// references stay valid.
  void reset();

  /// Stable pointers to every registered shard (for the trace sink).
  std::vector<Shard*> shards() const;

 private:
  MetricsRegistry() = default;
  Shard& register_shard();

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace uwb::obs
