#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/expects.hpp"

namespace uwb::obs {

std::atomic<bool> FlightRecorder::enabled_{false};

const char* to_string(FrKind kind) {
  switch (kind) {
    case FrKind::kTx: return "tx";
    case FrKind::kChannel: return "channel";
    case FrKind::kRx: return "rx";
    case FrKind::kFault: return "fault";
    case FrKind::kDetect: return "detect";
    case FrKind::kTwr: return "twr";
    case FrKind::kStatus: return "status";
    case FrKind::kAttack: return "attack";
    case FrKind::kVerdict: return "verdict";
  }
  return "unknown";
}

FrContext& fr_context() {
  thread_local FrContext ctx;
  return ctx;
}

FrShard::FrShard(int id, std::size_t capacity) : id_(id) {
  UWB_EXPECTS(capacity >= 1);
  ring_.resize(capacity);
}

// uwb-hot-path: every typed event from channel/RX/detect/TWR lands here;
// the ring slot reuse is what keeps recording allocation-free.
void FrShard::record(const FrEvent& event) {
  const FrContext& ctx = fr_context();
  FrRecord& slot = ring_[head_];
  slot.session = ctx.session;
  slot.chain = event.chain != 0 ? event.chain : ctx.chain;
  slot.seq = seq_++;
  slot.t_ps = event.t_ps != kFrTimeFromContext ? event.t_ps : ctx.t_ps;
  slot.round = ctx.round;
  slot.kind = event.kind;
  slot.node = event.node;
  slot.peer = event.peer;
  slot.name = event.name;
  slot.detail = event.detail;
  slot.v0 = event.v0;
  slot.v1 = event.v1;
  slot.v2 = event.v2;
  slot.v3 = event.v3;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  if (size_ < ring_.size())
    ++size_;
  else
    ++dropped_;  // the slot we just reused held the oldest record
}

void FrShard::append_to(std::vector<FrRecord>& out) const {
  // Oldest first: the ring's logical start is head_ when full, 0 otherwise.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
}

void FrShard::clear() {
  head_ = 0;
  size_ = 0;
  seq_ = 0;
  dropped_ = 0;
}

void FrShard::set_capacity(std::size_t capacity) {
  UWB_EXPECTS(capacity >= 1);
  ring_.assign(capacity, FrRecord{});
  clear();
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

FrShard& FlightRecorder::register_shard() {
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<FrShard>(
      static_cast<int>(shards_.size()), capacity_));
  return *shards_.back();
}

FrShard& FlightRecorder::local_shard() {
  thread_local FrShard* shard = nullptr;
  // A capacity change invalidates cached pointers' rings in place, not the
  // pointers themselves, so the thread-local cache stays valid.
  if (shard == nullptr) shard = &register_shard();
  return *shard;
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  UWB_EXPECTS(capacity >= 1);
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  for (auto& shard : shards_) shard->set_capacity(capacity);
}

std::vector<FrRecord> FlightRecorder::collect() const {
  std::vector<FrRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& shard : shards_) shard->append_to(out);
  }
  // One session's events live on one shard with consecutive sequence
  // numbers, so (session, seq) reproduces the record order regardless of
  // which worker ran the session or how many shards exist. Ties (possible
  // only for context-less session-0 events on different shards) keep shard
  // registration order via the stable sort.
  std::stable_sort(out.begin(), out.end(),
                   [](const FrRecord& a, const FrRecord& b) {
                     if (a.session != b.session) return a.session < b.session;
                     return a.seq < b.seq;
                   });
  return out;
}

std::uint64_t FlightRecorder::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->dropped();
  return total;
}

std::uint64_t FlightRecorder::recorded_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->recorded();
  return total;
}

namespace {

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void append_values(std::string& out, const FrRecord& r) {
  const FrValue* values[] = {&r.v0, &r.v1, &r.v2, &r.v3};
  bool any = false;
  for (const FrValue* v : values) {
    if (v->key == nullptr) continue;
    out += any ? "," : ",\"f\":{";
    any = true;
    out.push_back('"');
    append_escaped(out, v->key);
    out += "\":";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v->value);
    out += buf;
  }
  if (any) out.push_back('}');
}

}  // namespace

std::string FlightRecorder::to_jsonl() const {
  const std::vector<FrRecord> records = collect();
  std::string out;
  out.reserve(records.size() * 160 + 128);
  char buf[160];
  for (const FrRecord& r : records) {
    std::snprintf(buf, sizeof(buf),
                  "{\"session\":\"0x%016" PRIx64 "\",\"round\":%u,"
                  "\"chain\":\"0x%016" PRIx64 "\",\"t_ps\":%" PRId64
                  ",\"kind\":\"%s\",\"name\":\"",
                  r.session, r.round, r.chain, r.t_ps, to_string(r.kind));
    out += buf;
    append_escaped(out, r.name != nullptr ? r.name : "");
    out.push_back('"');
    if (r.node != kFrNoNode) {
      std::snprintf(buf, sizeof(buf), ",\"node\":%d", r.node);
      out += buf;
    }
    if (r.peer != kFrNoNode) {
      std::snprintf(buf, sizeof(buf), ",\"peer\":%d", r.peer);
      out += buf;
    }
    if (r.detail != nullptr) {
      out += ",\"detail\":\"";
      append_escaped(out, r.detail);
      out.push_back('"');
    }
    append_values(out, r);
    out += "}\n";
  }
  std::snprintf(buf, sizeof(buf),
                "{\"meta\":\"uwb_flight_recorder\",\"version\":1,"
                "\"events\":%zu,\"dropped_events\":%" PRIu64 "}\n",
                records.size(), dropped_events());
  out += buf;
  return out;
}

bool FlightRecorder::write_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = to_jsonl();
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && wrote;
}

void FlightRecorder::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& shard : shards_) shard->clear();
}

}  // namespace uwb::obs
