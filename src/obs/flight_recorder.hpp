// Frame-level flight recorder: a deterministic, bounded, per-thread event
// log that makes every final RangingStatus reconstructible from its causal
// chain (DESIGN.md Sect. 14).
//
// One causal chain id is minted per transmitted frame at
// sim::Medium::transmit (the frame's channel seed — already unique and
// deterministic across thread counts) and propagated through channel
// realization/culling, RX delivery, fault injection, detection, and the
// ranging math. Events record *simulated* time, never the host clock, so
// two runs with the same seed produce byte-identical JSONL exports at any
// Monte-Carlo worker-thread count (as long as no shard overflowed — see
// dropped_events()).
//
// Sharding mirrors MetricsRegistry: every thread records into its own
// bounded ring buffer with plain non-atomic writes; collect()/to_jsonl()
// merge all shards under the same quiescence contract (no aggregation
// concurrent with instrumentation). The merge sorts by (session, shard
// sequence): one session — one Monte-Carlo trial — runs entirely on one
// worker, so its events carry consecutive sequence numbers from a single
// shard and the merged order is independent of how trials were scheduled.
//
// Instrumented code uses only the UWB_FR_* macros below. Under
// UWB_OBS_DISABLED they compile to nothing (zero-cost contract, like the
// UWB_OBS_* macros); the classes themselves stay fully functional in both
// builds so tests and tools can drive them directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "obs/obs.hpp"

namespace uwb::obs {

/// Pipeline stage an event belongs to. The JSONL "kind" field uses
/// to_string(); tools/check_trace.py validates against the same vocabulary.
enum class FrKind : std::uint8_t {
  kTx,       ///< a frame left an antenna (chain root)
  kChannel,  ///< per-receiver channel outcome (delivered/culled/below thr.)
  kRx,       ///< receiver-side frame handling (lock, batch, decode)
  kFault,    ///< injected fault, tagged with the chain it killed
  kDetect,   ///< search&subtract peak decisions
  kTwr,      ///< ranging math (timestamps consumed, distance produced)
  kStatus,   ///< session-level outcome (attempts, per-responder status)
  kAttack,   ///< injected adversarial manipulation (src/fault/attack.hpp)
  kVerdict,  ///< attack-detector decision (ranging::AttackDetector)
};

const char* to_string(FrKind kind);

/// Sentinel node id for "no node attached" (real ids include the
/// initiator's -1, so 0/-1 cannot be the sentinel).
inline constexpr std::int32_t kFrNoNode =
    std::numeric_limits<std::int32_t>::min();

/// Sentinel for FrEvent::t_ps: take the thread-local context time (kept
/// current by the simulator's dispatch loop).
inline constexpr std::int64_t kFrTimeFromContext =
    std::numeric_limits<std::int64_t>::min();

/// One optional named numeric payload field of an event.
struct FrValue {
  const char* key = nullptr;  // string literal; nullptr = slot unused
  double value = 0.0;
};

/// An event as written at a record site (designated initializers; field
/// order is part of the API). `name`, `detail`, and value keys must be
/// string literals — the recorder stores the pointers (enforced by the
/// uwb_lint obs-event-literal rule).
struct FrEvent {
  FrKind kind = FrKind::kStatus;
  const char* name = nullptr;
  /// Causal chain id; 0 = inherit the thread-local context chain.
  std::uint64_t chain = 0;
  /// Simulated time [ps]; kFrTimeFromContext = inherit the context time.
  std::int64_t t_ps = kFrTimeFromContext;
  std::int32_t node = kFrNoNode;
  std::int32_t peer = kFrNoNode;
  const char* detail = nullptr;
  FrValue v0, v1, v2, v3;
};

/// A recorded event: the FrEvent fields resolved against the thread-local
/// context plus the shard-local sequence number.
struct FrRecord {
  std::uint64_t session = 0;
  std::uint64_t chain = 0;
  std::uint64_t seq = 0;  // shard-local, monotone; not exported
  std::int64_t t_ps = 0;
  std::uint32_t round = 0;
  FrKind kind = FrKind::kStatus;
  std::int32_t node = kFrNoNode;
  std::int32_t peer = kFrNoNode;
  const char* name = nullptr;
  const char* detail = nullptr;
  FrValue v0, v1, v2, v3;
};

/// Thread-local propagation state. Sessions set session/round (and refresh
/// the time at attempt boundaries); the simulator keeps t_ps current per
/// dispatched event; receive paths scope the chain around their handlers.
struct FrContext {
  std::uint64_t session = 0;
  std::uint32_t round = 0;
  std::uint64_t chain = 0;
  std::int64_t t_ps = 0;
};

FrContext& fr_context();

/// RAII session/round scope (saves and restores the previous values, so
/// nested scenarios — e.g. a scenario driven from inside a test — unwind
/// correctly).
class FrSessionScope {
 public:
  FrSessionScope(std::uint64_t session, std::uint32_t round)
      : saved_(fr_context()) {
    FrContext& ctx = fr_context();
    ctx.session = session;
    ctx.round = round;
  }
  ~FrSessionScope() { fr_context() = saved_; }
  FrSessionScope(const FrSessionScope&) = delete;
  FrSessionScope& operator=(const FrSessionScope&) = delete;

 private:
  FrContext saved_;
};

/// RAII causal-chain scope for code that handles one frame (RX callbacks,
/// post-round ranging math on the sync frame).
class FrChainScope {
 public:
  explicit FrChainScope(std::uint64_t chain) : saved_(fr_context().chain) {
    fr_context().chain = chain;
  }
  ~FrChainScope() { fr_context().chain = saved_; }
  FrChainScope(const FrChainScope&) = delete;
  FrChainScope& operator=(const FrChainScope&) = delete;

 private:
  std::uint64_t saved_;
};

/// Per-thread bounded ring buffer of records. Overflow keeps the *newest*
/// events and counts the casualties in dropped().
class FrShard {
 public:
  FrShard(int id, std::size_t capacity);
  FrShard(const FrShard&) = delete;
  FrShard& operator=(const FrShard&) = delete;

  int id() const { return id_; }
  std::size_t capacity() const { return ring_.size(); }

  /// Resolve `event` against the thread-local context and append it.
  void record(const FrEvent& event);

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t recorded() const { return seq_; }
  std::size_t size() const { return size_; }

  /// Oldest-first copy of the retained records (quiescence contract).
  void append_to(std::vector<FrRecord>& out) const;

  /// Drop all records and zero the counters (capacity unchanged).
  void clear();
  /// Clear and replace the ring capacity (quiescence contract).
  void set_capacity(std::size_t capacity);

 private:
  int id_ = 0;
  std::vector<FrRecord> ring_;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;  // records retained (<= capacity)
  std::uint64_t seq_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Process-wide registry of per-thread shards, mirroring MetricsRegistry.
/// Recording is off by default (enabled() gates every macro) so untraced
/// runs never touch the rings.
class FlightRecorder {
 public:
  /// Default per-shard ring capacity (events). ~96 bytes/record, so the
  /// default bounds a shard at ~24 MB fully loaded.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

  static FlightRecorder& instance();

  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// The calling thread's shard (created on first use, retained after
  /// thread exit so recordings survive worker churn).
  FrShard& local_shard();

  /// Replace every shard's ring capacity and clear them (quiescence
  /// contract; applies to shards created later too).
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

  /// All retained records merged over every shard, sorted by
  /// (session, shard sequence) — deterministic at any thread count when
  /// each session ran on a single thread (the Monte-Carlo contract) and no
  /// shard dropped events. Quiescence contract applies.
  std::vector<FrRecord> collect() const;

  /// Total events dropped to ring overflow, over all shards.
  std::uint64_t dropped_events() const;
  /// Total events recorded (including later-overwritten ones).
  std::uint64_t recorded_events() const;

  /// JSONL export of collect(): one event object per line plus a trailing
  /// meta line carrying events/dropped_events. Byte-identical across
  /// thread counts under the collect() conditions.
  std::string to_jsonl() const;
  /// Write to_jsonl() to `path`; false on I/O failure.
  bool write_jsonl(const std::string& path) const;

  /// Clear every shard's records and counters (capacity kept).
  void reset();

 private:
  FlightRecorder() = default;
  FrShard& register_shard();

  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<FrShard>> shards_;
  std::size_t capacity_ = kDefaultCapacity;
};

}  // namespace uwb::obs

// --- record-site macros ----------------------------------------------------
// Variadic so call sites can use designated initializers with commas:
//   UWB_FR_EVENT(.kind = obs::FrKind::kTx, .name = "frame_tx",
//                .chain = seed, .node = tx_id);
// All expand to nothing under UWB_OBS_DISABLED.

#ifndef UWB_OBS_DISABLED

/// True when the recorder is live in this build *and* enabled at runtime.
/// Use to guard loops that exist only to record (e.g. per-culled-receiver
/// distance events).
#define UWB_FR_ACTIVE() (::uwb::obs::FlightRecorder::enabled())

// The diagnostic pragmas silence -Wmissing-field-initializers for the
// designated-initializer aggregate: every FrEvent member carries a default
// member initializer, so partially-listed events are the intended idiom.
#define UWB_FR_EVENT(...)                                              \
  do {                                                                 \
    _Pragma("GCC diagnostic push")                                     \
    _Pragma("GCC diagnostic ignored \"-Wmissing-field-initializers\"") \
    if (::uwb::obs::FlightRecorder::enabled())                         \
      ::uwb::obs::FlightRecorder::instance().local_shard().record(     \
          ::uwb::obs::FrEvent{__VA_ARGS__});                           \
    _Pragma("GCC diagnostic pop")                                      \
  } while (false)

/// Refresh the context's simulated time (a SimTime expression).
#define UWB_FR_SET_TIME(t)                                             \
  do {                                                                 \
    if (::uwb::obs::FlightRecorder::enabled())                         \
      ::uwb::obs::fr_context().t_ps = (t).ps();                        \
  } while (false)

#define UWB_FR_SESSION_SCOPE(session, round)            \
  ::uwb::obs::FrSessionScope UWB_OBS_CONCAT(            \
      uwb_fr_session_, __LINE__)(session, round)

#define UWB_FR_CHAIN_SCOPE(chain) \
  ::uwb::obs::FrChainScope UWB_OBS_CONCAT(uwb_fr_chain_, __LINE__)(chain)

#else  // UWB_OBS_DISABLED

#define UWB_FR_ACTIVE() (false)
// Arguments stay type-checked inside a never-taken branch (so variables
// that exist only to feed events don't trip -Wunused under -Werror), then
// the whole statement folds away.
#define UWB_FR_EVENT(...)                                              \
  do {                                                                 \
    _Pragma("GCC diagnostic push")                                     \
    _Pragma("GCC diagnostic ignored \"-Wmissing-field-initializers\"") \
    if (false) {                                                       \
      [[maybe_unused]] const ::uwb::obs::FrEvent uwb_fr_discarded{     \
          __VA_ARGS__};                                                \
    }                                                                  \
    _Pragma("GCC diagnostic pop")                                      \
  } while (false)
#define UWB_FR_SET_TIME(t)                  \
  do {                                      \
    if (false) static_cast<void>((t).ps()); \
  } while (false)
#define UWB_FR_SESSION_SCOPE(session, round) \
  do {                                       \
    if (false) {                             \
      static_cast<void>(session);            \
      static_cast<void>(round);              \
    }                                        \
  } while (false)
#define UWB_FR_CHAIN_SCOPE(chain)        \
  do {                                   \
    if (false) static_cast<void>(chain); \
  } while (false)

#endif  // UWB_OBS_DISABLED
