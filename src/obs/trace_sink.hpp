// Chrome trace_event export for completed spans.
//
// Tracing is off by default: spans then cost two clock reads and a per-name
// totals update, and no per-event storage. When enabled (runtime flag, e.g.
// the benches' `--trace FILE`), every completed span is buffered in its
// shard (capped at Shard::kMaxTraceEventsPerShard) until collected here.
//
// The output is the Chrome trace_event "JSON object format": complete events
// (ph "X") with microsecond timestamps, pid 0, tid = shard id. Open the file
// in chrome://tracing or https://ui.perfetto.dev. The collectors obey the
// registry quiescence contract (metrics.hpp).
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace uwb::obs {

/// Turn per-event recording on/off (process-wide, checked on span exit).
void set_tracing_enabled(bool enabled);
bool tracing_enabled();

/// Drain every shard's buffered events into one list, sorted by
/// (tid, start_ns) for stable output.
std::vector<TraceEvent> collect_trace_events();

/// Drop all buffered events without collecting them.
void clear_trace_events();

/// Render events as a Chrome trace_event JSON document.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// collect + render + write to `path`. Returns false on I/O failure.
bool write_chrome_trace(const std::string& path);

}  // namespace uwb::obs
