// RAII scoped timer feeding the thread-local metrics shard.
//
// A Span measures wall time from construction to destruction, maintains the
// thread-local span stack (so nested stages know their depth — parent spans
// are simply the enclosing Span objects on the C++ stack), and on exit adds
// its duration to the shard's per-name totals. While tracing is enabled
// (trace_sink.hpp) each completed span additionally records a TraceEvent for
// Chrome trace_event export.
//
// `name` must be a string with static storage duration (a literal at the
// instrumentation site): spans store the pointer, not a copy.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace uwb::obs {

class Span {
 public:
  explicit Span(const char* name)
      : name_(name),
        shard_(&MetricsRegistry::instance().local_shard()),
        start_ns_(monotonic_ns()),
        depth_(shard_->enter_span()) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    shard_->exit_span(name_, start_ns_, monotonic_ns() - start_ns_, depth_);
  }

  int depth() const { return depth_; }

 private:
  const char* name_;
  Shard* shard_;
  std::uint64_t start_ns_;
  int depth_;
};

/// Depth of the calling thread's span stack (0 = no open span). Test hook.
inline int current_span_depth() {
  return MetricsRegistry::instance().local_shard().span_depth();
}

}  // namespace uwb::obs
