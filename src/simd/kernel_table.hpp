// Internal dispatch table shared by the per-level kernel translation units.
// Each level fills one KernelTable with its implementations; simd.cpp picks
// the table for the active level. Not installed into the public API — only
// simd.cpp and the kernels_*.cpp files include this.
#pragma once

#include <cstddef>

namespace uwb::simd::detail {

struct KernelTable {
  void (*cmul)(const double*, const double*, double*, std::size_t);
  void (*cmul_conj)(const double*, const double*, double*, std::size_t);
  void (*cmul_scaled)(const double*, const double*, double, double*,
                      std::size_t);
  void (*cmul_conj_scaled)(const double*, const double*, double, double*,
                           std::size_t);
  void (*scale)(double*, double, std::size_t);
  void (*copy_scaled)(const double*, double, double*, std::size_t);
  void (*butterfly_pairs)(double*, std::size_t);
  void (*fft_stage)(double*, const double*, std::size_t, std::size_t, bool);
  std::size_t (*argmax_norm)(const double*, std::size_t);
  void (*cdot_conj)(const double*, const double*, std::size_t, double*,
                    double*);
  void (*corr_direct)(const double*, const double*, double*, std::size_t,
                      std::size_t);
  void (*corr_window_update)(double*, const double*, const double*,
                             std::ptrdiff_t, std::ptrdiff_t, std::ptrdiff_t,
                             std::ptrdiff_t, std::ptrdiff_t);
};

/// The scalar reference table (always available; defines the semantics the
/// vector tables must reproduce).
const KernelTable& scalar_table();

/// SSE2 / AVX2 tables, or nullptr when the binary was built without the
/// corresponding instruction set (non-x86 targets, or a compiler without
/// -mavx2). Runtime CPU support is checked separately by simd.cpp.
const KernelTable* sse2_table_or_null();
const KernelTable* avx2_table_or_null();

}  // namespace uwb::simd::detail
