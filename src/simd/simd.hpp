// Portable SIMD layer for the complex-double DSP hot paths (DESIGN.md §12).
//
// One header exposes the vectorized kernels the detection pipeline is built
// on: pointwise complex multiplies (FFT chirp/kernel products, bank
// correlation spectra), FFT butterfly stages, squared-magnitude argmax
// (peak pick), and windowed complex correlations (matched filter,
// incremental subtract-update). Every kernel operates on the interleaved
// re/im double pairs of a `Complex` array — the array-oriented access
// already used by the scalar fast path — so callers pass
// `reinterpret_cast<double*>(CVec::data())` and a *complex* element count.
//
// Three dispatch levels: a scalar reference (plain loops, the semantics
// contract), SSE2 (x86-64 baseline), and AVX2. The implementation for each
// level lives in its own translation unit (only `kernels_avx2.cpp` is
// compiled with `-mavx2`), selected at runtime through a function-pointer
// table:
//
//   active level = UWB_SIMD_LEVEL env override  (scalar|sse2|avx2; forcing
//                                                an unsupported level is a
//                                                hard startup error so CI
//                                                legs can never silently
//                                                fall back)
//                ∩ runtime CPU support          (__builtin_cpu_supports)
//                ∩ compile-time availability    (per-TU #ifdef guards)
//
// Equivalence contract: elementwise kernels (cmul*, scale, copy_scaled,
// butterfly stages) perform the exact scalar operation sequence per element
// and are bit-identical across levels. Reduction kernels (cdot_conj,
// corr_*) may reassociate the accumulation at AVX2 width and agree with
// scalar only to floating-point roundoff; argmax_norm resolves ties to the
// lowest index at every level, matching the scalar first-maximum scan
// exactly. Given a fixed level, every kernel is deterministic, so the
// derive_seed bit-identity contract (same results at any thread count)
// holds under SIMD.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace uwb::simd {

/// Dispatch level, ordered by width. Values are stable (bench args, logs).
enum class Level : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Lower-case name used by UWB_SIMD_LEVEL and diagnostics.
const char* level_name(Level level);

/// Parse a level name ("scalar", "sse2", "avx2"); nullopt on anything else.
std::optional<Level> parse_level(std::string_view name);

/// Widest level this binary can execute on this machine (compile-time
/// kernel availability ∩ runtime CPU feature detection).
Level runtime_max_level();

/// The level kernels currently dispatch to. Resolved once on first use:
/// the UWB_SIMD_LEVEL environment override when set (aborting with a clear
/// message if it names an unsupported level — a forced CI leg must never
/// silently run narrower), otherwise runtime_max_level().
Level active_level();

/// Override the dispatch level in-process (tests, per-level benches).
/// Returns false (and changes nothing) when `level` exceeds
/// runtime_max_level(). Call only while no other thread is inside a
/// kernel: the level is meant to be fixed for the duration of a run.
bool set_active_level(Level level);

// ---------------------------------------------------------------------------
// Kernels. `n` counts complex elements; pointers address interleaved
// re/im doubles (2n doubles). `out` may alias `a` unless noted.

/// out[k] = a[k] * b[k].
void cmul(const double* a, const double* b, double* out, std::size_t n);

/// out[k] = a[k] * conj(b[k]).
void cmul_conj(const double* a, const double* b, double* out, std::size_t n);

/// out[k] = (a[k] * s) * b[k]  (the scale is applied to `a` first, exactly
/// as the Bluestein inverse-chirp loop orders it).
void cmul_scaled(const double* a, const double* b, double s, double* out,
                 std::size_t n);

/// out[k] = (a[k] * s) * conj(b[k]).
void cmul_conj_scaled(const double* a, const double* b, double s, double* out,
                      std::size_t n);

/// x[k] *= s for all n complex elements (2n doubles).
void scale(double* x, double s, std::size_t n);

/// out[k] = x[k] * s. `out` must not alias `x` partially (equal or disjoint).
void copy_scaled(const double* x, double s, double* out, std::size_t n);

/// Radix-2 FFT stage with span 2 (twiddle 1): pairwise butterflies
/// d[2k] <- d[2k] + d[2k+1], d[2k+1] <- d[2k] - d[2k+1] over n complexes.
/// n must be even.
void butterfly_pairs(double* d, std::size_t n);

/// General radix-2 FFT stage of span `len` over n complexes: for every
/// block at i (step len) and j < len/2, with w = tw[j] (conjugated when
/// `inverse`), v = d[i+len/2+j]*w; d[i+len/2+j] = d[i+j]-v;
/// d[i+j] += v. `w` points at the interleaved forward twiddle table for
/// this stage (len/2 entries). Requires len >= 8 (the 2- and 4-span
/// stages are multiplication-free and handled by the caller).
void fft_stage(double* d, const double* w, std::size_t n, std::size_t len,
               bool inverse);

/// Index of the first maximum of |y[k]|^2 over n complexes (ties resolve
/// to the lowest index, matching a scalar first-maximum scan). n >= 1.
std::size_t argmax_norm(const double* y, std::size_t n);

/// *re + i*im = sum_{m<n} a[m] * conj(b[m]).
void cdot_conj(const double* a, const double* b, std::size_t n, double* re,
               double* im);

/// Full correlation y[i] = sum_{m < min(np, n-i)} r[i+m] * conj(s[m]) for
/// i < n (template samples beyond the end of r are treated as zero).
/// `y` holds n complexes and must not alias r or s.
void corr_direct(const double* r, const double* s, double* y, std::size_t n,
                 std::size_t np);

/// Windowed correlation update (the incremental subtract-update of the
/// search-and-subtract fast path): for j in [j_lo, j_hi),
///   y[j] -= sum_{p = max(w_lo, j)}^{min(w_hi, j + np) - 1}
///             d[p - w_lo] * conj(s[p - j])
/// where d holds the subtracted waveform over residual samples
/// [w_lo, w_hi) and s is the np-sample template.
void corr_window_update(double* y, const double* d, const double* s,
                        std::ptrdiff_t j_lo, std::ptrdiff_t j_hi,
                        std::ptrdiff_t w_lo, std::ptrdiff_t w_hi,
                        std::ptrdiff_t np);

}  // namespace uwb::simd
