// SSE2 kernel table: one complex (two doubles) per vector operation.
//
// SSE2 is the x86-64 baseline, so this TU needs no special compile flags;
// it is the narrow portability rung between the scalar reference and AVX2.
// Every elementwise kernel performs the scalar operation sequence per
// element (products formed, then combined in the same association), so the
// results are bit-identical to the scalar table. The reduction kernels
// (cdot_conj and the correlations built on it) also accumulate one complex
// at a time in scalar order, so even they match the scalar table bit for
// bit at this level.
#include "simd/kernel_table.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace uwb::simd::detail {
namespace {

// [lo, hi] constructors: _mm_set_pd takes (hi, lo).
inline __m128d neg_lo() { return _mm_set_pd(0.0, -0.0); }   // negate lane 0
inline __m128d neg_hi() { return _mm_set_pd(-0.0, 0.0); }   // negate lane 1
inline __m128d neg_both() { return _mm_set_pd(-0.0, -0.0); }

// One complex product a*b as [ar*br - ai*bi, ai*br + ar*bi]:
//   t1 = [ar*br, ai*br], t2 = [ai*bi, ar*bi], result = t1 + (-t2_lo, +t2_hi).
inline __m128d cprod(__m128d a, __m128d b) {
  const __m128d t1 = _mm_mul_pd(a, _mm_unpacklo_pd(b, b));
  const __m128d aswap = _mm_shuffle_pd(a, a, 1);
  const __m128d t2 = _mm_mul_pd(aswap, _mm_unpackhi_pd(b, b));
  return _mm_add_pd(t1, _mm_xor_pd(t2, neg_lo()));
}

// a*conj(b) = [ar*br + ai*bi, ai*br - ar*bi]: same products, signs flipped.
inline __m128d cprod_conj(__m128d a, __m128d b) {
  const __m128d t1 = _mm_mul_pd(a, _mm_unpacklo_pd(b, b));
  const __m128d aswap = _mm_shuffle_pd(a, a, 1);
  const __m128d t2 = _mm_mul_pd(aswap, _mm_unpackhi_pd(b, b));
  return _mm_add_pd(t1, _mm_xor_pd(t2, neg_hi()));
}

template <bool Conj, bool Scaled>
void cmul_impl(const double* a, const double* b, double s, double* out,
               std::size_t n) {
  const __m128d sv = _mm_set1_pd(s);
  for (std::size_t k = 0; k < n; ++k) {
    __m128d av = _mm_loadu_pd(a + 2 * k);
    if constexpr (Scaled) av = _mm_mul_pd(av, sv);
    const __m128d bv = _mm_loadu_pd(b + 2 * k);
    const __m128d r = Conj ? cprod_conj(av, bv) : cprod(av, bv);
    _mm_storeu_pd(out + 2 * k, r);
  }
}

void sse2_cmul(const double* a, const double* b, double* out, std::size_t n) {
  cmul_impl<false, false>(a, b, 1.0, out, n);
}

void sse2_cmul_conj(const double* a, const double* b, double* out,
                    std::size_t n) {
  cmul_impl<true, false>(a, b, 1.0, out, n);
}

void sse2_cmul_scaled(const double* a, const double* b, double s, double* out,
                      std::size_t n) {
  cmul_impl<false, true>(a, b, s, out, n);
}

void sse2_cmul_conj_scaled(const double* a, const double* b, double s,
                           double* out, std::size_t n) {
  cmul_impl<true, true>(a, b, s, out, n);
}

void sse2_scale(double* x, double s, std::size_t n) {
  const __m128d sv = _mm_set1_pd(s);
  for (std::size_t k = 0; k < 2 * n; k += 2)
    _mm_storeu_pd(x + k, _mm_mul_pd(_mm_loadu_pd(x + k), sv));
}

void sse2_copy_scaled(const double* x, double s, double* out, std::size_t n) {
  const __m128d sv = _mm_set1_pd(s);
  for (std::size_t k = 0; k < 2 * n; k += 2)
    _mm_storeu_pd(out + k, _mm_mul_pd(_mm_loadu_pd(x + k), sv));
}

void sse2_butterfly_pairs(double* d, std::size_t n) {
  for (std::size_t i = 0; i < 2 * n; i += 4) {
    const __m128d u = _mm_loadu_pd(d + i);
    const __m128d v = _mm_loadu_pd(d + i + 2);
    _mm_storeu_pd(d + i, _mm_add_pd(u, v));
    _mm_storeu_pd(d + i + 2, _mm_sub_pd(u, v));
  }
}

void sse2_fft_stage(double* d, const double* w, std::size_t n,
                    std::size_t len, bool inverse) {
  const std::size_t half = len >> 1;
  const __m128d wi_sign = inverse ? neg_both() : _mm_setzero_pd();
  for (std::size_t i = 0; i < n; i += len) {
    double* a = d + 2 * i;
    double* b = d + 2 * (i + half);
    for (std::size_t j = 0; j < half; ++j) {
      const __m128d wv = _mm_loadu_pd(w + 2 * j);
      const __m128d x = _mm_loadu_pd(b + 2 * j);
      // v = x * (wr + i*wi') with wi' = inverse ? -wi : wi.
      const __m128d t1 = _mm_mul_pd(x, _mm_unpacklo_pd(wv, wv));
      const __m128d xswap = _mm_shuffle_pd(x, x, 1);
      const __m128d wiv =
          _mm_xor_pd(_mm_unpackhi_pd(wv, wv), wi_sign);
      const __m128d t2 = _mm_mul_pd(xswap, wiv);
      const __m128d v = _mm_add_pd(t1, _mm_xor_pd(t2, neg_lo()));
      const __m128d u = _mm_loadu_pd(a + 2 * j);
      _mm_storeu_pd(a + 2 * j, _mm_add_pd(u, v));
      _mm_storeu_pd(b + 2 * j, _mm_sub_pd(u, v));
    }
  }
}

std::size_t sse2_argmax_norm(const double* y, std::size_t n) {
  // One |y|^2 per iteration keeps the scalar first-maximum semantics
  // directly; the pay-off at this width is the fused re^2+im^2.
  std::size_t idx = 0;
  double max_norm = -1.0;
  for (std::size_t j = 0; j < n; ++j) {
    const __m128d v = _mm_loadu_pd(y + 2 * j);
    const __m128d sq = _mm_mul_pd(v, v);
    const double nrm =
        _mm_cvtsd_f64(_mm_add_sd(sq, _mm_unpackhi_pd(sq, sq)));
    if (nrm > max_norm) {
      max_norm = nrm;
      idx = j;
    }
  }
  return idx;
}

void sse2_cdot_conj(const double* a, const double* b, std::size_t n,
                    double* re, double* im) {
  // Sequential single-complex accumulation: identical association to the
  // scalar loop, so the result is bit-identical to the scalar table.
  __m128d acc = _mm_setzero_pd();
  for (std::size_t m = 0; m < n; ++m) {
    const __m128d av = _mm_loadu_pd(a + 2 * m);
    const __m128d bv = _mm_loadu_pd(b + 2 * m);
    acc = _mm_add_pd(acc, cprod_conj(av, bv));
  }
  *re = _mm_cvtsd_f64(acc);
  *im = _mm_cvtsd_f64(_mm_unpackhi_pd(acc, acc));
}

void sse2_corr_direct(const double* r, const double* s, double* y,
                      std::size_t n, std::size_t np) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t mmax = np < n - i ? np : n - i;
    sse2_cdot_conj(r + 2 * i, s, mmax, &y[2 * i], &y[2 * i + 1]);
  }
}

void sse2_corr_window_update(double* y, const double* d, const double* s,
                             std::ptrdiff_t j_lo, std::ptrdiff_t j_hi,
                             std::ptrdiff_t w_lo, std::ptrdiff_t w_hi,
                             std::ptrdiff_t np) {
  for (std::ptrdiff_t j = j_lo; j < j_hi; ++j) {
    const std::ptrdiff_t p_lo = w_lo > j ? w_lo : j;
    const std::ptrdiff_t p_hi = w_hi < j + np ? w_hi : j + np;
    if (p_lo >= p_hi) continue;
    double acc_r = 0.0, acc_i = 0.0;
    sse2_cdot_conj(d + 2 * (p_lo - w_lo), s + 2 * (p_lo - j),
                   static_cast<std::size_t>(p_hi - p_lo), &acc_r, &acc_i);
    y[2 * j] -= acc_r;
    y[2 * j + 1] -= acc_i;
  }
}

}  // namespace

const KernelTable* sse2_table_or_null() {
  static constexpr KernelTable table{
      sse2_cmul,         sse2_cmul_conj,
      sse2_cmul_scaled,  sse2_cmul_conj_scaled,
      sse2_scale,        sse2_copy_scaled,
      sse2_butterfly_pairs, sse2_fft_stage,
      sse2_argmax_norm,  sse2_cdot_conj,
      sse2_corr_direct,  sse2_corr_window_update,
  };
  return &table;
}

}  // namespace uwb::simd::detail

#else  // !__SSE2__

namespace uwb::simd::detail {
const KernelTable* sse2_table_or_null() { return nullptr; }
}  // namespace uwb::simd::detail

#endif
