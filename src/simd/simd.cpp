#include "simd/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "simd/kernel_table.hpp"

namespace uwb::simd {

// ---------------------------------------------------------------------------
// Scalar reference kernels. These define the operation sequence the vector
// levels reproduce: elementwise kernels must match bit for bit, reduction
// kernels to roundoff (simd.hpp header comment).

namespace {

void scalar_cmul(const double* a, const double* b, double* out,
                 std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const double ar = a[2 * k], ai = a[2 * k + 1];
    const double br = b[2 * k], bi = b[2 * k + 1];
    out[2 * k] = ar * br - ai * bi;
    out[2 * k + 1] = ai * br + ar * bi;
  }
}

void scalar_cmul_conj(const double* a, const double* b, double* out,
                      std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const double ar = a[2 * k], ai = a[2 * k + 1];
    const double br = b[2 * k], bi = b[2 * k + 1];
    out[2 * k] = ar * br + ai * bi;
    out[2 * k + 1] = ai * br - ar * bi;
  }
}

void scalar_cmul_scaled(const double* a, const double* b, double s,
                        double* out, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const double ar = a[2 * k] * s, ai = a[2 * k + 1] * s;
    const double br = b[2 * k], bi = b[2 * k + 1];
    out[2 * k] = ar * br - ai * bi;
    out[2 * k + 1] = ai * br + ar * bi;
  }
}

void scalar_cmul_conj_scaled(const double* a, const double* b, double s,
                             double* out, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const double ar = a[2 * k] * s, ai = a[2 * k + 1] * s;
    const double br = b[2 * k], bi = b[2 * k + 1];
    out[2 * k] = ar * br + ai * bi;
    out[2 * k + 1] = ai * br - ar * bi;
  }
}

void scalar_scale(double* x, double s, std::size_t n) {
  for (std::size_t k = 0; k < 2 * n; ++k) x[k] *= s;
}

void scalar_copy_scaled(const double* x, double s, double* out,
                        std::size_t n) {
  for (std::size_t k = 0; k < 2 * n; ++k) out[k] = x[k] * s;
}

void scalar_butterfly_pairs(double* d, std::size_t n) {
  for (std::size_t i = 0; i < 2 * n; i += 4) {
    const double ur = d[i], ui = d[i + 1], vr = d[i + 2], vi = d[i + 3];
    d[i] = ur + vr;
    d[i + 1] = ui + vi;
    d[i + 2] = ur - vr;
    d[i + 3] = ui - vi;
  }
}

void scalar_fft_stage(double* d, const double* w, std::size_t n,
                      std::size_t len, bool inverse) {
  const std::size_t half = len >> 1;
  for (std::size_t i = 0; i < n; i += len) {
    double* a = d + 2 * i;
    double* b = d + 2 * (i + half);
    for (std::size_t j = 0; j < half; ++j) {
      const double wr = w[2 * j];
      const double wi = inverse ? -w[2 * j + 1] : w[2 * j + 1];
      const double xr = b[2 * j], xi = b[2 * j + 1];
      const double vr = xr * wr - xi * wi;
      const double vi = xi * wr + xr * wi;
      const double ur = a[2 * j], ui = a[2 * j + 1];
      a[2 * j] = ur + vr;
      a[2 * j + 1] = ui + vi;
      b[2 * j] = ur - vr;
      b[2 * j + 1] = ui - vi;
    }
  }
}

std::size_t scalar_argmax_norm(const double* y, std::size_t n) {
  std::size_t idx = 0;
  double max_norm = -1.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double nrm = y[2 * j] * y[2 * j] + y[2 * j + 1] * y[2 * j + 1];
    if (nrm > max_norm) {
      max_norm = nrm;
      idx = j;
    }
  }
  return idx;
}

void scalar_cdot_conj(const double* a, const double* b, std::size_t n,
                      double* re, double* im) {
  double acc_r = 0.0, acc_i = 0.0;
  for (std::size_t m = 0; m < n; ++m) {
    const double ar = a[2 * m], ai = a[2 * m + 1];
    const double br = b[2 * m], bi = b[2 * m + 1];
    acc_r += ar * br + ai * bi;
    acc_i += ai * br - ar * bi;
  }
  *re = acc_r;
  *im = acc_i;
}

void scalar_corr_direct(const double* r, const double* s, double* y,
                        std::size_t n, std::size_t np) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t mmax = np < n - i ? np : n - i;
    scalar_cdot_conj(r + 2 * i, s, mmax, &y[2 * i], &y[2 * i + 1]);
  }
}

void scalar_corr_window_update(double* y, const double* d, const double* s,
                               std::ptrdiff_t j_lo, std::ptrdiff_t j_hi,
                               std::ptrdiff_t w_lo, std::ptrdiff_t w_hi,
                               std::ptrdiff_t np) {
  for (std::ptrdiff_t j = j_lo; j < j_hi; ++j) {
    const std::ptrdiff_t p_lo = w_lo > j ? w_lo : j;
    const std::ptrdiff_t p_hi = w_hi < j + np ? w_hi : j + np;
    if (p_lo >= p_hi) continue;
    double acc_r = 0.0, acc_i = 0.0;
    scalar_cdot_conj(d + 2 * (p_lo - w_lo), s + 2 * (p_lo - j),
                     static_cast<std::size_t>(p_hi - p_lo), &acc_r, &acc_i);
    y[2 * j] -= acc_r;
    y[2 * j + 1] -= acc_i;
  }
}

}  // namespace

namespace detail {

const KernelTable& scalar_table() {
  static constexpr KernelTable table{
      scalar_cmul,         scalar_cmul_conj,
      scalar_cmul_scaled,  scalar_cmul_conj_scaled,
      scalar_scale,        scalar_copy_scaled,
      scalar_butterfly_pairs, scalar_fft_stage,
      scalar_argmax_norm,  scalar_cdot_conj,
      scalar_corr_direct,  scalar_corr_window_update,
  };
  return table;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Dispatch.

namespace {

bool cpu_supports_sse2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("sse2") != 0;
#else
  return false;
#endif
}

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const detail::KernelTable* table_for(Level level) {
  switch (level) {
    case Level::kScalar:
      return &detail::scalar_table();
    case Level::kSse2:
      return cpu_supports_sse2() ? detail::sse2_table_or_null() : nullptr;
    case Level::kAvx2:
      return cpu_supports_avx2() ? detail::avx2_table_or_null() : nullptr;
  }
  return nullptr;
}

[[noreturn]] void die(const char* message, const char* value) {
  std::fprintf(stderr, "uwb::simd: %s: %s\n", message, value);
  std::abort();
}

/// Resolve the startup level: env override (hard error when unsupported —
/// a forced CI leg must never silently run a narrower path) or the widest
/// supported level.
Level resolve_startup_level() {
  // Process-wide dispatch pin, read exactly once at first use; an
  // unsupported value aborts instead of diverging, so results can depend
  // on it only by refusing to run (the forced-dispatch CI legs rely on
  // exactly this).
  // uwb-lint: allow(sim-host-io)
  const char* env = std::getenv("UWB_SIMD_LEVEL");
  if (env != nullptr && env[0] != '\0') {
    const auto parsed = parse_level(env);
    if (!parsed)
      die("UWB_SIMD_LEVEL is not one of scalar|sse2|avx2", env);
    if (table_for(*parsed) == nullptr)
      die("UWB_SIMD_LEVEL requests a level this build/CPU cannot run", env);
    return *parsed;
  }
  return runtime_max_level();
}

struct Dispatch {
  std::atomic<const detail::KernelTable*> table;
  std::atomic<Level> level;
  Dispatch() {
    const Level l = resolve_startup_level();
    level.store(l, std::memory_order_relaxed);
    table.store(table_for(l), std::memory_order_relaxed);
  }
};

Dispatch& dispatch() {
  static Dispatch d;
  return d;
}

inline const detail::KernelTable& active() {
  return *dispatch().table.load(std::memory_order_relaxed);
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::optional<Level> parse_level(std::string_view name) {
  if (name == "scalar") return Level::kScalar;
  if (name == "sse2") return Level::kSse2;
  if (name == "avx2") return Level::kAvx2;
  return std::nullopt;
}

Level runtime_max_level() {
  if (table_for(Level::kAvx2) != nullptr) return Level::kAvx2;
  if (table_for(Level::kSse2) != nullptr) return Level::kSse2;
  return Level::kScalar;
}

Level active_level() {
  return dispatch().level.load(std::memory_order_relaxed);
}

bool set_active_level(Level level) {
  const detail::KernelTable* table = table_for(level);
  if (table == nullptr) return false;
  Dispatch& d = dispatch();
  d.level.store(level, std::memory_order_relaxed);
  d.table.store(table, std::memory_order_relaxed);
  return true;
}

// ---------------------------------------------------------------------------
// Public kernel entry points: one indirect call through the active table.

void cmul(const double* a, const double* b, double* out, std::size_t n) {
  active().cmul(a, b, out, n);
}

void cmul_conj(const double* a, const double* b, double* out, std::size_t n) {
  active().cmul_conj(a, b, out, n);
}

void cmul_scaled(const double* a, const double* b, double s, double* out,
                 std::size_t n) {
  active().cmul_scaled(a, b, s, out, n);
}

void cmul_conj_scaled(const double* a, const double* b, double s, double* out,
                      std::size_t n) {
  active().cmul_conj_scaled(a, b, s, out, n);
}

void scale(double* x, double s, std::size_t n) { active().scale(x, s, n); }

void copy_scaled(const double* x, double s, double* out, std::size_t n) {
  active().copy_scaled(x, s, out, n);
}

void butterfly_pairs(double* d, std::size_t n) {
  active().butterfly_pairs(d, n);
}

void fft_stage(double* d, const double* w, std::size_t n, std::size_t len,
               bool inverse) {
  active().fft_stage(d, w, n, len, inverse);
}

std::size_t argmax_norm(const double* y, std::size_t n) {
  return active().argmax_norm(y, n);
}

void cdot_conj(const double* a, const double* b, std::size_t n, double* re,
               double* im) {
  active().cdot_conj(a, b, n, re, im);
}

void corr_direct(const double* r, const double* s, double* y, std::size_t n,
                 std::size_t np) {
  active().corr_direct(r, s, y, n, np);
}

void corr_window_update(double* y, const double* d, const double* s,
                        std::ptrdiff_t j_lo, std::ptrdiff_t j_hi,
                        std::ptrdiff_t w_lo, std::ptrdiff_t w_hi,
                        std::ptrdiff_t np) {
  active().corr_window_update(y, d, s, j_lo, j_hi, w_lo, w_hi, np);
}

}  // namespace uwb::simd
