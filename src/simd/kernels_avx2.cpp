// AVX2 kernel table: two complexes (four doubles) per vector operation.
//
// This is the only translation unit compiled with -mavx2 (see
// src/simd/CMakeLists.txt); when the compiler cannot target AVX2 the file
// degrades to a nullptr table and dispatch stops at SSE2. No FMA is used
// anywhere — contraction would change rounding and break the bit-identity
// contract of the elementwise kernels (simd.hpp).
//
// Elementwise kernels form the same products and combine them in the same
// association as the scalar reference, per element, so their outputs are
// bit-identical across levels (including the odd-element tails, which run
// one 128-bit element with the identical operation sequence). The
// reduction kernels accumulate two interleaved partial sums and combine
// them once at the end, so they agree with scalar to roundoff only.
#include "simd/kernel_table.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace uwb::simd::detail {
namespace {

inline __m256d dup_re(__m256d b) { return _mm256_movedup_pd(b); }
inline __m256d dup_im(__m256d b) { return _mm256_permute_pd(b, 0xF); }
inline __m256d swap_ri(__m256d a) { return _mm256_permute_pd(a, 0x5); }

// Two complex products a*b: t1 = a * re(b) dup, t2 = swap(a) * im(b) dup,
// result even lanes t1 - t2 (real), odd lanes t1 + t2 (imag) — exactly
// _mm256_addsub_pd. Per element this is the scalar operation sequence.
inline __m256d cprod2(__m256d a, __m256d b) {
  const __m256d t1 = _mm256_mul_pd(a, dup_re(b));
  const __m256d t2 = _mm256_mul_pd(swap_ri(a), dup_im(b));
  return _mm256_addsub_pd(t1, t2);
}

// Two products a*conj(b): even lanes t1 + t2, odd lanes t1 - t2 — addsub
// applied to the negated second operand.
inline __m256d cprod2_conj(__m256d a, __m256d b) {
  const __m256d t1 = _mm256_mul_pd(a, dup_re(b));
  const __m256d t2 = _mm256_mul_pd(swap_ri(a), dup_im(b));
  return _mm256_addsub_pd(t1, _mm256_xor_pd(t2, _mm256_set1_pd(-0.0)));
}

// 128-bit single-complex variants for tails (identical op sequence).
inline __m128d cprod1(__m128d a, __m128d b) {
  const __m128d t1 = _mm_mul_pd(a, _mm_unpacklo_pd(b, b));
  const __m128d t2 = _mm_mul_pd(_mm_shuffle_pd(a, a, 1), _mm_unpackhi_pd(b, b));
  return _mm_add_pd(t1, _mm_xor_pd(t2, _mm_set_pd(0.0, -0.0)));
}

inline __m128d cprod1_conj(__m128d a, __m128d b) {
  const __m128d t1 = _mm_mul_pd(a, _mm_unpacklo_pd(b, b));
  const __m128d t2 = _mm_mul_pd(_mm_shuffle_pd(a, a, 1), _mm_unpackhi_pd(b, b));
  return _mm_add_pd(t1, _mm_xor_pd(t2, _mm_set_pd(-0.0, 0.0)));
}

template <bool Conj, bool Scaled>
void cmul_impl(const double* a, const double* b, double s, double* out,
               std::size_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    __m256d av = _mm256_loadu_pd(a + 2 * k);
    if constexpr (Scaled) av = _mm256_mul_pd(av, sv);
    const __m256d bv = _mm256_loadu_pd(b + 2 * k);
    _mm256_storeu_pd(out + 2 * k,
                     Conj ? cprod2_conj(av, bv) : cprod2(av, bv));
  }
  if (k < n) {
    __m128d av = _mm_loadu_pd(a + 2 * k);
    if constexpr (Scaled) av = _mm_mul_pd(av, _mm_set1_pd(s));
    const __m128d bv = _mm_loadu_pd(b + 2 * k);
    _mm_storeu_pd(out + 2 * k, Conj ? cprod1_conj(av, bv) : cprod1(av, bv));
  }
}

void avx2_cmul(const double* a, const double* b, double* out, std::size_t n) {
  cmul_impl<false, false>(a, b, 1.0, out, n);
}

void avx2_cmul_conj(const double* a, const double* b, double* out,
                    std::size_t n) {
  cmul_impl<true, false>(a, b, 1.0, out, n);
}

void avx2_cmul_scaled(const double* a, const double* b, double s, double* out,
                      std::size_t n) {
  cmul_impl<false, true>(a, b, s, out, n);
}

void avx2_cmul_conj_scaled(const double* a, const double* b, double s,
                           double* out, std::size_t n) {
  cmul_impl<true, true>(a, b, s, out, n);
}

void avx2_scale(double* x, double s, std::size_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  std::size_t k = 0;
  for (; k + 4 <= 2 * n; k += 4)
    _mm256_storeu_pd(x + k, _mm256_mul_pd(_mm256_loadu_pd(x + k), sv));
  for (; k < 2 * n; k += 2)
    _mm_storeu_pd(x + k, _mm_mul_pd(_mm_loadu_pd(x + k), _mm_set1_pd(s)));
}

void avx2_copy_scaled(const double* x, double s, double* out, std::size_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  std::size_t k = 0;
  for (; k + 4 <= 2 * n; k += 4)
    _mm256_storeu_pd(out + k, _mm256_mul_pd(_mm256_loadu_pd(x + k), sv));
  for (; k < 2 * n; k += 2)
    _mm_storeu_pd(out + k, _mm_mul_pd(_mm_loadu_pd(x + k), _mm_set1_pd(s)));
}

void avx2_butterfly_pairs(double* d, std::size_t n) {
  // One butterfly (u, v interleaved as 4 doubles) per 256-bit vector:
  // low lane u+v, high lane u-v.
  for (std::size_t i = 0; i < 2 * n; i += 4) {
    const __m256d a = _mm256_loadu_pd(d + i);
    const __m256d b = _mm256_permute2f128_pd(a, a, 0x01);  // [v, u]
    const __m256d sum = _mm256_add_pd(a, b);               // [u+v, v+u]
    const __m256d dif = _mm256_sub_pd(b, a);               // [v-u, u-v]
    _mm256_storeu_pd(d + i, _mm256_blend_pd(sum, dif, 0xC));
  }
}

void avx2_fft_stage(double* d, const double* w, std::size_t n,
                    std::size_t len, bool inverse) {
  const std::size_t half = len >> 1;  // >= 4, so the 2-wide loop has no tail
  const __m256d wi_sign =
      inverse ? _mm256_set1_pd(-0.0) : _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; i += len) {
    double* a = d + 2 * i;
    double* b = d + 2 * (i + half);
    for (std::size_t j = 0; j < half; j += 2) {
      const __m256d wv = _mm256_loadu_pd(w + 2 * j);
      const __m256d x = _mm256_loadu_pd(b + 2 * j);
      const __m256d t1 = _mm256_mul_pd(x, dup_re(wv));
      const __m256d wiv = _mm256_xor_pd(dup_im(wv), wi_sign);
      const __m256d t2 = _mm256_mul_pd(swap_ri(x), wiv);
      const __m256d v = _mm256_addsub_pd(t1, t2);
      const __m256d u = _mm256_loadu_pd(a + 2 * j);
      _mm256_storeu_pd(a + 2 * j, _mm256_add_pd(u, v));
      _mm256_storeu_pd(b + 2 * j, _mm256_sub_pd(u, v));
    }
  }
}

std::size_t avx2_argmax_norm(const double* y, std::size_t n) {
  // Four |y|^2 per iteration. hadd interleaves the two source vectors per
  // 128-bit lane, so lane l of the norm vector tracks complex indices
  // j + {0, 2, 1, 3}[l]. Strict > per lane keeps the first maximum within
  // a lane; the final reduction prefers the lowest index among lanes with
  // equal norms — together exactly the scalar first-maximum scan.
  std::size_t j = 0;
  __m256d best = _mm256_set1_pd(-1.0);
  __m256d best_idx = _mm256_setzero_pd();
  const __m256d lane_off = _mm256_set_pd(3.0, 1.0, 2.0, 0.0);
  const __m256d four = _mm256_set1_pd(4.0);
  __m256d idx = lane_off;
  for (; j + 4 <= n; j += 4) {
    const __m256d v0 = _mm256_loadu_pd(y + 2 * j);
    const __m256d v1 = _mm256_loadu_pd(y + 2 * j + 4);
    const __m256d nrm = _mm256_hadd_pd(_mm256_mul_pd(v0, v0),
                                       _mm256_mul_pd(v1, v1));
    const __m256d gt = _mm256_cmp_pd(nrm, best, _CMP_GT_OQ);
    best = _mm256_blendv_pd(best, nrm, gt);
    best_idx = _mm256_blendv_pd(best_idx, idx, gt);
    idx = _mm256_add_pd(idx, four);
  }
  double norms[4], idxs[4];
  _mm256_storeu_pd(norms, best);
  _mm256_storeu_pd(idxs, best_idx);
  double max_norm = -1.0;
  std::size_t max_idx = 0;
  for (int l = 0; l < 4; ++l) {
    const auto cand = static_cast<std::size_t>(idxs[l]);
    if (norms[l] > max_norm ||
        (norms[l] == max_norm && cand < max_idx)) {
      max_norm = norms[l];
      max_idx = cand;
    }
  }
  for (; j < n; ++j) {
    const double nrm = y[2 * j] * y[2 * j] + y[2 * j + 1] * y[2 * j + 1];
    if (nrm > max_norm) {
      max_norm = nrm;
      max_idx = j;
    }
  }
  return max_idx;
}

void avx2_cdot_conj(const double* a, const double* b, std::size_t n,
                    double* re, double* im) {
  // Two interleaved partial sums, combined once at the end: agrees with
  // the scalar accumulation to roundoff (documented in simd.hpp).
  __m256d acc = _mm256_setzero_pd();
  std::size_t m = 0;
  for (; m + 2 <= n; m += 2) {
    const __m256d av = _mm256_loadu_pd(a + 2 * m);
    const __m256d bv = _mm256_loadu_pd(b + 2 * m);
    acc = _mm256_add_pd(acc, cprod2_conj(av, bv));
  }
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  __m128d sum = _mm_add_pd(lo, hi);
  if (m < n) {
    const __m128d av = _mm_loadu_pd(a + 2 * m);
    const __m128d bv = _mm_loadu_pd(b + 2 * m);
    sum = _mm_add_pd(sum, cprod1_conj(av, bv));
  }
  *re = _mm_cvtsd_f64(sum);
  *im = _mm_cvtsd_f64(_mm_unpackhi_pd(sum, sum));
}

void avx2_corr_direct(const double* r, const double* s, double* y,
                      std::size_t n, std::size_t np) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t mmax = np < n - i ? np : n - i;
    avx2_cdot_conj(r + 2 * i, s, mmax, &y[2 * i], &y[2 * i + 1]);
  }
}

void avx2_corr_window_update(double* y, const double* d, const double* s,
                             std::ptrdiff_t j_lo, std::ptrdiff_t j_hi,
                             std::ptrdiff_t w_lo, std::ptrdiff_t w_hi,
                             std::ptrdiff_t np) {
  for (std::ptrdiff_t j = j_lo; j < j_hi; ++j) {
    const std::ptrdiff_t p_lo = w_lo > j ? w_lo : j;
    const std::ptrdiff_t p_hi = w_hi < j + np ? w_hi : j + np;
    if (p_lo >= p_hi) continue;
    double acc_r = 0.0, acc_i = 0.0;
    avx2_cdot_conj(d + 2 * (p_lo - w_lo), s + 2 * (p_lo - j),
                   static_cast<std::size_t>(p_hi - p_lo), &acc_r, &acc_i);
    y[2 * j] -= acc_r;
    y[2 * j + 1] -= acc_i;
  }
}

}  // namespace

const KernelTable* avx2_table_or_null() {
  static constexpr KernelTable table{
      avx2_cmul,         avx2_cmul_conj,
      avx2_cmul_scaled,  avx2_cmul_conj_scaled,
      avx2_scale,        avx2_copy_scaled,
      avx2_butterfly_pairs, avx2_fft_stage,
      avx2_argmax_norm,  avx2_cdot_conj,
      avx2_corr_direct,  avx2_corr_window_update,
  };
  return &table;
}

}  // namespace uwb::simd::detail

#else  // !__AVX2__

namespace uwb::simd::detail {
const KernelTable* avx2_table_or_null() { return nullptr; }
}  // namespace uwb::simd::detail

#endif
