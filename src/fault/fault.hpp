// Deterministic fault-injection subsystem (DESIGN.md Sect. 10).
//
// A FaultPlan declares which radio/clock faults exist and how likely they
// are; a FaultInjector turns the plan into concrete per-event decisions. The
// sim layer (Medium/Node) and the ranging sessions query the injector at
// well-defined points: preamble detection, payload decode, delayed-TX
// arming, responder round start.
//
// Determinism contract: every decision is drawn from a per-node RNG stream
// seeded as derive_seed(plan_seed, node_id) — the same splitmix64 scheme the
// Monte-Carlo runner uses for trials — and the simulator dispatches events
// in a bit-reproducible order, so an identical (plan, scenario seed) pair
// injects the identical fault sequence on every run, at any worker-thread
// count. The injector owns its RNG streams outright: it never draws from
// (or reorders draws of) the simulation RNGs, so a plan with every
// probability at zero is *byte-identical* to running without the subsystem.
//
// Each fault maps to a documented DW1000 failure mode (Sect. 10 has the
// datasheet references): preamble-detection failure on weak concurrent
// responses, RX CRC (FCS) errors, the HPDWARN late delayed-TX abort,
// responder dropout, reply-latency jitter, and crystal anomalies (drift
// steps / counter epoch jumps).
//
// Faults model *benign* degradation: every plan here corresponds to
// something a healthy-but-unlucky deployment does to itself. Deliberate
// manipulation — clock-spoofing responders, ghost CIR taps injected ahead
// of the true first path, replayed pulse shapes — lives in the sibling
// adversary model (attack.hpp: AttackPlan / AttackInjector), which shares
// this subsystem's determinism contract (per-attacker streams derived via
// derive_seed, inert plans byte-identical to no-adversary runs) and is
// policed by ranging::AttackDetector. Compose a FaultPlan with an
// AttackPlan to study detection under realistic loss: the detector must
// stay silent on a lossy-but-honest channel (see BenignFalsePositiveTest
// and the benign_l30 bench cell) while indicting the attacks.
#pragma once

#include <cstdint>
#include <map>

#include "common/random.hpp"

namespace uwb::fault {

/// Declarative description of the faults to inject. The default-constructed
/// plan (and any plan with every probability at zero) is inert.
struct FaultPlan {
  /// Master switch; false compiles the whole subsystem down to a null
  /// pointer check per hook.
  bool enabled = false;

  // --- (a) reception faults (sim::Medium / sim::Node) ----------------------
  /// Base probability that a receiver's preamble detector fails to lock on
  /// an otherwise detectable frame.
  double preamble_miss_prob = 0.0;
  /// SNR dependence: the effective miss probability is
  ///   min(1, preamble_miss_prob * (preamble_snr_ref_amp / amplitude)^exp)
  /// so weak first paths (amplitude below the reference) are missed more
  /// often, as observed for weak concurrent responses. 0 = amplitude
  /// independent.
  double preamble_snr_exponent = 0.0;
  /// Reference first-path amplitude for the SNR scaling above.
  double preamble_snr_ref_amp = 0.05;
  /// Probability that a decodable payload is delivered with a bad FCS
  /// (frame discarded by the MAC; timestamp and CIR remain valid).
  double crc_error_prob = 0.0;

  // --- (b) delayed-transmission faults (sim::Node) -------------------------
  /// Probability that an armed delayed TX hits the HPDWARN half-period
  /// warning and is aborted by the firmware.
  double late_tx_abort_prob = 0.0;

  // --- (c) responder behaviour (ranging sessions) --------------------------
  /// Per-responder per-round probability of entering a mute window (radio
  /// off: no RX, no replies) lasting dropout_rounds_min..max rounds.
  double dropout_prob = 0.0;
  int dropout_rounds_min = 1;
  int dropout_rounds_max = 3;
  /// 1-sigma extra latency [s] added to the programmed reply delay before
  /// the hardware quantisation (scheduling jitter in the responder's MCU).
  double reply_jitter_sigma_s = 0.0;

  // --- (d) clock anomalies (applied at round boundaries) -------------------
  /// Per-node per-round probability of a crystal drift step of
  /// N(0, drift_step_sigma_ppm) ppm.
  double drift_step_prob = 0.0;
  double drift_step_sigma_ppm = 0.0;
  /// Per-node per-round probability of the 40-bit counter jumping by
  /// uniform(-epoch_jump_max_s, epoch_jump_max_s).
  double epoch_jump_prob = 0.0;
  double epoch_jump_max_s = 0.0;

  /// Base seed of the injector's RNG streams. 0 = the owning session
  /// derives one from its scenario seed (the Monte-Carlo-friendly default:
  /// per-trial scenarios get per-trial fault streams for free).
  std::uint64_t seed = 0;

  /// True when enabled and at least one probability is positive.
  bool active() const;
  /// Throws PreconditionError on out-of-range values.
  void validate() const;
};

/// Tally of injected events, by fault kind. Plain integers filled by the
/// single-threaded simulation — deterministic under the same contract as
/// the decisions themselves.
struct FaultCounters {
  std::uint64_t preamble_miss = 0;
  std::uint64_t crc_error = 0;
  std::uint64_t late_tx_abort = 0;
  std::uint64_t dropout_rounds = 0;
  std::uint64_t clock_drift_step = 0;
  std::uint64_t clock_epoch_jump = 0;

  std::uint64_t total() const {
    return preamble_miss + crc_error + late_tx_abort + dropout_rounds +
           clock_drift_step + clock_epoch_jump;
  }
};

/// Turns a FaultPlan into per-event decisions. One injector serves one
/// scenario (one simulator); all methods are single-threaded like the
/// simulation itself.
class FaultInjector {
 public:
  /// `fallback_seed` seeds the RNG streams when plan.seed == 0 (sessions
  /// pass derive_seed(scenario_seed, kFaultSeedStream)).
  FaultInjector(FaultPlan plan, std::uint64_t fallback_seed);

  /// False when the plan can never inject anything; every hook is a no-op
  /// (and draws no randomness) in that case.
  bool active() const { return active_; }

  /// Advance per-round state (mute windows). Sessions call this at the
  /// start of every protocol attempt.
  void begin_round();

  /// Should `rx_node_id`'s preamble detector miss a frame whose first
  /// detectable path has `first_path_amplitude`? `chain` tags the injected
  /// miss with the causal chain id of the frame it killed (flight recorder).
  bool miss_preamble(int rx_node_id, double first_path_amplitude,
                     std::uint64_t chain = 0);

  /// Should `rx_node_id` deliver the just-decoded payload with a bad FCS?
  /// `chain` tags the injected error with the frame it corrupted.
  bool corrupt_crc(int rx_node_id, std::uint64_t chain = 0);

  /// Should `tx_node_id`'s armed delayed TX abort with HPDWARN?
  bool abort_delayed_tx(int tx_node_id);

  /// Is `node_id` inside a mute window this round? (Draws the window start
  /// on first query of a round; repeated queries in one round are stable.)
  bool responder_muted(int node_id);

  /// Extra reply latency [s] for this response (0 when jitter is off).
  double reply_jitter_s(int node_id);

  /// Clock anomaly for `node_id` this round; both fields 0 when none fires.
  struct ClockGlitch {
    double drift_step_ppm = 0.0;
    double epoch_jump_s = 0.0;
  };
  ClockGlitch clock_glitch(int node_id);

  const FaultPlan& plan() const { return plan_; }
  const FaultCounters& counters() const { return counters_; }

 private:
  struct NodeState {
    Rng rng;
    /// Mute rounds remaining (including the current one).
    int mute_rounds_left = 0;
    /// Round number responder_muted() last drew for.
    std::uint64_t mute_drawn_round = 0;
    explicit NodeState(std::uint64_t seed) : rng(seed) {}
  };

  NodeState& state(int node_id);

  FaultPlan plan_;
  bool active_ = false;
  std::uint64_t stream_base_ = 0;
  std::uint64_t round_ = 0;
  std::map<int, NodeState> states_;
  FaultCounters counters_;
};

}  // namespace uwb::fault
