#include "fault/attack.hpp"

#include <algorithm>
#include <set>

#include "common/expects.hpp"
#include "common/random.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"

namespace uwb::fault {

namespace {
bool is_prob(double p) { return p >= 0.0 && p <= 1.0; }

/// Stream lane of one receiver inside a frame's ghost seed space.
std::uint64_t rx_lane(int rx_node_id) {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(rx_node_id));
}
}  // namespace

const char* to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::kClockSkew: return "clock_skew";
    case AttackKind::kGhostPeak: return "ghost_peak";
    case AttackKind::kShapeReplay: return "shape_replay";
  }
  return "unknown";
}

bool AttackSpec::active() const {
  switch (kind) {
    case AttackKind::kClockSkew:
      return cfo_spoof_ppm != 0.0 || cfo_ramp_ppm_per_round != 0.0 ||
             reply_bias_s != 0.0;
    case AttackKind::kGhostPeak:
      return probability > 0.0 && ghost_rel_amplitude > 0.0 &&
             ghost_count > 0;
    case AttackKind::kShapeReplay:
      return probability > 0.0 && forged_shape_register >= 0;
  }
  return false;
}

void AttackSpec::validate() const {
  UWB_EXPECTS(attacker_id >= 0 && attacker_id <= 255);
  UWB_EXPECTS(is_prob(probability));
  UWB_EXPECTS(ghost_advance_s >= 0.0);
  UWB_EXPECTS(ghost_rel_amplitude >= 0.0);
  UWB_EXPECTS(ghost_count >= 0);
  UWB_EXPECTS(ghost_spacing_s >= 0.0);
  UWB_EXPECTS(forged_shape_register >= -1 && forged_shape_register <= 255);
}

bool AttackPlan::active() const {
  if (!enabled) return false;
  return std::any_of(specs.begin(), specs.end(),
                     [](const AttackSpec& s) { return s.active(); });
}

void AttackPlan::validate() const {
  std::set<int> ids;
  for (const AttackSpec& s : specs) {
    s.validate();
    UWB_EXPECTS(ids.insert(s.attacker_id).second);  // one spec per attacker
  }
}

const AttackSpec* AttackPlan::spec_for(int attacker_id) const {
  for (const AttackSpec& s : specs)
    if (s.attacker_id == attacker_id) return &s;
  return nullptr;
}

AttackInjector::AttackInjector(AttackPlan plan, std::uint64_t fallback_seed)
    : plan_(std::move(plan)) {
  plan_.validate();
  active_ = plan_.active();
  stream_base_ = plan_.seed != 0 ? plan_.seed : fallback_seed;
  for (std::size_t i = 0; i < plan_.specs.size(); ++i)
    if (plan_.specs[i].active())
      spec_index_.emplace(plan_.specs[i].attacker_id, i);
}

std::uint64_t AttackInjector::attacker_stream(int attacker_id) const {
  return derive_seed(stream_base_, static_cast<std::uint64_t>(
                                       static_cast<std::int64_t>(attacker_id)));
}

const AttackSpec* AttackInjector::spec(int node_id) const {
  const auto it = spec_index_.find(node_id);
  return it == spec_index_.end() ? nullptr : &plan_.specs[it->second];
}

bool AttackInjector::frame_selected(const AttackSpec& s,
                                    std::uint64_t chain) const {
  if (s.probability >= 1.0) return true;
  // Stateless per-frame decision: every hook invocation for this frame
  // (and every receiver) agrees, independent of culling and thread count.
  Rng rng(derive_seed(attacker_stream(s.attacker_id), chain));
  return rng.chance(s.probability);
}

void AttackInjector::begin_round() {
  if (!active_) return;
  ++round_;
}

double AttackInjector::cfo_spoof_ppm(int tx_node_id, std::uint64_t chain) {
  if (!active_) return 0.0;
  const AttackSpec* s = spec(tx_node_id);
  if (s == nullptr || s->kind != AttackKind::kClockSkew) return 0.0;
  const double rounds = round_ > 0 ? static_cast<double>(round_ - 1) : 0.0;
  const double spoof = s->cfo_spoof_ppm + s->cfo_ramp_ppm_per_round * rounds;
  if (spoof == 0.0) return 0.0;
  ++counters_.cfo_spoofed_frames;
  UWB_OBS_COUNT("attack_injected_cfo_spoof", 1);
  UWB_FR_EVENT(.kind = obs::FrKind::kAttack, .name = "cfo_spoof",
               .chain = chain, .node = tx_node_id,
               .v0 = {"spoof_ppm", spoof},
               .v1 = {"round", static_cast<double>(round_)});
  return spoof;
}

int AttackInjector::forged_shape_register(int tx_node_id,
                                          std::uint64_t chain) {
  if (!active_) return -1;
  const AttackSpec* s = spec(tx_node_id);
  if (s == nullptr || s->kind != AttackKind::kShapeReplay ||
      s->forged_shape_register < 0)
    return -1;
  if (!frame_selected(*s, chain)) return -1;
  ++counters_.forged_shapes;
  UWB_OBS_COUNT("attack_injected_shape_replay", 1);
  UWB_FR_EVENT(.kind = obs::FrKind::kAttack, .name = "shape_replay",
               .chain = chain, .node = tx_node_id,
               .v0 = {"forged_register",
                      static_cast<double>(s->forged_shape_register)});
  return s->forged_shape_register;
}

double AttackInjector::reply_timestamp_bias_s(int responder_id) {
  if (!active_) return 0.0;
  const AttackSpec* s = spec(responder_id);
  if (s == nullptr || s->kind != AttackKind::kClockSkew ||
      s->reply_bias_s == 0.0)
    return 0.0;
  ++counters_.biased_replies;
  UWB_OBS_COUNT("attack_injected_reply_bias", 1);
  // Chain comes from the recorder context: the session arms the reply
  // inside the chain scope of the INIT frame being answered.
  UWB_FR_EVENT(.kind = obs::FrKind::kAttack, .name = "reply_bias",
               .node = responder_id, .v0 = {"bias_s", s->reply_bias_s});
  return s->reply_bias_s;
}

void AttackInjector::ghost_taps(int tx_node_id, int rx_node_id,
                                std::uint64_t chain,
                                double first_path_delay_s,
                                double first_path_amplitude,
                                std::vector<GhostTap>& out) {
  if (!active_) return;
  const AttackSpec* s = spec(tx_node_id);
  if (s == nullptr || s->kind != AttackKind::kGhostPeak || !s->active())
    return;
  if (!frame_selected(*s, chain)) return;
  // Per-(frame, receiver) phase stream: delivery order cannot matter.
  Rng rng(derive_seed(derive_seed(attacker_stream(tx_node_id), chain),
                      rx_lane(rx_node_id)));
  const double amp = s->ghost_rel_amplitude * first_path_amplitude;
  out.reserve(out.size() + static_cast<std::size_t>(s->ghost_count));
  for (int i = 0; i < s->ghost_count; ++i) {
    GhostTap tap;
    tap.delay_s = std::max(
        0.0, first_path_delay_s - s->ghost_advance_s +
                 static_cast<double>(i) * s->ghost_spacing_s);
    tap.amplitude = amp * rng.random_phase();
    out.push_back(tap);
    ++counters_.ghost_taps;
  }
  UWB_OBS_COUNT("attack_injected_ghost_taps",
                static_cast<std::uint64_t>(s->ghost_count));
  UWB_FR_EVENT(.kind = obs::FrKind::kAttack, .name = "ghost_taps",
               .chain = chain, .node = tx_node_id, .peer = rx_node_id,
               .v0 = {"advance_s", s->ghost_advance_s},
               .v1 = {"rel_amplitude", s->ghost_rel_amplitude},
               .v2 = {"count", static_cast<double>(s->ghost_count)});
}

}  // namespace uwb::fault
